#include "sampler.h"

#include <cinttypes>
#include <cstdio>

namespace nesc::obs {

void
TimeSeriesSampler::set_capacity(std::size_t samples)
{
    capacity_ = samples == 0 ? 1 : samples;
    while (series_.size() > capacity_) {
        series_.pop_front();
        ++dropped_;
    }
}

void
TimeSeriesSampler::sample(sim::Time now)
{
    Sample s;
    s.at = now;
    s.counters.resize(registry_.counter_count());
    for (MetricsRegistry::Handle h = 0; h < s.counters.size(); ++h)
        s.counters[h] = registry_.counter_value(h);
    s.gauges.resize(registry_.gauge_count());
    for (MetricsRegistry::Handle h = 0; h < s.gauges.size(); ++h)
        s.gauges[h] = registry_.gauge_value(h);
    series_.push_back(std::move(s));
    ++taken_;
    while (series_.size() > capacity_) {
        series_.pop_front();
        ++dropped_;
    }
}

void
TimeSeriesSampler::clear()
{
    series_.clear();
}

std::string
TimeSeriesSampler::to_json() const
{
    std::string out = "{\"samples\": [";
    char buf[64];
    bool first_sample = true;
    for (const Sample &s : series_) {
        if (!first_sample)
            out += ", ";
        first_sample = false;
        std::snprintf(buf, sizeof buf, "{\"t\": %" PRIu64
                      ", \"counters\": {", s.at);
        out += buf;
        bool first = true;
        for (MetricsRegistry::Handle h = 0; h < s.counters.size(); ++h) {
            if (!first)
                out += ", ";
            first = false;
            out += "\"" + registry_.counter_key(h) +
                   "\": " + std::to_string(s.counters[h]);
        }
        out += "}, \"gauges\": {";
        first = true;
        for (MetricsRegistry::Handle h = 0; h < s.gauges.size(); ++h) {
            if (!first)
                out += ", ";
            first = false;
            out += "\"" + registry_.gauge_key(h) +
                   "\": " + std::to_string(s.gauges[h]);
        }
        out += "}}";
    }
    std::snprintf(buf, sizeof buf,
                  "], \"taken\": %" PRIu64 ", \"dropped\": %" PRIu64 "}",
                  taken_, dropped_);
    out += buf;
    return out;
}

} // namespace nesc::obs
