#include "obs/trace.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>

namespace nesc::obs {

const char *
stage_name(Stage stage)
{
    switch (stage) {
    case Stage::kDoorbell:
        return "doorbell";
    case Stage::kCmdFetch:
        return "cmd_fetch";
    case Stage::kQueueWait:
        return "queue_wait";
    case Stage::kTranslate:
        return "translate";
    case Stage::kTransfer:
        return "transfer";
    case Stage::kBtlbHit:
        return "btlb_hit";
    case Stage::kWalk:
        return "walk";
    case Stage::kZeroFill:
        return "zero_fill";
    case Stage::kDmaRead:
        return "dma_read";
    case Stage::kDmaWrite:
        return "dma_write";
    case Stage::kLink:
        return "link";
    case Stage::kComplete:
        return "complete";
    case Stage::kFault:
        return "fault";
    case Stage::kValidateFail:
        return "validate_fail";
    case Stage::kAbort:
        return "abort";
    case Stage::kQuarantine:
        return "quarantine";
    case Stage::kReplRead:
        return "repl_read";
    case Stage::kReplWrite:
        return "repl_write";
    case Stage::kResync:
        return "resync";
    case Stage::kChecksum:
        return "checksum";
    case Stage::kScrub:
        return "scrub";
    case Stage::kSloBreach:
        return "slo_breach";
    case Stage::kCount:
        break;
    }
    return "unknown";
}

void
Tracer::enable(std::size_t capacity)
{
    clear();
    if (capacity == 0)
        capacity = 1;
    ring_.assign(capacity, SpanEvent{});
    enabled_ = true;
}

void
Tracer::clear()
{
    ring_.clear();
    head_ = 0;
    wrapped_ = false;
    recorded_ = 0;
    dropped_ = 0;
    totals_.fill(StageTotals{});
}

void
Tracer::record(const SpanEvent &event)
{
    StageTotals &t = totals_[static_cast<std::size_t>(event.stage)];
    ++t.count;
    t.total_ns += event.dur;
    ++recorded_;
    if (wrapped_)
        ++dropped_;
    ring_[head_] = event;
    if (++head_ == ring_.size()) {
        head_ = 0;
        wrapped_ = true;
    }
}

std::vector<SpanEvent>
Tracer::events() const
{
    std::vector<SpanEvent> out;
    out.reserve(size());
    if (wrapped_)
        out.insert(out.end(), ring_.begin() +
                                  static_cast<std::ptrdiff_t>(head_),
                   ring_.end());
    out.insert(out.end(), ring_.begin(),
               ring_.begin() + static_cast<std::ptrdiff_t>(head_));
    return out;
}

namespace {

#if defined(__GNUC__) || defined(__clang__)
__attribute__((format(printf, 2, 3)))
#endif
void
append_format(std::string &out, const char *fmt, ...)
{
    char buffer[256];
    va_list args;
    va_start(args, fmt);
    const int n = std::vsnprintf(buffer, sizeof buffer, fmt, args);
    va_end(args);
    if (n > 0)
        out.append(buffer, static_cast<std::size_t>(n));
}

/** "fn3" or "fn0 (PF)" or "pcie-link" — Perfetto process names. */
std::string
track_name(std::uint16_t fn)
{
    if (fn == kLinkTrack)
        return "pcie-link";
    if (fn == 0)
        return "fn0 (PF)";
    return "fn" + std::to_string(fn);
}

} // namespace

std::string
Tracer::chrome_json() const
{
    std::vector<SpanEvent> sorted = events();
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const SpanEvent &a, const SpanEvent &b) {
                         return a.start < b.start;
                     });

    std::string out;
    out.reserve(128 + sorted.size() * 160);
    out += "{\"displayTimeUnit\": \"ns\", \"traceEvents\": [\n";

    // Metadata: name each function track (pid) and stage lane (tid).
    std::vector<bool> seen_fn(1 << 16, false);
    bool first = true;
    for (const SpanEvent &e : sorted) {
        if (seen_fn[e.fn])
            continue;
        seen_fn[e.fn] = true;
        append_format(out,
                      "%s{\"ph\": \"M\", \"name\": \"process_name\", "
                      "\"pid\": %u, \"args\": {\"name\": \"%s\"}}",
                      first ? "" : ",\n", static_cast<unsigned>(e.fn),
                      track_name(e.fn).c_str());
        first = false;
        for (std::size_t s = 0; s < kStageCount; ++s) {
            append_format(
                out,
                ",\n{\"ph\": \"M\", \"name\": \"thread_name\", "
                "\"pid\": %u, \"tid\": %zu, "
                "\"args\": {\"name\": \"%s\"}}",
                static_cast<unsigned>(e.fn), s,
                stage_name(static_cast<Stage>(s)));
        }
    }

    // ph "X" complete events; ts/dur in microseconds of simulated time.
    for (const SpanEvent &e : sorted) {
        append_format(
            out,
            "%s{\"ph\": \"X\", \"name\": \"%s\", \"cat\": \"nesc\", "
            "\"pid\": %u, \"tid\": %u, \"ts\": %.3f, \"dur\": %.3f, "
            "\"args\": {\"tag\": %llu, \"aux\": %llu}}",
            first ? "" : ",\n", stage_name(e.stage),
            static_cast<unsigned>(e.fn),
            static_cast<unsigned>(e.stage),
            static_cast<double>(e.start) / 1e3,
            static_cast<double>(e.dur) / 1e3,
            static_cast<unsigned long long>(e.tag),
            static_cast<unsigned long long>(e.aux));
        first = false;
    }
    out += "\n]}\n";
    return out;
}

util::Status
Tracer::write_chrome_json(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        return util::unavailable_error("cannot open trace file: " + path);
    const std::string json = chrome_json();
    const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
    const int close_rc = std::fclose(f);
    if (written != json.size() || close_rc != 0)
        return util::data_loss_error("short write to trace file: " + path);
    return util::Status::ok();
}

std::string
Tracer::flame_summary() const
{
    std::string out;
    append_format(out, "%-14s %12s %16s %12s\n", "stage", "count",
                  "total_us", "mean_us");
    for (std::size_t s = 0; s < kStageCount; ++s) {
        const StageTotals &t = totals_[s];
        if (t.count == 0)
            continue;
        append_format(out, "%-14s %12llu %16.3f %12.3f\n",
                      stage_name(static_cast<Stage>(s)),
                      static_cast<unsigned long long>(t.count),
                      static_cast<double>(t.total_ns) / 1e3,
                      static_cast<double>(t.total_ns) /
                          static_cast<double>(t.count) / 1e3);
    }
    append_format(out, "events recorded=%llu retained=%zu dropped=%llu\n",
                  static_cast<unsigned long long>(recorded_), size(),
                  static_cast<unsigned long long>(dropped_));
    return out;
}

} // namespace nesc::obs
