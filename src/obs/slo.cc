#include "slo.h"

#include <cmath>

namespace nesc::obs {

const char *
slo_metric_name(SloMetric metric)
{
    switch (metric) {
    case SloMetric::kLatencyP99: return "latency_p99";
    case SloMetric::kErrorRate: return "error_rate";
    }
    return "unknown";
}

void
SloWatch::Window::reset(sim::Time at)
{
    for (LogHistogram &h : stages)
        h.reset();
    ops = 0;
    errors = 0;
    start = at;
    dirty = false;
}

void
SloWatch::enable(std::uint16_t num_functions, sim::Time now)
{
    if (enabled_)
        return;
    fns_.assign(num_functions, {});
    for (FnState &f : fns_) {
        f.current.reset(now);
        f.closed.reset(now);
    }
    touched_.clear();
    touched_.reserve(num_functions);
    window_open_ = now;
    closed_open_ = now;
    rotations_ = 0;
    enabled_ = true;
}

void
SloWatch::disable()
{
    // Keep the per-function storage allocated: re-arming reuses it, and
    // the armed and disarmed heap layouts stay identical, so toggling
    // the plane does not perturb unrelated allocations. Readers are
    // gated on enabled_, never on fns_ being empty.
    enabled_ = false;
    touched_.clear();
}

void
SloWatch::set_limits(std::uint16_t fn, SloLimits limits)
{
    if (enabled_ && fn < fns_.size())
        fns_[fn].limits = limits;
}

SloLimits
SloWatch::limits(std::uint16_t fn) const
{
    if (enabled_ && fn < fns_.size())
        return fns_[fn].limits;
    return {};
}

void
SloWatch::observe_ok(std::uint16_t fn, std::uint64_t e2e_ns,
                     std::uint64_t queue_ns, std::uint64_t translate_ns,
                     std::uint64_t transfer_ns)
{
    if (!enabled_ || fn >= fns_.size())
        return;
    FnState &f = fns_[fn];
    touch(fn, f);
    // window_seen doubles as the window's OK-op count; rotation folds
    // it into ops, so the hot path pays no separate counter.
    const std::uint32_t seen = f.window_seen++;
    if (seen >= kExactPerWindow && (seen & kSampleMask) != 0)
        return;
    Staged &s = f.staged[f.staged_count];
    s.v[kEndToEnd] = e2e_ns;
    s.v[kQueue] = queue_ns;
    s.v[kTranslate] = translate_ns;
    s.v[kTransfer] = transfer_ns;
    if (++f.staged_count == kStageBatch)
        drain(f);
}

void
SloWatch::note_op(std::uint16_t fn, bool error)
{
    if (!enabled_ || fn >= fns_.size())
        return;
    FnState &f = fns_[fn];
    touch(fn, f);
    ++f.staged_ops;
    if (error)
        ++f.staged_errors;
}

void
SloWatch::rotate(sim::Time now)
{
    if (!enabled_)
        return;
    // Only functions with activity since the last rotation do any
    // work: idle functions are neither visited nor reset — their
    // stale closed window is hidden by the epoch check in the
    // readers. Rotation cost is therefore proportional to the active
    // function count, not max_vfs, which is what keeps a short window
    // affordable with hundreds of mostly-idle VFs.
    ++rotations_;
    const sim::Time opened = window_open_;
    for (const std::uint16_t fn : touched_) {
        FnState &f = fns_[fn];
        f.touched = false;
        drain(f);
        // window_seen is the window's OK-op count (folded here, once
        // per rotation, instead of a second hot-path counter) and the
        // exact-sampling prefix cursor (reset for the fresh window).
        f.current.ops += f.window_seen;
        f.window_seen = 0;
        if (!f.current.dirty)
            continue;
        f.current.start = opened;
        evaluate(fn, f.current);
        // The just-closed window becomes the readable snapshot; its
        // previous contents are recycled as the new current window.
        std::swap(f.current, f.closed);
        f.current.reset(now);
        f.closed_epoch = rotations_;
    }
    touched_.clear();
    closed_open_ = opened;
    window_open_ = now;
}

void
SloWatch::drain(FnState &f)
{
    if (f.staged_count == 0 && f.staged_ops == 0)
        return;
    Window &w = f.current;
    w.dirty = true;
    // Stage-major over the AoS staging buffer: each histogram folds
    // its field with a strided pass, no gather copy. The whole staged
    // block is at most 2 KiB, so all four passes stay in L1.
    for (std::size_t stage = 0; stage < kStages; ++stage) {
        w.stages[stage].observe_strided(&f.staged[0].v[stage], kStages,
                                        f.staged_count);
    }
    w.ops += f.staged_ops;
    w.errors += f.staged_errors;
    f.staged_count = 0;
    f.staged_ops = 0;
    f.staged_errors = 0;
}

void
SloWatch::evaluate(std::uint16_t fn, const Window &window)
{
    const SloLimits &limits = fns_[fn].limits;
    if (limits.max_p99_ns != 0 && window.stages[kEndToEnd].count() > 0) {
        const double p99 = window.stages[kEndToEnd].percentile(99.0);
        const auto observed =
            static_cast<std::uint64_t>(std::llround(p99));
        if (observed > limits.max_p99_ns) {
            raise({observed, limits.max_p99_ns, window.start, fn,
                   SloMetric::kLatencyP99});
        }
    }
    if (limits.max_error_ppm != 0 && window.ops > 0) {
        const std::uint64_t ppm = window.errors * 1'000'000 / window.ops;
        if (ppm > limits.max_error_ppm) {
            raise({ppm, limits.max_error_ppm, window.start, fn,
                   SloMetric::kErrorRate});
        }
    }
}

void
SloWatch::raise(const SloBreach &breach)
{
    ++raised_;
    breaches_.push_back(breach);
    while (breaches_.size() > kMaxBreaches) {
        breaches_.pop_front();
        ++breach_dropped_;
    }
    if (hook_)
        hook_(breach);
}

const LogHistogram *
SloWatch::window(std::uint16_t fn, std::uint32_t stage) const
{
    // A stale closed_epoch means the function was idle across the
    // whole last window; its closed window is logically empty even
    // though rotation left the old contents in place.
    static const LogHistogram kEmpty;
    if (!enabled_ || fn >= fns_.size() || stage >= kStages)
        return nullptr;
    const FnState &f = fns_[fn];
    return f.closed_epoch == rotations_ ? &f.closed.stages[stage]
                                        : &kEmpty;
}

std::uint64_t
SloWatch::window_ops(std::uint16_t fn) const
{
    if (!enabled_ || fn >= fns_.size() ||
        fns_[fn].closed_epoch != rotations_)
        return 0;
    return fns_[fn].closed.ops;
}

std::uint64_t
SloWatch::window_errors(std::uint16_t fn) const
{
    if (!enabled_ || fn >= fns_.size() ||
        fns_[fn].closed_epoch != rotations_)
        return 0;
    return fns_[fn].closed.errors;
}

sim::Time
SloWatch::window_start(std::uint16_t fn) const
{
    if (!enabled_ || fn >= fns_.size())
        return 0;
    const FnState &f = fns_[fn];
    return f.closed_epoch == rotations_ ? f.closed.start : closed_open_;
}

void
SloWatch::clear_breaches()
{
    breaches_.clear();
}

} // namespace nesc::obs
