/**
 * @file
 * Interned-handle metrics: counters, gauges, and O(1)-memory
 * log-bucketed latency histograms, with snapshot export to JSON.
 *
 * Device models register each metric once at construction and keep the
 * returned Handle (a plain index). Hot-path updates are then a vector
 * indexing, not a `std::map<std::string, ...>` lookup — the difference
 * matters in the controller pipeline, which bumps several counters per
 * simulated block. Cold paths may still update by name via bump().
 *
 * Metrics are optionally scoped to a function id (per-VF counters);
 * unscoped metrics use kGlobalScope. A LogHistogram replaces unbounded
 * util::Sampler accumulation in long benches: power-of-two buckets,
 * exact count/sum (so mean() is exact, not bucket-approximated), and
 * approximate percentiles — all in O(1) memory.
 */
#ifndef NESC_OBS_METRICS_H
#define NESC_OBS_METRICS_H

#include <array>
#include <bit>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace nesc::obs {

/** Scope value for metrics not bound to one function. */
inline constexpr std::uint16_t kGlobalScope = 0xffff;

/**
 * Log-bucketed latency histogram: value v lands in bucket
 * bit_width(v), giving power-of-two bucket boundaries. count and sum
 * are exact, so mean() carries no bucketing error; percentiles are
 * approximated by the geometric midpoint of the resolving bucket.
 */
class LogHistogram {
  public:
    /// bit_width of a uint64 is 0..64.
    static constexpr std::size_t kBuckets = 65;

    void
    observe(std::uint64_t value)
    {
        ++buckets_[std::bit_width(value)];
        ++count_;
        sum_ += value;
        if (count_ == 1 || value < min_)
            min_ = value;
        if (value > max_)
            max_ = value;
    }

    std::uint64_t count() const { return count_; }
    std::uint64_t sum() const { return sum_; }
    std::uint64_t min() const { return count_ ? min_ : 0; }
    std::uint64_t max() const { return max_; }
    /** Exact mean (sum and count are exact). */
    double mean() const
    {
        return count_ ? static_cast<double>(sum_) /
                            static_cast<double>(count_)
                      : 0.0;
    }

    /**
     * Approximate percentile, @p p in [0, 100]: geometric midpoint of
     * the bucket containing the p-th sample, clamped to [min, max].
     */
    double percentile(double p) const;

    const std::array<std::uint64_t, kBuckets> &buckets() const
    {
        return buckets_;
    }

    void reset() { *this = LogHistogram(); }

  private:
    std::array<std::uint64_t, kBuckets> buckets_{};
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = 0;
    std::uint64_t max_ = 0;
};

/** Interned-handle metric store; see file comment. */
class MetricsRegistry {
  public:
    using Handle = std::uint32_t;

    /**
     * Interns a counter (monotonic uint64) named @p name under
     * @p scope; returns the existing handle on re-registration.
     */
    Handle counter(std::string_view name,
                   std::uint16_t scope = kGlobalScope);
    /** Interns a gauge (last-write-wins uint64). */
    Handle gauge(std::string_view name,
                 std::uint16_t scope = kGlobalScope);
    /** Interns a log-bucketed histogram. */
    Handle histogram(std::string_view name,
                     std::uint16_t scope = kGlobalScope);

    void add(Handle h, std::uint64_t delta = 1)
    {
        counter_values_[h] += delta;
    }
    void set(Handle h, std::uint64_t value) { gauge_values_[h] = value; }
    void observe(Handle h, std::uint64_t value)
    {
        histogram_values_[h].observe(value);
    }

    std::uint64_t counter_value(Handle h) const
    {
        return counter_values_[h];
    }
    std::uint64_t gauge_value(Handle h) const { return gauge_values_[h]; }
    const LogHistogram &histogram_value(Handle h) const
    {
        return histogram_values_[h];
    }

    /** Cold-path update by name (interns on first use). */
    void bump(std::string_view name, std::uint64_t delta = 1,
              std::uint16_t scope = kGlobalScope)
    {
        add(counter(name, scope), delta);
    }

    /**
     * Global-scope counter value of @p name, zero if never registered
     * (drop-in for util::CounterGroup::get).
     */
    std::uint64_t get(std::string_view name) const;

    /**
     * "name=value name=value ..." of the global-scope counters, in
     * name order (drop-in for util::CounterGroup::to_string).
     */
    std::string to_string() const;

    /**
     * JSON snapshot: {"counters": {...}, "gauges": {...},
     * "histograms": {name: {count, sum, mean, min, max, p50, p99}}}.
     * Scoped metric keys are prefixed "fnN/".
     */
    std::string to_json() const;

    std::size_t counter_count() const { return counter_values_.size(); }
    std::size_t gauge_count() const { return gauge_values_.size(); }
    std::size_t histogram_count() const
    {
        return histogram_values_.size();
    }

    /** Zeroes every value; handles stay valid. */
    void reset_values();

  private:
    struct Meta {
        std::string name;
        std::uint16_t scope;
    };
    using Key = std::pair<std::string, std::uint16_t>;

    std::map<Key, Handle> counter_index_;
    std::map<Key, Handle> gauge_index_;
    std::map<Key, Handle> histogram_index_;
    std::vector<Meta> counter_meta_;
    std::vector<Meta> gauge_meta_;
    std::vector<Meta> histogram_meta_;
    std::vector<std::uint64_t> counter_values_;
    std::vector<std::uint64_t> gauge_values_;
    std::vector<LogHistogram> histogram_values_;
};

} // namespace nesc::obs

#endif // NESC_OBS_METRICS_H
