/**
 * @file
 * Interned-handle metrics: counters, gauges, and O(1)-memory
 * log-bucketed latency histograms, with snapshot export to JSON.
 *
 * Device models register each metric once at construction and keep the
 * returned Handle (a plain index). Hot-path updates are then a vector
 * indexing, not a `std::map<std::string, ...>` lookup — the difference
 * matters in the controller pipeline, which bumps several counters per
 * simulated block. Cold paths may still update by name via bump().
 *
 * Metrics are optionally scoped to a function id (per-VF counters);
 * unscoped metrics use kGlobalScope. A LogHistogram replaces unbounded
 * util::Sampler accumulation in long benches: power-of-two buckets,
 * exact count/sum (so mean() is exact, not bucket-approximated), and
 * approximate percentiles — all in O(1) memory.
 */
#ifndef NESC_OBS_METRICS_H
#define NESC_OBS_METRICS_H

#include <array>
#include <bit>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace nesc::obs {

/** Scope value for metrics not bound to one function. */
inline constexpr std::uint16_t kGlobalScope = 0xffff;

/**
 * Log-bucketed latency histogram: value v lands in bucket
 * bit_width(v), giving power-of-two bucket boundaries. count and sum
 * are exact, so mean() carries no bucketing error; percentiles are
 * approximated by the geometric midpoint of the resolving bucket.
 */
class LogHistogram {
  public:
    /// bit_width of a uint64 is 0..64.
    static constexpr std::size_t kBuckets = 65;

    void
    observe(std::uint64_t value)
    {
        ++buckets_[std::bit_width(value)];
        ++count_;
        sum_ += value;
        if (count_ == 1 || value < min_)
            min_ = value;
        if (value > max_)
            max_ = value;
    }

    /**
     * Folds @p n samples in one pass. Equivalent to calling observe()
     * per element, but keeps count/sum/min/max in registers across
     * the batch — the form the SLO staging buffer drains in.
     */
    void
    observe_batch(const std::uint64_t *values, std::size_t n)
    {
        observe_strided(values, 1, n);
    }

    /**
     * observe_batch over @p n samples spaced @p stride u64s apart,
     * starting at @p base. Lets an array-of-structs staging buffer
     * drain one field per histogram without gathering into a
     * temporary first.
     */
    void
    observe_strided(const std::uint64_t *base, std::size_t stride,
                    std::size_t n)
    {
        if (n == 0)
            return;
        std::uint64_t sum = 0;
        std::uint64_t mn = base[0];
        std::uint64_t mx = base[0];
        for (std::size_t i = 0; i < n; ++i) {
            const std::uint64_t v = base[i * stride];
            ++buckets_[std::bit_width(v)];
            sum += v;
            mn = v < mn ? v : mn;
            mx = v > mx ? v : mx;
        }
        if (count_ == 0 || mn < min_)
            min_ = mn;
        if (mx > max_)
            max_ = mx;
        count_ += n;
        sum_ += sum;
    }

    std::uint64_t count() const { return count_; }
    std::uint64_t sum() const { return sum_; }
    std::uint64_t min() const { return count_ ? min_ : 0; }
    std::uint64_t max() const { return max_; }
    /** Exact mean (sum and count are exact). */
    double mean() const
    {
        return count_ ? static_cast<double>(sum_) /
                            static_cast<double>(count_)
                      : 0.0;
    }

    /**
     * Approximate percentile, @p p in [0, 100]. The rank p/100*count
     * is located in the log-bucket histogram and interpolated as the
     * geometric midpoint sqrt(lo*hi) of the resolving bucket's
     * boundaries [2^(b-1), 2^b), clamped to the exact [min, max].
     *
     * Pinned edge cases: an empty histogram returns 0.0 for every p;
     * p <= 0 (and NaN) returns min(); p >= 100 returns max(); a
     * single-sample histogram returns that sample for every p.
     */
    double percentile(double p) const;

    const std::array<std::uint64_t, kBuckets> &buckets() const
    {
        return buckets_;
    }

    void reset() { *this = LogHistogram(); }

  private:
    std::array<std::uint64_t, kBuckets> buckets_{};
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = 0;
    std::uint64_t max_ = 0;
};

/** Interned-handle metric store; see file comment. */
class MetricsRegistry {
  public:
    using Handle = std::uint32_t;

    /**
     * Interns a counter (monotonic uint64) named @p name under
     * @p scope; returns the existing handle on re-registration.
     */
    Handle counter(std::string_view name,
                   std::uint16_t scope = kGlobalScope);
    /** Interns a gauge (last-write-wins uint64). */
    Handle gauge(std::string_view name,
                 std::uint16_t scope = kGlobalScope);
    /** Interns a log-bucketed histogram. */
    Handle histogram(std::string_view name,
                     std::uint16_t scope = kGlobalScope);

    void add(Handle h, std::uint64_t delta = 1)
    {
        counter_values_[h] += delta;
    }
    void set(Handle h, std::uint64_t value) { gauge_values_[h] = value; }
    void observe(Handle h, std::uint64_t value)
    {
        histogram_values_[h].observe(value);
    }

    std::uint64_t counter_value(Handle h) const
    {
        return counter_values_[h];
    }
    std::uint64_t gauge_value(Handle h) const { return gauge_values_[h]; }
    const LogHistogram &histogram_value(Handle h) const
    {
        return histogram_values_[h];
    }

    /** Cold-path update by name (interns on first use). */
    void bump(std::string_view name, std::uint64_t delta = 1,
              std::uint16_t scope = kGlobalScope)
    {
        add(counter(name, scope), delta);
    }

    /**
     * Global-scope counter value of @p name, zero if never registered
     * (drop-in for util::CounterGroup::get).
     */
    std::uint64_t get(std::string_view name) const;

    /**
     * "name=value name=value ..." of the global-scope counters, in
     * name order (drop-in for util::CounterGroup::to_string).
     */
    std::string to_string() const;

    /**
     * JSON snapshot: {"counters": {...}, "gauges": {...},
     * "histograms": {name: {count, sum, mean, min, max, p50, p99}}}.
     * Scoped metric keys are prefixed "fnN/".
     */
    std::string to_json() const;

    /**
     * Prometheus text exposition (version 0.0.4). Metric names are
     * prefixed "nesc_" and sanitized to [a-zA-Z0-9_]; one `# TYPE`
     * line per family. Scoped metrics become labelled samples of the
     * shared family (`nesc_faults{fn="3"} 7`). Histograms export as
     * summaries: p50/p99/p999 quantile samples plus _sum and _count.
     */
    std::string to_prometheus() const;

    /** Display name of counter handle @p h ("name" or "fnN/name"). */
    std::string counter_key(Handle h) const;
    /** Display name of gauge handle @p h ("name" or "fnN/name"). */
    std::string gauge_key(Handle h) const;

    std::size_t counter_count() const { return counter_values_.size(); }
    std::size_t gauge_count() const { return gauge_values_.size(); }
    std::size_t histogram_count() const
    {
        return histogram_values_.size();
    }

    /** Zeroes every value; handles stay valid. */
    void reset_values();

  private:
    struct Meta {
        std::string name;
        std::uint16_t scope;
    };
    using Key = std::pair<std::string, std::uint16_t>;

    std::map<Key, Handle> counter_index_;
    std::map<Key, Handle> gauge_index_;
    std::map<Key, Handle> histogram_index_;
    std::vector<Meta> counter_meta_;
    std::vector<Meta> gauge_meta_;
    std::vector<Meta> histogram_meta_;
    std::vector<std::uint64_t> counter_values_;
    std::vector<std::uint64_t> gauge_values_;
    std::vector<LogHistogram> histogram_values_;
};

} // namespace nesc::obs

#endif // NESC_OBS_METRICS_H
