/**
 * @file
 * Always-on per-function flight recorder with postmortem capture.
 *
 * A FlightRecorder keeps a small bounded ring of recent command
 * lifecycle events (doorbell, fetch, complete, fault) per function.
 * Unlike the Tracer it is cheap enough to leave on in production:
 * each record is one branch plus a fixed-size store into a
 * preallocated ring, there is no export path on the hot side, and the
 * ring depth is tens of events, not millions.
 *
 * When something goes wrong — a fault completion, a quarantine, a
 * checksum mismatch, a replica demotion — the controller calls
 * snapshot(), which freezes the affected function's ring into a
 * bounded postmortem buffer (drop-oldest). The PF later dumps the
 * buffer as JSON (`PfDriver::dump_postmortem`) for crash forensics
 * without ever having enabled the full tracer.
 *
 * Cost model: compiled in, OFF by default. record() with the recorder
 * disabled is a single predictable branch; snapshot() with the
 * recorder disabled is a no-op. Nothing allocates on the record path.
 */
#ifndef NESC_OBS_FLIGHT_RECORDER_H
#define NESC_OBS_FLIGHT_RECORDER_H

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "sim/time.h"

namespace nesc::obs {

/** Lifecycle event classes the flight recorder distinguishes. */
enum class FlightEventType : std::uint8_t {
    kDoorbell = 0, ///< doorbell register write (aux = queue pair id)
    kFetch,        ///< command descriptor fetched (aux = opcode)
    kComplete,     ///< completion posted (aux = completion status)
    kFault,        ///< fault / reject / mismatch (aux = cause code)
};

const char *flight_event_type_name(FlightEventType type);

/** Why a postmortem snapshot was taken. */
enum class PostmortemReason : std::uint8_t {
    kFault = 0,          ///< translation/DMA fault completed a command
    kQuarantine,         ///< function quarantined
    kChecksumError,      ///< end-to-end checksum mismatch
    kReplicaDemotion,    ///< a replica backend was demoted
};

const char *postmortem_reason_name(PostmortemReason reason);

/** One recorded lifecycle event. */
struct FlightEvent {
    sim::Time at = 0;
    std::uint64_t vlba = 0;
    std::uint32_t tag = 0;
    std::uint32_t aux = 0; ///< type-specific payload, see FlightEventType
    std::uint16_t fn = 0;
    FlightEventType type = FlightEventType::kDoorbell;
};

/** A frozen copy of one function's ring, oldest event first. */
struct Postmortem {
    sim::Time at = 0;            ///< snapshot time
    std::uint64_t detail = 0;    ///< reason-specific (backend id, cause)
    std::uint16_t fn = 0;
    PostmortemReason reason = PostmortemReason::kFault;
    std::vector<FlightEvent> events;
};

class FlightRecorder {
  public:
    /** Default per-function ring depth (events retained). */
    static constexpr std::size_t kDefaultDepth = 32;
    /** Postmortems retained before drop-oldest kicks in. */
    static constexpr std::size_t kMaxPostmortems = 16;

    /**
     * Enables recording for @p num_functions functions with a ring of
     * @p depth events each (rounded up to a power of two, so the
     * per-record ring index is a mask, not a division). Re-enabling
     * resets all rings. Retained postmortems survive enable/disable
     * cycles.
     */
    void enable(std::uint16_t num_functions,
                std::size_t depth = kDefaultDepth);
    void disable();
    bool enabled() const { return enabled_; }
    std::size_t depth() const { return depth_; }

    /**
     * Hot path: records one event; single branch when disabled. The
     * ring store itself is out-of-line (flight_recorder.cc) to keep
     * the recorder's footprint out of the controller's icache-critical
     * lifecycle functions; only this branch inlines there.
     */
    void record(std::uint16_t fn, FlightEventType type, sim::Time at,
                std::uint32_t tag, std::uint64_t vlba, std::uint32_t aux)
    {
        if (!enabled_ || fn >= fn_count_)
            return;
        record_slow(fn, type, at, tag, vlba, aux);
    }

    /**
     * Freezes @p fn's ring into the postmortem buffer (oldest event
     * first). No-op while disabled. Oldest postmortems are dropped
     * once kMaxPostmortems are retained.
     */
    void snapshot(std::uint16_t fn, PostmortemReason reason, sim::Time at,
                  std::uint64_t detail = 0);

    const std::deque<Postmortem> &postmortems() const { return postmortems_; }
    std::uint64_t postmortems_taken() const { return taken_; }
    std::uint64_t postmortems_dropped() const { return dropped_; }
    void clear_postmortems();

    /** Events currently retained in @p fn's ring (capped at depth). */
    std::size_t retained(std::uint16_t fn) const;

    /** JSON dump of every retained postmortem (stable field order). */
    std::string postmortem_json() const;

  private:
    void record_slow(std::uint16_t fn, FlightEventType type, sim::Time at,
                     std::uint32_t tag, std::uint64_t vlba,
                     std::uint32_t aux);

    std::vector<FlightEvent> rings_; ///< fn-major, depth_ slots each
    std::vector<std::uint64_t> heads_;
    std::deque<Postmortem> postmortems_;
    std::size_t depth_ = kDefaultDepth;
    std::uint16_t fn_count_ = 0;
    bool enabled_ = false;
    std::uint64_t taken_ = 0;
    std::uint64_t dropped_ = 0;
};

} // namespace nesc::obs

#endif // NESC_OBS_FLIGHT_RECORDER_H
