#include "flight_recorder.h"

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cstdio>

namespace nesc::obs {

const char *
flight_event_type_name(FlightEventType type)
{
    switch (type) {
    case FlightEventType::kDoorbell: return "doorbell";
    case FlightEventType::kFetch: return "fetch";
    case FlightEventType::kComplete: return "complete";
    case FlightEventType::kFault: return "fault";
    }
    return "unknown";
}

const char *
postmortem_reason_name(PostmortemReason reason)
{
    switch (reason) {
    case PostmortemReason::kFault: return "fault";
    case PostmortemReason::kQuarantine: return "quarantine";
    case PostmortemReason::kChecksumError: return "checksum_error";
    case PostmortemReason::kReplicaDemotion: return "replica_demotion";
    }
    return "unknown";
}

void
FlightRecorder::enable(std::uint16_t num_functions, std::size_t depth)
{
    const std::size_t want = std::bit_ceil(std::max<std::size_t>(1, depth));
    // Same-shape re-enable only rewinds the heads: every slot behind a
    // zero head is unreachable, so skipping the ring memset (tens of
    // KiB) is invisible to readers but keeps re-arming from flushing
    // the data path's cache footprint.
    if (depth_ == want && heads_.size() == num_functions &&
        rings_.size() == static_cast<std::size_t>(num_functions) * want) {
        std::fill(heads_.begin(), heads_.end(), 0);
        fn_count_ = num_functions;
        enabled_ = true;
        return;
    }
    depth_ = want;
    fn_count_ = num_functions;
    rings_.assign(static_cast<std::size_t>(fn_count_) * depth_, {});
    heads_.assign(fn_count_, 0);
    enabled_ = true;
}

void
FlightRecorder::disable()
{
    // The rings stay allocated so re-enabling is cheap and toggling the
    // recorder leaves the heap layout untouched; fn_count_ = 0 keeps
    // record()/snapshot()/retained() inert while disabled.
    enabled_ = false;
    fn_count_ = 0;
}

void
FlightRecorder::record_slow(std::uint16_t fn, FlightEventType type,
                            sim::Time at, std::uint32_t tag,
                            std::uint64_t vlba, std::uint32_t aux)
{
    FlightEvent &e = rings_[fn * depth_ + (heads_[fn] & (depth_ - 1))];
    e.at = at;
    e.vlba = vlba;
    e.tag = tag;
    e.aux = aux;
    e.fn = fn;
    e.type = type;
    ++heads_[fn];
}

std::size_t
FlightRecorder::retained(std::uint16_t fn) const
{
    if (!enabled_ || fn >= fn_count_)
        return 0;
    return static_cast<std::size_t>(
        std::min<std::uint64_t>(heads_[fn], depth_));
}

void
FlightRecorder::snapshot(std::uint16_t fn, PostmortemReason reason,
                         sim::Time at, std::uint64_t detail)
{
    if (!enabled_ || fn >= fn_count_)
        return;
    Postmortem pm;
    pm.at = at;
    pm.detail = detail;
    pm.fn = fn;
    pm.reason = reason;
    const std::size_t count = retained(fn);
    pm.events.reserve(count);
    // heads_[fn] is the next write slot; the oldest retained event
    // lives heads_[fn] - count slots back.
    for (std::size_t i = 0; i < count; ++i) {
        const std::uint64_t seq = heads_[fn] - count + i;
        pm.events.push_back(rings_[fn * depth_ + seq % depth_]);
    }
    postmortems_.push_back(std::move(pm));
    ++taken_;
    while (postmortems_.size() > kMaxPostmortems) {
        postmortems_.pop_front();
        ++dropped_;
    }
}

void
FlightRecorder::clear_postmortems()
{
    postmortems_.clear();
}

std::string
FlightRecorder::postmortem_json() const
{
    std::string out = "{\"postmortems\": [";
    char buf[192];
    bool first_pm = true;
    for (const Postmortem &pm : postmortems_) {
        if (!first_pm)
            out += ", ";
        first_pm = false;
        std::snprintf(buf, sizeof buf,
                      "{\"fn\": %u, \"reason\": \"%s\", \"at\": %" PRIu64
                      ", \"detail\": %" PRIu64 ", \"events\": [",
                      pm.fn, postmortem_reason_name(pm.reason), pm.at,
                      pm.detail);
        out += buf;
        bool first_ev = true;
        for (const FlightEvent &e : pm.events) {
            if (!first_ev)
                out += ", ";
            first_ev = false;
            std::snprintf(buf, sizeof buf,
                          "{\"type\": \"%s\", \"at\": %" PRIu64
                          ", \"tag\": %u, \"vlba\": %" PRIu64
                          ", \"aux\": %u}",
                          flight_event_type_name(e.type), e.at, e.tag,
                          e.vlba, e.aux);
            out += buf;
        }
        out += "]}";
    }
    out += "]}";
    return out;
}

} // namespace nesc::obs
