/**
 * @file
 * Per-function windowed latency/IOPS accounting and SLO watch.
 *
 * SloWatch maintains, for every function, a rotating pair of time
 * windows. The *current* window accumulates end-to-end and per-stage
 * latency LogHistograms plus op/error counts as commands complete;
 * on rotation it becomes the *closed* window — the stable snapshot
 * the PF-only registers read — and a fresh window starts. The
 * controller drives rotation from a sim timer at the PF-programmed
 * window length.
 *
 * SLO evaluation happens only at rotation, against the window that
 * just closed. That gives inherent rate limiting: a function can
 * breach each metric at most once per window, no matter how many
 * commands violated the threshold inside it. Breaches are pushed to a
 * bounded directory (drop-oldest) and reported through an optional
 * hook so the controller can count/trace/log them.
 *
 * Cost model: compiled in, OFF until enable(). The controller guards
 * the per-completion observe calls with a single branch on the
 * PF-programmed window length, so the plane is free when off.
 */
#ifndef NESC_OBS_SLO_H
#define NESC_OBS_SLO_H

#include <array>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "obs/metrics.h"
#include "sim/time.h"

namespace nesc::obs {

/** Per-function SLO thresholds; 0 disables that check. */
struct SloLimits {
    std::uint64_t max_p99_ns = 0;    ///< end-to-end p99 ceiling
    std::uint64_t max_error_ppm = 0; ///< errored ops per million ops
};

/** Which threshold a breach tripped. */
enum class SloMetric : std::uint8_t {
    kLatencyP99 = 0,
    kErrorRate = 1,
};

const char *slo_metric_name(SloMetric metric);

/** One SLO violation, evaluated over a closed window. */
struct SloBreach {
    std::uint64_t observed = 0;
    std::uint64_t threshold = 0;
    sim::Time window_start = 0; ///< start of the breaching window
    std::uint16_t fn = 0;
    SloMetric metric = SloMetric::kLatencyP99;
};

class SloWatch {
  public:
    /** Latency stages tracked per window. */
    enum Stage : std::uint32_t {
        kEndToEnd = 0,
        kQueue = 1,
        kTranslate = 2,
        kTransfer = 3,
    };
    static constexpr std::size_t kStages = 4;
    /** Staged samples folded into the histograms per burst. */
    static constexpr std::size_t kStageBatch = 64;
    /** Breaches retained in the directory before drop-oldest. */
    static constexpr std::size_t kMaxBreaches = 64;
    /**
     * Per-window exact-sampling prefix. The first kExactPerWindow OK
     * completions of each function's window are all staged; beyond
     * that only every (kSampleMask+1)-th is. Lightly loaded windows —
     * the ones where a single command decides a breach — therefore
     * keep full fidelity, while a saturated tenant's window thins to
     * 1-in-8, whose effect on a log-bucketed p99 is far below the
     * bucketing error itself. Op and error *counts* are always exact;
     * only the histograms sample. The schedule is a deterministic
     * per-window counter, never a PRNG.
     */
    static constexpr std::uint32_t kExactPerWindow = 64;
    /** Post-prefix sampling mask: stage when (seen & mask) == 0. */
    static constexpr std::uint32_t kSampleMask = 7;

    using BreachHook = std::function<void(const SloBreach &)>;

    /**
     * Starts accounting for @p num_functions functions; both windows
     * begin empty at @p now. Re-enabling with accounting already on
     * is a no-op (window pacing is the controller's concern).
     */
    void enable(std::uint16_t num_functions, sim::Time now);
    void disable();
    bool enabled() const { return enabled_; }

    void set_breach_hook(BreachHook hook) { hook_ = std::move(hook); }
    /** Programs @p fn's thresholds; zeros make it unwatched. */
    void set_limits(std::uint16_t fn, SloLimits limits);
    SloLimits limits(std::uint16_t fn) const;

    /**
     * Hot path: one successfully completed op's stage latencies.
     * Also counts the op (as non-errored), so the common OK path is a
     * single call; note_op() is only for completions with no usable
     * stage timestamps (errors, faulted ops).
     *
     * Samples are appended to a small per-function staging buffer (a
     * sequential 32-byte store) and folded into the window histograms
     * in batches: scattering 8+ cache lines across four LogHistograms
     * on every completion costs more than the whole simulation step,
     * while a burst of kStageBatch samples amortizes those misses to
     * noise. The staging buffer drains on batch-full and at every
     * rotation, so closed-window reads never see staged samples.
     * Past kExactPerWindow ops in one window, samples thin to
     * 1-in-(kSampleMask+1); see kExactPerWindow for the fidelity
     * argument. Ops/error counts never sample.
     */
    /**
     * Deliberately out-of-line (slo.cc): the controller's completion
     * path is icache-critical, and inlining the staging body into it
     * measurably slows the *surrounding* code. The call itself is
     * behind the controller's single obs-armed branch, so the
     * plane-off path never pays it.
     */
    void observe_ok(std::uint16_t fn, std::uint64_t e2e_ns,
                    std::uint64_t queue_ns, std::uint64_t translate_ns,
                    std::uint64_t transfer_ns);

    /** Hot path: counts one completed op observe_ok() did not see. */
    void note_op(std::uint16_t fn, bool error);

    /**
     * Closes every function's current window (evaluating SLOs on it),
     * exposes it as the closed window, and starts a fresh one at
     * @p now.
     */
    void rotate(sim::Time now);

    // --- Closed-window introspection (what the registers read) -------

    /** @p fn's closed-window histogram for @p stage; nullptr invalid. */
    const LogHistogram *window(std::uint16_t fn, std::uint32_t stage) const;
    std::uint64_t window_ops(std::uint16_t fn) const;
    std::uint64_t window_errors(std::uint16_t fn) const;
    sim::Time window_start(std::uint16_t fn) const;
    std::uint64_t windows_rotated() const { return rotations_; }

    const std::deque<SloBreach> &breaches() const { return breaches_; }
    std::uint64_t breaches_raised() const { return raised_; }
    std::uint64_t breaches_dropped() const { return breach_dropped_; }
    void clear_breaches();

  private:
    struct Window {
        std::array<LogHistogram, kStages> stages;
        std::uint64_t ops = 0;
        std::uint64_t errors = 0;
        sim::Time start = 0;
        /** Set by drain() when anything lands in the window. */
        bool dirty = false;

        void reset(sim::Time at);
    };
    /** One staged completion: all four stage latencies, 32 bytes. */
    struct Staged {
        std::uint64_t v[kStages];
    };
    struct FnState {
        /** Hot header: everything a completion touches, up front. */
        std::uint32_t staged_count = 0;
        /** OK completions seen this window (drives the sampling gate). */
        std::uint32_t window_seen = 0;
        /** In touched_ already; avoids duplicate list entries. */
        bool touched = false;
        std::uint64_t staged_ops = 0;
        std::uint64_t staged_errors = 0;
        /**
         * rotations_ value when closed was last swapped in. A stale
         * epoch means the function was idle over the whole last
         * window, so readers report the window as empty instead of
         * resurrecting older data. This is what lets rotation skip
         * idle functions entirely: nothing per-function is reset, the
         * epoch comparison hides the leftovers.
         */
        std::uint64_t closed_epoch = 0;
        std::array<Staged, kStageBatch> staged;
        Window current;
        Window closed;
        SloLimits limits;
    };

    /** First activity of the window enlists @p fn for rotation work. */
    void touch(std::uint16_t fn, FnState &f)
    {
        if (!f.touched) {
            f.touched = true;
            touched_.push_back(fn);
        }
    }

    /** Folds @p f's staged samples/counts into its current window. */
    void drain(FnState &f);
    void evaluate(std::uint16_t fn, const Window &window);
    void raise(const SloBreach &breach);

    std::vector<FnState> fns_;
    /** Functions with any activity since the last rotation. */
    std::vector<std::uint16_t> touched_;
    std::deque<SloBreach> breaches_;
    BreachHook hook_;
    /** Time the current windows opened (last rotation, or enable). */
    sim::Time window_open_ = 0;
    /** Time the just-closed windows opened (previous rotation). */
    sim::Time closed_open_ = 0;
    std::uint64_t rotations_ = 0;
    std::uint64_t raised_ = 0;
    std::uint64_t breach_dropped_ = 0;
    bool enabled_ = false;
};

} // namespace nesc::obs

#endif // NESC_OBS_SLO_H
