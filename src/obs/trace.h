/**
 * @file
 * Per-command lifecycle tracing.
 *
 * A Tracer collects timestamped span events — (simulated start time,
 * duration, function id, pipeline stage, command tag, auxiliary
 * payload) — into a bounded ring. Every pipeline stage of the device
 * model records into it: doorbell, command fetch, arbitration wait,
 * translation (BTLB hit or tree walk), DMA, data transfer, completion.
 *
 * Cost model: tracing is compiled in but OFF by default. Every record
 * call is guarded by a single `enabled()` branch and the ring is
 * preallocated at enable() time, so the hot path neither allocates nor
 * formats anything. Per-stage aggregate totals (count + summed
 * duration) are maintained at record time in O(1) memory, so stage
 * accounting stays exact even after the ring wraps and old events are
 * overwritten.
 *
 * Export: Chrome trace-event JSON (load in Perfetto / chrome://tracing;
 * one track per function id, one sub-track per stage) and a text
 * "flame summary" of per-stage totals.
 */
#ifndef NESC_OBS_TRACE_H
#define NESC_OBS_TRACE_H

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/bandwidth_server.h"
#include "sim/time.h"
#include "util/status.h"

namespace nesc::obs {

/** Pipeline stages a span event can belong to. */
enum class Stage : std::uint8_t {
    kDoorbell = 0, ///< doorbell register write (instant)
    kCmdFetch,     ///< one command descriptor fetched from the ring
    kQueueWait,    ///< block op waiting for arbitration
    kTranslate,    ///< block op in the translation unit
    kTransfer,     ///< block op in the data-transfer unit
    kBtlbHit,      ///< translation resolved by the BTLB (instant)
    kWalk,         ///< extent-tree walk, launch to resolution
    kZeroFill,     ///< hole read served by the zero-fill engine
    kDmaRead,      ///< device-initiated DMA read (issue to completion)
    kDmaWrite,     ///< device-initiated DMA write
    kLink,         ///< PCIe link occupancy (shared resource)
    kComplete,     ///< completion record posted (instant)
    kFault,        ///< translation fault latched (instant)
    kValidateFail, ///< descriptor/ring validation rejection (instant)
    kAbort,        ///< command aborted by watchdog/reset (instant)
    kQuarantine,   ///< function moved to quarantine (instant)
    kReplRead,     ///< block op served by the replica set (read path)
    kReplWrite,    ///< block op mirrored by the replica set (write path)
    kResync,       ///< background replica resync activity
    kChecksum,     ///< payload checksum mismatch + recovery ladder
    kScrub,        ///< background integrity scrub activity
    kSloBreach,    ///< SLO threshold violated over a closed window
    kCount,
};

inline constexpr std::size_t kStageCount =
    static_cast<std::size_t>(Stage::kCount);

/** Stable display name of @p stage ("queue_wait", "translate", ...). */
const char *stage_name(Stage stage);

/**
 * Pseudo function id used for spans of shared resources that are not
 * attributable to one function (the PCIe link track).
 */
inline constexpr std::uint16_t kLinkTrack = 0xffff;

/** One recorded event; dur == 0 marks an instant event. */
struct SpanEvent {
    sim::Time start = 0;
    sim::Duration dur = 0;
    std::uint64_t tag = 0; ///< command tag (0 when not command-bound)
    std::uint64_t aux = 0; ///< stage-specific payload (vLBA, bytes, ...)
    std::uint16_t fn = 0;
    Stage stage = Stage::kDoorbell;
};

/** Exact per-stage aggregate, maintained independently of the ring. */
struct StageTotals {
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
};

/** Bounded-ring span collector; see file comment. */
class Tracer {
  public:
    static constexpr std::size_t kDefaultCapacity = 1 << 16;

    bool enabled() const { return enabled_; }

    /**
     * Starts collection into a ring of @p capacity events (the ring is
     * preallocated here, never on the record path). Re-enabling resets
     * previously recorded state.
     */
    void enable(std::size_t capacity = kDefaultCapacity);

    /** Stops collection; recorded events and totals stay readable. */
    void disable() { enabled_ = false; }

    /** Drops every recorded event and all aggregate totals. */
    void clear();

    /** Records a [start, end) span. No-op while disabled. */
    void span(Stage stage, std::uint16_t fn, sim::Time start,
              sim::Time end, std::uint64_t tag = 0, std::uint64_t aux = 0)
    {
        if (!enabled_)
            return;
        record(SpanEvent{start, end >= start ? end - start : 0, tag, aux,
                         fn, stage});
    }

    /** Records an instant (zero-duration) event. No-op while disabled. */
    void instant(Stage stage, std::uint16_t fn, sim::Time at,
                 std::uint64_t tag = 0, std::uint64_t aux = 0)
    {
        if (!enabled_)
            return;
        record(SpanEvent{at, 0, tag, aux, fn, stage});
    }

    /** Events recorded since enable(), including overwritten ones. */
    std::uint64_t recorded() const { return recorded_; }
    /** Events lost to ring wrap-around. */
    std::uint64_t dropped() const { return dropped_; }
    std::size_t capacity() const { return ring_.size(); }
    /** Events currently retained in the ring. */
    std::size_t size() const
    {
        return wrapped_ ? ring_.size() : head_;
    }

    /** Retained events in chronological (recording) order. */
    std::vector<SpanEvent> events() const;

    /** Exact aggregate of every recorded event of @p stage. */
    const StageTotals &totals(Stage stage) const
    {
        return totals_[static_cast<std::size_t>(stage)];
    }

    /**
     * Chrome trace-event JSON of the retained events: one process
     * ("track") per function id, one named thread per stage.
     * Timestamps are microseconds of simulated time.
     */
    std::string chrome_json() const;

    /** Writes chrome_json() to @p path. */
    util::Status write_chrome_json(const std::string &path) const;

    /** Text table of per-stage totals (count, total time, mean). */
    std::string flame_summary() const;

  private:
    void record(const SpanEvent &event);

    bool enabled_ = false;
    std::vector<SpanEvent> ring_;
    std::size_t head_ = 0;
    bool wrapped_ = false;
    std::uint64_t recorded_ = 0;
    std::uint64_t dropped_ = 0;
    std::array<StageTotals, kStageCount> totals_{};
};

/**
 * Adapter wiring a sim::BandwidthServer's transfer stream into a
 * Tracer as kLink spans on the shared-link track.
 */
class LinkTraceObserver final : public sim::BandwidthObserver {
  public:
    explicit LinkTraceObserver(Tracer &tracer) : tracer_(tracer) {}

    void
    on_transfer(sim::Time begin, sim::Time complete,
                std::uint64_t bytes) override
    {
        tracer_.span(Stage::kLink, kLinkTrack, begin, complete, 0, bytes);
    }

  private:
    Tracer &tracer_;
};

} // namespace nesc::obs

#endif // NESC_OBS_TRACE_H
