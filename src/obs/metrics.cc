#include "obs/metrics.h"

#include <cmath>
#include <cstdio>

namespace nesc::obs {

double
LogHistogram::percentile(double p) const
{
    if (count_ == 0)
        return 0.0;
    // Written as !(p > 0) so NaN also resolves to the minimum instead
    // of falling through to the bucket scan with a NaN rank.
    if (!(p > 0.0))
        return static_cast<double>(min());
    if (p >= 100.0)
        return static_cast<double>(max_);
    const double rank = p / 100.0 * static_cast<double>(count_);
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
        seen += buckets_[b];
        if (static_cast<double>(seen) >= rank) {
            // Bucket b holds values in [2^(b-1), 2^b); use the
            // geometric midpoint, clamped to the observed range.
            const double lo = b == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(b) - 1);
            const double hi = std::ldexp(1.0, static_cast<int>(b));
            double v = b == 0 ? 0.0 : std::sqrt(lo * hi);
            if (v < static_cast<double>(min()))
                v = static_cast<double>(min());
            if (v > static_cast<double>(max_))
                v = static_cast<double>(max_);
            return v;
        }
    }
    return static_cast<double>(max_);
}

namespace {

MetricsRegistry::Handle
intern(std::map<std::pair<std::string, std::uint16_t>,
                MetricsRegistry::Handle> &index,
       std::vector<std::uint64_t> *values, std::string_view name,
       std::uint16_t scope, std::size_t current_size)
{
    auto [it, inserted] = index.try_emplace(
        {std::string(name), scope},
        static_cast<MetricsRegistry::Handle>(current_size));
    if (inserted && values != nullptr)
        values->push_back(0);
    return it->second;
}

std::string
scoped_name(const std::string &name, std::uint16_t scope)
{
    if (scope == kGlobalScope)
        return name;
    return "fn" + std::to_string(scope) + "/" + name;
}

void
append_json_string(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

/** Prometheus metric name: "nesc_" + name with [^a-zA-Z0-9_] -> '_'. */
std::string
prometheus_name(const std::string &name)
{
    std::string out = "nesc_";
    for (char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_';
        out += ok ? c : '_';
    }
    return out;
}

/** `{fn="N"}` label set for scoped metrics, empty for global ones. */
std::string
prometheus_labels(std::uint16_t scope)
{
    if (scope == kGlobalScope)
        return "";
    return "{fn=\"" + std::to_string(scope) + "\"}";
}

} // namespace

MetricsRegistry::Handle
MetricsRegistry::counter(std::string_view name, std::uint16_t scope)
{
    const Handle h = intern(counter_index_, &counter_values_, name, scope,
                            counter_values_.size());
    if (h == counter_meta_.size())
        counter_meta_.push_back({std::string(name), scope});
    return h;
}

MetricsRegistry::Handle
MetricsRegistry::gauge(std::string_view name, std::uint16_t scope)
{
    const Handle h = intern(gauge_index_, &gauge_values_, name, scope,
                            gauge_values_.size());
    if (h == gauge_meta_.size())
        gauge_meta_.push_back({std::string(name), scope});
    return h;
}

MetricsRegistry::Handle
MetricsRegistry::histogram(std::string_view name, std::uint16_t scope)
{
    const Handle h = intern(histogram_index_, nullptr, name, scope,
                            histogram_values_.size());
    if (h == histogram_values_.size()) {
        histogram_values_.emplace_back();
        histogram_meta_.push_back({std::string(name), scope});
    }
    return h;
}

std::uint64_t
MetricsRegistry::get(std::string_view name) const
{
    const auto it =
        counter_index_.find({std::string(name), kGlobalScope});
    return it == counter_index_.end() ? 0 : counter_values_[it->second];
}

std::string
MetricsRegistry::to_string() const
{
    // counter_index_ is name-ordered, matching the old CounterGroup
    // map iteration order for global counters.
    std::string out;
    for (const auto &[key, handle] : counter_index_) {
        if (key.second != kGlobalScope)
            continue;
        if (!out.empty())
            out += ' ';
        out += key.first;
        out += '=';
        out += std::to_string(counter_values_[handle]);
    }
    return out;
}

std::string
MetricsRegistry::to_json() const
{
    std::string out = "{\n  \"counters\": {";
    bool first = true;
    for (const auto &[key, handle] : counter_index_) {
        out += first ? "\n    " : ",\n    ";
        first = false;
        append_json_string(out, scoped_name(key.first, key.second));
        out += ": " + std::to_string(counter_values_[handle]);
    }
    out += "\n  },\n  \"gauges\": {";
    first = true;
    for (const auto &[key, handle] : gauge_index_) {
        out += first ? "\n    " : ",\n    ";
        first = false;
        append_json_string(out, scoped_name(key.first, key.second));
        out += ": " + std::to_string(gauge_values_[handle]);
    }
    out += "\n  },\n  \"histograms\": {";
    first = true;
    for (const auto &[key, handle] : histogram_index_) {
        const LogHistogram &h = histogram_values_[handle];
        out += first ? "\n    " : ",\n    ";
        first = false;
        append_json_string(out, scoped_name(key.first, key.second));
        char buf[256];
        std::snprintf(buf, sizeof buf,
                      ": {\"count\": %llu, \"sum\": %llu, "
                      "\"mean\": %.4f, \"min\": %llu, \"max\": %llu, "
                      "\"p50\": %.1f, \"p99\": %.1f}",
                      static_cast<unsigned long long>(h.count()),
                      static_cast<unsigned long long>(h.sum()), h.mean(),
                      static_cast<unsigned long long>(h.min()),
                      static_cast<unsigned long long>(h.max()),
                      h.percentile(50.0), h.percentile(99.0));
        out += buf;
    }
    out += "\n  }\n}\n";
    return out;
}

std::string
MetricsRegistry::to_prometheus() const
{
    // The index maps are ordered by (name, scope), so every sample of
    // a family is adjacent and each family gets exactly one TYPE line.
    std::string out;
    std::string family;
    for (const auto &[key, handle] : counter_index_) {
        const std::string name = prometheus_name(key.first);
        if (name != family) {
            family = name;
            out += "# TYPE " + name + " counter\n";
        }
        out += name + prometheus_labels(key.second) + " " +
               std::to_string(counter_values_[handle]) + "\n";
    }
    family.clear();
    for (const auto &[key, handle] : gauge_index_) {
        const std::string name = prometheus_name(key.first);
        if (name != family) {
            family = name;
            out += "# TYPE " + name + " gauge\n";
        }
        out += name + prometheus_labels(key.second) + " " +
               std::to_string(gauge_values_[handle]) + "\n";
    }
    family.clear();
    for (const auto &[key, handle] : histogram_index_) {
        const LogHistogram &h = histogram_values_[handle];
        const std::string name = prometheus_name(key.first);
        if (name != family) {
            family = name;
            out += "# TYPE " + name + " summary\n";
        }
        const std::string labels = prometheus_labels(key.second);
        // Quantile samples carry the quantile label next to any fn
        // label: nesc_x{fn="3",quantile="0.5"}.
        const std::string open =
            labels.empty() ? "{" : labels.substr(0, labels.size() - 1) + ",";
        static constexpr struct {
            const char *label;
            double p;
        } kQuantiles[] = {
            {"0.5", 50.0}, {"0.99", 99.0}, {"0.999", 99.9}};
        char buf[64];
        for (const auto &q : kQuantiles) {
            std::snprintf(buf, sizeof buf, " %.6g\n", h.percentile(q.p));
            out += name + open + "quantile=\"" + q.label + "\"}" + buf;
        }
        out += name + "_sum" + labels + " " + std::to_string(h.sum()) +
               "\n";
        out += name + "_count" + labels + " " +
               std::to_string(h.count()) + "\n";
    }
    return out;
}

std::string
MetricsRegistry::counter_key(Handle h) const
{
    if (h >= counter_meta_.size())
        return "";
    return scoped_name(counter_meta_[h].name, counter_meta_[h].scope);
}

std::string
MetricsRegistry::gauge_key(Handle h) const
{
    if (h >= gauge_meta_.size())
        return "";
    return scoped_name(gauge_meta_[h].name, gauge_meta_[h].scope);
}

void
MetricsRegistry::reset_values()
{
    for (auto &v : counter_values_)
        v = 0;
    for (auto &v : gauge_values_)
        v = 0;
    for (auto &h : histogram_values_)
        h.reset();
}

} // namespace nesc::obs
