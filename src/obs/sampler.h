/**
 * @file
 * Time-series sampling of a MetricsRegistry.
 *
 * A TimeSeriesSampler snapshots every counter and gauge of a registry
 * into a bounded series (drop-oldest), so benches and the tier-2
 * scripts can plot trajectories instead of end-state totals. The
 * controller drives sample() from a sim timer at the PF-programmed
 * interval; the sampler itself has no notion of time beyond the
 * timestamps it is handed.
 *
 * Samples store raw values indexed by metric handle — handles are
 * append-only, so a value vector shorter than the current handle
 * count simply predates the newer metrics. Names are resolved from
 * the registry only at export time.
 */
#ifndef NESC_OBS_SAMPLER_H
#define NESC_OBS_SAMPLER_H

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "sim/time.h"

namespace nesc::obs {

class TimeSeriesSampler {
  public:
    /** Samples retained before drop-oldest kicks in (default). */
    static constexpr std::size_t kDefaultCapacity = 256;

    explicit TimeSeriesSampler(const MetricsRegistry &registry)
        : registry_(registry)
    {
    }

    /** Caps retained samples; trims the series if already longer. */
    void set_capacity(std::size_t samples);
    std::size_t capacity() const { return capacity_; }

    /** Snapshots every counter and gauge at time @p now. */
    void sample(sim::Time now);

    std::size_t size() const { return series_.size(); }
    std::uint64_t taken() const { return taken_; }
    std::uint64_t dropped() const { return dropped_; }
    void clear();

    /**
     * JSON export: `{"samples": [{"t": ..., "counters": {...},
     * "gauges": {...}}, ...], "taken": N, "dropped": M}`. Scoped
     * metrics render as "fnN/name", like MetricsRegistry::to_json.
     */
    std::string to_json() const;

  private:
    struct Sample {
        sim::Time at = 0;
        std::vector<std::uint64_t> counters;
        std::vector<std::uint64_t> gauges;
    };

    const MetricsRegistry &registry_;
    std::deque<Sample> series_;
    std::size_t capacity_ = kDefaultCapacity;
    std::uint64_t taken_ = 0;
    std::uint64_t dropped_ = 0;
};

} // namespace nesc::obs

#endif // NESC_OBS_SAMPLER_H
