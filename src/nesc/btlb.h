/**
 * @file
 * Block Translation Lookaside Buffer (paper §V.B).
 *
 * A small cache of the most recent extents used in translation, tagged
 * by function so one VF can never consume another VF's mapping. Two
 * organisations are supported:
 *
 *  - **Fully associative, FIFO replacement** (the paper's prototype:
 *    8 entries, "evicting the oldest entry"). Lookup is a linear scan
 *    in insertion order — fine at 8 entries, O(n) beyond.
 *
 *  - **Set associative, pseudo-LRU replacement** (the scaled fast
 *    path). The cache is sets x ways; the set index is derived from
 *    the function id and the vLBA's *range granule* (vlba >>
 *    range_shift), so a lookup probes exactly one set — O(ways) =
 *    O(1) regardless of capacity. Because entries are variable-length
 *    extents, an extent spanning several granules is only guaranteed
 *    to hit in the granule it was inserted under; neighbouring
 *    granules re-walk and insert their own copy. Replacement is
 *    tree-pLRU per set.
 *
 * Both modes reject an insert equal to a cached entry, and replace
 * (rather than shadow) cached entries of the same function that
 * overlap the new extent without being equal — the fresh walk is
 * authoritative, and keeping both would make hits depend
 * nondeterministically on insertion order.
 */
#ifndef NESC_CTRL_BTLB_H
#define NESC_CTRL_BTLB_H

#include <bit>
#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "extent/types.h"
#include "pcie/bdf.h"

namespace nesc::ctrl {

/** Geometry of the BTLB. */
struct BtlbConfig {
    /**
     * Total capacity; 0 disables the cache entirely. In
     * set-associative mode the effective capacity is sets x ways after
     * normalisation (both rounded down to powers of two).
     */
    std::uint32_t entries = 8;
    /** Number of sets; <= 1 selects the fully-associative paper mode. */
    std::uint32_t sets = 0;
    /** log2 of the set-index granule in blocks (range tag width). */
    std::uint32_t range_shift = 6;
};

/** Function-tagged extent cache; see file comment for the two modes. */
class Btlb {
  public:
    /** Paper mode: fully associative with @p entries slots. */
    explicit Btlb(std::uint32_t entries)
        : Btlb(BtlbConfig{entries, 0, 6})
    {
    }

    explicit Btlb(const BtlbConfig &config) { configure(config); }

    /**
     * Reconfigures the geometry (normalising sets and ways to powers
     * of two) and flushes every entry. Statistics persist.
     */
    void
    configure(const BtlbConfig &config)
    {
        entries_.clear();
        ways_.clear();
        plru_.clear();
        config_ = config;
        if (config.sets <= 1 || config.entries == 0) {
            // Fully-associative paper mode.
            sets_ = 1;
            ways_per_set_ = config.entries;
            capacity_ = config.entries;
            fully_associative_ = true;
            return;
        }
        fully_associative_ = false;
        sets_ = std::bit_floor(config.sets);
        ways_per_set_ = std::max<std::uint32_t>(
            1, std::bit_floor(config.entries / sets_));
        capacity_ = sets_ * ways_per_set_;
        ways_.assign(capacity_, Way{});
        plru_.assign(sets_, 0);
    }

    /**
     * Looks up @p vlba for function @p fn; returns the covering extent
     * on a hit.
     */
    std::optional<extent::Extent>
    lookup(pcie::FunctionId fn, extent::Vlba vlba)
    {
        if (fully_associative_) {
            for (const Entry &e : entries_) {
                ++probes_;
                if (e.fn == fn && e.extent.contains(vlba)) {
                    ++hits_;
                    return e.extent;
                }
            }
            ++misses_;
            return std::nullopt;
        }
        if (capacity_ == 0) {
            ++misses_;
            return std::nullopt;
        }
        const std::uint32_t set = set_index(fn, vlba);
        for (std::uint32_t w = 0; w < ways_per_set_; ++w) {
            ++probes_;
            Way &way = ways_[set * ways_per_set_ + w];
            if (way.valid && way.fn == fn && way.extent.contains(vlba)) {
                ++hits_;
                plru_touch(set, w);
                return way.extent;
            }
        }
        ++misses_;
        return std::nullopt;
    }

    /**
     * Inserts a translation. @p vlba_hint is the vLBA whose miss
     * produced the walk; in set-associative mode it selects the set so
     * the very next lookup of that granule hits.
     */
    void
    insert(pcie::FunctionId fn, const extent::Extent &extent,
           extent::Vlba vlba_hint)
    {
        if (capacity_ == 0)
            return;
        if (fully_associative_) {
            for (auto it = entries_.begin(); it != entries_.end();) {
                if (it->fn == fn && it->extent == extent)
                    return; // exact duplicate
                if (it->fn == fn && overlaps(it->extent, extent)) {
                    // Stale mapping superseded by the fresh walk.
                    it = entries_.erase(it);
                    ++overlap_evictions_;
                    continue;
                }
                ++it;
            }
            if (entries_.size() >= capacity_)
                entries_.pop_front();
            entries_.push_back(Entry{fn, extent});
            ++inserts_;
            return;
        }
        const std::uint32_t set = set_index(fn, vlba_hint);
        std::uint32_t victim = ways_per_set_; // invalid sentinel
        for (std::uint32_t w = 0; w < ways_per_set_; ++w) {
            Way &way = ways_[set * ways_per_set_ + w];
            if (!way.valid) {
                if (victim == ways_per_set_)
                    victim = w;
                continue;
            }
            if (way.fn == fn && way.extent == extent)
                return; // exact duplicate in this set
            if (way.fn == fn && overlaps(way.extent, extent)) {
                way.valid = false;
                ++overlap_evictions_;
                if (victim == ways_per_set_)
                    victim = w;
            }
        }
        if (victim == ways_per_set_)
            victim = plru_victim(set);
        Way &way = ways_[set * ways_per_set_ + victim];
        way.valid = true;
        way.fn = fn;
        way.extent = extent;
        plru_touch(set, victim);
        ++inserts_;
    }

    /** Paper-mode insert: the hint defaults to the extent start. */
    void
    insert(pcie::FunctionId fn, const extent::Extent &extent)
    {
        insert(fn, extent, extent.first_vblock);
    }

    /** Drops every entry (PF-initiated flush, e.g. for dedup). */
    void
    flush()
    {
        entries_.clear();
        for (Way &way : ways_)
            way.valid = false;
        ++flushes_;
    }

    /** Drops entries of one function (VF delete / tree replacement). */
    void
    flush_function(pcie::FunctionId fn)
    {
        std::erase_if(entries_, [fn](const Entry &e) { return e.fn == fn; });
        for (Way &way : ways_)
            if (way.valid && way.fn == fn)
                way.valid = false;
        ++function_flushes_;
    }

    std::uint32_t capacity() const { return capacity_; }
    bool fully_associative() const { return fully_associative_; }
    std::uint32_t sets() const { return sets_; }
    std::uint32_t ways() const { return ways_per_set_; }
    std::uint32_t range_shift() const { return config_.range_shift; }

    std::size_t
    size() const
    {
        if (fully_associative_)
            return entries_.size();
        std::size_t live = 0;
        for (const Way &way : ways_)
            live += way.valid ? 1 : 0;
        return live;
    }

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t inserts() const { return inserts_; }
    std::uint64_t flushes() const { return flushes_; }
    std::uint64_t function_flushes() const { return function_flushes_; }
    std::uint64_t overlap_evictions() const { return overlap_evictions_; }
    /** Tag comparisons performed across all lookups (probe cost). */
    std::uint64_t probes() const { return probes_; }

    double
    hit_rate() const
    {
        const std::uint64_t total = hits_ + misses_;
        return total ? static_cast<double>(hits_) / total : 0.0;
    }

    /** Mean tag comparisons per lookup — the O(1) evidence. */
    double
    mean_probe_length() const
    {
        const std::uint64_t total = hits_ + misses_;
        return total ? static_cast<double>(probes_) / total : 0.0;
    }

  private:
    struct Entry {
        pcie::FunctionId fn;
        extent::Extent extent;
    };
    struct Way {
        bool valid = false;
        pcie::FunctionId fn = 0;
        extent::Extent extent;
    };

    static bool
    overlaps(const extent::Extent &a, const extent::Extent &b)
    {
        return a.first_vblock < b.end_vblock() &&
               b.first_vblock < a.end_vblock();
    }

    std::uint32_t
    set_index(pcie::FunctionId fn, extent::Vlba vlba) const
    {
        // Additive fn scramble keeps consecutive granules of one
        // function spread round-robin across sets (no hash clumping on
        // sequential workloads) while separating functions.
        const std::uint64_t granule = vlba >> config_.range_shift;
        return static_cast<std::uint32_t>(
            (granule + static_cast<std::uint64_t>(fn) * 0x9E3779B9ULL) &
            (sets_ - 1));
    }

    /** Tree-pLRU victim for @p set (ways is a power of two). */
    std::uint32_t
    plru_victim(std::uint32_t set) const
    {
        const std::uint64_t bits = plru_[set];
        std::uint32_t node = 0;
        while (node < ways_per_set_ - 1) {
            const std::uint64_t b = (bits >> node) & 1;
            node = 2 * node + 1 + static_cast<std::uint32_t>(b);
        }
        return node - (ways_per_set_ - 1);
    }

    /** Points the pLRU tree away from just-used @p way. */
    void
    plru_touch(std::uint32_t set, std::uint32_t way)
    {
        if (ways_per_set_ <= 1)
            return;
        std::uint64_t bits = plru_[set];
        std::uint32_t node = way + (ways_per_set_ - 1);
        while (node > 0) {
            const std::uint32_t parent = (node - 1) / 2;
            const bool came_right = node == 2 * parent + 2;
            if (came_right)
                bits &= ~(1ULL << parent);
            else
                bits |= 1ULL << parent;
            node = parent;
        }
        plru_[set] = bits;
    }

    BtlbConfig config_;
    bool fully_associative_ = true;
    std::uint32_t capacity_ = 0;
    std::uint32_t sets_ = 1;
    std::uint32_t ways_per_set_ = 0;

    std::deque<Entry> entries_;    ///< FA mode; front = oldest
    std::vector<Way> ways_;        ///< SA mode; sets_ x ways_per_set_
    std::vector<std::uint64_t> plru_; ///< SA mode; tree bits per set

    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t inserts_ = 0;
    std::uint64_t flushes_ = 0;
    std::uint64_t function_flushes_ = 0;
    std::uint64_t overlap_evictions_ = 0;
    std::uint64_t probes_ = 0;
};

} // namespace nesc::ctrl

#endif // NESC_CTRL_BTLB_H
