/**
 * @file
 * Block Translation Lookaside Buffer (paper §V.B).
 *
 * A small fully-associative cache of the most recent extents used in
 * translation, tagged by function so one VF can never consume another
 * VF's mapping. FIFO replacement of the oldest entry, exactly as
 * described ("evicting the oldest entry"); with 8 entries it holds at
 * least the last mapping of each of the last 8 VFs serviced.
 */
#ifndef NESC_CTRL_BTLB_H
#define NESC_CTRL_BTLB_H

#include <cstdint>
#include <deque>
#include <optional>

#include "extent/types.h"
#include "pcie/bdf.h"

namespace nesc::ctrl {

/** Fully associative, FIFO-replacement extent cache. */
class Btlb {
  public:
    /** @param entries capacity; 0 disables the cache entirely. */
    explicit Btlb(std::uint32_t entries) : capacity_(entries) {}

    /**
     * Looks up @p vlba for function @p fn; returns the covering extent
     * on a hit.
     */
    std::optional<extent::Extent>
    lookup(pcie::FunctionId fn, extent::Vlba vlba)
    {
        for (const Entry &e : entries_) {
            if (e.fn == fn && e.extent.contains(vlba)) {
                ++hits_;
                return e.extent;
            }
        }
        ++misses_;
        return std::nullopt;
    }

    /** Inserts a translation, evicting the oldest entry when full. */
    void
    insert(pcie::FunctionId fn, const extent::Extent &extent)
    {
        if (capacity_ == 0)
            return;
        // Avoid duplicate entries for the same extent.
        for (const Entry &e : entries_)
            if (e.fn == fn && e.extent == extent)
                return;
        if (entries_.size() >= capacity_)
            entries_.pop_front();
        entries_.push_back(Entry{fn, extent});
        ++inserts_;
    }

    /** Drops every entry (PF-initiated flush, e.g. for dedup). */
    void
    flush()
    {
        entries_.clear();
        ++flushes_;
    }

    /** Drops entries of one function (VF delete / tree replacement). */
    void
    flush_function(pcie::FunctionId fn)
    {
        std::erase_if(entries_, [fn](const Entry &e) { return e.fn == fn; });
    }

    std::uint32_t capacity() const { return capacity_; }
    std::size_t size() const { return entries_.size(); }
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t inserts() const { return inserts_; }
    std::uint64_t flushes() const { return flushes_; }

    double
    hit_rate() const
    {
        const std::uint64_t total = hits_ + misses_;
        return total ? static_cast<double>(hits_) / total : 0.0;
    }

  private:
    struct Entry {
        pcie::FunctionId fn;
        extent::Extent extent;
    };

    std::uint32_t capacity_;
    std::deque<Entry> entries_; ///< front = oldest
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t inserts_ = 0;
    std::uint64_t flushes_ = 0;
};

} // namespace nesc::ctrl

#endif // NESC_CTRL_BTLB_H
