/**
 * @file
 * Per-function NVMe-style submission/completion queue pair state.
 *
 * Every function owns queue pair 0 (aliased by the legacy ring-base /
 * doorbell / interrupt-vector registers); additional pairs up to the
 * PF-programmed quota are created through the reg::kQp* admin block.
 * Each pair carries its own ring attachments, device-side SQ shadow
 * counters (PR 4's anti-tamper cross-check), fetch-engine flags,
 * completion batch, and MSI vector — the fetch and completion engines
 * run per queue, while arbitration, fault handling, and the command
 * watchdog stay per function.
 *
 * The struct is templated on the controller's block-op and queued-
 * completion types (private nested types of Controller) and lives in a
 * sim::Arena so 256 VFs x 4 pairs recycle ring-queue and batch-vector
 * capacity instead of allocating in steady state.
 */
#ifndef NESC_CTRL_QUEUE_PAIR_H
#define NESC_CTRL_QUEUE_PAIR_H

#include <cstdint>
#include <optional>
#include <vector>

#include "pcie/host_memory.h"
#include "pcie/host_ring.h"
#include "util/ring_queue.h"

namespace nesc::ctrl {

/** Per-queue-pair counters (function totals stay in FunctionStats). */
struct QueuePairStats {
    std::uint64_t commands = 0;    ///< descriptors fetched from this SQ
    std::uint64_t completions = 0; ///< records posted to this CQ
    std::uint64_t doorbells = 0;   ///< doorbell writes accepted
};

/** One SQ/CQ pair; see file comment. */
template <typename Op, typename Comp> struct QueuePair {
    std::uint16_t qid = 0;
    pcie::HostAddr sq_base = pcie::kNullHostAddr;
    pcie::HostAddr cq_base = pcie::kNullHostAddr;
    std::optional<pcie::HostRing> sq;
    std::optional<pcie::HostRing> cq;
    bool fetch_in_progress = false;
    bool doorbell_rearm = false;
    bool irq_pending = false; ///< coalesced MSI scheduled
    /** Completion MSI vector; 0 selects queue_vector(fn, qid). */
    std::uint32_t irq_vector = 0;
    /** Device-side SQ shadow counters (see FunctionContext in PR 4). */
    std::uint32_t sq_shadow_head = 0;
    std::uint32_t sq_shadow_tail = 0;
    bool sq_shadow_valid = false;
    /** Ops fetched from this SQ awaiting arbitration. */
    util::RingQueue<Op> staging;
    /** Completions awaiting the coalesced flush (kCompletionBatch). */
    std::vector<Comp> comp_batch;
    bool comp_flush_scheduled = false;
    QueuePairStats stats;

    /**
     * Reinitializes a (possibly recycled) arena slot for @p id.
     * Containers are cleared, not destroyed, so their capacity
     * survives — steady-state queue churn stays allocation-free.
     */
    void reset(std::uint16_t id)
    {
        qid = id;
        sq_base = pcie::kNullHostAddr;
        cq_base = pcie::kNullHostAddr;
        sq.reset();
        cq.reset();
        fetch_in_progress = false;
        doorbell_rearm = false;
        irq_pending = false;
        irq_vector = 0;
        sq_shadow_head = 0;
        sq_shadow_tail = 0;
        sq_shadow_valid = false;
        staging.clear();
        comp_batch.clear();
        comp_flush_scheduled = false;
        stats = QueuePairStats{};
    }
};

} // namespace nesc::ctrl

#endif // NESC_CTRL_QUEUE_PAIR_H
