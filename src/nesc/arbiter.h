/**
 * @file
 * Arbitration primitives for the VF plane: the eligible-function
 * bitmap that makes turn-over O(words) instead of O(active_vfs), and
 * the deterministic integer token bucket backing per-VF rate limits.
 *
 * EligibleSet replaces the sorted-vector upper_bound rescan the
 * arbiter used to run on every turn change. The bitmap holds exactly
 * the functions the arbiter may grant (active, unquarantined, fault-
 * free, with staged work); next_after() enumerates them in the same
 * cyclic ascending-id order the legacy scan visited, so the legacy WRR
 * mode selects identical functions — it just stops paying a per-entry
 * scan for idle ones. scan_words() counts bitmap words examined, the
 * observable the O(1)-per-grant unit test pins.
 */
#ifndef NESC_CTRL_ARBITER_H
#define NESC_CTRL_ARBITER_H

#include <bit>
#include <cstdint>
#include <vector>

#include "sim/simulator.h"

namespace nesc::ctrl {

/** Dense bitmap of arbitration-eligible function ids. */
class EligibleSet {
  public:
    /** Sizes the set for ids [0, n); clears every bit. */
    void resize(std::size_t n)
    {
        words_.assign((n + 63) / 64, 0);
        count_ = 0;
    }

    void assign(std::uint32_t id, bool on)
    {
        std::uint64_t &word = words_[id / 64];
        const std::uint64_t bit = std::uint64_t{1} << (id % 64);
        if (((word & bit) != 0) == on)
            return;
        word ^= bit;
        count_ += on ? 1 : -1;
    }

    bool test(std::uint32_t id) const
    {
        return (words_[id / 64] >> (id % 64)) & 1;
    }

    bool any() const { return count_ != 0; }
    std::size_t count() const { return count_; }

    /**
     * First set id strictly after @p from in cyclic order (wrapping
     * through 0 and ending at @p from itself), or -1 when the set is
     * empty — the same visit order as the legacy sorted-active-list
     * scan, at a cost of O(words), not O(ids).
     */
    int next_after(std::uint32_t from)
    {
        if (count_ == 0)
            return -1;
        const std::size_t nwords = words_.size();
        std::uint32_t start = from + 1;
        if (start >= nwords * 64)
            start = 0;
        std::uint64_t mask = ~std::uint64_t{0} << (start % 64);
        for (std::size_t w = start / 64; w < nwords; ++w) {
            ++scan_words_;
            if (const std::uint64_t bits = words_[w] & mask)
                return static_cast<int>(w * 64 + std::countr_zero(bits));
            mask = ~std::uint64_t{0};
        }
        // Wrap: ids [0, from], inclusive of from (a full cycle may
        // legitimately land back on the function that held the turn).
        const std::size_t last = from / 64;
        for (std::size_t w = 0; w <= last; ++w) {
            ++scan_words_;
            std::uint64_t bits = words_[w];
            if (w == last && from % 64 != 63)
                bits &= (std::uint64_t{1} << (from % 64 + 1)) - 1;
            if (bits)
                return static_cast<int>(w * 64 + std::countr_zero(bits));
        }
        return -1; // unreachable while count_ > 0
    }

    /** Cumulative bitmap words examined by next_after (test probe). */
    std::uint64_t scan_words() const { return scan_words_; }

  private:
    std::vector<std::uint64_t> words_;
    std::size_t count_ = 0;
    std::uint64_t scan_words_ = 0;
};

/**
 * Deterministic integer token bucket: tokens are bytes, refilled from
 * simulated time with an exact nanosecond-fraction carry, so the
 * conformance tests can pin sustained rate and burst to the byte.
 */
struct TokenBucket {
    std::uint64_t rate_bps = 0; ///< bytes per second; 0 = unlimited
    std::uint64_t burst = 0;    ///< bucket capacity in bytes
    std::uint64_t tokens = 0;
    std::uint64_t frac = 0; ///< byte-nanoseconds not yet a whole byte
    sim::Time stamp = 0;

    bool limited() const { return rate_bps != 0; }

    /** (Re)programs the limit; the bucket starts full (burst ready). */
    void configure(std::uint64_t bps, std::uint64_t burst_bytes,
                   sim::Time now)
    {
        rate_bps = bps;
        burst = burst_bytes;
        tokens = burst_bytes;
        frac = 0;
        stamp = now;
    }

    void refill(sim::Time now)
    {
        if (!limited() || now <= stamp)
            return;
        const unsigned __int128 accrued =
            static_cast<unsigned __int128>(now - stamp) * rate_bps + frac;
        const std::uint64_t whole =
            static_cast<std::uint64_t>(accrued / 1'000'000'000u);
        frac = static_cast<std::uint64_t>(accrued % 1'000'000'000u);
        tokens = whole > burst - tokens ? burst : tokens + whole;
        if (tokens == burst)
            frac = 0; // a full bucket does not bank fractional credit
        stamp = now;
    }

    bool ready(std::uint64_t bytes, sim::Time now)
    {
        if (!limited())
            return true;
        refill(now);
        return tokens >= bytes;
    }

    void spend(std::uint64_t bytes)
    {
        if (limited())
            tokens -= bytes;
    }

    /** Earliest time @p bytes will be available (now if already). */
    sim::Time ready_time(std::uint64_t bytes, sim::Time now)
    {
        if (!limited())
            return now;
        refill(now);
        if (tokens >= bytes)
            return now;
        const unsigned __int128 needed =
            static_cast<unsigned __int128>(bytes - tokens) *
                1'000'000'000u -
            frac;
        const std::uint64_t wait = static_cast<std::uint64_t>(
            (needed + rate_bps - 1) / rate_bps);
        return now + static_cast<sim::Duration>(wait);
    }
};

} // namespace nesc::ctrl

#endif // NESC_CTRL_ARBITER_H
