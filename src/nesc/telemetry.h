/**
 * @file
 * Self-describing telemetry-counter directory exposed through the
 * PF-only reg::kTelemetry* registers.
 *
 * Each entry binds a stable counter name to a FunctionStats field; the
 * directory order IS the hardware counter index, so appending is ABI-
 * compatible and reordering is not. The name registers let software
 * discover the directory without a matching driver header — PfDriver's
 * dump_telemetry() reads count, then (name, value) per index, straight
 * over MMIO.
 */
#ifndef NESC_CTRL_TELEMETRY_H
#define NESC_CTRL_TELEMETRY_H

#include <array>
#include <cstdint>

#include "nesc/controller.h"

namespace nesc::ctrl {

/** One telemetry directory entry. */
struct TelemetryCounterDesc {
    const char *name; ///< <= 24 ASCII chars (3 name registers)
    std::uint64_t FunctionStats::*field;
};

/** The directory: index in this array == hardware counter index. */
inline constexpr std::array<TelemetryCounterDesc, 18> kTelemetryCounters{{
    {"commands", &FunctionStats::commands},
    {"blocks_read", &FunctionStats::blocks_read},
    {"blocks_written", &FunctionStats::blocks_written},
    {"holes_zero_filled", &FunctionStats::holes_zero_filled},
    {"faults", &FunctionStats::faults},
    {"completions", &FunctionStats::completions},
    {"media_errors", &FunctionStats::media_errors},
    {"aborted_ops", &FunctionStats::aborted_ops},
    {"fn_resets", &FunctionStats::fn_resets},
    {"malformed", &FunctionStats::malformed},
    {"ring_corruptions", &FunctionStats::ring_corruptions},
    {"dma_violations", &FunctionStats::dma_violations},
    {"reg_violations", &FunctionStats::reg_violations},
    {"quarantines", &FunctionStats::quarantines},
    {"doorbells_ignored", &FunctionStats::doorbells_ignored},
    {"dead_doorbells", &FunctionStats::dead_doorbells},
    {"checksum_errors", &FunctionStats::checksum_errors},
    {"slo_breaches", &FunctionStats::slo_breaches},
}};

/**
 * Packs 8 ASCII chars of @p name starting at @p offset into a
 * little-endian register value (NUL-padded past the end).
 */
constexpr std::uint64_t
pack_telemetry_name(const char *name, std::size_t offset)
{
    std::size_t len = 0;
    while (name[len] != '\0')
        ++len;
    std::uint64_t value = 0;
    for (std::size_t i = 0; i < 8; ++i) {
        const std::size_t pos = offset + i;
        if (pos < len)
            value |= static_cast<std::uint64_t>(
                         static_cast<unsigned char>(name[pos]))
                     << (8 * i);
    }
    return value;
}

} // namespace nesc::ctrl

#endif // NESC_CTRL_TELEMETRY_H
