/**
 * @file
 * The NeSC self-virtualizing nested storage controller (paper §V).
 *
 * The controller presents one physical function (PF, function 0) and
 * up to max_vfs virtual functions on the PCIe interconnect. Per
 * function it keeps a register page, a command ring and a completion
 * ring; all functions share the multiplexed machinery:
 *
 *   per-function request queues --round-robin--> vLBA queue
 *     --> translation unit (BTLB + block-walk unit, 2 overlapped
 *         walks hiding extent-tree DMA latency)
 *     --> pLBA queue --> data-transfer unit (storage media + DMA)
 *     --> completion ring + MSI
 *
 * PF requests carry pLBAs already and use the out-of-band channel that
 * bypasses translation, so a VF write-miss stall never blocks the
 * hypervisor. VF translation faults (write to an unallocated block, or
 * any access under a pruned subtree) set MissAddress/MissSize, raise
 * the PF fault vector, and stall that VF until the hypervisor writes
 * RewalkTree.
 */
#ifndef NESC_CTRL_CONTROLLER_H
#define NESC_CTRL_CONTROLLER_H

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "extent/layout.h"
#include "extent/types.h"
#include "nesc/arbiter.h"
#include "nesc/btlb.h"
#include "nesc/command.h"
#include "nesc/node_cache.h"
#include "nesc/queue_pair.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/sampler.h"
#include "obs/slo.h"
#include "obs/trace.h"
#include "pcie/dma_engine.h"
#include "pcie/host_memory.h"
#include "pcie/host_ring.h"
#include "pcie/interrupts.h"
#include "pcie/mmio.h"
#include "sim/arena.h"
#include "sim/simulator.h"
#include "storage/block_device.h"
#include "util/flat_map.h"
#include "util/ring_queue.h"
#include "util/stats.h"
#include "util/status.h"

namespace nesc::repl {
class ReplicaSet;
} // namespace nesc::repl

namespace nesc::storage {
class IntegrityMap;
} // namespace nesc::storage

namespace nesc::ctrl {

/** Microarchitectural parameters of the controller. */
struct ControllerConfig {
    /** VF slots; the prototype supports 64 (paper §V). */
    std::uint16_t max_vfs = 64;
    /** BTLB capacity; the prototype caches the last 8 extents. */
    std::uint32_t btlb_entries = 8;
    /**
     * BTLB sets; <= 1 keeps the paper's fully-associative FIFO mode,
     * >= 2 selects the set-associative pseudo-LRU organisation (see
     * btlb.h). Reconfigurable at runtime via reg::kBtlbGeometry.
     */
    std::uint32_t btlb_sets = 0;
    /** log2 of the BTLB set-index granule in blocks. */
    std::uint32_t btlb_range_shift = 6;
    /**
     * Extent-node-cache SRAM budget in bytes; 0 (the paper's
     * prototype) disables it. See node_cache.h.
     */
    std::uint64_t node_cache_bytes = 0;
    /**
     * MSHR-style walk-miss coalescing: concurrent BTLB misses of one
     * function within coalesce_window_blocks of an in-flight walk
     * attach to it instead of launching their own tree walk. Off in
     * the paper's prototype.
     */
    bool walk_coalescing = false;
    std::uint32_t coalesce_window_blocks = 256;
    /** Concurrent block walks (the unit overlaps two, §V.B). */
    std::uint32_t walk_overlap = 2;
    /** Shared vLBA queue depth. */
    std::uint32_t vlba_queue_depth = 16;
    /** Shared pLBA queue depth. */
    std::uint32_t plba_queue_depth = 16;
    /** Data transfers in flight at once. */
    std::uint32_t max_inflight_transfers = 8;
    /** Pipeline cost of a BTLB lookup + queue management, per block. */
    sim::Duration translation_cost = 150;
    /** Parse cost per tree level, on top of the node DMA. */
    sim::Duration node_parse_cost = 150;
    /** Completion record construction cost. */
    sim::Duration completion_cost = 250;
    /** Doorbell-to-fetch scheduling delay. */
    sim::Duration doorbell_latency = 200;
    /**
     * Completion-interrupt coalescing window: after the first pending
     * completion the MSI fires once this much later, batching any
     * completions that arrive in between. 0 = interrupt per
     * completion (prototype behaviour).
     */
    sim::Duration irq_coalesce = 0;
    /**
     * Guest-misbehavior quarantine: this many validation faults
     * (malformed descriptors, corrupted ring headers) within
     * quarantine_window moves the function to quarantine. 0 disables
     * the storm trigger. DMA-window violations quarantine
     * immediately regardless. Runtime-tunable via PF-only registers.
     */
    std::uint32_t quarantine_threshold = 8;
    sim::Duration quarantine_window = 1'000'000; // 1 ms
    /**
     * Largest nblocks a single CommandRecord may carry; bigger values
     * are rejected kMalformed before any per-block state is
     * allocated (a hostile nblocks of ~2^32 would otherwise expand
     * into billions of queued block ops).
     */
    std::uint32_t max_command_blocks = 65536; // 64 MiB per command
    /**
     * Simulator event-lane layout: 0 (default) gives every active
     * function its own lane; N > 0 spreads functions over N shared
     * lanes (fn modulo N). Purely a wall-clock/scaling knob — the
     * simulator's global-sequence tie-break makes execution order
     * independent of lane layout (see sim/simulator.h).
     */
    std::uint32_t event_lanes = 0;
    /**
     * Descriptors fetched per fetch event (reg::kFetchBatch); the
     * fetch engine reschedules itself to continue longer drains.
     * 0 = drain the whole ring in one event (paper behaviour).
     */
    std::uint32_t fetch_batch = 0;
    /**
     * Coalesce a function's completion CQ writes landing in one
     * completion_cost window into a single flush event raising one
     * MSI (reg::kCompletionBatch). Off = one CQ write + MSI per
     * completion (paper behaviour).
     */
    bool completion_batch = false;
};

/** Translation fault kinds (drives the hypervisor's service path). */
enum class FaultKind : std::uint8_t {
    kNone = 0,
    kWriteMiss,   ///< write to an unallocated (lazy) region
    kPruned,      ///< access under a pruned subtree
    kTreeCorrupt, ///< extent-tree node failed a sanity check
};

/** Per-function runtime statistics. */
struct FunctionStats {
    std::uint64_t commands = 0;
    std::uint64_t blocks_read = 0;
    std::uint64_t blocks_written = 0;
    std::uint64_t holes_zero_filled = 0;
    std::uint64_t faults = 0;
    std::uint64_t completions = 0;
    std::uint64_t media_errors = 0; ///< block ops failed by the media
    std::uint64_t aborted_ops = 0;  ///< commands aborted (watchdog/FLR)
    std::uint64_t fn_resets = 0;    ///< function-level resets taken
    std::uint64_t malformed = 0;    ///< descriptors rejected kMalformed
    std::uint64_t ring_corruptions = 0; ///< ring headers failing checks
    std::uint64_t dma_violations = 0;   ///< DMA refused by the windows
    std::uint64_t reg_violations = 0;   ///< PF-only reg writes rejected
    std::uint64_t quarantines = 0;      ///< times quarantined
    std::uint64_t doorbells_ignored = 0; ///< doorbells while quarantined
    /** Doorbells to queue pairs that do not exist (dropped, counted). */
    std::uint64_t dead_doorbells = 0;
    /** Checksum mismatches detected on this function's reads. */
    std::uint64_t checksum_errors = 0;
    /** SLO threshold violations raised over closed windows. */
    std::uint64_t slo_breaches = 0;
};

/** The NeSC controller device model. */
class Controller : public pcie::FunctionMmioDevice {
  public:
    /** Raw node-kind tag as read from a tree node header. */
    using NodeKindTag = std::uint16_t;

    Controller(sim::Simulator &simulator, pcie::HostMemory &host_memory,
               storage::BlockDevice &device,
               pcie::InterruptController &irq,
               const ControllerConfig &config = {});

    /**
     * When the NESC_OBS_DUMP_DIR environment variable names a
     * directory, teardown writes an observability dump there (metrics
     * registry JSON plus the retained flight-recorder postmortems).
     * CI re-runs failing tests with the variable set and uploads the
     * dumps as workflow artifacts; unset (the default), teardown does
     * no I/O.
     */
    ~Controller() override;

    // --- PCIe register interface (FunctionMmioDevice) ----------------

    util::Result<std::uint64_t> mmio_read(pcie::FunctionId fn,
                                          std::uint64_t offset,
                                          unsigned size) override;
    util::Status mmio_write(pcie::FunctionId fn, std::uint64_t offset,
                            std::uint64_t value, unsigned size) override;

    // --- Introspection ------------------------------------------------

    const ControllerConfig &config() const { return config_; }
    Btlb &btlb() { return btlb_; }
    ExtentNodeCache &node_cache() { return node_cache_; }
    pcie::DmaEngine &dma() { return dma_; }
    /**
     * Device-internal metrics. Hot pipeline counters update through
     * interned handles; the registry keeps the CounterGroup-style
     * get()/to_string() surface for tests and benches.
     */
    obs::MetricsRegistry &counters() { return metrics_; }
    const obs::MetricsRegistry &counters() const { return metrics_; }
    storage::BlockDevice &device() { return device_; }

    /**
     * Attaches a replica set behind the data-transfer unit: all media
     * traffic (every path funnels through start_transfer) is routed to
     * it instead of the local device — reads with failover, writes
     * mirrored to a quorum. nullptr detaches, restoring the local
     * single-device path bit-exactly. The set must outlive the
     * controller (or be detached first) and its data region must cover
     * the pLBA space the extent trees map.
     */
    void attach_replicas(repl::ReplicaSet *replicas);
    repl::ReplicaSet *replicas() { return replicas_; }

    /**
     * Attaches the per-pLBA CRC32C sidecar behind the data-transfer
     * unit: every media write records the payload's checksum, every
     * media read verifies it, and a mismatch runs the recovery ladder
     * (bounded re-read, then — when a replica set is attached — read
     * an alternate backend, verify, and repair the damaged copy in
     * place) before a kChecksumError completion is ever posted. Also
     * clamps the PF-visible device size to the map's data region so a
     * guest can never overwrite the sidecar. nullptr detaches,
     * restoring the unverified path bit-exactly; the map must outlive
     * the controller or be detached first.
     */
    void attach_integrity(storage::IntegrityMap *map);
    storage::IntegrityMap *integrity() { return integrity_; }

    /// @name Scrub introspection (tests + benches).
    /// @{
    bool scrub_running() const { return scrub_running_; }
    std::uint64_t scrub_progress() const { return scrub_progress_; }
    std::uint64_t scrub_errors() const { return scrub_errors_; }
    std::uint64_t integrity_mismatches() const
    {
        return integrity_mismatches_;
    }
    std::uint64_t integrity_repairs() const { return integrity_repairs_; }
    /// @}

    /**
     * Lifecycle tracer. Off by default; enable() starts span
     * collection at every pipeline stage (doorbell, fetch, queue wait,
     * translation, walk, DMA, transfer, completion) plus the PCIe-link
     * track. Enabling also mirrors the tracer into the DMA engine and
     * hooks the link's BandwidthServer.
     */
    obs::Tracer &tracer() { return tracer_; }
    /** Starts tracing (see obs::Tracer::enable). */
    void enable_tracing(
        std::size_t capacity = obs::Tracer::kDefaultCapacity);
    void disable_tracing();

    /**
     * Always-on telemetry plane (DESIGN.md §8): windowed per-function
     * latency accounting + SLO watch, flight recorder with postmortem
     * capture, and the metrics time-series sampler. All off at reset;
     * the PF arms them through the observability register block
     * (reg::kObsWindowNs / kFlightCtrl / kSamplerIntervalNs).
     */
    /// @{
    const obs::SloWatch &slo_watch() const { return slo_; }
    obs::FlightRecorder &flight_recorder() { return flight_; }
    const obs::FlightRecorder &flight_recorder() const { return flight_; }
    const obs::TimeSeriesSampler &sampler() const { return sampler_; }
    /** Accounting window length; 0 while windowed accounting is off. */
    sim::Duration obs_window_ns() const { return obs_window_ns_; }
    /// @}

    /** Number of functions (PF + max_vfs). */
    pcie::FunctionId num_functions() const
    {
        return static_cast<pcie::FunctionId>(config_.max_vfs + 1);
    }

    bool is_active(pcie::FunctionId fn) const;
    const FunctionStats &stats(pcie::FunctionId fn) const;

    /**
     * Per-stage latency distributions (nanoseconds), recorded for
     * every completed block operation: time waiting for arbitration,
     * time in translation (BTLB or walk), and time in the
     * data-transfer stage including pLBA queueing. The sum of the
     * stage means is the device-internal block latency. Log-bucketed
     * histograms with exact count/sum, so long benches accumulate in
     * O(1) memory and the means stay exact (they are cross-checked
     * against trace-span totals to within rounding).
     */
    const obs::LogHistogram &stage_queue_wait() const { return stage_queue_; }
    const obs::LogHistogram &stage_translation() const { return stage_translate_; }
    const obs::LogHistogram &stage_transfer() const { return stage_transfer_; }
    /** Pending fault kind of a VF (kNone when running). */
    FaultKind fault_kind(pcie::FunctionId fn) const;
    /** True while @p fn is quarantined. */
    bool quarantined(pcie::FunctionId fn) const;
    /** Cause of @p fn's quarantine (kNone when running). */
    QuarantineCause quarantine_cause(pcie::FunctionId fn) const;
    /** The per-function DMA permission table (PF-programmed). */
    const pcie::DmaWindowTable &dma_windows() const { return dma_windows_; }

    /** True when no request is queued or in flight anywhere. */
    bool quiescent() const;

    // --- Arbitration/queue-pair introspection (tests + benches) ------

    /** Current arbitration mode (reg::kArbMode). */
    ArbMode arb_mode() const { return arb_mode_; }
    /** Legacy-WRR credit left in the current turn. */
    std::uint32_t arb_credit() const { return rr_credit_; }
    /** DWRR deficit (blocks) banked by @p fn. */
    std::uint64_t arb_deficit(pcie::FunctionId fn) const
    {
        return contexts_.at(fn).arb_deficit;
    }
    /** Cumulative eligible-bitmap words examined by turn-over scans. */
    std::uint64_t arb_scan_words() const
    {
        return arb_eligible_.scan_words();
    }
    /** Total block grants issued by the arbiter (VF plane only). */
    std::uint64_t arb_grants() const { return arb_grants_; }
    /** Live queue pairs of @p fn (including pair 0; 0 if inactive). */
    std::uint32_t queue_pair_count(pcie::FunctionId fn) const;
    /** Per-queue counters, or nullptr when (fn, qid) has no live pair. */
    const QueuePairStats *queue_pair_stats(pcie::FunctionId fn,
                                           std::uint32_t qid) const;

  private:
    /** Outstanding command: blocks remaining + sticky worst status. */
    struct PendingCommand {
        std::uint32_t remaining = 0;
        CompletionStatus status = CompletionStatus::kOk;
        sim::Time t_start = 0; ///< fetch time, for the command watchdog
        std::uint16_t qid = 0; ///< queue pair the command arrived on
    };
    /**
     * Generational reference into the command arena. Block ops carry
     * one, so per-block completion is an index, not a hash lookup; a
     * stale ref (FLR/abort/quarantine released the command) is the
     * drop-the-work teardown signal.
     */
    using CmdRef = sim::Arena<PendingCommand>::Handle;

    /** One device block operation (commands split to 1 KiB blocks). */
    struct BlockOp {
        pcie::FunctionId fn;
        Opcode op;
        extent::Vlba vlba;
        pcie::HostAddr buffer; ///< host address for this block's data
        std::uint64_t tag;
        std::uint16_t qid = 0; ///< queue pair the op was fetched from
        CmdRef cmd; ///< owning command in cmd_arena_
        /**
         * Set when the op was replayed after riding an in-flight walk
         * that did not resolve it; a replayed op always launches its
         * own walk, bounding coalescing to one round per op.
         */
        bool no_coalesce = false;
        // Stage timestamps for the latency-breakdown instrumentation.
        sim::Time t_queued = 0;    ///< entered the per-function queue
        sim::Time t_arbitrated = 0; ///< won arbitration into the vLBA queue
        sim::Time t_translated = 0; ///< translation resolved
    };

    /** A completion waiting in a function's coalesced flush batch. */
    struct QueuedCompletion {
        std::uint64_t tag;
        CompletionStatus status;
    };

    /** SQ/CQ pair instantiated for the controller's op types. */
    using Qp = QueuePair<BlockOp, QueuedCompletion>;
    /** Generational reference into the queue-pair arena. */
    using QpRef = sim::Arena<Qp>::Handle;

    /** Per-function device context. */
    struct FunctionContext {
        bool active = false;
        pcie::HostAddr extent_tree_root = pcie::kNullHostAddr;
        std::uint64_t device_size_blocks = 0;
        std::uint64_t miss_address = 0; ///< byte offset in virtual device
        std::uint32_t miss_size = 0;
        /**
         * Live queue pairs, indexed by qid; a stale handle marks a
         * deleted pair. Pair 0 exists for the function's whole active
         * life and is aliased by the legacy ring-base/doorbell/
         * interrupt-vector registers (single-ring paper mode).
         */
        std::vector<QpRef> qps;
        /** PF-programmed total queue-pair quota (including pair 0). */
        std::uint32_t qp_quota = 1;
        /** reg::kQpSelect latch (driver-owned). */
        std::uint32_t qp_select = 0;
        /** MgmtStatus-style result of the last reg::kQpCommand. */
        std::uint32_t qp_status = 0;
        // Staged admin values consumed by QpCommand::kCreate.
        pcie::HostAddr qp_sq_latch = pcie::kNullHostAddr;
        pcie::HostAddr qp_cq_latch = pcie::kNullHostAddr;
        std::uint32_t qp_irq_latch = 0;
        /** Intra-tenant plain-RR cursor over the function's pairs. */
        std::uint32_t rr_qp_cursor = 0;
        /** Total ops staged across all pairs (eligibility is O(1)). */
        std::uint64_t queued_ops = 0;
        /** DWRR deficit in blocks (banked while backlogged). */
        std::uint64_t arb_deficit = 0;
        /** Optional PF-programmed rate limit (kSetRateLimit). */
        TokenBucket bucket;
        std::uint32_t qos_weight = 1;
        /** Command watchdog period in ns; 0 disables it. */
        sim::Duration watchdog_ns = 0;
        bool watchdog_armed = false; ///< an expiry check is scheduled
        FaultKind fault = FaultKind::kNone;
        /**
         * Quarantine state: doorbells ignored, no translation or
         * transfer service, fault IRQs suppressed. Only the PF's
         * kReleaseQuarantine lifts it; the VF's own FnReset is
         * latched out while quarantined.
         */
        bool quarantined = false;
        QuarantineCause quarantine_cause = QuarantineCause::kNone;
        /** Validation-fault timestamps inside the storm window. */
        std::deque<sim::Time> recent_validation_faults;
        /**
         * Bumped whenever the function's mapping may have changed
         * (SetExtentRoot, RewalkTree, reset, delete). A walk started
         * under an older generation replays instead of delivering a
         * result derived from the stale tree.
         */
        std::uint64_t tree_generation = 0;
        /**
         * The function's simulator event lane. Default-lane until the
         * function activates; FnReset keeps the lane, DeleteVf
         * releases it (per-function mode) or leaves the shared lane
         * alone (event_lanes > 0).
         */
        sim::LaneId lane = sim::Simulator::kDefaultLane;
        util::RingQueue<BlockOp> stalled_ops; ///< parked on a fault
        /** tag -> live command in cmd_arena_ (per-tag ops: abort). */
        util::FlatMap<CmdRef> pending;
        FunctionStats stats;
    };

    /** In-flight block walk state. */
    struct Walk {
        BlockOp op;
        pcie::HostAddr node;
        std::uint32_t levels = 0;
        sim::Time t_start = 0; ///< walk launch, for the kWalk trace span
        /** Mapping generation of the function when the walk started. */
        std::uint64_t generation = 0;
        /**
         * MSHR-attached misses: ops whose BTLB miss landed within the
         * coalescing window of this walk while it was in flight. They
         * resolve with the walk's extent when covered, else replay.
         */
        std::vector<BlockOp> secondaries;
    };
    /**
     * Generational reference into the walk arena (the walk-MSHR
     * pool). Walk continuations capture the 8-byte ref instead of a
     * shared_ptr; ownership is single-chained, so each ref is live
     * until its resolution path retires it.
     */
    using WalkRef = sim::Arena<Walk>::Handle;

    // Queue-pair lifecycle.
    /** Live pair (fn, qid), or nullptr when absent. */
    Qp *qp(FunctionContext &c, std::uint32_t qid);
    const Qp *qp(const FunctionContext &c, std::uint32_t qid) const;
    /** Pair 0; never nullptr while the function is active. */
    Qp *qp0(FunctionContext &c) { return qp(c, 0); }
    /** Creates pair 0 at function activation (legacy single ring). */
    void create_qp0(FunctionContext &c);
    /** Executes reg::kQpCommand; returns the MgmtStatus-style result. */
    std::uint32_t qp_admin_execute(pcie::FunctionId fn, QpCommand cmd);
    /**
     * Tears down pair @p qid: its staged ops are dropped and every
     * command that arrived on it is aborted (the completions die with
     * the queue — the driver chose to delete it live).
     */
    void destroy_qp(pcie::FunctionId fn, std::uint32_t qid);
    /** FLR teardown: deletes pairs >= 1, resets pair 0 in place. */
    void reset_queue_pairs(FunctionContext &c);
    /** Doorbell write for (fn, qid); dead qids are dropped+counted. */
    util::Status doorbell_write(pcie::FunctionId fn, std::uint32_t qid);

    // Pipeline stages.
    void pump();
    void fetch_commands(pcie::FunctionId fn, std::uint32_t qid);
    void arbitrate();
    /**
     * Recomputes @p fn's bit in the eligible set (active, not
     * quarantined, fault-free, work staged; the PF never enters — its
     * OOB channel bypasses arbitration). Called at every transition
     * that can change the predicate.
     */
    void update_arb_eligibility(pcie::FunctionId fn);
    /**
     * Next grantable function strictly after @p from in cyclic order,
     * skipping rate-blocked ones (scheduling the rate pump for the
     * earliest refill among them); -1 when nothing is runnable.
     */
    int next_eligible(std::uint32_t from);
    /** Pops one staged op from @p c (intra-tenant RR over its pairs). */
    void grant_one(FunctionContext &c);
    /** One-shot wakeup so rate-blocked queues resume without traffic. */
    void schedule_rate_pump(sim::Time at);
    void start_walks();
    void begin_translation(BlockOp op);
    void walk_node(WalkRef walk);
    void walk_entries(WalkRef walk, extent::NodeHeaderRecord header);
    void walk_process(WalkRef walk, NodeKindTag kind,
                      std::uint32_t count,
                      const std::vector<std::byte> &data);
    /**
     * True when the walk's function was deleted or its mapping
     * generation moved while the walk was in flight; the walk is then
     * retired and its ops replayed (stale results are never used).
     */
    bool walk_canceled(WalkRef walk);
    // Walk resolution: retire the walk, settle its secondaries,
    // release the walker slot.
    void walk_resolved_mapped(WalkRef walk, const extent::Extent &extent);
    void walk_resolved_hole(WalkRef walk);
    void walk_resolved_fault(WalkRef walk, FaultKind kind);
    /** Records the kWalk span and releases the walk's arena slot. */
    void retire_walk(WalkRef walk);
    /** Prepends @p ops to the vLBA queue for another translation pass. */
    void replay_ops(std::vector<BlockOp> ops, bool mark_no_coalesce);
    void finish_mapped(const BlockOp &op, const extent::Extent &extent);
    void finish_hole(const BlockOp &op);
    void finish_fault(const BlockOp &op, FaultKind kind);
    void release_walker();
    void start_transfers();
    void start_transfer(const BlockOp &op, extent::Plba plba);
    /** start_transfer body when a replica set is attached. */
    void start_replicated_transfer(const BlockOp &op, extent::Plba plba);
    void start_zero_fill(const BlockOp &op);
    /** True when payload checksums are verified/recorded for @p plba. */
    bool integrity_on(extent::Plba plba) const;
    /** Books a detected mismatch against @p fn (stats, trace, metrics). */
    void note_checksum_mismatch(pcie::FunctionId fn, const BlockOp &op);
    /**
     * Replicated recovery ladder for a read of @p plba whose payload
     * (served by @p bad_backend) failed verification: bounded re-reads
     * of the serving backend first, then alternate backends; the first
     * verified copy repairs @p bad_backend in place and completes the
     * op. Exhausting the ladder completes kChecksumError. Owns the
     * staging buffer in @p data until completion.
     */
    void integrity_ladder(const BlockOp &op, extent::Plba plba,
                          std::shared_ptr<std::vector<std::byte>> data,
                          int bad_backend, std::uint32_t rereads_left,
                          std::size_t next_alt);
    /** DMA of a verified read payload to the host + completion. */
    void finish_read_payload(const BlockOp &op,
                             std::vector<std::byte> data);
    // Background scrub machinery (PF mgmt commands).
    std::uint32_t scrub_start();
    std::uint32_t scrub_abort();
    void scrub_tick(std::uint64_t epoch);
    /** Rotates the accounting windows; stale epochs are no-ops. */
    void obs_window_tick(std::uint64_t epoch);
    /** Takes one metrics sample; stale epochs are no-ops. */
    void sampler_tick(std::uint64_t epoch);
    /** SloWatch breach hook: stats + metrics + trace + log. */
    void on_slo_breach(const obs::SloBreach &breach);
    /** Verifies (and repairs, when possible) one pLBA; see scrub_tick. */
    void scrub_block(std::uint64_t plba);
    void complete_block(const BlockOp &op, CompletionStatus status);
    /**
     * Opens command state in the arena (remaining blocks, fetch time,
     * arrival queue) and maps @p tag to it, releasing any same-tag
     * predecessor.
     */
    CmdRef open_command(FunctionContext &c, std::uint64_t tag,
                        std::uint32_t remaining, sim::Time t_start,
                        std::uint16_t qid);
    /**
     * Funnel for every guest-visible completion; records post to the
     * CQ of the pair the command arrived on. Paper mode posts one CQ
     * write + MSI after completion_cost; kCompletionBatch mode appends
     * to the pair's batch and (at most once per window) schedules a
     * flush that posts all records and raises one MSI.
     */
    void enqueue_completion(pcie::FunctionId fn, std::uint16_t qid,
                            std::uint64_t tag, CompletionStatus status);
    void flush_completions(pcie::FunctionId fn, std::uint16_t qid);
    void post_completion(pcie::FunctionId fn, std::uint16_t qid,
                         std::uint64_t tag, CompletionStatus status);
    /**
     * Ring-attach + CQ push + stats/trace for one completion; true
     * when the completion reached the point that raises the MSI.
     */
    bool post_completion_record(pcie::FunctionId fn, std::uint16_t qid,
                                std::uint64_t tag,
                                CompletionStatus status);
    void raise_completion_irq(pcie::FunctionId fn, std::uint16_t qid);
    void handle_rewalk(pcie::FunctionId fn);
    void fail_stalled(pcie::FunctionId fn);
    std::uint32_t mgmt_execute(MgmtCommand command);

    // Untrusted-guest containment.
    /** True when a VF write to @p offset must be rejected (PF-only). */
    static bool pf_only_write(std::uint64_t offset);
    /** OK, or why the descriptor must be rejected kMalformed. */
    util::Status validate_command(const FunctionContext &c,
                                  const CommandRecord &rec) const;
    /** Validates the ring header + shadow counters before a drain. */
    util::Status validate_cmd_ring(Qp &q);
    /** Counts a validation fault; quarantines past the threshold. */
    void note_validation_fault(pcie::FunctionId fn, QuarantineCause cause);
    /** DMA-window violation hook (immediate quarantine). */
    void note_dma_violation(pcie::FunctionId fn, pcie::HostAddr addr,
                            std::uint64_t size);
    /** Moves @p fn to quarantine: aborts in-flight, seals doorbells. */
    void quarantine(pcie::FunctionId fn, QuarantineCause cause);
    /** PF-initiated release: FnReset + fault-history clear. */
    void release_quarantine(pcie::FunctionId fn);

    // Error containment.
    void arm_watchdog(pcie::FunctionId fn);
    void watchdog_fire(pcie::FunctionId fn);
    void abort_command(pcie::FunctionId fn, std::uint64_t tag);
    void function_level_reset(pcie::FunctionId fn);
    /** Drops @p fn's ops (optionally one tag) from the shared queues. */
    void purge_shared_queues(pcie::FunctionId fn,
                             std::optional<std::uint64_t> tag);
    /** True when the fn is fully idle (nothing queued or in flight). */
    bool function_quiescent(pcie::FunctionId fn) const;

    // Event-lane lifecycle (see ControllerConfig::event_lanes).
    void assign_function_lane(FunctionContext &c, pcie::FunctionId fn);
    void retire_function_lane(FunctionContext &c);

    FunctionContext &ctx(pcie::FunctionId fn) { return contexts_[fn]; }

    sim::Simulator &simulator_;
    pcie::HostMemory &host_memory_;
    storage::BlockDevice &device_;
    /** Replication layer; nullptr = local single-device path. */
    repl::ReplicaSet *replicas_ = nullptr;
    /** reg::kReplBackendSelect latch. */
    std::uint32_t repl_backend_select_ = 0;
    /** Checksum sidecar; nullptr = unverified path. */
    storage::IntegrityMap *integrity_ = nullptr;
    /** reg::kIntegrityCtrl bit0 (verification on; 1 at attach). */
    bool integrity_enabled_ = false;
    /** reg::kIntegrityRereadLimit. */
    std::uint32_t integrity_reread_limit_ = 1;
    std::uint64_t integrity_mismatches_ = 0;
    std::uint64_t integrity_repairs_ = 0;
    // Background scrubber (MgmtCommand::kScrubStart / kScrubAbort).
    bool scrub_running_ = false;
    /** Next pLBA the scrubber will verify. */
    std::uint64_t scrub_next_ = 0;
    std::uint64_t scrub_progress_ = 0;
    std::uint64_t scrub_errors_ = 0;
    /** Bumped on start/abort; invalidates scheduled scrub ticks. */
    std::uint64_t scrub_epoch_ = 0;
    std::uint64_t scrub_batch_ = 64;
    sim::Duration scrub_interval_ = 100'000; // 100 us
    pcie::InterruptController &irq_;
    ControllerConfig config_;
    pcie::DmaWindowTable dma_windows_;
    pcie::DmaEngine dma_;
    Btlb btlb_;
    ExtentNodeCache node_cache_;
    /** Runtime coalescing knobs (reg::kWalkCoalesce overrides config). */
    bool walk_coalescing_ = false;
    std::uint32_t coalesce_window_ = 0;

    std::vector<FunctionContext> contexts_;
    util::RingQueue<BlockOp> vlba_queue_;
    util::RingQueue<std::pair<BlockOp, extent::Plba>> plba_queue_;
    /** Walk-MSHR pool; continuations hold WalkRefs into it. */
    sim::Arena<Walk> walk_arena_;
    /** In-flight command state; BlockOp::cmd points into it. */
    sim::Arena<PendingCommand> cmd_arena_;
    /** Queue-pair pool; FunctionContext::qps holds QpRefs into it. */
    sim::Arena<Qp> qp_arena_;
    /** Primary walks in flight, for MSHR attachment. */
    std::vector<WalkRef> inflight_walks_;
    /** Shared event lanes when event_lanes > 0 (else empty). */
    std::vector<sim::LaneId> shared_lanes_;
    /** Sorted ids of active VFs (DeleteVf audit + test introspection). */
    std::vector<pcie::FunctionId> active_vfs_;
    /** Grantable functions; turn-over scans this, never active_vfs_. */
    EligibleSet arb_eligible_;
    pcie::FunctionId rr_current_ = 0; ///< VF currently holding the turn
    std::uint32_t rr_credit_ = 0;     ///< blocks left in the turn (WRR)
    ArbMode arb_mode_ = ArbMode::kLegacyWrr;
    std::uint32_t arb_quantum_ = 1; ///< DWRR blocks per weight unit
    /** A DWRR turn is open: rr_current_ still holds banked deficit. */
    bool dwrr_turn_live_ = false;
    std::uint64_t arb_grants_ = 0;
    /** Functions with a live rate limit (0 = skip all bucket logic). */
    std::uint32_t rate_limited_fns_ = 0;
    bool rate_pump_scheduled_ = false;
    sim::Time rate_pump_at_ = 0;
    std::uint32_t active_walks_ = 0;
    std::uint32_t inflight_transfers_ = 0;
    // Runtime batching knobs (reg::kFetchBatch / kCompletionBatch).
    std::uint32_t fetch_batch_ = 0;
    bool completion_batch_ = false;

    // PF management scratch registers.
    std::uint32_t mgmt_vf_id_ = 0;
    pcie::HostAddr mgmt_extent_root_ = pcie::kNullHostAddr;
    std::uint64_t mgmt_device_size_ = 0;
    std::uint32_t mgmt_qos_weight_ = 1;
    std::uint32_t mgmt_qp_quota_ = 1;
    std::uint64_t mgmt_rate_bps_ = 0;
    std::uint64_t mgmt_rate_burst_ = 0;
    std::uint32_t mgmt_status_ =
        static_cast<std::uint32_t>(MgmtStatus::kIdle);
    // Staged DMA-window range and runtime quarantine tuning (PF-only).
    pcie::HostAddr dma_window_base_ = pcie::kNullHostAddr;
    std::uint64_t dma_window_size_ = 0;
    std::uint32_t quarantine_threshold_ = 0;
    sim::Duration quarantine_window_ = 0;

    obs::MetricsRegistry metrics_;
    // Interned handles for every counter the pipeline bumps per block
    // or per record; cold/error counters go through metrics_.bump().
    obs::MetricsRegistry::Handle h_btlb_hits_;
    obs::MetricsRegistry::Handle h_btlb_misses_;
    obs::MetricsRegistry::Handle h_node_cache_hits_;
    obs::MetricsRegistry::Handle h_node_cache_misses_;
    obs::MetricsRegistry::Handle h_walk_node_reads_;
    obs::MetricsRegistry::Handle h_walk_coalesced_;
    obs::MetricsRegistry::Handle h_walk_coalesced_resolved_;
    obs::MetricsRegistry::Handle h_walk_replays_;
    obs::MetricsRegistry::Handle h_commands_fetched_;
    obs::MetricsRegistry::Handle h_completions_;
    obs::MetricsRegistry::Handle h_holes_zero_filled_;
    obs::MetricsRegistry::Handle h_oob_requests_;
    obs::MetricsRegistry::Handle h_repl_reads_;
    obs::MetricsRegistry::Handle h_repl_writes_;
    obs::Tracer tracer_;
    obs::LinkTraceObserver link_observer_;
    obs::LogHistogram stage_queue_;
    obs::LogHistogram stage_translate_;
    obs::LogHistogram stage_transfer_;
    /** reg::kTelemetrySelect latch: fn in [15:0], index in [31:16]. */
    std::uint32_t telemetry_select_ = 0;

    // Always-on telemetry plane (all disabled at reset).
    obs::SloWatch slo_;
    obs::FlightRecorder flight_;
    obs::TimeSeriesSampler sampler_{metrics_};
    /** reg::kObsWindowNs: window length; 0 = accounting off. */
    sim::Duration obs_window_ns_ = 0;
    /** Invalidates in-flight window-rotation timer events. */
    std::uint64_t obs_window_epoch_ = 0;
    /** reg::kSamplerIntervalNs: sampling period; 0 = sampler off. */
    sim::Duration sampler_interval_ = 0;
    /** Invalidates in-flight sampler timer events. */
    std::uint64_t sampler_epoch_ = 0;
    /** Staged reg::kSloMaxP99Ns for MgmtCommand::kSetSlo. */
    std::uint64_t slo_max_p99_ns_ = 0;
    /** Staged reg::kSloMaxErrorPpm for MgmtCommand::kSetSlo. */
    std::uint64_t slo_max_error_ppm_ = 0;
    /** reg::kSloSelect latch: fn in [15:0], stage in [19:16]. */
    std::uint32_t slo_select_ = 0;
    /** reg::kSloBreachSelect latch. */
    std::uint32_t slo_breach_select_ = 0;
    /** reg::kFlightDepth latch; applied at the next enable. */
    std::uint64_t flight_depth_ = obs::FlightRecorder::kDefaultDepth;
    /** reg::kPostmortemSelect latch: pm in [15:0], event in [31:16]. */
    std::uint32_t postmortem_select_ = 0;
};

} // namespace nesc::ctrl

#endif // NESC_CTRL_CONTROLLER_H
