/**
 * @file
 * NeSC device ABI: command/completion descriptors and the register map.
 *
 * Drivers talk to a function (PF or VF) through a per-function 4 KiB
 * register page (paper §V, "Control registers") and a pair of host-
 * memory rings: a command ring (driver -> device) and a completion
 * ring (device -> driver). Commands address the virtual device in
 * vLBAs; the device translates, executes, and posts a completion, then
 * raises the function's MSI vector.
 */
#ifndef NESC_CTRL_COMMAND_H
#define NESC_CTRL_COMMAND_H

#include <cstdint>

#include "pcie/host_memory.h"

namespace nesc::ctrl {

/** Device block granularity: NeSC operates on 1 KiB blocks (paper §IV.C). */
inline constexpr std::uint32_t kDeviceBlockSize = 1024;

/** Command opcodes. */
enum class Opcode : std::uint8_t {
    kRead = 1,
    kWrite = 2,
    kFlush = 3,
};

/** Completion status codes. */
enum class CompletionStatus : std::uint32_t {
    kOk = 0,
    kOutOfRange = 1,   ///< vLBA beyond the virtual device size
    kWriteFailed = 2,  ///< hypervisor could not allocate storage
    kInternalError = 3,
    kReadMediaError = 4,  ///< storage media failed the read
    kWriteMediaError = 5, ///< storage media failed the write
    kAborted = 6,         ///< aborted by watchdog or function reset
    kMalformed = 7,       ///< descriptor failed validation at fetch
    kDmaFault = 8,        ///< buffer DMA refused (window violation)
    /**
     * Payload failed its end-to-end checksum and the device's recovery
     * ladder (bounded re-read, then replica repair when a set is
     * attached) could not produce a verified copy. Distinct from
     * kReadMediaError: the media answered, but with corrupt data.
     */
    kChecksumError = 9,
};

/**
 * Statuses a driver may retry: media errors can be transient (the
 * device cannot tell a transient media hiccup from a grown defect, so
 * it reports both the same way and leaves the retry policy to the
 * host), and kAborted means the command was torn down, not that it
 * failed — a resubmission after recovery is well-defined. kMalformed
 * and kDmaFault are NOT retryable: resubmitting the same rejected
 * descriptor can only fail the same way (and feeds the quarantine
 * fault counter).
 */
constexpr bool
completion_status_retryable(CompletionStatus status)
{
    return status == CompletionStatus::kReadMediaError ||
           status == CompletionStatus::kWriteMediaError ||
           status == CompletionStatus::kAborted ||
           status == CompletionStatus::kChecksumError;
}

/** Command ring record (driver -> device). */
struct CommandRecord {
    std::uint64_t vlba;        ///< first device block of the request
    std::uint32_t nblocks;     ///< block count (driver splits large I/O)
    std::uint8_t opcode;       ///< Opcode
    std::uint8_t pad[3];
    pcie::HostAddr host_buffer; ///< data buffer in host memory
    std::uint64_t tag;          ///< echoed in the completion
};
static_assert(sizeof(CommandRecord) == 32);

/** Completion ring record (device -> driver). */
struct CompletionRecord {
    std::uint64_t tag;
    std::uint32_t status; ///< CompletionStatus
    std::uint32_t pad;
};
static_assert(sizeof(CompletionRecord) == 16);

/**
 * Register offsets within a function's BAR page. The paper names
 * ExtentTreeRoot, MissAddress/MissSize and RewalkTree explicitly
 * (§V); ring setup and doorbell registers are the standard DMA-ring
 * plumbing it mentions and omits.
 */
namespace reg {
inline constexpr std::uint64_t kExtentTreeRoot = 0x00; // RW (PF sets)
inline constexpr std::uint64_t kMissAddress = 0x08;    // RO
inline constexpr std::uint64_t kMissSize = 0x10;       // RO
inline constexpr std::uint64_t kRewalkTree = 0x14;     // WO
inline constexpr std::uint64_t kCmdRingBase = 0x18;    // RW
inline constexpr std::uint64_t kCompRingBase = 0x20;   // RW
inline constexpr std::uint64_t kDoorbell = 0x28;       // WO
inline constexpr std::uint64_t kDeviceSize = 0x30;     // RO (blocks)
inline constexpr std::uint64_t kInterruptVector = 0x38; // RW
/** Read-only per-function statistics (device-side accounting). */
inline constexpr std::uint64_t kStatBlocksRead = 0x40;    // RO
inline constexpr std::uint64_t kStatBlocksWritten = 0x48; // RO
inline constexpr std::uint64_t kStatFaults = 0x50;        // RO
/** QoS service weight of this function (set through PF mgmt). */
inline constexpr std::uint64_t kQosWeight = 0x58; // RO
/**
 * Command watchdog: commands outstanding longer than this many
 * nanoseconds complete with kAborted. 0 (reset value) disables it.
 */
inline constexpr std::uint64_t kWatchdogNs = 0x60; // RW
/**
 * Implemented width of the kWatchdogNs field: writes are truncated to
 * this many bits (max ~275 s). Bounding the field keeps a hostile
 * guest from arming a deadline centuries in the future, which would
 * drag the device's shared timebase along with it.
 */
inline constexpr std::uint32_t kWatchdogNsBits = 38;
/**
 * Function-level reset: any non-zero write aborts the function's
 * queued, stalled, and in-flight operations, clears its rings, fault
 * state, and driver-owned registers. Hypervisor-owned configuration
 * (extent root, device size, QoS weight, active state) is preserved.
 */
inline constexpr std::uint64_t kFnReset = 0x68; // WO
/** Pending fault kind (FaultKind); 0 when the function is running. */
inline constexpr std::uint64_t kFaultKind = 0x70;      // RO
inline constexpr std::uint64_t kStatAbortedOps = 0x78; // RO
inline constexpr std::uint64_t kStatFnResets = 0x7c;   // RO

// PF-only management block (paper: VFs are created/deleted and their
// storage subsets controlled through the PF interface).
inline constexpr std::uint64_t kMgmtVfId = 0x80;        // RW
inline constexpr std::uint64_t kMgmtExtentRoot = 0x88;  // RW
inline constexpr std::uint64_t kMgmtDeviceSize = 0x90;  // RW (blocks)
inline constexpr std::uint64_t kMgmtCommand = 0x98;     // WO
inline constexpr std::uint64_t kMgmtStatus = 0x9c;      // RO
inline constexpr std::uint64_t kMgmtQosWeight = 0xa0;   // RW

// Translation fast-path block (PF-only). The paper's prototype is an
// 8-entry fully-associative BTLB with no node cache and no miss
// coalescing; these registers scale the translation unit beyond it.
/**
 * BTLB geometry: bits[15:0] sets, bits[31:16] ways, bits[39:32]
 * range-granule shift (log2 blocks). sets <= 1 selects the paper's
 * fully-associative FIFO mode with `ways` entries; sets >= 2 selects
 * the set-associative pseudo-LRU organisation (sets and ways are
 * normalised down to powers of two). Writing reconfigures and flushes
 * the cache.
 */
inline constexpr std::uint64_t kBtlbGeometry = 0xa8;       // RW
inline constexpr std::uint64_t kStatBtlbHits = 0xb0;       // RO
inline constexpr std::uint64_t kStatBtlbMisses = 0xb8;     // RO
/**
 * Extent-node-cache SRAM budget in bytes; 0 (reset value) disables
 * the cache. Writing rebudgets and evicts down to the new size.
 */
inline constexpr std::uint64_t kNodeCacheBytes = 0xc0;     // RW
inline constexpr std::uint64_t kStatNodeCacheHits = 0xc8;  // RO
inline constexpr std::uint64_t kStatNodeCacheMisses = 0xd0; // RO
/**
 * Walk-miss coalescing (MSHR) control: 0 disables; a non-zero value
 * enables it with that coalescing window in blocks (concurrent misses
 * of the same function within the window of an in-flight walk attach
 * to it instead of launching their own).
 */
inline constexpr std::uint64_t kWalkCoalesce = 0xd8;       // RW
inline constexpr std::uint64_t kStatWalkCoalesced = 0xe0;  // RO
inline constexpr std::uint64_t kStatWalkReplays = 0xe8;    // RO

// Adversarial-guest containment block. Per-function quarantine state
// is read-only on the function's own page (the hypervisor reads a
// VF's page directly); the windows and thresholds that drive it are
// programmed through PF-only registers.
/** 1 while the function is quarantined, else 0. */
inline constexpr std::uint64_t kQuarantineStatus = 0xf0;    // RO
/** QuarantineCause of the current quarantine (0 when running). */
inline constexpr std::uint64_t kQuarantineCause = 0xf8;     // RO
inline constexpr std::uint64_t kStatMalformed = 0x100;      // RO
inline constexpr std::uint64_t kStatDmaViolations = 0x108;  // RO
/** VF writes to PF-only registers, rejected and counted. */
inline constexpr std::uint64_t kStatRegViolations = 0x110;  // RO
/**
 * Staged DMA-window range for MgmtCommand::kAddDmaWindow (PF-only,
 * like the mgmt block): base host address and byte length.
 */
inline constexpr std::uint64_t kDmaWindowBase = 0x118;      // RW (PF)
inline constexpr std::uint64_t kDmaWindowSize = 0x120;      // RW (PF)
/**
 * Quarantine trigger: this many validation faults (malformed
 * descriptors, ring-header corruption) within QuarantineWindowNs
 * quarantines the function. 0 disables storm-triggered quarantine;
 * DMA-window violations always quarantine immediately.
 */
inline constexpr std::uint64_t kQuarantineThreshold = 0x128; // RW (PF)
inline constexpr std::uint64_t kQuarantineWindowNs = 0x130;  // RW (PF)

// Telemetry block (PF-only): a self-describing per-function counter
// directory, mirroring how real SR-IOV controllers expose per-queue
// statistics for software polling. The PF writes kTelemetrySelect with
// a (function, counter index) pair, then reads the counter's value and
// packed-ASCII name back. Reads with an invalid function or index
// return all-ones (the PCIe master-abort idiom), never fault.
/** bits[15:0] function id, bits[31:16] counter index. */
inline constexpr std::uint64_t kTelemetrySelect = 0x138; // RW (PF)
/** 64-bit value of the selected counter. */
inline constexpr std::uint64_t kTelemetryValue = 0x140;  // RO (PF)
/** Number of counters per function in the directory. */
inline constexpr std::uint64_t kTelemetryCount = 0x148;  // RO (PF)
/**
 * Selected counter's name as packed ASCII, 8 chars per register
 * (little-endian byte order, NUL-padded, 24 chars max).
 */
inline constexpr std::uint64_t kTelemetryName0 = 0x150;  // RO (PF)
inline constexpr std::uint64_t kTelemetryName1 = 0x158;  // RO (PF)
inline constexpr std::uint64_t kTelemetryName2 = 0x160;  // RO (PF)
// Event-batching knobs (PF-only). Reset values reproduce the paper
// prototype's per-descriptor behaviour exactly.
/**
 * Descriptors fetched per fetch event; the engine reschedules itself
 * to continue a longer ring drain. 0 (reset) = drain the whole ring
 * in one event, the paper-equivalent behaviour.
 */
inline constexpr std::uint64_t kFetchBatch = 0x168;      // RW (PF)
/**
 * Nonzero coalesces completion CQ writes of a function that fall in
 * one completion_cost window into a single flush event with one MSI.
 * 0 (reset) = one CQ write + MSI per completion.
 */
inline constexpr std::uint64_t kCompletionBatch = 0x170; // RW (PF)

// Replication block (PF-only). Present only when a repl::ReplicaSet
// is attached behind the controller; with no set attached every
// register in the block reads all-ones (master-abort idiom) and
// writes are dropped. Replication is transparent to VFs: their media
// traffic is mirrored/routed underneath the translation layer.
/** Backends that must be durable before a replicated write acks. */
inline constexpr std::uint64_t kReplQuorum = 0x178;        // RW (PF)
/** Read-attempt deadline in ns before failover to the next backend. */
inline constexpr std::uint64_t kReplReadTimeoutNs = 0x180; // RW (PF)
/**
 * Backend selector for the per-backend registers below and for the
 * kReplDemote/kReplResync management commands.
 */
inline constexpr std::uint64_t kReplBackendSelect = 0x188; // RW (PF)
/** BackendState of the selected backend (0 healthy/1 down/2 resync). */
inline constexpr std::uint64_t kReplBackendState = 0x190;  // RO (PF)
/** Dirty (unreplicated) blocks owed to the selected backend. */
inline constexpr std::uint64_t kReplBackendDirty = 0x198;  // RO (PF)
/** Ack/read timeouts charged to the selected backend. */
inline constexpr std::uint64_t kReplBackendTimeouts = 0x1a0; // RO (PF)
/** Media/functional errors charged to the selected backend. */
inline constexpr std::uint64_t kReplBackendErrors = 0x1a8; // RO (PF)
/** Blocks copied into the selected backend by background resync. */
inline constexpr std::uint64_t kReplResyncDone = 0x1b0;    // RO (PF)
/** Read failovers taken across the set (timeout or error driven). */
inline constexpr std::uint64_t kReplFailovers = 0x1b8;     // RO (PF)

// Queue-pair admin block (VF-writable). Every function owns queue
// pair 0 implicitly — its SQ/CQ are the legacy kCmdRingBase /
// kCompRingBase / kDoorbell / kInterruptVector registers, which alias
// queue pair 0's state bit-for-bit (single-ring paper mode is the
// reset state). Additional pairs, up to the PF-programmed kQpQuota,
// are created through this block: select a qid, stage the ring bases
// and MSI vector, then write kQpCommand. Reads of the staged
// registers return the live pair's values when the selected qid
// exists and all-ones (master-abort idiom) when it does not, so a
// driver can probe which qids are live without faulting.
/** Queue-pair selector for the registers below. */
inline constexpr std::uint64_t kQpSelect = 0x200;    // RW
/** Staged SQ ring base for kQpCreate; live pair's base on read. */
inline constexpr std::uint64_t kQpSqBase = 0x208;    // RW
/** Staged CQ ring base for kQpCreate; live pair's base on read. */
inline constexpr std::uint64_t kQpCqBase = 0x210;    // RW
/** Staged completion MSI vector; 0 selects the per-(fn,qid) default. */
inline constexpr std::uint64_t kQpIrqVector = 0x218; // RW
/** QpCommand (create/delete the selected pair); result in kQpStatus. */
inline constexpr std::uint64_t kQpCommand = 0x220;   // WO
/** MgmtStatus-style result of the last kQpCommand. */
inline constexpr std::uint64_t kQpStatus = 0x228;    // RO
/** Number of live queue pairs (including pair 0). */
inline constexpr std::uint64_t kQpCount = 0x230;     // RO
/** PF-programmed queue-pair quota (total pairs, including pair 0). */
inline constexpr std::uint64_t kQpQuota = 0x238;     // RO

// Hierarchical-arbitration block (PF-only). Reset values reproduce
// the paper's flat weighted round robin exactly.
/** ArbMode: 0 = legacy WRR (paper §V.A, reset), 1 = DWRR. */
inline constexpr std::uint64_t kArbMode = 0x240;    // RW (PF)
/**
 * DWRR quantum in blocks: each turn a function's deficit grows by
 * quantum * qos_weight. Writes of 0 clamp to 1.
 */
inline constexpr std::uint64_t kArbQuantum = 0x248; // RW (PF)
/** Staged queue-pair quota for MgmtCommand::kSetQpQuota. */
inline constexpr std::uint64_t kMgmtQpQuota = 0x250;        // RW (PF)
/** Staged token-bucket rate for kSetRateLimit; 0 = unlimited. */
inline constexpr std::uint64_t kMgmtRateBytesPerSec = 0x258; // RW (PF)
/** Staged token-bucket burst capacity for kSetRateLimit, in bytes. */
inline constexpr std::uint64_t kMgmtRateBurstBytes = 0x260;  // RW (PF)

// Integrity block (PF-only unless noted). Present only when an
// IntegrityMap (per-pLBA CRC32C sidecar) is attached behind the
// controller; with no map attached every register in the block reads
// all-ones (master-abort idiom) and writes are dropped. Checksums are
// transparent to VFs: verification/recording happen per media block
// underneath translation, and the only guest-visible artifact is the
// kChecksumError completion when the recovery ladder fails.
/** bit0: verify-on-read + record-on-write enable (1 at attach). */
inline constexpr std::uint64_t kIntegrityCtrl = 0x268;       // RW (PF)
/** Bounded same-media re-reads attempted on a mismatch. */
inline constexpr std::uint64_t kIntegrityRereadLimit = 0x270; // RW (PF)
/** Checksum mismatches detected (foreground reads + scrub). */
inline constexpr std::uint64_t kIntegrityMismatches = 0x278; // RO (PF)
/** Blocks healed (re-read recoveries + replica repairs). */
inline constexpr std::uint64_t kIntegrityRepairs = 0x280;    // RO (PF)

// Background scrubber (PF-only, part of the integrity block): a
// rate-limited scan verifying cold data against the sidecar and
// repairing from replicas when a set is attached. Started/aborted via
// MgmtCommand::kScrubStart / kScrubAbort.
/** Blocks verified per scrub batch (reset 64; writes of 0 clamp). */
inline constexpr std::uint64_t kScrubBatch = 0x288;      // RW (PF)
/** Pause between scrub batches in ns (reset 100 us). */
inline constexpr std::uint64_t kScrubIntervalNs = 0x290; // RW (PF)
/** 1 while a scrub pass is running, else 0. */
inline constexpr std::uint64_t kScrubStatus = 0x298;     // RO (PF)
/** Blocks scanned by the current (or last completed) pass. */
inline constexpr std::uint64_t kScrubProgress = 0x2a0;   // RO (PF)
/** Uncorrectable blocks the scrubber could not repair. */
inline constexpr std::uint64_t kScrubErrors = 0x2a8;     // RO (PF)
/**
 * Per-function kChecksumError completions (readable on the function's
 * own page, like kQuarantineStatus — a guest can see its own damage).
 */
inline constexpr std::uint64_t kStatChecksumErrors = 0x2b0; // RO

// Observability block (PF-only): the always-on telemetry plane —
// windowed per-function latency/IOPS accounting with SLO watch, the
// flight recorder with postmortem capture, and the time-series
// sampler. Everything here is off at reset (windows, recorder and
// sampler all disabled) so the plane costs nothing until the PF
// turns it on.
/**
 * Accounting window length in ns; writing non-zero starts windowed
 * per-function latency accounting and SLO evaluation at each
 * rotation, 0 (reset) stops it. Pacing changes do not reset
 * accumulated windows.
 */
inline constexpr std::uint64_t kObsWindowNs = 0x2b8;    // RW (PF)
/** Staged end-to-end p99 ceiling in ns for kSetSlo; 0 unwatches. */
inline constexpr std::uint64_t kSloMaxP99Ns = 0x2c0;    // RW (PF)
/** Staged error-rate ceiling in errored ops per million for kSetSlo. */
inline constexpr std::uint64_t kSloMaxErrorPpm = 0x2c8; // RW (PF)
/**
 * Selector for the window registers below: fn in [15:0], stage in
 * [19:16] (0 end-to-end, 1 queue wait, 2 translate, 3 transfer).
 * The registers read the last *closed* window — a stable snapshot
 * that only changes at rotation. All read all-ones while windowed
 * accounting is off or when the selection is out of range.
 */
inline constexpr std::uint64_t kSloSelect = 0x2d0;       // RW (PF)
inline constexpr std::uint64_t kSloP50 = 0x2d8;          // RO (PF)
inline constexpr std::uint64_t kSloP99 = 0x2e0;          // RO (PF)
inline constexpr std::uint64_t kSloP999 = 0x2e8;         // RO (PF)
/** Ops completed in the selected fn's closed window (all stages). */
inline constexpr std::uint64_t kSloWindowOps = 0x2f0;    // RO (PF)
/** Errored ops in the selected fn's closed window. */
inline constexpr std::uint64_t kSloWindowErrors = 0x2f8; // RO (PF)
/** Start timestamp of the selected fn's closed window. */
inline constexpr std::uint64_t kSloWindowStart = 0x300;  // RO (PF)
/** Breaches currently retained in the directory (drop-oldest). */
inline constexpr std::uint64_t kSloBreachCount = 0x308;  // RO (PF)
/** Breach-directory index selector; out of range reads all-ones. */
inline constexpr std::uint64_t kSloBreachSelect = 0x310; // RW (PF)
/** Selected breach: fn in [15:0], metric in [23:16] (0 p99, 1 err). */
inline constexpr std::uint64_t kSloBreachInfo = 0x318;      // RO (PF)
inline constexpr std::uint64_t kSloBreachObserved = 0x320;  // RO (PF)
inline constexpr std::uint64_t kSloBreachThreshold = 0x328; // RO (PF)
/** Start timestamp of the window the selected breach closed over. */
inline constexpr std::uint64_t kSloBreachWindow = 0x330;    // RO (PF)
/** Bit 0 enables the flight recorder (re-enable resets the rings). */
inline constexpr std::uint64_t kFlightCtrl = 0x338;  // RW (PF)
/** Per-function ring depth applied at the next enable; 0 keeps it. */
inline constexpr std::uint64_t kFlightDepth = 0x340; // RW (PF)
/** Postmortems currently retained (drop-oldest buffer). */
inline constexpr std::uint64_t kPostmortemCount = 0x348; // RO (PF)
/**
 * Selector for the postmortem registers below: postmortem index in
 * [15:0], event index within it in [31:16]. Out-of-range selections
 * read all-ones.
 */
inline constexpr std::uint64_t kPostmortemSelect = 0x350; // RW (PF)
/**
 * Selected postmortem: fn in [15:0], reason in [23:16] (0 fault,
 * 1 quarantine, 2 checksum error, 3 replica demotion), detail in
 * [31:24] (reason-specific: fault kind, backend id), event count in
 * [63:32].
 */
inline constexpr std::uint64_t kPostmortemInfo = 0x358;      // RO (PF)
/** Snapshot timestamp of the selected postmortem. */
inline constexpr std::uint64_t kPostmortemTime = 0x360;      // RO (PF)
/** Selected event's timestamp. */
inline constexpr std::uint64_t kPostmortemEventTime = 0x368; // RO (PF)
/** Selected event's command tag. */
inline constexpr std::uint64_t kPostmortemEventTag = 0x370;  // RO (PF)
/** Selected event's vLBA. */
inline constexpr std::uint64_t kPostmortemEventVlba = 0x378; // RO (PF)
/**
 * Selected event's type in [7:0] (0 doorbell, 1 fetch, 2 complete,
 * 3 fault) and type-specific aux payload in [39:8] (qid, opcode,
 * completion status, cause).
 */
inline constexpr std::uint64_t kPostmortemEventMeta = 0x380; // RO (PF)
/**
 * Metrics-sampling interval in ns; non-zero starts the time-series
 * sampler (taking one sample immediately), 0 (reset) stops it.
 */
inline constexpr std::uint64_t kSamplerIntervalNs = 0x388; // RW (PF)
/** Samples currently retained in the bounded series. */
inline constexpr std::uint64_t kSamplerCount = 0x390;      // RO (PF)

/**
 * Per-queue doorbell aperture: queue pair q's doorbell is the 8-byte
 * register at kQpDoorbell0 + 8*q. Pair 0's doorbell is also aliased
 * at the legacy kDoorbell offset. A doorbell write to a qid with no
 * live queue pair is dropped and counted (master-abort semantics for
 * a posted write): it never reaches the fetch engine.
 */
inline constexpr std::uint64_t kQpDoorbell0 = 0x800;
} // namespace reg

/** Queue pairs per function the doorbell aperture can address. */
inline constexpr std::uint32_t kMaxQueuePairs = 16;

/** reg::kQpCommand values. */
enum class QpCommand : std::uint32_t {
    kCreate = 1, ///< create the selected pair from the staged bases
    kDelete = 2, ///< tear down the selected pair (aborts its commands)
};

/** reg::kArbMode values. */
enum class ArbMode : std::uint32_t {
    kLegacyWrr = 0, ///< paper §V.A credit round robin (reset state)
    kDwrr = 1,      ///< deficit WRR: unspent credit banks under
                    ///< backpressure while the function stays backlogged
};

/** Why a function is quarantined (reg::kQuarantineCause). */
enum class QuarantineCause : std::uint8_t {
    kNone = 0,
    kMalformedStorm = 1, ///< validation-fault threshold exceeded
    kDmaViolation = 2,   ///< device DMA outside the function's windows
    kRingCorrupt = 3,    ///< command-ring header failed validation
};

/** Packs a kBtlbGeometry register value. */
constexpr std::uint64_t
encode_btlb_geometry(std::uint32_t sets, std::uint32_t ways,
                     std::uint32_t range_shift)
{
    return (static_cast<std::uint64_t>(sets) & 0xffff) |
           ((static_cast<std::uint64_t>(ways) & 0xffff) << 16) |
           ((static_cast<std::uint64_t>(range_shift) & 0xff) << 32);
}

/** kMgmtCommand values. */
enum class MgmtCommand : std::uint32_t {
    kCreateVf = 1,
    kDeleteVf = 2,
    kFlushBtlb = 3, ///< hypervisor-triggered BTLB flush (dedup etc.)
    /**
     * Allocation failed (storage or quota exhausted): fail the VF's
     * stalled writes with a write-failure completion (Fig. 5b).
     */
    kFailMiss = 4,
    /**
     * Applies kMgmtQosWeight to the VF in kMgmtVfId: the arbiter
     * serves that many blocks per round-robin turn (paper §IV.D,
     * "QoS... by modifying its DMA engine to support different
     * priorities for each VF").
     */
    kSetQosWeight = 5,
    /**
     * Repoints the extent tree of the VF in kMgmtVfId at
     * kMgmtExtentRoot and flushes that VF's BTLB entries. This is the
     * only way to change a live VF's mapping: the per-function
     * ExtentTreeRoot register is read-only outside the PF, so a guest
     * cannot repoint its own tree at a self-crafted mapping.
     */
    kSetExtentRoot = 6,
    /**
     * Grants the VF in kMgmtVfId DMA access to the staged range
     * [kDmaWindowBase, kDmaWindowBase + kDmaWindowSize) and enables
     * window enforcement for it. A confined VF's device-initiated
     * DMA (rings, data buffers, extent-node fetches) must land
     * inside its windows; anything else quarantines the VF.
     */
    kAddDmaWindow = 7,
    /** Drops the VF's windows, returning it to unconfined DMA. */
    kClearDmaWindows = 8,
    /**
     * Releases the VF in kMgmtVfId from quarantine via a
     * function-level reset. This is the only way out: the VF's own
     * FnReset register is ignored while quarantined, so a hostile
     * guest cannot un-quarantine itself.
     */
    kReleaseQuarantine = 9,
    /**
     * Forces demotion of the replication backend selected by
     * kReplBackendSelect (maintenance drain). Fails when no replica
     * set is attached.
     */
    kReplDemote = 10,
    /**
     * Starts (or restarts) background resync of the selected backend,
     * replaying its dirty-extent log from a healthy peer while
     * foreground I/O continues.
     */
    kReplResync = 11,
    /**
     * Applies reg::kMgmtQpQuota to the VF in kMgmtVfId: the total
     * number of queue pairs (including pair 0) the VF may have live.
     * Must be in [1, kMaxQueuePairs]. Lowering the quota below the
     * live count affects future creates only.
     */
    kSetQpQuota = 12,
    /**
     * Applies the staged token-bucket rate limit (kMgmtRateBytesPerSec
     * + kMgmtRateBurstBytes) to the VF in kMgmtVfId. Rate 0 (the
     * reset state) removes the limit.
     */
    kSetRateLimit = 13,
    /**
     * Starts a background scrub pass over the whole pLBA space: a
     * rate-limited scan (kScrubBatch blocks every kScrubIntervalNs)
     * verifying media contents against the integrity sidecar,
     * repairing damage from a verified replica copy when a set is
     * attached, and counting uncorrectable blocks otherwise. Fails
     * when no integrity map is attached or a pass is running.
     */
    kScrubStart = 14,
    /** Aborts the running scrub pass (progress registers keep state). */
    kScrubAbort = 15,
    /**
     * Applies the staged SLO thresholds (reg::kSloMaxP99Ns +
     * kSloMaxErrorPpm) to the VF in kMgmtVfId. Evaluated against
     * each closed accounting window while kObsWindowNs is non-zero;
     * zero thresholds unwatch the corresponding metric.
     */
    kSetSlo = 16,
    /** Clears the retained postmortem buffer. */
    kPostmortemClear = 17,
    /** Clears the SLO breach directory. */
    kSloBreachClear = 18,
};

/** kMgmtStatus values. */
enum class MgmtStatus : std::uint32_t {
    kIdle = 0,
    kOk = 1,
    kError = 2,
};

/**
 * MSI vector assignment: completion vector of (function f, queue q).
 * Queue pair 0's vector equals the legacy completion_vector(fn), so
 * single-queue drivers are unaffected by the multi-queue extension.
 */
constexpr std::uint32_t
queue_vector(std::uint16_t fn, std::uint32_t qid)
{
    return 0x100u + fn + (qid << 16);
}

/** MSI vector assignment: completion vector of function f (queue 0). */
constexpr std::uint32_t
completion_vector(std::uint16_t fn)
{
    return queue_vector(fn, 0);
}

/** MSI vector the PF receives for VF faults (write miss / prune). */
inline constexpr std::uint32_t kFaultVector = 0x10;

} // namespace nesc::ctrl

#endif // NESC_CTRL_COMMAND_H
