/**
 * @file
 * Device-side extent-node cache.
 *
 * The block-walk unit resolves a BTLB miss by DMA-reading one tree
 * node per level (header + entry array). Under deep trees and many
 * VFs those interior nodes are re-read constantly — every walk starts
 * at the root. This cache models a bounded on-device SRAM that keeps
 * recently fetched, sanity-checked node images so subsequent walks
 * skip the per-level DMA round-trips entirely and pay only the parse
 * cost.
 *
 * Entries are tagged by *function id* as well as host address: a VF
 * can never translate through a node cached from another VF's tree,
 * even if the hypervisor maps shared subtrees at the same address —
 * isolation is structural, not a lookup-time check. Invalidation is
 * per function (RewalkTree, SetExtentRoot, DeleteVf, FnReset, tree
 * corruption) or global (PF BTLB flush), mirroring the BTLB rules.
 *
 * Replacement is LRU over a byte budget: a cached node charges its
 * header plus entry bytes, so big-fanout nodes cost proportionally
 * more of the SRAM than slim ones.
 */
#ifndef NESC_CTRL_NODE_CACHE_H
#define NESC_CTRL_NODE_CACHE_H

#include <cassert>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "extent/layout.h"
#include "pcie/bdf.h"
#include "pcie/host_memory.h"

namespace nesc::ctrl {

/** LRU cache of extent-tree node images, keyed by (fn, host addr). */
class ExtentNodeCache {
  public:
    /** A cached node: validated header plus raw entry bytes. */
    struct Node {
        extent::NodeHeaderRecord header{};
        std::vector<std::byte> entries;
    };

    explicit ExtentNodeCache(std::uint64_t budget_bytes = 0)
        : budget_bytes_(budget_bytes)
    {
    }

    /** A zero budget disables the cache (the paper's configuration). */
    bool enabled() const { return budget_bytes_ > 0; }
    std::uint64_t budget_bytes() const { return budget_bytes_; }

    /** Rebudgets the SRAM, evicting LRU entries down to the new size. */
    void
    set_budget(std::uint64_t bytes)
    {
        budget_bytes_ = bytes;
        evict_to_fit(0);
    }

    /** Returns the cached node or nullptr; a hit refreshes its LRU age. */
    const Node *
    lookup(pcie::FunctionId fn, pcie::HostAddr addr)
    {
        auto it = index_.find(key(fn, addr));
        if (it == index_.end()) {
            ++misses_;
            return nullptr;
        }
        lru_.splice(lru_.begin(), lru_, it->second); // move to MRU
        ++hits_;
        return &it->second->node;
    }

    /**
     * Caches a validated node image. Oversized nodes (footprint above
     * the whole budget) are not cached; an existing image for the same
     * key is replaced.
     */
    void
    insert(pcie::FunctionId fn, pcie::HostAddr addr,
           const extent::NodeHeaderRecord &header,
           std::vector<std::byte> entry_bytes)
    {
        if (!enabled())
            return;
        const std::uint64_t footprint =
            sizeof(extent::NodeHeaderRecord) + entry_bytes.size();
        if (footprint > budget_bytes_)
            return;
        const std::uint64_t k = key(fn, addr);
        if (auto it = index_.find(k); it != index_.end())
            erase(it->second);
        evict_to_fit(footprint);
        lru_.push_front(CacheEntry{k, fn, footprint,
                                   Node{header, std::move(entry_bytes)}});
        index_[k] = lru_.begin();
        bytes_used_ += footprint;
        ++inserts_;
    }

    /** Drops every node cached for @p fn. */
    void
    invalidate_function(pcie::FunctionId fn)
    {
        for (auto it = lru_.begin(); it != lru_.end();) {
            if (it->fn == fn)
                it = erase(it);
            else
                ++it;
        }
        ++function_invalidations_;
    }

    /** Drops everything (PF flush). */
    void
    flush()
    {
        lru_.clear();
        index_.clear();
        bytes_used_ = 0;
        ++flushes_;
    }

    std::size_t size() const { return lru_.size(); }
    std::uint64_t bytes_used() const { return bytes_used_; }
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t inserts() const { return inserts_; }
    std::uint64_t evictions() const { return evictions_; }
    std::uint64_t flushes() const { return flushes_; }
    std::uint64_t function_invalidations() const
    {
        return function_invalidations_;
    }

    double
    hit_rate() const
    {
        const std::uint64_t total = hits_ + misses_;
        return total ? static_cast<double>(hits_) / total : 0.0;
    }

  private:
    struct CacheEntry {
        std::uint64_t key;
        pcie::FunctionId fn;
        std::uint64_t footprint;
        Node node;
    };
    using Lru = std::list<CacheEntry>;

    /** Host addresses fit in 48 bits; the fn tag rides in the top 16. */
    static std::uint64_t
    key(pcie::FunctionId fn, pcie::HostAddr addr)
    {
        assert(addr < (1ULL << 48));
        return (static_cast<std::uint64_t>(fn) << 48) | addr;
    }

    Lru::iterator
    erase(Lru::iterator it)
    {
        bytes_used_ -= it->footprint;
        index_.erase(it->key);
        return lru_.erase(it);
    }

    void
    evict_to_fit(std::uint64_t incoming)
    {
        while (!lru_.empty() && bytes_used_ + incoming > budget_bytes_) {
            auto last = std::prev(lru_.end());
            erase(last);
            ++evictions_;
        }
    }

    std::uint64_t budget_bytes_;
    Lru lru_; ///< front = MRU
    std::unordered_map<std::uint64_t, Lru::iterator> index_;
    std::uint64_t bytes_used_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t inserts_ = 0;
    std::uint64_t evictions_ = 0;
    std::uint64_t flushes_ = 0;
    std::uint64_t function_invalidations_ = 0;
};

} // namespace nesc::ctrl

#endif // NESC_CTRL_NODE_CACHE_H
