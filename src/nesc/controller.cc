#include "controller.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <unistd.h>

#include "extent/layout.h"
#include "nesc/telemetry.h"
#include "repl/replica_set.h"
#include "storage/integrity_map.h"
#include "util/log.h"

#undef NESC_LOG_COMPONENT
#define NESC_LOG_COMPONENT "controller"

namespace nesc::ctrl {

namespace {
// Walk sanity bounds: no well-formed tree the hypervisor can build
// exceeds these, so crossing one means the node bytes are garbage.
constexpr std::uint32_t kMaxNodeEntries = 4096;
constexpr std::uint32_t kMaxWalkDepth = 64;
// No driver needs a deeper command ring; a bigger claimed capacity
// means the guest-written header is garbage.
constexpr std::uint32_t kMaxRingCapacity = 1u << 20;
// Per-block CRC32C compute/compare cost charged on the media service
// path while integrity is enabled (a 1 KiB block through a ~4 GB/s
// checksum engine). Zero-cost when the feature is off, so the golden
// figures are untouched.
constexpr sim::Duration kChecksumCostNs = 250;
} // namespace

using extent::ExtentPtrRecord;
using extent::NodeHeaderRecord;
using extent::NodeKind;
using extent::NodePtrRecord;

Controller::Controller(sim::Simulator &simulator,
                       pcie::HostMemory &host_memory,
                       storage::BlockDevice &device,
                       pcie::InterruptController &irq,
                       const ControllerConfig &config)
    : simulator_(simulator), host_memory_(host_memory), device_(device),
      irq_(irq), config_(config), dma_(simulator, host_memory),
      btlb_(BtlbConfig{config.btlb_entries, config.btlb_sets,
                       config.btlb_range_shift}),
      node_cache_(config.node_cache_bytes),
      walk_coalescing_(config.walk_coalescing),
      coalesce_window_(config.coalesce_window_blocks),
      contexts_(static_cast<std::size_t>(config.max_vfs) + 1),
      fetch_batch_(config.fetch_batch),
      completion_batch_(config.completion_batch),
      quarantine_threshold_(config.quarantine_threshold),
      quarantine_window_(config.quarantine_window),
      link_observer_(tracer_)
{
    // Event-lane layout: shared lanes are opened once here;
    // per-function mode opens a lane per active function instead
    // (PF now, VFs at kCreateVf). Lane 0 stays the shared default
    // lane carrying DMA, link and media events.
    if (config_.event_lanes > 0) {
        shared_lanes_.reserve(config_.event_lanes);
        for (std::uint32_t i = 0; i < config_.event_lanes; ++i)
            shared_lanes_.push_back(simulator_.register_lane());
    }
    // Intern the hot pipeline counters once: per-block updates are then
    // a vector indexing, never a string-keyed map lookup.
    h_btlb_hits_ = metrics_.counter("btlb_hits");
    h_btlb_misses_ = metrics_.counter("btlb_misses");
    h_node_cache_hits_ = metrics_.counter("node_cache_hits");
    h_node_cache_misses_ = metrics_.counter("node_cache_misses");
    h_walk_node_reads_ = metrics_.counter("walk_node_reads");
    h_walk_coalesced_ = metrics_.counter("walk_coalesced");
    h_walk_coalesced_resolved_ =
        metrics_.counter("walk_coalesced_resolved");
    h_walk_replays_ = metrics_.counter("walk_replays");
    h_commands_fetched_ = metrics_.counter("commands_fetched");
    h_completions_ = metrics_.counter("completions");
    h_holes_zero_filled_ = metrics_.counter("holes_zero_filled");
    h_oob_requests_ = metrics_.counter("oob_requests");
    h_repl_reads_ = metrics_.counter("repl_reads");
    h_repl_writes_ = metrics_.counter("repl_writes");
    arb_eligible_.resize(contexts_.size());
    // The PF is permanently active and spans the whole physical device.
    FunctionContext &pf = contexts_[pcie::kPhysicalFunctionId];
    pf.active = true;
    pf.device_size_blocks = device_.geometry().num_blocks();
    assign_function_lane(pf, pcie::kPhysicalFunctionId);
    create_qp0(pf);
    // Every attributed DMA the device issues is policed by the
    // PF-programmed window table; a violation quarantines the fn.
    dma_.set_window_table(&dma_windows_);
    dma_.set_violation_hook(
        [this](pcie::FunctionId fn, pcie::HostAddr addr,
               std::uint64_t size) { note_dma_violation(fn, addr, size); });
    slo_.set_breach_hook(
        [this](const obs::SloBreach &breach) { on_slo_breach(breach); });
}

Controller::~Controller()
{
    // Postmortem hook for CI: when NESC_OBS_DUMP_DIR is set, leave an
    // observability dump behind so a failing run's metrics and flight
    // postmortems survive as artifacts. File names carry the pid and a
    // process-wide sequence so parallel tests never collide.
    const char *dir = std::getenv("NESC_OBS_DUMP_DIR");
    if (dir == nullptr || dir[0] == '\0')
        return;
    static std::atomic<std::uint64_t> seq{0};
    const std::uint64_t n = seq.fetch_add(1, std::memory_order_relaxed);
    char path[512];
    std::snprintf(path, sizeof(path), "%s/nesc_obs_%ld_%llu.json", dir,
                  static_cast<long>(::getpid()),
                  static_cast<unsigned long long>(n));
    std::FILE *f = std::fopen(path, "w");
    if (f == nullptr)
        return;
    const std::string metrics = metrics_.to_json();
    const std::string postmortems = flight_.postmortem_json();
    std::fprintf(f, "{\n\"metrics\": %s,\n\"postmortems\": %s\n}\n",
                 metrics.c_str(), postmortems.c_str());
    std::fclose(f);
}

void
Controller::attach_replicas(repl::ReplicaSet *replicas)
{
    if (replicas_ != nullptr && replicas_ != replicas)
        replicas_->set_demotion_hook(nullptr);
    replicas_ = replicas;
    repl_backend_select_ = 0;
    if (replicas_ != nullptr) {
        metrics_.bump("repl_attached");
        // A demoted backend is fleet-affecting: freeze the PF's recent
        // lifecycle history for postmortem analysis.
        replicas_->set_demotion_hook([this](std::size_t backend) {
            flight_.snapshot(pcie::kPhysicalFunctionId,
                             obs::PostmortemReason::kReplicaDemotion,
                             simulator_.now(), backend);
        });
    }
}

void
Controller::attach_integrity(storage::IntegrityMap *map)
{
    integrity_ = map;
    integrity_enabled_ = map != nullptr;
    integrity_reread_limit_ = 1;
    // A scrub pass over a detached (or different) map is meaningless.
    scrub_running_ = false;
    ++scrub_epoch_;
    FunctionContext &pf = contexts_[pcie::kPhysicalFunctionId];
    if (map != nullptr) {
        // The sidecar lives past the data region on the same media; a
        // guest (nestfs included) must never be able to address it.
        pf.device_size_blocks =
            std::min<std::uint64_t>(pf.device_size_blocks,
                                    map->data_blocks());
        metrics_.bump("integrity_attached");
    } else {
        pf.device_size_blocks = device_.geometry().num_blocks();
    }
}

bool
Controller::integrity_on(extent::Plba plba) const
{
    return integrity_ != nullptr && integrity_enabled_ &&
           integrity_->covers(plba);
}

void
Controller::note_checksum_mismatch(pcie::FunctionId fn, const BlockOp &op)
{
    ++integrity_mismatches_;
    ++ctx(fn).stats.checksum_errors;
    metrics_.bump("checksum_mismatches");
    tracer_.instant(obs::Stage::kChecksum, fn, simulator_.now(), op.tag,
                    op.vlba);
    flight_.record(fn, obs::FlightEventType::kFault, simulator_.now(),
                   static_cast<std::uint32_t>(op.tag), op.vlba,
                   static_cast<std::uint32_t>(
                       obs::PostmortemReason::kChecksumError));
    flight_.snapshot(fn, obs::PostmortemReason::kChecksumError,
                     simulator_.now());
}

bool
Controller::is_active(pcie::FunctionId fn) const
{
    return fn < contexts_.size() && contexts_[fn].active;
}

const FunctionStats &
Controller::stats(pcie::FunctionId fn) const
{
    return contexts_.at(fn).stats;
}

FaultKind
Controller::fault_kind(pcie::FunctionId fn) const
{
    return contexts_.at(fn).fault;
}

bool
Controller::quarantined(pcie::FunctionId fn) const
{
    return contexts_.at(fn).quarantined;
}

QuarantineCause
Controller::quarantine_cause(pcie::FunctionId fn) const
{
    return contexts_.at(fn).quarantine_cause;
}

bool
Controller::quiescent() const
{
    if (!vlba_queue_.empty() || !plba_queue_.empty() || active_walks_ ||
        inflight_transfers_)
        return false;
    for (const FunctionContext &c : contexts_) {
        if (c.queued_ops != 0 || !c.stalled_ops.empty() ||
            !c.pending.empty())
            return false;
        for (const QpRef &qref : c.qps) {
            const Qp *q = qp_arena_.get(qref);
            if (q != nullptr && q->fetch_in_progress)
                return false;
        }
    }
    return true;
}

// --------------------------------------------------------------------
// Queue-pair lifecycle
// --------------------------------------------------------------------

Controller::Qp *
Controller::qp(FunctionContext &c, std::uint32_t qid)
{
    if (qid >= c.qps.size())
        return nullptr;
    return qp_arena_.get(c.qps[qid]);
}

const Controller::Qp *
Controller::qp(const FunctionContext &c, std::uint32_t qid) const
{
    if (qid >= c.qps.size())
        return nullptr;
    return qp_arena_.get(c.qps[qid]);
}

void
Controller::create_qp0(FunctionContext &c)
{
    const QpRef ref = qp_arena_.acquire();
    qp_arena_.get(ref)->reset(0);
    c.qps.assign(1, ref);
}

std::uint32_t
Controller::queue_pair_count(pcie::FunctionId fn) const
{
    const FunctionContext &c = contexts_.at(fn);
    std::uint32_t live = 0;
    for (const QpRef &qref : c.qps)
        if (qp_arena_.get(qref) != nullptr)
            ++live;
    return live;
}

const QueuePairStats *
Controller::queue_pair_stats(pcie::FunctionId fn, std::uint32_t qid) const
{
    if (fn >= contexts_.size())
        return nullptr;
    const Qp *q = qp(contexts_[fn], qid);
    return q != nullptr ? &q->stats : nullptr;
}

std::uint32_t
Controller::qp_admin_execute(pcie::FunctionId fn, QpCommand cmd)
{
    const auto ok = static_cast<std::uint32_t>(MgmtStatus::kOk);
    const auto err = static_cast<std::uint32_t>(MgmtStatus::kError);
    FunctionContext &c = ctx(fn);
    if (!c.active || c.quarantined)
        return err;
    const std::uint32_t qid = c.qp_select;
    switch (cmd) {
      case QpCommand::kCreate: {
        // Pair 0 is owned by the legacy alias registers and exists for
        // the function's whole active life; it is never re-created.
        if (qid == 0 || qid >= kMaxQueuePairs)
            return err;
        if (qp(c, qid) != nullptr)
            return err;
        if (queue_pair_count(fn) >= c.qp_quota)
            return err;
        if (c.qp_sq_latch == pcie::kNullHostAddr ||
            c.qp_cq_latch == pcie::kNullHostAddr)
            return err;
        if (c.qps.size() <= qid)
            c.qps.resize(qid + 1); // gap slots hold stale handles
        const QpRef ref = qp_arena_.acquire();
        Qp *q = qp_arena_.get(ref);
        q->reset(static_cast<std::uint16_t>(qid));
        q->sq_base = c.qp_sq_latch;
        q->cq_base = c.qp_cq_latch;
        q->irq_vector = c.qp_irq_latch;
        c.qps[qid] = ref;
        metrics_.bump("qps_created");
        return ok;
      }
      case QpCommand::kDelete:
        if (qid == 0 || qp(c, qid) == nullptr)
            return err;
        destroy_qp(fn, qid);
        metrics_.bump("qps_deleted");
        return ok;
    }
    return err;
}

void
Controller::destroy_qp(pcie::FunctionId fn, std::uint32_t qid)
{
    FunctionContext &c = ctx(fn);
    Qp *q = qp(c, qid);
    if (q == nullptr)
        return;
    // Ops still staged on the pair die with it.
    c.queued_ops -= q->staging.size();
    // Every command that arrived on this pair aborts: queued copies
    // are purged everywhere, blocks already in the transfer stage drop
    // on the stale command handle, and the completions die with the
    // queue (the driver chose to delete it live). Tag order keeps the
    // teardown deterministic.
    std::vector<std::uint64_t> tags;
    for (const auto &[tag, cref] : c.pending)
        if (cmd_arena_.get(cref)->qid == qid)
            tags.push_back(tag);
    std::sort(tags.begin(), tags.end());
    for (std::uint64_t tag : tags) {
        c.stalled_ops.erase_if(
            [tag](const BlockOp &op) { return op.tag == tag; });
        purge_shared_queues(fn, tag);
        cmd_arena_.release(c.pending.find(tag)->second);
        c.pending.erase(tag);
        tracer_.instant(obs::Stage::kAbort, fn, simulator_.now(), tag);
    }
    if (!tags.empty()) {
        c.stats.aborted_ops += tags.size();
        metrics_.bump("aborted_ops", tags.size());
    }
    qp_arena_.release(c.qps[qid]);
    update_arb_eligibility(fn);
}

void
Controller::reset_queue_pairs(FunctionContext &c)
{
    if (c.qps.empty())
        return;
    // FLR already tore down the function's in-flight state; here the
    // extra pairs just stop existing and pair 0 returns to reset
    // (rings detached, bases null, shadow invalid) for re-programming.
    for (std::size_t qid = 1; qid < c.qps.size(); ++qid)
        qp_arena_.release(c.qps[qid]); // idempotent on stale handles
    c.qps.resize(1);
    if (Qp *q = qp_arena_.get(c.qps[0]); q != nullptr)
        q->reset(0);
}

util::Status
Controller::doorbell_write(pcie::FunctionId fn, std::uint32_t qid)
{
    FunctionContext &c = ctx(fn);
    if (!c.active)
        return util::failed_precondition_error("doorbell on inactive fn");
    if (c.quarantined) {
        // Posted write into a sealed function: dropped, counted.
        ++c.stats.doorbells_ignored;
        metrics_.bump("doorbells_ignored");
        return util::Status::ok();
    }
    Qp *q = qp(c, qid);
    if (q == nullptr) {
        // Doorbell to a pair that does not exist: hardware would
        // master-abort the posted write; here it is dropped and
        // counted where the hypervisor can see it.
        ++c.stats.dead_doorbells;
        metrics_.bump("dead_doorbells");
        return util::Status::ok();
    }
    ++q->stats.doorbells;
    flight_.record(fn, obs::FlightEventType::kDoorbell, simulator_.now(),
                   0, 0, qid);
    if (q->fetch_in_progress) {
        // Remember that more work arrived while a fetch was busy.
        q->doorbell_rearm = true;
        return util::Status::ok();
    }
    tracer_.instant(obs::Stage::kDoorbell, fn, simulator_.now());
    q->fetch_in_progress = true;
    simulator_.schedule_in_lane(
        c.lane, config_.doorbell_latency,
        [this, fn, qid]() { fetch_commands(fn, qid); });
    return util::Status::ok();
}

// --------------------------------------------------------------------
// Register interface
// --------------------------------------------------------------------

util::Result<std::uint64_t>
Controller::mmio_read(pcie::FunctionId fn, std::uint64_t offset,
                      unsigned size)
{
    (void)size;
    if (fn >= contexts_.size())
        return util::out_of_range_error("no such function");
    FunctionContext &c = ctx(fn);
    switch (offset) {
      case reg::kExtentTreeRoot: return c.extent_tree_root;
      case reg::kMissAddress: return c.miss_address;
      case reg::kMissSize: return static_cast<std::uint64_t>(c.miss_size);
      case reg::kCmdRingBase: {
        const Qp *q = qp(c, 0);
        return q != nullptr ? q->sq_base : pcie::kNullHostAddr;
      }
      case reg::kCompRingBase: {
        const Qp *q = qp(c, 0);
        return q != nullptr ? q->cq_base : pcie::kNullHostAddr;
      }
      case reg::kDeviceSize: return c.device_size_blocks;
      case reg::kStatBlocksRead: return c.stats.blocks_read;
      case reg::kStatBlocksWritten: return c.stats.blocks_written;
      case reg::kStatFaults: return c.stats.faults;
      case reg::kStatAbortedOps: return c.stats.aborted_ops;
      case reg::kStatFnResets: return c.stats.fn_resets;
      case reg::kWatchdogNs: return c.watchdog_ns;
      case reg::kFaultKind:
        return static_cast<std::uint64_t>(c.fault);
      case reg::kQosWeight:
        return static_cast<std::uint64_t>(c.qos_weight);
      case reg::kInterruptVector: {
        const Qp *q = qp(c, 0);
        return static_cast<std::uint64_t>(
            (q != nullptr && q->irq_vector) ? q->irq_vector
                                            : completion_vector(fn));
      }
      // Queue-pair admin block: driver-owned, on the function's own
      // page. Staged-value reads reflect the live pair when the
      // selected qid exists, and read all-ones (the master-abort
      // idiom) when it does not — a driver can probe for a pair
      // without faulting.
      case reg::kQpSelect:
        return static_cast<std::uint64_t>(c.qp_select);
      case reg::kQpSqBase: {
        const Qp *q = qp(c, c.qp_select);
        return q != nullptr ? q->sq_base : ~std::uint64_t{0};
      }
      case reg::kQpCqBase: {
        const Qp *q = qp(c, c.qp_select);
        return q != nullptr ? q->cq_base : ~std::uint64_t{0};
      }
      case reg::kQpIrqVector: {
        const Qp *q = qp(c, c.qp_select);
        return q != nullptr ? static_cast<std::uint64_t>(q->irq_vector)
                            : ~std::uint64_t{0};
      }
      case reg::kQpStatus:
        return static_cast<std::uint64_t>(c.qp_status);
      case reg::kQpCount:
        return static_cast<std::uint64_t>(queue_pair_count(fn));
      case reg::kQpQuota:
        return static_cast<std::uint64_t>(c.qp_quota);
      // Arbitration block: PF-only (scheduling policy is hypervisor
      // infrastructure, not guest-tunable).
      case reg::kArbMode:
        if (fn != pcie::kPhysicalFunctionId)
            return util::permission_denied_error(
                "arbitration regs are PF-only");
        return static_cast<std::uint64_t>(arb_mode_);
      case reg::kArbQuantum:
        if (fn != pcie::kPhysicalFunctionId)
            return util::permission_denied_error(
                "arbitration regs are PF-only");
        return static_cast<std::uint64_t>(arb_quantum_);
      case reg::kMgmtQpQuota:
        if (fn != pcie::kPhysicalFunctionId)
            return util::permission_denied_error("mgmt regs are PF-only");
        return static_cast<std::uint64_t>(mgmt_qp_quota_);
      case reg::kMgmtRateBytesPerSec:
        if (fn != pcie::kPhysicalFunctionId)
            return util::permission_denied_error("mgmt regs are PF-only");
        return mgmt_rate_bps_;
      case reg::kMgmtRateBurstBytes:
        if (fn != pcie::kPhysicalFunctionId)
            return util::permission_denied_error("mgmt regs are PF-only");
        return mgmt_rate_burst_;
      case reg::kMgmtQosWeight:
        if (fn != pcie::kPhysicalFunctionId)
            return util::permission_denied_error("mgmt regs are PF-only");
        return static_cast<std::uint64_t>(mgmt_qos_weight_);
      case reg::kMgmtStatus:
        if (fn != pcie::kPhysicalFunctionId)
            return util::permission_denied_error("mgmt regs are PF-only");
        return static_cast<std::uint64_t>(mgmt_status_);
      case reg::kMgmtVfId:
        if (fn != pcie::kPhysicalFunctionId)
            return util::permission_denied_error("mgmt regs are PF-only");
        return static_cast<std::uint64_t>(mgmt_vf_id_);
      // Translation fast-path block: PF-only, including the stats —
      // global cache occupancy is a cross-VF side channel.
      case reg::kBtlbGeometry:
        if (fn != pcie::kPhysicalFunctionId)
            return util::permission_denied_error(
                "translation regs are PF-only");
        return encode_btlb_geometry(
            btlb_.fully_associative() ? 0 : btlb_.sets(),
            btlb_.fully_associative() ? btlb_.capacity() : btlb_.ways(),
            btlb_.range_shift());
      case reg::kStatBtlbHits:
        if (fn != pcie::kPhysicalFunctionId)
            return util::permission_denied_error(
                "translation regs are PF-only");
        return btlb_.hits();
      case reg::kStatBtlbMisses:
        if (fn != pcie::kPhysicalFunctionId)
            return util::permission_denied_error(
                "translation regs are PF-only");
        return btlb_.misses();
      case reg::kNodeCacheBytes:
        if (fn != pcie::kPhysicalFunctionId)
            return util::permission_denied_error(
                "translation regs are PF-only");
        return node_cache_.budget_bytes();
      case reg::kStatNodeCacheHits:
        if (fn != pcie::kPhysicalFunctionId)
            return util::permission_denied_error(
                "translation regs are PF-only");
        return node_cache_.hits();
      case reg::kStatNodeCacheMisses:
        if (fn != pcie::kPhysicalFunctionId)
            return util::permission_denied_error(
                "translation regs are PF-only");
        return node_cache_.misses();
      case reg::kWalkCoalesce:
        if (fn != pcie::kPhysicalFunctionId)
            return util::permission_denied_error(
                "translation regs are PF-only");
        return walk_coalescing_ ? coalesce_window_ : 0;
      case reg::kStatWalkCoalesced:
        if (fn != pcie::kPhysicalFunctionId)
            return util::permission_denied_error(
                "translation regs are PF-only");
        return metrics_.counter_value(h_walk_coalesced_);
      case reg::kStatWalkReplays:
        if (fn != pcie::kPhysicalFunctionId)
            return util::permission_denied_error(
                "translation regs are PF-only");
        return metrics_.counter_value(h_walk_replays_);
      // Containment block: quarantine state and misbehavior counters
      // are readable on the function's own page (the hypervisor reads
      // a VF's page directly when triaging); the knobs are PF-only.
      case reg::kQuarantineStatus:
        return c.quarantined ? std::uint64_t{1} : std::uint64_t{0};
      case reg::kQuarantineCause:
        return static_cast<std::uint64_t>(c.quarantine_cause);
      case reg::kStatMalformed: return c.stats.malformed;
      case reg::kStatDmaViolations: return c.stats.dma_violations;
      case reg::kStatRegViolations: return c.stats.reg_violations;
      case reg::kDmaWindowBase:
        if (fn != pcie::kPhysicalFunctionId)
            return util::permission_denied_error(
                "containment regs are PF-only");
        return dma_window_base_;
      case reg::kDmaWindowSize:
        if (fn != pcie::kPhysicalFunctionId)
            return util::permission_denied_error(
                "containment regs are PF-only");
        return dma_window_size_;
      case reg::kQuarantineThreshold:
        if (fn != pcie::kPhysicalFunctionId)
            return util::permission_denied_error(
                "containment regs are PF-only");
        return quarantine_threshold_;
      case reg::kQuarantineWindowNs:
        if (fn != pcie::kPhysicalFunctionId)
            return util::permission_denied_error(
                "containment regs are PF-only");
        return static_cast<std::uint64_t>(quarantine_window_);
      case reg::kFetchBatch:
        if (fn != pcie::kPhysicalFunctionId)
            return util::permission_denied_error(
                "batching regs are PF-only");
        return static_cast<std::uint64_t>(fetch_batch_);
      case reg::kCompletionBatch:
        if (fn != pcie::kPhysicalFunctionId)
            return util::permission_denied_error(
                "batching regs are PF-only");
        return completion_batch_ ? std::uint64_t{1} : std::uint64_t{0};
      // Telemetry directory: PF-only (per-VF counters of *other*
      // functions are exactly the cross-VF side channel the rest of
      // the register file avoids). Invalid selections read all-ones,
      // the master-abort idiom, so a telemetry poller never faults.
      case reg::kTelemetrySelect:
        if (fn != pcie::kPhysicalFunctionId)
            return util::permission_denied_error(
                "telemetry regs are PF-only");
        return static_cast<std::uint64_t>(telemetry_select_);
      case reg::kTelemetryCount:
        if (fn != pcie::kPhysicalFunctionId)
            return util::permission_denied_error(
                "telemetry regs are PF-only");
        return static_cast<std::uint64_t>(kTelemetryCounters.size());
      case reg::kTelemetryValue: {
        if (fn != pcie::kPhysicalFunctionId)
            return util::permission_denied_error(
                "telemetry regs are PF-only");
        const std::uint32_t sel_fn = telemetry_select_ & 0xffff;
        const std::uint32_t index = telemetry_select_ >> 16;
        if (sel_fn >= contexts_.size() ||
            index >= kTelemetryCounters.size())
            return ~std::uint64_t{0};
        return contexts_[sel_fn].stats.*(kTelemetryCounters[index].field);
      }
      case reg::kTelemetryName0:
      case reg::kTelemetryName1:
      case reg::kTelemetryName2: {
        if (fn != pcie::kPhysicalFunctionId)
            return util::permission_denied_error(
                "telemetry regs are PF-only");
        const std::uint32_t index = telemetry_select_ >> 16;
        if (index >= kTelemetryCounters.size())
            return ~std::uint64_t{0};
        const std::size_t chunk = (offset - reg::kTelemetryName0) / 8;
        return pack_telemetry_name(kTelemetryCounters[index].name,
                                   chunk * 8);
      }
      // Replication block: PF-only. With no replica set attached the
      // whole block reads all-ones (master-abort idiom), so a poller
      // can feature-detect replication without faulting.
      case reg::kReplQuorum:
      case reg::kReplReadTimeoutNs:
      case reg::kReplBackendSelect:
      case reg::kReplBackendState:
      case reg::kReplBackendDirty:
      case reg::kReplBackendTimeouts:
      case reg::kReplBackendErrors:
      case reg::kReplResyncDone:
      case reg::kReplFailovers: {
        if (fn != pcie::kPhysicalFunctionId)
            return util::permission_denied_error(
                "replication regs are PF-only");
        if (replicas_ == nullptr)
            return ~std::uint64_t{0};
        if (offset == reg::kReplQuorum)
            return replicas_->config().quorum;
        if (offset == reg::kReplReadTimeoutNs)
            return static_cast<std::uint64_t>(
                replicas_->config().read_timeout);
        if (offset == reg::kReplBackendSelect)
            return repl_backend_select_;
        if (offset == reg::kReplFailovers)
            return replicas_->failovers();
        const std::size_t backend = repl_backend_select_;
        if (backend >= replicas_->backend_count())
            return ~std::uint64_t{0};
        switch (offset) {
          case reg::kReplBackendState:
            return static_cast<std::uint64_t>(
                replicas_->backend_state(backend));
          case reg::kReplBackendDirty:
            return replicas_->dirty_blocks(backend);
          case reg::kReplBackendTimeouts:
            return replicas_->backend_timeouts(backend);
          case reg::kReplBackendErrors:
            return replicas_->backend_errors(backend);
          default:
            return replicas_->resync_copied(backend);
        }
      }
      // Integrity block: PF-only except the per-fn error stat. With no
      // map attached the block reads all-ones (master-abort idiom), so
      // software feature-detects checksums without faulting.
      case reg::kStatChecksumErrors:
        return c.stats.checksum_errors;
      case reg::kIntegrityCtrl:
      case reg::kIntegrityRereadLimit:
      case reg::kIntegrityMismatches:
      case reg::kIntegrityRepairs:
      case reg::kScrubBatch:
      case reg::kScrubIntervalNs:
      case reg::kScrubStatus:
      case reg::kScrubProgress:
      case reg::kScrubErrors: {
        if (fn != pcie::kPhysicalFunctionId)
            return util::permission_denied_error(
                "integrity regs are PF-only");
        if (integrity_ == nullptr)
            return ~std::uint64_t{0};
        switch (offset) {
          case reg::kIntegrityCtrl:
            return integrity_enabled_ ? std::uint64_t{1} : std::uint64_t{0};
          case reg::kIntegrityRereadLimit:
            return static_cast<std::uint64_t>(integrity_reread_limit_);
          case reg::kIntegrityMismatches:
            return integrity_mismatches_;
          case reg::kIntegrityRepairs:
            return integrity_repairs_;
          case reg::kScrubBatch:
            return scrub_batch_;
          case reg::kScrubIntervalNs:
            return static_cast<std::uint64_t>(scrub_interval_);
          case reg::kScrubStatus:
            return scrub_running_ ? std::uint64_t{1} : std::uint64_t{0};
          case reg::kScrubProgress:
            return scrub_progress_;
          default:
            return scrub_errors_;
        }
      }
      // Observability block: PF-only. Window registers read all-ones
      // while windowed accounting is off (feature-detect idiom); the
      // breach/postmortem directories stay readable so forensics
      // survive turning the plane back off.
      case reg::kObsWindowNs:
      case reg::kSloMaxP99Ns:
      case reg::kSloMaxErrorPpm:
      case reg::kSloSelect:
      case reg::kSloBreachCount:
      case reg::kSloBreachSelect:
      case reg::kFlightCtrl:
      case reg::kFlightDepth:
      case reg::kPostmortemCount:
      case reg::kPostmortemSelect:
      case reg::kSamplerIntervalNs:
      case reg::kSamplerCount: {
        if (fn != pcie::kPhysicalFunctionId)
            return util::permission_denied_error(
                "observability regs are PF-only");
        switch (offset) {
          case reg::kObsWindowNs:
            return static_cast<std::uint64_t>(obs_window_ns_);
          case reg::kSloMaxP99Ns:
            return slo_max_p99_ns_;
          case reg::kSloMaxErrorPpm:
            return slo_max_error_ppm_;
          case reg::kSloSelect:
            return slo_select_;
          case reg::kSloBreachCount:
            return slo_.breaches().size();
          case reg::kSloBreachSelect:
            return slo_breach_select_;
          case reg::kFlightCtrl:
            return flight_.enabled() ? std::uint64_t{1} : std::uint64_t{0};
          case reg::kFlightDepth:
            return flight_depth_;
          case reg::kPostmortemCount:
            return flight_.postmortems().size();
          case reg::kPostmortemSelect:
            return postmortem_select_;
          case reg::kSamplerIntervalNs:
            return static_cast<std::uint64_t>(sampler_interval_);
          default:
            return sampler_.size();
        }
      }
      case reg::kSloP50:
      case reg::kSloP99:
      case reg::kSloP999:
      case reg::kSloWindowOps:
      case reg::kSloWindowErrors:
      case reg::kSloWindowStart: {
        if (fn != pcie::kPhysicalFunctionId)
            return util::permission_denied_error(
                "observability regs are PF-only");
        const std::uint32_t sel_fn = slo_select_ & 0xffff;
        const std::uint32_t stage = (slo_select_ >> 16) & 0xf;
        // The closed window is only meaningful while accounting runs.
        const obs::LogHistogram *window =
            obs_window_ns_ == 0
                ? nullptr
                : slo_.window(static_cast<std::uint16_t>(sel_fn), stage);
        if (window == nullptr || sel_fn >= contexts_.size())
            return ~std::uint64_t{0};
        switch (offset) {
          case reg::kSloP50:
            return static_cast<std::uint64_t>(
                std::llround(window->percentile(50.0)));
          case reg::kSloP99:
            return static_cast<std::uint64_t>(
                std::llround(window->percentile(99.0)));
          case reg::kSloP999:
            return static_cast<std::uint64_t>(
                std::llround(window->percentile(99.9)));
          case reg::kSloWindowOps:
            return slo_.window_ops(static_cast<std::uint16_t>(sel_fn));
          case reg::kSloWindowErrors:
            return slo_.window_errors(static_cast<std::uint16_t>(sel_fn));
          default:
            return slo_.window_start(static_cast<std::uint16_t>(sel_fn));
        }
      }
      case reg::kSloBreachInfo:
      case reg::kSloBreachObserved:
      case reg::kSloBreachThreshold:
      case reg::kSloBreachWindow: {
        if (fn != pcie::kPhysicalFunctionId)
            return util::permission_denied_error(
                "observability regs are PF-only");
        const auto &breaches = slo_.breaches();
        if (slo_breach_select_ >= breaches.size())
            return ~std::uint64_t{0};
        const obs::SloBreach &b = breaches[slo_breach_select_];
        switch (offset) {
          case reg::kSloBreachInfo:
            return static_cast<std::uint64_t>(b.fn) |
                   (static_cast<std::uint64_t>(b.metric) << 16);
          case reg::kSloBreachObserved:
            return b.observed;
          case reg::kSloBreachThreshold:
            return b.threshold;
          default:
            return b.window_start;
        }
      }
      case reg::kPostmortemInfo:
      case reg::kPostmortemTime:
      case reg::kPostmortemEventTime:
      case reg::kPostmortemEventTag:
      case reg::kPostmortemEventVlba:
      case reg::kPostmortemEventMeta: {
        if (fn != pcie::kPhysicalFunctionId)
            return util::permission_denied_error(
                "observability regs are PF-only");
        const auto &postmortems = flight_.postmortems();
        const std::uint32_t pm_index = postmortem_select_ & 0xffff;
        const std::uint32_t ev_index = postmortem_select_ >> 16;
        if (pm_index >= postmortems.size())
            return ~std::uint64_t{0};
        const obs::Postmortem &pm = postmortems[pm_index];
        if (offset == reg::kPostmortemInfo)
            return static_cast<std::uint64_t>(pm.fn) |
                   (static_cast<std::uint64_t>(pm.reason) << 16) |
                   ((pm.detail & 0xff) << 24) |
                   (static_cast<std::uint64_t>(pm.events.size()) << 32);
        if (offset == reg::kPostmortemTime)
            return pm.at;
        if (ev_index >= pm.events.size())
            return ~std::uint64_t{0};
        const obs::FlightEvent &e = pm.events[ev_index];
        switch (offset) {
          case reg::kPostmortemEventTime:
            return e.at;
          case reg::kPostmortemEventTag:
            return e.tag;
          case reg::kPostmortemEventVlba:
            return e.vlba;
          default:
            return static_cast<std::uint64_t>(e.type) |
                   (static_cast<std::uint64_t>(e.aux) << 8);
        }
      }
      default:
        return util::invalid_argument_error("unknown register read at " +
                                            std::to_string(offset));
    }
}

util::Status
Controller::mmio_write(pcie::FunctionId fn, std::uint64_t offset,
                       std::uint64_t value, unsigned size)
{
    (void)size;
    if (fn >= contexts_.size())
        return util::out_of_range_error("no such function");
    FunctionContext &c = ctx(fn);
    const bool is_pf = fn == pcie::kPhysicalFunctionId;
    if (!is_pf && pf_only_write(offset)) {
        // One choke point for the whole privileged surface: hostile
        // guests probe it, so the rejection is also counted where the
        // hypervisor can see it.
        ++c.stats.reg_violations;
        metrics_.bump("reg_violations");
        return util::permission_denied_error("register is PF-only");
    }

    // Per-queue doorbell aperture: qid q rings at kQpDoorbell0 + 8*q
    // (pair 0 also answers at the legacy kDoorbell alias below).
    if (offset >= reg::kQpDoorbell0 &&
        offset < reg::kQpDoorbell0 + 8ull * kMaxQueuePairs)
        return doorbell_write(
            fn,
            static_cast<std::uint32_t>((offset - reg::kQpDoorbell0) / 8));

    switch (offset) {
      case reg::kExtentTreeRoot:
        // Hypervisor-owned: a guest must never repoint its own tree at
        // a self-crafted mapping. Live VF root updates go through the
        // PF mgmt block (kSetExtentRoot), which also flushes the VF's
        // stale BTLB entries.
        c.extent_tree_root = value;
        return util::Status::ok();
      case reg::kWatchdogNs:
        // The register field is kWatchdogNsBits wide: a guest writing
        // an absurd timeout gets it truncated like hardware would,
        // instead of arming a timer centuries out (which would let one
        // function fast-forward — or, by wrapping the 64-bit clock,
        // livelock — the device's shared timebase).
        c.watchdog_ns =
            value & ((std::uint64_t{1} << reg::kWatchdogNsBits) - 1);
        arm_watchdog(fn);
        return util::Status::ok();
      case reg::kFnReset:
        // A quarantined guest must not reset itself back to life; only
        // the PF's kReleaseQuarantine performs the releasing FLR.
        if (value != 0 && !c.quarantined)
            function_level_reset(fn);
        return util::Status::ok();
      case reg::kCmdRingBase:
        // Legacy alias for pair 0's SQ; a write to an inactive fn
        // (no pair 0 yet) is a dropped posted write, matching the
        // wipe kCreateVf performs anyway.
        if (Qp *q = qp0(c); q != nullptr) {
            q->sq_base = value;
            q->sq.reset();
            q->sq_shadow_valid = false;
        }
        return util::Status::ok();
      case reg::kCompRingBase:
        if (Qp *q = qp0(c); q != nullptr) {
            q->cq_base = value;
            q->cq.reset();
        }
        return util::Status::ok();
      case reg::kDoorbell:
        return doorbell_write(fn, 0);
      case reg::kRewalkTree:
        if (value != 0 && !c.quarantined)
            handle_rewalk(fn);
        return util::Status::ok();
      case reg::kInterruptVector:
        if (Qp *q = qp0(c); q != nullptr)
            q->irq_vector = static_cast<std::uint32_t>(value);
        return util::Status::ok();
      case reg::kQpSelect:
        c.qp_select = static_cast<std::uint32_t>(value);
        return util::Status::ok();
      case reg::kQpSqBase:
        // Latched for the next kCreate; applied live (with a ring
        // re-attach) when the selected pair already exists.
        c.qp_sq_latch = value;
        if (Qp *q = qp(c, c.qp_select); q != nullptr) {
            q->sq_base = value;
            q->sq.reset();
            q->sq_shadow_valid = false;
        }
        return util::Status::ok();
      case reg::kQpCqBase:
        c.qp_cq_latch = value;
        if (Qp *q = qp(c, c.qp_select); q != nullptr) {
            q->cq_base = value;
            q->cq.reset();
        }
        return util::Status::ok();
      case reg::kQpIrqVector:
        c.qp_irq_latch = static_cast<std::uint32_t>(value);
        if (Qp *q = qp(c, c.qp_select); q != nullptr)
            q->irq_vector = static_cast<std::uint32_t>(value);
        return util::Status::ok();
      case reg::kQpCommand:
        c.qp_status =
            qp_admin_execute(fn, static_cast<QpCommand>(value));
        return util::Status::ok();
      case reg::kArbMode:
        arb_mode_ = value != 0 ? ArbMode::kDwrr : ArbMode::kLegacyWrr;
        // A mode switch restarts arbitration accounting from scratch:
        // no turn in progress, no banked credit or deficit anywhere.
        rr_credit_ = 0;
        dwrr_turn_live_ = false;
        for (FunctionContext &f : contexts_)
            f.arb_deficit = 0;
        return util::Status::ok();
      case reg::kArbQuantum:
        // Quantum 0 would make DWRR turns grant nothing; clamp to 1.
        arb_quantum_ = std::max<std::uint32_t>(
            1, static_cast<std::uint32_t>(value));
        return util::Status::ok();
      case reg::kMgmtQpQuota:
        mgmt_qp_quota_ = static_cast<std::uint32_t>(value);
        return util::Status::ok();
      case reg::kMgmtRateBytesPerSec:
        mgmt_rate_bps_ = value;
        return util::Status::ok();
      case reg::kMgmtRateBurstBytes:
        mgmt_rate_burst_ = value;
        return util::Status::ok();
      case reg::kMgmtVfId:
        mgmt_vf_id_ = static_cast<std::uint32_t>(value);
        return util::Status::ok();
      case reg::kMgmtExtentRoot:
        mgmt_extent_root_ = value;
        return util::Status::ok();
      case reg::kMgmtDeviceSize:
        mgmt_device_size_ = value;
        return util::Status::ok();
      case reg::kMgmtQosWeight:
        mgmt_qos_weight_ = static_cast<std::uint32_t>(value);
        return util::Status::ok();
      case reg::kMgmtCommand:
        mgmt_status_ =
            mgmt_execute(static_cast<MgmtCommand>(value));
        return util::Status::ok();
      case reg::kBtlbGeometry: {
        const auto sets = static_cast<std::uint32_t>(value & 0xffff);
        const auto ways =
            static_cast<std::uint32_t>((value >> 16) & 0xffff);
        const auto shift =
            static_cast<std::uint32_t>((value >> 32) & 0xff);
        BtlbConfig geometry;
        geometry.sets = sets;
        geometry.entries = sets <= 1 ? ways : sets * ways;
        geometry.range_shift = shift;
        btlb_.configure(geometry); // flushes every entry
        metrics_.bump("btlb_reconfigs");
        return util::Status::ok();
      }
      case reg::kNodeCacheBytes:
        node_cache_.set_budget(value);
        return util::Status::ok();
      case reg::kWalkCoalesce:
        walk_coalescing_ = value != 0;
        coalesce_window_ = static_cast<std::uint32_t>(value);
        return util::Status::ok();
      case reg::kDmaWindowBase:
        dma_window_base_ = value;
        return util::Status::ok();
      case reg::kDmaWindowSize:
        dma_window_size_ = value;
        return util::Status::ok();
      case reg::kQuarantineThreshold:
        quarantine_threshold_ = static_cast<std::uint32_t>(value);
        return util::Status::ok();
      case reg::kQuarantineWindowNs:
        quarantine_window_ = static_cast<sim::Duration>(value);
        return util::Status::ok();
      case reg::kFetchBatch:
        fetch_batch_ = static_cast<std::uint32_t>(value);
        return util::Status::ok();
      case reg::kCompletionBatch:
        completion_batch_ = value != 0;
        return util::Status::ok();
      case reg::kTelemetrySelect:
        telemetry_select_ = static_cast<std::uint32_t>(value);
        return util::Status::ok();
      // Replication knobs: silently dropped when no set is attached
      // (the matching reads return all-ones, so software knows).
      case reg::kReplQuorum:
        if (replicas_ != nullptr)
            replicas_->set_quorum(static_cast<std::uint32_t>(value));
        return util::Status::ok();
      case reg::kReplReadTimeoutNs:
        if (replicas_ != nullptr)
            replicas_->set_read_timeout(
                static_cast<sim::Duration>(value));
        return util::Status::ok();
      case reg::kReplBackendSelect:
        repl_backend_select_ = static_cast<std::uint32_t>(value);
        return util::Status::ok();
      // Integrity knobs: silently dropped with no map attached (the
      // matching reads return all-ones, so software knows).
      case reg::kIntegrityCtrl:
        if (integrity_ != nullptr)
            integrity_enabled_ = (value & 1) != 0;
        return util::Status::ok();
      case reg::kIntegrityRereadLimit:
        if (integrity_ != nullptr)
            integrity_reread_limit_ = static_cast<std::uint32_t>(value);
        return util::Status::ok();
      case reg::kScrubBatch:
        // A zero batch would make scrub ticks spin forever; clamp.
        if (integrity_ != nullptr)
            scrub_batch_ = std::max<std::uint64_t>(1, value);
        return util::Status::ok();
      case reg::kScrubIntervalNs:
        if (integrity_ != nullptr)
            scrub_interval_ = static_cast<sim::Duration>(value);
        return util::Status::ok();
      // Observability knobs (PF-only, policed by pf_only_write).
      case reg::kObsWindowNs: {
        obs_window_ns_ = static_cast<sim::Duration>(value);
        const std::uint64_t epoch = ++obs_window_epoch_;
        if (obs_window_ns_ != 0) {
            // Accounting survives pacing changes; only a fresh enable
            // starts both windows empty at the current time.
            if (!slo_.enabled())
                slo_.enable(num_functions(), simulator_.now());
            // Weak: an always-on rotation timer must never keep an
            // otherwise-drained simulation spinning.
            simulator_.schedule_weak_in(
                std::max<sim::Duration>(1, obs_window_ns_),
                [this, epoch]() { obs_window_tick(epoch); });
        }
        return util::Status::ok();
      }
      case reg::kSloMaxP99Ns:
        slo_max_p99_ns_ = value;
        return util::Status::ok();
      case reg::kSloMaxErrorPpm:
        slo_max_error_ppm_ = value;
        return util::Status::ok();
      case reg::kSloSelect:
        slo_select_ = static_cast<std::uint32_t>(value);
        return util::Status::ok();
      case reg::kSloBreachSelect:
        slo_breach_select_ = static_cast<std::uint32_t>(value);
        return util::Status::ok();
      case reg::kFlightCtrl:
        if ((value & 1) != 0)
            flight_.enable(num_functions(),
                           static_cast<std::size_t>(flight_depth_));
        else
            flight_.disable();
        return util::Status::ok();
      case reg::kFlightDepth:
        if (value != 0)
            flight_depth_ = value;
        return util::Status::ok();
      case reg::kPostmortemSelect:
        postmortem_select_ = static_cast<std::uint32_t>(value);
        return util::Status::ok();
      case reg::kSamplerIntervalNs: {
        sampler_interval_ = static_cast<sim::Duration>(value);
        const std::uint64_t epoch = ++sampler_epoch_;
        if (sampler_interval_ != 0) {
            // Baseline sample at arm time, then one per interval.
            sampler_.sample(simulator_.now());
            simulator_.schedule_weak_in(
                std::max<sim::Duration>(1, sampler_interval_),
                [this, epoch]() { sampler_tick(epoch); });
        }
        return util::Status::ok();
      }
      default:
        return util::invalid_argument_error("unknown register write at " +
                                            std::to_string(offset));
    }
}

bool
Controller::pf_only_write(std::uint64_t offset)
{
    switch (offset) {
      case reg::kExtentTreeRoot:
      case reg::kMgmtVfId:
      case reg::kMgmtExtentRoot:
      case reg::kMgmtDeviceSize:
      case reg::kMgmtQosWeight:
      case reg::kMgmtCommand:
      case reg::kBtlbGeometry:
      case reg::kNodeCacheBytes:
      case reg::kWalkCoalesce:
      case reg::kDmaWindowBase:
      case reg::kDmaWindowSize:
      case reg::kQuarantineThreshold:
      case reg::kQuarantineWindowNs:
      case reg::kTelemetrySelect:
      case reg::kFetchBatch:
      case reg::kCompletionBatch:
      case reg::kArbMode:
      case reg::kArbQuantum:
      case reg::kMgmtQpQuota:
      case reg::kMgmtRateBytesPerSec:
      case reg::kMgmtRateBurstBytes:
      case reg::kReplQuorum:
      case reg::kReplReadTimeoutNs:
      case reg::kReplBackendSelect:
      case reg::kIntegrityCtrl:
      case reg::kIntegrityRereadLimit:
      case reg::kScrubBatch:
      case reg::kScrubIntervalNs:
      case reg::kObsWindowNs:
      case reg::kSloMaxP99Ns:
      case reg::kSloMaxErrorPpm:
      case reg::kSloSelect:
      case reg::kSloBreachSelect:
      case reg::kFlightCtrl:
      case reg::kFlightDepth:
      case reg::kPostmortemSelect:
      case reg::kSamplerIntervalNs:
        return true;
      default:
        return false;
    }
}

std::uint32_t
Controller::mgmt_execute(MgmtCommand command)
{
    const auto ok = static_cast<std::uint32_t>(MgmtStatus::kOk);
    const auto err = static_cast<std::uint32_t>(MgmtStatus::kError);
    switch (command) {
      case MgmtCommand::kCreateVf: {
        if (mgmt_vf_id_ == 0 || mgmt_vf_id_ > config_.max_vfs)
            return err;
        FunctionContext &c = ctx(static_cast<pcie::FunctionId>(mgmt_vf_id_));
        if (c.active)
            return err;
        c = FunctionContext{};
        c.active = true;
        c.extent_tree_root = mgmt_extent_root_;
        c.device_size_blocks = mgmt_device_size_;
        const auto vf = static_cast<pcie::FunctionId>(mgmt_vf_id_);
        assign_function_lane(c, vf);
        active_vfs_.insert(std::lower_bound(active_vfs_.begin(),
                                            active_vfs_.end(), vf),
                           vf);
        // A fresh VF never inherits the previous occupant's windows.
        dma_windows_.clear(vf);
        create_qp0(c);
        metrics_.bump("vfs_created");
        return ok;
      }
      case MgmtCommand::kDeleteVf: {
        if (mgmt_vf_id_ == 0 || mgmt_vf_id_ > config_.max_vfs)
            return err;
        const auto fn = static_cast<pcie::FunctionId>(mgmt_vf_id_);
        FunctionContext &c = ctx(fn);
        if (!c.active)
            return err;
        // Refuse to delete a non-quiescent VF: beyond its own queues,
        // ops may sit in the shared vLBA/pLBA queues, in the transfer
        // stage (tracked by `pending`), or in a doorbell fetch that
        // has not landed yet — deleting then would strand commands
        // with no completion.
        if (!function_quiescent(fn))
            return err;
        retire_function_lane(c); // already-scheduled events drain
        std::erase(active_vfs_, fn);
        for (const QpRef &qref : c.qps)
            qp_arena_.release(qref); // pair 0 and any extras
        if (c.bucket.limited())
            --rate_limited_fns_;
        arb_eligible_.assign(fn, false);
        c = FunctionContext{};
        btlb_.flush_function(fn);
        node_cache_.invalidate_function(fn);
        dma_windows_.clear(fn);
        metrics_.bump("vfs_deleted");
        return ok;
      }
      case MgmtCommand::kFlushBtlb:
        // The PF flush covers every cached translation product: BTLB
        // extents and node images alike (dedup/defrag moved blocks).
        btlb_.flush();
        node_cache_.flush();
        metrics_.bump("btlb_pf_flushes");
        return ok;
      case MgmtCommand::kFailMiss: {
        if (mgmt_vf_id_ == 0 || mgmt_vf_id_ > config_.max_vfs)
            return err;
        const auto fn = static_cast<pcie::FunctionId>(mgmt_vf_id_);
        if (!ctx(fn).active)
            return err;
        fail_stalled(fn);
        return ok;
      }
      case MgmtCommand::kSetQosWeight: {
        if (mgmt_vf_id_ == 0 || mgmt_vf_id_ > config_.max_vfs ||
            mgmt_qos_weight_ == 0)
            return err;
        const auto fn = static_cast<pcie::FunctionId>(mgmt_vf_id_);
        if (!ctx(fn).active)
            return err;
        ctx(fn).qos_weight = mgmt_qos_weight_;
        metrics_.bump("qos_updates");
        return ok;
      }
      case MgmtCommand::kSetExtentRoot: {
        if (mgmt_vf_id_ == 0 || mgmt_vf_id_ > config_.max_vfs)
            return err;
        const auto fn = static_cast<pcie::FunctionId>(mgmt_vf_id_);
        FunctionContext &c = ctx(fn);
        if (!c.active)
            return err;
        c.extent_tree_root = mgmt_extent_root_;
        // Cached translations and node images may derive from the old
        // tree, and an in-flight walk would deliver a stale result:
        // the generation bump makes such walks replay on resolution.
        ++c.tree_generation;
        btlb_.flush_function(fn);
        node_cache_.invalidate_function(fn);
        metrics_.bump("extent_root_updates");
        return ok;
      }
      case MgmtCommand::kAddDmaWindow: {
        if (mgmt_vf_id_ == 0 || mgmt_vf_id_ > config_.max_vfs)
            return err;
        const auto fn = static_cast<pcie::FunctionId>(mgmt_vf_id_);
        if (!ctx(fn).active)
            return err;
        if (!dma_windows_.add(fn, dma_window_base_, dma_window_size_)
                 .is_ok())
            return err;
        metrics_.bump("dma_windows_added");
        return ok;
      }
      case MgmtCommand::kClearDmaWindows: {
        if (mgmt_vf_id_ == 0 || mgmt_vf_id_ > config_.max_vfs)
            return err;
        const auto fn = static_cast<pcie::FunctionId>(mgmt_vf_id_);
        if (!ctx(fn).active)
            return err;
        dma_windows_.clear(fn);
        return ok;
      }
      case MgmtCommand::kReleaseQuarantine: {
        if (mgmt_vf_id_ == 0 || mgmt_vf_id_ > config_.max_vfs)
            return err;
        const auto fn = static_cast<pcie::FunctionId>(mgmt_vf_id_);
        FunctionContext &c = ctx(fn);
        if (!c.active || !c.quarantined)
            return err;
        release_quarantine(fn);
        return ok;
      }
      case MgmtCommand::kReplDemote: {
        if (replicas_ == nullptr ||
            repl_backend_select_ >= replicas_->backend_count())
            return err;
        replicas_->demote_backend(repl_backend_select_);
        metrics_.bump("repl_demotions_forced");
        return ok;
      }
      case MgmtCommand::kReplResync: {
        if (replicas_ == nullptr ||
            repl_backend_select_ >= replicas_->backend_count() ||
            replicas_->backend_crashed(repl_backend_select_))
            return err;
        tracer_.instant(obs::Stage::kResync, pcie::kPhysicalFunctionId,
                        simulator_.now());
        replicas_->start_resync(repl_backend_select_);
        metrics_.bump("repl_resyncs_started");
        return ok;
      }
      case MgmtCommand::kSetQpQuota: {
        if (mgmt_vf_id_ == 0 || mgmt_vf_id_ > config_.max_vfs ||
            mgmt_qp_quota_ == 0 || mgmt_qp_quota_ > kMaxQueuePairs)
            return err;
        const auto fn = static_cast<pcie::FunctionId>(mgmt_vf_id_);
        if (!ctx(fn).active)
            return err;
        // Lowering the quota below the live pair count only gates
        // future creates; existing pairs keep running until the
        // driver deletes them.
        ctx(fn).qp_quota = mgmt_qp_quota_;
        metrics_.bump("qp_quota_updates");
        return ok;
      }
      case MgmtCommand::kSetRateLimit: {
        if (mgmt_vf_id_ == 0 || mgmt_vf_id_ > config_.max_vfs)
            return err;
        const auto fn = static_cast<pcie::FunctionId>(mgmt_vf_id_);
        FunctionContext &c = ctx(fn);
        if (!c.active)
            return err;
        // A burst below one device block could never admit a grant;
        // clamp so a limited function always makes progress.
        std::uint64_t burst = mgmt_rate_burst_;
        if (mgmt_rate_bps_ != 0 && burst < kDeviceBlockSize)
            burst = kDeviceBlockSize;
        const bool was_limited = c.bucket.limited();
        c.bucket.configure(mgmt_rate_bps_, burst, simulator_.now());
        if (!was_limited && c.bucket.limited())
            ++rate_limited_fns_;
        else if (was_limited && !c.bucket.limited())
            --rate_limited_fns_;
        metrics_.bump("rate_limit_updates");
        return ok;
      }
      case MgmtCommand::kScrubStart:
        return scrub_start();
      case MgmtCommand::kScrubAbort:
        return scrub_abort();
      case MgmtCommand::kSetSlo: {
        if (mgmt_vf_id_ == 0 || mgmt_vf_id_ > config_.max_vfs)
            return err;
        const auto fn = static_cast<pcie::FunctionId>(mgmt_vf_id_);
        if (!ctx(fn).active)
            return err;
        // Thresholds are free to be staged before accounting starts;
        // they only bite at window rotation while kObsWindowNs != 0.
        if (!slo_.enabled())
            slo_.enable(num_functions(), simulator_.now());
        slo_.set_limits(fn, {slo_max_p99_ns_, slo_max_error_ppm_});
        metrics_.bump("slo_updates");
        return ok;
      }
      case MgmtCommand::kPostmortemClear:
        flight_.clear_postmortems();
        return ok;
      case MgmtCommand::kSloBreachClear:
        slo_.clear_breaches();
        return ok;
    }
    return err;
}

// --------------------------------------------------------------------
// Background integrity scrub
// --------------------------------------------------------------------

std::uint32_t
Controller::scrub_start()
{
    if (integrity_ == nullptr || scrub_running_)
        return static_cast<std::uint32_t>(MgmtStatus::kError);
    scrub_running_ = true;
    scrub_next_ = 0;
    scrub_progress_ = 0;
    scrub_errors_ = 0;
    const std::uint64_t epoch = ++scrub_epoch_;
    metrics_.bump("scrubs_started");
    tracer_.instant(obs::Stage::kScrub, pcie::kPhysicalFunctionId,
                    simulator_.now());
    simulator_.schedule_in(std::max<sim::Duration>(1, scrub_interval_),
                           [this, epoch]() { scrub_tick(epoch); });
    return static_cast<std::uint32_t>(MgmtStatus::kOk);
}

std::uint32_t
Controller::scrub_abort()
{
    if (!scrub_running_)
        return static_cast<std::uint32_t>(MgmtStatus::kError);
    scrub_running_ = false;
    ++scrub_epoch_; // scheduled ticks die on the epoch check
    metrics_.bump("scrubs_aborted");
    return static_cast<std::uint32_t>(MgmtStatus::kOk);
}

void
Controller::scrub_tick(std::uint64_t epoch)
{
    if (epoch != scrub_epoch_ || !scrub_running_ || integrity_ == nullptr)
        return;
    const sim::Time t_batch = simulator_.now();
    const std::uint64_t limit =
        std::min(integrity_->data_blocks(), scrub_next_ + scrub_batch_);
    while (scrub_next_ < limit) {
        scrub_block(scrub_next_);
        ++scrub_next_;
        ++scrub_progress_;
    }
    tracer_.span(obs::Stage::kScrub, pcie::kPhysicalFunctionId, t_batch,
                 simulator_.now(), scrub_next_);
    if (scrub_next_ >= integrity_->data_blocks()) {
        scrub_running_ = false;
        metrics_.bump("scrubs_completed");
        return;
    }
    // Rate limiting: the pause between batches is what keeps a scrub
    // from starving foreground I/O of media bandwidth.
    simulator_.schedule_in(std::max<sim::Duration>(1, scrub_interval_),
                           [this, epoch]() { scrub_tick(epoch); });
}

// --------------------------------------------------------------------
// Always-on telemetry plane timers and breach handling
// --------------------------------------------------------------------

void
Controller::obs_window_tick(std::uint64_t epoch)
{
    // A reprogrammed window length (or a disable) bumps the epoch, so
    // the stale tick dies here instead of rotating at the old pace.
    if (epoch != obs_window_epoch_ || obs_window_ns_ == 0)
        return;
    slo_.rotate(simulator_.now());
    simulator_.schedule_weak_in(std::max<sim::Duration>(1, obs_window_ns_),
                                [this, epoch]() { obs_window_tick(epoch); });
}

void
Controller::sampler_tick(std::uint64_t epoch)
{
    if (epoch != sampler_epoch_ || sampler_interval_ == 0)
        return;
    sampler_.sample(simulator_.now());
    simulator_.schedule_weak_in(
        std::max<sim::Duration>(1, sampler_interval_),
        [this, epoch]() { sampler_tick(epoch); });
}

void
Controller::on_slo_breach(const obs::SloBreach &breach)
{
    ++ctx(breach.fn).stats.slo_breaches;
    metrics_.bump("slo_breaches");
    // Rate limiting is structural: SloWatch evaluates only at window
    // rotation, so a function raises at most one event per metric per
    // window no matter how many ops violated the threshold inside it.
    tracer_.instant(obs::Stage::kSloBreach, breach.fn, simulator_.now(),
                    static_cast<std::uint64_t>(breach.metric),
                    breach.observed);
    NESC_LOG_WARN(
        "fn %u: SLO breach: %s observed %llu threshold %llu (window @%llu)",
        breach.fn, obs::slo_metric_name(breach.metric),
        static_cast<unsigned long long>(breach.observed),
        static_cast<unsigned long long>(breach.threshold),
        static_cast<unsigned long long>(breach.window_start));
}

void
Controller::scrub_block(std::uint64_t plba)
{
    if (!integrity_->covers(plba))
        return;
    std::vector<std::byte> buf(kDeviceBlockSize);
    if (replicas_ != nullptr) {
        // Verify every serving backend's copy independently: routing
        // would mask a single damaged replica until failover happened
        // to land on it. The first verified copy repairs the rest.
        std::vector<std::byte> good;
        std::vector<std::size_t> bad;
        for (std::size_t i = 0; i < replicas_->backend_count(); ++i) {
            if (!replicas_->scrub_read(i, plba, buf).is_ok())
                continue; // down/crashed/stale: resync covers it
            if (integrity_->verify(plba, buf)) {
                if (good.empty())
                    good = buf;
            } else {
                bad.push_back(i);
            }
        }
        if (bad.empty())
            return;
        integrity_mismatches_ += bad.size();
        metrics_.bump("checksum_mismatches", bad.size());
        if (good.empty()) {
            // Every reachable copy is damaged: nothing to repair from.
            ++scrub_errors_;
            metrics_.bump("scrub_uncorrectable");
            return;
        }
        for (std::size_t i : bad) {
            if (replicas_->repair_blocks(i, plba, good).is_ok()) {
                ++integrity_repairs_;
                metrics_.bump("checksum_repairs");
            } else {
                ++scrub_errors_;
                metrics_.bump("scrub_uncorrectable");
            }
        }
        return;
    }
    const std::uint64_t media_offset =
        plba * static_cast<std::uint64_t>(kDeviceBlockSize);
    if (!device_.read(media_offset, buf).is_ok()) {
        ++scrub_errors_;
        metrics_.bump("scrub_uncorrectable");
        return;
    }
    bool verified = integrity_->verify(plba, buf);
    if (verified)
        return;
    ++integrity_mismatches_;
    metrics_.bump("checksum_mismatches");
    for (std::uint32_t i = 0; i < integrity_reread_limit_ && !verified;
         ++i) {
        metrics_.bump("checksum_rereads");
        if (!device_.read(media_offset, buf).is_ok())
            continue;
        verified = integrity_->verify(plba, buf);
    }
    if (!verified) {
        // Single-device sets have no second copy; sticky damage is
        // detectable but not correctable here.
        ++scrub_errors_;
        metrics_.bump("scrub_uncorrectable");
    }
}

// --------------------------------------------------------------------
// Command fetch & arbitration
// --------------------------------------------------------------------

void
Controller::fetch_commands(pcie::FunctionId fn, std::uint32_t qid)
{
    FunctionContext &c = ctx(fn);
    Qp *q = qp(c, qid);
    if (q == nullptr)
        return; // the pair was deleted while the fetch was in flight
    q->fetch_in_progress = false;
    if (!c.active || c.quarantined)
        return;
    if (!q->sq) {
        auto ring = pcie::HostRing::attach(host_memory_, q->sq_base);
        if (!ring.is_ok()) {
            NESC_LOG_WARN("fn %u: doorbell with no command ring", fn);
            ++c.stats.ring_corruptions;
            metrics_.bump("ring_corruptions");
            note_validation_fault(fn, QuarantineCause::kRingCorrupt);
            return;
        }
        pcie::HostRing attached = std::move(ring).value();
        if (attached.record_size() != sizeof(CommandRecord) ||
            attached.capacity() == 0 ||
            attached.capacity() > kMaxRingCapacity) {
            NESC_LOG_WARN("fn %u: command ring shape rejected", fn);
            ++c.stats.ring_corruptions;
            metrics_.bump("ring_corruptions");
            note_validation_fault(fn, QuarantineCause::kRingCorrupt);
            return;
        }
        // The ring itself is a device-DMA target: a confined guest's
        // ring must sit inside its windows like any other buffer.
        if (!dma_
                 .check_window(fn, attached.base(),
                               pcie::HostRing::footprint(
                                   attached.capacity(),
                                   attached.record_size()))
                 .is_ok())
            return; // the violation hook has quarantined the fn
        q->sq = std::move(attached);
        q->sq_shadow_valid = false;
    }

    // Header sanity plus shadow-counter cross-check before trusting a
    // single record: the header lives in guest-writable memory, so it
    // is evidence of driver intent, never authority over device state.
    if (util::Status ring_ok = validate_cmd_ring(*q); !ring_ok.is_ok()) {
        NESC_LOG_WARN("fn %u: command ring rejected: %s", fn,
                      ring_ok.message().c_str());
        ++c.stats.ring_corruptions;
        metrics_.bump("ring_corruptions");
        note_validation_fault(fn, QuarantineCause::kRingCorrupt);
        return;
    }

    // Drain the ring; descriptor DMA is booked per record. With
    // kFetchBatch set the drain caps at that many descriptors and the
    // engine reschedules itself, so one hostile or merely deep ring
    // never monopolizes a fetch event.
    const std::uint32_t batch = fetch_batch_;
    std::array<std::byte, sizeof(CommandRecord)> rec_buf;
    std::uint64_t fetched = 0;
    for (;;) {
        if (batch != 0 && fetched >= batch) {
            // Batch spent: continue the drain in a fresh event. A
            // doorbell landing meanwhile merges into the continuation.
            q->fetch_in_progress = true;
            simulator_.schedule_in_lane(
                c.lane, config_.doorbell_latency,
                [this, fn, qid]() { fetch_commands(fn, qid); });
            break;
        }
        auto popped = q->sq->pop(rec_buf);
        if (!popped.is_ok()) {
            // The header went bad between records (torn mid-drain).
            ++c.stats.ring_corruptions;
            metrics_.bump("ring_corruptions");
            note_validation_fault(fn, QuarantineCause::kRingCorrupt);
            break;
        }
        if (!popped.value())
            break;
        ++q->sq_shadow_head; // mirror our own consumer advance
        dma_.book(sizeof(CommandRecord));
        CommandRecord rec;
        std::memcpy(&rec, rec_buf.data(), sizeof(rec));
        ++fetched;
        ++c.stats.commands;
        ++q->stats.commands;
        tracer_.instant(obs::Stage::kCmdFetch, fn, simulator_.now(),
                        rec.tag, rec.nblocks);
        flight_.record(fn, obs::FlightEventType::kFetch, simulator_.now(),
                       static_cast<std::uint32_t>(rec.tag), rec.vlba,
                       rec.opcode);

        const auto q16 = static_cast<std::uint16_t>(qid);
        if (util::Status valid = validate_command(c, rec);
            !valid.is_ok()) {
            ++c.stats.malformed;
            metrics_.bump("malformed_commands");
            tracer_.instant(obs::Stage::kValidateFail, fn,
                            simulator_.now(), rec.tag);
            // Name the rejected descriptor in the flight ring so a
            // postmortem identifies the faulting command by tag.
            flight_.record(fn, obs::FlightEventType::kFault,
                           simulator_.now(),
                           static_cast<std::uint32_t>(rec.tag), rec.vlba,
                           static_cast<std::uint32_t>(
                               CompletionStatus::kMalformed));
            BlockOp reject{fn, static_cast<Opcode>(rec.opcode), 0, 0,
                           rec.tag, q16};
            reject.cmd = open_command(c, rec.tag, 1, 0, q16);
            complete_block(reject, CompletionStatus::kMalformed);
            note_validation_fault(fn, QuarantineCause::kMalformedStorm);
            if (c.quarantined)
                break; // the fault storm tipped over mid-drain
            continue;
        }

        const auto opcode = static_cast<Opcode>(rec.opcode);
        if (opcode == Opcode::kFlush) {
            // Durability barrier: the in-memory media model is always
            // durable, so a flush completes as soon as it is seen.
            BlockOp flush{fn, opcode, 0, 0, rec.tag, q16};
            flush.cmd = open_command(c, rec.tag, 1, 0, q16);
            complete_block(flush, CompletionStatus::kOk);
            continue;
        }
        if (rec.vlba >= c.device_size_blocks) {
            // Entirely out of range: reject at fetch instead of
            // expanding nblocks block ops that would each bounce off
            // the same bound in translation.
            BlockOp oor{fn, opcode, 0, 0, rec.tag, q16};
            oor.cmd = open_command(c, rec.tag, 1, 0, q16);
            complete_block(oor, CompletionStatus::kOutOfRange);
            continue;
        }
        // Check the data buffer against the DMA windows now, so a
        // confined guest pointing a descriptor out of its sandbox gets
        // a precise kDmaFault (then quarantine) before the device
        // touches anything.
        const std::uint64_t buffer_len =
            static_cast<std::uint64_t>(rec.nblocks) * kDeviceBlockSize;
        if (!dma_windows_.check(fn, rec.host_buffer, buffer_len)
                 .is_ok()) {
            ++c.stats.dma_violations;
            metrics_.bump("dma_violations");
            flight_.record(fn, obs::FlightEventType::kFault,
                           simulator_.now(),
                           static_cast<std::uint32_t>(rec.tag), rec.vlba,
                           static_cast<std::uint32_t>(
                               CompletionStatus::kDmaFault));
            BlockOp faulted{fn, opcode, 0, 0, rec.tag, q16};
            faulted.cmd = open_command(c, rec.tag, 1, 0, q16);
            complete_block(faulted, CompletionStatus::kDmaFault);
            quarantine(fn, QuarantineCause::kDmaViolation);
            break;
        }

        // Split into 1 KiB device-block operations (paper §IV.C).
        const CmdRef cmd = open_command(c, rec.tag, rec.nblocks,
                                        simulator_.now(), q16);
        for (std::uint32_t b = 0; b < rec.nblocks; ++b) {
            BlockOp op{fn, opcode, rec.vlba + b,
                       rec.host_buffer +
                           static_cast<pcie::HostAddr>(b) *
                               kDeviceBlockSize,
                       rec.tag, q16};
            op.cmd = cmd;
            op.t_queued = simulator_.now();
            q->staging.push_back(op);
            ++c.queued_ops;
        }
    }
    metrics_.add(h_commands_fetched_, fetched);
    if (c.quarantined) {
        pump(); // other functions' work continues; this one is sealed
        return;
    }
    arm_watchdog(fn);
    if (q->doorbell_rearm && !q->fetch_in_progress) {
        q->doorbell_rearm = false;
        q->fetch_in_progress = true;
        simulator_.schedule_in_lane(
            c.lane, config_.doorbell_latency,
            [this, fn, qid]() { fetch_commands(fn, qid); });
    }
    update_arb_eligibility(fn);
    pump();
}

// --------------------------------------------------------------------
// Untrusted-guest containment
// --------------------------------------------------------------------

util::Status
Controller::validate_cmd_ring(Qp &q)
{
    NESC_ASSIGN_OR_RETURN(auto header, q.sq->load_header());
    if (!q.sq_shadow_valid) {
        // First sight of this ring: adopt its counters as the baseline.
        q.sq_shadow_head = header.head;
        q.sq_shadow_tail = header.tail;
        q.sq_shadow_valid = true;
    }
    // head is the device's counter; the producer never writes it.
    if (header.head != q.sq_shadow_head)
        return util::data_loss_error("ring consumer counter rewritten");
    // tail may only advance. With free-running 32-bit counters a
    // backward step shows up as a wrapping advance in the top half of
    // the range, which no real producer can reach between doorbells.
    const std::uint32_t advance = header.tail - q.sq_shadow_tail;
    if (advance > 0x7fffffffu)
        return util::data_loss_error("ring producer counter regressed");
    q.sq_shadow_tail = header.tail;
    return util::Status::ok();
}

util::Status
Controller::validate_command(const FunctionContext &c,
                             const CommandRecord &rec) const
{
    const auto opcode = static_cast<Opcode>(rec.opcode);
    if (opcode != Opcode::kRead && opcode != Opcode::kWrite &&
        opcode != Opcode::kFlush)
        return util::invalid_argument_error("unknown opcode");
    if (opcode == Opcode::kFlush)
        return util::Status::ok(); // carries no range or buffer
    if (rec.nblocks == 0)
        return util::invalid_argument_error("zero-length command");
    if (rec.nblocks > config_.max_command_blocks)
        return util::invalid_argument_error("nblocks beyond device limit");
    if (rec.vlba + rec.nblocks < rec.vlba)
        return util::invalid_argument_error("vLBA range wraps");
    if (rec.host_buffer == pcie::kNullHostAddr)
        return util::invalid_argument_error("null data buffer");
    if (rec.host_buffer % 4 != 0)
        return util::invalid_argument_error("misaligned data buffer");
    const std::uint64_t len =
        static_cast<std::uint64_t>(rec.nblocks) * kDeviceBlockSize;
    if (rec.host_buffer + len < rec.host_buffer)
        return util::invalid_argument_error("buffer range wraps");
    (void)c;
    return util::Status::ok();
}

void
Controller::note_validation_fault(pcie::FunctionId fn,
                                  QuarantineCause cause)
{
    // The PF is trusted infrastructure; misprogramming it is a
    // hypervisor bug, not guest hostility.
    if (fn == pcie::kPhysicalFunctionId)
        return;
    FunctionContext &c = ctx(fn);
    if (c.quarantined)
        return;
    const sim::Time now = simulator_.now();
    c.recent_validation_faults.push_back(now);
    while (!c.recent_validation_faults.empty() &&
           c.recent_validation_faults.front() + quarantine_window_ < now)
        c.recent_validation_faults.pop_front();
    if (quarantine_threshold_ != 0 &&
        c.recent_validation_faults.size() >= quarantine_threshold_)
        quarantine(fn, cause);
}

void
Controller::note_dma_violation(pcie::FunctionId fn, pcie::HostAddr addr,
                               std::uint64_t size)
{
    if (fn >= contexts_.size() || fn == pcie::kPhysicalFunctionId)
        return;
    FunctionContext &c = ctx(fn);
    ++c.stats.dma_violations;
    metrics_.bump("dma_violations");
    NESC_LOG_WARN("fn %u: DMA window violation at %llu+%llu", fn,
                  static_cast<unsigned long long>(addr),
                  static_cast<unsigned long long>(size));
    // No storm counting for a sandbox escape attempt: one strike.
    quarantine(fn, QuarantineCause::kDmaViolation);
}

void
Controller::quarantine(pcie::FunctionId fn, QuarantineCause cause)
{
    if (fn == pcie::kPhysicalFunctionId)
        return;
    FunctionContext &c = ctx(fn);
    if (c.quarantined)
        return;
    c.quarantined = true;
    c.quarantine_cause = cause;
    ++c.stats.quarantines;
    metrics_.bump("quarantines");
    tracer_.instant(obs::Stage::kQuarantine, fn, simulator_.now(), 0,
                    static_cast<std::uint64_t>(cause));
    // Freeze the recent lifecycle history before the purge below
    // destroys the in-flight evidence of what went wrong.
    flight_.snapshot(fn, obs::PostmortemReason::kQuarantine,
                     simulator_.now(), static_cast<std::uint64_t>(cause));
    // Tear down everything in flight, scoped exactly to this fn.
    purge_shared_queues(fn, std::nullopt);
    for (const QpRef &qref : c.qps) {
        if (Qp *q = qp_arena_.get(qref); q != nullptr) {
            q->staging.clear();
            q->doorbell_rearm = false;
        }
    }
    c.queued_ops = 0;
    c.stalled_ops.clear();
    c.fault = FaultKind::kNone;
    c.miss_address = 0;
    c.miss_size = 0;
    // Results derived from the pre-quarantine state must not land:
    // the generation bump cancels in-flight walks, and any transfer
    // completion drops on the pending-map miss below.
    ++c.tree_generation;
    btlb_.flush_function(fn);
    node_cache_.invalidate_function(fn);
    // In-flight commands complete kAborted toward the guest, in tag
    // order for determinism (pending is an unordered map). Each
    // completion posts to the pair its command arrived on.
    std::vector<std::pair<std::uint64_t, std::uint16_t>> tags;
    tags.reserve(c.pending.size());
    for (const auto &[tag, cmd] : c.pending) {
        tags.emplace_back(tag, cmd_arena_.get(cmd)->qid);
        cmd_arena_.release(cmd);
    }
    std::sort(tags.begin(), tags.end());
    c.pending.clear();
    c.stats.aborted_ops += tags.size();
    metrics_.bump("aborted_ops", tags.size());
    for (const auto &[tag, qid] : tags)
        enqueue_completion(fn, qid, tag, CompletionStatus::kAborted);
    update_arb_eligibility(fn);
    // One PF notification per quarantine entry; the per-fault IRQs a
    // misbehaving guest could otherwise storm with are suppressed
    // while it stays quarantined.
    irq_.raise(kFaultVector);
    pump();
}

void
Controller::release_quarantine(pcie::FunctionId fn)
{
    FunctionContext &c = ctx(fn);
    c.quarantined = false;
    c.quarantine_cause = QuarantineCause::kNone;
    c.recent_validation_faults.clear();
    metrics_.bump("quarantine_releases");
    // The releasing FLR rebuilds the fn from scratch: rings detached
    // (the guest re-programs them), queues empty, fault state clear.
    function_level_reset(fn);
}

void
Controller::pump()
{
    arbitrate();
    start_walks();
    start_transfers();
}

void
Controller::update_arb_eligibility(pcie::FunctionId fn)
{
    if (fn == pcie::kPhysicalFunctionId)
        return; // the PF's OOB channel never arbitrates
    const FunctionContext &c = contexts_[fn];
    arb_eligible_.assign(fn, c.active && !c.quarantined &&
                                 c.fault == FaultKind::kNone &&
                                 c.queued_ops != 0);
}

int
Controller::next_eligible(std::uint32_t from)
{
    // Fast path: no rate limits anywhere, so the bitmap answer is the
    // answer (this is the only path legacy/golden configs ever take).
    if (rate_limited_fns_ == 0)
        return arb_eligible_.next_after(from);
    const sim::Time now = simulator_.now();
    sim::Time earliest = ~sim::Time{0};
    std::uint32_t cursor = from;
    for (std::size_t probes = arb_eligible_.count(); probes > 0;
         --probes) {
        const int id = arb_eligible_.next_after(cursor);
        if (id < 0)
            return -1;
        FunctionContext &c = ctx(static_cast<pcie::FunctionId>(id));
        if (c.bucket.ready(kDeviceBlockSize, now))
            return id;
        earliest = std::min(earliest,
                            c.bucket.ready_time(kDeviceBlockSize, now));
        cursor = static_cast<std::uint32_t>(id);
        if (cursor == from)
            break; // wrapped a full cycle; everything is rate-blocked
    }
    // Work exists but every backlogged function is out of tokens: a
    // one-shot wakeup at the earliest refill keeps the pipeline moving
    // without any polling traffic.
    if (earliest != ~sim::Time{0})
        schedule_rate_pump(earliest);
    return -1;
}

void
Controller::grant_one(FunctionContext &c)
{
    // Plain round robin across the tenant's pairs: resume at the
    // cursor and take the first pair with staged work. With a single
    // pair this is exactly the legacy per-function queue pop.
    const auto npairs = static_cast<std::uint32_t>(c.qps.size());
    for (std::uint32_t i = 0; i < npairs; ++i) {
        const std::uint32_t qid = (c.rr_qp_cursor + i) % npairs;
        Qp *q = qp_arena_.get(c.qps[qid]);
        if (q == nullptr || q->staging.empty())
            continue;
        q->staging.front().t_arbitrated = simulator_.now();
        vlba_queue_.push_back(q->staging.front());
        q->staging.pop_front();
        --c.queued_ops;
        c.rr_qp_cursor = (qid + 1) % npairs;
        ++arb_grants_;
        return;
    }
}

void
Controller::schedule_rate_pump(sim::Time at)
{
    if (rate_pump_scheduled_ && rate_pump_at_ <= at)
        return; // an earlier (or equal) wakeup is already booked
    rate_pump_scheduled_ = true;
    rate_pump_at_ = at;
    const sim::Time fire = std::max(at, simulator_.now());
    simulator_.schedule_at_lane(sim::Simulator::kDefaultLane, fire,
                                [this, at]() {
                                    if (rate_pump_at_ == at)
                                        rate_pump_scheduled_ = false;
                                    pump();
                                });
}

void
Controller::arbitrate()
{
    // PF out-of-band channel: bypasses translation and the vLBA queue
    // entirely (paper §V.A), so PF traffic is never blocked behind a
    // stalled VF. All the PF's pairs drain, in qid order.
    FunctionContext &pf = ctx(pcie::kPhysicalFunctionId);
    if (pf.queued_ops != 0) {
        for (const QpRef &qref : pf.qps) {
            Qp *q = qp_arena_.get(qref);
            if (q == nullptr)
                continue;
            while (!q->staging.empty()) {
                BlockOp op = q->staging.front();
                q->staging.pop_front();
                --pf.queued_ops;
                if (op.vlba >= pf.device_size_blocks) {
                    complete_block(op, CompletionStatus::kOutOfRange);
                    continue;
                }
                plba_queue_.emplace_back(
                    op, static_cast<extent::Plba>(op.vlba));
                metrics_.add(h_oob_requests_);
            }
        }
    }

    if (arb_mode_ == ArbMode::kLegacyWrr) {
        // Weighted round-robin over VFs into the shared vLBA queue:
        // each backlogged VF gets qos_weight blocks per turn (weight 1
        // = the plain round robin of §V.A; higher weights implement
        // the QoS extension of §IV.D). The per-turn credit persists
        // across calls: the pipeline refills one slot at a time in
        // steady state, and the weight must survive that, not just
        // batch arrivals. The eligible bitmap replays the old sorted
        // active-list scan's cyclic id order exactly — identical
        // selection, O(words) per turn-over instead of O(active_vfs).
        while (vlba_queue_.size() < config_.vlba_queue_depth) {
            if (rr_credit_ == 0 || !arb_eligible_.test(rr_current_)) {
                const int next = next_eligible(rr_current_);
                if (next < 0)
                    break; // nothing runnable (or all rate-blocked)
                rr_current_ = static_cast<pcie::FunctionId>(next);
                rr_credit_ = ctx(rr_current_).qos_weight;
            }
            FunctionContext &c = ctx(rr_current_);
            if (rate_limited_fns_ != 0 && c.bucket.limited() &&
                !c.bucket.ready(kDeviceBlockSize, simulator_.now())) {
                rr_credit_ = 0; // tokens ran out mid-turn: turn over
                continue;
            }
            grant_one(c);
            if (rate_limited_fns_ != 0)
                c.bucket.spend(kDeviceBlockSize);
            --rr_credit_;
            if (c.queued_ops == 0) {
                rr_credit_ = 0; // cannot bank credit while idle
                arb_eligible_.assign(rr_current_, false);
            }
        }
        return;
    }

    // DWRR (reg::kArbMode = 1): a tenant acquiring the turn banks
    // quantum x weight blocks of deficit and spends one per grant.
    // Unlike the legacy credit, the deficit survives vLBA-queue
    // backpressure mid-turn while the tenant stays backlogged — the
    // turn is left open (dwrr_turn_live_) and resumes on the next
    // arbitrate() call. The deficit dies with the backlog (classic
    // DRR), so an idle tenant cannot hoard service.
    while (vlba_queue_.size() < config_.vlba_queue_depth) {
        if (!dwrr_turn_live_ || !arb_eligible_.test(rr_current_)) {
            const int next = next_eligible(rr_current_);
            if (next < 0) {
                dwrr_turn_live_ = false;
                break;
            }
            rr_current_ = static_cast<pcie::FunctionId>(next);
            FunctionContext &t = ctx(rr_current_);
            t.arb_deficit +=
                static_cast<std::uint64_t>(arb_quantum_) * t.qos_weight;
            dwrr_turn_live_ = true;
        }
        FunctionContext &c = ctx(rr_current_);
        if (c.arb_deficit == 0) {
            dwrr_turn_live_ = false; // quantum spent; next tenant
            continue;
        }
        if (rate_limited_fns_ != 0 && c.bucket.limited() &&
            !c.bucket.ready(kDeviceBlockSize, simulator_.now())) {
            dwrr_turn_live_ = false; // keep the deficit, yield the turn
            continue;
        }
        grant_one(c);
        if (rate_limited_fns_ != 0)
            c.bucket.spend(kDeviceBlockSize);
        --c.arb_deficit;
        if (c.queued_ops == 0) {
            c.arb_deficit = 0; // deficit dies with the backlog
            arb_eligible_.assign(rr_current_, false);
            dwrr_turn_live_ = false;
        }
    }
}

// --------------------------------------------------------------------
// Translation unit
// --------------------------------------------------------------------

void
Controller::start_walks()
{
    while (active_walks_ < config_.walk_overlap && !vlba_queue_.empty() &&
           plba_queue_.size() < config_.plba_queue_depth) {
        BlockOp op = vlba_queue_.front();
        vlba_queue_.pop_front();
        ++active_walks_;
        // The BTLB probe and pipeline bookkeeping take a fixed cost.
        simulator_.schedule_in_lane(ctx(op.fn).lane,
                                    config_.translation_cost,
                                    [this, op]() { begin_translation(op); });
    }
}

void
Controller::begin_translation(BlockOp op)
{
    FunctionContext &c = ctx(op.fn);
    if (!c.active || c.quarantined) { // deleted or sealed while queued
        release_walker();
        pump();
        return;
    }
    if (c.fault != FaultKind::kNone) {
        // Another block of this VF faulted while we were queued; park.
        c.stalled_ops.push_back(op);
        release_walker();
        pump();
        return;
    }
    if (op.vlba >= c.device_size_blocks) {
        complete_block(op, CompletionStatus::kOutOfRange);
        release_walker();
        pump();
        return;
    }
    if (auto hit = btlb_.lookup(op.fn, op.vlba)) {
        metrics_.add(h_btlb_hits_);
        tracer_.instant(obs::Stage::kBtlbHit, op.fn, simulator_.now(),
                        op.tag, op.vlba);
        finish_mapped(op, *hit);
        release_walker();
        pump();
        return;
    }
    metrics_.add(h_btlb_misses_);
    if (walk_coalescing_ && !op.no_coalesce) {
        // MSHR attachment: a concurrent miss near an in-flight walk of
        // the same function rides that walk instead of spawning its
        // own — one set of node DMAs serves the whole burst.
        for (const WalkRef &wref : inflight_walks_) {
            Walk *walk = walk_arena_.get(wref); // live by invariant
            if (walk->op.fn != op.fn)
                continue;
            const extent::Vlba a = walk->op.vlba;
            const extent::Vlba b = op.vlba;
            if ((a > b ? a - b : b - a) > coalesce_window_)
                continue;
            walk->secondaries.push_back(op);
            metrics_.add(h_walk_coalesced_);
            release_walker();
            pump();
            return;
        }
    }
    if (c.extent_tree_root == pcie::kNullHostAddr) {
        // No tree at all: treat as a fully pruned mapping.
        finish_fault(op, FaultKind::kPruned);
        release_walker();
        pump();
        return;
    }
    const WalkRef ref = walk_arena_.acquire();
    Walk *walk = walk_arena_.get(ref);
    walk->op = op;
    walk->node = c.extent_tree_root;
    walk->levels = 0;
    walk->generation = c.tree_generation;
    walk->t_start = simulator_.now();
    walk->secondaries.clear(); // recycled slot: keep the capacity
    inflight_walks_.push_back(ref);
    walk_node(ref);
}

void
Controller::walk_node(WalkRef ref)
{
    // Level latency = header DMA + entries DMA + parse; the two DMA
    // transactions are what the overlapped walkers hide (§V.B) and
    // what the node cache removes entirely on a hit.
    Walk *walk = walk_arena_.get(ref);
    ++walk->levels;
    const sim::LaneId lane = ctx(walk->op.fn).lane;
    if (node_cache_.enabled()) {
        if (const ExtentNodeCache::Node *cached =
                node_cache_.lookup(walk->op.fn, walk->node)) {
            metrics_.add(h_node_cache_hits_);
            if (walk->levels > kMaxWalkDepth) {
                walk_resolved_fault(ref, FaultKind::kTreeCorrupt);
                return;
            }
            simulator_.schedule_in_lane(
                lane, config_.node_parse_cost,
                [this, ref, header = cached->header,
                 data = cached->entries]() {
                    if (walk_canceled(ref))
                        return;
                    walk_process(ref, header.kind, header.count, data);
                });
            return;
        }
        metrics_.add(h_node_cache_misses_);
    }
    metrics_.add(h_walk_node_reads_);
    dma_.read(walk->op.fn, walk->node, sizeof(NodeHeaderRecord),
              [this, ref, lane](util::Status status,
                                std::vector<std::byte> data) {
                  const bool whole = data.size() >= sizeof(NodeHeaderRecord);
                  NodeHeaderRecord header{};
                  if (whole)
                      std::memcpy(&header, data.data(), sizeof(header));
                  dma_.recycle_buffer(std::move(data));
                  if (walk_canceled(ref))
                      return;
                  if (!status.is_ok() || !whole) {
                      // Poisoned or failed node read: contain it to
                      // the faulting VF instead of killing the op with
                      // an opaque internal error.
                      walk_resolved_fault(ref, FaultKind::kTreeCorrupt);
                      return;
                  }
                  const bool kind_ok =
                      header.kind == static_cast<NodeKindTag>(
                                         NodeKind::kInternal) ||
                      header.kind ==
                          static_cast<NodeKindTag>(NodeKind::kLeaf);
                  const bool magic_ok =
                      header.magic == extent::kNodeMagic ||
                      header.magic == extent::kNodeMagicV2;
                  if (!magic_ok || !kind_ok ||
                      header.count > kMaxNodeEntries ||
                      header.depth > kMaxWalkDepth ||
                      walk_arena_.get(ref)->levels > kMaxWalkDepth) {
                      walk_resolved_fault(ref, FaultKind::kTreeCorrupt);
                      return;
                  }
                  simulator_.schedule_in_lane(
                      lane, config_.node_parse_cost,
                      [this, ref, header]() {
                          walk_entries(ref, header);
                      });
              });
}

void
Controller::walk_entries(WalkRef ref, NodeHeaderRecord header)
{
    Walk *walk = walk_arena_.get(ref);
    const NodeKindTag kind = header.kind;
    const std::uint32_t count = header.count;
    const pcie::HostAddr node = walk->node;
    const std::uint64_t bytes =
        static_cast<std::uint64_t>(count) * extent::kEntrySize;
    dma_.read(
        walk->op.fn, extent::entry_addr(node, 0), bytes,
        [this, ref, header, kind, count, node](
            util::Status status, std::vector<std::byte> data) {
            if (walk_canceled(ref))
                return;
            if (!status.is_ok()) {
                walk_resolved_fault(ref, FaultKind::kTreeCorrupt);
                return;
            }
            if (header.magic == extent::kNodeMagicV2) {
                // v2 verify-on-fetch: one more 8-byte DMA pulls the
                // trailer, and the node is only trusted (and cached)
                // once header+entries match it. A flipped child
                // pointer dies here as kTreeCorrupt instead of
                // steering the walk into hostile memory.
                auto entries = std::make_shared<std::vector<std::byte>>(
                    std::move(data));
                dma_.read(
                    walk_arena_.get(ref)->op.fn,
                    extent::entry_addr(node, count),
                    extent::kNodeTrailerSize,
                    [this, ref, header, kind, count, entries](
                        util::Status tstatus,
                        std::vector<std::byte> tdata) {
                        extent::NodeTrailerRecord trailer{};
                        const bool whole =
                            tdata.size() >= sizeof(trailer);
                        if (whole)
                            std::memcpy(&trailer, tdata.data(),
                                        sizeof(trailer));
                        dma_.recycle_buffer(std::move(tdata));
                        if (walk_canceled(ref))
                            return;
                        const std::uint32_t want = extent::node_crc(
                            header, entries->data(), entries->size());
                        if (!tstatus.is_ok() || !whole ||
                            trailer.crc != want) {
                            metrics_.bump("tree_crc_errors");
                            walk_resolved_fault(ref,
                                                FaultKind::kTreeCorrupt);
                            return;
                        }
                        if (node_cache_.enabled()) {
                            Walk *walk = walk_arena_.get(ref);
                            node_cache_.insert(walk->op.fn, walk->node,
                                               header, *entries);
                        }
                        walk_process(ref, kind, count, *entries);
                        dma_.recycle_buffer(std::move(*entries));
                    });
                return;
            }
            if (node_cache_.enabled()) {
                // The node passed the header sanity checks; cache the
                // image so the next walk skips both DMA reads.
                Walk *walk = walk_arena_.get(ref);
                node_cache_.insert(walk->op.fn, walk->node, header, data);
            }
            walk_process(ref, kind, count, data);
            dma_.recycle_buffer(std::move(data));
        });
}

void
Controller::walk_process(WalkRef ref, NodeKindTag kind,
                         std::uint32_t count,
                         const std::vector<std::byte> &data)
{
    Walk *walk = walk_arena_.get(ref);
    const extent::Vlba vlba = walk->op.vlba;

    if (kind == static_cast<NodeKindTag>(NodeKind::kLeaf)) {
        for (std::uint32_t i = 0; i < count; ++i) {
            ExtentPtrRecord rec;
            std::memcpy(&rec, data.data() + i * extent::kEntrySize,
                        sizeof(rec));
            const extent::Extent ext{rec.first_vblock, rec.nblocks,
                                     rec.first_pblock};
            if (ext.contains(vlba)) {
                walk_resolved_mapped(ref, ext);
                return;
            }
            if (rec.first_vblock > vlba)
                break;
        }
        walk_resolved_hole(ref);
        return;
    }

    // Internal node: find the covering child.
    for (std::uint32_t i = 0; i < count; ++i) {
        NodePtrRecord rec;
        std::memcpy(&rec, data.data() + i * extent::kEntrySize,
                    sizeof(rec));
        if (vlba >= rec.first_vblock &&
            vlba < rec.first_vblock + rec.nblocks) {
            if (rec.child == pcie::kNullHostAddr) {
                walk_resolved_fault(ref, FaultKind::kPruned);
                return;
            }
            walk->node = rec.child;
            simulator_.schedule_in_lane(ctx(walk->op.fn).lane,
                                        config_.node_parse_cost,
                                        [this, ref]() { walk_node(ref); });
            return;
        }
        if (rec.first_vblock > vlba)
            break;
    }
    walk_resolved_hole(ref);
}

bool
Controller::walk_canceled(WalkRef ref)
{
    Walk *walk = walk_arena_.get(ref);
    FunctionContext &c = ctx(walk->op.fn);
    if (c.active && walk->generation == c.tree_generation)
        return false;
    // The mapping moved under the walk (SetExtentRoot, rewalk, reset)
    // or the function is gone: the result would be stale, so the ops
    // go back through translation against the current tree.
    std::vector<BlockOp> ops;
    if (c.active && !c.quarantined) {
        ops.reserve(1 + walk->secondaries.size());
        ops.push_back(walk->op);
        ops.insert(ops.end(), walk->secondaries.begin(),
                   walk->secondaries.end());
    }
    retire_walk(ref);
    if (!ops.empty())
        replay_ops(std::move(ops), false);
    release_walker();
    pump();
    return true;
}

void
Controller::walk_resolved_mapped(WalkRef ref, const extent::Extent &extent)
{
    Walk *walk = walk_arena_.get(ref);
    btlb_.insert(walk->op.fn, extent, walk->op.vlba);
    const BlockOp primary = walk->op;
    std::vector<BlockOp> secondaries = std::move(walk->secondaries);
    walk->secondaries.clear();
    retire_walk(ref);
    finish_mapped(primary, extent);
    std::vector<BlockOp> replay;
    for (BlockOp &s : secondaries) {
        if (extent.contains(s.vlba)) {
            // The attached miss resolves with the primary's extent:
            // zero extra DMA for it.
            metrics_.add(h_walk_coalesced_resolved_);
            finish_mapped(s, extent);
        } else {
            replay.push_back(s);
        }
    }
    if (!replay.empty())
        replay_ops(std::move(replay), true);
    release_walker();
    pump();
}

void
Controller::walk_resolved_hole(WalkRef ref)
{
    Walk *walk = walk_arena_.get(ref);
    const BlockOp primary = walk->op;
    std::vector<BlockOp> secondaries = std::move(walk->secondaries);
    walk->secondaries.clear();
    retire_walk(ref);
    finish_hole(primary);
    // A hole only says the primary's vLBA is unmapped; secondaries
    // re-translate individually.
    if (!secondaries.empty())
        replay_ops(std::move(secondaries), true);
    release_walker();
    pump();
}

void
Controller::walk_resolved_fault(WalkRef ref, FaultKind kind)
{
    Walk *walk = walk_arena_.get(ref);
    const BlockOp primary = walk->op;
    std::vector<BlockOp> secondaries = std::move(walk->secondaries);
    walk->secondaries.clear();
    retire_walk(ref);
    finish_fault(primary, kind);
    // Secondaries park behind the same fault, after the primary, so a
    // rewalk re-issues them in arrival order.
    FunctionContext &c = ctx(primary.fn);
    for (BlockOp &s : secondaries)
        c.stalled_ops.push_back(s);
    release_walker();
    pump();
}

void
Controller::retire_walk(WalkRef ref)
{
    // Every walk resolution path funnels through here, so this is the
    // one place the kWalk span (launch to resolution) is recorded.
    // Releasing the slot makes every outstanding ref to it stale.
    Walk *walk = walk_arena_.get(ref);
    tracer_.span(obs::Stage::kWalk, walk->op.fn, walk->t_start,
                 simulator_.now(), walk->op.tag, walk->levels);
    std::erase(inflight_walks_, ref);
    walk_arena_.release(ref);
}

void
Controller::replay_ops(std::vector<BlockOp> ops, bool mark_no_coalesce)
{
    metrics_.add(h_walk_replays_, ops.size());
    for (auto it = ops.rbegin(); it != ops.rend(); ++it) {
        if (mark_no_coalesce)
            it->no_coalesce = true;
        vlba_queue_.push_front(*it);
    }
}

void
Controller::release_walker()
{
    assert(active_walks_ > 0);
    --active_walks_;
}

void
Controller::finish_mapped(const BlockOp &op, const extent::Extent &extent)
{
    const extent::Plba plba = extent.translate(op.vlba);
    if (plba >= device_.geometry().num_blocks()) {
        // The extent points outside the physical device: the tree (or
        // a BTLB entry derived from it) is corrupt.
        finish_fault(op, FaultKind::kTreeCorrupt);
        return;
    }
    BlockOp stamped = op;
    stamped.t_translated = simulator_.now();
    plba_queue_.emplace_back(stamped, plba);
}

void
Controller::finish_hole(const BlockOp &op)
{
    if (op.op == Opcode::kRead) {
        // POSIX: holes read as zeros (paper §IV.C) — the device DMAs
        // zeros straight to the destination buffer.
        start_zero_fill(op);
        return;
    }
    finish_fault(op, FaultKind::kWriteMiss);
}

void
Controller::finish_fault(const BlockOp &op, FaultKind kind)
{
    FunctionContext &c = ctx(op.fn);
    if (c.quarantined)
        return; // op already aborted; no fault latch, no PF IRQ storm
    c.stalled_ops.push_back(op);
    if (c.fault != FaultKind::kNone)
        return; // already faulted; hypervisor will service in order
    c.fault = kind;
    c.miss_address = op.vlba * static_cast<std::uint64_t>(kDeviceBlockSize);
    c.miss_size = kDeviceBlockSize;
    ++c.stats.faults;
    switch (kind) {
      case FaultKind::kWriteMiss: metrics_.bump("write_miss_faults"); break;
      case FaultKind::kPruned: metrics_.bump("prune_faults"); break;
      case FaultKind::kTreeCorrupt:
        metrics_.bump("tree_corrupt_faults");
        // Any cached translation or node image may derive from the
        // corrupt tree.
        btlb_.flush_function(op.fn);
        node_cache_.invalidate_function(op.fn);
        break;
      case FaultKind::kNone: break;
    }
    tracer_.instant(obs::Stage::kFault, op.fn, simulator_.now(), op.tag,
                    static_cast<std::uint64_t>(kind));
    flight_.record(op.fn, obs::FlightEventType::kFault, simulator_.now(),
                   static_cast<std::uint32_t>(op.tag), op.vlba,
                   static_cast<std::uint32_t>(kind));
    flight_.snapshot(op.fn, obs::PostmortemReason::kFault,
                     simulator_.now(), static_cast<std::uint64_t>(kind));
    update_arb_eligibility(op.fn); // a faulted fn leaves arbitration
    irq_.raise(kFaultVector);
}

void
Controller::handle_rewalk(pcie::FunctionId fn)
{
    FunctionContext &c = ctx(fn);
    if (c.fault == FaultKind::kNone)
        return;
    c.fault = FaultKind::kNone;
    c.miss_address = 0;
    c.miss_size = 0;
    // The hypervisor serviced the fault by editing the tree: cached
    // node images are stale, and any walk still in flight for this
    // function must not deliver a result derived from the old tree.
    ++c.tree_generation;
    node_cache_.invalidate_function(fn);
    // Re-issue parked operations ahead of anything newly queued, each
    // at the front of the pair it was fetched from (back-to-front, so
    // a pair's parked ops come out in their original order).
    while (!c.stalled_ops.empty()) {
        const BlockOp &op = c.stalled_ops.back();
        if (Qp *q = qp(c, op.qid); q != nullptr) {
            q->staging.push_front(op);
            ++c.queued_ops;
        }
        c.stalled_ops.pop_back();
    }
    metrics_.bump("rewalks");
    update_arb_eligibility(fn);
    pump();
}

void
Controller::fail_stalled(pcie::FunctionId fn)
{
    FunctionContext &c = ctx(fn);
    if (c.fault == FaultKind::kNone)
        return;
    c.fault = FaultKind::kNone;
    c.miss_address = 0;
    c.miss_size = 0;
    util::RingQueue<BlockOp> parked;
    parked.swap(c.stalled_ops);
    // Only writes missed: reads parked behind the fault were stalled
    // by ordering alone, so requeue them (ahead of newer arrivals on
    // their own pair, preserving their relative order) and the VF
    // resumes cleanly.
    for (auto it = parked.rbegin(); it != parked.rend(); ++it)
        if (it->op == Opcode::kRead) {
            if (Qp *q = qp(c, it->qid); q != nullptr) {
                q->staging.push_front(*it);
                ++c.queued_ops;
            }
        }
    for (const BlockOp &op : parked)
        if (op.op != Opcode::kRead)
            complete_block(op, CompletionStatus::kWriteFailed);
    metrics_.bump("write_failures");
    update_arb_eligibility(fn);
    pump();
}

// --------------------------------------------------------------------
// Data-transfer unit
// --------------------------------------------------------------------

void
Controller::start_transfers()
{
    while (inflight_transfers_ < config_.max_inflight_transfers &&
           !plba_queue_.empty()) {
        auto [op, plba] = plba_queue_.front();
        plba_queue_.pop_front();
        start_transfer(op, plba);
    }
    // Draining the pLBA queue may unblock the translation stage.
    if (active_walks_ < config_.walk_overlap && !vlba_queue_.empty())
        start_walks();
}

void
Controller::start_transfer(const BlockOp &op, extent::Plba plba)
{
    ++inflight_transfers_;
    if (replicas_ != nullptr) {
        // Replication layer attached: route the media access to the
        // replica set (mirrored writes, failover reads) instead of the
        // local device. DMA to/from the host is unchanged.
        start_replicated_transfer(op, plba);
        return;
    }
    const std::uint64_t media_offset =
        plba * static_cast<std::uint64_t>(kDeviceBlockSize);

    if (op.op == Opcode::kRead) {
        // Media read, then DMA the payload to the host buffer. With
        // integrity on, the checksum engine sits between the two and
        // charges its compute cost on the media path.
        const bool verifying = integrity_on(plba);
        const sim::Time media_done =
            device_.service_read(simulator_.now(), media_offset,
                                 kDeviceBlockSize) +
            (verifying ? kChecksumCostNs : 0);
        simulator_.schedule_at_lane(
            ctx(op.fn).lane, media_done,
            [this, op, media_offset, plba, verifying]() {
            std::vector<std::byte> data =
                dma_.acquire_buffer(kDeviceBlockSize);
            util::Status status = device_.read(media_offset, data);
            if (!status.is_ok()) {
                --inflight_transfers_;
                ++ctx(op.fn).stats.media_errors;
                metrics_.bump("media_read_errors");
                dma_.recycle_buffer(std::move(data));
                complete_block(op, CompletionStatus::kReadMediaError);
                pump();
                return;
            }
            if (verifying && !integrity_->verify(plba, data)) {
                // Recovery ladder, local leg: bounded re-reads clear
                // in-flight flips; persistent (sticky) damage has no
                // second copy here and surfaces as kChecksumError.
                note_checksum_mismatch(op.fn, op);
                bool verified = false;
                for (std::uint32_t i = 0;
                     i < integrity_reread_limit_ && !verified; ++i) {
                    metrics_.bump("checksum_rereads");
                    if (!device_.read(media_offset, data).is_ok())
                        continue;
                    verified = integrity_->verify(plba, data);
                }
                if (!verified) {
                    --inflight_transfers_;
                    dma_.recycle_buffer(std::move(data));
                    complete_block(op, CompletionStatus::kChecksumError);
                    pump();
                    return;
                }
                metrics_.bump("checksum_reread_recoveries");
            }
            finish_read_payload(op, std::move(data));
        });
        return;
    }

    // Write: DMA the payload from host memory, then media write.
    dma_.read(op.fn, op.buffer, kDeviceBlockSize,
              [this, op, media_offset, plba](util::Status status,
                                             std::vector<std::byte> data) {
                  if (!status.is_ok()) {
                      --inflight_transfers_;
                      complete_block(
                          op,
                          status.code() ==
                                  util::ErrorCode::kPermissionDenied
                              ? CompletionStatus::kDmaFault
                              : CompletionStatus::kInternalError);
                      pump();
                      return;
                  }
                  const bool recording = integrity_on(plba);
                  util::Status wstatus = device_.write(media_offset, data);
                  // Checksum the payload the guest intended: damage the
                  // media inflicts after this point (bitrot) is exactly
                  // what the verifying read path must catch.
                  if (recording && wstatus.is_ok())
                      integrity_->record(plba, data);
                  dma_.recycle_buffer(std::move(data));
                  const sim::Time media_done =
                      device_.service_write(simulator_.now(), media_offset,
                                            kDeviceBlockSize) +
                      (recording ? kChecksumCostNs : 0);
                  simulator_.schedule_at_lane(
                      ctx(op.fn).lane, media_done, [this, op, wstatus]() {
                          --inflight_transfers_;
                          if (!wstatus.is_ok()) {
                              ++ctx(op.fn).stats.media_errors;
                              metrics_.bump("media_write_errors");
                              complete_block(
                                  op, CompletionStatus::kWriteMediaError);
                              pump();
                              return;
                          }
                          ctx(op.fn).stats.blocks_written += 1;
                          complete_block(op, CompletionStatus::kOk);
                          pump();
                      });
              });
}

void
Controller::start_replicated_transfer(const BlockOp &op,
                                      extent::Plba plba)
{
    const sim::Time t_start = simulator_.now();
    if (op.op == Opcode::kRead) {
        // Failover read from the replica set, then DMA to the host
        // buffer. The shared_ptr keeps the staging buffer alive across
        // the set's retry chain.
        auto data = std::make_shared<std::vector<std::byte>>(
            dma_.acquire_buffer(kDeviceBlockSize));
        replicas_->read_tracked(
            plba, std::span<std::byte>(*data),
            [this, op, plba, data, t_start](util::Status status,
                                            int backend) {
                tracer_.span(obs::Stage::kReplRead, op.fn, t_start,
                             simulator_.now(), op.tag, op.vlba);
                metrics_.add(h_repl_reads_);
                if (!status.is_ok()) {
                    --inflight_transfers_;
                    ++ctx(op.fn).stats.media_errors;
                    metrics_.bump("repl_read_failures");
                    dma_.recycle_buffer(std::move(*data));
                    complete_block(op, CompletionStatus::kReadMediaError);
                    pump();
                    return;
                }
                if (integrity_on(plba) &&
                    !integrity_->verify(plba, *data)) {
                    // Recovery ladder, replicated leg: re-read the
                    // serving backend, then alternates; a verified
                    // alternate repairs the damaged copy in place.
                    note_checksum_mismatch(op.fn, op);
                    integrity_ladder(op, plba, data, backend,
                                     integrity_reread_limit_, 0);
                    return;
                }
                finish_read_payload(op, std::move(*data));
            });
        return;
    }

    // Write: DMA the payload from host memory, then mirror it through
    // the replica set; the completion acks at quorum durability.
    dma_.read(
        op.fn, op.buffer, kDeviceBlockSize,
        [this, op, plba, t_start](util::Status status,
                                  std::vector<std::byte> data) {
            if (!status.is_ok()) {
                --inflight_transfers_;
                complete_block(
                    op, status.code() ==
                                util::ErrorCode::kPermissionDenied
                            ? CompletionStatus::kDmaFault
                            : CompletionStatus::kInternalError);
                pump();
                return;
            }
            // Record at submission: the checksum binds the payload the
            // guest wrote, against which every backend's copy is later
            // judged.
            if (integrity_on(plba))
                integrity_->record(plba, data);
            replicas_->write(
                plba, data, [this, op, t_start](util::Status wstatus) {
                    tracer_.span(obs::Stage::kReplWrite, op.fn, t_start,
                                 simulator_.now(), op.tag, op.vlba);
                    metrics_.add(h_repl_writes_);
                    --inflight_transfers_;
                    if (!wstatus.is_ok()) {
                        ++ctx(op.fn).stats.media_errors;
                        metrics_.bump("repl_write_failures");
                        complete_block(op,
                                       CompletionStatus::kWriteMediaError);
                        pump();
                        return;
                    }
                    ctx(op.fn).stats.blocks_written += 1;
                    complete_block(op, CompletionStatus::kOk);
                    pump();
                });
            // The set copied the payload at submission; the staging
            // buffer can go back to the pool before the ack.
            dma_.recycle_buffer(std::move(data));
        });
}

void
Controller::finish_read_payload(const BlockOp &op,
                                std::vector<std::byte> data)
{
    dma_.write(op.fn, op.buffer, std::move(data),
               [this, op](util::Status dma_status) {
                   --inflight_transfers_;
                   ctx(op.fn).stats.blocks_read += 1;
                   CompletionStatus s = CompletionStatus::kOk;
                   if (!dma_status.is_ok()) {
                       s = dma_status.code() ==
                                   util::ErrorCode::kPermissionDenied
                               ? CompletionStatus::kDmaFault
                               : CompletionStatus::kInternalError;
                   }
                   complete_block(op, s);
                   pump();
               });
}

void
Controller::integrity_ladder(const BlockOp &op, extent::Plba plba,
                             std::shared_ptr<std::vector<std::byte>> data,
                             int bad_backend, std::uint32_t rereads_left,
                             std::size_t next_alt)
{
    const sim::Time t_rung = simulator_.now();
    // Rung 1: bounded re-reads of the backend that served the corrupt
    // payload — an in-flight flip clears, stored damage does not.
    if (rereads_left > 0 && bad_backend >= 0) {
        metrics_.bump("checksum_rereads");
        replicas_->read_from(
            static_cast<std::size_t>(bad_backend), plba,
            std::span<std::byte>(*data),
            [this, op, plba, data, bad_backend, rereads_left, next_alt,
             t_rung](util::Status s) {
                tracer_.span(obs::Stage::kChecksum, op.fn, t_rung,
                             simulator_.now(), op.tag, op.vlba);
                if (s.is_ok() && integrity_->verify(plba, *data)) {
                    metrics_.bump("checksum_reread_recoveries");
                    finish_read_payload(op, std::move(*data));
                    return;
                }
                integrity_ladder(op, plba, data, bad_backend,
                                 rereads_left - 1, next_alt);
            });
        return;
    }
    // Rung 2: alternate backends. The first copy that verifies is DMA'd
    // to the guest and written back over the damaged replica.
    std::size_t alt = next_alt;
    while (alt < replicas_->backend_count() &&
           static_cast<int>(alt) == bad_backend)
        ++alt;
    if (alt >= replicas_->backend_count()) {
        // Ladder exhausted: no verified copy anywhere reachable.
        --inflight_transfers_;
        metrics_.bump("checksum_unrecovered");
        dma_.recycle_buffer(std::move(*data));
        complete_block(op, CompletionStatus::kChecksumError);
        pump();
        return;
    }
    replicas_->read_from(
        alt, plba, std::span<std::byte>(*data),
        [this, op, plba, data, bad_backend, alt,
         t_rung](util::Status s) {
            tracer_.span(obs::Stage::kChecksum, op.fn, t_rung,
                         simulator_.now(), op.tag, op.vlba);
            if (!s.is_ok() || !integrity_->verify(plba, *data)) {
                integrity_ladder(op, plba, data, bad_backend, 0, alt + 1);
                return;
            }
            if (bad_backend >= 0 &&
                replicas_
                    ->repair_blocks(static_cast<std::size_t>(bad_backend),
                                    plba, *data)
                    .is_ok()) {
                ++integrity_repairs_;
                metrics_.bump("checksum_repairs");
            }
            finish_read_payload(op, std::move(*data));
        });
}

void
Controller::start_zero_fill(const BlockOp &original)
{
    BlockOp op = original;
    op.t_translated = simulator_.now();
    ++inflight_transfers_;
    ctx(op.fn).stats.holes_zero_filled += 1;
    metrics_.add(h_holes_zero_filled_);
    const sim::Time t_fill = simulator_.now();
    dma_.write_zero(op.fn, op.buffer, kDeviceBlockSize,
                    [this, op, t_fill](util::Status status) {
                        tracer_.span(obs::Stage::kZeroFill, op.fn, t_fill,
                                     simulator_.now(), op.tag, op.vlba);
                        --inflight_transfers_;
                        CompletionStatus s = CompletionStatus::kOk;
                        if (!status.is_ok()) {
                            s = status.code() ==
                                        util::ErrorCode::kPermissionDenied
                                    ? CompletionStatus::kDmaFault
                                    : CompletionStatus::kInternalError;
                        }
                        complete_block(op, s);
                        pump();
                    });
}

// --------------------------------------------------------------------
// Completion
// --------------------------------------------------------------------

Controller::CmdRef
Controller::open_command(FunctionContext &c, std::uint64_t tag,
                         std::uint32_t remaining, sim::Time t_start,
                         std::uint16_t qid)
{
    const CmdRef ref = cmd_arena_.acquire();
    PendingCommand *cmd = cmd_arena_.get(ref);
    cmd->remaining = remaining;
    cmd->status = CompletionStatus::kOk;
    cmd->t_start = t_start;
    cmd->qid = qid;
    // A guest reusing a live tag orphans the old command: its ref is
    // released here, so blocks still in flight for it drop on the
    // stale-handle miss instead of aliasing the new command.
    if (auto [it, inserted] = c.pending.try_emplace(tag, ref); !inserted) {
        cmd_arena_.release(it->second);
        it->second = ref;
    }
    return ref;
}

void
Controller::complete_block(const BlockOp &op, CompletionStatus status)
{
    // Stage breakdown: only fully-traced, successfully-executed block
    // operations contribute (faulted/error ops skip stages). The trace
    // spans are cut from the same timestamps feeding the histograms,
    // so trace-derived stage totals reproduce this accounting exactly.
    bool slo_counted = false;
    if (status == CompletionStatus::kOk && op.t_queued &&
        op.t_arbitrated && op.t_translated) {
        const sim::Time now = simulator_.now();
        stage_queue_.observe(op.t_arbitrated - op.t_queued);
        stage_translate_.observe(op.t_translated - op.t_arbitrated);
        stage_transfer_.observe(now - op.t_translated);
        if (obs_window_ns_ != 0) {
            // observe_ok also counts the op, so the common OK path pays
            // one SLO call per completion, not two.
            slo_.observe_ok(op.fn, now - op.t_queued,
                            op.t_arbitrated - op.t_queued,
                            op.t_translated - op.t_arbitrated,
                            now - op.t_translated);
            slo_counted = true;
        }
        if (tracer_.enabled()) {
            tracer_.span(obs::Stage::kQueueWait, op.fn, op.t_queued,
                         op.t_arbitrated, op.tag, op.vlba);
            tracer_.span(obs::Stage::kTranslate, op.fn, op.t_arbitrated,
                         op.t_translated, op.tag, op.vlba);
            tracer_.span(obs::Stage::kTransfer, op.fn, op.t_translated,
                         now, op.tag, op.vlba);
        }
    }
    if (obs_window_ns_ != 0 && !slo_counted)
        slo_.note_op(op.fn, status != CompletionStatus::kOk);
    PendingCommand *cmd = cmd_arena_.get(op.cmd);
    if (cmd == nullptr)
        return; // command was torn down (abort/quarantine/VF delete)
    if (status != CompletionStatus::kOk)
        cmd->status = status;
    if (--cmd->remaining > 0)
        return;
    const CompletionStatus final_status = cmd->status;
    FunctionContext &c = ctx(op.fn);
    c.pending.erase(op.tag);
    cmd_arena_.release(op.cmd);
    enqueue_completion(op.fn, op.qid, op.tag, final_status);
}

void
Controller::enqueue_completion(pcie::FunctionId fn, std::uint16_t qid,
                               std::uint64_t tag, CompletionStatus status)
{
    FunctionContext &c = ctx(fn);
    if (!completion_batch_) {
        // Paper behavior: one CQ write plus one MSI per completion,
        // each in its own event after the completion-engine latency.
        simulator_.schedule_in_lane(
            c.lane, config_.completion_cost,
            [this, fn, qid, tag, status]() {
                post_completion(fn, qid, tag, status);
            });
        return;
    }
    // Batched mode: queue the record on its pair and flush the
    // window's worth in one event — one pass over that CQ, one MSI
    // for the lot.
    Qp *q = qp(c, qid);
    if (q == nullptr)
        return; // pair deleted: its completions die with the queue
    q->comp_batch.push_back(QueuedCompletion{tag, status});
    if (!q->comp_flush_scheduled) {
        q->comp_flush_scheduled = true;
        simulator_.schedule_in_lane(
            c.lane, config_.completion_cost,
            [this, fn, qid]() { flush_completions(fn, qid); });
    }
}

void
Controller::flush_completions(pcie::FunctionId fn, std::uint16_t qid)
{
    FunctionContext &c = ctx(fn);
    Qp *q = qp(c, qid);
    if (q == nullptr)
        return; // pair deleted between enqueue and flush
    q->comp_flush_scheduled = false;
    std::vector<QueuedCompletion> batch;
    batch.swap(q->comp_batch);
    bool raise = false;
    for (const QueuedCompletion &qc : batch)
        raise = post_completion_record(fn, qid, qc.tag, qc.status) ||
                raise;
    if (raise)
        raise_completion_irq(fn, qid);
}

void
Controller::post_completion(pcie::FunctionId fn, std::uint16_t qid,
                            std::uint64_t tag, CompletionStatus status)
{
    if (post_completion_record(fn, qid, tag, status))
        raise_completion_irq(fn, qid);
}

bool
Controller::post_completion_record(pcie::FunctionId fn,
                                   std::uint16_t qid, std::uint64_t tag,
                                   CompletionStatus status)
{
    FunctionContext &c = ctx(fn);
    if (!c.active)
        return false;
    Qp *q = qp(c, qid);
    if (q == nullptr)
        return false; // pair deleted: the completion is dropped
    if (!q->cq) {
        auto ring = pcie::HostRing::attach(host_memory_, q->cq_base);
        if (!ring.is_ok()) {
            NESC_LOG_WARN("fn %u: completion with no completion ring", fn);
            return false;
        }
        pcie::HostRing attached = std::move(ring).value();
        if (attached.record_size() != sizeof(CompletionRecord) ||
            attached.capacity() == 0 ||
            attached.capacity() > kMaxRingCapacity) {
            NESC_LOG_WARN("fn %u: completion ring shape rejected", fn);
            ++c.stats.ring_corruptions;
            metrics_.bump("ring_corruptions");
            note_validation_fault(fn, QuarantineCause::kRingCorrupt);
            return false;
        }
        // Completions are device writes into guest memory: a confined
        // fn's completion ring must also sit inside its windows.
        if (!dma_
                 .check_window(fn, attached.base(),
                               pcie::HostRing::footprint(
                                   attached.capacity(),
                                   attached.record_size()))
                 .is_ok())
            return false; // the violation hook has quarantined the fn
        q->cq = std::move(attached);
    }
    CompletionRecord rec{tag, static_cast<std::uint32_t>(status), 0};
    std::array<std::byte, sizeof(rec)> buf;
    std::memcpy(buf.data(), &rec, sizeof(rec));
    dma_.book(sizeof(rec));
    util::Status pushed = q->cq->push(buf);
    if (!pushed.is_ok()) {
        NESC_LOG_WARN("fn %u: completion ring push failed: %s", fn,
                      pushed.message().c_str());
        if (pushed.code() == util::ErrorCode::kDataLoss) {
            // Corrupted header (not mere overflow): misbehavior.
            ++c.stats.ring_corruptions;
            metrics_.bump("ring_corruptions");
            note_validation_fault(fn, QuarantineCause::kRingCorrupt);
        }
    }
    ++c.stats.completions;
    ++q->stats.completions;
    metrics_.add(h_completions_);
    tracer_.instant(obs::Stage::kComplete, fn, simulator_.now(), tag,
                    static_cast<std::uint64_t>(status));
    flight_.record(fn, obs::FlightEventType::kComplete, simulator_.now(),
                   static_cast<std::uint32_t>(tag), 0,
                   static_cast<std::uint32_t>(status));
    return true;
}

void
Controller::raise_completion_irq(pcie::FunctionId fn, std::uint16_t qid)
{
    FunctionContext &c = ctx(fn);
    Qp *q = qp(c, qid);
    const pcie::IrqVector vector =
        (q != nullptr && q->irq_vector) ? q->irq_vector
                                        : queue_vector(fn, qid);
    if (config_.irq_coalesce == 0) {
        irq_.raise(vector);
        return;
    }
    // Coalesced mode: one MSI per window per pair, batching whatever
    // completions accumulate in that CQ meanwhile.
    if (q == nullptr || q->irq_pending)
        return;
    q->irq_pending = true;
    simulator_.schedule_in_lane(
        c.lane, config_.irq_coalesce, [this, fn, qid, vector]() {
            FunctionContext &fc = ctx(fn);
            if (Qp *fq = qp(fc, qid); fq != nullptr)
                fq->irq_pending = false;
            if (fc.active)
                irq_.raise(vector);
        });
    metrics_.bump("irqs_coalesced");
}

// --------------------------------------------------------------------
// Error containment
// --------------------------------------------------------------------

void
Controller::arm_watchdog(pcie::FunctionId fn)
{
    FunctionContext &c = ctx(fn);
    if (c.watchdog_ns == 0 || c.watchdog_armed || c.pending.empty())
        return;
    // One timer per function, aimed at the oldest command's deadline.
    sim::Time earliest = ~sim::Time{0};
    for (const auto &[tag, ref] : c.pending)
        earliest = std::min(earliest, cmd_arena_.get(ref)->t_start);
    // Saturate: a deadline past the end of time must never wrap into
    // the past and spin the fire/rearm pair at a single timestamp.
    const sim::Time deadline =
        earliest > ~sim::Time{0} - c.watchdog_ns ? ~sim::Time{0}
                                                 : earliest + c.watchdog_ns;
    const sim::Time expiry = std::max(deadline, simulator_.now());
    c.watchdog_armed = true;
    simulator_.schedule_at_lane(c.lane, expiry,
                                [this, fn]() { watchdog_fire(fn); });
}

void
Controller::watchdog_fire(pcie::FunctionId fn)
{
    FunctionContext &c = ctx(fn);
    c.watchdog_armed = false;
    if (!c.active || c.watchdog_ns == 0)
        return;
    const sim::Time now = simulator_.now();
    std::vector<std::uint64_t> expired;
    for (const auto &[tag, ref] : c.pending)
        if (now - cmd_arena_.get(ref)->t_start >= c.watchdog_ns)
            expired.push_back(tag);
    for (std::uint64_t tag : expired)
        abort_command(fn, tag);
    arm_watchdog(fn); // younger commands keep their own deadline
    pump();
}

void
Controller::abort_command(pcie::FunctionId fn, std::uint64_t tag)
{
    FunctionContext &c = ctx(fn);
    auto it = c.pending.find(tag);
    if (it == c.pending.end())
        return;
    const std::uint16_t qid = cmd_arena_.get(it->second)->qid;
    // Tear down every queued copy of the command; blocks already in
    // the transfer stage drop on completion via the pending-map miss.
    for (const QpRef &qref : c.qps)
        if (Qp *q = qp_arena_.get(qref))
            c.queued_ops -= q->staging.erase_if(
                [tag](const BlockOp &op) { return op.tag == tag; });
    c.stalled_ops.erase_if(
        [tag](const BlockOp &op) { return op.tag == tag; });
    purge_shared_queues(fn, tag);
    cmd_arena_.release(it->second);
    c.pending.erase(it);
    ++c.stats.aborted_ops;
    metrics_.bump("aborted_ops");
    tracer_.instant(obs::Stage::kAbort, fn, simulator_.now(), tag);
    update_arb_eligibility(fn);
    // Fault state (if any) stays latched: an abort is a deadline miss,
    // not a recovery — the hypervisor services the fault or the driver
    // escalates to a function-level reset.
    enqueue_completion(fn, qid, tag, CompletionStatus::kAborted);
}

void
Controller::function_level_reset(pcie::FunctionId fn)
{
    FunctionContext &c = ctx(fn);
    if (!c.active)
        return;
    purge_shared_queues(fn, std::nullopt);
    // Extra pairs are destroyed, pair 0 survives with cleared state
    // (pending kAborted completions die with their queues); the PF-
    // owned qp_quota and rate-limit bucket survive the reset.
    reset_queue_pairs(c);
    c.queued_ops = 0;
    c.rr_qp_cursor = 0;
    c.arb_deficit = 0;
    c.stalled_ops.clear();
    // In-flight transfers drop on the stale command-handle miss.
    for (const auto &[tag, ref] : c.pending)
        cmd_arena_.release(ref);
    c.pending.clear();
    c.fault = FaultKind::kNone;
    c.miss_address = 0;
    c.miss_size = 0;
    c.qp_select = 0;
    c.qp_status = 0;
    c.qp_sq_latch = pcie::kNullHostAddr;
    c.qp_cq_latch = pcie::kNullHostAddr;
    c.qp_irq_latch = 0;
    c.watchdog_ns = 0;
    c.watchdog_armed = false;
    btlb_.flush_function(fn);
    node_cache_.invalidate_function(fn);
    // In-flight walks for this fn carry ops of torn-down commands;
    // cancel them (the replayed ops then drop on the pending miss).
    ++c.tree_generation;
    ++c.stats.fn_resets;
    metrics_.bump("fn_resets");
    update_arb_eligibility(fn);
    pump();
}

void
Controller::purge_shared_queues(pcie::FunctionId fn,
                                std::optional<std::uint64_t> tag)
{
    auto match = [fn, tag](const BlockOp &op) {
        return op.fn == fn && (!tag || op.tag == *tag);
    };
    vlba_queue_.erase_if(match);
    plba_queue_.erase_if(
        [&](const auto &entry) { return match(entry.first); });
}

void
Controller::enable_tracing(std::size_t capacity)
{
    tracer_.enable(capacity);
    dma_.set_tracer(&tracer_);
    dma_.link().set_observer(&link_observer_);
}

void
Controller::disable_tracing()
{
    tracer_.disable();
    dma_.set_tracer(nullptr);
    dma_.link().set_observer(nullptr);
}

void
Controller::assign_function_lane(FunctionContext &c, pcie::FunctionId fn)
{
    if (!shared_lanes_.empty()) {
        c.lane = shared_lanes_[fn % shared_lanes_.size()];
        return;
    }
    // Lane-per-function mode (the default): each function's command
    // lifecycle events sort within a private heap; order across
    // functions is settled by the top-level selector on (when, seq).
    c.lane = simulator_.register_lane();
}

void
Controller::retire_function_lane(FunctionContext &c)
{
    if (shared_lanes_.empty() && c.lane != sim::Simulator::kDefaultLane)
        simulator_.release_lane(c.lane);
    c.lane = sim::Simulator::kDefaultLane;
}

bool
Controller::function_quiescent(pcie::FunctionId fn) const
{
    const FunctionContext &c = contexts_[fn];
    if (c.queued_ops != 0 || !c.stalled_ops.empty() ||
        !c.pending.empty())
        return false;
    for (const QpRef &qref : c.qps) {
        const Qp *q = qp_arena_.get(qref);
        if (q != nullptr && q->fetch_in_progress)
            return false;
    }
    for (const BlockOp &op : vlba_queue_)
        if (op.fn == fn)
            return false;
    for (const auto &[op, plba] : plba_queue_)
        if (op.fn == fn)
            return false;
    return true;
}

} // namespace nesc::ctrl
