/**
 * @file
 * Dirty-extent log for replica resynchronization.
 *
 * Every replicated write is logged against each target backend when it
 * is submitted and cleared when that backend acknowledges it durable.
 * A healthy backend's log therefore holds only its in-flight window;
 * the log of a crashed or demoted backend keeps accumulating — it is
 * exactly the set of blocks that backend may have missed, and the
 * background resync engine drains it range by range. Tracking from
 * submission (not from the failure) means a backend that dies with
 * writes in flight needs no guesswork about which of them landed:
 * anything unacknowledged is re-copied.
 *
 * Ranges are kept merged and disjoint, so the log is O(fragments), not
 * O(blocks), and resync batches walk it in address order.
 */
#ifndef NESC_REPL_DIRTY_LOG_H
#define NESC_REPL_DIRTY_LOG_H

#include <cstdint>
#include <map>
#include <optional>
#include <utility>

namespace nesc::repl {

/** Merged, disjoint set of dirty block ranges; see file comment. */
class DirtyLog {
  public:
    /** One dirty range: first block and block count. */
    struct Range {
        std::uint64_t first = 0;
        std::uint64_t count = 0;
    };

    /** Marks [first, first + count) dirty (merging neighbours). */
    void
    add(std::uint64_t first, std::uint64_t count)
    {
        if (count == 0)
            return;
        std::uint64_t lo = first;
        std::uint64_t hi = first + count;
        // Absorb any range that overlaps or abuts [lo, hi).
        auto it = ranges_.upper_bound(lo);
        if (it != ranges_.begin()) {
            auto prev = std::prev(it);
            if (prev->first + prev->second >= lo)
                it = prev;
        }
        while (it != ranges_.end() && it->first <= hi) {
            lo = std::min(lo, it->first);
            hi = std::max(hi, it->first + it->second);
            total_ -= it->second;
            it = ranges_.erase(it);
        }
        ranges_[lo] = hi - lo;
        total_ += hi - lo;
    }

    /** Clears [first, first + count); splits ranges as needed. */
    void
    remove(std::uint64_t first, std::uint64_t count)
    {
        if (count == 0)
            return;
        const std::uint64_t lo = first;
        const std::uint64_t hi = first + count;
        auto it = ranges_.lower_bound(lo);
        if (it != ranges_.begin()) {
            auto prev = std::prev(it);
            if (prev->first + prev->second > lo)
                it = prev;
        }
        while (it != ranges_.end() && it->first < hi) {
            const std::uint64_t r_lo = it->first;
            const std::uint64_t r_hi = it->first + it->second;
            total_ -= it->second;
            it = ranges_.erase(it);
            if (r_lo < lo) {
                ranges_[r_lo] = lo - r_lo;
                total_ += lo - r_lo;
            }
            if (r_hi > hi) {
                ranges_[hi] = r_hi - hi;
                total_ += r_hi - hi;
            }
        }
    }

    /** True when [first, first + count) is fully dirty. */
    bool
    covers(std::uint64_t first, std::uint64_t count) const
    {
        if (count == 0)
            return true;
        auto it = ranges_.upper_bound(first);
        if (it == ranges_.begin())
            return false;
        --it;
        return it->first <= first &&
               it->first + it->second >= first + count;
    }

    /** True when any block of [first, first + count) is dirty. */
    bool
    intersects(std::uint64_t first, std::uint64_t count) const
    {
        if (count == 0)
            return false;
        auto it = ranges_.upper_bound(first);
        if (it != ranges_.end() && it->first < first + count)
            return true;
        if (it == ranges_.begin())
            return false;
        --it;
        return it->first + it->second > first;
    }

    /**
     * Lowest-addressed dirty range, clipped to @p max_blocks; empty
     * optional when the log is clean.
     */
    std::optional<Range>
    first(std::uint64_t max_blocks) const
    {
        if (ranges_.empty() || max_blocks == 0)
            return std::nullopt;
        const auto &[lo, count] = *ranges_.begin();
        return Range{lo, std::min(count, max_blocks)};
    }

    bool empty() const { return ranges_.empty(); }
    /** Total dirty blocks across all ranges. */
    std::uint64_t total_blocks() const { return total_; }
    /** Number of disjoint ranges (fragmentation metric). */
    std::size_t range_count() const { return ranges_.size(); }

    void
    clear()
    {
        ranges_.clear();
        total_ = 0;
    }

  private:
    std::map<std::uint64_t, std::uint64_t> ranges_; ///< first -> count
    std::uint64_t total_ = 0;
};

} // namespace nesc::repl

#endif // NESC_REPL_DIRTY_LOG_H
