#include "replica_set.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace nesc::repl {

ReplicaSet::ReplicaSet(sim::Simulator &simulator,
                       const ReplicaSetConfig &config)
    : simulator_(simulator), config_(config)
{
    if (config_.quorum == 0)
        config_.quorum = 1;
}

ReplicaSet::~ReplicaSet() = default;

std::size_t
ReplicaSet::add_backend(storage::BlockDevice &media,
                        const BackendConfig &config)
{
    assert(backends_.size() < 64 && "tried_mask is a 64-bit bitmap");
    backends_.push_back(std::make_unique<Backend>(media, config));
    return backends_.size() - 1;
}

std::uint64_t
ReplicaSet::data_blocks() const
{
    std::uint64_t blocks = 0;
    for (const auto &b : backends_)
        blocks = blocks == 0 ? b->store.data_blocks()
                             : std::min(blocks, b->store.data_blocks());
    return blocks;
}

void
ReplicaSet::set_quorum(std::uint32_t quorum)
{
    // Clamp to [1, backend_count]: this is reachable from the PF
    // kReplQuorum register, and a value above the backend count would
    // make quorum permanently unreachable (every write fails fast).
    if (quorum == 0)
        quorum = 1;
    if (!backends_.empty() && quorum > backends_.size())
        quorum = static_cast<std::uint32_t>(backends_.size());
    config_.quorum = quorum;
}

void
ReplicaSet::set_read_timeout(sim::Duration timeout)
{
    config_.read_timeout = timeout;
}

// ---------------------------------------------------------------------------
// Write path: fan out, journal at each target, ack at quorum.

void
ReplicaSet::write(std::uint64_t first_block, std::span<const std::byte> data,
                  Done done)
{
    auto write = std::make_shared<PendingWrite>();
    write->done = std::move(done);
    write->first_block = first_block;
    write->resolved.assign(backends_.size(), 0);

    const std::uint32_t block_size =
        backends_.empty() ? 1 : backends_.front()->store.block_size();
    if (backends_.empty() || data.empty() ||
        data.size() % block_size != 0) {
        simulator_.schedule_in(0, [write]() {
            write->done(util::invalid_argument_error(
                "replicated write must be whole blocks"));
        });
        return;
    }
    write->count = data.size() / block_size;
    if (first_block + write->count > data_blocks()) {
        simulator_.schedule_in(0, [write]() {
            write->done(
                util::out_of_range_error("replicated write out of range"));
        });
        return;
    }
    write->payload.assign(data.begin(), data.end());

    const sim::Time now = simulator_.now();
    const std::uint64_t bytes = data.size();
    for (std::size_t i = 0; i < backends_.size(); ++i) {
        Backend &b = *backends_[i];
        // Every submitted write is marked dirty until that backend
        // acks it durable; a down backend just accumulates debt for
        // resync to repay.
        b.dirty.add(first_block, write->count);
        if (b.state == BackendState::kDown)
            continue;
        ++write->targets;
        const std::uint64_t generation = b.generation;
        if (!b.crashed) {
            // Request data crosses the link, the journaled store makes
            // it durable, and a (small) ack rides one latency back.
            sim::Time t = b.link.acquire(now, bytes);
            t = b.store.service_write(t, first_block, bytes);
            t += b.link.latency();
            simulator_.schedule_at(t, [this, i, generation, write]() {
                on_write_ack(i, generation, write);
            });
        }
        // A crashed backend never answers; this deadline settles it.
        simulator_.schedule_at(now + config_.write_timeout,
                               [this, i, write]() {
                                   on_write_timeout(i, write);
                               });
    }
    settle_write(write); // fails fast when quorum is already unreachable
}

void
ReplicaSet::on_write_ack(std::size_t index, std::uint64_t generation,
                         const std::shared_ptr<PendingWrite> &write)
{
    Backend &b = *backends_[index];
    if (b.crashed || b.generation != generation) {
        // Ack from before a crash or demotion: the data may not be
        // durable; leave the dirty marker for resync and let the
        // timeout event settle the target.
        return;
    }
    if (write->resolved[index]) {
        // The timeout settled this target first, but the backend is
        // alive and the data did land. Apply it anyway and clear the
        // dirty marker: a backend that never leaves kHealthy is never
        // resynced, so dropping this ack would leave one slow write
        // silently divergent on it forever.
        if (b.store.write_blocks(write->first_block, write->payload)
                .is_ok())
            b.dirty.remove(write->first_block, write->count);
        return;
    }
    write->resolved[index] = 1;
    // Functional apply happens at ack time — and even after quorum has
    // been reported, so slow backends still converge.
    util::Status status =
        b.store.write_blocks(write->first_block, write->payload);
    if (status.is_ok()) {
        b.dirty.remove(write->first_block, write->count);
        ++write->acks;
    } else {
        ++b.errors;
        ++write->fails;
        note_health_event(index);
    }
    settle_write(write);
}

void
ReplicaSet::on_write_timeout(std::size_t index,
                             const std::shared_ptr<PendingWrite> &write)
{
    if (write->resolved[index])
        return; // the ack beat the deadline: nothing to do
    write->resolved[index] = 1;
    Backend &b = *backends_[index];
    ++b.timeouts;
    ++write->fails;
    // The write may or may not have landed; keep (re-add) the dirty
    // marker so resync re-copies the range either way.
    b.dirty.add(write->first_block, write->count);
    note_health_event(index);
    settle_write(write);
}

void
ReplicaSet::settle_write(const std::shared_ptr<PendingWrite> &write)
{
    if (write->completed)
        return;
    const std::uint32_t need = config_.quorum;
    if (write->acks >= need) {
        write->completed = true;
        ++writes_acked_;
        simulator_.schedule_in(0, [write]() {
            write->done(util::Status::ok());
        });
        return;
    }
    const std::uint32_t unresolved =
        write->targets - write->acks - write->fails;
    if (write->acks + unresolved < need) {
        write->completed = true;
        ++writes_failed_;
        simulator_.schedule_in(0, [write]() {
            write->done(util::unavailable_error(
                "write quorum unreachable"));
        });
    }
}

// ---------------------------------------------------------------------------
// Read path: route to the least-suspect backend, fail over on
// timeout/error.

void
ReplicaSet::read(std::uint64_t first_block, std::span<std::byte> out,
                 Done done)
{
    read_tracked(first_block, out,
                 [done = std::move(done)](util::Status status,
                                          int /*backend*/) {
                     done(std::move(status));
                 });
}

void
ReplicaSet::read_tracked(std::uint64_t first_block,
                         std::span<std::byte> out, ReadDone done)
{
    auto read = std::make_shared<PendingRead>();
    read->out = out;
    read->first_block = first_block;
    read->done = std::move(done);

    const std::uint32_t block_size =
        backends_.empty() ? 1 : backends_.front()->store.block_size();
    if (backends_.empty() || out.empty() || out.size() % block_size != 0 ||
        first_block + out.size() / block_size > data_blocks()) {
        simulator_.schedule_in(0, [read]() {
            read->done(
                util::out_of_range_error("replicated read out of range"),
                -1);
        });
        return;
    }
    issue_read(read);
}

void
ReplicaSet::read_from(std::size_t index, std::uint64_t first_block,
                      std::span<std::byte> out, Done done)
{
    if (index >= backends_.size()) {
        simulator_.schedule_in(0, [done = std::move(done)]() {
            done(util::out_of_range_error("no such backend"));
        });
        return;
    }
    Backend &b = *backends_[index];
    const std::uint32_t block_size = b.store.block_size();
    const std::uint64_t count =
        block_size == 0 ? 0 : out.size() / block_size;
    if (b.crashed || b.state == BackendState::kDown ||
        b.dirty.intersects(first_block, count)) {
        simulator_.schedule_in(0, [done = std::move(done)]() {
            done(util::unavailable_error(
                "backend unavailable or stale over range"));
        });
        return;
    }
    const std::uint64_t generation = b.generation;
    sim::Time t = b.store.service_read(simulator_.now() + b.link.latency(),
                                       first_block, out.size());
    t = b.link.acquire(t, out.size());
    simulator_.schedule_at(t, [this, index, generation, first_block, out,
                               done = std::move(done)]() {
        Backend &backend = *backends_[index];
        if (backend.crashed || backend.generation != generation) {
            done(util::unavailable_error("backend lost mid-read"));
            return;
        }
        done(backend.store.read_blocks(first_block, out));
    });
}

util::Status
ReplicaSet::scrub_read(std::size_t index, std::uint64_t first_block,
                       std::span<std::byte> out)
{
    if (index >= backends_.size())
        return util::out_of_range_error("no such backend");
    Backend &b = *backends_[index];
    const std::uint32_t block_size = b.store.block_size();
    const std::uint64_t count =
        block_size == 0 ? 0 : out.size() / block_size;
    if (b.crashed || b.state == BackendState::kDown ||
        b.dirty.intersects(first_block, count))
        return util::unavailable_error(
            "backend unavailable or stale over range");
    return b.store.read_blocks(first_block, out);
}

util::Status
ReplicaSet::repair_blocks(std::size_t index, std::uint64_t first_block,
                          std::span<const std::byte> data)
{
    if (index >= backends_.size())
        return util::out_of_range_error("no such backend");
    Backend &b = *backends_[index];
    const std::uint32_t block_size = b.store.block_size();
    if (data.empty() || data.size() % block_size != 0)
        return util::invalid_argument_error(
            "repair must be whole blocks");
    NESC_RETURN_IF_ERROR(b.store.write_blocks(first_block, data));
    b.dirty.remove(first_block, data.size() / block_size);
    ++repairs_;
    return util::Status::ok();
}

void
ReplicaSet::issue_read(const std::shared_ptr<PendingRead> &read)
{
    const std::uint32_t block_size = backends_.front()->store.block_size();
    const std::uint64_t count = read->out.size() / block_size;

    // Candidates: healthy backends, plus resyncing ones whose dirty
    // log does not cover the range (their copy of it is current).
    // A healthy backend whose dirty log intersects the range has an
    // in-flight write against it that another backend may already have
    // acked — serving from it could return stale pre-write data — so
    // clean backends win over dirty ones, and dirty-but-healthy ones
    // are only a last resort. Within a class, prefer the backend with
    // the cleanest recent health record; break ties by index for
    // determinism.
    int best = -1;
    std::size_t best_events = 0;
    bool best_clean = false;
    for (std::size_t i = 0; i < backends_.size(); ++i) {
        if (read->tried_mask & (1ULL << i))
            continue;
        const Backend &b = *backends_[i];
        if (b.state == BackendState::kDown)
            continue;
        const bool dirty = b.dirty.intersects(read->first_block, count);
        if (b.state == BackendState::kResyncing && dirty)
            continue; // genuinely stale: resync has not copied it yet
        const bool clean = !dirty;
        const std::size_t events = b.health_events.size();
        if (best < 0 || (clean && !best_clean) ||
            (clean == best_clean && events < best_events)) {
            best = static_cast<int>(i);
            best_events = events;
            best_clean = clean;
        }
    }
    if (best < 0) {
        // Settle the read before scheduling the callback: a still-
        // pending event for the last attempt (late media completion or
        // its timeout) passes the attempt guard and would re-enter
        // here, double-firing done().
        read->completed = true;
        ++reads_failed_;
        simulator_.schedule_in(0, [read]() {
            read->done(
                util::unavailable_error("no healthy backend for read"),
                -1);
        });
        return;
    }

    const std::size_t index = static_cast<std::size_t>(best);
    read->tried_mask |= 1ULL << index;
    const std::uint64_t attempt = ++read->attempt;
    Backend &b = *backends_[index];
    const std::uint64_t generation = b.generation;
    const sim::Time now = simulator_.now();
    const std::uint64_t bytes = read->out.size();

    if (!b.crashed) {
        // Request rides one link latency out; data pays for media and
        // the return trip's bandwidth.
        sim::Time t = b.store.service_read(now + b.link.latency(),
                                           read->first_block, bytes);
        t = b.link.acquire(t, bytes);
        simulator_.schedule_at(
            t, [this, index, generation, attempt, read]() {
                if (read->completed || read->attempt != attempt)
                    return; // superseded by a failover
                Backend &backend = *backends_[index];
                if (backend.crashed ||
                    backend.generation != generation) {
                    ++failovers_;
                    issue_read(read);
                    return;
                }
                util::Status status = backend.store.read_blocks(
                    read->first_block, read->out);
                if (status.is_ok()) {
                    read->completed = true;
                    ++reads_served_;
                    read->done(util::Status::ok(),
                               static_cast<int>(index));
                    return;
                }
                ++backend.errors;
                note_health_event(index);
                ++failovers_;
                issue_read(read);
            });
    }
    simulator_.schedule_at(
        now + config_.read_timeout, [this, index, attempt, read]() {
            if (read->completed || read->attempt != attempt)
                return; // answered (or already failed over)
            Backend &backend = *backends_[index];
            ++backend.timeouts;
            note_health_event(index);
            ++failovers_;
            issue_read(read);
        });
}

// ---------------------------------------------------------------------------
// Health tracking and demotion.

void
ReplicaSet::note_health_event(std::size_t index)
{
    Backend &b = *backends_[index];
    const sim::Time now = simulator_.now();
    const sim::Time horizon =
        now >= config_.health_window ? now - config_.health_window : 0;
    b.health_events.push_back(now);
    while (!b.health_events.empty() && b.health_events.front() < horizon)
        b.health_events.pop_front();
    if (b.state != BackendState::kDown &&
        b.health_events.size() >= config_.demote_threshold)
        demote_backend(index);
}

void
ReplicaSet::demote_backend(std::size_t index)
{
    Backend &b = *backends_[index];
    if (b.state == BackendState::kDown)
        return;
    b.state = BackendState::kDown;
    ++b.generation;   // drops in-flight acks to this backend
    ++b.resync_epoch; // cancels a resync loop if one was running
    b.health_events.clear();
    ++demotions_;
    if (demotion_hook_)
        demotion_hook_(index);
}

void
ReplicaSet::crash_backend(std::size_t index)
{
    backends_[index]->crashed = true;
}

void
ReplicaSet::revive_backend(std::size_t index)
{
    Backend &b = *backends_[index];
    if (!b.crashed && b.state == BackendState::kHealthy)
        return;
    b.crashed = false;
    // Journal recovery first: committed-but-torn transactions are
    // re-applied, torn ones rolled back, so resync starts from a
    // consistent (if stale) store.
    (void)b.store.recover();
    // Catch up if the backend missed anything — including the case
    // where the crash was too brief to trigger demotion but writes
    // timed out against it (their dirty markers are still set).
    if (b.state != BackendState::kHealthy || !b.dirty.empty())
        start_resync(index);
}

void
ReplicaSet::start_resync(std::size_t index)
{
    Backend &b = *backends_[index];
    if (b.crashed)
        return;
    b.state = BackendState::kResyncing;
    b.health_events.clear();
    const std::uint64_t epoch = ++b.resync_epoch;
    simulator_.schedule_in(config_.resync_interval,
                           [this, index, epoch]() {
                               resync_tick(index, epoch);
                           });
}

int
ReplicaSet::pick_resync_source(std::size_t target) const
{
    for (std::size_t i = 0; i < backends_.size(); ++i) {
        if (i == target)
            continue;
        const Backend &b = *backends_[i];
        if (b.state == BackendState::kHealthy && !b.crashed)
            return static_cast<int>(i);
    }
    return -1;
}

void
ReplicaSet::resync_tick(std::size_t index, std::uint64_t epoch)
{
    Backend &b = *backends_[index];
    if (epoch != b.resync_epoch || b.state != BackendState::kResyncing)
        return; // cancelled (demotion or re-crash)
    if (b.crashed) {
        b.state = BackendState::kDown;
        return;
    }
    const auto range = b.dirty.first(config_.resync_batch_blocks);
    if (!range) {
        // Dirty log drained: the backend is current again.
        b.state = BackendState::kHealthy;
        b.health_events.clear();
        ++resyncs_completed_;
        return;
    }
    const int source = pick_resync_source(index);
    if (source < 0) {
        // No peer to copy from right now; keep the loop alive.
        simulator_.schedule_in(config_.resync_interval,
                               [this, index, epoch]() {
                                   resync_tick(index, epoch);
                               });
        return;
    }

    // Book the copy: source media read, target link, journaled target
    // write. Foreground I/O shares these resources, which is exactly
    // the interference the bench measures.
    Backend &src = *backends_[static_cast<std::size_t>(source)];
    const std::uint32_t block_size = b.store.block_size();
    const std::uint64_t bytes = range->count * block_size;
    sim::Time t =
        src.store.service_read(simulator_.now(), range->first, bytes);
    t = b.link.acquire(t, bytes);
    t = b.store.service_write(t, range->first, bytes);
    simulator_.schedule_at(t, [this, index, epoch, source,
                               first = range->first,
                               count = range->count]() {
        Backend &backend = *backends_[index];
        if (epoch != backend.resync_epoch ||
            backend.state != BackendState::kResyncing)
            return;
        if (backend.crashed) {
            backend.state = BackendState::kDown;
            return;
        }
        Backend &peer = *backends_[static_cast<std::size_t>(source)];
        if (peer.crashed || peer.state != BackendState::kHealthy) {
            // Source died mid-copy; retry the batch from another peer.
            simulator_.schedule_in(config_.resync_interval,
                                   [this, index, epoch]() {
                                       resync_tick(index, epoch);
                                   });
            return;
        }
        // Apply functionally at completion time, block by block,
        // re-checking dirtiness: a foreground write that acked on this
        // backend meanwhile already delivered newer data and cleared
        // the marker — skip those blocks rather than regress them.
        const std::uint32_t block_size = backend.store.block_size();
        std::vector<std::byte> buffer(block_size);
        for (std::uint64_t blk = first; blk < first + count; ++blk) {
            if (!backend.dirty.covers(blk, 1))
                continue;
            if (!peer.store.read_blocks(blk, buffer).is_ok())
                continue; // peer error: leave dirty, retry next batch
            if (!backend.store.write_blocks(blk, buffer).is_ok())
                continue;
            backend.dirty.remove(blk, 1);
            ++backend.resync_copied_blocks;
        }
        simulator_.schedule_in(config_.resync_interval,
                               [this, index, epoch]() {
                                   resync_tick(index, epoch);
                               });
    });
}

// ---------------------------------------------------------------------------
// Introspection.

util::Result<bool>
ReplicaSet::verify_equal(std::size_t a, std::size_t b)
{
    Backend &lhs = *backends_[a];
    Backend &rhs = *backends_[b];
    const std::uint64_t blocks = std::min(lhs.store.data_blocks(),
                                          rhs.store.data_blocks());
    const std::uint32_t block_size = lhs.store.block_size();
    std::vector<std::byte> lbuf(block_size);
    std::vector<std::byte> rbuf(block_size);
    for (std::uint64_t blk = 0; blk < blocks; ++blk) {
        NESC_RETURN_IF_ERROR(lhs.store.read_blocks(blk, lbuf));
        NESC_RETURN_IF_ERROR(rhs.store.read_blocks(blk, rbuf));
        if (std::memcmp(lbuf.data(), rbuf.data(), block_size) != 0)
            return false;
    }
    return true;
}

BackendState
ReplicaSet::backend_state(std::size_t index) const
{
    return backends_[index]->state;
}

bool
ReplicaSet::backend_crashed(std::size_t index) const
{
    return backends_[index]->crashed;
}

std::uint64_t
ReplicaSet::dirty_blocks(std::size_t index) const
{
    return backends_[index]->dirty.total_blocks();
}

std::uint64_t
ReplicaSet::backend_timeouts(std::size_t index) const
{
    return backends_[index]->timeouts;
}

std::uint64_t
ReplicaSet::backend_errors(std::size_t index) const
{
    return backends_[index]->errors;
}

std::uint64_t
ReplicaSet::resync_copied(std::size_t index) const
{
    return backends_[index]->resync_copied_blocks;
}

const JournaledBlockstore &
ReplicaSet::blockstore(std::size_t index) const
{
    return backends_[index]->store;
}

} // namespace nesc::repl
