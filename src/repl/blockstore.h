/**
 * @file
 * Journaled per-replica blockstore.
 *
 * Each replication backend wraps its media in a JournaledBlockstore so
 * a crash mid-write never exposes torn state to resync: every write
 * walks a four-state machine —
 *
 *   in-flight  : accepted, nothing durable yet
 *   submitted  : descriptor + payload staged in the journal ring
 *   synced     : commit record durable (the write now survives a crash)
 *   stable     : checkpointed in place, journal space reclaimable
 *
 * The on-media format mirrors `fs/journal.h` (descriptor block with
 * target list, payload blocks, commit record with payload checksum,
 * then in-place checkpoint; transactions never wrap across the ring
 * boundary) but lives at device-block granularity in a reserved region
 * at the *end* of the backing device, so the data region keeps its
 * zero-based addressing. `recover()` replays every committed-but-
 * possibly-torn transaction in ascending txn order and stops at the
 * first torn or stale record — exactly the fs replay contract — which
 * makes a kill-at-every-write sweep over this store converge to
 * all-or-nothing block contents.
 *
 * The timing path charges the honest write amplification: a journaled
 * write books descriptor + payload + commit + checkpoint on the media
 * port in sequence.
 */
#ifndef NESC_REPL_BLOCKSTORE_H
#define NESC_REPL_BLOCKSTORE_H

#include <cstdint>
#include <span>

#include "sim/time.h"
#include "storage/block_device.h"
#include "util/status.h"

namespace nesc::repl {

/** Journal descriptor-block header ("NescRplD"). */
inline constexpr std::uint64_t kReplDescMagic = 0x4473'6c70'5263'7365;
/** Journal commit-record magic ("NescRplC"). */
inline constexpr std::uint64_t kReplCommitMagic = 0x4373'6c70'5263'7365;

/** On-media descriptor header; target block numbers follow. */
struct ReplDescHeader {
    std::uint64_t magic = 0;
    std::uint32_t count = 0;
    std::uint32_t reserved = 0;
    std::uint64_t txn_id = 0;
};

/** On-media commit record. */
struct ReplCommitRecord {
    std::uint64_t magic = 0;
    std::uint64_t txn_id = 0;
    std::uint64_t checksum = 0;
};

/** Write-ahead-journaled replica store; see file comment. */
class JournaledBlockstore {
  public:
    /**
     * @param media backing device (not owned). The last
     *   @p journal_blocks device blocks become the journal ring; the
     *   rest is the data region.
     */
    JournaledBlockstore(storage::BlockDevice &media,
                        std::uint64_t journal_blocks);

    std::uint32_t block_size() const { return block_size_; }
    /** Usable data blocks (capacity minus the journal ring). */
    std::uint64_t data_blocks() const { return data_blocks_; }

    /**
     * Journaled write of whole blocks: stages @p data (a multiple of
     * the block size) at data block @p first_block through the
     * descriptor/payload/commit/checkpoint sequence. On return the
     * write is stable.
     */
    util::Status write_blocks(std::uint64_t first_block,
                              std::span<const std::byte> data);

    /** Functional read from the data region. */
    util::Status read_blocks(std::uint64_t first_block,
                             std::span<std::byte> out);

    /**
     * Timing for a journaled write eligible at @p start: chains the
     * descriptor, payload, commit and checkpoint media writes and
     * returns when the checkpoint lands. (Durability — the synced
     * state — is reached one media write earlier; the controller acks
     * on full completion, which is conservative.)
     */
    sim::Time service_write(sim::Time start, std::uint64_t first_block,
                            std::uint64_t bytes);

    /** Timing for a data-region read (straight pass-through). */
    sim::Time service_read(sim::Time start, std::uint64_t first_block,
                           std::uint64_t bytes);

    /**
     * Crash recovery: replays every complete journal transaction in
     * ascending txn order, stopping at the first torn or stale record.
     * Idempotent. Returns the number of transactions replayed.
     */
    util::Result<std::uint64_t> recover();

    /// @name Write state-machine counters (monotonic).
    /// @{
    std::uint64_t writes_started() const { return writes_started_; }
    std::uint64_t writes_submitted() const { return writes_submitted_; }
    std::uint64_t writes_synced() const { return writes_synced_; }
    std::uint64_t writes_stable() const { return writes_stable_; }
    /// @}
    std::uint64_t recoveries() const { return recoveries_; }
    std::uint64_t txns_replayed() const { return txns_replayed_; }

  private:
    /** Absolute byte offset of journal-ring slot @p index (wraps). */
    std::uint64_t ring_offset(std::uint64_t index) const
    {
        return (data_blocks_ + index % journal_blocks_) * block_size_;
    }
    /** Most target block numbers one descriptor block can list. */
    std::uint64_t max_targets() const
    {
        return (block_size_ - sizeof(ReplDescHeader)) /
               sizeof(std::uint64_t);
    }
    util::Status commit_txn(std::uint64_t first_block,
                            std::span<const std::byte> data);

    storage::BlockDevice &media_;
    std::uint32_t block_size_;
    std::uint64_t journal_blocks_;
    std::uint64_t data_blocks_;
    std::uint64_t cursor_ = 0; ///< ring write position (journal-relative)
    std::uint64_t next_txn_id_ = 1;

    std::uint64_t writes_started_ = 0;
    std::uint64_t writes_submitted_ = 0;
    std::uint64_t writes_synced_ = 0;
    std::uint64_t writes_stable_ = 0;
    std::uint64_t recoveries_ = 0;
    std::uint64_t txns_replayed_ = 0;
};

} // namespace nesc::repl

#endif // NESC_REPL_BLOCKSTORE_H
