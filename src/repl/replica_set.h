/**
 * @file
 * Primary-replica storage set with quorum writes, read failover, and
 * background resync.
 *
 * A ReplicaSet mirrors the controller's media traffic across 2-3
 * simulated backends, each reached over its own latency/bandwidth-
 * modelled link (`sim::BandwidthServer`) and fronted by a
 * `JournaledBlockstore` so a backend crash mid-write never leaves torn
 * blocks behind. The design follows the vitastor-style OSD split the
 * ROADMAP calls for: replication policy lives *under* the controller
 * (FlexBSO's argument), invisible to guests.
 *
 * Writes fan out to every serving backend and ack to the caller once a
 * PF-configurable quorum of backends has made the data durable; each
 * target is marked in the backend's dirty-extent log at submission and
 * cleared on its ack, so the log of a dead backend is exactly its
 * catch-up set. Reads are routed to the least-suspect healthy backend
 * and fail over on timeout or media error; repeated health events
 * inside a sliding window demote a backend automatically. A demoted
 * backend that comes back is resynced in the background — batches of
 * the dirty log are copied from a healthy peer while foreground I/O
 * continues (and keeps mirroring to the recovering backend) — until
 * the log drains and the backend is promoted to healthy again.
 *
 * Crashes are injected with crash_backend(): the backend silently
 * stops answering (no failure notification — detection must happen
 * organically through ack/read timeouts, like a real fabric).
 */
#ifndef NESC_REPL_REPLICA_SET_H
#define NESC_REPL_REPLICA_SET_H

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "repl/blockstore.h"
#include "repl/dirty_log.h"
#include "sim/bandwidth_server.h"
#include "sim/simulator.h"
#include "storage/block_device.h"
#include "util/status.h"

namespace nesc::repl {

/** Per-backend shape: link model + journal reservation. */
struct BackendConfig {
    /** Link sustained rate; 0 = infinitely fast. */
    std::uint64_t link_bytes_per_sec = 1'000'000'000;
    /** Fixed one-way link latency (charged on request and response). */
    sim::Duration link_latency = 5'000; // 5 us
    /** Device blocks reserved at the end of the media for the journal. */
    std::uint64_t journal_blocks = 64;
};

/** Set-wide replication policy (PF-tunable at runtime). */
struct ReplicaSetConfig {
    /** Backends that must be durable before a write acks. */
    std::uint32_t quorum = 2;
    /** Read attempt deadline before failing over to the next backend. */
    sim::Duration read_timeout = 2'000'000; // 2 ms
    /** Write ack deadline per target (a dead target resolves here). */
    sim::Duration write_timeout = 2'000'000; // 2 ms
    /** Health events inside the window that trigger demotion. */
    std::uint32_t demote_threshold = 4;
    /** Sliding window for health events. */
    sim::Duration health_window = 50'000'000; // 50 ms
    /** Pause between background resync batches. */
    sim::Duration resync_interval = 100'000; // 100 us
    /** Blocks copied per resync batch. */
    std::uint64_t resync_batch_blocks = 64;
};

/** Serving state of one backend. */
enum class BackendState : std::uint8_t {
    kHealthy = 0,   ///< serving reads and writes
    kDown = 1,      ///< demoted; writes only accumulate in the dirty log
    kResyncing = 2, ///< catching up; mirrors writes, no stale reads
};

/** Replicated multi-backend store; see file comment. */
class ReplicaSet {
  public:
    using Done = std::function<void(util::Status)>;
    /** Completion reporting which backend served (-1 on failure). */
    using ReadDone = std::function<void(util::Status, int backend)>;

    ReplicaSet(sim::Simulator &simulator,
               const ReplicaSetConfig &config = {});
    ~ReplicaSet();

    ReplicaSet(const ReplicaSet &) = delete;
    ReplicaSet &operator=(const ReplicaSet &) = delete;

    /**
     * Adds a backend over @p media (not owned; must outlive the set).
     * Returns its index. Backends must be added before I/O starts.
     */
    std::size_t add_backend(storage::BlockDevice &media,
                            const BackendConfig &config = {});

    /** Usable data blocks: the minimum across backends. */
    std::uint64_t data_blocks() const;

    /**
     * Replicated write of whole device blocks at block @p first_block.
     * @p data is copied internally; @p done fires (possibly on a later
     * simulator event) once a quorum of backends is durable, or with
     * an error when quorum is unreachable.
     */
    void write(std::uint64_t first_block, std::span<const std::byte> data,
               Done done);

    /**
     * Replicated read into @p out, which must stay valid until @p done
     * fires. Routed to the least-suspect healthy backend; fails over on
     * timeout or error until backends are exhausted.
     */
    void read(std::uint64_t first_block, std::span<std::byte> out,
              Done done);

    /**
     * read() variant whose completion also reports the index of the
     * backend that served the data — the controller's verifying read
     * path needs it to know which replica to repair (and which to
     * exclude) when the payload fails its checksum.
     */
    void read_tracked(std::uint64_t first_block, std::span<std::byte> out,
                      ReadDone done);

    /**
     * Timed read of @p out from one specific backend, bypassing
     * routing: the integrity recovery ladder and the scrubber use it
     * to fetch alternate copies for comparison. Fails UNAVAILABLE when
     * the backend is down, crashed, or stale (dirty) over the range —
     * a stale copy must never be used as repair source.
     */
    void read_from(std::size_t index, std::uint64_t first_block,
                   std::span<std::byte> out, Done done);

    /**
     * Writes verified-good data over @p index's copy of the range and
     * clears its dirty marker (functional; the device repairs in line
     * with the read that detected the damage). The repair counter is
     * the scrub/ladder success telemetry.
     */
    util::Status repair_blocks(std::size_t index, std::uint64_t first_block,
                               std::span<const std::byte> data);

    /**
     * Functional (untimed) read of @p index's copy, for the background
     * scrubber: it verifies every backend independently, so routing
     * must not pick for it. Same staleness rules as read_from().
     */
    util::Status scrub_read(std::size_t index, std::uint64_t first_block,
                            std::span<std::byte> out);

    /// @name Fault-injection and management hooks.
    /// @{
    /** Backend stops answering silently (detection via timeouts). */
    void crash_backend(std::size_t index);
    /**
     * Backend comes back: journal recovery runs, then background
     * resync replays its dirty log from a healthy peer.
     */
    void revive_backend(std::size_t index);
    /** Forced demotion (PF management path). */
    void demote_backend(std::size_t index);
    /** Forced resync start on a down backend (PF management path). */
    void start_resync(std::size_t index);
    /// @}

    /**
     * True when backends @p a and @p b hold bit-identical data
     * regions (functional comparison; no timing).
     */
    util::Result<bool> verify_equal(std::size_t a, std::size_t b);

    /// @name Introspection (PF registers, tests, benches).
    /// @{
    std::size_t backend_count() const { return backends_.size(); }
    BackendState backend_state(std::size_t index) const;
    bool backend_crashed(std::size_t index) const;
    std::uint64_t dirty_blocks(std::size_t index) const;
    std::uint64_t backend_timeouts(std::size_t index) const;
    std::uint64_t backend_errors(std::size_t index) const;
    std::uint64_t resync_copied(std::size_t index) const;
    const JournaledBlockstore &blockstore(std::size_t index) const;
    std::uint64_t writes_acked() const { return writes_acked_; }
    std::uint64_t writes_failed() const { return writes_failed_; }
    std::uint64_t reads_served() const { return reads_served_; }
    std::uint64_t reads_failed() const { return reads_failed_; }
    std::uint64_t failovers() const { return failovers_; }
    std::uint64_t demotions() const { return demotions_; }
    std::uint64_t resyncs_completed() const { return resyncs_completed_; }
    std::uint64_t repairs() const { return repairs_; }
    /// @}

    const ReplicaSetConfig &config() const { return config_; }
    void set_quorum(std::uint32_t quorum);
    void set_read_timeout(sim::Duration timeout);

    /**
     * Fires whenever a backend transitions to kDown — health-driven
     * demotions and forced ones alike — with the backend index. The
     * controller uses it to snapshot its flight recorder; replace
     * with nullptr to detach.
     */
    void set_demotion_hook(std::function<void(std::size_t)> hook)
    {
        demotion_hook_ = std::move(hook);
    }

  private:
    /** One backend: link + journaled store + health bookkeeping. */
    struct Backend {
        Backend(storage::BlockDevice &m, const BackendConfig &c)
            : media(&m), link(c.link_bytes_per_sec, c.link_latency),
              store(m, c.journal_blocks)
        {
        }

        storage::BlockDevice *media;
        sim::BandwidthServer link;
        JournaledBlockstore store;
        BackendState state = BackendState::kHealthy;
        bool crashed = false;
        /** Bumped on demotion; invalidates in-flight acks to it. */
        std::uint64_t generation = 0;
        /** Bumped when a resync loop is (re)started or cancelled. */
        std::uint64_t resync_epoch = 0;
        DirtyLog dirty;
        std::deque<sim::Time> health_events;
        std::uint64_t timeouts = 0;
        std::uint64_t errors = 0;
        std::uint64_t resync_copied_blocks = 0;
    };

    /** Fan-out bookkeeping for one replicated write. */
    struct PendingWrite {
        std::vector<std::byte> payload;
        std::uint64_t first_block = 0;
        std::uint64_t count = 0;
        Done done;
        std::uint32_t targets = 0;
        std::uint32_t acks = 0;
        std::uint32_t fails = 0;
        bool completed = false;
        std::vector<std::uint8_t> resolved; ///< per-backend, 1 = settled
    };

    /** Retry bookkeeping for one replicated read. */
    struct PendingRead {
        std::span<std::byte> out;
        std::uint64_t first_block = 0;
        ReadDone done;
        std::uint64_t tried_mask = 0;
        std::uint64_t attempt = 0; ///< invalidates stale completions
        bool completed = false;
    };

    void on_write_ack(std::size_t index, std::uint64_t generation,
                      const std::shared_ptr<PendingWrite> &write);
    void on_write_timeout(std::size_t index,
                          const std::shared_ptr<PendingWrite> &write);
    void settle_write(const std::shared_ptr<PendingWrite> &write);
    void issue_read(const std::shared_ptr<PendingRead> &read);
    /** Records a timeout/error against a backend; may demote it. */
    void note_health_event(std::size_t index);
    void resync_tick(std::size_t index, std::uint64_t epoch);
    /** Healthy, non-crashed peer to copy from; -1 when none. */
    int pick_resync_source(std::size_t target) const;

    sim::Simulator &simulator_;
    ReplicaSetConfig config_;
    std::vector<std::unique_ptr<Backend>> backends_;

    std::uint64_t writes_acked_ = 0;
    std::uint64_t writes_failed_ = 0;
    std::uint64_t reads_served_ = 0;
    std::uint64_t reads_failed_ = 0;
    std::uint64_t failovers_ = 0;
    std::uint64_t demotions_ = 0;
    std::uint64_t resyncs_completed_ = 0;
    std::uint64_t repairs_ = 0;
    std::function<void(std::size_t)> demotion_hook_;
};

} // namespace nesc::repl

#endif // NESC_REPL_REPLICA_SET_H
