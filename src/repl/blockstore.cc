#include "blockstore.h"

#include <algorithm>
#include <cstring>
#include <vector>

namespace nesc::repl {

namespace {

// Same rolling checksum as the fs journal: cheap, order-sensitive,
// and plenty to detect a torn payload in the simulator.
std::uint64_t
payload_checksum(std::span<const std::byte> data)
{
    std::uint64_t sum = 0;
    for (std::byte b : data)
        sum = sum * 131 + static_cast<std::uint64_t>(b);
    return sum;
}

} // namespace

JournaledBlockstore::JournaledBlockstore(storage::BlockDevice &media,
                                         std::uint64_t journal_blocks)
    : media_(media),
      block_size_(media.geometry().logical_block_size),
      journal_blocks_(journal_blocks)
{
    const std::uint64_t total = media_.geometry().num_blocks();
    // A usable ring needs desc + payload + commit; clamp rather than
    // fail so tiny test devices degrade to a minimal journal.
    journal_blocks_ = std::clamp<std::uint64_t>(
        journal_blocks_, 3, total > 3 ? total - 1 : 3);
    data_blocks_ = total > journal_blocks_ ? total - journal_blocks_ : 0;
}

util::Status
JournaledBlockstore::commit_txn(std::uint64_t first_block,
                                std::span<const std::byte> data)
{
    const std::uint64_t count = data.size() / block_size_;
    const std::uint64_t txn_id = next_txn_id_++;

    // Transactions never wrap across the ring boundary (replay scans
    // from the head and stops at the first non-ascending txn id).
    const std::uint64_t txn_size = count + 2;
    if (cursor_ % journal_blocks_ + txn_size > journal_blocks_)
        cursor_ += journal_blocks_ - cursor_ % journal_blocks_;

    // 1. Descriptor block: header + target block numbers.
    std::vector<std::byte> block(block_size_);
    ReplDescHeader header{kReplDescMagic, static_cast<std::uint32_t>(count),
                          0, txn_id};
    std::memcpy(block.data(), &header, sizeof(header));
    for (std::uint64_t i = 0; i < count; ++i) {
        const std::uint64_t target = first_block + i;
        std::memcpy(block.data() + sizeof(header) +
                        i * sizeof(std::uint64_t),
                    &target, sizeof(target));
    }
    NESC_RETURN_IF_ERROR(media_.write(ring_offset(cursor_++), block));
    ++writes_submitted_;

    // 2. Payload blocks, accumulating the checksum.
    std::uint64_t checksum = 0;
    for (std::uint64_t i = 0; i < count; ++i) {
        const auto payload = data.subspan(i * block_size_, block_size_);
        checksum += payload_checksum(payload);
        NESC_RETURN_IF_ERROR(
            media_.write(ring_offset(cursor_++), payload));
    }

    // 3. Commit record: the durability point. A crash before this
    // write rolls the transaction back cleanly at recover().
    std::fill(block.begin(), block.end(), std::byte{0});
    ReplCommitRecord commit{kReplCommitMagic, txn_id, checksum};
    std::memcpy(block.data(), &commit, sizeof(commit));
    NESC_RETURN_IF_ERROR(media_.write(ring_offset(cursor_++), block));
    ++writes_synced_;

    // 4. Checkpoint in place; recover() redoes this if we die here.
    NESC_RETURN_IF_ERROR(media_.write(first_block * block_size_, data));
    ++writes_stable_;
    return util::Status::ok();
}

util::Status
JournaledBlockstore::write_blocks(std::uint64_t first_block,
                                  std::span<const std::byte> data)
{
    if (data.empty() || data.size() % block_size_ != 0)
        return util::invalid_argument_error(
            "blockstore write must be whole blocks");
    const std::uint64_t count = data.size() / block_size_;
    if (first_block + count > data_blocks_)
        return util::out_of_range_error("blockstore write past data region");
    ++writes_started_;

    // Split transactions that exceed the descriptor's target list or
    // the ring capacity (desc + payload + commit must fit).
    const std::uint64_t max_per_txn = std::min<std::uint64_t>(
        max_targets(), journal_blocks_ > 2 ? journal_blocks_ - 2 : 1);
    for (std::uint64_t done = 0; done < count;) {
        const std::uint64_t chunk = std::min(max_per_txn, count - done);
        NESC_RETURN_IF_ERROR(commit_txn(
            first_block + done,
            data.subspan(done * block_size_, chunk * block_size_)));
        done += chunk;
    }
    return util::Status::ok();
}

util::Status
JournaledBlockstore::read_blocks(std::uint64_t first_block,
                                 std::span<std::byte> out)
{
    if (out.empty() || out.size() % block_size_ != 0)
        return util::invalid_argument_error(
            "blockstore read must be whole blocks");
    if (first_block + out.size() / block_size_ > data_blocks_)
        return util::out_of_range_error("blockstore read past data region");
    return media_.read(first_block * block_size_, out);
}

sim::Time
JournaledBlockstore::service_write(sim::Time start,
                                   std::uint64_t first_block,
                                   std::uint64_t bytes)
{
    // Honest amplification: descriptor, payload, commit, checkpoint
    // serialize on the media port.
    const std::uint64_t off = first_block * block_size_;
    sim::Time t = media_.service_write(start, ring_offset(cursor_),
                                       block_size_); // descriptor
    t = media_.service_write(t, ring_offset(cursor_), bytes); // payload
    t = media_.service_write(t, ring_offset(cursor_),
                             block_size_); // commit
    return media_.service_write(t, off, bytes); // checkpoint
}

sim::Time
JournaledBlockstore::service_read(sim::Time start, std::uint64_t first_block,
                                  std::uint64_t bytes)
{
    return media_.service_read(start, first_block * block_size_, bytes);
}

util::Result<std::uint64_t>
JournaledBlockstore::recover()
{
    ++recoveries_;
    std::uint64_t replayed = 0;
    std::uint64_t pos = 0;
    std::uint64_t prev_txn_id = 0;
    std::vector<std::byte> block(block_size_);

    while (pos + 2 < journal_blocks_) {
        NESC_RETURN_IF_ERROR(media_.read(ring_offset(pos), block));
        ReplDescHeader header;
        std::memcpy(&header, block.data(), sizeof(header));
        if (header.magic != kReplDescMagic || header.count == 0 ||
            header.count > max_targets())
            break;
        // Stale transactions from a previous ring pass have lower ids
        // than the fresh ones at the head; stop there.
        if (replayed > 0 && header.txn_id <= prev_txn_id)
            break;
        if (pos + 1 + header.count + 1 > journal_blocks_)
            break; // would wrap past the scan window
        std::vector<std::uint64_t> targets(header.count);
        std::memcpy(targets.data(), block.data() + sizeof(header),
                    header.count * sizeof(std::uint64_t));

        std::vector<std::vector<std::byte>> payload(header.count);
        std::uint64_t checksum = 0;
        for (std::uint32_t i = 0; i < header.count; ++i) {
            payload[i].resize(block_size_);
            NESC_RETURN_IF_ERROR(
                media_.read(ring_offset(pos + 1 + i), payload[i]));
            checksum += payload_checksum(payload[i]);
        }
        NESC_RETURN_IF_ERROR(
            media_.read(ring_offset(pos + 1 + header.count), block));
        ReplCommitRecord commit;
        std::memcpy(&commit, block.data(), sizeof(commit));
        if (commit.magic != kReplCommitMagic ||
            commit.txn_id != header.txn_id || commit.checksum != checksum)
            break; // torn transaction: crash hit before the commit

        // Redo the checkpoint; harmless when it already landed.
        for (std::uint32_t i = 0; i < header.count; ++i) {
            if (targets[i] >= data_blocks_)
                return util::data_loss_error(
                    "journal target outside data region");
            NESC_RETURN_IF_ERROR(
                media_.write(targets[i] * block_size_, payload[i]));
        }
        ++replayed;
        prev_txn_id = header.txn_id;
        next_txn_id_ = std::max(next_txn_id_, header.txn_id + 1);
        pos += 2 + header.count;
    }
    cursor_ = pos;
    txns_replayed_ += replayed;
    return replayed;
}

} // namespace nesc::repl
