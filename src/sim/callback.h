/**
 * @file
 * Small-buffer-optimized event callback.
 *
 * The simulator schedules millions of closures per run; with
 * `std::function` every capture larger than the library's small-object
 * buffer costs a heap allocation on the scheduling hot path.
 * BasicCallback is a move-only callable wrapper with an inline buffer
 * sized for the controller's largest common capture set, so
 * steady-state scheduling allocates nothing. Oversized or
 * alignment-exotic captures fall back to the heap transparently.
 *
 * The nullary `Callback` alias is what the simulator schedules; the
 * variadic forms carry DMA completions (status + payload) through the
 * same inline storage. A callback that wraps another callback nests
 * inside the outer buffer, which is why `Callback`'s budget is larger
 * than the argument-carrying forms it transports.
 */
#ifndef NESC_SIM_CALLBACK_H
#define NESC_SIM_CALLBACK_H

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace nesc::sim {

/**
 * Move-only `void(Args...)` wrapper with inline storage for small
 * captures. @p InlineBytes is the capture budget; larger callables are
 * heap-allocated.
 */
template <std::size_t InlineBytes, typename... Args>
class BasicCallback {
  public:
    /** Inline capture budget; larger callables are heap-allocated. */
    static constexpr std::size_t kInlineBytes = InlineBytes;

    BasicCallback() = default;
    BasicCallback(std::nullptr_t) {}

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, BasicCallback> &&
                  std::is_invocable_r_v<void, std::decay_t<F> &, Args...>>>
    BasicCallback(F &&fn)
    {
        using Fn = std::decay_t<F>;
        if constexpr (fits_inline<Fn>()) {
            ::new (static_cast<void *>(buf_)) Fn(std::forward<F>(fn));
            ops_ = &inline_ops<Fn>;
        } else {
            ::new (static_cast<void *>(buf_))
                Fn *(new Fn(std::forward<F>(fn)));
            ops_ = &heap_ops<Fn>;
        }
    }

    BasicCallback(BasicCallback &&other) noexcept { move_from(other); }

    BasicCallback &
    operator=(BasicCallback &&other) noexcept
    {
        if (this != &other) {
            reset();
            move_from(other);
        }
        return *this;
    }

    BasicCallback(const BasicCallback &) = delete;
    BasicCallback &operator=(const BasicCallback &) = delete;

    ~BasicCallback() { reset(); }

    explicit operator bool() const { return ops_ != nullptr; }

    /**
     * Const like `std::function::operator()`: callers routinely invoke
     * a captured handler from a non-mutable lambda, and the const here
     * is shallow (the target may mutate its own captures).
     */
    void
    operator()(Args... args) const
    {
        ops_->invoke(const_cast<unsigned char *>(buf_),
                     std::forward<Args>(args)...);
    }

  private:
    struct Ops {
        void (*invoke)(void *, Args &&...);
        /** Move-constructs into @p dst from @p src, destroying @p src. */
        void (*relocate)(void *dst, void *src) noexcept;
        void (*destroy)(void *) noexcept;
    };

    template <typename Fn>
    static constexpr bool
    fits_inline()
    {
        return sizeof(Fn) <= kInlineBytes &&
               alignof(Fn) <= alignof(std::max_align_t) &&
               std::is_nothrow_move_constructible_v<Fn>;
    }

    template <typename Fn>
    static constexpr Ops inline_ops = {
        [](void *p, Args &&...args) {
            (*std::launder(reinterpret_cast<Fn *>(p)))(
                std::forward<Args>(args)...);
        },
        [](void *dst, void *src) noexcept {
            Fn *f = std::launder(reinterpret_cast<Fn *>(src));
            ::new (dst) Fn(std::move(*f));
            f->~Fn();
        },
        [](void *p) noexcept {
            std::launder(reinterpret_cast<Fn *>(p))->~Fn();
        },
    };

    template <typename Fn>
    static constexpr Ops heap_ops = {
        [](void *p, Args &&...args) {
            (**std::launder(reinterpret_cast<Fn **>(p)))(
                std::forward<Args>(args)...);
        },
        [](void *dst, void *src) noexcept {
            ::new (dst) Fn *(*std::launder(reinterpret_cast<Fn **>(src)));
        },
        [](void *p) noexcept {
            delete *std::launder(reinterpret_cast<Fn **>(p));
        },
    };

    void
    move_from(BasicCallback &other) noexcept
    {
        ops_ = other.ops_;
        if (ops_ != nullptr) {
            ops_->relocate(buf_, other.buf_);
            other.ops_ = nullptr;
        }
    }

    void
    reset() noexcept
    {
        if (ops_ != nullptr) {
            ops_->destroy(buf_);
            ops_ = nullptr;
        }
    }

    const Ops *ops_ = nullptr;
    alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
};

/**
 * The event closure the simulator schedules. Its budget covers a
 * BlockOp-sized capture plus a nested argument-carrying callback (a
 * DMA completion handler riding inside the link-completion event), so
 * neither layer of the common DMA pattern touches the heap.
 */
using Callback = BasicCallback<184>;

} // namespace nesc::sim

#endif // NESC_SIM_CALLBACK_H
