/**
 * @file
 * Small-buffer-optimized event callback.
 *
 * The simulator schedules millions of closures per run; with
 * `std::function` every capture larger than the library's small-object
 * buffer costs a heap allocation on the scheduling hot path. Callback
 * is a move-only callable wrapper with an inline buffer sized for the
 * controller's largest common capture set (a BlockOp plus a couple of
 * pointers), so steady-state scheduling allocates nothing. Oversized
 * or alignment-exotic captures fall back to the heap transparently.
 */
#ifndef NESC_SIM_CALLBACK_H
#define NESC_SIM_CALLBACK_H

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace nesc::sim {

/** Move-only `void()` wrapper with inline storage for small captures. */
class Callback {
  public:
    /** Inline capture budget; larger callables are heap-allocated. */
    static constexpr std::size_t kInlineBytes = 88;

    Callback() = default;
    Callback(std::nullptr_t) {}

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, Callback> &&
                  std::is_invocable_r_v<void, std::decay_t<F> &>>>
    Callback(F &&fn)
    {
        using Fn = std::decay_t<F>;
        if constexpr (fits_inline<Fn>()) {
            ::new (static_cast<void *>(buf_)) Fn(std::forward<F>(fn));
            ops_ = &inline_ops<Fn>;
        } else {
            ::new (static_cast<void *>(buf_))
                Fn *(new Fn(std::forward<F>(fn)));
            ops_ = &heap_ops<Fn>;
        }
    }

    Callback(Callback &&other) noexcept { move_from(other); }

    Callback &
    operator=(Callback &&other) noexcept
    {
        if (this != &other) {
            reset();
            move_from(other);
        }
        return *this;
    }

    Callback(const Callback &) = delete;
    Callback &operator=(const Callback &) = delete;

    ~Callback() { reset(); }

    explicit operator bool() const { return ops_ != nullptr; }

    void
    operator()()
    {
        ops_->invoke(buf_);
    }

  private:
    struct Ops {
        void (*invoke)(void *);
        /** Move-constructs into @p dst from @p src, destroying @p src. */
        void (*relocate)(void *dst, void *src) noexcept;
        void (*destroy)(void *) noexcept;
    };

    template <typename Fn>
    static constexpr bool
    fits_inline()
    {
        return sizeof(Fn) <= kInlineBytes &&
               alignof(Fn) <= alignof(std::max_align_t) &&
               std::is_nothrow_move_constructible_v<Fn>;
    }

    template <typename Fn>
    static constexpr Ops inline_ops = {
        [](void *p) { (*std::launder(reinterpret_cast<Fn *>(p)))(); },
        [](void *dst, void *src) noexcept {
            Fn *f = std::launder(reinterpret_cast<Fn *>(src));
            ::new (dst) Fn(std::move(*f));
            f->~Fn();
        },
        [](void *p) noexcept {
            std::launder(reinterpret_cast<Fn *>(p))->~Fn();
        },
    };

    template <typename Fn>
    static constexpr Ops heap_ops = {
        [](void *p) {
            (**std::launder(reinterpret_cast<Fn **>(p)))();
        },
        [](void *dst, void *src) noexcept {
            ::new (dst) Fn *(*std::launder(reinterpret_cast<Fn **>(src)));
        },
        [](void *p) noexcept {
            delete *std::launder(reinterpret_cast<Fn **>(p));
        },
    };

    void
    move_from(Callback &other) noexcept
    {
        ops_ = other.ops_;
        if (ops_ != nullptr) {
            ops_->relocate(buf_, other.buf_);
            other.ops_ = nullptr;
        }
    }

    void
    reset() noexcept
    {
        if (ops_ != nullptr) {
            ops_->destroy(buf_);
            ops_ = nullptr;
        }
    }

    const Ops *ops_ = nullptr;
    alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
};

} // namespace nesc::sim

#endif // NESC_SIM_CALLBACK_H
