/**
 * @file
 * Simulated-time definitions. All NeSC timing is expressed as 64-bit
 * nanosecond counts on a single virtual clock owned by sim::Simulator.
 */
#ifndef NESC_SIM_TIME_H
#define NESC_SIM_TIME_H

#include <cstdint>

#include "util/units.h"

namespace nesc::sim {

/** Absolute simulated time in nanoseconds since simulation start. */
using Time = std::uint64_t;

/** A duration in nanoseconds. */
using Duration = std::uint64_t;

inline constexpr Duration kNs = 1;
inline constexpr Duration kUs = util::kNsPerUs;
inline constexpr Duration kMs = util::kNsPerMs;
inline constexpr Duration kSec = util::kNsPerSec;

/** Sentinel "never" timestamp. */
inline constexpr Time kTimeMax = UINT64_MAX;

} // namespace nesc::sim

#endif // NESC_SIM_TIME_H
