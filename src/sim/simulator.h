/**
 * @file
 * Discrete-event simulation engine.
 *
 * Every modelled component (the NeSC controller pipeline, DMA engine,
 * virtqueues, interrupt delivery...) schedules closures on a single
 * Simulator. Events at equal timestamps execute in scheduling order, so
 * runs are fully deterministic.
 *
 * The event queue is a binary heap over a plain vector (reservable, so
 * steady-state scheduling never reallocates) and callbacks use
 * sim::Callback's inline storage, so the hot path is allocation-free
 * for typical pipeline closures.
 */
#ifndef NESC_SIM_SIMULATOR_H
#define NESC_SIM_SIMULATOR_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/callback.h"
#include "sim/time.h"

namespace nesc::sim {

/** Event-driven virtual-time simulator. */
class Simulator {
  public:
    using Callback = sim::Callback;

    /** Pre-sized event-queue capacity (events, not bytes). */
    static constexpr std::size_t kDefaultReserve = 4096;

    Simulator() { queue_.reserve(kDefaultReserve); }

    /** Current simulated time. */
    Time now() const { return now_; }

    /** Schedules @p fn at absolute time @p when (>= now). */
    void schedule_at(Time when, Callback fn);

    /** Schedules @p fn @p delay nanoseconds from now. */
    void schedule_in(Duration delay, Callback fn)
    {
        schedule_at(now_ + delay, std::move(fn));
    }

    /** Grows the event-queue capacity to at least @p events. */
    void reserve(std::size_t events) { queue_.reserve(events); }

    /** True when no events are pending. */
    bool idle() const { return queue_.empty(); }

    /**
     * Executes the earliest pending event, advancing the clock to its
     * timestamp. Returns false when the queue is empty.
     */
    bool step();

    /** Runs until no events remain. */
    void run_until_idle();

    /**
     * Runs events with timestamp <= @p deadline, then advances the
     * clock to @p deadline (if it is later than the last event).
     */
    void run_until(Time deadline);

    /**
     * Advances the clock by @p delay, executing any events that fall
     * inside the window. Models a component busy-waiting in virtual
     * time (e.g. a driver charging CPU cost).
     */
    void advance(Duration delay) { run_until(now_ + delay); }

    std::uint64_t events_executed() const { return events_executed_; }

    /**
     * Events executed by every Simulator instance in this process
     * (benches report wall-clock events/sec off it). Single-threaded,
     * like the simulators themselves.
     */
    static std::uint64_t total_events_executed()
    {
        return g_total_events_;
    }

  private:
    struct Event {
        Time when;
        std::uint64_t seq; // tie-breaker: FIFO among equal timestamps
        Callback fn;
    };
    struct Later {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    Time now_ = 0;
    std::uint64_t next_seq_ = 0;
    std::uint64_t events_executed_ = 0;
    /** Min-heap on (when, seq) maintained with std::push/pop_heap. */
    std::vector<Event> queue_;

    static inline std::uint64_t g_total_events_ = 0;
};

} // namespace nesc::sim

#endif // NESC_SIM_SIMULATOR_H
