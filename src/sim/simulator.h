/**
 * @file
 * Discrete-event simulation engine.
 *
 * Every modelled component (the NeSC controller pipeline, DMA engine,
 * virtqueues, interrupt delivery...) schedules closures on a single
 * Simulator. Events at equal timestamps execute in scheduling order, so
 * runs are fully deterministic.
 */
#ifndef NESC_SIM_SIMULATOR_H
#define NESC_SIM_SIMULATOR_H

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/time.h"

namespace nesc::sim {

/** Event-driven virtual-time simulator. */
class Simulator {
  public:
    using Callback = std::function<void()>;

    /** Current simulated time. */
    Time now() const { return now_; }

    /** Schedules @p fn at absolute time @p when (>= now). */
    void schedule_at(Time when, Callback fn);

    /** Schedules @p fn @p delay nanoseconds from now. */
    void schedule_in(Duration delay, Callback fn)
    {
        schedule_at(now_ + delay, std::move(fn));
    }

    /** True when no events are pending. */
    bool idle() const { return queue_.empty(); }

    /**
     * Executes the earliest pending event, advancing the clock to its
     * timestamp. Returns false when the queue is empty.
     */
    bool step();

    /** Runs until no events remain. */
    void run_until_idle();

    /**
     * Runs events with timestamp <= @p deadline, then advances the
     * clock to @p deadline (if it is later than the last event).
     */
    void run_until(Time deadline);

    /**
     * Advances the clock by @p delay, executing any events that fall
     * inside the window. Models a component busy-waiting in virtual
     * time (e.g. a driver charging CPU cost).
     */
    void advance(Duration delay) { run_until(now_ + delay); }

    std::uint64_t events_executed() const { return events_executed_; }

  private:
    struct Event {
        Time when;
        std::uint64_t seq; // tie-breaker: FIFO among equal timestamps
        Callback fn;
    };
    struct Later {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    Time now_ = 0;
    std::uint64_t next_seq_ = 0;
    std::uint64_t events_executed_ = 0;
    std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

} // namespace nesc::sim

#endif // NESC_SIM_SIMULATOR_H
