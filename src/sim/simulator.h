/**
 * @file
 * Discrete-event simulation engine.
 *
 * Every modelled component (the NeSC controller pipeline, DMA engine,
 * virtqueues, interrupt delivery...) schedules closures on a single
 * Simulator. Events at equal timestamps execute in scheduling order, so
 * runs are fully deterministic.
 *
 * The pending set is sharded into event lanes (the controller gives
 * each function its own lane; lane 0 is the shared default for DMA,
 * media, and driver events). Each lane is a small binary heap of
 * 24-byte keys; a top-level selector heap tracks the per-lane minima
 * and picks the next event with a lazy stale-entry discard. Callbacks
 * live in a recycled slot pool, so heap sifts move keys, never the
 * 96-byte sim::Callback.
 *
 * Events come in two strengths. Ordinary (strong) events represent
 * work in flight and keep the simulation alive: run_until_idle()
 * drains until none remain. Weak events (schedule_weak_in) are
 * maintenance timers — periodic telemetry windows, samplers — that
 * fire in normal global order while anything else is running or while
 * time is driven forward with run_until(), but never by themselves
 * keep run_until_idle() spinning. A self-rescheduling weak timer is
 * therefore safe: it ticks for as long as the simulation has real
 * work (or a deadline to reach) and goes quiescent with it, exactly
 * like an unreferenced timer in an event loop.
 *
 * Long-dated events (delay > kTimerHorizon — periodic telemetry
 * windows, scrub intervals, watchdogs) are transparently parked on an
 * internal timer lane. A far-future event on a busy lane is poison:
 * it keeps the lane's heap non-empty, so every pop re-publishes the
 * far event as the lane minimum and the next near-event push
 * immediately staleifies that selector entry — doubling selector
 * traffic for every event on the lane (measured ~20% on an I/O-bound
 * run from one pending timer). Parked on its own lane, the timer
 * contributes one selector entry that stays valid until it fires.
 * Diversion never reorders anything: execution order is globally
 * (when, seq) regardless of lane (see the determinism contract).
 *
 * Determinism contract: the sequence number is GLOBAL and assigned at
 * schedule time, and both lane heaps and the selector order strictly
 * by (when, seq). Execution order is therefore identical to a single
 * FIFO-tie-break heap regardless of how events are assigned to lanes
 * or how many lanes exist — lane layout can never change simulated
 * results, only wall-clock speed. tests/test_sim.cc pins this with a
 * multi-seed lane-count invariance stress test.
 */
#ifndef NESC_SIM_SIMULATOR_H
#define NESC_SIM_SIMULATOR_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/callback.h"
#include "sim/event_heap.h"
#include "sim/time.h"

namespace nesc::sim {

/** Identifies one event lane of a Simulator. */
using LaneId = std::uint32_t;

/** Event-driven virtual-time simulator. */
class Simulator {
  public:
    using Callback = sim::Callback;

    /** Lane used by schedule_at/schedule_in; always present. */
    static constexpr LaneId kDefaultLane = 0;

    /**
     * Events scheduled more than this many nanoseconds ahead are
     * parked on an internal timer lane (see file comment). 100 µs sits
     * well above per-block device latencies and well below the
     * millisecond-scale periodic timers the parking exists for.
     */
    static constexpr Duration kTimerHorizon = 100'000;

    /** Pre-sized event capacity (events, not bytes). */
    static constexpr std::size_t kDefaultReserve = 4096;

    Simulator();

    /** Current simulated time. */
    Time now() const { return now_; }

    /** Schedules @p fn at absolute time @p when (>= now) on lane 0. */
    void schedule_at(Time when, Callback fn)
    {
        schedule_at_lane(kDefaultLane, when, std::move(fn));
    }

    /** Schedules @p fn @p delay nanoseconds from now on lane 0. */
    void schedule_in(Duration delay, Callback fn)
    {
        schedule_at_lane(kDefaultLane, now_ + delay, std::move(fn));
    }

    /** Schedules @p fn at absolute time @p when (>= now) on @p lane. */
    void schedule_at_lane(LaneId lane, Time when, Callback fn)
    {
        schedule_event(lane, when, std::move(fn), /*weak=*/false);
    }

    /**
     * Schedules a weak event @p delay nanoseconds from now. Weak
     * events execute in the same global (when, seq) order as strong
     * ones but do not count toward idle: run_until_idle() returns
     * once only weak events remain (without firing them), while
     * run_until() fires any that fall inside its window. Use for
     * periodic maintenance timers that re-arm themselves forever.
     */
    void schedule_weak_in(Duration delay, Callback fn)
    {
        schedule_event(kDefaultLane, now_ + delay, std::move(fn),
                       /*weak=*/true);
    }

    /** Schedules @p fn @p delay nanoseconds from now on @p lane. */
    void schedule_in_lane(LaneId lane, Duration delay, Callback fn)
    {
        schedule_at_lane(lane, now_ + delay, std::move(fn));
    }

    /**
     * Opens a new event lane and returns its id (recycling drained
     * released lanes first). Lane assignment never affects execution
     * order — see the determinism contract above.
     */
    LaneId register_lane();

    /**
     * Marks @p lane for release. Events already scheduled on it still
     * drain in order; the lane id is recycled once empty. The default
     * lane cannot be released.
     */
    void release_lane(LaneId lane);

    /**
     * Lanes currently open (default lane included; the internal timer
     * lane is bookkeeping, not a registerable lane, and is excluded).
     */
    std::size_t lane_count() const { return live_lanes_; }

    /** Grows default-lane and callback-pool capacity to @p events. */
    void reserve(std::size_t events);

    /** True when no strong events are pending on any lane. */
    bool idle() const { return pending_ == weak_pending_; }

    /** Weak (maintenance-timer) events currently pending. */
    std::size_t weak_pending() const { return weak_pending_; }

    /**
     * Executes the earliest pending event, advancing the clock to its
     * timestamp. Returns false when no events are pending.
     */
    bool step();

    /**
     * Runs until no strong events remain. Pending weak events are
     * left armed (they fire on a later run_until(), or whenever new
     * strong work is scheduled past them).
     */
    void run_until_idle();

    /**
     * Runs events with timestamp <= @p deadline, then advances the
     * clock to @p deadline (if it is later than the last event).
     */
    void run_until(Time deadline);

    /**
     * Advances the clock by @p delay, executing any events that fall
     * inside the window. Models a component busy-waiting in virtual
     * time (e.g. a driver charging CPU cost).
     */
    void advance(Duration delay) { run_until(now_ + delay); }

    std::uint64_t events_executed() const { return events_executed_; }

    /**
     * Events executed by every Simulator instance in this process
     * (benches report wall-clock events/sec off it). Single-threaded,
     * like the simulators themselves.
     */
    static std::uint64_t total_events_executed()
    {
        return g_total_events_;
    }

  private:
    /** Internal parking lane for long-dated events; never recycled. */
    static constexpr LaneId kTimerLane = 1;

    struct Lane {
        LaneHeap heap;
        bool live = false;    ///< registered (or still draining)
        bool retired = false; ///< released; recycle once drained
    };

    /** Selector record of one lane's minimum; stale when outdated. */
    struct SelectorEntry {
        Time when;
        std::uint64_t seq;
        LaneId lane;
    };
    struct LaterEntry {
        bool
        operator()(const SelectorEntry &a, const SelectorEntry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    /** Next event time across lanes; false when idle. */
    bool peek(Time &when);
    void push_selector(Time when, std::uint64_t seq, LaneId lane);
    void recycle_lane(LaneId lane);
    void schedule_event(LaneId lane, Time when, Callback fn, bool weak);

    Time now_ = 0;
    std::uint64_t next_seq_ = 0;
    std::uint64_t events_executed_ = 0;
    std::size_t pending_ = 0;
    std::size_t weak_pending_ = 0;
    std::size_t live_lanes_ = 0;

    std::vector<Lane> lanes_;
    std::vector<LaneId> free_lanes_;
    /** Min-heap on (when, seq) maintained with std::push/pop_heap. */
    std::vector<SelectorEntry> selector_;
    /** Callback pool; EventKey::slot indexes into it. */
    std::vector<Callback> slots_;
    /** Per-slot weak flag, parallel to slots_. */
    std::vector<std::uint8_t> slot_weak_;
    std::vector<std::uint32_t> free_slots_;

    static inline std::uint64_t g_total_events_ = 0;
};

} // namespace nesc::sim

#endif // NESC_SIM_SIMULATOR_H
