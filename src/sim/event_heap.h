/**
 * @file
 * Indirect event-lane heap.
 *
 * One LaneHeap holds the pending events of a single event lane as
 * 24-byte keys — timestamp, global sequence number, and a slot index
 * pointing at the callback stored elsewhere. Keeping the callback out
 * of the heap is what makes the simulator hot path cheap: a sift
 * moves three words instead of relocating a 96-byte sim::Callback at
 * every level (the seed profile showed ~7 relocations per event).
 *
 * Ordering is (when, seq): seq is assigned globally by the Simulator
 * in scheduling order, so popping lane minima through the top-level
 * selector reproduces exactly the single-heap execution order — the
 * determinism contract the golden-figure tests enforce.
 */
#ifndef NESC_SIM_EVENT_HEAP_H
#define NESC_SIM_EVENT_HEAP_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/time.h"

namespace nesc::sim {

/** Heap key of one scheduled event; the callback lives in a slot. */
struct EventKey {
    Time when;
    std::uint64_t seq;  ///< global scheduling order, unique
    std::uint32_t slot; ///< callback slot in the Simulator's pool

    /** Execution order: earliest time first, FIFO within a time. */
    bool
    before(const EventKey &other) const
    {
        if (when != other.when)
            return when < other.when;
        return seq < other.seq;
    }
};

/** Binary min-heap of EventKeys on (when, seq). */
class LaneHeap {
  public:
    bool empty() const { return keys_.empty(); }
    std::size_t size() const { return keys_.size(); }
    void reserve(std::size_t events) { keys_.reserve(events); }

    /** The earliest pending key. Undefined when empty. */
    const EventKey &top() const { return keys_.front(); }

    /** Inserts @p key; returns true when it became the new top. */
    bool
    push(const EventKey &key)
    {
        std::size_t i = keys_.size();
        keys_.push_back(key);
        while (i > 0) {
            const std::size_t parent = (i - 1) / 2;
            if (!key.before(keys_[parent]))
                break;
            keys_[i] = keys_[parent];
            i = parent;
        }
        keys_[i] = key;
        return i == 0;
    }

    /** Removes and returns the earliest key. Undefined when empty. */
    EventKey
    pop()
    {
        const EventKey min = keys_.front();
        const EventKey last = keys_.back();
        keys_.pop_back();
        if (!keys_.empty()) {
            // Sift the former last element down from the root.
            std::size_t i = 0;
            const std::size_t n = keys_.size();
            for (;;) {
                std::size_t child = 2 * i + 1;
                if (child >= n)
                    break;
                if (child + 1 < n && keys_[child + 1].before(keys_[child]))
                    ++child;
                if (!keys_[child].before(last))
                    break;
                keys_[i] = keys_[child];
                i = child;
            }
            keys_[i] = last;
        }
        return min;
    }

  private:
    std::vector<EventKey> keys_;
};

} // namespace nesc::sim

#endif // NESC_SIM_EVENT_HEAP_H
