/**
 * @file
 * Pipelined shared-resource timing primitive.
 *
 * A BandwidthServer models a link or media port with a fixed per-access
 * latency and a sustained byte rate. Transfers are serialized on the
 * resource: a transfer arriving at time t begins at max(t, busy-until),
 * occupies the resource for bytes/rate, and completes one latency after
 * its occupancy ends. This captures both queueing under contention and
 * full pipelining of back-to-back transfers — the behaviour of the PCIe
 * link and the on-board DRAM port in the NeSC prototype.
 */
#ifndef NESC_SIM_BANDWIDTH_SERVER_H
#define NESC_SIM_BANDWIDTH_SERVER_H

#include <cstdint>

#include "sim/time.h"
#include "util/units.h"

namespace nesc::sim {

/**
 * Observer of a BandwidthServer's transfer stream. The sim layer
 * cannot depend on higher layers, so tracing hooks in from above by
 * implementing this interface (see obs::LinkTraceObserver).
 */
class BandwidthObserver {
  public:
    virtual ~BandwidthObserver() = default;

    /**
     * One booked transfer of @p bytes occupying the resource over
     * [@p begin, @p complete) (completion includes the fixed latency).
     */
    virtual void on_transfer(Time begin, Time complete,
                             std::uint64_t bytes) = 0;
};

/** Serialized bandwidth/latency resource. */
class BandwidthServer {
  public:
    /**
     * @param bytes_per_sec sustained rate; 0 means infinitely fast.
     * @param latency fixed pipeline latency added to every transfer.
     */
    BandwidthServer(std::uint64_t bytes_per_sec, Duration latency)
        : bytes_per_sec_(bytes_per_sec), latency_(latency)
    {
    }

    /**
     * Books a @p bytes transfer that becomes eligible at @p start.
     * Returns its completion time and advances the busy horizon.
     */
    Time
    acquire(Time start, std::uint64_t bytes)
    {
        const Time begin = start > busy_until_ ? start : busy_until_;
        const Duration occupancy =
            util::transfer_time_ns(bytes, bytes_per_sec_);
        busy_until_ = begin + occupancy;
        total_bytes_ += bytes;
        ++total_transfers_;
        const Time complete = busy_until_ + latency_;
        if (observer_ != nullptr)
            observer_->on_transfer(begin, complete, bytes);
        return complete;
    }

    /**
     * Completion time for a transfer starting at @p start WITHOUT
     * booking the resource (pure query, e.g. for what-if accounting).
     */
    Time
    peek(Time start, std::uint64_t bytes) const
    {
        const Time begin = start > busy_until_ ? start : busy_until_;
        return begin + util::transfer_time_ns(bytes, bytes_per_sec_) +
               latency_;
    }

    Time busy_until() const { return busy_until_; }
    std::uint64_t bytes_per_sec() const { return bytes_per_sec_; }
    Duration latency() const { return latency_; }
    std::uint64_t total_bytes() const { return total_bytes_; }
    std::uint64_t total_transfers() const { return total_transfers_; }

    void set_bytes_per_sec(std::uint64_t bps) { bytes_per_sec_ = bps; }
    void set_latency(Duration latency) { latency_ = latency; }
    /** Installs (or clears, with nullptr) the transfer observer. */
    void set_observer(BandwidthObserver *observer) { observer_ = observer; }

    /** Clears the busy horizon and counters (for test reuse). */
    void
    reset()
    {
        busy_until_ = 0;
        total_bytes_ = 0;
        total_transfers_ = 0;
    }

  private:
    std::uint64_t bytes_per_sec_;
    Duration latency_;
    Time busy_until_ = 0;
    std::uint64_t total_bytes_ = 0;
    std::uint64_t total_transfers_ = 0;
    BandwidthObserver *observer_ = nullptr;
};

} // namespace nesc::sim

#endif // NESC_SIM_BANDWIDTH_SERVER_H
