/**
 * @file
 * Generational slab arena for in-flight simulation state.
 *
 * The controller keeps one record per in-flight command and one MSHR
 * per in-flight translation walk. Both used to live in node-allocating
 * containers (an unordered_map of PendingCommand, a shared_ptr<Walk>),
 * putting an allocator round-trip on every command. The arena replaces
 * that with a freelist of recycled slots addressed by a generational
 * Handle:
 *
 *  - acquire() hands back a recycled object (the slot's previous
 *    contents survive — callers reset the fields they use, which lets
 *    members like std::vector keep their capacity across reuse);
 *  - release() bumps the slot's generation, so any Handle still held
 *    by a scheduled callback resolves to nullptr instead of aliasing
 *    the next command that reuses the slot;
 *  - storage is chunked, so T* stays stable across growth for the
 *    duration of one event callback.
 *
 * get() == nullptr is the teardown idiom: a completion or walk step
 * arriving after FLR/abort/quarantine sees a stale handle and drops
 * its work, exactly like the pending-map miss it replaces.
 */
#ifndef NESC_SIM_ARENA_H
#define NESC_SIM_ARENA_H

#include <cstdint>
#include <memory>
#include <vector>

namespace nesc::sim {

template <typename T>
class Arena {
  public:
    static constexpr std::uint32_t kInvalidIndex = 0xffffffffu;

    /** Weak reference to an arena slot; stale once the slot is released. */
    struct Handle {
        std::uint32_t index = kInvalidIndex;
        std::uint32_t generation = 0;

        explicit operator bool() const { return index != kInvalidIndex; }
        bool operator==(const Handle &) const = default;
    };

    /**
     * Takes a slot from the freelist (growing by one chunk when empty)
     * and returns a live handle. The object is recycled, not
     * re-constructed: the caller owns resetting its fields.
     */
    Handle
    acquire()
    {
        if (free_.empty())
            grow();
        const std::uint32_t index = free_.back();
        free_.pop_back();
        Entry &e = entry(index);
        e.live = true;
        ++live_;
        return Handle{index, e.generation};
    }

    /** The object for @p h, or nullptr when the handle is stale. */
    T *
    get(Handle h)
    {
        Entry *e = lookup(h);
        return e != nullptr ? &e->value : nullptr;
    }

    const T *
    get(Handle h) const
    {
        const Entry *e = const_cast<Arena *>(this)->lookup(h);
        return e != nullptr ? &e->value : nullptr;
    }

    /**
     * Returns a live slot to the freelist and bumps its generation so
     * every outstanding Handle to it goes stale. No-op when @p h is
     * already stale (releases are idempotent across teardown paths).
     */
    void
    release(Handle h)
    {
        Entry *e = lookup(h);
        if (e == nullptr)
            return;
        e->live = false;
        ++e->generation;
        --live_;
        free_.push_back(h.index);
    }

    std::size_t live() const { return live_; }
    std::size_t capacity() const { return chunks_.size() * kChunkSize; }

  private:
    static constexpr std::uint32_t kChunkSize = 64;

    struct Entry {
        T value{};
        std::uint32_t generation = 0;
        bool live = false;
    };

    struct Chunk {
        Entry entries[kChunkSize];
    };

    Entry &
    entry(std::uint32_t index)
    {
        return chunks_[index / kChunkSize]->entries[index % kChunkSize];
    }

    Entry *
    lookup(Handle h)
    {
        if (h.index >= chunks_.size() * kChunkSize)
            return nullptr;
        Entry &e = entry(h.index);
        if (!e.live || e.generation != h.generation)
            return nullptr;
        return &e;
    }

    void
    grow()
    {
        const std::uint32_t base =
            static_cast<std::uint32_t>(chunks_.size()) * kChunkSize;
        chunks_.push_back(std::make_unique<Chunk>());
        // Reversed so acquire() hands out ascending indices.
        for (std::uint32_t i = kChunkSize; i > 0; --i)
            free_.push_back(base + i - 1);
    }

    std::vector<std::unique_ptr<Chunk>> chunks_;
    std::vector<std::uint32_t> free_;
    std::size_t live_ = 0;
};

} // namespace nesc::sim

#endif // NESC_SIM_ARENA_H
