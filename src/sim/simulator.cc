#include "simulator.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace nesc::sim {

void
Simulator::schedule_at(Time when, Callback fn)
{
    assert(fn && "null event callback");
    if (when < now_)
        when = now_; // clamp: components may schedule "immediately"
    queue_.push_back(Event{when, next_seq_++, std::move(fn)});
    std::push_heap(queue_.begin(), queue_.end(), Later{});
}

bool
Simulator::step()
{
    if (queue_.empty())
        return false;
    std::pop_heap(queue_.begin(), queue_.end(), Later{});
    Event event = std::move(queue_.back());
    queue_.pop_back();
    assert(event.when >= now_);
    now_ = event.when;
    ++events_executed_;
    ++g_total_events_;
    event.fn();
    return true;
}

void
Simulator::run_until_idle()
{
    while (step()) {
    }
}

void
Simulator::run_until(Time deadline)
{
    while (!queue_.empty() && queue_.front().when <= deadline)
        step();
    if (deadline > now_)
        now_ = deadline;
}

} // namespace nesc::sim
