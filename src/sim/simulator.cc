#include "simulator.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace nesc::sim {

Simulator::Simulator()
{
    lanes_.push_back(Lane{{}, /*live=*/true, /*retired=*/false});
    // The internal timer lane (kTimerLane) exists from birth but is
    // excluded from live_lanes_: it cannot be registered or released,
    // so lane_count() keeps meaning "default + registered lanes".
    lanes_.push_back(Lane{{}, /*live=*/true, /*retired=*/false});
    live_lanes_ = 1;
    reserve(kDefaultReserve);
}

void
Simulator::reserve(std::size_t events)
{
    lanes_[kDefaultLane].heap.reserve(events);
    selector_.reserve(lanes_.size() + 16);
    if (slots_.capacity() < events)
        slots_.reserve(events);
}

void
Simulator::push_selector(Time when, std::uint64_t seq, LaneId lane)
{
    selector_.push_back(SelectorEntry{when, seq, lane});
    std::push_heap(selector_.begin(), selector_.end(), LaterEntry{});
}

void
Simulator::schedule_event(LaneId lane_id, Time when, Callback fn,
                          bool weak)
{
    assert(fn && "null event callback");
    assert(lane_id < lanes_.size() && lanes_[lane_id].live &&
           "scheduling on an unregistered lane");
    if (when < now_)
        when = now_; // clamp: components may schedule "immediately"
    // Park long-dated events away from busy lanes (see file comment in
    // the header); order is global (when, seq), so this cannot change
    // simulated results, only the heap traffic.
    if (when - now_ > kTimerHorizon)
        lane_id = kTimerLane;

    std::uint32_t slot;
    if (free_slots_.empty()) {
        slot = static_cast<std::uint32_t>(slots_.size());
        slots_.push_back(std::move(fn));
        slot_weak_.push_back(weak ? 1 : 0);
    } else {
        slot = free_slots_.back();
        free_slots_.pop_back();
        slots_[slot] = std::move(fn);
        slot_weak_[slot] = weak ? 1 : 0;
    }

    const EventKey key{when, next_seq_++, slot};
    if (lanes_[lane_id].heap.push(key))
        push_selector(key.when, key.seq, lane_id);
    ++pending_;
    if (weak)
        ++weak_pending_;
}

LaneId
Simulator::register_lane()
{
    LaneId id;
    if (!free_lanes_.empty()) {
        id = free_lanes_.back();
        free_lanes_.pop_back();
    } else {
        id = static_cast<LaneId>(lanes_.size());
        lanes_.emplace_back();
    }
    Lane &lane = lanes_[id];
    assert(lane.heap.empty());
    lane.live = true;
    lane.retired = false;
    ++live_lanes_;
    return id;
}

void
Simulator::release_lane(LaneId lane_id)
{
    assert(lane_id != kDefaultLane && "the default lane is permanent");
    assert(lane_id != kTimerLane && "the timer lane is internal");
    assert(lane_id < lanes_.size() && lanes_[lane_id].live);
    Lane &lane = lanes_[lane_id];
    if (lane.retired)
        return;
    if (lane.heap.empty()) {
        recycle_lane(lane_id);
        return;
    }
    lane.retired = true; // drains in order; recycled once empty
}

void
Simulator::recycle_lane(LaneId lane_id)
{
    Lane &lane = lanes_[lane_id];
    lane.live = false;
    lane.retired = false;
    --live_lanes_;
    free_lanes_.push_back(lane_id);
}

bool
Simulator::peek(Time &when)
{
    // Discard selector entries that no longer describe their lane's
    // top. Sequence numbers are globally unique and never reused, so a
    // stale entry can never falsely match a later event.
    while (!selector_.empty()) {
        const SelectorEntry &top = selector_.front();
        const Lane &lane = lanes_[top.lane];
        if (!lane.heap.empty() && lane.heap.top().seq == top.seq) {
            when = top.when;
            return true;
        }
        std::pop_heap(selector_.begin(), selector_.end(), LaterEntry{});
        selector_.pop_back();
    }
    return false;
}

bool
Simulator::step()
{
    Time when;
    if (!peek(when))
        return false;

    const SelectorEntry top = selector_.front();
    std::pop_heap(selector_.begin(), selector_.end(), LaterEntry{});
    selector_.pop_back();

    Lane &lane = lanes_[top.lane];
    const EventKey key = lane.heap.pop();
    assert(key.seq == top.seq);
    if (!lane.heap.empty()) {
        const EventKey &next = lane.heap.top();
        push_selector(next.when, next.seq, top.lane);
    } else if (lane.retired) {
        recycle_lane(top.lane);
    }

    assert(key.when >= now_);
    now_ = key.when;
    ++events_executed_;
    ++g_total_events_;
    --pending_;
    if (slot_weak_[key.slot] != 0)
        --weak_pending_;

    // Free the slot before invoking: the callback may schedule onto it.
    Callback fn = std::move(slots_[key.slot]);
    free_slots_.push_back(key.slot);
    fn();
    return true;
}

void
Simulator::run_until_idle()
{
    // Strong events drain in global order — weak timers that fall
    // before a pending strong event still fire — but the loop stops
    // once only weak (maintenance) events remain, leaving them armed.
    while (pending_ > weak_pending_)
        step();
}

void
Simulator::run_until(Time deadline)
{
    Time when;
    while (peek(when) && when <= deadline)
        step();
    if (deadline > now_)
        now_ = deadline;
}

} // namespace nesc::sim
