#include "simulator.h"

#include <cassert>
#include <utility>

namespace nesc::sim {

void
Simulator::schedule_at(Time when, Callback fn)
{
    assert(fn && "null event callback");
    if (when < now_)
        when = now_; // clamp: components may schedule "immediately"
    queue_.push(Event{when, next_seq_++, std::move(fn)});
}

bool
Simulator::step()
{
    if (queue_.empty())
        return false;
    // priority_queue::top() returns const&; the callback must be moved
    // out before pop, so copy the small fields and move the closure via
    // const_cast (safe: the element is removed immediately after).
    auto &top = const_cast<Event &>(queue_.top());
    const Time when = top.when;
    Callback fn = std::move(top.fn);
    queue_.pop();
    assert(when >= now_);
    now_ = when;
    ++events_executed_;
    fn();
    return true;
}

void
Simulator::run_until_idle()
{
    while (step()) {
    }
}

void
Simulator::run_until(Time deadline)
{
    while (!queue_.empty() && queue_.top().when <= deadline)
        step();
    if (deadline > now_)
        now_ = deadline;
}

} // namespace nesc::sim
