/**
 * @file
 * A complete OS storage software stack (one column of Figure 1).
 *
 * Assembles, top to bottom: VFS-entry CPU cost -> buffer cache -> I/O
 * scheduler -> driver CPU cost -> a backing BlockIo (a device, or a
 * virtual disk). Both the guest OS and the hypervisor instantiate one;
 * the paper's point is precisely that virtualized storage pays for TWO
 * of these stacks plus the transition costs between them.
 */
#ifndef NESC_BLOCKLAYER_OS_BLOCK_STACK_H
#define NESC_BLOCKLAYER_OS_BLOCK_STACK_H

#include <memory>
#include <string>

#include "blocklayer/buffer_cache.h"
#include "blocklayer/costed_block_io.h"
#include "blocklayer/io_scheduler.h"

namespace nesc::blk {

/** Per-layer CPU costs and cache policy of one OS instance. */
struct OsStackConfig {
    /** VFS + syscall entry per request. */
    sim::Duration vfs_cost = 1'800;
    /** Generic block layer per request (bio setup, completion). */
    sim::Duration block_layer_cost = 1'200;
    /** Driver submission + completion handling per request. */
    sim::Duration driver_cost = 1'000;
    /** Copy cost per 4 KiB between user and kernel buffers. */
    sim::Duration copy_per_4k = 250;
    /** Page-cache behaviour; direct_io bypasses the cache entirely. */
    BufferCacheConfig cache;
    bool direct_io = false;
    IoSchedulerConfig scheduler;
};

/** Assembled OS storage stack; see file comment. */
class OsBlockStack : public BlockIo {
  public:
    /**
     * @param name instance tag for accounting (e.g. "guest", "hv").
     * @param backing bottom of the stack; must outlive this object.
     */
    OsBlockStack(sim::Simulator &simulator, BlockIo &backing,
                 std::string name, const OsStackConfig &config = {});

    std::uint32_t block_size() const override { return top_->block_size(); }
    std::uint64_t num_blocks() const override { return top_->num_blocks(); }

    util::Status
    read_blocks(std::uint64_t blockno, std::uint32_t count,
                std::span<std::byte> out) override
    {
        return top_->read_blocks(blockno, count, out);
    }

    util::Status
    write_blocks(std::uint64_t blockno, std::uint32_t count,
                 std::span<const std::byte> in) override
    {
        return top_->write_blocks(blockno, count, in);
    }

    util::Status flush() override { return top_->flush(); }

    /** The cache layer, for stats; null when direct_io. */
    BufferCache *cache() { return cache_.get(); }
    IoScheduler &scheduler() { return *scheduler_; }
    const std::string &name() const { return name_; }

  private:
    std::string name_;
    std::unique_ptr<CostedBlockIo> driver_;
    std::unique_ptr<IoScheduler> scheduler_;
    std::unique_ptr<BufferCache> cache_;
    std::unique_ptr<CostedBlockIo> vfs_;
    BlockIo *top_ = nullptr;
};

} // namespace nesc::blk

#endif // NESC_BLOCKLAYER_OS_BLOCK_STACK_H
