#include "io_scheduler.h"

#include <algorithm>

namespace nesc::blk {

IoScheduler::IoScheduler(sim::Simulator &simulator, BlockIo &base,
                         const IoSchedulerConfig &config)
    : simulator_(simulator), base_(base), config_(config)
{
}

util::Status
IoScheduler::read_blocks(std::uint64_t blockno, std::uint32_t count,
                         std::span<std::byte> out)
{
    ++requests_;
    simulator_.advance(config_.per_request_cost);
    // Reads must observe plugged writes: flush overlapping ones first.
    for (const auto &w : pending_) {
        const std::uint64_t w_end =
            w.blockno + w.data.size() / block_size();
        if (blockno < w_end && w.blockno < blockno + count) {
            NESC_RETURN_IF_ERROR(dispatch_pending());
            break;
        }
    }
    ++dispatched_;
    return base_.read_blocks(blockno, count, out);
}

util::Status
IoScheduler::write_blocks(std::uint64_t blockno, std::uint32_t count,
                          std::span<const std::byte> in)
{
    ++requests_;
    simulator_.advance(config_.per_request_cost);
    if (!plugged_) {
        ++dispatched_;
        return base_.write_blocks(blockno, count, in);
    }
    // Back-merge onto the previous request when physically contiguous.
    if (!pending_.empty()) {
        auto &last = pending_.back();
        if (last.blockno + last.data.size() / block_size() == blockno) {
            last.data.insert(last.data.end(), in.begin(), in.end());
            ++merges_;
            return util::Status::ok();
        }
    }
    pending_.push_back(PendingWrite{
        blockno, std::vector<std::byte>(in.begin(), in.end())});
    if (pending_.size() >= config_.max_plugged)
        return dispatch_pending();
    return util::Status::ok();
}

util::Status
IoScheduler::dispatch_pending()
{
    // Sort then merge adjacent runs across requests (elevator order).
    std::sort(pending_.begin(), pending_.end(),
              [](const PendingWrite &a, const PendingWrite &b) {
                  return a.blockno < b.blockno;
              });
    std::size_t i = 0;
    while (i < pending_.size()) {
        PendingWrite &head = pending_[i];
        std::size_t j = i + 1;
        while (j < pending_.size() &&
               pending_[j].blockno ==
                   head.blockno + head.data.size() / block_size()) {
            head.data.insert(head.data.end(), pending_[j].data.begin(),
                             pending_[j].data.end());
            ++merges_;
            ++j;
        }
        ++dispatched_;
        NESC_RETURN_IF_ERROR(base_.write_blocks(
            head.blockno,
            static_cast<std::uint32_t>(head.data.size() / block_size()),
            head.data));
        i = j;
    }
    pending_.clear();
    return util::Status::ok();
}

util::Status
IoScheduler::unplug()
{
    plugged_ = false;
    return dispatch_pending();
}

util::Status
IoScheduler::flush()
{
    NESC_RETURN_IF_ERROR(dispatch_pending());
    return base_.flush();
}

} // namespace nesc::blk
