/**
 * @file
 * BlockIo terminal adapter over a storage device.
 *
 * Models a block device driver talking straight to locally attached
 * media: each operation books the device's media port and advances the
 * simulation clock to the completion time. This is the bottom of the
 * hypervisor's stack (and of the "Host" baseline in the paper's
 * figures, where the hypervisor accesses the PF without any
 * virtualization layer).
 */
#ifndef NESC_BLOCKLAYER_DEVICE_BLOCK_IO_H
#define NESC_BLOCKLAYER_DEVICE_BLOCK_IO_H

#include "blocklayer/block_io.h"
#include "sim/simulator.h"
#include "storage/block_device.h"

namespace nesc::blk {

/** Direct driver <-> device adapter; see file comment. */
class DeviceBlockIo : public BlockIo {
  public:
    DeviceBlockIo(sim::Simulator &simulator, storage::BlockDevice &device)
        : simulator_(simulator), device_(device)
    {
    }

    std::uint32_t
    block_size() const override
    {
        return device_.geometry().logical_block_size;
    }

    std::uint64_t
    num_blocks() const override
    {
        return device_.geometry().num_blocks();
    }

    util::Status read_blocks(std::uint64_t blockno, std::uint32_t count,
                             std::span<std::byte> out) override;

    util::Status write_blocks(std::uint64_t blockno, std::uint32_t count,
                              std::span<const std::byte> in) override;

    util::Status flush() override { return util::Status::ok(); }

  private:
    sim::Simulator &simulator_;
    storage::BlockDevice &device_;
};

} // namespace nesc::blk

#endif // NESC_BLOCKLAYER_DEVICE_BLOCK_IO_H
