#include "os_block_stack.h"

namespace nesc::blk {

OsBlockStack::OsBlockStack(sim::Simulator &simulator, BlockIo &backing,
                           std::string name, const OsStackConfig &config)
    : name_(std::move(name))
{
    driver_ = std::make_unique<CostedBlockIo>(
        simulator, backing, name_ + "-driver", config.driver_cost);
    scheduler_ =
        std::make_unique<IoScheduler>(simulator, *driver_, config.scheduler);
    BlockIo *below_vfs = scheduler_.get();
    if (!config.direct_io) {
        cache_ = std::make_unique<BufferCache>(simulator, *scheduler_,
                                               config.cache);
        below_vfs = cache_.get();
    }
    vfs_ = std::make_unique<CostedBlockIo>(
        simulator, *below_vfs, name_ + "-vfs",
        config.vfs_cost + config.block_layer_cost, config.copy_per_4k);
    top_ = vfs_.get();
}

} // namespace nesc::blk
