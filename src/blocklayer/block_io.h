/**
 * @file
 * Synchronous block-granular I/O interface.
 *
 * The OS software layers of Figure 1 (VFS, generic block layer, I/O
 * scheduler, driver) are modelled as a stack of BlockIo decorators.
 * Calls are synchronous *in simulated time*: an implementation advances
 * the shared simulator clock by however long the operation takes (CPU
 * cost, cache handling, device service). The filesystem sits on top of
 * this interface, so the same nestfs code runs over a raw device, over
 * a cached stack, or over a virtualized disk.
 */
#ifndef NESC_BLOCKLAYER_BLOCK_IO_H
#define NESC_BLOCKLAYER_BLOCK_IO_H

#include <cstddef>
#include <cstdint>
#include <span>

#include "util/status.h"

namespace nesc::blk {

/** Block-granular synchronous storage interface. */
class BlockIo {
  public:
    virtual ~BlockIo() = default;

    /** Bytes per block (all stacks in this project use 1 KiB). */
    virtual std::uint32_t block_size() const = 0;

    /** Device capacity in blocks. */
    virtual std::uint64_t num_blocks() const = 0;

    /**
     * Reads @p count blocks starting at @p blockno into @p out, whose
     * size must be count * block_size().
     */
    virtual util::Status read_blocks(std::uint64_t blockno,
                                     std::uint32_t count,
                                     std::span<std::byte> out) = 0;

    /** Writes @p count blocks starting at @p blockno from @p in. */
    virtual util::Status write_blocks(std::uint64_t blockno,
                                      std::uint32_t count,
                                      std::span<const std::byte> in) = 0;

    /**
     * Durability barrier: forces any buffered writes down the stack.
     * A raw device stack is a no-op.
     */
    virtual util::Status flush() = 0;
};

} // namespace nesc::blk

#endif // NESC_BLOCKLAYER_BLOCK_IO_H
