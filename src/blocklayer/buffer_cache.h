/**
 * @file
 * Block buffer cache (the OS "page cache" of Figure 1).
 *
 * An LRU write-back (or write-through) cache of device blocks layered
 * over a BlockIo. The guest and hypervisor each instantiate one, which
 * is exactly the replication the paper's nested-filesystem discussion
 * targets; benches that measure raw device behaviour bypass it, like
 * O_DIRECT does.
 */
#ifndef NESC_BLOCKLAYER_BUFFER_CACHE_H
#define NESC_BLOCKLAYER_BUFFER_CACHE_H

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "blocklayer/block_io.h"
#include "sim/simulator.h"

namespace nesc::blk {

/** Cache policy knobs. */
struct BufferCacheConfig {
    /** Cached blocks; 128 MiB of 1 KiB blocks in the paper's guests. */
    std::uint64_t capacity_blocks = 4096;
    /** Write-through forwards every write immediately. */
    bool write_through = false;
    /** CPU cost of a cache hit (lookup + copy), charged per block. */
    sim::Duration hit_cost = 250;
    /** CPU cost of handling a miss, excluding the downstream access. */
    sim::Duration miss_cost = 400;
};

/** LRU block cache; see file comment. */
class BufferCache : public BlockIo {
  public:
    BufferCache(sim::Simulator &simulator, BlockIo &base,
                const BufferCacheConfig &config = {});

    std::uint32_t block_size() const override { return base_.block_size(); }
    std::uint64_t num_blocks() const override { return base_.num_blocks(); }

    util::Status read_blocks(std::uint64_t blockno, std::uint32_t count,
                             std::span<std::byte> out) override;
    util::Status write_blocks(std::uint64_t blockno, std::uint32_t count,
                              std::span<const std::byte> in) override;

    /** Writes back all dirty blocks (merging adjacent runs), then
     * forwards the flush. */
    util::Status flush() override;

    /** Drops every clean block; fails if dirty blocks remain. */
    util::Status invalidate();

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t evictions() const { return evictions_; }
    std::uint64_t writebacks() const { return writebacks_; }
    std::uint64_t cached_blocks() const { return map_.size(); }
    std::uint64_t dirty_blocks() const { return dirty_count_; }

  private:
    struct Entry {
        std::uint64_t blockno;
        bool dirty;
        std::vector<std::byte> data;
    };
    using LruList = std::list<Entry>;

    /** Moves @p it to MRU position. */
    void touch(LruList::iterator it);
    /** Inserts a block, evicting as needed; returns its entry. */
    util::Result<LruList::iterator> insert(std::uint64_t blockno,
                                           std::span<const std::byte> data,
                                           bool dirty);
    util::Status evict_one();
    util::Status writeback_entry(Entry &entry);

    sim::Simulator &simulator_;
    BlockIo &base_;
    BufferCacheConfig config_;
    LruList lru_; ///< front = MRU
    std::unordered_map<std::uint64_t, LruList::iterator> map_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t evictions_ = 0;
    std::uint64_t writebacks_ = 0;
    std::uint64_t dirty_count_ = 0;
};

} // namespace nesc::blk

#endif // NESC_BLOCKLAYER_BUFFER_CACHE_H
