/**
 * @file
 * CPU-cost decorator for a BlockIo stack layer.
 *
 * Each OS software layer in Figure 1 charges per-request CPU time
 * before forwarding. Stacking CostedBlockIo decorators reproduces the
 * paper's core observation: as devices get faster, these fixed software
 * costs — replicated in guest and hypervisor — dominate storage
 * latency (paper §II).
 */
#ifndef NESC_BLOCKLAYER_COSTED_BLOCK_IO_H
#define NESC_BLOCKLAYER_COSTED_BLOCK_IO_H

#include <string>

#include "blocklayer/block_io.h"
#include "sim/simulator.h"

namespace nesc::blk {

/** Charges a fixed CPU cost per operation, then forwards. */
class CostedBlockIo : public BlockIo {
  public:
    /**
     * @param name layer name for accounting (e.g. "guest-vfs").
     * @param per_op_cost CPU nanoseconds charged per read/write.
     * @param per_byte_cost additional CPU nanoseconds per 4 KiB moved
     *        (copy / bio assembly work that scales with size).
     */
    CostedBlockIo(sim::Simulator &simulator, BlockIo &base, std::string name,
                  sim::Duration per_op_cost, sim::Duration per_4k_cost = 0)
        : simulator_(simulator), base_(base), name_(std::move(name)),
          per_op_cost_(per_op_cost), per_4k_cost_(per_4k_cost)
    {
    }

    std::uint32_t block_size() const override { return base_.block_size(); }
    std::uint64_t num_blocks() const override { return base_.num_blocks(); }

    util::Status
    read_blocks(std::uint64_t blockno, std::uint32_t count,
                std::span<std::byte> out) override
    {
        charge(out.size());
        return base_.read_blocks(blockno, count, out);
    }

    util::Status
    write_blocks(std::uint64_t blockno, std::uint32_t count,
                 std::span<const std::byte> in) override
    {
        charge(in.size());
        return base_.write_blocks(blockno, count, in);
    }

    util::Status
    flush() override
    {
        charge(0);
        return base_.flush();
    }

    const std::string &name() const { return name_; }
    std::uint64_t ops() const { return ops_; }
    sim::Duration cpu_charged() const { return cpu_charged_; }

  private:
    void
    charge(std::uint64_t bytes)
    {
        const sim::Duration cost =
            per_op_cost_ + per_4k_cost_ * ((bytes + 4095) / 4096);
        simulator_.advance(cost);
        cpu_charged_ += cost;
        ++ops_;
    }

    sim::Simulator &simulator_;
    BlockIo &base_;
    std::string name_;
    sim::Duration per_op_cost_;
    sim::Duration per_4k_cost_;
    std::uint64_t ops_ = 0;
    sim::Duration cpu_charged_ = 0;
};

} // namespace nesc::blk

#endif // NESC_BLOCKLAYER_COSTED_BLOCK_IO_H
