#include "device_block_io.h"

namespace nesc::blk {

util::Status
DeviceBlockIo::read_blocks(std::uint64_t blockno, std::uint32_t count,
                           std::span<std::byte> out)
{
    const std::uint64_t bytes =
        static_cast<std::uint64_t>(count) * block_size();
    if (out.size() != bytes)
        return util::invalid_argument_error("read buffer size mismatch");
    NESC_RETURN_IF_ERROR(device_.read(blockno * block_size(), out));
    const sim::Time done =
        device_.service_read(simulator_.now(), blockno * block_size(),
                             bytes);
    simulator_.run_until(done);
    return util::Status::ok();
}

util::Status
DeviceBlockIo::write_blocks(std::uint64_t blockno, std::uint32_t count,
                            std::span<const std::byte> in)
{
    const std::uint64_t bytes =
        static_cast<std::uint64_t>(count) * block_size();
    if (in.size() != bytes)
        return util::invalid_argument_error("write buffer size mismatch");
    NESC_RETURN_IF_ERROR(device_.write(blockno * block_size(), in));
    const sim::Time done =
        device_.service_write(simulator_.now(), blockno * block_size(),
                              bytes);
    simulator_.run_until(done);
    return util::Status::ok();
}

} // namespace nesc::blk
