/**
 * @file
 * I/O scheduler layer: request merging.
 *
 * The kernel's block scheduler coalesces adjacent requests before they
 * reach the driver ("plugging"). This layer does the same: operations
 * issued while the queue is plugged accumulate and merge; unplugging
 * dispatches the merged ops in order. Unplugged operation forwards
 * immediately (the noop-scheduler behaviour typical for fast PCIe
 * SSDs), still merging within a single multi-block call.
 */
#ifndef NESC_BLOCKLAYER_IO_SCHEDULER_H
#define NESC_BLOCKLAYER_IO_SCHEDULER_H

#include <cstdint>
#include <vector>

#include "blocklayer/block_io.h"
#include "sim/simulator.h"

namespace nesc::blk {

/** Scheduler tuning. */
struct IoSchedulerConfig {
    /** CPU cost of queueing/merging one request. */
    sim::Duration per_request_cost = 300;
    /** Dispatch automatically once this many requests are plugged. */
    std::uint32_t max_plugged = 32;
};

/** Merging I/O scheduler; see file comment. */
class IoScheduler : public BlockIo {
  public:
    IoScheduler(sim::Simulator &simulator, BlockIo &base,
                const IoSchedulerConfig &config = {});

    std::uint32_t block_size() const override { return base_.block_size(); }
    std::uint64_t num_blocks() const override { return base_.num_blocks(); }

    util::Status read_blocks(std::uint64_t blockno, std::uint32_t count,
                             std::span<std::byte> out) override;
    util::Status write_blocks(std::uint64_t blockno, std::uint32_t count,
                              std::span<const std::byte> in) override;

    /** Dispatches plugged writes, then forwards the flush. */
    util::Status flush() override;

    /** Starts batching writes instead of forwarding them. */
    void plug() { plugged_ = true; }

    /** Stops batching and dispatches everything accumulated. */
    util::Status unplug();

    std::uint64_t requests() const { return requests_; }
    std::uint64_t dispatched() const { return dispatched_; }
    /** Requests absorbed into a neighbour (merged away). */
    std::uint64_t merges() const { return merges_; }

  private:
    struct PendingWrite {
        std::uint64_t blockno;
        std::vector<std::byte> data; // multiple of block_size()
    };

    util::Status dispatch_pending();

    sim::Simulator &simulator_;
    BlockIo &base_;
    IoSchedulerConfig config_;
    bool plugged_ = false;
    std::vector<PendingWrite> pending_;
    std::uint64_t requests_ = 0;
    std::uint64_t dispatched_ = 0;
    std::uint64_t merges_ = 0;
};

} // namespace nesc::blk

#endif // NESC_BLOCKLAYER_IO_SCHEDULER_H
