#include "buffer_cache.h"

#include <algorithm>

namespace nesc::blk {

BufferCache::BufferCache(sim::Simulator &simulator, BlockIo &base,
                         const BufferCacheConfig &config)
    : simulator_(simulator), base_(base), config_(config)
{
}

void
BufferCache::touch(LruList::iterator it)
{
    lru_.splice(lru_.begin(), lru_, it);
}

util::Status
BufferCache::writeback_entry(Entry &entry)
{
    NESC_RETURN_IF_ERROR(base_.write_blocks(entry.blockno, 1, entry.data));
    entry.dirty = false;
    --dirty_count_;
    ++writebacks_;
    return util::Status::ok();
}

util::Status
BufferCache::evict_one()
{
    if (lru_.empty())
        return util::internal_error("evicting from an empty cache");
    auto victim = std::prev(lru_.end());
    if (victim->dirty)
        NESC_RETURN_IF_ERROR(writeback_entry(*victim));
    map_.erase(victim->blockno);
    lru_.erase(victim);
    ++evictions_;
    return util::Status::ok();
}

util::Result<BufferCache::LruList::iterator>
BufferCache::insert(std::uint64_t blockno, std::span<const std::byte> data,
                    bool dirty)
{
    while (map_.size() >= config_.capacity_blocks)
        NESC_RETURN_IF_ERROR(evict_one());
    lru_.push_front(Entry{blockno, dirty,
                          std::vector<std::byte>(data.begin(), data.end())});
    map_[blockno] = lru_.begin();
    if (dirty)
        ++dirty_count_;
    return lru_.begin();
}

util::Status
BufferCache::read_blocks(std::uint64_t blockno, std::uint32_t count,
                         std::span<std::byte> out)
{
    const std::uint32_t bs = block_size();
    if (out.size() != static_cast<std::uint64_t>(count) * bs)
        return util::invalid_argument_error("read buffer size mismatch");

    std::uint32_t i = 0;
    while (i < count) {
        auto it = map_.find(blockno + i);
        if (it != map_.end()) {
            simulator_.advance(config_.hit_cost);
            ++hits_;
            touch(it->second);
            std::copy(it->second->data.begin(), it->second->data.end(),
                      out.begin() + static_cast<std::size_t>(i) * bs);
            ++i;
            continue;
        }
        // Gather the contiguous run of misses and fetch it in one
        // downstream access (readahead-style clustering).
        std::uint32_t run = 1;
        while (i + run < count && !map_.contains(blockno + i + run))
            ++run;
        simulator_.advance(config_.miss_cost);
        misses_ += run;
        auto dst = out.subspan(static_cast<std::size_t>(i) * bs,
                               static_cast<std::size_t>(run) * bs);
        NESC_RETURN_IF_ERROR(base_.read_blocks(blockno + i, run, dst));
        for (std::uint32_t j = 0; j < run; ++j) {
            NESC_RETURN_IF_ERROR(
                insert(blockno + i + j,
                       dst.subspan(static_cast<std::size_t>(j) * bs, bs),
                       /*dirty=*/false)
                    .status());
        }
        i += run;
    }
    return util::Status::ok();
}

util::Status
BufferCache::write_blocks(std::uint64_t blockno, std::uint32_t count,
                          std::span<const std::byte> in)
{
    const std::uint32_t bs = block_size();
    if (in.size() != static_cast<std::uint64_t>(count) * bs)
        return util::invalid_argument_error("write buffer size mismatch");

    for (std::uint32_t i = 0; i < count; ++i) {
        auto src = in.subspan(static_cast<std::size_t>(i) * bs, bs);
        auto it = map_.find(blockno + i);
        if (it != map_.end()) {
            simulator_.advance(config_.hit_cost);
            ++hits_;
            touch(it->second);
            std::copy(src.begin(), src.end(), it->second->data.begin());
            if (!it->second->dirty && !config_.write_through) {
                it->second->dirty = true;
                ++dirty_count_;
            }
        } else {
            simulator_.advance(config_.miss_cost);
            ++misses_;
            NESC_RETURN_IF_ERROR(
                insert(blockno + i, src, !config_.write_through).status());
        }
    }
    if (config_.write_through)
        NESC_RETURN_IF_ERROR(base_.write_blocks(blockno, count, in));
    return util::Status::ok();
}

util::Status
BufferCache::flush()
{
    // Collect dirty blocks sorted so adjacent runs merge into single
    // downstream writes.
    std::vector<LruList::iterator> dirty;
    for (auto it = lru_.begin(); it != lru_.end(); ++it)
        if (it->dirty)
            dirty.push_back(it);
    std::sort(dirty.begin(), dirty.end(),
              [](auto a, auto b) { return a->blockno < b->blockno; });

    const std::uint32_t bs = block_size();
    std::size_t i = 0;
    while (i < dirty.size()) {
        std::size_t run = 1;
        while (i + run < dirty.size() &&
               dirty[i + run]->blockno == dirty[i]->blockno + run)
            ++run;
        std::vector<std::byte> buf(run * bs);
        for (std::size_t j = 0; j < run; ++j) {
            std::copy(dirty[i + j]->data.begin(), dirty[i + j]->data.end(),
                      buf.begin() + j * bs);
            dirty[i + j]->dirty = false;
            --dirty_count_;
            ++writebacks_;
        }
        NESC_RETURN_IF_ERROR(base_.write_blocks(
            dirty[i]->blockno, static_cast<std::uint32_t>(run), buf));
        i += run;
    }
    return base_.flush();
}

util::Status
BufferCache::invalidate()
{
    if (dirty_count_ != 0) {
        return util::failed_precondition_error(
            "invalidate with dirty blocks cached; flush first");
    }
    lru_.clear();
    map_.clear();
    return util::Status::ok();
}

} // namespace nesc::blk
