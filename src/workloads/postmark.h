/**
 * @file
 * Postmark mail-server simulation (paper Table II).
 *
 * The classic Postmark benchmark: create an initial pool of small
 * files, then run a transaction mix of {create, delete, read, append}
 * against the pool, and finally delete everything. Exercises metadata
 * churn and small-file I/O on the guest filesystem — the access
 * pattern where nested storage virtualization hurts most.
 */
#ifndef NESC_WL_POSTMARK_H
#define NESC_WL_POSTMARK_H

#include "fs/nestfs.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "util/status.h"
#include "virt/guest_vm.h"

namespace nesc::wl {

/** Postmark parameters (defaults scaled down from the classic run). */
struct PostmarkConfig {
    std::uint32_t initial_files = 100;
    std::uint32_t transactions = 500;
    std::uint64_t min_file_bytes = 512;
    std::uint64_t max_file_bytes = 16 * 1024;
    /** Probability a transaction is create/delete (vs read/append). */
    double create_delete_bias = 0.5;
    std::uint64_t seed = 42;
    /** Directory holding the file pool. */
    std::string directory = "/postmark";
    /** fsync after each write transaction (mail-server durability). */
    bool sync_writes = true;
};

/** Postmark results. */
struct PostmarkResult {
    std::uint64_t transactions = 0;
    std::uint64_t files_created = 0;
    std::uint64_t files_deleted = 0;
    std::uint64_t reads = 0;
    std::uint64_t appends = 0;
    std::uint64_t bytes_read = 0;
    std::uint64_t bytes_written = 0;
    sim::Duration elapsed = 0;
    double transactions_per_sec = 0.0;
};

/** Runs Postmark inside @p vm's filesystem. */
util::Result<PostmarkResult> run_postmark(sim::Simulator &simulator,
                                          virt::GuestVm &vm,
                                          const PostmarkConfig &config);

} // namespace nesc::wl

#endif // NESC_WL_POSTMARK_H
