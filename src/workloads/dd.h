/**
 * @file
 * dd-style sequential I/O microbenchmark (paper Table II, GNU dd).
 *
 * Reads or writes a byte stream in fixed-size requests, either on a
 * raw block device (through a guest's or the host's I/O stack) or on
 * a file in a guest filesystem. Collects both per-request latency and
 * aggregate bandwidth — the series Figures 9, 10 and 11 plot.
 */
#ifndef NESC_WL_DD_H
#define NESC_WL_DD_H

#include "blocklayer/block_io.h"
#include "fs/nestfs.h"
#include "sim/simulator.h"
#include "util/stats.h"
#include "util/status.h"
#include "virt/guest_vm.h"

namespace nesc::wl {

/** dd parameters. */
struct DdConfig {
    /** Request ("block") size in bytes; dd's bs=. */
    std::uint64_t request_bytes = 4096;
    /** Total bytes to move; dd's bs*count. */
    std::uint64_t total_bytes = 1 << 20;
    /** Byte offset where the stream starts. */
    std::uint64_t start_offset = 0;
    bool write = false;
    /** Seed of the deterministic data pattern written / verified. */
    std::uint64_t pattern_seed = 1;
    /** Verify read data against the pattern (reads only). */
    bool verify = false;
};

/** dd results. */
struct DdResult {
    std::uint64_t requests = 0;
    std::uint64_t bytes = 0;
    sim::Duration elapsed = 0;
    double bandwidth_mb_s = 0.0;
    double mean_latency_us = 0.0;
    double p99_latency_us = 0.0;
};

/**
 * Runs dd on a raw block device through @p io. Sub-block request
 * sizes (512 B on a 1 KiB device) are rounded up to one device block
 * for the transfer but reported at the requested size, mirroring how
 * dd on a real 512B-sector device behaves over a 1 KiB-block store.
 */
util::Result<DdResult> run_dd_raw(sim::Simulator &simulator,
                                  blk::BlockIo &io, const DdConfig &config);

/**
 * Runs dd on a file inside a guest filesystem, charging the guest
 * syscall cost per request (the Figure 11 configuration).
 */
util::Result<DdResult> run_dd_file(sim::Simulator &simulator,
                                   virt::GuestVm &vm, fs::InodeId ino,
                                   const DdConfig &config);

/** Deterministic pattern byte for stream position @p pos. */
constexpr std::byte
pattern_byte(std::uint64_t seed, std::uint64_t pos)
{
    const std::uint64_t x = (pos ^ seed) * 0x9e3779b97f4a7c15ULL;
    return static_cast<std::byte>((x >> 32) & 0xff);
}

/** Fills @p buf with the pattern starting at stream position @p pos. */
void fill_pattern(std::uint64_t seed, std::uint64_t pos,
                  std::span<std::byte> buf);

/** Verifies @p buf against the pattern; returns first mismatch or -1. */
std::int64_t check_pattern(std::uint64_t seed, std::uint64_t pos,
                           std::span<const std::byte> buf);

} // namespace nesc::wl

#endif // NESC_WL_DD_H
