#include "oltp.h"

#include "util/stats.h"
#include "util/units.h"
#include "workloads/btree.h"
#include "workloads/dd.h"

namespace nesc::wl {

namespace {

/** Bijective scramble of a row id into a primary-key value. */
constexpr std::uint64_t
row_key(std::uint64_t row)
{
    std::uint64_t x = row + 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

} // namespace

util::Result<OltpResult>
run_oltp_on(sim::Simulator &simulator, MiniDb &db, const OltpConfig &config)
{
    util::Rng rng(config.seed);
    OltpResult result;
    util::Sampler txn_latencies;
    std::vector<std::byte> row(db.config().row_bytes);

    if (config.use_index) {
        // MiniDb and the index live in the same guest; recover the VM
        // handle through the db's config directory convention is not
        // possible, so the index-enabled entry point is run_oltp()
        // below, which owns both. Reaching here with use_index set and
        // no index built means the caller bypassed run_oltp().
        return util::invalid_argument_error(
            "use_index requires the run_oltp() entry point");
    }

    const sim::Time start = simulator.now();
    for (std::uint32_t t = 0; t < config.transactions; ++t) {
        const sim::Time txn_start = simulator.now();
        NESC_RETURN_IF_ERROR(db.begin());
        for (std::uint32_t op = 0; op < config.ops_per_txn; ++op) {
            const std::uint64_t target =
                config.zipf_theta > 0.0
                    ? rng.zipf(db.config().rows, config.zipf_theta)
                    : rng.next_below(db.config().rows);
            if (rng.next_bool(config.read_ratio)) {
                NESC_RETURN_IF_ERROR(db.get(target).status());
                ++result.reads;
            } else {
                fill_pattern(target, t + 1, row);
                NESC_RETURN_IF_ERROR(db.put(target, row));
                ++result.updates;
            }
        }
        NESC_RETURN_IF_ERROR(db.commit());
        ++result.transactions;
        txn_latencies.add(
            static_cast<double>(simulator.now() - txn_start));
    }
    result.elapsed = simulator.now() - start;
    result.transactions_per_sec =
        result.elapsed
            ? static_cast<double>(result.transactions) /
                  util::ns_to_sec(result.elapsed)
            : 0.0;
    result.mean_txn_latency_us = txn_latencies.mean() / 1000.0;
    return result;
}

util::Result<OltpResult>
run_oltp(sim::Simulator &simulator, virt::GuestVm &vm,
         const OltpConfig &config)
{
    NESC_ASSIGN_OR_RETURN(auto db,
                          MiniDb::create(simulator, vm, config.db));
    if (!config.use_index) {
        return run_oltp_on(simulator, *db, config);
    }

    // Index-enabled variant: build the primary-key index, then route
    // every access through key -> row resolution.
    BTreeConfig tree_config;
    tree_config.path = config.db.directory + "/pk.btree";
    NESC_ASSIGN_OR_RETURN(auto index,
                          BTreeIndex::create(simulator, vm, tree_config));
    for (std::uint64_t r = 0; r < config.db.rows; ++r)
        NESC_RETURN_IF_ERROR(index->insert(row_key(r), r));
    NESC_RETURN_IF_ERROR(index->flush());

    util::Rng rng(config.seed);
    OltpResult result;
    util::Sampler txn_latencies;
    std::vector<std::byte> row(db->config().row_bytes);
    const sim::Time start = simulator.now();
    for (std::uint32_t t = 0; t < config.transactions; ++t) {
        const sim::Time txn_start = simulator.now();
        NESC_RETURN_IF_ERROR(db->begin());
        for (std::uint32_t op = 0; op < config.ops_per_txn; ++op) {
            const std::uint64_t chosen =
                config.zipf_theta > 0.0
                    ? rng.zipf(config.db.rows, config.zipf_theta)
                    : rng.next_below(config.db.rows);
            // The application knows keys, not row numbers: probe the
            // index to find the row, exactly like `WHERE pk = ?`.
            NESC_ASSIGN_OR_RETURN(auto found,
                                  index->lookup(row_key(chosen)));
            if (!found.has_value())
                return util::internal_error("index lost a key");
            const std::uint64_t target = *found;
            if (rng.next_bool(config.read_ratio)) {
                NESC_RETURN_IF_ERROR(db->get(target).status());
                ++result.reads;
            } else {
                fill_pattern(target, t + 1, row);
                NESC_RETURN_IF_ERROR(db->put(target, row));
                ++result.updates;
            }
        }
        NESC_RETURN_IF_ERROR(db->commit());
        ++result.transactions;
        txn_latencies.add(
            static_cast<double>(simulator.now() - txn_start));
    }
    result.elapsed = simulator.now() - start;
    result.transactions_per_sec =
        result.elapsed
            ? static_cast<double>(result.transactions) /
                  util::ns_to_sec(result.elapsed)
            : 0.0;
    result.mean_txn_latency_us = txn_latencies.mean() / 1000.0;
    return result;
}

} // namespace nesc::wl
