#include "trace.h"

#include <cinttypes>
#include <cstdio>

#include "util/stats.h"
#include "util/units.h"
#include "workloads/dd.h"

namespace nesc::wl {

util::Result<ReplayResult>
replay_trace(sim::Simulator &simulator, blk::BlockIo &target,
             const std::vector<TraceRecord> &trace,
             const ReplayConfig &config)
{
    ReplayResult result;
    util::Sampler latencies;
    const std::uint32_t bs = target.block_size();
    std::vector<std::byte> buf;

    const sim::Time replay_start = simulator.now();
    const sim::Time trace_start = trace.empty() ? 0 : trace.front().issued;

    for (const TraceRecord &record : trace) {
        if (record.count == 0 ||
            record.blockno + record.count > target.num_blocks())
            continue; // clipped: target too small for this op
        if (config.preserve_think_time) {
            const sim::Time due =
                replay_start + (record.issued - trace_start);
            if (due > simulator.now())
                simulator.run_until(due);
        }
        buf.resize(static_cast<std::size_t>(record.count) * bs);
        const sim::Time op_start = simulator.now();
        if (record.write) {
            fill_pattern(config.pattern_seed, record.blockno * bs, buf);
            NESC_RETURN_IF_ERROR(
                target.write_blocks(record.blockno, record.count, buf));
            ++result.writes;
        } else {
            NESC_RETURN_IF_ERROR(
                target.read_blocks(record.blockno, record.count, buf));
            ++result.reads;
        }
        latencies.add(static_cast<double>(simulator.now() - op_start));
        result.bytes += buf.size();
    }
    result.elapsed = simulator.now() - replay_start;
    result.mean_latency_us = latencies.mean() / 1000.0;
    result.bandwidth_mb_s =
        util::bandwidth_mb_per_sec(result.bytes, result.elapsed);
    return result;
}

std::string
trace_to_text(const std::vector<TraceRecord> &trace)
{
    std::string out;
    char line[96];
    for (const TraceRecord &record : trace) {
        std::snprintf(line, sizeof(line),
                      "%" PRIu64 " %c %" PRIu64 " %" PRIu32 "\n",
                      record.issued, record.write ? 'W' : 'R',
                      record.blockno, record.count);
        out += line;
    }
    return out;
}

util::Result<std::vector<TraceRecord>>
trace_from_text(const std::string &text)
{
    std::vector<TraceRecord> trace;
    std::size_t pos = 0;
    int lineno = 0;
    while (pos < text.size()) {
        std::size_t end = text.find('\n', pos);
        if (end == std::string::npos)
            end = text.size();
        const std::string line = text.substr(pos, end - pos);
        pos = end + 1;
        ++lineno;
        if (line.empty())
            continue;
        std::uint64_t issued = 0, blockno = 0;
        std::uint32_t count = 0;
        char op = 0;
        int consumed = -1;
        // The trailing " %n" both records how much was consumed and
        // skips trailing whitespace (tolerating CRLF traces); anything
        // left after it — a fifth field, garbage — is a parse error,
        // as is a short line (sscanf stops before the %n fires).
        std::sscanf(line.c_str(),
                    "%" SCNu64 " %c %" SCNu64 " %" SCNu32 " %n", &issued,
                    &op, &blockno, &count, &consumed);
        if (consumed < 0 ||
            static_cast<std::size_t>(consumed) != line.size() ||
            (op != 'R' && op != 'W')) {
            return util::invalid_argument_error(
                "malformed trace line " + std::to_string(lineno) + ": " +
                line);
        }
        trace.push_back(TraceRecord{issued, op == 'W', blockno, count});
    }
    return trace;
}

} // namespace nesc::wl
