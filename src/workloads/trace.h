/**
 * @file
 * Block-I/O trace capture and replay.
 *
 * A TraceRecorder is a transparent BlockIo decorator that records
 * every operation (issue time, direction, block range) flowing
 * through it; replay_trace() re-issues a captured trace against any
 * target — another attachment technique, a differently configured
 * controller — optionally preserving the original inter-arrival gaps.
 * This is how a downstream user compares NeSC against virtio on THEIR
 * workload rather than on dd: capture once inside the guest, replay
 * everywhere. Traces serialize to a simple line format for storage.
 */
#ifndef NESC_WL_TRACE_H
#define NESC_WL_TRACE_H

#include <cstdint>
#include <string>
#include <vector>

#include "blocklayer/block_io.h"
#include "sim/simulator.h"
#include "util/status.h"

namespace nesc::wl {

/** One captured block operation. */
struct TraceRecord {
    sim::Time issued = 0; ///< simulated issue time
    bool write = false;
    std::uint64_t blockno = 0;
    std::uint32_t count = 0;

    bool operator==(const TraceRecord &) const = default;
};

/** Recording decorator; see file comment. */
class TraceRecorder : public blk::BlockIo {
  public:
    TraceRecorder(sim::Simulator &simulator, blk::BlockIo &base)
        : simulator_(simulator), base_(base)
    {
    }

    std::uint32_t block_size() const override { return base_.block_size(); }
    std::uint64_t num_blocks() const override { return base_.num_blocks(); }

    util::Status
    read_blocks(std::uint64_t blockno, std::uint32_t count,
                std::span<std::byte> out) override
    {
        trace_.push_back(
            TraceRecord{simulator_.now(), false, blockno, count});
        return base_.read_blocks(blockno, count, out);
    }

    util::Status
    write_blocks(std::uint64_t blockno, std::uint32_t count,
                 std::span<const std::byte> in) override
    {
        trace_.push_back(
            TraceRecord{simulator_.now(), true, blockno, count});
        return base_.write_blocks(blockno, count, in);
    }

    util::Status flush() override { return base_.flush(); }

    const std::vector<TraceRecord> &trace() const { return trace_; }
    void clear() { trace_.clear(); }

  private:
    sim::Simulator &simulator_;
    blk::BlockIo &base_;
    std::vector<TraceRecord> trace_;
};

/** Replay options. */
struct ReplayConfig {
    /**
     * Preserve the trace's inter-arrival gaps (open-loop-ish: if the
     * target is slower than the original, replay falls behind and
     * issues back-to-back). False = closed-loop, as fast as possible.
     */
    bool preserve_think_time = false;
    /** Data pattern seed for replayed writes. */
    std::uint64_t pattern_seed = 1;
};

/** Replay outcome. */
struct ReplayResult {
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t bytes = 0;
    sim::Duration elapsed = 0;
    double mean_latency_us = 0.0;
    double bandwidth_mb_s = 0.0;
};

/**
 * Re-issues @p trace against @p target. Operations whose block range
 * exceeds the target are clipped out (counted in neither reads nor
 * writes).
 */
util::Result<ReplayResult> replay_trace(sim::Simulator &simulator,
                                        blk::BlockIo &target,
                                        const std::vector<TraceRecord> &trace,
                                        const ReplayConfig &config = {});

/** Serializes a trace to its line format ("t op blockno count\n"). */
std::string trace_to_text(const std::vector<TraceRecord> &trace);

/** Parses the line format; fails on malformed input. */
util::Result<std::vector<TraceRecord>>
trace_from_text(const std::string &text);

} // namespace nesc::wl

#endif // NESC_WL_TRACE_H
