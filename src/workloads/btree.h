/**
 * @file
 * Disk-resident B+tree index.
 *
 * MiniDb's heap table is addressed by row number; real OLTP engines
 * reach rows through a B+tree index on the primary key. This module
 * provides that index as its own substrate: a paged B+tree stored in
 * a file on the guest filesystem, with a private buffer pool — the
 * same double-buffering structure databases use. The OLTP workload
 * drives it when OltpConfig::use_index is set, adding the index-probe
 * I/O pattern (a few hot internal pages + random leaves) to the mix.
 *
 * Semantics: unique uint64 keys -> uint64 values; insert, point
 * lookup, delete (leaf-local, no rebalancing — nodes may underflow,
 * which only costs space, like many production trees before vacuum),
 * and ascending range scans over the leaf sibling chain. Durability
 * via flush(); the tree is not write-ahead logged (an engine pairing
 * it with MiniDb's WAL would rebuild or log index updates — see
 * MiniDb's recovery notes).
 */
#ifndef NESC_WL_BTREE_H
#define NESC_WL_BTREE_H

#include <cstdint>
#include <list>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "fs/nestfs.h"
#include "sim/simulator.h"
#include "util/status.h"
#include "virt/guest_vm.h"

namespace nesc::wl {

/** B+tree tuning. */
struct BTreeConfig {
    std::uint32_t page_bytes = 4096;
    std::uint32_t pool_pages = 32;
    std::string path = "/index.btree";
};

/** Engine statistics. */
struct BTreeStats {
    std::uint64_t inserts = 0;
    std::uint64_t lookups = 0;
    std::uint64_t deletes = 0;
    std::uint64_t splits = 0;
    std::uint64_t pool_hits = 0;
    std::uint64_t pool_misses = 0;
    std::uint64_t page_flushes = 0;
};

/** The index; construct via create() or open(). */
class BTreeIndex {
  public:
    /** Creates a fresh (empty) index file. */
    static util::Result<std::unique_ptr<BTreeIndex>>
    create(sim::Simulator &simulator, virt::GuestVm &vm,
           const BTreeConfig &config = {});

    /** Opens an existing index file. */
    static util::Result<std::unique_ptr<BTreeIndex>>
    open(sim::Simulator &simulator, virt::GuestVm &vm,
         const BTreeConfig &config = {});

    /** Inserts key -> value; fails with ALREADY_EXISTS on duplicates. */
    util::Status insert(std::uint64_t key, std::uint64_t value);

    /** Point lookup; nullopt when absent. */
    util::Result<std::optional<std::uint64_t>> lookup(std::uint64_t key);

    /** Removes a key; fails with NOT_FOUND when absent. */
    util::Status erase(std::uint64_t key);

    /**
     * Ascending scan: up to @p limit (key, value) pairs with
     * key >= @p first_key, following the leaf sibling chain.
     */
    util::Result<std::vector<std::pair<std::uint64_t, std::uint64_t>>>
    scan(std::uint64_t first_key, std::size_t limit);

    /** Writes back dirty pages and the meta page, then fsyncs. */
    util::Status flush();

    /** Keys currently stored. */
    std::uint64_t size() const { return meta_.num_keys; }
    /** Tree height (1 = root is a leaf). */
    std::uint32_t height() const { return meta_.height; }
    const BTreeStats &stats() const { return stats_; }
    const BTreeConfig &config() const { return config_; }

  private:
    BTreeIndex(sim::Simulator &simulator, virt::GuestVm &vm,
               const BTreeConfig &config)
        : simulator_(simulator), vm_(vm), config_(config)
    {
    }

    // On-disk structures (within 4 KiB pages).
    struct MetaPage {
        std::uint32_t magic;
        std::uint32_t height;
        std::uint64_t root_page;
        std::uint64_t num_pages;
        std::uint64_t num_keys;
    };
    struct NodeHeader {
        std::uint32_t magic;
        std::uint16_t is_leaf;
        std::uint16_t count;
        std::uint64_t right_sibling; ///< leaves only; 0 at the end
        std::uint64_t leftmost_child; ///< internal only
    };
    struct Entry { // leaf: key->value; internal: separator->right child
        std::uint64_t key;
        std::uint64_t value;
    };

    static constexpr std::uint32_t kMetaMagic = 0x42545249; // "BTRI"
    static constexpr std::uint32_t kNodeMagic = 0x42544e44; // "BTND"

    std::uint32_t max_entries() const
    {
        return (config_.page_bytes - sizeof(NodeHeader)) / sizeof(Entry);
    }

    // Buffer-pool plumbing (page images of page_bytes).
    struct Page {
        std::uint64_t pageno;
        bool dirty;
        std::vector<std::byte> data;
    };
    using PoolList = std::list<Page>;
    util::Result<PoolList::iterator> fetch_page(std::uint64_t pageno);
    util::Result<std::uint64_t> alloc_page();
    util::Status flush_page(Page &page);
    util::Status evict_one();

    // Node accessors over a pool page.
    static NodeHeader read_header(const Page &page);
    static void write_header(Page &page, const NodeHeader &header);
    static Entry read_entry(const Page &page, std::uint32_t index);
    static void write_entry(Page &page, std::uint32_t index,
                            const Entry &entry);

    /** Result of a recursive insert: set when the child split. */
    struct SplitResult {
        bool split = false;
        std::uint64_t separator = 0;  ///< first key of the new node
        std::uint64_t new_page = 0;
    };
    util::Result<SplitResult> insert_into(std::uint64_t pageno,
                                          std::uint64_t key,
                                          std::uint64_t value);
    util::Result<std::uint64_t> descend_to_leaf(std::uint64_t key);

    sim::Simulator &simulator_;
    virt::GuestVm &vm_;
    BTreeConfig config_;
    fs::InodeId ino_ = fs::kInvalidInode;
    MetaPage meta_{};
    bool meta_dirty_ = false;
    PoolList pool_;
    std::unordered_map<std::uint64_t, PoolList::iterator> pool_map_;
    BTreeStats stats_;
};

} // namespace nesc::wl

#endif // NESC_WL_BTREE_H
