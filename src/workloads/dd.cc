#include "dd.h"

#include <vector>

#include "util/units.h"

namespace nesc::wl {

void
fill_pattern(std::uint64_t seed, std::uint64_t pos,
             std::span<std::byte> buf)
{
    for (std::size_t i = 0; i < buf.size(); ++i)
        buf[i] = pattern_byte(seed, pos + i);
}

std::int64_t
check_pattern(std::uint64_t seed, std::uint64_t pos,
              std::span<const std::byte> buf)
{
    for (std::size_t i = 0; i < buf.size(); ++i)
        if (buf[i] != pattern_byte(seed, pos + i))
            return static_cast<std::int64_t>(i);
    return -1;
}

namespace {

DdResult
finalize(std::uint64_t requests, std::uint64_t bytes, sim::Duration elapsed,
         const util::Sampler &latencies)
{
    DdResult result;
    result.requests = requests;
    result.bytes = bytes;
    result.elapsed = elapsed;
    result.bandwidth_mb_s = util::bandwidth_mb_per_sec(bytes, elapsed);
    result.mean_latency_us = latencies.mean() / 1000.0;
    result.p99_latency_us = latencies.percentile(99.0) / 1000.0;
    return result;
}

} // namespace

util::Result<DdResult>
run_dd_raw(sim::Simulator &simulator, blk::BlockIo &io,
           const DdConfig &config)
{
    if (config.request_bytes == 0)
        return util::invalid_argument_error("dd with zero request size");
    const std::uint32_t bs = io.block_size();
    util::Sampler latencies;
    std::uint64_t moved = 0;
    std::uint64_t requests = 0;
    const sim::Time start = simulator.now();

    std::vector<std::byte> buf;
    while (moved < config.total_bytes) {
        const std::uint64_t req =
            std::min<std::uint64_t>(config.request_bytes,
                                    config.total_bytes - moved);
        const std::uint64_t offset = config.start_offset + moved;
        // Raw block devices are accessed at block granularity; dd with
        // a sub-block bs still transfers whole blocks underneath.
        const std::uint64_t first_block = offset / bs;
        const std::uint64_t last_block = (offset + req - 1) / bs;
        const auto count =
            static_cast<std::uint32_t>(last_block - first_block + 1);
        buf.resize(static_cast<std::size_t>(count) * bs);

        const sim::Time op_start = simulator.now();
        if (config.write) {
            fill_pattern(config.pattern_seed, first_block * bs, buf);
            NESC_RETURN_IF_ERROR(io.write_blocks(first_block, count, buf));
        } else {
            NESC_RETURN_IF_ERROR(io.read_blocks(first_block, count, buf));
            if (config.verify) {
                const std::int64_t bad =
                    check_pattern(config.pattern_seed, first_block * bs,
                                  buf);
                if (bad >= 0) {
                    return util::data_loss_error(
                        "dd verify mismatch at stream offset " +
                        std::to_string(first_block * bs + bad));
                }
            }
        }
        latencies.add(
            static_cast<double>(simulator.now() - op_start));
        moved += req;
        ++requests;
    }
    return finalize(requests, moved, simulator.now() - start, latencies);
}

util::Result<DdResult>
run_dd_file(sim::Simulator &simulator, virt::GuestVm &vm, fs::InodeId ino,
            const DdConfig &config)
{
    fs::NestFs *fs = vm.fs();
    if (fs == nullptr)
        return util::failed_precondition_error("guest has no filesystem");
    if (config.request_bytes == 0)
        return util::invalid_argument_error("dd with zero request size");

    util::Sampler latencies;
    std::uint64_t moved = 0;
    std::uint64_t requests = 0;
    const sim::Time start = simulator.now();
    std::vector<std::byte> buf;

    while (moved < config.total_bytes) {
        const std::uint64_t req =
            std::min<std::uint64_t>(config.request_bytes,
                                    config.total_bytes - moved);
        const std::uint64_t offset = config.start_offset + moved;
        buf.resize(req);

        const sim::Time op_start = simulator.now();
        vm.charge_file_syscall();
        if (config.write) {
            fill_pattern(config.pattern_seed, offset, buf);
            NESC_RETURN_IF_ERROR(fs->write(ino, offset, buf));
            // dd conv=fsync per request models the synchronous-write
            // behaviour the latency figures measure.
            NESC_RETURN_IF_ERROR(fs->fsync(ino));
        } else {
            NESC_ASSIGN_OR_RETURN(std::uint64_t got,
                                  fs->read(ino, offset, buf));
            if (got < req)
                std::fill(buf.begin() + static_cast<std::ptrdiff_t>(got),
                          buf.end(), std::byte{0});
            if (config.verify) {
                const std::int64_t bad =
                    check_pattern(config.pattern_seed, offset, buf);
                if (bad >= 0) {
                    return util::data_loss_error(
                        "dd verify mismatch at file offset " +
                        std::to_string(offset + bad));
                }
            }
        }
        latencies.add(static_cast<double>(simulator.now() - op_start));
        moved += req;
        ++requests;
    }
    return finalize(requests, moved, simulator.now() - start, latencies);
}

} // namespace nesc::wl
