/**
 * @file
 * SysBench fileio-style random I/O benchmark (paper Table II,
 * "Sysbench I/O: a sequence of random file operations").
 *
 * Preallocates a set of files, then issues random-offset reads and
 * writes of a fixed request size with a configurable read ratio,
 * optionally fsyncing periodically — the access pattern of SysBench's
 * `fileio --file-test-mode=rndrw`.
 */
#ifndef NESC_WL_FILEIO_H
#define NESC_WL_FILEIO_H

#include "fs/nestfs.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/status.h"
#include "virt/guest_vm.h"

namespace nesc::wl {

/** fileio parameters. */
struct FileioConfig {
    std::uint32_t num_files = 8;
    std::uint64_t file_bytes = 512 * 1024;
    std::uint64_t request_bytes = 4096;
    std::uint32_t operations = 1000;
    double read_ratio = 0.6; ///< reads fraction; rest are writes
    std::uint32_t fsync_every = 100;
    std::uint64_t seed = 7;
    std::string directory = "/fileio";
};

/** fileio results. */
struct FileioResult {
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t fsyncs = 0;
    std::uint64_t bytes_read = 0;
    std::uint64_t bytes_written = 0;
    sim::Duration elapsed = 0;
    double ops_per_sec = 0.0;
    double mean_latency_us = 0.0;
    double p95_latency_us = 0.0;
};

/** Runs the fileio workload inside @p vm's filesystem. */
util::Result<FileioResult> run_fileio(sim::Simulator &simulator,
                                      virt::GuestVm &vm,
                                      const FileioConfig &config);

} // namespace nesc::wl

#endif // NESC_WL_FILEIO_H
