/**
 * @file
 * OLTP transaction driver over MiniDb (paper Table II: "MySQL serving
 * the SysBench OLTP workload").
 *
 * Issues point-select and update transactions against a MiniDb table
 * with Zipfian row popularity — SysBench OLTP's access pattern.
 */
#ifndef NESC_WL_OLTP_H
#define NESC_WL_OLTP_H

#include "sim/simulator.h"
#include "util/rng.h"
#include "util/status.h"
#include "workloads/minidb.h"

namespace nesc::wl {

/** OLTP driver parameters. */
struct OltpConfig {
    std::uint32_t transactions = 200;
    std::uint32_t ops_per_txn = 10;
    double read_ratio = 0.7;
    /** Zipf skew of row popularity; 0 = uniform. */
    double zipf_theta = 0.8;
    std::uint64_t seed = 99;
    MiniDbConfig db;
    /**
     * Route every access through a B+tree primary-key index (the way
     * SysBench OLTP point selects actually reach rows): keys are a
     * bijective scramble of row ids, so index probes hit random
     * leaves while the B-tree's upper levels stay pool-hot.
     */
    bool use_index = false;
};

/** OLTP results. */
struct OltpResult {
    std::uint64_t transactions = 0;
    std::uint64_t reads = 0;
    std::uint64_t updates = 0;
    sim::Duration elapsed = 0;
    double transactions_per_sec = 0.0;
    double mean_txn_latency_us = 0.0;
};

/** Creates a fresh MiniDb inside @p vm and runs the OLTP mix. */
util::Result<OltpResult> run_oltp(sim::Simulator &simulator,
                                  virt::GuestVm &vm,
                                  const OltpConfig &config);

/** Runs the OLTP mix against an existing database. */
util::Result<OltpResult> run_oltp_on(sim::Simulator &simulator, MiniDb &db,
                                     const OltpConfig &config);

} // namespace nesc::wl

#endif // NESC_WL_OLTP_H
