#include "fileio.h"

#include <vector>

#include "util/units.h"
#include "workloads/dd.h"

namespace nesc::wl {

util::Result<FileioResult>
run_fileio(sim::Simulator &simulator, virt::GuestVm &vm,
           const FileioConfig &config)
{
    fs::NestFs *fs = vm.fs();
    if (fs == nullptr)
        return util::failed_precondition_error("guest has no filesystem");
    if (config.request_bytes == 0 || config.request_bytes > config.file_bytes)
        return util::invalid_argument_error("bad fileio request size");

    util::Rng rng(config.seed);
    FileioResult result;

    // Prepare phase: create and fill the file set.
    vm.charge_file_syscall();
    NESC_RETURN_IF_ERROR(fs->mkdir(config.directory, 0755).status());
    std::vector<fs::InodeId> files;
    std::vector<std::byte> buf(config.file_bytes);
    for (std::uint32_t i = 0; i < config.num_files; ++i) {
        const std::string path =
            config.directory + "/data" + std::to_string(i);
        vm.charge_file_syscall();
        NESC_ASSIGN_OR_RETURN(fs::InodeId ino, fs->create(path, 0644));
        fill_pattern(i, 0, buf);
        vm.charge_file_syscall();
        NESC_RETURN_IF_ERROR(fs->write(ino, 0, buf));
        files.push_back(ino);
    }
    NESC_RETURN_IF_ERROR(fs->sync());

    // Timed phase: random requests.
    util::Sampler latencies;
    std::vector<std::byte> req(config.request_bytes);
    const std::uint64_t positions =
        config.file_bytes - config.request_bytes + 1;
    const sim::Time start = simulator.now();
    for (std::uint32_t op = 0; op < config.operations; ++op) {
        const fs::InodeId ino = files[rng.next_below(files.size())];
        const std::uint64_t offset = rng.next_below(positions);
        const bool is_read = rng.next_bool(config.read_ratio);

        const sim::Time op_start = simulator.now();
        vm.charge_file_syscall();
        if (is_read) {
            NESC_ASSIGN_OR_RETURN(std::uint64_t got,
                                  fs->read(ino, offset, req));
            ++result.reads;
            result.bytes_read += got;
        } else {
            fill_pattern(op, offset, req);
            NESC_RETURN_IF_ERROR(fs->write(ino, offset, req));
            ++result.writes;
            result.bytes_written += req.size();
        }
        if (config.fsync_every && (op + 1) % config.fsync_every == 0) {
            vm.charge_file_syscall();
            NESC_RETURN_IF_ERROR(fs->fsync(ino));
            ++result.fsyncs;
        }
        latencies.add(static_cast<double>(simulator.now() - op_start));
    }
    result.elapsed = simulator.now() - start;
    result.ops_per_sec =
        result.elapsed
            ? static_cast<double>(config.operations) /
                  util::ns_to_sec(result.elapsed)
            : 0.0;
    result.mean_latency_us = latencies.mean() / 1000.0;
    result.p95_latency_us = latencies.percentile(95.0) / 1000.0;
    return result;
}

} // namespace nesc::wl
