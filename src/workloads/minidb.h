/**
 * @file
 * MiniDb: a small transactional storage engine standing in for the
 * paper's MySQL/OLTP macrobenchmark (Table II).
 *
 * Architecture mirrors a classic RDBMS storage layer scaled down:
 *  - a heap table file of fixed-size rows grouped into pages,
 *  - a private buffer pool (LRU, dirty tracking) above the guest
 *    filesystem — databases double-buffer exactly like this,
 *  - a write-ahead log: row images appended per update, a commit
 *    record and an fsync per transaction (durability), and
 *  - periodic checkpoints that flush dirty pages and truncate the log.
 *
 * The I/O this generates — random page reads, sequential WAL appends
 * with frequent fsyncs, bursty checkpoint writes — is the OLTP
 * pattern whose virtualization overheads Figure 12 quantifies.
 * recover() replays committed transactions after a crash, which the
 * tests exercise.
 */
#ifndef NESC_WL_MINIDB_H
#define NESC_WL_MINIDB_H

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "fs/nestfs.h"
#include "sim/simulator.h"
#include "util/stats.h"
#include "util/status.h"
#include "virt/guest_vm.h"

namespace nesc::wl {

/** MiniDb shape and tuning. */
struct MiniDbConfig {
    std::uint64_t rows = 4096;
    std::uint32_t row_bytes = 100;
    std::uint32_t page_bytes = 4096;
    std::uint32_t pool_pages = 64;
    /** Checkpoint after this many committed transactions. */
    std::uint32_t checkpoint_every = 64;
    std::string directory = "/oltp";
};

/** Aggregate engine statistics. */
struct MiniDbStats {
    std::uint64_t transactions = 0;
    std::uint64_t row_reads = 0;
    std::uint64_t row_updates = 0;
    std::uint64_t pool_hits = 0;
    std::uint64_t pool_misses = 0;
    std::uint64_t page_flushes = 0;
    std::uint64_t wal_bytes = 0;
    std::uint64_t checkpoints = 0;
    std::uint64_t recovered_txns = 0;
};

/** The engine; see file comment. */
class MiniDb {
  public:
    /** Creates the table and WAL files and zero-initializes all rows. */
    static util::Result<std::unique_ptr<MiniDb>>
    create(sim::Simulator &simulator, virt::GuestVm &vm,
           const MiniDbConfig &config = {});

    /**
     * Opens an existing database and replays any committed-but-not-
     * checkpointed transactions from the WAL.
     */
    static util::Result<std::unique_ptr<MiniDb>>
    open(sim::Simulator &simulator, virt::GuestVm &vm,
         const MiniDbConfig &config = {});

    /** Starts a transaction (single-threaded engine: no nesting). */
    util::Status begin();

    /** Reads a row (inside or outside a transaction). */
    util::Result<std::vector<std::byte>> get(std::uint64_t row);

    /** Updates a row; only valid inside a transaction. */
    util::Status put(std::uint64_t row, std::span<const std::byte> data);

    /** Commits: WAL append of the commit record + fsync. */
    util::Status commit();

    /** Flushes dirty pages and truncates the WAL. */
    util::Status checkpoint();

    const MiniDbStats &stats() const { return stats_; }
    const MiniDbConfig &config() const { return config_; }

  private:
    MiniDb(sim::Simulator &simulator, virt::GuestVm &vm,
           const MiniDbConfig &config)
        : simulator_(simulator), vm_(vm), config_(config)
    {
    }

    util::Status init_files(bool create);
    util::Status recover();

    /** Buffer-pool page access. */
    struct Page {
        std::uint64_t pageno;
        bool dirty;
        std::vector<std::byte> data;
    };
    using PoolList = std::list<Page>;
    util::Result<PoolList::iterator> fetch_page(std::uint64_t pageno);
    util::Status evict_one();
    util::Status flush_page(Page &page);

    std::uint32_t rows_per_page() const
    {
        return config_.page_bytes / config_.row_bytes;
    }
    std::uint64_t num_pages() const;

    // WAL plumbing.
    util::Status wal_append(std::span<const std::byte> record);
    util::Status wal_fsync();

    sim::Simulator &simulator_;
    virt::GuestVm &vm_;
    MiniDbConfig config_;
    fs::InodeId table_ino_ = fs::kInvalidInode;
    fs::InodeId wal_ino_ = fs::kInvalidInode;
    std::uint64_t wal_offset_ = 0;
    std::uint64_t next_txn_id_ = 1;
    bool in_txn_ = false;
    std::uint32_t txns_since_checkpoint_ = 0;
    /** Row images staged by the current transaction. */
    std::vector<std::pair<std::uint64_t, std::vector<std::byte>>> txn_rows_;

    PoolList pool_; ///< front = MRU
    std::unordered_map<std::uint64_t, PoolList::iterator> pool_map_;
    MiniDbStats stats_;
};

} // namespace nesc::wl

#endif // NESC_WL_MINIDB_H
