#include "btree.h"

#include <cstring>

#include "util/units.h"

namespace nesc::wl {

// --------------------------------------------------------------------
// Lifecycle
// --------------------------------------------------------------------

util::Result<std::unique_ptr<BTreeIndex>>
BTreeIndex::create(sim::Simulator &simulator, virt::GuestVm &vm,
                   const BTreeConfig &config)
{
    fs::NestFs *fs = vm.fs();
    if (fs == nullptr)
        return util::failed_precondition_error("guest has no filesystem");
    if (config.page_bytes < 512 || config.pool_pages < 4)
        return util::invalid_argument_error("bad btree shape");

    auto tree =
        std::unique_ptr<BTreeIndex>(new BTreeIndex(simulator, vm, config));
    NESC_ASSIGN_OR_RETURN(tree->ino_, fs->create(config.path, 0600));
    tree->meta_ = MetaPage{kMetaMagic, 1, 1, 2, 0};
    tree->meta_dirty_ = true;

    // Root starts as an empty leaf (page 1).
    NESC_ASSIGN_OR_RETURN(auto root, tree->fetch_page(1));
    write_header(*root, NodeHeader{kNodeMagic, 1, 0, 0, 0});
    root->dirty = true;
    NESC_RETURN_IF_ERROR(tree->flush());
    return tree;
}

util::Result<std::unique_ptr<BTreeIndex>>
BTreeIndex::open(sim::Simulator &simulator, virt::GuestVm &vm,
                 const BTreeConfig &config)
{
    fs::NestFs *fs = vm.fs();
    if (fs == nullptr)
        return util::failed_precondition_error("guest has no filesystem");
    auto tree =
        std::unique_ptr<BTreeIndex>(new BTreeIndex(simulator, vm, config));
    NESC_ASSIGN_OR_RETURN(tree->ino_, fs->resolve(config.path));
    std::vector<std::byte> page(config.page_bytes);
    vm.charge_file_syscall();
    NESC_ASSIGN_OR_RETURN(std::uint64_t got,
                          fs->read(tree->ino_, 0, page));
    if (got < sizeof(MetaPage))
        return util::data_loss_error("btree meta page truncated");
    std::memcpy(&tree->meta_, page.data(), sizeof(MetaPage));
    if (tree->meta_.magic != kMetaMagic)
        return util::data_loss_error("bad btree magic");
    return tree;
}

// --------------------------------------------------------------------
// Buffer pool
// --------------------------------------------------------------------

util::Status
BTreeIndex::flush_page(Page &page)
{
    fs::NestFs *fs = vm_.fs();
    vm_.charge_file_syscall();
    NESC_RETURN_IF_ERROR(
        fs->write(ino_, page.pageno * config_.page_bytes, page.data));
    page.dirty = false;
    ++stats_.page_flushes;
    return util::Status::ok();
}

util::Status
BTreeIndex::evict_one()
{
    if (pool_.empty())
        return util::internal_error("evicting from empty btree pool");
    auto victim = std::prev(pool_.end());
    if (victim->dirty)
        NESC_RETURN_IF_ERROR(flush_page(*victim));
    pool_map_.erase(victim->pageno);
    pool_.erase(victim);
    return util::Status::ok();
}

util::Result<BTreeIndex::PoolList::iterator>
BTreeIndex::fetch_page(std::uint64_t pageno)
{
    auto it = pool_map_.find(pageno);
    if (it != pool_map_.end()) {
        ++stats_.pool_hits;
        pool_.splice(pool_.begin(), pool_, it->second);
        return pool_.begin();
    }
    ++stats_.pool_misses;
    while (pool_.size() >= config_.pool_pages)
        NESC_RETURN_IF_ERROR(evict_one());

    fs::NestFs *fs = vm_.fs();
    std::vector<std::byte> data(config_.page_bytes);
    vm_.charge_file_syscall();
    NESC_ASSIGN_OR_RETURN(
        std::uint64_t got,
        fs->read(ino_, pageno * config_.page_bytes, data));
    if (got < data.size())
        std::fill(data.begin() + static_cast<std::ptrdiff_t>(got),
                  data.end(), std::byte{0});
    pool_.push_front(Page{pageno, false, std::move(data)});
    pool_map_[pageno] = pool_.begin();
    return pool_.begin();
}

util::Result<std::uint64_t>
BTreeIndex::alloc_page()
{
    const std::uint64_t pageno = meta_.num_pages++;
    meta_dirty_ = true;
    return pageno;
}

// --------------------------------------------------------------------
// Node accessors
// --------------------------------------------------------------------

BTreeIndex::NodeHeader
BTreeIndex::read_header(const Page &page)
{
    NodeHeader header;
    std::memcpy(&header, page.data.data(), sizeof(header));
    return header;
}

void
BTreeIndex::write_header(Page &page, const NodeHeader &header)
{
    std::memcpy(page.data.data(), &header, sizeof(header));
}

BTreeIndex::Entry
BTreeIndex::read_entry(const Page &page, std::uint32_t index)
{
    Entry entry;
    std::memcpy(&entry,
                page.data.data() + sizeof(NodeHeader) +
                    index * sizeof(Entry),
                sizeof(entry));
    return entry;
}

void
BTreeIndex::write_entry(Page &page, std::uint32_t index, const Entry &entry)
{
    std::memcpy(page.data.data() + sizeof(NodeHeader) +
                    index * sizeof(Entry),
                &entry, sizeof(entry));
}

namespace {

/** Index of the first entry with key >= @p key (lower bound). */
template <typename ReadEntry>
std::uint32_t
lower_bound_index(std::uint32_t count, std::uint64_t key, ReadEntry read)
{
    std::uint32_t lo = 0, hi = count;
    while (lo < hi) {
        const std::uint32_t mid = (lo + hi) / 2;
        if (read(mid).key < key)
            lo = mid + 1;
        else
            hi = mid;
    }
    return lo;
}

} // namespace

// --------------------------------------------------------------------
// Insert
// --------------------------------------------------------------------

util::Result<BTreeIndex::SplitResult>
BTreeIndex::insert_into(std::uint64_t pageno, std::uint64_t key,
                        std::uint64_t value)
{
    NESC_ASSIGN_OR_RETURN(auto page, fetch_page(pageno));
    NodeHeader header = read_header(*page);
    if (header.magic != kNodeMagic)
        return util::data_loss_error("corrupt btree node");

    auto entry_at = [&](std::uint32_t i) { return read_entry(*page, i); };

    if (header.is_leaf) {
        std::uint32_t pos =
            lower_bound_index(header.count, key, entry_at);
        if (pos < header.count && entry_at(pos).key == key)
            return util::already_exists_error("duplicate btree key");

        if (header.count == max_entries()) {
            // Split first; then insert into the correct half.
            NESC_ASSIGN_OR_RETURN(std::uint64_t new_pageno, alloc_page());
            // NOTE: alloc/fetch may evict `page`; re-fetch safely.
            NESC_ASSIGN_OR_RETURN(auto right, fetch_page(new_pageno));
            NESC_ASSIGN_OR_RETURN(page, fetch_page(pageno));
            header = read_header(*page);

            const std::uint32_t keep = header.count / 2;
            const std::uint32_t moved = header.count - keep;
            NodeHeader right_header{kNodeMagic, 1, 0, header.right_sibling,
                                    0};
            for (std::uint32_t i = 0; i < moved; ++i)
                write_entry(*right, i, read_entry(*page, keep + i));
            right_header.count = static_cast<std::uint16_t>(moved);
            write_header(*right, right_header);
            right->dirty = true;

            header.count = static_cast<std::uint16_t>(keep);
            header.right_sibling = new_pageno;
            write_header(*page, header);
            page->dirty = true;
            ++stats_.splits;

            const std::uint64_t separator = read_entry(*right, 0).key;
            // Insert into whichever side owns the key, recursively
            // (both halves now have room).
            NESC_RETURN_IF_ERROR(
                insert_into(key < separator ? pageno : new_pageno, key,
                            value)
                    .status());
            SplitResult result;
            result.split = true;
            result.separator = separator;
            result.new_page = new_pageno;
            return result;
        }

        // Room available: shift and insert.
        for (std::uint32_t i = header.count; i > pos; --i)
            write_entry(*page, i, read_entry(*page, i - 1));
        write_entry(*page, pos, Entry{key, value});
        ++header.count;
        write_header(*page, header);
        page->dirty = true;
        return SplitResult{};
    }

    // Internal node: find the child owning the key. A separator's key
    // equals its right child's first key, so an exact match descends
    // right; otherwise the rightmost separator below the key wins.
    const std::uint32_t pos = lower_bound_index(header.count, key, entry_at);
    std::uint64_t child;
    if (pos < header.count && entry_at(pos).key == key)
        child = entry_at(pos).value;
    else if (pos == 0)
        child = header.leftmost_child;
    else
        child = entry_at(pos - 1).value;

    NESC_ASSIGN_OR_RETURN(SplitResult child_split,
                          insert_into(child, key, value));
    if (!child_split.split)
        return SplitResult{};

    // Insert the new separator into this node (re-fetch: recursion may
    // have evicted our page).
    NESC_ASSIGN_OR_RETURN(page, fetch_page(pageno));
    header = read_header(*page);
    if (header.count == max_entries()) {
        // Split this internal node, then insert the separator into
        // the proper half.
        NESC_ASSIGN_OR_RETURN(std::uint64_t new_pageno, alloc_page());
        NESC_ASSIGN_OR_RETURN(auto right, fetch_page(new_pageno));
        NESC_ASSIGN_OR_RETURN(page, fetch_page(pageno));
        header = read_header(*page);

        const std::uint32_t keep = header.count / 2;
        // The middle separator moves UP; its child becomes the right
        // node's leftmost child.
        const Entry middle = read_entry(*page, keep);
        const std::uint32_t moved = header.count - keep - 1;
        NodeHeader right_header{kNodeMagic, 0, 0, 0, middle.value};
        for (std::uint32_t i = 0; i < moved; ++i)
            write_entry(*right, i, read_entry(*page, keep + 1 + i));
        right_header.count = static_cast<std::uint16_t>(moved);
        write_header(*right, right_header);
        right->dirty = true;

        header.count = static_cast<std::uint16_t>(keep);
        write_header(*page, header);
        page->dirty = true;
        ++stats_.splits;

        // Now place the child's separator into the correct half.
        const std::uint64_t target =
            child_split.separator < middle.key ? pageno : new_pageno;
        NESC_ASSIGN_OR_RETURN(auto node, fetch_page(target));
        NodeHeader node_header = read_header(*node);
        auto node_entry = [&](std::uint32_t i) {
            return read_entry(*node, i);
        };
        const std::uint32_t ins = lower_bound_index(
            node_header.count, child_split.separator, node_entry);
        for (std::uint32_t i = node_header.count; i > ins; --i)
            write_entry(*node, i, read_entry(*node, i - 1));
        write_entry(*node, ins,
                    Entry{child_split.separator, child_split.new_page});
        ++node_header.count;
        write_header(*node, node_header);
        node->dirty = true;

        SplitResult result;
        result.split = true;
        result.separator = middle.key;
        result.new_page = new_pageno;
        return result;
    }

    const std::uint32_t ins = lower_bound_index(
        header.count, child_split.separator, entry_at);
    for (std::uint32_t i = header.count; i > ins; --i)
        write_entry(*page, i, read_entry(*page, i - 1));
    write_entry(*page, ins,
                Entry{child_split.separator, child_split.new_page});
    ++header.count;
    write_header(*page, header);
    page->dirty = true;
    return SplitResult{};
}

util::Status
BTreeIndex::insert(std::uint64_t key, std::uint64_t value)
{
    NESC_ASSIGN_OR_RETURN(SplitResult split,
                          insert_into(meta_.root_page, key, value));
    if (split.split) {
        // Grow a new root.
        NESC_ASSIGN_OR_RETURN(std::uint64_t new_root, alloc_page());
        NESC_ASSIGN_OR_RETURN(auto root, fetch_page(new_root));
        NodeHeader header{kNodeMagic, 0, 1, 0, meta_.root_page};
        write_header(*root, header);
        write_entry(*root, 0, Entry{split.separator, split.new_page});
        root->dirty = true;
        meta_.root_page = new_root;
        ++meta_.height;
        meta_dirty_ = true;
    }
    ++meta_.num_keys;
    meta_dirty_ = true;
    ++stats_.inserts;
    return util::Status::ok();
}

// --------------------------------------------------------------------
// Lookup / erase / scan
// --------------------------------------------------------------------

util::Result<std::uint64_t>
BTreeIndex::descend_to_leaf(std::uint64_t key)
{
    std::uint64_t pageno = meta_.root_page;
    for (std::uint32_t level = 0; level < meta_.height; ++level) {
        NESC_ASSIGN_OR_RETURN(auto page, fetch_page(pageno));
        const NodeHeader header = read_header(*page);
        if (header.magic != kNodeMagic)
            return util::data_loss_error("corrupt btree node");
        if (header.is_leaf)
            return pageno;
        auto entry_at = [&](std::uint32_t i) {
            return read_entry(*page, i);
        };
        // Child owning `key`: the rightmost entry with key <= target,
        // else the leftmost child.
        const std::uint32_t pos =
            lower_bound_index(header.count, key, entry_at);
        if (pos < header.count && entry_at(pos).key == key)
            pageno = entry_at(pos).value;
        else if (pos == 0)
            pageno = header.leftmost_child;
        else
            pageno = entry_at(pos - 1).value;
    }
    return util::data_loss_error("btree deeper than its height");
}

util::Result<std::optional<std::uint64_t>>
BTreeIndex::lookup(std::uint64_t key)
{
    ++stats_.lookups;
    NESC_ASSIGN_OR_RETURN(std::uint64_t leafno, descend_to_leaf(key));
    NESC_ASSIGN_OR_RETURN(auto leaf, fetch_page(leafno));
    const NodeHeader header = read_header(*leaf);
    auto entry_at = [&](std::uint32_t i) { return read_entry(*leaf, i); };
    const std::uint32_t pos = lower_bound_index(header.count, key, entry_at);
    if (pos < header.count && entry_at(pos).key == key)
        return std::optional<std::uint64_t>(entry_at(pos).value);
    return std::optional<std::uint64_t>();
}

util::Status
BTreeIndex::erase(std::uint64_t key)
{
    NESC_ASSIGN_OR_RETURN(std::uint64_t leafno, descend_to_leaf(key));
    NESC_ASSIGN_OR_RETURN(auto leaf, fetch_page(leafno));
    NodeHeader header = read_header(*leaf);
    auto entry_at = [&](std::uint32_t i) { return read_entry(*leaf, i); };
    const std::uint32_t pos = lower_bound_index(header.count, key, entry_at);
    if (pos >= header.count || entry_at(pos).key != key)
        return util::not_found_error("btree key absent");
    for (std::uint32_t i = pos; i + 1 < header.count; ++i)
        write_entry(*leaf, i, read_entry(*leaf, i + 1));
    --header.count;
    write_header(*leaf, header);
    leaf->dirty = true;
    --meta_.num_keys;
    meta_dirty_ = true;
    ++stats_.deletes;
    return util::Status::ok();
}

util::Result<std::vector<std::pair<std::uint64_t, std::uint64_t>>>
BTreeIndex::scan(std::uint64_t first_key, std::size_t limit)
{
    std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
    NESC_ASSIGN_OR_RETURN(std::uint64_t leafno,
                          descend_to_leaf(first_key));
    while (leafno != 0 && out.size() < limit) {
        NESC_ASSIGN_OR_RETURN(auto leaf, fetch_page(leafno));
        const NodeHeader header = read_header(*leaf);
        auto entry_at = [&](std::uint32_t i) {
            return read_entry(*leaf, i);
        };
        std::uint32_t pos =
            lower_bound_index(header.count, first_key, entry_at);
        for (; pos < header.count && out.size() < limit; ++pos) {
            const Entry e = entry_at(pos);
            out.emplace_back(e.key, e.value);
        }
        leafno = header.right_sibling;
    }
    return out;
}

util::Status
BTreeIndex::flush()
{
    for (Page &page : pool_)
        if (page.dirty)
            NESC_RETURN_IF_ERROR(flush_page(page));
    if (meta_dirty_) {
        std::vector<std::byte> page(config_.page_bytes);
        std::memcpy(page.data(), &meta_, sizeof(meta_));
        fs::NestFs *fs = vm_.fs();
        vm_.charge_file_syscall();
        NESC_RETURN_IF_ERROR(fs->write(ino_, 0, page));
        meta_dirty_ = false;
    }
    return vm_.fs()->fsync(ino_);
}

} // namespace nesc::wl
