#include "minidb.h"

#include <algorithm>
#include <cstring>

#include "util/units.h"

namespace nesc::wl {

namespace {

/** WAL record header; followed by row_bytes of row image. */
struct WalRecord {
    std::uint32_t magic;  ///< kWalRowMagic or kWalCommitMagic
    std::uint32_t length; ///< payload bytes after the header
    std::uint64_t txn_id;
    std::uint64_t row;
};

constexpr std::uint32_t kWalRowMagic = 0x574c5257;    // "WLRW"
constexpr std::uint32_t kWalCommitMagic = 0x574c434d; // "WLCM"

} // namespace

std::uint64_t
MiniDb::num_pages() const
{
    return util::ceil_div(config_.rows, rows_per_page());
}

util::Result<std::unique_ptr<MiniDb>>
MiniDb::create(sim::Simulator &simulator, virt::GuestVm &vm,
               const MiniDbConfig &config)
{
    if (config.row_bytes == 0 || config.row_bytes > config.page_bytes)
        return util::invalid_argument_error("bad MiniDb row/page shape");
    auto db =
        std::unique_ptr<MiniDb>(new MiniDb(simulator, vm, config));
    NESC_RETURN_IF_ERROR(db->init_files(/*create=*/true));
    return db;
}

util::Result<std::unique_ptr<MiniDb>>
MiniDb::open(sim::Simulator &simulator, virt::GuestVm &vm,
             const MiniDbConfig &config)
{
    auto db =
        std::unique_ptr<MiniDb>(new MiniDb(simulator, vm, config));
    NESC_RETURN_IF_ERROR(db->init_files(/*create=*/false));
    NESC_RETURN_IF_ERROR(db->recover());
    return db;
}

util::Status
MiniDb::init_files(bool create)
{
    fs::NestFs *fs = vm_.fs();
    if (fs == nullptr)
        return util::failed_precondition_error("guest has no filesystem");
    const std::string table_path = config_.directory + "/table";
    const std::string wal_path = config_.directory + "/wal";

    if (create) {
        vm_.charge_file_syscall();
        NESC_RETURN_IF_ERROR(
            fs->mkdir(config_.directory, 0755).status());
        NESC_ASSIGN_OR_RETURN(table_ino_, fs->create(table_path, 0600));
        NESC_ASSIGN_OR_RETURN(wal_ino_, fs->create(wal_path, 0600));
        // Zero-fill the table so every page exists (databases
        // preallocate their tablespaces).
        std::vector<std::byte> zero_page(config_.page_bytes);
        for (std::uint64_t p = 0; p < num_pages(); ++p) {
            NESC_RETURN_IF_ERROR(fs->write(
                table_ino_, p * config_.page_bytes, zero_page));
        }
        NESC_RETURN_IF_ERROR(fs->fsync(table_ino_));
        wal_offset_ = 0;
    } else {
        NESC_ASSIGN_OR_RETURN(table_ino_, fs->resolve(table_path));
        NESC_ASSIGN_OR_RETURN(wal_ino_, fs->resolve(wal_path));
        NESC_ASSIGN_OR_RETURN(auto wal_stat, fs->stat(wal_ino_));
        wal_offset_ = wal_stat.size_bytes;
    }
    return util::Status::ok();
}

// --------------------------------------------------------------------
// Buffer pool
// --------------------------------------------------------------------

util::Status
MiniDb::flush_page(Page &page)
{
    fs::NestFs *fs = vm_.fs();
    vm_.charge_file_syscall();
    NESC_RETURN_IF_ERROR(fs->write(
        table_ino_, page.pageno * config_.page_bytes, page.data));
    page.dirty = false;
    ++stats_.page_flushes;
    return util::Status::ok();
}

util::Status
MiniDb::evict_one()
{
    if (pool_.empty())
        return util::internal_error("evicting from empty buffer pool");
    auto victim = std::prev(pool_.end());
    if (victim->dirty)
        NESC_RETURN_IF_ERROR(flush_page(*victim));
    pool_map_.erase(victim->pageno);
    pool_.erase(victim);
    return util::Status::ok();
}

util::Result<MiniDb::PoolList::iterator>
MiniDb::fetch_page(std::uint64_t pageno)
{
    auto it = pool_map_.find(pageno);
    if (it != pool_map_.end()) {
        ++stats_.pool_hits;
        pool_.splice(pool_.begin(), pool_, it->second);
        return pool_.begin();
    }
    ++stats_.pool_misses;
    while (pool_.size() >= config_.pool_pages)
        NESC_RETURN_IF_ERROR(evict_one());

    fs::NestFs *fs = vm_.fs();
    std::vector<std::byte> data(config_.page_bytes);
    vm_.charge_file_syscall();
    NESC_ASSIGN_OR_RETURN(
        std::uint64_t got,
        fs->read(table_ino_, pageno * config_.page_bytes, data));
    if (got < data.size())
        std::fill(data.begin() + static_cast<std::ptrdiff_t>(got),
                  data.end(), std::byte{0});
    pool_.push_front(Page{pageno, false, std::move(data)});
    pool_map_[pageno] = pool_.begin();
    return pool_.begin();
}

// --------------------------------------------------------------------
// WAL
// --------------------------------------------------------------------

util::Status
MiniDb::wal_append(std::span<const std::byte> record)
{
    fs::NestFs *fs = vm_.fs();
    vm_.charge_file_syscall();
    NESC_RETURN_IF_ERROR(fs->write(wal_ino_, wal_offset_, record));
    wal_offset_ += record.size();
    stats_.wal_bytes += record.size();
    return util::Status::ok();
}

util::Status
MiniDb::wal_fsync()
{
    fs::NestFs *fs = vm_.fs();
    vm_.charge_file_syscall();
    return fs->fsync(wal_ino_);
}

// --------------------------------------------------------------------
// Transactions
// --------------------------------------------------------------------

util::Status
MiniDb::begin()
{
    if (in_txn_)
        return util::failed_precondition_error("transaction already open");
    in_txn_ = true;
    txn_rows_.clear();
    return util::Status::ok();
}

util::Result<std::vector<std::byte>>
MiniDb::get(std::uint64_t row)
{
    if (row >= config_.rows)
        return util::out_of_range_error("row beyond table");
    // Read-your-writes within the open transaction.
    for (auto it = txn_rows_.rbegin(); it != txn_rows_.rend(); ++it)
        if (it->first == row)
            return it->second;
    NESC_ASSIGN_OR_RETURN(auto page, fetch_page(row / rows_per_page()));
    const std::uint32_t slot = row % rows_per_page();
    std::vector<std::byte> out(config_.row_bytes);
    std::memcpy(out.data(),
                page->data.data() +
                    static_cast<std::size_t>(slot) * config_.row_bytes,
                config_.row_bytes);
    ++stats_.row_reads;
    return out;
}

util::Status
MiniDb::put(std::uint64_t row, std::span<const std::byte> data)
{
    if (!in_txn_)
        return util::failed_precondition_error("put outside a transaction");
    if (row >= config_.rows)
        return util::out_of_range_error("row beyond table");
    if (data.size() != config_.row_bytes)
        return util::invalid_argument_error("row size mismatch");
    txn_rows_.emplace_back(
        row, std::vector<std::byte>(data.begin(), data.end()));
    return util::Status::ok();
}

util::Status
MiniDb::commit()
{
    if (!in_txn_)
        return util::failed_precondition_error("commit without begin");
    const std::uint64_t txn_id = next_txn_id_++;

    // 1. WAL: row images then the commit record, one fsync.
    std::vector<std::byte> rec(sizeof(WalRecord) + config_.row_bytes);
    for (const auto &[row, image] : txn_rows_) {
        WalRecord header{kWalRowMagic, config_.row_bytes, txn_id, row};
        std::memcpy(rec.data(), &header, sizeof(header));
        std::memcpy(rec.data() + sizeof(header), image.data(),
                    config_.row_bytes);
        NESC_RETURN_IF_ERROR(wal_append(rec));
    }
    WalRecord commit_rec{kWalCommitMagic, 0, txn_id, 0};
    NESC_RETURN_IF_ERROR(wal_append(
        std::span<const std::byte>(
            reinterpret_cast<const std::byte *>(&commit_rec),
            sizeof(commit_rec))));
    NESC_RETURN_IF_ERROR(wal_fsync());

    // 2. Apply to the buffer pool (pages become dirty; the table file
    //    is updated at checkpoint).
    for (const auto &[row, image] : txn_rows_) {
        NESC_ASSIGN_OR_RETURN(auto page,
                              fetch_page(row / rows_per_page()));
        const std::uint32_t slot = row % rows_per_page();
        std::memcpy(page->data.data() +
                        static_cast<std::size_t>(slot) * config_.row_bytes,
                    image.data(), config_.row_bytes);
        page->dirty = true;
        ++stats_.row_updates;
    }
    txn_rows_.clear();
    in_txn_ = false;
    ++stats_.transactions;

    if (++txns_since_checkpoint_ >= config_.checkpoint_every)
        NESC_RETURN_IF_ERROR(checkpoint());
    return util::Status::ok();
}

util::Status
MiniDb::checkpoint()
{
    fs::NestFs *fs = vm_.fs();
    for (Page &page : pool_)
        if (page.dirty)
            NESC_RETURN_IF_ERROR(flush_page(page));
    vm_.charge_file_syscall();
    NESC_RETURN_IF_ERROR(fs->fsync(table_ino_));
    // Truncate the WAL: everything up to here is in the table.
    vm_.charge_file_syscall();
    NESC_RETURN_IF_ERROR(fs->truncate(wal_ino_, 0));
    NESC_RETURN_IF_ERROR(fs->fsync(wal_ino_));
    wal_offset_ = 0;
    txns_since_checkpoint_ = 0;
    ++stats_.checkpoints;
    return util::Status::ok();
}

// --------------------------------------------------------------------
// Recovery
// --------------------------------------------------------------------

util::Status
MiniDb::recover()
{
    fs::NestFs *fs = vm_.fs();
    NESC_ASSIGN_OR_RETURN(auto wal_stat, fs->stat(wal_ino_));
    const std::uint64_t wal_size = wal_stat.size_bytes;
    if (wal_size == 0)
        return util::Status::ok();

    // Pass 1: find committed transaction ids.
    std::vector<std::uint64_t> committed;
    std::uint64_t offset = 0;
    std::vector<std::byte> header_buf(sizeof(WalRecord));
    while (offset + sizeof(WalRecord) <= wal_size) {
        NESC_ASSIGN_OR_RETURN(std::uint64_t got,
                              fs->read(wal_ino_, offset, header_buf));
        if (got < sizeof(WalRecord))
            break;
        WalRecord header;
        std::memcpy(&header, header_buf.data(), sizeof(header));
        if (header.magic == kWalCommitMagic) {
            committed.push_back(header.txn_id);
            offset += sizeof(WalRecord);
        } else if (header.magic == kWalRowMagic) {
            if (offset + sizeof(WalRecord) + header.length > wal_size)
                break; // torn record
            offset += sizeof(WalRecord) + header.length;
        } else {
            break; // corruption: stop scanning
        }
        next_txn_id_ = std::max(next_txn_id_, header.txn_id + 1);
    }

    // Pass 2: replay row images of committed transactions in order.
    offset = 0;
    std::vector<std::byte> row_buf;
    while (offset + sizeof(WalRecord) <= wal_size) {
        NESC_ASSIGN_OR_RETURN(std::uint64_t got,
                              fs->read(wal_ino_, offset, header_buf));
        if (got < sizeof(WalRecord))
            break;
        WalRecord header;
        std::memcpy(&header, header_buf.data(), sizeof(header));
        if (header.magic == kWalCommitMagic) {
            offset += sizeof(WalRecord);
            continue;
        }
        if (header.magic != kWalRowMagic)
            break;
        const bool is_committed =
            std::find(committed.begin(), committed.end(), header.txn_id) !=
            committed.end();
        if (is_committed) {
            row_buf.resize(header.length);
            NESC_ASSIGN_OR_RETURN(
                got,
                fs->read(wal_ino_, offset + sizeof(WalRecord), row_buf));
            if (got < header.length)
                break;
            NESC_ASSIGN_OR_RETURN(auto page,
                                  fetch_page(header.row / rows_per_page()));
            const std::uint32_t slot = header.row % rows_per_page();
            std::memcpy(page->data.data() +
                            static_cast<std::size_t>(slot) *
                                config_.row_bytes,
                        row_buf.data(), config_.row_bytes);
            page->dirty = true;
        }
        offset += sizeof(WalRecord) + header.length;
    }
    stats_.recovered_txns += committed.size();
    // Make the replayed state durable and clear the log.
    return checkpoint();
}

} // namespace nesc::wl
