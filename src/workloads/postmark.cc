#include "postmark.h"

#include <vector>

#include "util/units.h"
#include "workloads/dd.h"

namespace nesc::wl {

namespace {

std::string
file_name(const PostmarkConfig &config, std::uint64_t id)
{
    return config.directory + "/f" + std::to_string(id);
}

} // namespace

util::Result<PostmarkResult>
run_postmark(sim::Simulator &simulator, virt::GuestVm &vm,
             const PostmarkConfig &config)
{
    fs::NestFs *fs = vm.fs();
    if (fs == nullptr)
        return util::failed_precondition_error("guest has no filesystem");
    util::Rng rng(config.seed);
    PostmarkResult result;

    // Live pool: file id -> inode.
    std::vector<std::pair<std::uint64_t, fs::InodeId>> pool;
    std::uint64_t next_id = 0;
    std::vector<std::byte> buf;

    auto create_one = [&]() -> util::Status {
        const std::uint64_t id = next_id++;
        const std::uint64_t size =
            rng.next_in(config.min_file_bytes, config.max_file_bytes);
        vm.charge_file_syscall();
        NESC_ASSIGN_OR_RETURN(fs::InodeId ino,
                              fs->create(file_name(config, id), 0644));
        buf.resize(size);
        fill_pattern(id, 0, buf);
        vm.charge_file_syscall();
        NESC_RETURN_IF_ERROR(fs->write(ino, 0, buf));
        if (config.sync_writes)
            NESC_RETURN_IF_ERROR(fs->fsync(ino));
        pool.emplace_back(id, ino);
        ++result.files_created;
        result.bytes_written += size;
        return util::Status::ok();
    };

    auto delete_one = [&]() -> util::Status {
        if (pool.empty())
            return util::Status::ok();
        const std::size_t victim = rng.next_below(pool.size());
        const std::uint64_t id = pool[victim].first;
        pool[victim] = pool.back();
        pool.pop_back();
        vm.charge_file_syscall();
        NESC_RETURN_IF_ERROR(fs->unlink(file_name(config, id)));
        ++result.files_deleted;
        return util::Status::ok();
    };

    auto read_one = [&]() -> util::Status {
        if (pool.empty())
            return util::Status::ok();
        const auto &[id, ino] = pool[rng.next_below(pool.size())];
        NESC_ASSIGN_OR_RETURN(auto st, fs->stat(ino));
        buf.resize(st.size_bytes);
        vm.charge_file_syscall();
        NESC_ASSIGN_OR_RETURN(std::uint64_t got, fs->read(ino, 0, buf));
        ++result.reads;
        result.bytes_read += got;
        return util::Status::ok();
    };

    auto append_one = [&]() -> util::Status {
        if (pool.empty())
            return util::Status::ok();
        const auto &[id, ino] = pool[rng.next_below(pool.size())];
        NESC_ASSIGN_OR_RETURN(auto st, fs->stat(ino));
        const std::uint64_t add =
            rng.next_in(config.min_file_bytes,
                        std::max<std::uint64_t>(config.min_file_bytes,
                                                config.max_file_bytes / 4));
        buf.resize(add);
        fill_pattern(id, st.size_bytes, buf);
        vm.charge_file_syscall();
        NESC_RETURN_IF_ERROR(fs->write(ino, st.size_bytes, buf));
        if (config.sync_writes)
            NESC_RETURN_IF_ERROR(fs->fsync(ino));
        ++result.appends;
        result.bytes_written += add;
        return util::Status::ok();
    };

    // Phase 1: initial pool.
    vm.charge_file_syscall();
    NESC_RETURN_IF_ERROR(fs->mkdir(config.directory, 0755).status());
    for (std::uint32_t i = 0; i < config.initial_files; ++i)
        NESC_RETURN_IF_ERROR(create_one());

    // Phase 2: transactions (timed region).
    const sim::Time start = simulator.now();
    for (std::uint32_t t = 0; t < config.transactions; ++t) {
        if (rng.next_bool(config.create_delete_bias)) {
            if (rng.next_bool(0.5))
                NESC_RETURN_IF_ERROR(create_one());
            else
                NESC_RETURN_IF_ERROR(delete_one());
        } else {
            if (rng.next_bool(0.5))
                NESC_RETURN_IF_ERROR(read_one());
            else
                NESC_RETURN_IF_ERROR(append_one());
        }
        ++result.transactions;
    }
    result.elapsed = simulator.now() - start;

    // Phase 3: cleanup.
    while (!pool.empty())
        NESC_RETURN_IF_ERROR(delete_one());
    vm.charge_file_syscall();
    NESC_RETURN_IF_ERROR(fs->rmdir(config.directory));

    result.transactions_per_sec =
        result.elapsed
            ? static_cast<double>(result.transactions) /
                  util::ns_to_sec(result.elapsed)
            : 0.0;
    return result;
}

} // namespace nesc::wl
