/**
 * @file
 * Allocation-stable double-ended queue for hot-path op queues.
 *
 * `std::deque` allocates and frees a fixed-size chunk every few
 * elements as a stream of values cycles through it — on the
 * controller's arbitration and translation queues that is a
 * malloc/free pair per handful of block ops, forever, even though the
 * queue's population is bounded and small. RingQueue is a power-of-two
 * circular buffer: it allocates only when the population high-water
 * mark grows, so steady-state push/pop traffic never touches the
 * allocator. The interface is the subset of `std::deque` the
 * controller uses (both-end push/pop, iteration, erase_if).
 */
#ifndef NESC_UTIL_RING_QUEUE_H
#define NESC_UTIL_RING_QUEUE_H

#include <cassert>
#include <cstddef>
#include <iterator>
#include <utility>
#include <vector>

namespace nesc::util {

/** Power-of-two circular buffer with deque semantics; see file doc. */
template <typename T>
class RingQueue {
  public:
    template <typename QueuePtr, typename Value>
    class Iter {
      public:
        using iterator_category = std::random_access_iterator_tag;
        using value_type = T;
        using difference_type = std::ptrdiff_t;
        using pointer = Value *;
        using reference = Value &;

        Iter() = default;
        Iter(QueuePtr q, std::size_t pos) : q_(q), pos_(pos) {}
        /** Mutable-to-const conversion. */
        template <typename Q2, typename V2,
                  typename = std::enable_if_t<
                      std::is_convertible_v<Q2, QueuePtr> &&
                      std::is_convertible_v<V2 *, Value *>>>
        Iter(const Iter<Q2, V2> &other)
            : q_(other.queue()), pos_(other.pos())
        {
        }

        reference operator*() const { return q_->at(pos_); }
        pointer operator->() const { return &q_->at(pos_); }
        reference operator[](difference_type n) const
        {
            return q_->at(pos_ + static_cast<std::size_t>(n));
        }

        Iter &operator++() { ++pos_; return *this; }
        Iter operator++(int) { Iter t = *this; ++pos_; return t; }
        Iter &operator--() { --pos_; return *this; }
        Iter operator--(int) { Iter t = *this; --pos_; return t; }
        Iter &operator+=(difference_type n) { pos_ += n; return *this; }
        Iter &operator-=(difference_type n) { pos_ -= n; return *this; }
        friend Iter operator+(Iter it, difference_type n)
        {
            return it += n;
        }
        friend Iter operator+(difference_type n, Iter it)
        {
            return it += n;
        }
        friend Iter operator-(Iter it, difference_type n)
        {
            return it -= n;
        }
        friend difference_type operator-(const Iter &a, const Iter &b)
        {
            return static_cast<difference_type>(a.pos_) -
                   static_cast<difference_type>(b.pos_);
        }
        friend bool operator==(const Iter &a, const Iter &b)
        {
            return a.pos_ == b.pos_;
        }
        friend bool operator!=(const Iter &a, const Iter &b)
        {
            return a.pos_ != b.pos_;
        }
        friend bool operator<(const Iter &a, const Iter &b)
        {
            return a.pos_ < b.pos_;
        }

        QueuePtr queue() const { return q_; }
        std::size_t pos() const { return pos_; }

      private:
        QueuePtr q_ = nullptr;
        std::size_t pos_ = 0;
    };

    using iterator = Iter<RingQueue *, T>;
    using const_iterator = Iter<const RingQueue *, const T>;
    using reverse_iterator = std::reverse_iterator<iterator>;
    using const_reverse_iterator = std::reverse_iterator<const_iterator>;
    using value_type = T;

    bool empty() const { return size_ == 0; }
    std::size_t size() const { return size_; }

    /** Logical index -> element, front() being index 0. */
    T &at(std::size_t i)
    {
        assert(i < size_);
        return slots_[(head_ + i) & mask()];
    }
    const T &at(std::size_t i) const
    {
        assert(i < size_);
        return slots_[(head_ + i) & mask()];
    }

    T &front() { return at(0); }
    const T &front() const { return at(0); }
    T &back() { return at(size_ - 1); }
    const T &back() const { return at(size_ - 1); }

    void
    push_back(const T &v)
    {
        reserve_one();
        slots_[(head_ + size_) & mask()] = v;
        ++size_;
    }
    void
    push_back(T &&v)
    {
        reserve_one();
        slots_[(head_ + size_) & mask()] = std::move(v);
        ++size_;
    }
    template <typename... A>
    void
    emplace_back(A &&...args)
    {
        push_back(T(std::forward<A>(args)...));
    }

    void
    push_front(const T &v)
    {
        reserve_one();
        head_ = (head_ - 1) & mask();
        slots_[head_] = v;
        ++size_;
    }
    void
    push_front(T &&v)
    {
        reserve_one();
        head_ = (head_ - 1) & mask();
        slots_[head_] = std::move(v);
        ++size_;
    }

    void
    pop_front()
    {
        assert(size_ > 0);
        // Owning payloads (buffers, callbacks) are dropped eagerly;
        // trivial ones are left in the slot to be overwritten.
        if constexpr (!std::is_trivially_destructible_v<T>)
            slots_[head_] = T{};
        head_ = (head_ + 1) & mask();
        --size_;
    }
    void
    pop_back()
    {
        assert(size_ > 0);
        if constexpr (!std::is_trivially_destructible_v<T>)
            slots_[(head_ + size_ - 1) & mask()] = T{};
        --size_;
    }

    void
    clear()
    {
        while (size_ > 0)
            pop_front();
        head_ = 0;
    }

    void
    swap(RingQueue &other)
    {
        slots_.swap(other.slots_);
        std::swap(head_, other.head_);
        std::swap(size_, other.size_);
    }

    /**
     * Removes every element matching @p pred, preserving the relative
     * order of survivors; returns the number removed. Compacts in one
     * pass — this is the quarantine/purge path, not the hot path.
     */
    template <typename Pred>
    std::size_t
    erase_if(Pred pred)
    {
        std::size_t kept = 0;
        const std::size_t n = size_;
        for (std::size_t i = 0; i < n; ++i) {
            if (pred(at(i)))
                continue;
            if (kept != i)
                at(kept) = std::move(at(i));
            ++kept;
        }
        const std::size_t removed = n - kept;
        for (std::size_t i = 0; i < removed; ++i)
            pop_back();
        return removed;
    }

    iterator begin() { return {this, 0}; }
    iterator end() { return {this, size_}; }
    const_iterator begin() const { return {this, 0}; }
    const_iterator end() const { return {this, size_}; }
    reverse_iterator rbegin() { return reverse_iterator(end()); }
    reverse_iterator rend() { return reverse_iterator(begin()); }
    const_reverse_iterator rbegin() const
    {
        return const_reverse_iterator(end());
    }
    const_reverse_iterator rend() const
    {
        return const_reverse_iterator(begin());
    }

  private:
    std::size_t mask() const { return slots_.size() - 1; }

    void
    reserve_one()
    {
        if (size_ < slots_.size())
            return;
        const std::size_t cap = slots_.empty() ? 8 : slots_.size() * 2;
        std::vector<T> grown(cap);
        for (std::size_t i = 0; i < size_; ++i)
            grown[i] = std::move(at(i));
        slots_.swap(grown);
        head_ = 0;
    }

    std::vector<T> slots_;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
};

} // namespace nesc::util

#endif // NESC_UTIL_RING_QUEUE_H
