#include "status.h"

namespace nesc::util {

const char *
error_code_name(ErrorCode code)
{
    switch (code) {
      case ErrorCode::kOk: return "OK";
      case ErrorCode::kInvalidArgument: return "INVALID_ARGUMENT";
      case ErrorCode::kOutOfRange: return "OUT_OF_RANGE";
      case ErrorCode::kNotFound: return "NOT_FOUND";
      case ErrorCode::kAlreadyExists: return "ALREADY_EXISTS";
      case ErrorCode::kPermissionDenied: return "PERMISSION_DENIED";
      case ErrorCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
      case ErrorCode::kFailedPrecondition: return "FAILED_PRECONDITION";
      case ErrorCode::kUnavailable: return "UNAVAILABLE";
      case ErrorCode::kDataLoss: return "DATA_LOSS";
      case ErrorCode::kUnimplemented: return "UNIMPLEMENTED";
      case ErrorCode::kInternal: return "INTERNAL";
    }
    return "UNKNOWN";
}

std::string
Status::to_string() const
{
    if (is_ok())
        return "OK";
    std::string out = error_code_name(code_);
    if (!message_.empty()) {
        out += ": ";
        out += message_;
    }
    return out;
}

Status
invalid_argument_error(std::string message)
{
    return Status(ErrorCode::kInvalidArgument, std::move(message));
}

Status
out_of_range_error(std::string message)
{
    return Status(ErrorCode::kOutOfRange, std::move(message));
}

Status
not_found_error(std::string message)
{
    return Status(ErrorCode::kNotFound, std::move(message));
}

Status
already_exists_error(std::string message)
{
    return Status(ErrorCode::kAlreadyExists, std::move(message));
}

Status
permission_denied_error(std::string message)
{
    return Status(ErrorCode::kPermissionDenied, std::move(message));
}

Status
resource_exhausted_error(std::string message)
{
    return Status(ErrorCode::kResourceExhausted, std::move(message));
}

Status
failed_precondition_error(std::string message)
{
    return Status(ErrorCode::kFailedPrecondition, std::move(message));
}

Status
unavailable_error(std::string message)
{
    return Status(ErrorCode::kUnavailable, std::move(message));
}

Status
data_loss_error(std::string message)
{
    return Status(ErrorCode::kDataLoss, std::move(message));
}

Status
unimplemented_error(std::string message)
{
    return Status(ErrorCode::kUnimplemented, std::move(message));
}

Status
internal_error(std::string message)
{
    return Status(ErrorCode::kInternal, std::move(message));
}

} // namespace nesc::util
