#include "lazy_pages.h"

#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define NESC_HAVE_MMAP 1
#include <sys/mman.h>
#else
#define NESC_HAVE_MMAP 0
#endif

namespace nesc::util {

LazyBytes::LazyBytes(std::uint64_t size) : size_(size)
{
    if (size_ == 0)
        return;
#if NESC_HAVE_MMAP
    void *p = ::mmap(nullptr, size_, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (p != MAP_FAILED) {
        data_ = static_cast<std::byte *>(p);
        mapped_ = true;
        return;
    }
#endif
    data_ = new std::byte[size_]();
}

LazyBytes::~LazyBytes()
{
    if (data_ == nullptr)
        return;
#if NESC_HAVE_MMAP
    if (mapped_) {
        ::munmap(data_, size_);
        return;
    }
#endif
    delete[] data_;
}

LazyBytes::LazyBytes(LazyBytes &&other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      mapped_(std::exchange(other.mapped_, false))
{
}

LazyBytes &
LazyBytes::operator=(LazyBytes &&other) noexcept
{
    if (this != &other) {
        LazyBytes tmp(std::move(other));
        std::swap(data_, tmp.data_);
        std::swap(size_, tmp.size_);
        std::swap(mapped_, tmp.mapped_);
    }
    return *this;
}

} // namespace nesc::util
