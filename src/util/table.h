/**
 * @file
 * Aligned plain-text table printer used by the benchmark harness to
 * emit the rows/series of each reproduced paper table and figure.
 */
#ifndef NESC_UTIL_TABLE_H
#define NESC_UTIL_TABLE_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace nesc::util {

/** Column-aligned table with a header row; also serializes to CSV. */
class Table {
  public:
    /** Creates a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Starts a new row; subsequent add() calls fill it left to right. */
    Table &row();

    Table &add(const std::string &cell);
    Table &add(const char *cell);
    Table &add(std::uint64_t v);
    Table &add(std::int64_t v);
    Table &add(int v) { return add(static_cast<std::int64_t>(v)); }
    Table &add(unsigned v) { return add(static_cast<std::uint64_t>(v)); }
    /** Fixed-point with @p precision digits after the decimal point. */
    Table &add(double v, int precision = 2);

    std::size_t num_rows() const { return rows_.size(); }

    /** Renders with padded columns and a separator under the header. */
    std::string to_string() const;
    /** Renders as comma-separated values (no escaping; cells are simple). */
    std::string to_csv() const;

    /** Prints to_string() to @p os. */
    void print(std::ostream &os) const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace nesc::util

#endif // NESC_UTIL_TABLE_H
