/**
 * @file
 * Deterministic pseudo-random number generation for workloads and tests.
 *
 * Simulation results must be reproducible run-to-run, so every workload
 * owns an explicitly seeded Rng rather than using global entropy. The
 * generator is xoshiro256**, which is fast and has no observable bias in
 * the bit ranges the workloads use.
 */
#ifndef NESC_UTIL_RNG_H
#define NESC_UTIL_RNG_H

#include <cstdint>

namespace nesc::util {

/** Deterministic xoshiro256** generator. */
class Rng {
  public:
    /** Seeds the state from @p seed via splitmix64 expansion. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        std::uint64_t x = seed;
        for (auto &word : state_)
            word = splitmix64(x);
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound); bound must be non-zero. */
    std::uint64_t
    next_below(std::uint64_t bound)
    {
        // Rejection sampling to avoid modulo bias.
        const std::uint64_t threshold = (0 - bound) % bound;
        for (;;) {
            const std::uint64_t r = next();
            if (r >= threshold)
                return r % bound;
        }
    }

    /** Uniform integer in [lo, hi] inclusive; requires lo <= hi. */
    std::uint64_t
    next_in(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + next_below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    next_double()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability @p p of true. */
    bool next_bool(double p) { return next_double() < p; }

    /**
     * Zipfian draw in [0, n): item popularity follows rank^-theta.
     * Used by the OLTP workload to model skewed key access. O(1) via
     * the Gray/Jim rejection-free approximation is overkill here; the
     * workload sizes are small, so a simple inverse-CDF with cached
     * normalization is adequate and exact.
     */
    std::uint64_t zipf(std::uint64_t n, double theta);

  private:
    static std::uint64_t
    splitmix64(std::uint64_t &x)
    {
        x += 0x9e3779b97f4a7c15ULL;
        std::uint64_t z = x;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    static std::uint64_t
    rotl(std::uint64_t v, int k)
    {
        return (v << k) | (v >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace nesc::util

#endif // NESC_UTIL_RNG_H
