#include "util/crc32c.h"

#include <array>

namespace nesc::util {

namespace {

constexpr std::uint32_t kPoly = 0x82f63b78u; // reflected 0x1EDC6F41

/** 4 slicing tables, generated at static-init time (constexpr). */
struct Crc32cTables {
    std::array<std::array<std::uint32_t, 256>, 4> t{};

    constexpr Crc32cTables()
    {
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t crc = i;
            for (int bit = 0; bit < 8; ++bit)
                crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
            t[0][i] = crc;
        }
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t crc = t[0][i];
            for (std::size_t k = 1; k < 4; ++k) {
                crc = (crc >> 8) ^ t[0][crc & 0xff];
                t[k][i] = crc;
            }
        }
    }
};

constexpr Crc32cTables kTables{};

} // namespace

std::uint32_t
crc32c(std::span<const std::byte> data, std::uint32_t seed)
{
    std::uint32_t crc = ~seed;
    const std::byte *p = data.data();
    std::size_t n = data.size();

    while (n >= 4) {
        crc ^= static_cast<std::uint32_t>(p[0]) |
               (static_cast<std::uint32_t>(p[1]) << 8) |
               (static_cast<std::uint32_t>(p[2]) << 16) |
               (static_cast<std::uint32_t>(p[3]) << 24);
        crc = kTables.t[3][crc & 0xff] ^ kTables.t[2][(crc >> 8) & 0xff] ^
              kTables.t[1][(crc >> 16) & 0xff] ^ kTables.t[0][crc >> 24];
        p += 4;
        n -= 4;
    }
    while (n-- > 0) {
        crc = (crc >> 8) ^
              kTables.t[0][(crc ^ static_cast<std::uint32_t>(*p++)) & 0xff];
    }
    return ~crc;
}

} // namespace nesc::util
