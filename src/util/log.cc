#include "log.h"

namespace nesc::util {

namespace {
LogLevel g_level = LogLevel::kWarn;

const char *
level_tag(LogLevel level)
{
    switch (level) {
      case LogLevel::kDebug: return "DEBUG";
      case LogLevel::kInfo: return "INFO";
      case LogLevel::kWarn: return "WARN";
      case LogLevel::kError: return "ERROR";
      case LogLevel::kOff: return "OFF";
    }
    return "?";
}
} // namespace

LogLevel
log_level()
{
    return g_level;
}

void
set_log_level(LogLevel level)
{
    g_level = level;
}

void
log_at(LogLevel level, const char *fmt, ...)
{
    if (level < g_level || g_level == LogLevel::kOff)
        return;
    std::fprintf(stderr, "[%s] ", level_tag(level));
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fputc('\n', stderr);
}

} // namespace nesc::util
