#include "log.h"

#include <cstdlib>
#include <cstring>
#include <map>

namespace nesc::util {

namespace {

LogLevel g_level = LogLevel::kWarn;
LogSink g_sink; // empty => default stderr sink

std::map<std::string, LogLevel> &
component_levels()
{
    static std::map<std::string, LogLevel> levels;
    return levels;
}

const char *
level_tag(LogLevel level)
{
    switch (level) {
      case LogLevel::kDebug: return "DEBUG";
      case LogLevel::kInfo: return "INFO";
      case LogLevel::kWarn: return "WARN";
      case LogLevel::kError: return "ERROR";
      case LogLevel::kOff: return "OFF";
    }
    return "?";
}

bool
parse_level(const std::string &name, LogLevel &out)
{
    if (name == "debug") { out = LogLevel::kDebug; return true; }
    if (name == "info")  { out = LogLevel::kInfo;  return true; }
    if (name == "warn")  { out = LogLevel::kWarn;  return true; }
    if (name == "error") { out = LogLevel::kError; return true; }
    if (name == "off")   { out = LogLevel::kOff;   return true; }
    return false;
}

/** Applies $NESC_LOG once, before the first filtering decision. */
void
apply_env_spec_once()
{
    static const bool applied = [] {
        if (const char *spec = std::getenv("NESC_LOG"))
            apply_log_spec(spec);
        return true;
    }();
    (void)applied;
}

} // namespace

LogLevel
log_level()
{
    apply_env_spec_once();
    return g_level;
}

void
set_log_level(LogLevel level)
{
    g_level = level;
}

void
set_component_log_level(const std::string &component, LogLevel level)
{
    component_levels()[component] = level;
}

void
clear_component_log_levels()
{
    component_levels().clear();
}

LogLevel
log_level_for(const char *component)
{
    apply_env_spec_once();
    const auto &levels = component_levels();
    if (!levels.empty()) {
        const auto it = levels.find(component);
        if (it != levels.end())
            return it->second;
    }
    return g_level;
}

LogSink
set_log_sink(LogSink sink)
{
    LogSink previous = std::move(g_sink);
    g_sink = std::move(sink);
    return previous;
}

bool
apply_log_spec(const char *spec)
{
    if (spec == nullptr)
        return false;
    bool all_ok = true;
    const char *p = spec;
    while (*p != '\0') {
        const char *end = std::strchr(p, ',');
        std::string entry =
            end != nullptr ? std::string(p, end) : std::string(p);
        p = end != nullptr ? end + 1 : p + entry.size();
        if (entry.empty())
            continue;
        const std::size_t eq = entry.find('=');
        LogLevel level;
        if (eq == std::string::npos) {
            if (parse_level(entry, level))
                g_level = level;
            else
                all_ok = false;
        } else {
            const std::string component = entry.substr(0, eq);
            if (!component.empty() &&
                parse_level(entry.substr(eq + 1), level))
                component_levels()[component] = level;
            else
                all_ok = false;
        }
    }
    return all_ok;
}

void
log_at(LogLevel level, const char *component, const char *fmt, ...)
{
    const LogLevel threshold = log_level_for(component);
    if (level < threshold || threshold == LogLevel::kOff)
        return;
    char buffer[512];
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(buffer, sizeof buffer, fmt, args);
    va_end(args);
    if (g_sink) {
        g_sink(level, component, buffer);
        return;
    }
    std::fprintf(stderr, "[%s] %s: %s\n", level_tag(level), component,
                 buffer);
}

ScopedLogSink::ScopedLogSink()
{
    previous_ = set_log_sink(
        [this](LogLevel level, const char *component,
               const std::string &message) {
            records_.push_back({level, component, message});
        });
}

ScopedLogSink::~ScopedLogSink()
{
    set_log_sink(std::move(previous_));
}

bool
ScopedLogSink::contains(const std::string &needle) const
{
    for (const Record &r : records_)
        if (r.message.find(needle) != std::string::npos)
            return true;
    return false;
}

} // namespace nesc::util
