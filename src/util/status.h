/**
 * @file
 * Lightweight error propagation types used across the NeSC libraries.
 *
 * The library avoids exceptions on hot simulated paths (mirroring the
 * style of hardware simulators such as gem5); fallible operations return
 * a Status or a Result<T>.
 */
#ifndef NESC_UTIL_STATUS_H
#define NESC_UTIL_STATUS_H

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace nesc::util {

/** Error categories shared by all subsystems. */
enum class ErrorCode {
    kOk = 0,
    kInvalidArgument,   ///< Caller passed a malformed request.
    kOutOfRange,        ///< Address/offset outside the valid range.
    kNotFound,          ///< Named entity (file, inode, VF...) absent.
    kAlreadyExists,     ///< Create collided with an existing entity.
    kPermissionDenied,  ///< Filesystem or device permission check failed.
    kResourceExhausted, ///< Out of blocks, inodes, VF slots, queue space.
    kFailedPrecondition,///< Operation not valid in the current state.
    kUnavailable,       ///< Transient: retry may succeed (e.g. queue full).
    kDataLoss,          ///< Corruption detected (bad magic, torn journal).
    kUnimplemented,     ///< Feature intentionally not supported.
    kInternal,          ///< Invariant violation inside the library.
};

/** Human-readable name of an ErrorCode (e.g. "OUT_OF_RANGE"). */
const char *error_code_name(ErrorCode code);

/**
 * A success-or-error result with an optional diagnostic message.
 *
 * Cheap to copy on the success path (no allocation); error construction
 * allocates only for the message.
 */
class [[nodiscard]] Status {
  public:
    /** Constructs an OK status. */
    Status() = default;

    /** Constructs an error status; @p code must not be kOk. */
    Status(ErrorCode code, std::string message)
        : code_(code), message_(std::move(message))
    {
        assert(code != ErrorCode::kOk && "error Status requires non-OK code");
    }

    static Status ok() { return Status(); }

    bool is_ok() const { return code_ == ErrorCode::kOk; }
    explicit operator bool() const { return is_ok(); }

    ErrorCode code() const { return code_; }
    const std::string &message() const { return message_; }

    /** "OK" or "CODE_NAME: message". */
    std::string to_string() const;

  private:
    ErrorCode code_ = ErrorCode::kOk;
    std::string message_;
};

/** Convenience factories, one per error category. */
Status invalid_argument_error(std::string message);
Status out_of_range_error(std::string message);
Status not_found_error(std::string message);
Status already_exists_error(std::string message);
Status permission_denied_error(std::string message);
Status resource_exhausted_error(std::string message);
Status failed_precondition_error(std::string message);
Status unavailable_error(std::string message);
Status data_loss_error(std::string message);
Status unimplemented_error(std::string message);
Status internal_error(std::string message);

/**
 * Value-or-Status result type.
 *
 * A minimal std::expected stand-in: holds either a T (status OK) or an
 * error Status. Accessing value() on an error aborts in debug builds.
 */
template <typename T>
class [[nodiscard]] Result {
  public:
    /** Implicit from a value: success. */
    Result(T value) : value_(std::move(value)) {}

    /** Implicit from an error status; @p status must not be OK. */
    Result(Status status) : status_(std::move(status))
    {
        assert(!status_.is_ok() && "Result error requires non-OK status");
    }

    bool is_ok() const { return status_.is_ok(); }
    explicit operator bool() const { return is_ok(); }

    const Status &status() const { return status_; }

    T &value() &
    {
        assert(is_ok());
        return *value_;
    }
    const T &value() const &
    {
        assert(is_ok());
        return *value_;
    }
    T &&value() &&
    {
        assert(is_ok());
        return std::move(*value_);
    }

    T &operator*() & { return value(); }
    const T &operator*() const & { return value(); }
    T &&operator*() && { return std::move(*this).value(); }
    T *operator->() { return &value(); }
    const T *operator->() const { return &value(); }

    /** Returns the value, or @p fallback if this holds an error. */
    T value_or(T fallback) const
    {
        return is_ok() ? *value_ : std::move(fallback);
    }

  private:
    std::optional<T> value_;
    Status status_;
};

} // namespace nesc::util

/**
 * Propagates an error Status from the current function.
 * Usage: NESC_RETURN_IF_ERROR(device.write(off, data));
 */
#define NESC_RETURN_IF_ERROR(expr)                                          \
    do {                                                                    \
        ::nesc::util::Status nesc_status_ = (expr);                         \
        if (!nesc_status_.is_ok())                                          \
            return nesc_status_;                                            \
    } while (0)

/**
 * Unwraps a Result<T> into a local variable, propagating errors.
 * Usage: NESC_ASSIGN_OR_RETURN(auto ino, fs.create("/f", 0644));
 */
#define NESC_ASSIGN_OR_RETURN(decl, expr)                                   \
    NESC_ASSIGN_OR_RETURN_IMPL_(                                            \
        NESC_STATUS_CONCAT_(nesc_result_, __LINE__), decl, expr)

#define NESC_ASSIGN_OR_RETURN_IMPL_(tmp, decl, expr)                        \
    auto tmp = (expr);                                                      \
    if (!tmp.is_ok())                                                       \
        return tmp.status();                                                \
    decl = std::move(tmp).value()

#define NESC_STATUS_CONCAT_(a, b) NESC_STATUS_CONCAT_IMPL_(a, b)
#define NESC_STATUS_CONCAT_IMPL_(a, b) a##b

#endif // NESC_UTIL_STATUS_H
