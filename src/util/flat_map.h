/**
 * @file
 * Open-addressed hash map for hot-path u64-keyed lookaside tables.
 *
 * The controller and driver key transient per-command state by tag or
 * request id; `std::unordered_map` costs a node allocation per insert
 * and a free per erase, which on the command hot path is two
 * malloc/free pairs per I/O forever. FlatMap stores slots inline in
 * one array (linear probing, tombstone deletion), so steady-state
 * insert/erase churn never touches the allocator once the table has
 * grown to the in-flight high-water mark. Iteration order is the slot
 * order of a deterministic hash — stable across runs, but unlike any
 * node-map order; the few order-sensitive walkers collect and sort
 * keys first (they already had to under `std::unordered_map`).
 */
#ifndef NESC_UTIL_FLAT_MAP_H
#define NESC_UTIL_FLAT_MAP_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace nesc::util {

/** Open-addressed `u64 -> V` map with inline slots; see file doc. */
template <typename V>
class FlatMap {
    enum class State : std::uint8_t { kEmpty, kFull, kTomb };

    struct Slot {
        std::pair<std::uint64_t, V> kv{};
        State state = State::kEmpty;
    };

  public:
    /** Forward iterator over occupied slots. */
    template <typename SlotPtr>
    class Iter {
      public:
        Iter() = default;
        Iter(SlotPtr slot, SlotPtr end) : slot_(slot), end_(end)
        {
            skip();
        }

        auto &operator*() const { return slot_->kv; }
        auto *operator->() const { return &slot_->kv; }
        Iter &
        operator++()
        {
            ++slot_;
            skip();
            return *this;
        }
        friend bool operator==(const Iter &a, const Iter &b)
        {
            return a.slot_ == b.slot_;
        }
        friend bool operator!=(const Iter &a, const Iter &b)
        {
            return a.slot_ != b.slot_;
        }
        SlotPtr raw() const { return slot_; }

      private:
        void
        skip()
        {
            while (slot_ != end_ && slot_->state != State::kFull)
                ++slot_;
        }
        SlotPtr slot_ = nullptr;
        SlotPtr end_ = nullptr;
    };

    using iterator = Iter<Slot *>;
    using const_iterator = Iter<const Slot *>;

    bool empty() const { return size_ == 0; }
    std::size_t size() const { return size_; }

    iterator begin() { return {slots_.data(), slots_end()}; }
    iterator end() { return {slots_end(), slots_end()}; }
    const_iterator begin() const
    {
        return {slots_.data(), slots_end()};
    }
    const_iterator end() const { return {slots_end(), slots_end()}; }

    iterator
    find(std::uint64_t key)
    {
        Slot *slot = locate(key);
        return slot ? iterator{slot, slots_end()} : end();
    }
    const_iterator
    find(std::uint64_t key) const
    {
        const Slot *slot = const_cast<FlatMap *>(this)->locate(key);
        return slot ? const_iterator{slot, slots_end()} : end();
    }

    V &
    at(std::uint64_t key)
    {
        Slot *slot = locate(key);
        assert(slot != nullptr);
        return slot->kv.second;
    }
    const V &
    at(std::uint64_t key) const
    {
        return const_cast<FlatMap *>(this)->at(key);
    }

    template <typename... A>
    std::pair<iterator, bool>
    try_emplace(std::uint64_t key, A &&...args)
    {
        grow_if_needed();
        auto [slot, fresh] = probe(key);
        if (fresh) {
            slot->kv.first = key;
            slot->kv.second = V(std::forward<A>(args)...);
            slot->state = State::kFull;
            ++size_;
        }
        return {iterator{slot, slots_end()}, fresh};
    }

    V &
    operator[](std::uint64_t key)
    {
        return try_emplace(key).first->second;
    }

    std::size_t
    erase(std::uint64_t key)
    {
        Slot *slot = locate(key);
        if (slot == nullptr)
            return 0;
        kill(slot);
        return 1;
    }
    void
    erase(iterator it)
    {
        assert(it != end());
        kill(it.raw());
    }
    /** `std::unordered_map` pair-iterator compatibility shim. */
    void
    erase(const_iterator it)
    {
        assert(it != end());
        kill(const_cast<Slot *>(it.raw()));
    }

    void
    clear()
    {
        for (Slot &slot : slots_)
            slot = Slot{};
        size_ = 0;
        tombstones_ = 0;
    }

  private:
    static std::uint64_t
    mix(std::uint64_t key)
    {
        // Fibonacci multiplicative hash: cheap, and spreads the
        // sequential tags/ids the drivers hand out.
        return key * 0x9E3779B97F4A7C15ull;
    }

    std::size_t mask() const { return slots_.size() - 1; }
    Slot *slots_end() { return slots_.data() + slots_.size(); }
    const Slot *slots_end() const
    {
        return slots_.data() + slots_.size();
    }

    /** Occupied slot for @p key, or nullptr. */
    Slot *
    locate(std::uint64_t key)
    {
        if (slots_.empty())
            return nullptr;
        std::size_t i = (mix(key) >> 32) & mask();
        for (;;) {
            Slot &slot = slots_[i];
            if (slot.state == State::kEmpty)
                return nullptr;
            if (slot.state == State::kFull && slot.kv.first == key)
                return &slot;
            i = (i + 1) & mask();
        }
    }

    /** Slot for @p key: {existing, false} or {insertable, true}. */
    std::pair<Slot *, bool>
    probe(std::uint64_t key)
    {
        std::size_t i = (mix(key) >> 32) & mask();
        Slot *grave = nullptr;
        for (;;) {
            Slot &slot = slots_[i];
            if (slot.state == State::kEmpty) {
                if (grave != nullptr) {
                    --tombstones_;
                    return {grave, true};
                }
                return {&slot, true};
            }
            if (slot.state == State::kTomb) {
                if (grave == nullptr)
                    grave = &slot;
            } else if (slot.kv.first == key) {
                return {&slot, false};
            }
            i = (i + 1) & mask();
        }
    }

    void
    kill(Slot *slot)
    {
        assert(slot->state == State::kFull);
        slot->kv.first = 0;
        slot->kv.second = V{};
        slot->state = State::kTomb;
        --size_;
        ++tombstones_;
    }

    void
    grow_if_needed()
    {
        // Rehash at 3/4 load (live + tombstones) so probes stay short.
        if (!slots_.empty() &&
            (size_ + tombstones_ + 1) * 4 <= slots_.size() * 3)
            return;
        const std::size_t cap =
            slots_.empty() ? 16
                           : (size_ * 2 >= slots_.size()
                                  ? slots_.size() * 2
                                  : slots_.size()); // tombstone purge
        std::vector<Slot> old;
        old.swap(slots_);
        slots_.resize(cap);
        size_ = 0;
        tombstones_ = 0;
        for (Slot &slot : old) {
            if (slot.state != State::kFull)
                continue;
            auto [dst, fresh] = probe(slot.kv.first);
            assert(fresh);
            dst->kv.first = slot.kv.first;
            dst->kv.second = std::move(slot.kv.second);
            dst->state = State::kFull;
            ++size_;
        }
    }

    std::vector<Slot> slots_;
    std::size_t size_ = 0;
    std::size_t tombstones_ = 0;
};

} // namespace nesc::util

#endif // NESC_UTIL_FLAT_MAP_H
