/**
 * @file
 * Size and time unit helpers shared by all NeSC modules.
 *
 * Simulated time is a 64-bit count of nanoseconds (sim::Time is defined
 * in sim/time.h as the same underlying type; util keeps the raw helpers
 * so low-level modules need not depend on the simulator).
 */
#ifndef NESC_UTIL_UNITS_H
#define NESC_UTIL_UNITS_H

#include <cstdint>

namespace nesc::util {

// --- Sizes (bytes) ---------------------------------------------------

inline constexpr std::uint64_t kKiB = 1024;
inline constexpr std::uint64_t kMiB = 1024 * kKiB;
inline constexpr std::uint64_t kGiB = 1024 * kMiB;

/** Decimal units, used for bandwidth figures quoted in MB/s / GB/s. */
inline constexpr std::uint64_t kKB = 1000;
inline constexpr std::uint64_t kMB = 1000 * kKB;
inline constexpr std::uint64_t kGB = 1000 * kMB;

// --- Time (nanoseconds) ----------------------------------------------

inline constexpr std::uint64_t kNsPerUs = 1000;
inline constexpr std::uint64_t kNsPerMs = 1000 * kNsPerUs;
inline constexpr std::uint64_t kNsPerSec = 1000 * kNsPerMs;

/** Converts nanoseconds to (double) microseconds. */
constexpr double
ns_to_us(std::uint64_t ns)
{
    return static_cast<double>(ns) / static_cast<double>(kNsPerUs);
}

/** Converts nanoseconds to (double) milliseconds. */
constexpr double
ns_to_ms(std::uint64_t ns)
{
    return static_cast<double>(ns) / static_cast<double>(kNsPerMs);
}

/** Converts nanoseconds to (double) seconds. */
constexpr double
ns_to_sec(std::uint64_t ns)
{
    return static_cast<double>(ns) / static_cast<double>(kNsPerSec);
}

/**
 * Time to move @p bytes at @p bytes_per_sec, rounded up to a whole
 * nanosecond (zero-byte transfers take zero time).
 */
constexpr std::uint64_t
transfer_time_ns(std::uint64_t bytes, std::uint64_t bytes_per_sec)
{
    if (bytes == 0 || bytes_per_sec == 0)
        return 0;
    // bytes * 1e9 can overflow for very large transfers; split the
    // multiplication to stay within 64 bits for any realistic input.
    const std::uint64_t whole_sec = bytes / bytes_per_sec;
    const std::uint64_t rem = bytes % bytes_per_sec;
    return whole_sec * kNsPerSec +
           (rem * kNsPerSec + bytes_per_sec - 1) / bytes_per_sec;
}

/** Achieved bandwidth in MB/s for @p bytes moved in @p ns. */
constexpr double
bandwidth_mb_per_sec(std::uint64_t bytes, std::uint64_t ns)
{
    if (ns == 0)
        return 0.0;
    return static_cast<double>(bytes) /
           static_cast<double>(kMB) / ns_to_sec(ns);
}

/** Integer ceiling division. */
constexpr std::uint64_t
ceil_div(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

/** Rounds @p v up to a multiple of @p align (align must be non-zero). */
constexpr std::uint64_t
round_up(std::uint64_t v, std::uint64_t align)
{
    return ceil_div(v, align) * align;
}

/** Rounds @p v down to a multiple of @p align (align must be non-zero). */
constexpr std::uint64_t
round_down(std::uint64_t v, std::uint64_t align)
{
    return (v / align) * align;
}

/** True when @p v is a power of two (and non-zero). */
constexpr bool
is_pow2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace nesc::util

#endif // NESC_UTIL_UNITS_H
