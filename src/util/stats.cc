#include "stats.h"

#include <algorithm>
#include <cmath>

namespace nesc::util {

void
Summary::add(double v)
{
    if (count_ == 0) {
        min_ = max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    ++count_;
    sum_ += v;
    const double delta = v - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (v - mean_);
}

double
Summary::stddev() const
{
    if (count_ < 2)
        return 0.0;
    return std::sqrt(m2_ / static_cast<double>(count_));
}

void
Sampler::add(double v)
{
    samples_.push_back(v);
    sorted_valid_ = false;
}

double
Sampler::mean() const
{
    if (samples_.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : samples_)
        sum += v;
    return sum / static_cast<double>(samples_.size());
}

void
Sampler::ensure_sorted() const
{
    if (sorted_valid_)
        return;
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
}

double
Sampler::percentile(double p) const
{
    if (samples_.empty())
        return 0.0;
    ensure_sorted();
    if (p <= 0.0)
        return sorted_.front();
    if (p >= 100.0)
        return sorted_.back();
    // Linear interpolation between closest ranks.
    const double rank = p / 100.0 * static_cast<double>(sorted_.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const double frac = rank - static_cast<double>(lo);
    if (lo + 1 >= sorted_.size())
        return sorted_.back();
    return sorted_[lo] * (1.0 - frac) + sorted_[lo + 1] * frac;
}

void
Sampler::reset()
{
    samples_.clear();
    sorted_.clear();
    sorted_valid_ = false;
}

std::uint64_t
CounterGroup::get(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

std::string
CounterGroup::to_string() const
{
    std::string out;
    for (const auto &[name, value] : counters_) {
        if (!out.empty())
            out += ' ';
        out += name;
        out += '=';
        out += std::to_string(value);
    }
    return out;
}

} // namespace nesc::util
