#include "table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace nesc::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers))
{
}

Table &
Table::row()
{
    rows_.emplace_back();
    return *this;
}

Table &
Table::add(const std::string &cell)
{
    if (rows_.empty())
        rows_.emplace_back();
    rows_.back().push_back(cell);
    return *this;
}

Table &
Table::add(const char *cell)
{
    return add(std::string(cell));
}

Table &
Table::add(std::uint64_t v)
{
    return add(std::to_string(v));
}

Table &
Table::add(std::int64_t v)
{
    return add(std::to_string(v));
}

Table &
Table::add(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return add(std::string(buf));
}

std::string
Table::to_string() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit_row = [&](const std::vector<std::string> &row) {
        std::string line;
        for (std::size_t c = 0; c < widths.size(); ++c) {
            const std::string &cell = c < row.size() ? row[c] : std::string();
            line += cell;
            if (c + 1 < widths.size())
                line += std::string(widths[c] - cell.size() + 2, ' ');
        }
        // Trim trailing spaces.
        while (!line.empty() && line.back() == ' ')
            line.pop_back();
        line += '\n';
        return line;
    };

    std::string out = emit_row(headers_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    out += std::string(total, '-');
    out += '\n';
    for (const auto &row : rows_)
        out += emit_row(row);
    return out;
}

std::string
Table::to_csv() const
{
    auto emit = [](const std::vector<std::string> &row) {
        std::string line;
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c)
                line += ',';
            line += row[c];
        }
        line += '\n';
        return line;
    };
    std::string out = emit(headers_);
    for (const auto &row : rows_)
        out += emit(row);
    return out;
}

void
Table::print(std::ostream &os) const
{
    os << to_string();
}

} // namespace nesc::util
