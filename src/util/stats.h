/**
 * @file
 * Measurement collection: running summaries, percentile samplers, and
 * named counter groups used by the benchmark harness and device models.
 */
#ifndef NESC_UTIL_STATS_H
#define NESC_UTIL_STATS_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace nesc::util {

/**
 * Running summary of a scalar series: count, mean, min, max, stddev.
 * O(1) memory; use Sampler when percentiles are needed.
 */
class Summary {
  public:
    void add(double v);

    std::uint64_t count() const { return count_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double sum() const { return sum_; }
    /** Population standard deviation (Welford). */
    double stddev() const;

    void reset() { *this = Summary(); }

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double mean_ = 0.0; // Welford running mean
    double m2_ = 0.0;   // Welford running sum of squared deltas
};

/**
 * Stores every sample to answer percentile queries exactly. Intended
 * for latency series of up to a few million entries.
 */
class Sampler {
  public:
    void add(double v);

    std::uint64_t count() const { return samples_.size(); }
    double mean() const;
    /** Exact percentile, p in [0, 100]; returns 0 when empty. */
    double percentile(double p) const;
    double median() const { return percentile(50.0); }

    const std::vector<double> &samples() const { return samples_; }
    void reset();

  private:
    void ensure_sorted() const;

    std::vector<double> samples_;
    mutable std::vector<double> sorted_;
    mutable bool sorted_valid_ = false;
};

/**
 * A named group of integral counters, e.g. the NeSC controller's
 * btlb_hits/btlb_misses/walk_levels. Counters auto-create at zero.
 */
class CounterGroup {
  public:
    std::uint64_t &operator[](const std::string &name)
    {
        return counters_[name];
    }

    /** Value of @p name, zero if never touched. */
    std::uint64_t get(const std::string &name) const;

    const std::map<std::string, std::uint64_t> &all() const
    {
        return counters_;
    }

    /** "name=value name=value ..." for logging. */
    std::string to_string() const;

    void reset() { counters_.clear(); }

  private:
    std::map<std::string, std::uint64_t> counters_;
};

} // namespace nesc::util

#endif // NESC_UTIL_STATS_H
