/**
 * @file
 * Minimal leveled logging. Device models log sparingly; the default
 * level is kWarn so tests and benches stay quiet unless asked.
 */
#ifndef NESC_UTIL_LOG_H
#define NESC_UTIL_LOG_H

#include <cstdarg>
#include <cstdio>

namespace nesc::util {

enum class LogLevel { kDebug = 0, kInfo, kWarn, kError, kOff };

/** Process-wide log threshold. */
LogLevel log_level();
void set_log_level(LogLevel level);

/** printf-style emit at @p level; filtered by the global threshold. */
void log_at(LogLevel level, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

} // namespace nesc::util

#define NESC_LOG_DEBUG(...)                                                 \
    ::nesc::util::log_at(::nesc::util::LogLevel::kDebug, __VA_ARGS__)
#define NESC_LOG_INFO(...)                                                  \
    ::nesc::util::log_at(::nesc::util::LogLevel::kInfo, __VA_ARGS__)
#define NESC_LOG_WARN(...)                                                  \
    ::nesc::util::log_at(::nesc::util::LogLevel::kWarn, __VA_ARGS__)
#define NESC_LOG_ERROR(...)                                                 \
    ::nesc::util::log_at(::nesc::util::LogLevel::kError, __VA_ARGS__)

#endif // NESC_UTIL_LOG_H
