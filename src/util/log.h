/**
 * @file
 * Minimal leveled logging with pluggable sinks and per-component
 * thresholds. Device models log sparingly; the default level is kWarn
 * so tests and benches stay quiet unless asked.
 *
 * Components: every translation unit that logs names its component by
 * redefining NESC_LOG_COMPONENT after its includes:
 *
 *     #undef NESC_LOG_COMPONENT
 *     #define NESC_LOG_COMPONENT "controller"
 *
 * Thresholds resolve per component and are overridable from the
 * environment: NESC_LOG="debug" sets the global level,
 * NESC_LOG="controller=debug" (comma-separated list; bare entries set
 * the global level) overrides one component.
 *
 * Sinks: output goes through a replaceable LogSink (default: stderr as
 * "[LEVEL] component: message"). Tests install a capturing sink via
 * ScopedLogSink to assert warn paths fire.
 */
#ifndef NESC_UTIL_LOG_H
#define NESC_UTIL_LOG_H

#include <cstdarg>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

namespace nesc::util {

enum class LogLevel { kDebug = 0, kInfo, kWarn, kError, kOff };

/** Receives every emitted (post-filter) log record. */
using LogSink = std::function<void(LogLevel level, const char *component,
                                   const std::string &message)>;

/** Process-wide log threshold. */
LogLevel log_level();
void set_log_level(LogLevel level);

/** Sets a per-component threshold overriding the global one. */
void set_component_log_level(const std::string &component, LogLevel level);

/** Drops every per-component override. */
void clear_component_log_levels();

/** Effective threshold for @p component (override or global). */
LogLevel log_level_for(const char *component);

/**
 * Replaces the output sink; an empty sink restores the default stderr
 * sink. Returns the previously installed sink (empty if default).
 */
LogSink set_log_sink(LogSink sink);

/**
 * Applies a "level" / "component=level,component=level" spec (the
 * NESC_LOG environment variable format). Returns false if any entry
 * was malformed; well-formed entries still take effect.
 */
bool apply_log_spec(const char *spec);

/**
 * printf-style emit tagged with @p component; filtered by the
 * component's effective threshold. Call through the NESC_LOG_* macros,
 * which supply the translation unit's component automatically.
 */
void log_at(LogLevel level, const char *component, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

/** RAII capture-to-buffer sink for tests. */
class ScopedLogSink {
  public:
    struct Record {
        LogLevel level;
        std::string component;
        std::string message;
    };

    ScopedLogSink();
    ~ScopedLogSink();
    ScopedLogSink(const ScopedLogSink &) = delete;
    ScopedLogSink &operator=(const ScopedLogSink &) = delete;

    const std::vector<Record> &records() const { return records_; }
    /** True if any captured message contains @p needle. */
    bool contains(const std::string &needle) const;
    void clear() { records_.clear(); }

  private:
    std::vector<Record> records_;
    LogSink previous_;
};

} // namespace nesc::util

/**
 * Component tag used by the NESC_LOG_* macros; translation units
 * override it after their includes (see file comment).
 */
#ifndef NESC_LOG_COMPONENT
#define NESC_LOG_COMPONENT "core"
#endif

#define NESC_LOG_DEBUG(...)                                                 \
    ::nesc::util::log_at(::nesc::util::LogLevel::kDebug,                    \
                         NESC_LOG_COMPONENT, __VA_ARGS__)
#define NESC_LOG_INFO(...)                                                  \
    ::nesc::util::log_at(::nesc::util::LogLevel::kInfo,                     \
                         NESC_LOG_COMPONENT, __VA_ARGS__)
#define NESC_LOG_WARN(...)                                                  \
    ::nesc::util::log_at(::nesc::util::LogLevel::kWarn,                     \
                         NESC_LOG_COMPONENT, __VA_ARGS__)
#define NESC_LOG_ERROR(...)                                                 \
    ::nesc::util::log_at(::nesc::util::LogLevel::kError,                    \
                         NESC_LOG_COMPONENT, __VA_ARGS__)

#endif // NESC_UTIL_LOG_H
