/**
 * @file
 * CRC32C (Castagnoli, polynomial 0x1EDC6F41) — the checksum used by
 * every integrity feature in the tree: the per-pLBA data sidecar
 * (storage::IntegrityMap), extent-tree v2 node trailers, and nestfs
 * metadata block checksums.
 *
 * Table-driven (slicing-by-4) software implementation so the simulator
 * is bit-identical across hosts regardless of SSE4.2 availability; the
 * polynomial matches iSCSI/ext4/Btrfs so sidecar images are what real
 * storage stacks would persist.
 */
#ifndef NESC_UTIL_CRC32C_H
#define NESC_UTIL_CRC32C_H

#include <cstddef>
#include <cstdint>
#include <span>

namespace nesc::util {

/**
 * CRC32C of @p data continuing from @p seed (pass the previous return
 * value to checksum discontiguous pieces as one logical stream). The
 * seed/result are the conventional post-inverted form: crc32c(x) of a
 * whole buffer equals crc32c(x, 0).
 */
std::uint32_t crc32c(std::span<const std::byte> data,
                     std::uint32_t seed = 0);

/** Convenience overload for raw pointer + length. */
inline std::uint32_t
crc32c(const void *data, std::size_t size, std::uint32_t seed = 0)
{
    return crc32c(
        std::span<const std::byte>(static_cast<const std::byte *>(data),
                                   size),
        seed);
}

} // namespace nesc::util

#endif // NESC_UTIL_CRC32C_H
