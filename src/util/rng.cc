#include "rng.h"

#include <cmath>
#include <vector>

namespace nesc::util {

std::uint64_t
Rng::zipf(std::uint64_t n, double theta)
{
    if (n <= 1)
        return 0;
    // Cache the harmonic normalizations per (n, theta); workloads use a
    // single configuration per run so a one-entry cache suffices.
    static thread_local std::uint64_t cached_n = 0;
    static thread_local double cached_theta = -1.0;
    static thread_local std::vector<double> cdf;
    if (cached_n != n || cached_theta != theta) {
        cdf.resize(n);
        double sum = 0.0;
        for (std::uint64_t i = 0; i < n; ++i) {
            sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
            cdf[i] = sum;
        }
        for (auto &v : cdf)
            v /= sum;
        cached_n = n;
        cached_theta = theta;
    }
    const double u = next_double();
    // Binary search the CDF.
    std::uint64_t lo = 0, hi = n - 1;
    while (lo < hi) {
        const std::uint64_t mid = (lo + hi) / 2;
        if (cdf[mid] < u)
            lo = mid + 1;
        else
            hi = mid;
    }
    return lo;
}

} // namespace nesc::util
