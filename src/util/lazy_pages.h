/**
 * @file
 * Demand-paged zeroed byte buffer.
 *
 * The testbed models gigabyte-scale host DRAM and device media as flat
 * byte arrays, but a typical run touches only a few megabytes of them.
 * A std::vector<std::byte> backing pays the zero-fill (and the page
 * faults) for the full size up front — on the 8-VF bench fixtures that
 * was ~90% of wall-clock. LazyBytes mmaps anonymous memory instead:
 * the kernel hands out zero pages on first touch, so untouched spans
 * cost nothing and a 256-VF testbed becomes tractable.
 *
 * Falls back to a heap allocation when mmap is unavailable.
 */
#ifndef NESC_UTIL_LAZY_PAGES_H
#define NESC_UTIL_LAZY_PAGES_H

#include <cstddef>
#include <cstdint>

namespace nesc::util {

/** Fixed-size zero-initialized buffer backed by demand-zero pages. */
class LazyBytes {
  public:
    LazyBytes() = default;
    explicit LazyBytes(std::uint64_t size);
    ~LazyBytes();

    LazyBytes(LazyBytes &&other) noexcept;
    LazyBytes &operator=(LazyBytes &&other) noexcept;
    LazyBytes(const LazyBytes &) = delete;
    LazyBytes &operator=(const LazyBytes &) = delete;

    std::uint64_t size() const { return size_; }
    std::byte *data() { return data_; }
    const std::byte *data() const { return data_; }

  private:
    std::byte *data_ = nullptr;
    std::uint64_t size_ = 0;
    bool mapped_ = false; ///< mmap vs operator new backing
};

} // namespace nesc::util

#endif // NESC_UTIL_LAZY_PAGES_H
