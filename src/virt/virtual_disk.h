/**
 * @file
 * Guest-facing virtual disks: the three attachment techniques of
 * Figure 1, all exposed as blk::BlockIo so the same guest OS stack and
 * workloads run unchanged over each.
 *
 *  - EmulatedDisk:  full device emulation; every request traps on
 *    multiple register accesses that the hypervisor's device model
 *    decodes, then executes against the backing store.
 *  - VirtioDisk:    paravirtual queue; one kick per request plus
 *    host-side processing, then the backing store.
 *  - Direct VF assignment needs no wrapper here — the guest mounts a
 *    drv::FunctionBlockIo straight on its VF (zero hypervisor code in
 *    the data path), which is the whole point of NeSC.
 *
 * The backing store is any BlockIo: the hypervisor's raw PF path for
 * raw-device experiments, or a FileBlockIo over the hypervisor
 * filesystem for image-file-backed disks (the nested-filesystem
 * configuration the macrobenchmarks use).
 */
#ifndef NESC_VIRT_VIRTUAL_DISK_H
#define NESC_VIRT_VIRTUAL_DISK_H

#include "blocklayer/block_io.h"
#include "fs/nestfs.h"
#include "sim/simulator.h"
#include "util/units.h"
#include "virt/cost_model.h"

namespace nesc::virt {

/** BlockIo over a file in the hypervisor's filesystem. */
class FileBlockIo : public blk::BlockIo {
  public:
    /**
     * @param size_blocks logical device size exported to the guest
     *        (the file may be sparse and shorter).
     */
    FileBlockIo(sim::Simulator &simulator, fs::NestFs &fs, fs::InodeId ino,
                std::uint64_t size_blocks, const CostModel &costs)
        : simulator_(simulator), fs_(fs), ino_(ino),
          size_blocks_(size_blocks), costs_(costs)
    {
    }

    std::uint32_t block_size() const override { return fs::kFsBlockSize; }
    std::uint64_t num_blocks() const override { return size_blocks_; }

    util::Status read_blocks(std::uint64_t blockno, std::uint32_t count,
                             std::span<std::byte> out) override;
    util::Status write_blocks(std::uint64_t blockno, std::uint32_t count,
                              std::span<const std::byte> in) override;
    util::Status flush() override;

    fs::InodeId inode() const { return ino_; }

  private:
    sim::Simulator &simulator_;
    fs::NestFs &fs_;
    fs::InodeId ino_;
    std::uint64_t size_blocks_;
    CostModel costs_;
};

/** Fully emulated storage device (Fig. 1a). */
class EmulatedDisk : public blk::BlockIo {
  public:
    EmulatedDisk(sim::Simulator &simulator, blk::BlockIo &backing,
                 const CostModel &costs)
        : simulator_(simulator), backing_(backing), costs_(costs)
    {
    }

    std::uint32_t block_size() const override
    {
        return backing_.block_size();
    }
    std::uint64_t num_blocks() const override
    {
        return backing_.num_blocks();
    }

    util::Status read_blocks(std::uint64_t blockno, std::uint32_t count,
                             std::span<std::byte> out) override;
    util::Status write_blocks(std::uint64_t blockno, std::uint32_t count,
                              std::span<const std::byte> in) override;
    util::Status flush() override;

    std::uint64_t requests() const { return requests_; }
    std::uint64_t traps() const { return traps_; }

  private:
    void charge_submission(std::uint64_t bytes);
    void charge_completion();

    sim::Simulator &simulator_;
    blk::BlockIo &backing_;
    CostModel costs_;
    std::uint64_t requests_ = 0;
    std::uint64_t traps_ = 0;
};

/** Paravirtual virtio-blk style device (Fig. 1b). */
class VirtioDisk : public blk::BlockIo {
  public:
    VirtioDisk(sim::Simulator &simulator, blk::BlockIo &backing,
               const CostModel &costs)
        : simulator_(simulator), backing_(backing), costs_(costs)
    {
    }

    std::uint32_t block_size() const override
    {
        return backing_.block_size();
    }
    std::uint64_t num_blocks() const override
    {
        return backing_.num_blocks();
    }

    util::Status read_blocks(std::uint64_t blockno, std::uint32_t count,
                             std::span<std::byte> out) override;
    util::Status write_blocks(std::uint64_t blockno, std::uint32_t count,
                              std::span<const std::byte> in) override;
    util::Status flush() override;

    std::uint64_t requests() const { return requests_; }
    std::uint64_t kicks() const { return kicks_; }

  private:
    void charge_submission(std::uint64_t bytes);
    void charge_completion();

    sim::Simulator &simulator_;
    blk::BlockIo &backing_;
    CostModel costs_;
    std::uint64_t requests_ = 0;
    std::uint64_t kicks_ = 0;
};

} // namespace nesc::virt

#endif // NESC_VIRT_VIRTUAL_DISK_H
