#include "virtual_disk.h"

namespace nesc::virt {

// --------------------------------------------------------------------
// FileBlockIo
// --------------------------------------------------------------------

util::Status
FileBlockIo::read_blocks(std::uint64_t blockno, std::uint32_t count,
                         std::span<std::byte> out)
{
    (void)count; // implied by out.size()
    simulator_.advance(costs_.hv_file_entry);
    const std::uint64_t offset =
        blockno * static_cast<std::uint64_t>(fs::kFsBlockSize);
    NESC_ASSIGN_OR_RETURN(std::uint64_t got, fs_.read(ino_, offset, out));
    // Reads past the backing file's current size are holes of the
    // sparse image: zero-fill the remainder.
    if (got < out.size())
        std::fill(out.begin() + static_cast<std::ptrdiff_t>(got), out.end(),
                  std::byte{0});
    return util::Status::ok();
}

util::Status
FileBlockIo::write_blocks(std::uint64_t blockno, std::uint32_t count,
                          std::span<const std::byte> in)
{
    (void)count;
    simulator_.advance(costs_.hv_file_entry);
    const std::uint64_t offset =
        blockno * static_cast<std::uint64_t>(fs::kFsBlockSize);
    return fs_.write(ino_, offset, in);
}

util::Status
FileBlockIo::flush()
{
    simulator_.advance(costs_.hv_file_entry);
    return fs_.fsync(ino_);
}

// --------------------------------------------------------------------
// EmulatedDisk
// --------------------------------------------------------------------

void
EmulatedDisk::charge_submission(std::uint64_t bytes)
{
    ++requests_;
    traps_ += costs_.emu_traps_per_request;
    const sim::Duration per_trap =
        costs_.vm_trap + costs_.emu_trap_handling;
    simulator_.advance(costs_.emu_traps_per_request * per_trap +
                       costs_.emu_per_4k * util::ceil_div(bytes, 4096));
}

void
EmulatedDisk::charge_completion()
{
    ++traps_;
    simulator_.advance(costs_.emu_completion + costs_.vm_trap);
}

util::Status
EmulatedDisk::read_blocks(std::uint64_t blockno, std::uint32_t count,
                          std::span<std::byte> out)
{
    charge_submission(out.size());
    NESC_RETURN_IF_ERROR(backing_.read_blocks(blockno, count, out));
    charge_completion();
    return util::Status::ok();
}

util::Status
EmulatedDisk::write_blocks(std::uint64_t blockno, std::uint32_t count,
                           std::span<const std::byte> in)
{
    charge_submission(in.size());
    NESC_RETURN_IF_ERROR(backing_.write_blocks(blockno, count, in));
    charge_completion();
    return util::Status::ok();
}

util::Status
EmulatedDisk::flush()
{
    charge_submission(0);
    NESC_RETURN_IF_ERROR(backing_.flush());
    charge_completion();
    return util::Status::ok();
}

// --------------------------------------------------------------------
// VirtioDisk
// --------------------------------------------------------------------

void
VirtioDisk::charge_submission(std::uint64_t bytes)
{
    ++requests_;
    ++kicks_;
    simulator_.advance(costs_.virtio_guest_submit + costs_.vm_trap +
                       costs_.virtio_host_submit +
                       costs_.virtio_per_4k * util::ceil_div(bytes, 4096));
}

void
VirtioDisk::charge_completion()
{
    simulator_.advance(costs_.virtio_completion);
}

util::Status
VirtioDisk::read_blocks(std::uint64_t blockno, std::uint32_t count,
                        std::span<std::byte> out)
{
    charge_submission(out.size());
    NESC_RETURN_IF_ERROR(backing_.read_blocks(blockno, count, out));
    charge_completion();
    return util::Status::ok();
}

util::Status
VirtioDisk::write_blocks(std::uint64_t blockno, std::uint32_t count,
                         std::span<const std::byte> in)
{
    charge_submission(in.size());
    NESC_RETURN_IF_ERROR(backing_.write_blocks(blockno, count, in));
    charge_completion();
    return util::Status::ok();
}

util::Status
VirtioDisk::flush()
{
    charge_submission(0);
    NESC_RETURN_IF_ERROR(backing_.flush());
    charge_completion();
    return util::Status::ok();
}

} // namespace nesc::virt
