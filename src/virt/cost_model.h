/**
 * @file
 * Calibrated virtualization costs.
 *
 * The three storage-virtualization techniques of Figure 1 differ in
 * how many guest/hypervisor transitions (vmexit/vmenter) and how much
 * hypervisor software each request crosses. These constants are
 * calibrated so the modelled stack reproduces the paper's measured
 * ratio structure on the VC707 prototype:
 *
 *  - NeSC / direct VF access:   ~13-15 us small-block latency,
 *    within ~10% of the bare host path (Fig. 9/10);
 *  - virtio: a fixed ~70 us request overhead (kick exit, iothread
 *    wakeup, QEMU block submission, completion injection), about 6x
 *    the NeSC latency at small blocks, converging for >=2 MB reads;
 *  - full emulation: ~12 trapped register accesses per request, each
 *    with QEMU device-model dispatch, about 20x NeSC below 4 KiB.
 *
 * Absolute values are estimates for the paper's Sandy Bridge Xeon /
 * KVM platform (Table I); what the experiments assert is the shape.
 */
#ifndef NESC_VIRT_COST_MODEL_H
#define NESC_VIRT_COST_MODEL_H

#include "sim/time.h"

namespace nesc::virt {

/** Per-technique virtualization cost constants (nanoseconds). */
struct CostModel {
    /** One vmexit + vmenter round trip. */
    sim::Duration vm_trap = 1'400;

    // --- Full device emulation (Fig. 1a) ------------------------------
    /** Trapped register accesses per request (doorbells, status...). */
    std::uint32_t emu_traps_per_request = 12;
    /** QEMU device-model dispatch per trapped access. */
    sim::Duration emu_trap_handling = 18'000;
    /** Per-4KiB payload handling in the emulated device model. */
    sim::Duration emu_per_4k = 1'000;
    /** Completion path: interrupt injection back into the guest. */
    sim::Duration emu_completion = 20'000;

    // --- Paravirtual virtio (Fig. 1b) ---------------------------------
    /** Guest-side descriptor setup per request. */
    sim::Duration virtio_guest_submit = 3'000;
    /** Host side: kick exit -> iothread -> block submission. */
    sim::Duration virtio_host_submit = 40'000;
    /** Per-4KiB payload handling (copies, sg assembly). */
    sim::Duration virtio_per_4k = 400;
    /** Host completion + interrupt injection + guest handler. */
    sim::Duration virtio_completion = 25'000;

    // --- Hypervisor file access ----------------------------------------
    /** Hypervisor syscall/VFS entry per backing-file operation. */
    sim::Duration hv_file_entry = 2'500;
};

} // namespace nesc::virt

#endif // NESC_VIRT_COST_MODEL_H
