/**
 * @file
 * Full-system assembly of the experimental platform (paper Table I).
 *
 * A Testbed wires together everything a reproduction run needs:
 *
 *   host DRAM model -- PCIe BAR router -- NeSC controller -- device
 *   DRAM store, plus the hypervisor side: the PF driver (data path,
 *   VF management, fault service) and a nestfs instance holding the
 *   backing image files, mounted over the PF through the hypervisor's
 *   own OS block stack.
 *
 * Guest factories attach VMs using each of Figure 1's techniques:
 * direct NeSC VF assignment, virtio, and full emulation — either over
 * the raw PF or over an image file in the hypervisor filesystem.
 */
#ifndef NESC_VIRT_TESTBED_H
#define NESC_VIRT_TESTBED_H

#include <memory>
#include <string>
#include <vector>

#include "blocklayer/os_block_stack.h"
#include "drivers/function_driver.h"
#include "drivers/pf_driver.h"
#include "fs/nestfs.h"
#include "nesc/controller.h"
#include "pcie/host_memory.h"
#include "pcie/interrupts.h"
#include "pcie/mmio.h"
#include "repl/replica_set.h"
#include "sim/simulator.h"
#include "storage/flash_block_device.h"
#include "storage/integrity_map.h"
#include "storage/mem_block_device.h"
#include "virt/cost_model.h"
#include "virt/guest_vm.h"
#include "virt/virtual_disk.h"

namespace nesc::virt {

/**
 * Optional replicated storage behind the controller: the single
 * physical device is replaced (for the data path) by a set of
 * mirrored DRAM backends reached over modelled links, with quorum
 * writes, read failover, and background resync (src/repl).
 */
struct TestbedReplicationConfig {
    /** Mirrored backends (2-3; the failover bench kills one of 3). */
    std::uint32_t backends = 3;
    /** Set-wide policy: quorum, timeouts, demotion, resync pacing. */
    repl::ReplicaSetConfig set;
    /** Per-backend link shape + journal reservation. */
    repl::BackendConfig backend;
    /**
     * Media shape of each backend. Capacity is sized automatically to
     * the controller device plus the journal reservation so the
     * replicated data region matches the single-device capacity.
     */
    storage::MemBlockDeviceConfig media =
        storage::MemBlockDeviceConfig::vc707_prototype();
};

/**
 * Optional end-to-end data integrity: a per-pLBA CRC32C sidecar is
 * formatted at the media tail and attached to the controller, which
 * then records checksums on every write and verifies on every read
 * (mismatches walk the recovery ladder instead of reaching the guest).
 * The physical media is automatically enlarged by the sidecar size so
 * the usable data region keeps the configured capacity.
 */
struct TestbedIntegrityConfig {
    /** Bounded re-reads before the ladder escalates (register-settable). */
    std::uint32_t reread_limit = 1;
};

/** System-wide configuration. */
struct TestbedConfig {
    storage::MemBlockDeviceConfig device =
        storage::MemBlockDeviceConfig::vc707_prototype();
    /**
     * When set, the physical media is a NAND SSD model (FTL, GC,
     * asymmetric program/erase) instead of the prototype's DRAM; the
     * DRAM config above is then ignored except for capacity, which the
     * flash config's own capacity field supersedes.
     */
    std::optional<storage::FlashConfig> flash;
    /**
     * When set, all controller media traffic is mirrored across this
     * replica set instead of the single device (robustness runs).
     * Absent by default: the single-device data path is untouched.
     */
    std::optional<TestbedReplicationConfig> replication;
    /**
     * When set, checksum everything: the controller verifies every
     * media read against the sidecar and repairs from replicas when
     * both are configured. Absent by default (no timing or layout
     * change to the baseline figures).
     */
    std::optional<TestbedIntegrityConfig> integrity;
    ctrl::ControllerConfig controller;
    std::uint64_t host_memory_bytes = 256ULL << 20;
    /** BAR page size used for the SR-IOV emulation (prototype: 4 KiB). */
    std::uint64_t bar_page_size = 4096;
    drv::PfDriverConfig pf;
    fs::NestFsConfig hv_fs;
    blk::OsStackConfig hv_fs_stack;   ///< hypervisor stack under its FS
    blk::OsStackConfig host_raw_stack; ///< the "Host" baseline stack
    drv::FunctionDriverConfig vf_driver; ///< guest VF drivers
    CostModel costs;
    GuestVmConfig guest;

    TestbedConfig()
    {
        // The hypervisor filesystem's stack has no VFS layer of its
        // own (nestfs sits above it) and keeps a modest metadata cache.
        hv_fs_stack.vfs_cost = 0;
        hv_fs_stack.cache.capacity_blocks = 8192;
        // The Host baseline accesses the raw PF with O_DIRECT.
        host_raw_stack.direct_io = true;
    }
};

/** Assembled experimental platform; see file comment. */
class Testbed {
  public:
    /** Builds the platform: device, controller, hypervisor FS. */
    static util::Result<std::unique_ptr<Testbed>>
    create(const TestbedConfig &config = {});

    ~Testbed();
    Testbed(const Testbed &) = delete;
    Testbed &operator=(const Testbed &) = delete;

    // --- Component access ---------------------------------------------

    sim::Simulator &sim() { return sim_; }
    pcie::HostMemory &host_memory() { return host_memory_; }
    storage::BlockDevice &device() { return *device_; }
    /** The flash model when configured with TestbedConfig::flash. */
    storage::FlashBlockDevice *flash_device()
    {
        return dynamic_cast<storage::FlashBlockDevice *>(device_.get());
    }
    pcie::InterruptController &irq() { return irq_; }
    ctrl::Controller &controller() { return controller_; }
    pcie::BarPageRouter &bar() { return bar_; }
    drv::PfDriver &pf() { return *pf_; }
    /** The replica set when configured; nullptr otherwise. */
    repl::ReplicaSet *replicas() { return replicas_.get(); }
    /** The checksum sidecar when configured; nullptr otherwise. */
    storage::IntegrityMap *integrity_map() { return integrity_.get(); }
    /** Backend @p index's raw media (fault injection in tests). */
    storage::BlockDevice &replica_media(std::size_t index)
    {
        return *repl_media_.at(index);
    }
    fs::NestFs &hv_fs() { return *hv_fs_; }
    const TestbedConfig &config() const { return config_; }
    const CostModel &costs() const { return config_.costs; }

    /** The paper's "Host" baseline: hypervisor I/O stack directly on
     * the PF block device, no virtualization layer. */
    blk::BlockIo &host_raw_io() { return *host_raw_stack_; }

    // --- Backing files ---------------------------------------------------

    /**
     * Creates an image file of @p size_blocks device blocks in the
     * hypervisor filesystem. With @p preallocate the whole range is
     * allocated up front (no write-miss faults); otherwise allocation
     * is lazy and NeSC guests exercise the fault path.
     */
    util::Result<fs::InodeId> create_backing_file(const std::string &path,
                                                  std::uint64_t size_blocks,
                                                  bool preallocate);

    // --- Guest factories --------------------------------------------------

    /**
     * Direct device assignment through NeSC: creates (or reuses) the
     * backing file, builds the VF, and attaches a guest whose disk is
     * the VF itself.
     */
    util::Result<std::unique_ptr<GuestVm>>
    create_nesc_guest(const std::string &image_path,
                      std::uint64_t size_blocks, bool preallocate = true);

    /** virtio guest over the raw PF (paper's raw-device comparison). */
    util::Result<std::unique_ptr<GuestVm>> create_virtio_guest_raw();

    /** Emulated-device guest over the raw PF. */
    util::Result<std::unique_ptr<GuestVm>> create_emulated_guest_raw();

    /** virtio guest backed by an image file in the hypervisor FS. */
    util::Result<std::unique_ptr<GuestVm>>
    create_virtio_guest_file(const std::string &image_path,
                             std::uint64_t size_blocks,
                             bool preallocate = true);

    /** Emulated-device guest backed by an image file. */
    util::Result<std::unique_ptr<GuestVm>>
    create_emulated_guest_file(const std::string &image_path,
                               std::uint64_t size_blocks,
                               bool preallocate = true);

    /** Function id of the VF attached to @p vm (NeSC guests only). */
    util::Result<pcie::FunctionId> guest_vf(const GuestVm &vm) const;

  private:
    explicit Testbed(const TestbedConfig &config);

    util::Status init();

    /** Raw-PF hypervisor path shared by emulated/virtio raw guests. */
    util::Result<blk::BlockIo *> hv_raw_backing();

    TestbedConfig config_;
    sim::Simulator sim_;
    pcie::HostMemory host_memory_;
    std::unique_ptr<storage::BlockDevice> device_;
    std::vector<std::unique_ptr<storage::BlockDevice>> repl_media_;
    std::unique_ptr<repl::ReplicaSet> replicas_;
    std::unique_ptr<storage::IntegrityMap> integrity_;
    pcie::InterruptController irq_;
    ctrl::Controller controller_;
    pcie::BarPageRouter bar_;
    std::unique_ptr<drv::PfDriver> pf_;
    std::unique_ptr<drv::FunctionBlockIo> pf_io_;
    std::unique_ptr<blk::OsBlockStack> hv_fs_stack_;
    std::unique_ptr<fs::NestFs> hv_fs_;
    std::unique_ptr<blk::OsBlockStack> host_raw_stack_;
    /** Hypervisor stack used as raw backing for emulated/virtio. */
    std::unique_ptr<blk::OsBlockStack> hv_raw_backing_;
    std::map<const GuestVm *, pcie::FunctionId> guest_vfs_;
};

} // namespace nesc::virt

#endif // NESC_VIRT_TESTBED_H
