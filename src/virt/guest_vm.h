/**
 * @file
 * A guest virtual machine's storage view.
 *
 * A GuestVm owns a virtual disk (however it is attached: emulated,
 * virtio, or a directly assigned NeSC VF) and replicates the guest
 * OS's software layers over it — exactly the duplication Figure 1
 * illustrates. It exposes:
 *
 *  - raw_disk(): the full guest I/O stack over the raw virtual device
 *    (the paper's raw-device dd experiments), and
 *  - a guest nestfs instance formatted inside the virtual disk (the
 *    nested-filesystem configuration of the FS-overhead and
 *    application experiments).
 */
#ifndef NESC_VIRT_GUEST_VM_H
#define NESC_VIRT_GUEST_VM_H

#include <memory>
#include <string>
#include <vector>

#include "blocklayer/os_block_stack.h"
#include "fs/nestfs.h"
#include "sim/simulator.h"

namespace nesc::virt {

/** Guest OS parameters. */
struct GuestVmConfig {
    /** Software stack for raw device access (includes VFS costs). */
    blk::OsStackConfig raw_stack;
    /** Stack beneath the guest filesystem (no VFS layer; the syscall
     * and VFS entry costs for file operations are charged per file op
     * via charge_file_syscall()). */
    blk::OsStackConfig fs_stack;
    /** Guest filesystem parameters. */
    fs::NestFsConfig fs;
    /** Syscall + VFS entry cost per guest file operation. */
    sim::Duration file_syscall_cost = 1'800;

    GuestVmConfig()
    {
        // Raw device benchmarks model O_DIRECT (dd on the block node):
        // no guest page cache, so device behaviour is visible.
        raw_stack.direct_io = true;
        fs_stack.vfs_cost = 0;
        fs_stack.block_layer_cost = 1'200;
        // The paper constrains guest RAM to 128 MB to keep the storage
        // device out of cache; keep the guest cache small likewise.
        fs_stack.cache.capacity_blocks = 2048;
    }
};

/** One guest VM; see file comment. */
class GuestVm {
  public:
    /**
     * @param disk the attached virtual device (ownership transferred).
     * @param name used in accounting layers.
     */
    GuestVm(sim::Simulator &simulator, std::unique_ptr<blk::BlockIo> disk,
            std::string name, const GuestVmConfig &config = {});
    ~GuestVm();

    GuestVm(const GuestVm &) = delete;
    GuestVm &operator=(const GuestVm &) = delete;

    /** Raw virtual device through the full guest stack. */
    blk::BlockIo &raw_disk() { return *raw_stack_; }

    /** The attached virtual device itself (below the guest stack). */
    blk::BlockIo &device() { return *disk_; }

    /** Formats a guest filesystem inside the virtual disk. */
    util::Status format_fs();

    /** Mounts an existing guest filesystem (journal replay included). */
    util::Status mount_fs();

    /** Unmounts cleanly (flushes the guest cache). */
    util::Status unmount_fs();

    /** The guest filesystem; null before format_fs()/mount_fs(). */
    fs::NestFs *fs() { return fs_.get(); }

    /** Charges the guest syscall+VFS entry cost of one file op. */
    void charge_file_syscall() { simulator_.advance(config_.file_syscall_cost); }

    /** Keeps a dependency of the disk chain alive for this VM's life. */
    void hold(std::shared_ptr<void> dep) { deps_.push_back(std::move(dep)); }

    const std::string &name() const { return name_; }
    blk::OsBlockStack &fs_stack() { return *fs_stack_; }

  private:
    sim::Simulator &simulator_;
    std::string name_;
    GuestVmConfig config_;
    std::vector<std::shared_ptr<void>> deps_;
    std::unique_ptr<blk::BlockIo> disk_;
    std::unique_ptr<blk::OsBlockStack> raw_stack_;
    std::unique_ptr<blk::OsBlockStack> fs_stack_;
    std::unique_ptr<fs::NestFs> fs_;
};

} // namespace nesc::virt

#endif // NESC_VIRT_GUEST_VM_H
