/**
 * @file
 * Deterministic misbehaving-guest driver for adversarial testing.
 *
 * A HostileDriver plays the role of a compromised or buggy guest: it
 * owns a NeSC VF like drv::FunctionDriver does, but instead of the
 * driver contract it emits a seeded stream of protocol violations —
 * malformed descriptors, corrupted ring headers, rewound counters,
 * out-of-sandbox DMA pointers, doorbell storms, and probes of PF-only
 * registers — interleaved with well-formed commands so the device
 * cannot pass the test by rejecting everything.
 *
 * Everything the driver mutates directly lives in memory it allocated
 * itself (its rings and staging buffers): like a real guest it can
 * only scribble on its own pages, and attacks on the rest of the host
 * can only be expressed *through the device* (descriptor buffer
 * pointers, ring-base registers). That is exactly the surface the
 * controller's validation and DMA windows must seal, so the
 * adversarial tests can treat "no byte outside the driver's own
 * region changed" as the containment invariant.
 *
 * The stream is a pure function of the seed: every mutation draws
 * from one util::Rng, so a failing seed replays exactly.
 */
#ifndef NESC_VIRT_HOSTILE_DRIVER_H
#define NESC_VIRT_HOSTILE_DRIVER_H

#include <cstdint>

#include "nesc/command.h"
#include "pcie/host_memory.h"
#include "pcie/host_ring.h"
#include "pcie/mmio.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "util/status.h"

namespace nesc::virt {

/** Relative weights of the misbehavior classes (see step()). */
struct HostileDriverConfig {
    std::uint32_t ring_entries = 64;
    /** Staging-buffer bytes for well-formed command payloads. */
    std::uint64_t buffer_bytes = 64 * 1024;
    // Event-class weights; an event class with weight 0 never fires.
    std::uint32_t w_well_formed = 4;   ///< valid read/write/flush
    std::uint32_t w_malformed = 3;     ///< descriptor field garbage
    std::uint32_t w_oob_buffer = 2;    ///< buffer pointer out of sandbox
    std::uint32_t w_ring_corrupt = 3;  ///< scribble on the ring header
    std::uint32_t w_doorbell_spam = 2; ///< doorbells with nothing queued
    std::uint32_t w_reg_probe = 2;     ///< random/PF-only register writes
    std::uint32_t w_ring_repoint = 1;  ///< rebase rings at garbage
    std::uint32_t w_self_repair = 2;   ///< rebuild rings, resume normal
    // Queue-pair-aware classes (default 0: legacy streams stay
    // bit-identical; the multi-queue adversarial tests turn them on).
    std::uint32_t w_qp_admin_abuse = 0; ///< bogus kQp* admin sequences
    std::uint32_t w_dead_doorbell = 0;  ///< doorbells on absent pairs
};

/** Seeded misbehaving VF driver; see file comment. */
class HostileDriver {
  public:
    HostileDriver(sim::Simulator &simulator, pcie::HostMemory &host_memory,
                  pcie::BarPageRouter &bar, pcie::FunctionId fn,
                  std::uint64_t seed,
                  const HostileDriverConfig &config = {});

    /** Allocates rings/buffers and programs the ring bases. */
    util::Status init();

    /**
     * Emits one misbehavior event (class drawn from the seeded Rng).
     * Safe to call while quarantined — the hostile guest keeps
     * hammering a sealed function, which is itself a case worth
     * covering.
     */
    void step();

    /** Events emitted so far. */
    std::uint64_t events() const { return events_; }
    /** Well-formed commands submitted (subset of events). */
    std::uint64_t well_formed_submitted() const { return well_formed_; }

    pcie::FunctionId function() const { return fn_; }
    /** Sandbox range: everything this guest legitimately owns. */
    pcie::HostAddr region_base() const { return region_base_; }
    std::uint64_t region_size() const { return region_size_; }

    /**
     * Restores both rings to a pristine, well-formed state (the
     * self-repair event does this probabilistically; tests call it
     * directly after a quarantine release).
     */
    void repair();

  private:
    void submit_well_formed();
    void submit_malformed();
    void submit_oob_buffer();
    void corrupt_ring_header();
    void doorbell_spam();
    void reg_probe();
    void ring_repoint();
    void qp_admin_abuse();
    void dead_doorbell();
    /** Pushes a raw record; header corruption makes this fail silently. */
    void push_raw(const ctrl::CommandRecord &rec);
    void doorbell();
    void reg_write(std::uint64_t offset, std::uint64_t value);

    sim::Simulator &simulator_;
    pcie::HostMemory &host_memory_;
    pcie::BarPageRouter &bar_;
    pcie::FunctionId fn_;
    HostileDriverConfig config_;
    util::Rng rng_;

    // One contiguous sandbox allocation: [cmd ring][comp ring][buffers].
    pcie::HostAddr region_base_ = pcie::kNullHostAddr;
    std::uint64_t region_size_ = 0;
    pcie::HostAddr cmd_ring_base_ = pcie::kNullHostAddr;
    pcie::HostAddr comp_ring_base_ = pcie::kNullHostAddr;
    pcie::HostAddr buffer_base_ = pcie::kNullHostAddr;
    std::uint64_t device_blocks_ = 0;

    std::uint64_t events_ = 0;
    std::uint64_t well_formed_ = 0;
    std::uint64_t next_tag_ = 1;
};

} // namespace nesc::virt

#endif // NESC_VIRT_HOSTILE_DRIVER_H
