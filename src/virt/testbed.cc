#include "testbed.h"

#include <algorithm>
#include <vector>

#include "util/units.h"

namespace nesc::virt {

namespace {

/**
 * Extra bytes the media needs for the checksum sidecar, so the usable
 * data region keeps the configured capacity.
 */
std::uint64_t
sidecar_bytes(std::uint64_t capacity_bytes, std::uint32_t block_size)
{
    return storage::IntegrityMap::sidecar_blocks(
               capacity_bytes / block_size, block_size) *
           static_cast<std::uint64_t>(block_size);
}

std::unique_ptr<storage::BlockDevice>
make_device(const TestbedConfig &config)
{
    if (config.flash) {
        storage::FlashConfig flash = *config.flash;
        if (config.integrity)
            flash.capacity_bytes += sidecar_bytes(flash.capacity_bytes,
                                                  flash.logical_block_size);
        return std::make_unique<storage::FlashBlockDevice>(flash);
    }
    storage::MemBlockDeviceConfig device = config.device;
    if (config.integrity)
        device.capacity_bytes += sidecar_bytes(device.capacity_bytes,
                                               device.logical_block_size);
    return std::make_unique<storage::MemBlockDevice>(device);
}

} // namespace

Testbed::Testbed(const TestbedConfig &config)
    : config_(config), sim_(), host_memory_(config.host_memory_bytes),
      device_(make_device(config)), irq_(sim_),
      controller_(sim_, host_memory_, *device_, irq_, config.controller),
      bar_(controller_, config.bar_page_size, controller_.num_functions())
{
}

Testbed::~Testbed()
{
    if (hv_fs_)
        (void)hv_fs_->unmount();
}

util::Result<std::unique_ptr<Testbed>>
Testbed::create(const TestbedConfig &config)
{
    auto bed = std::unique_ptr<Testbed>(new Testbed(config));
    NESC_RETURN_IF_ERROR(bed->init());
    return bed;
}

util::Status
Testbed::init()
{
    // 0. Optional replicated data path: mirrored backends behind the
    //    controller. Wired before any I/O so even the hypervisor FS
    //    format traffic is replicated.
    if (config_.replication) {
        const TestbedReplicationConfig &repl = *config_.replication;
        if (repl.backends < 2)
            return util::invalid_argument_error(
                "replication needs at least 2 backends");
        replicas_ =
            std::make_unique<repl::ReplicaSet>(sim_, repl.set);
        // Size each backend so its data region (capacity minus the
        // journal reservation at the end) matches the primary device.
        // JournaledBlockstore clamps its ring to >= 3 blocks, so
        // reserve the clamped size — otherwise a tiny journal_blocks
        // config would let the ring eat into the data region and
        // high-pLBA transfers would fail out-of-range.
        storage::MemBlockDeviceConfig media = repl.media;
        media.logical_block_size =
            device_->geometry().logical_block_size;
        const std::uint64_t journal_blocks =
            std::max<std::uint64_t>(repl.backend.journal_blocks, 3);
        media.capacity_bytes =
            device_->geometry().capacity_bytes +
            journal_blocks * media.logical_block_size;
        for (std::uint32_t i = 0; i < repl.backends; ++i) {
            repl_media_.push_back(
                std::make_unique<storage::MemBlockDevice>(media));
            replicas_->add_backend(*repl_media_.back(), repl.backend);
        }
        controller_.attach_replicas(replicas_.get());
    }

    // 0.5. Optional checksum sidecar: formatted over the (enlarged)
    //      media tail and attached before any I/O, so even the
    //      hypervisor FS format traffic is checksummed. The attach
    //      clamps the PF-visible capacity back to the data region.
    if (config_.integrity) {
        const std::uint32_t block_size =
            device_->geometry().logical_block_size;
        const std::uint64_t data_blocks =
            (config_.flash ? config_.flash->capacity_bytes
                           : config_.device.capacity_bytes) /
            block_size;
        NESC_ASSIGN_OR_RETURN(
            integrity_,
            storage::IntegrityMap::format(*device_, data_blocks));
        controller_.attach_integrity(integrity_.get());
    }

    // 1. PF driver: data path + fault service (no FS yet).
    pf_ = std::make_unique<drv::PfDriver>(sim_, host_memory_, bar_, irq_,
                                          config_.pf);
    NESC_RETURN_IF_ERROR(pf_->init());
    if (config_.integrity && config_.integrity->reread_limit != 1) {
        NESC_RETURN_IF_ERROR(pf_->set_integrity_reread_limit(
            config_.integrity->reread_limit));
    }

    // 2. Hypervisor filesystem over the PF data path, through the
    //    hypervisor's own OS block stack (Fig. 1's lower half).
    NESC_ASSIGN_OR_RETURN(std::uint64_t pf_blocks,
                          pf_->pf_data().device_size_blocks());
    pf_io_ = std::make_unique<drv::FunctionBlockIo>(pf_->pf_data(),
                                                    pf_blocks);
    hv_fs_stack_ = std::make_unique<blk::OsBlockStack>(
        sim_, *pf_io_, "hv-fs", config_.hv_fs_stack);
    NESC_ASSIGN_OR_RETURN(hv_fs_,
                          fs::NestFs::format(*hv_fs_stack_, config_.hv_fs));
    pf_->attach_filesystem(*hv_fs_);

    // 3. The "Host" baseline stack: direct PF access, O_DIRECT.
    host_raw_stack_ = std::make_unique<blk::OsBlockStack>(
        sim_, *pf_io_, "host-raw", config_.host_raw_stack);
    return util::Status::ok();
}

util::Result<blk::BlockIo *>
Testbed::hv_raw_backing()
{
    if (!hv_raw_backing_) {
        blk::OsStackConfig cfg = config_.host_raw_stack;
        cfg.direct_io = true;
        hv_raw_backing_ = std::make_unique<blk::OsBlockStack>(
            sim_, *pf_io_, "hv-raw-backing", cfg);
    }
    return hv_raw_backing_.get();
}

util::Result<fs::InodeId>
Testbed::create_backing_file(const std::string &path,
                             std::uint64_t size_blocks, bool preallocate)
{
    const std::size_t slash = path.rfind('/');
    if (slash != std::string::npos && slash > 0) {
        NESC_RETURN_IF_ERROR(
            hv_fs_->mkdir_p(path.substr(0, slash), 0755).status());
    }
    NESC_ASSIGN_OR_RETURN(fs::InodeId ino, hv_fs_->create(path, 0644));
    NESC_RETURN_IF_ERROR(
        hv_fs_->truncate(ino, size_blocks * fs::kFsBlockSize));
    if (preallocate) {
        NESC_RETURN_IF_ERROR(hv_fs_->allocate_range(ino, 0, size_blocks,
                                                    /*zero_fill=*/false));
    }
    return ino;
}

util::Result<std::unique_ptr<GuestVm>>
Testbed::create_nesc_guest(const std::string &image_path,
                           std::uint64_t size_blocks, bool preallocate)
{
    // Backing file (create or reuse), VF, guest driver, guest VM.
    fs::InodeId ino;
    auto resolved = hv_fs_->resolve(image_path);
    if (resolved.is_ok()) {
        ino = resolved.value();
    } else {
        NESC_ASSIGN_OR_RETURN(
            ino, create_backing_file(image_path, size_blocks, preallocate));
    }
    NESC_ASSIGN_OR_RETURN(pcie::FunctionId fn,
                          pf_->create_vf(ino, size_blocks));
    // A multi-queue guest driver needs the device-side quota raised
    // before it admin-creates its extra pairs (reset quota is 1).
    if (config_.vf_driver.queue_pairs > 1) {
        NESC_RETURN_IF_ERROR(
            pf_->set_qp_quota(fn, config_.vf_driver.queue_pairs));
    }

    auto driver = std::make_shared<drv::FunctionDriver>(
        sim_, host_memory_, bar_, irq_, fn, config_.vf_driver);
    NESC_RETURN_IF_ERROR(driver->init());
    auto disk =
        std::make_unique<drv::FunctionBlockIo>(*driver, size_blocks);
    auto vm = std::make_unique<GuestVm>(sim_, std::move(disk),
                                        "nesc-vm", config_.guest);
    vm->hold(driver);
    guest_vfs_[vm.get()] = fn;
    return vm;
}

util::Result<std::unique_ptr<GuestVm>>
Testbed::create_virtio_guest_raw()
{
    NESC_ASSIGN_OR_RETURN(blk::BlockIo * backing, hv_raw_backing());
    auto disk =
        std::make_unique<VirtioDisk>(sim_, *backing, config_.costs);
    return std::make_unique<GuestVm>(sim_, std::move(disk), "virtio-vm",
                                     config_.guest);
}

util::Result<std::unique_ptr<GuestVm>>
Testbed::create_emulated_guest_raw()
{
    NESC_ASSIGN_OR_RETURN(blk::BlockIo * backing, hv_raw_backing());
    auto disk =
        std::make_unique<EmulatedDisk>(sim_, *backing, config_.costs);
    return std::make_unique<GuestVm>(sim_, std::move(disk), "emulated-vm",
                                     config_.guest);
}

util::Result<std::unique_ptr<GuestVm>>
Testbed::create_virtio_guest_file(const std::string &image_path,
                                  std::uint64_t size_blocks,
                                  bool preallocate)
{
    NESC_ASSIGN_OR_RETURN(
        fs::InodeId ino,
        create_backing_file(image_path, size_blocks, preallocate));
    auto file_io = std::make_shared<FileBlockIo>(sim_, *hv_fs_, ino,
                                                 size_blocks,
                                                 config_.costs);
    auto disk =
        std::make_unique<VirtioDisk>(sim_, *file_io, config_.costs);
    auto vm = std::make_unique<GuestVm>(sim_, std::move(disk),
                                        "virtio-file-vm", config_.guest);
    vm->hold(file_io);
    return vm;
}

util::Result<std::unique_ptr<GuestVm>>
Testbed::create_emulated_guest_file(const std::string &image_path,
                                    std::uint64_t size_blocks,
                                    bool preallocate)
{
    NESC_ASSIGN_OR_RETURN(
        fs::InodeId ino,
        create_backing_file(image_path, size_blocks, preallocate));
    auto file_io = std::make_shared<FileBlockIo>(sim_, *hv_fs_, ino,
                                                 size_blocks,
                                                 config_.costs);
    auto disk =
        std::make_unique<EmulatedDisk>(sim_, *file_io, config_.costs);
    auto vm = std::make_unique<GuestVm>(sim_, std::move(disk),
                                        "emulated-file-vm", config_.guest);
    vm->hold(file_io);
    return vm;
}

util::Result<pcie::FunctionId>
Testbed::guest_vf(const GuestVm &vm) const
{
    auto it = guest_vfs_.find(&vm);
    if (it == guest_vfs_.end())
        return util::not_found_error("VM has no NeSC VF");
    return it->second;
}

} // namespace nesc::virt
