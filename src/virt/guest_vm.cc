#include "guest_vm.h"

namespace nesc::virt {

GuestVm::GuestVm(sim::Simulator &simulator,
                 std::unique_ptr<blk::BlockIo> disk, std::string name,
                 const GuestVmConfig &config)
    : simulator_(simulator), name_(std::move(name)), config_(config),
      disk_(std::move(disk))
{
    raw_stack_ = std::make_unique<blk::OsBlockStack>(
        simulator_, *disk_, name_ + "-raw", config_.raw_stack);
    fs_stack_ = std::make_unique<blk::OsBlockStack>(
        simulator_, *disk_, name_ + "-fsstack", config_.fs_stack);
}

GuestVm::~GuestVm()
{
    if (fs_)
        (void)unmount_fs();
}

util::Status
GuestVm::format_fs()
{
    NESC_ASSIGN_OR_RETURN(fs_, fs::NestFs::format(*fs_stack_, config_.fs));
    return util::Status::ok();
}

util::Status
GuestVm::mount_fs()
{
    NESC_ASSIGN_OR_RETURN(fs_, fs::NestFs::mount(*fs_stack_));
    return util::Status::ok();
}

util::Status
GuestVm::unmount_fs()
{
    if (!fs_)
        return util::Status::ok();
    util::Status status = fs_->unmount();
    fs_.reset();
    return status;
}

} // namespace nesc::virt
