#include "hostile_driver.h"

#include <cstring>
#include <vector>

#include "util/log.h"

namespace nesc::virt {

using ctrl::CommandRecord;
using ctrl::CompletionRecord;
using ctrl::Opcode;
namespace reg = ctrl::reg;

namespace {
constexpr std::uint64_t kAlign = 64;

std::uint64_t
align_up(std::uint64_t v)
{
    return (v + kAlign - 1) & ~(kAlign - 1);
}
} // namespace

HostileDriver::HostileDriver(sim::Simulator &simulator,
                             pcie::HostMemory &host_memory,
                             pcie::BarPageRouter &bar, pcie::FunctionId fn,
                             std::uint64_t seed,
                             const HostileDriverConfig &config)
    : simulator_(simulator), host_memory_(host_memory), bar_(bar), fn_(fn),
      config_(config), rng_(seed)
{
}

util::Status
HostileDriver::init()
{
    NESC_ASSIGN_OR_RETURN(
        device_blocks_,
        bar_.read(bar_.function_base(fn_) + reg::kDeviceSize, 8));
    const std::uint64_t cmd_fp = align_up(pcie::HostRing::footprint(
        config_.ring_entries, sizeof(CommandRecord)));
    const std::uint64_t comp_fp = align_up(pcie::HostRing::footprint(
        config_.ring_entries * 2, sizeof(CompletionRecord)));
    region_size_ = cmd_fp + comp_fp + config_.buffer_bytes;
    NESC_ASSIGN_OR_RETURN(region_base_,
                          host_memory_.alloc(region_size_, 4096));
    cmd_ring_base_ = region_base_;
    comp_ring_base_ = region_base_ + cmd_fp;
    buffer_base_ = comp_ring_base_ + comp_fp;
    repair();
    return util::Status::ok();
}

void
HostileDriver::repair()
{
    // Reformat both rings in place and reprogram the bases; the base
    // write makes the device drop its attachment and re-validate from
    // scratch, exactly like a real driver re-initializing after a
    // reset.
    (void)pcie::HostRing::create(host_memory_, cmd_ring_base_,
                                 config_.ring_entries,
                                 sizeof(CommandRecord));
    (void)pcie::HostRing::create(host_memory_, comp_ring_base_,
                                 config_.ring_entries * 2,
                                 sizeof(CompletionRecord));
    reg_write(reg::kCmdRingBase, cmd_ring_base_);
    reg_write(reg::kCompRingBase, comp_ring_base_);
}

void
HostileDriver::step()
{
    ++events_;
    const std::uint32_t total =
        config_.w_well_formed + config_.w_malformed + config_.w_oob_buffer +
        config_.w_ring_corrupt + config_.w_doorbell_spam +
        config_.w_reg_probe + config_.w_ring_repoint +
        config_.w_self_repair + config_.w_qp_admin_abuse +
        config_.w_dead_doorbell;
    std::uint64_t pick = rng_.next_below(total);
    auto in_class = [&pick](std::uint32_t weight) {
        if (pick < weight)
            return true;
        pick -= weight;
        return false;
    };
    if (in_class(config_.w_well_formed))
        return submit_well_formed();
    if (in_class(config_.w_malformed))
        return submit_malformed();
    if (in_class(config_.w_oob_buffer))
        return submit_oob_buffer();
    if (in_class(config_.w_ring_corrupt))
        return corrupt_ring_header();
    if (in_class(config_.w_doorbell_spam))
        return doorbell_spam();
    if (in_class(config_.w_reg_probe))
        return reg_probe();
    if (in_class(config_.w_ring_repoint))
        return ring_repoint();
    if (in_class(config_.w_self_repair))
        return repair();
    if (in_class(config_.w_qp_admin_abuse))
        return qp_admin_abuse();
    dead_doorbell();
}

void
HostileDriver::submit_well_formed()
{
    if (device_blocks_ == 0)
        return;
    CommandRecord rec{};
    const std::uint32_t nblocks = static_cast<std::uint32_t>(
        rng_.next_in(1, 4));
    const std::uint64_t max_slots =
        config_.buffer_bytes / ctrl::kDeviceBlockSize;
    if (max_slots < nblocks)
        return;
    rec.vlba = rng_.next_below(
        device_blocks_ > nblocks ? device_blocks_ - nblocks : 1);
    rec.nblocks = nblocks;
    const double kind = rng_.next_double();
    rec.opcode = static_cast<std::uint8_t>(
        kind < 0.45 ? Opcode::kRead
                    : (kind < 0.9 ? Opcode::kWrite : Opcode::kFlush));
    rec.host_buffer =
        buffer_base_ + rng_.next_below(max_slots - nblocks + 1) *
                           ctrl::kDeviceBlockSize;
    rec.tag = next_tag_++;
    push_raw(rec);
    doorbell();
    ++well_formed_;
}

void
HostileDriver::submit_malformed()
{
    CommandRecord rec{};
    rec.vlba = rng_.next_below(device_blocks_ ? device_blocks_ : 1);
    rec.nblocks = 1;
    rec.opcode = static_cast<std::uint8_t>(Opcode::kWrite);
    rec.host_buffer = buffer_base_;
    rec.tag = next_tag_++;
    switch (rng_.next_below(6)) {
      case 0: // unknown opcode
        rec.opcode = static_cast<std::uint8_t>(rng_.next_in(4, 255));
        break;
      case 1: // zero-length command
        rec.nblocks = 0;
        break;
      case 2: // nblocks bomb (would expand to millions of block ops)
        rec.nblocks = static_cast<std::uint32_t>(
            rng_.next_in(1u << 20, 0xffffffffu));
        break;
      case 3: // vLBA range wraps the 64-bit space
        rec.vlba = ~std::uint64_t{0} - rng_.next_below(4);
        rec.nblocks = 8;
        break;
      case 4: // null data buffer
        rec.host_buffer = pcie::kNullHostAddr;
        break;
      default: // misaligned data buffer
        rec.host_buffer = buffer_base_ + 1 + rng_.next_below(3);
        break;
    }
    push_raw(rec);
    doorbell();
}

void
HostileDriver::submit_oob_buffer()
{
    // A descriptor whose fields all validate but whose buffer points
    // outside this guest's sandbox: the classic confused-deputy DMA
    // attack the windows exist to stop. Reads are the nastier case
    // (the device would *write* host memory), so emit mostly those.
    if (region_base_ <= 8192)
        return;
    CommandRecord rec{};
    rec.vlba = rng_.next_below(device_blocks_ ? device_blocks_ : 1);
    rec.nblocks = static_cast<std::uint32_t>(rng_.next_in(1, 4));
    rec.opcode = static_cast<std::uint8_t>(
        rng_.next_bool(0.75) ? Opcode::kRead : Opcode::kWrite);
    rec.host_buffer =
        (rng_.next_in(4096, region_base_ - 8192)) & ~std::uint64_t{3};
    rec.tag = next_tag_++;
    push_raw(rec);
    doorbell();
}

void
HostileDriver::corrupt_ring_header()
{
    const pcie::HostAddr base =
        rng_.next_bool(0.7) ? cmd_ring_base_ : comp_ring_base_;
    auto header = host_memory_.read_pod<pcie::HostRing::Header>(base);
    if (!header.is_ok())
        return;
    pcie::HostRing::Header h = header.value();
    switch (rng_.next_below(6)) {
      case 0: h.magic = static_cast<std::uint32_t>(rng_.next()); break;
      case 1: h.capacity = static_cast<std::uint32_t>(rng_.next()); break;
      case 2:
        h.record_size = static_cast<std::uint32_t>(rng_.next_below(512));
        break;
      case 3: // rewind the consumer counter the device owns
        h.head -= static_cast<std::uint32_t>(rng_.next_in(1, 64));
        break;
      case 4: // regress the producer counter
        h.tail -= static_cast<std::uint32_t>(rng_.next_in(1, 64));
        break;
      default: // claim a full ring's worth of phantom records
        h.tail = h.head + h.capacity + static_cast<std::uint32_t>(
                                           rng_.next_in(1, 1024));
        break;
    }
    (void)host_memory_.write_pod(base, h);
    doorbell();
    // Sometimes restore a sane ring afterwards so the stream does not
    // degenerate into permanent quarantine.
    if (rng_.next_bool(0.25))
        repair();
}

void
HostileDriver::doorbell_spam()
{
    const std::uint64_t n = rng_.next_in(1, 8);
    for (std::uint64_t i = 0; i < n; ++i)
        doorbell();
}

void
HostileDriver::reg_probe()
{
    static constexpr std::uint64_t kTargets[] = {
        reg::kExtentTreeRoot,   reg::kMissAddress,
        reg::kRewalkTree,       reg::kInterruptVector,
        reg::kWatchdogNs,       reg::kMgmtVfId,
        reg::kMgmtExtentRoot,   reg::kMgmtDeviceSize,
        reg::kMgmtCommand,      reg::kMgmtQosWeight,
        reg::kBtlbGeometry,     reg::kNodeCacheBytes,
        reg::kWalkCoalesce,     reg::kDmaWindowBase,
        reg::kDmaWindowSize,    reg::kQuarantineThreshold,
        reg::kQuarantineWindowNs,
    };
    if (rng_.next_bool(0.7)) {
        const std::uint64_t offset =
            kTargets[rng_.next_below(std::size(kTargets))];
        reg_write(offset, rng_.next());
    } else {
        // Fully random (usually unmapped) offset inside the page.
        reg_write(rng_.next_below(4096 / 8) * 8, rng_.next());
    }
}

void
HostileDriver::ring_repoint()
{
    const std::uint64_t which = rng_.next_below(4);
    const std::uint64_t reg_off =
        rng_.next_bool(0.7) ? reg::kCmdRingBase : reg::kCompRingBase;
    pcie::HostAddr target = pcie::kNullHostAddr;
    switch (which) {
      case 0: // null base
        break;
      case 1: // own data buffer: real memory, but not a ring
        target = buffer_base_;
        break;
      case 2: // unaligned mid-ring address
        target = cmd_ring_base_ + 1 + rng_.next_below(31);
        break;
      default: // foreign memory outside the sandbox
        target = (region_base_ > 8192
                      ? rng_.next_in(4096, region_base_ - 4096)
                      : 4096) &
                 ~std::uint64_t{3};
        break;
    }
    reg_write(reg_off, target);
    doorbell();
}

void
HostileDriver::qp_admin_abuse()
{
    // Garbage through the queue-pair admin block: out-of-range or
    // reserved queue ids, creates with null ring bases, deletes of
    // pair 0 or of pairs that never existed. All of it must bounce
    // with an error status in kQpStatus and leave the function
    // unfaulted — admin rejections are not protocol violations.
    const std::uint64_t qid = rng_.next_below(ctrl::kMaxQueuePairs * 2);
    reg_write(reg::kQpSelect, qid);
    switch (rng_.next_below(4)) {
      case 0: // create with whatever bases happen to be latched
        break;
      case 1: // create with explicit null rings
        reg_write(reg::kQpSqBase, pcie::kNullHostAddr);
        reg_write(reg::kQpCqBase, pcie::kNullHostAddr);
        break;
      case 2: // create pointed at the data buffer (not a ring)
        reg_write(reg::kQpSqBase, buffer_base_);
        reg_write(reg::kQpCqBase, buffer_base_);
        break;
      default: // delete (qid 0 and absent pairs must both bounce)
        reg_write(reg::kQpCommand,
                  static_cast<std::uint64_t>(ctrl::QpCommand::kDelete));
        return;
    }
    reg_write(reg::kQpCommand,
              static_cast<std::uint64_t>(ctrl::QpCommand::kCreate));
}

void
HostileDriver::dead_doorbell()
{
    // Doorbell aperture writes for pairs that were never created:
    // posted writes the device must swallow (counted, no fault) —
    // plus the occasional write past the aperture entirely.
    const std::uint64_t qid = rng_.next_in(1, ctrl::kMaxQueuePairs - 1);
    reg_write(reg::kQpDoorbell0 + 8 * qid, 1);
    if (rng_.next_bool(0.25))
        reg_write(reg::kQpDoorbell0 + 8ull * ctrl::kMaxQueuePairs +
                      8 * rng_.next_below(8),
                  rng_.next());
}

void
HostileDriver::push_raw(const CommandRecord &rec)
{
    auto ring = pcie::HostRing::attach(host_memory_, cmd_ring_base_);
    if (!ring.is_ok())
        return; // header currently trashed; the doorbell still fires
    std::vector<std::byte> buf(sizeof(rec));
    std::memcpy(buf.data(), &rec, sizeof(rec));
    (void)ring.value().push(buf);
}

void
HostileDriver::doorbell()
{
    (void)bar_.write(bar_.function_base(fn_) + reg::kDoorbell, 1, 8);
}

void
HostileDriver::reg_write(std::uint64_t offset, std::uint64_t value)
{
    (void)bar_.write(bar_.function_base(fn_) + offset, value, 8);
}

} // namespace nesc::virt
