#include "pf_driver.h"

#include "fs/extent_map.h"
#include "util/log.h"
#include "util/units.h"

#undef NESC_LOG_COMPONENT
#define NESC_LOG_COMPONENT "pf_driver"

namespace nesc::drv {

PfDriver::PfDriver(sim::Simulator &simulator, pcie::HostMemory &host_memory,
                   pcie::BarPageRouter &bar, pcie::InterruptController &irq,
                   const PfDriverConfig &config)
    : simulator_(simulator), host_memory_(host_memory), bar_(bar),
      irq_(irq), config_(config)
{
}

PfDriver::~PfDriver()
{
    irq_.clear_handler(ctrl::kFaultVector);
}

util::Status
PfDriver::init()
{
    pf_data_ = std::make_unique<FunctionDriver>(
        simulator_, host_memory_, bar_, irq_, pcie::kPhysicalFunctionId,
        config_.function);
    NESC_RETURN_IF_ERROR(pf_data_->init());
    irq_.set_handler(ctrl::kFaultVector, [this]() { handle_fault_irq(); });
    return util::Status::ok();
}

util::Status
PfDriver::reg_write(pcie::FunctionId fn, std::uint64_t offset,
                    std::uint64_t value)
{
    simulator_.advance(config_.function.mmio_write_cost);
    return bar_.write(bar_.function_base(fn) + offset, value, 8);
}

util::Result<std::uint64_t>
PfDriver::reg_read(pcie::FunctionId fn, std::uint64_t offset)
{
    simulator_.advance(config_.function.mmio_read_cost);
    return bar_.read(bar_.function_base(fn) + offset, 8);
}

util::Result<std::vector<TelemetryEntry>>
PfDriver::dump_telemetry(pcie::FunctionId fn)
{
    NESC_ASSIGN_OR_RETURN(const std::uint64_t count,
                          reg_read(pcie::kPhysicalFunctionId,
                                   ctrl::reg::kTelemetryCount));
    std::vector<TelemetryEntry> entries;
    entries.reserve(count);
    for (std::uint64_t index = 0; index < count; ++index) {
        const std::uint64_t select =
            (index << 16) | (static_cast<std::uint64_t>(fn) & 0xffff);
        NESC_RETURN_IF_ERROR(reg_write(pcie::kPhysicalFunctionId,
                                       ctrl::reg::kTelemetrySelect,
                                       select));
        TelemetryEntry entry;
        NESC_ASSIGN_OR_RETURN(entry.value,
                              reg_read(pcie::kPhysicalFunctionId,
                                       ctrl::reg::kTelemetryValue));
        if (entry.value == ~std::uint64_t{0})
            return util::not_found_error(
                "telemetry selection rejected by device");
        for (std::size_t chunk = 0; chunk < 3; ++chunk) {
            NESC_ASSIGN_OR_RETURN(
                const std::uint64_t packed,
                reg_read(pcie::kPhysicalFunctionId,
                         ctrl::reg::kTelemetryName0 + 8 * chunk));
            for (unsigned shift = 0; shift < 64; shift += 8) {
                const char ch =
                    static_cast<char>((packed >> shift) & 0xff);
                if (ch == '\0')
                    break;
                entry.name.push_back(ch);
            }
        }
        entries.push_back(std::move(entry));
    }
    return entries;
}

util::Result<pcie::FunctionId>
PfDriver::create_vf(fs::InodeId backing_file, std::uint64_t size_blocks)
{
    // Translate the filesystem's per-file mapping into the device ABI
    // (paper §IV.C: "this stage typically consists of translating the
    // filesystem's own per-file extent tree to the NeSC tree format").
    if (fs_ == nullptr)
        return util::failed_precondition_error("no filesystem attached");
    NESC_ASSIGN_OR_RETURN(auto extents, fs_->fiemap(backing_file));
    NESC_ASSIGN_OR_RETURN(
        auto image,
        extent::ExtentTreeImage::build(host_memory_, extents, config_.tree));

    const pcie::FunctionId fn = next_vf_++;
    NESC_RETURN_IF_ERROR(
        reg_write(pcie::kPhysicalFunctionId, ctrl::reg::kMgmtVfId, fn));
    NESC_RETURN_IF_ERROR(reg_write(pcie::kPhysicalFunctionId,
                                   ctrl::reg::kMgmtExtentRoot,
                                   image.root()));
    NESC_RETURN_IF_ERROR(reg_write(pcie::kPhysicalFunctionId,
                                   ctrl::reg::kMgmtDeviceSize,
                                   size_blocks));
    NESC_RETURN_IF_ERROR(reg_write(
        pcie::kPhysicalFunctionId, ctrl::reg::kMgmtCommand,
        static_cast<std::uint64_t>(ctrl::MgmtCommand::kCreateVf)));
    NESC_ASSIGN_OR_RETURN(std::uint64_t status,
                          reg_read(pcie::kPhysicalFunctionId,
                                   ctrl::reg::kMgmtStatus));
    if (status != static_cast<std::uint64_t>(ctrl::MgmtStatus::kOk)) {
        (void)image.destroy();
        return util::resource_exhausted_error("device rejected VF create");
    }
    vfs_[fn] = VfInfo{fn, backing_file, size_blocks};
    trees_.emplace(fn, std::move(image));
    tree_owner_[fn] = fn;
    return fn;
}

util::Result<pcie::FunctionId>
PfDriver::create_vf_shared(pcie::FunctionId owner_fn,
                           std::uint64_t size_blocks)
{
    auto owner_it = vfs_.find(owner_fn);
    if (owner_it == vfs_.end())
        return util::not_found_error("no such VF to share with");
    const pcie::FunctionId root_owner = tree_owner_.at(owner_fn);
    const extent::ExtentTreeImage &tree = trees_.at(root_owner);

    const pcie::FunctionId fn = next_vf_++;
    NESC_RETURN_IF_ERROR(
        reg_write(pcie::kPhysicalFunctionId, ctrl::reg::kMgmtVfId, fn));
    NESC_RETURN_IF_ERROR(reg_write(pcie::kPhysicalFunctionId,
                                   ctrl::reg::kMgmtExtentRoot,
                                   tree.root()));
    NESC_RETURN_IF_ERROR(reg_write(pcie::kPhysicalFunctionId,
                                   ctrl::reg::kMgmtDeviceSize,
                                   size_blocks));
    NESC_RETURN_IF_ERROR(reg_write(
        pcie::kPhysicalFunctionId, ctrl::reg::kMgmtCommand,
        static_cast<std::uint64_t>(ctrl::MgmtCommand::kCreateVf)));
    NESC_ASSIGN_OR_RETURN(std::uint64_t status,
                          reg_read(pcie::kPhysicalFunctionId,
                                   ctrl::reg::kMgmtStatus));
    if (status != static_cast<std::uint64_t>(ctrl::MgmtStatus::kOk))
        return util::resource_exhausted_error("device rejected VF create");
    vfs_[fn] = VfInfo{fn, owner_it->second.backing_file, size_blocks};
    tree_owner_[fn] = root_owner;
    return fn;
}

util::Status
PfDriver::set_qos_weight(pcie::FunctionId fn, std::uint32_t weight)
{
    if (!vfs_.contains(fn))
        return util::not_found_error("no such VF");
    NESC_RETURN_IF_ERROR(
        reg_write(pcie::kPhysicalFunctionId, ctrl::reg::kMgmtVfId, fn));
    NESC_RETURN_IF_ERROR(reg_write(pcie::kPhysicalFunctionId,
                                   ctrl::reg::kMgmtQosWeight, weight));
    NESC_RETURN_IF_ERROR(reg_write(
        pcie::kPhysicalFunctionId, ctrl::reg::kMgmtCommand,
        static_cast<std::uint64_t>(ctrl::MgmtCommand::kSetQosWeight)));
    NESC_ASSIGN_OR_RETURN(std::uint64_t status,
                          reg_read(pcie::kPhysicalFunctionId,
                                   ctrl::reg::kMgmtStatus));
    if (status != static_cast<std::uint64_t>(ctrl::MgmtStatus::kOk))
        return util::failed_precondition_error("device rejected QoS update");
    return util::Status::ok();
}

util::Status
PfDriver::set_qp_quota(pcie::FunctionId fn, std::uint32_t quota)
{
    if (!vfs_.contains(fn))
        return util::not_found_error("no such VF");
    NESC_RETURN_IF_ERROR(
        reg_write(pcie::kPhysicalFunctionId, ctrl::reg::kMgmtVfId, fn));
    NESC_RETURN_IF_ERROR(reg_write(pcie::kPhysicalFunctionId,
                                   ctrl::reg::kMgmtQpQuota, quota));
    NESC_RETURN_IF_ERROR(reg_write(
        pcie::kPhysicalFunctionId, ctrl::reg::kMgmtCommand,
        static_cast<std::uint64_t>(ctrl::MgmtCommand::kSetQpQuota)));
    NESC_ASSIGN_OR_RETURN(std::uint64_t status,
                          reg_read(pcie::kPhysicalFunctionId,
                                   ctrl::reg::kMgmtStatus));
    if (status != static_cast<std::uint64_t>(ctrl::MgmtStatus::kOk))
        return util::failed_precondition_error(
            "device rejected queue-pair quota update");
    return util::Status::ok();
}

util::Status
PfDriver::set_rate_limit(pcie::FunctionId fn, std::uint64_t bytes_per_sec,
                         std::uint64_t burst_bytes)
{
    if (!vfs_.contains(fn))
        return util::not_found_error("no such VF");
    NESC_RETURN_IF_ERROR(
        reg_write(pcie::kPhysicalFunctionId, ctrl::reg::kMgmtVfId, fn));
    NESC_RETURN_IF_ERROR(reg_write(pcie::kPhysicalFunctionId,
                                   ctrl::reg::kMgmtRateBytesPerSec,
                                   bytes_per_sec));
    NESC_RETURN_IF_ERROR(reg_write(pcie::kPhysicalFunctionId,
                                   ctrl::reg::kMgmtRateBurstBytes,
                                   burst_bytes));
    NESC_RETURN_IF_ERROR(reg_write(
        pcie::kPhysicalFunctionId, ctrl::reg::kMgmtCommand,
        static_cast<std::uint64_t>(ctrl::MgmtCommand::kSetRateLimit)));
    NESC_ASSIGN_OR_RETURN(std::uint64_t status,
                          reg_read(pcie::kPhysicalFunctionId,
                                   ctrl::reg::kMgmtStatus));
    if (status != static_cast<std::uint64_t>(ctrl::MgmtStatus::kOk))
        return util::failed_precondition_error(
            "device rejected rate-limit update");
    return util::Status::ok();
}

util::Status
PfDriver::set_arb_mode(ctrl::ArbMode mode)
{
    return reg_write(pcie::kPhysicalFunctionId, ctrl::reg::kArbMode,
                     static_cast<std::uint64_t>(mode));
}

util::Status
PfDriver::set_arb_quantum(std::uint32_t quantum)
{
    return reg_write(pcie::kPhysicalFunctionId, ctrl::reg::kArbQuantum,
                     quantum);
}

util::Status
PfDriver::delete_vf(pcie::FunctionId fn)
{
    auto it = vfs_.find(fn);
    if (it == vfs_.end())
        return util::not_found_error("no such VF");
    // A tree owner cannot go away while other VFs still walk its tree.
    for (const auto &[other, owner] : tree_owner_) {
        if (other != fn && owner == fn) {
            return util::failed_precondition_error(
                "VF tree is shared; delete sharers first");
        }
    }
    NESC_RETURN_IF_ERROR(
        reg_write(pcie::kPhysicalFunctionId, ctrl::reg::kMgmtVfId, fn));
    NESC_RETURN_IF_ERROR(reg_write(
        pcie::kPhysicalFunctionId, ctrl::reg::kMgmtCommand,
        static_cast<std::uint64_t>(ctrl::MgmtCommand::kDeleteVf)));
    NESC_ASSIGN_OR_RETURN(std::uint64_t status,
                          reg_read(pcie::kPhysicalFunctionId,
                                   ctrl::reg::kMgmtStatus));
    if (status != static_cast<std::uint64_t>(ctrl::MgmtStatus::kOk))
        return util::failed_precondition_error("device rejected VF delete");
    auto tree_it = trees_.find(fn);
    if (tree_it != trees_.end()) {
        NESC_RETURN_IF_ERROR(tree_it->second.destroy());
        trees_.erase(tree_it);
    }
    vfs_.erase(it);
    tree_owner_.erase(fn);
    allocation_denied_.erase(fn);
    return util::Status::ok();
}

util::Status
PfDriver::flush_btlb()
{
    NESC_RETURN_IF_ERROR(reg_write(
        pcie::kPhysicalFunctionId, ctrl::reg::kMgmtCommand,
        static_cast<std::uint64_t>(ctrl::MgmtCommand::kFlushBtlb)));
    return util::Status::ok();
}

bool
PfDriver::repl_attached()
{
    auto quorum =
        reg_read(pcie::kPhysicalFunctionId, ctrl::reg::kReplQuorum);
    return quorum.is_ok() && quorum.value() != ~std::uint64_t{0};
}

util::Status
PfDriver::set_repl_quorum(std::uint32_t quorum)
{
    if (!repl_attached())
        return util::failed_precondition_error("no replica set attached");
    return reg_write(pcie::kPhysicalFunctionId, ctrl::reg::kReplQuorum,
                     quorum);
}

util::Status
PfDriver::set_repl_read_timeout(sim::Duration timeout_ns)
{
    if (!repl_attached())
        return util::failed_precondition_error("no replica set attached");
    return reg_write(pcie::kPhysicalFunctionId,
                     ctrl::reg::kReplReadTimeoutNs,
                     static_cast<std::uint64_t>(timeout_ns));
}

util::Result<ReplBackendStatus>
PfDriver::repl_backend_status(std::uint32_t backend)
{
    NESC_RETURN_IF_ERROR(reg_write(pcie::kPhysicalFunctionId,
                                   ctrl::reg::kReplBackendSelect,
                                   backend));
    ReplBackendStatus status;
    NESC_ASSIGN_OR_RETURN(status.state,
                          reg_read(pcie::kPhysicalFunctionId,
                                   ctrl::reg::kReplBackendState));
    if (status.state == ~std::uint64_t{0})
        return util::not_found_error(
            "replication backend selection rejected by device");
    NESC_ASSIGN_OR_RETURN(status.dirty_blocks,
                          reg_read(pcie::kPhysicalFunctionId,
                                   ctrl::reg::kReplBackendDirty));
    NESC_ASSIGN_OR_RETURN(status.timeouts,
                          reg_read(pcie::kPhysicalFunctionId,
                                   ctrl::reg::kReplBackendTimeouts));
    NESC_ASSIGN_OR_RETURN(status.errors,
                          reg_read(pcie::kPhysicalFunctionId,
                                   ctrl::reg::kReplBackendErrors));
    NESC_ASSIGN_OR_RETURN(status.resync_copied,
                          reg_read(pcie::kPhysicalFunctionId,
                                   ctrl::reg::kReplResyncDone));
    return status;
}

util::Result<std::uint64_t>
PfDriver::repl_failovers()
{
    NESC_ASSIGN_OR_RETURN(const std::uint64_t failovers,
                          reg_read(pcie::kPhysicalFunctionId,
                                   ctrl::reg::kReplFailovers));
    if (failovers == ~std::uint64_t{0})
        return util::not_found_error("no replica set attached");
    return failovers;
}

util::Status
PfDriver::repl_demote(std::uint32_t backend)
{
    NESC_RETURN_IF_ERROR(reg_write(pcie::kPhysicalFunctionId,
                                   ctrl::reg::kReplBackendSelect,
                                   backend));
    NESC_RETURN_IF_ERROR(reg_write(
        pcie::kPhysicalFunctionId, ctrl::reg::kMgmtCommand,
        static_cast<std::uint64_t>(ctrl::MgmtCommand::kReplDemote)));
    NESC_ASSIGN_OR_RETURN(std::uint64_t status,
                          reg_read(pcie::kPhysicalFunctionId,
                                   ctrl::reg::kMgmtStatus));
    if (status != static_cast<std::uint64_t>(ctrl::MgmtStatus::kOk))
        return util::failed_precondition_error("device rejected demote");
    return util::Status::ok();
}

util::Status
PfDriver::repl_resync(std::uint32_t backend)
{
    NESC_RETURN_IF_ERROR(reg_write(pcie::kPhysicalFunctionId,
                                   ctrl::reg::kReplBackendSelect,
                                   backend));
    NESC_RETURN_IF_ERROR(reg_write(
        pcie::kPhysicalFunctionId, ctrl::reg::kMgmtCommand,
        static_cast<std::uint64_t>(ctrl::MgmtCommand::kReplResync)));
    NESC_ASSIGN_OR_RETURN(std::uint64_t status,
                          reg_read(pcie::kPhysicalFunctionId,
                                   ctrl::reg::kMgmtStatus));
    if (status != static_cast<std::uint64_t>(ctrl::MgmtStatus::kOk))
        return util::failed_precondition_error("device rejected resync");
    return util::Status::ok();
}

util::Result<std::uint64_t>
PfDriver::repl_wait_resync(std::uint32_t backend,
                           sim::Duration poll_interval,
                           std::uint64_t max_steps)
{
    for (std::uint64_t polls = 0; polls < max_steps; ++polls) {
        NESC_ASSIGN_OR_RETURN(const ReplBackendStatus status,
                              repl_backend_status(backend));
        if (status.state == 0)
            return polls;
        simulator_.advance(poll_interval);
    }
    return util::unavailable_error("replica resync did not converge");
}

bool
PfDriver::integrity_attached()
{
    auto ctl =
        reg_read(pcie::kPhysicalFunctionId, ctrl::reg::kIntegrityCtrl);
    return ctl.is_ok() && ctl.value() != ~std::uint64_t{0};
}

util::Status
PfDriver::set_integrity_enabled(bool enabled)
{
    if (!integrity_attached())
        return util::failed_precondition_error("no checksum sidecar attached");
    return reg_write(pcie::kPhysicalFunctionId, ctrl::reg::kIntegrityCtrl,
                     enabled ? 1 : 0);
}

util::Status
PfDriver::set_integrity_reread_limit(std::uint32_t limit)
{
    if (!integrity_attached())
        return util::failed_precondition_error("no checksum sidecar attached");
    return reg_write(pcie::kPhysicalFunctionId,
                     ctrl::reg::kIntegrityRereadLimit, limit);
}

util::Result<std::uint64_t>
PfDriver::integrity_mismatches()
{
    return reg_read(pcie::kPhysicalFunctionId,
                    ctrl::reg::kIntegrityMismatches);
}

util::Result<std::uint64_t>
PfDriver::integrity_repairs()
{
    return reg_read(pcie::kPhysicalFunctionId, ctrl::reg::kIntegrityRepairs);
}

util::Status
PfDriver::set_scrub_rate(std::uint64_t batch_blocks,
                         sim::Duration interval_ns)
{
    if (!integrity_attached())
        return util::failed_precondition_error("no checksum sidecar attached");
    NESC_RETURN_IF_ERROR(reg_write(pcie::kPhysicalFunctionId,
                                   ctrl::reg::kScrubBatch, batch_blocks));
    return reg_write(pcie::kPhysicalFunctionId, ctrl::reg::kScrubIntervalNs,
                     static_cast<std::uint64_t>(interval_ns));
}

util::Status
PfDriver::scrub_start()
{
    NESC_RETURN_IF_ERROR(reg_write(
        pcie::kPhysicalFunctionId, ctrl::reg::kMgmtCommand,
        static_cast<std::uint64_t>(ctrl::MgmtCommand::kScrubStart)));
    NESC_ASSIGN_OR_RETURN(std::uint64_t status,
                          reg_read(pcie::kPhysicalFunctionId,
                                   ctrl::reg::kMgmtStatus));
    if (status != static_cast<std::uint64_t>(ctrl::MgmtStatus::kOk))
        return util::failed_precondition_error("device rejected scrub start");
    return util::Status::ok();
}

util::Status
PfDriver::scrub_abort()
{
    NESC_RETURN_IF_ERROR(reg_write(
        pcie::kPhysicalFunctionId, ctrl::reg::kMgmtCommand,
        static_cast<std::uint64_t>(ctrl::MgmtCommand::kScrubAbort)));
    NESC_ASSIGN_OR_RETURN(std::uint64_t status,
                          reg_read(pcie::kPhysicalFunctionId,
                                   ctrl::reg::kMgmtStatus));
    if (status != static_cast<std::uint64_t>(ctrl::MgmtStatus::kOk))
        return util::failed_precondition_error("device rejected scrub abort");
    return util::Status::ok();
}

util::Result<bool>
PfDriver::scrub_running()
{
    NESC_ASSIGN_OR_RETURN(
        std::uint64_t status,
        reg_read(pcie::kPhysicalFunctionId, ctrl::reg::kScrubStatus));
    if (status == ~std::uint64_t{0})
        return util::not_found_error("no checksum sidecar attached");
    return status != 0;
}

util::Result<std::uint64_t>
PfDriver::scrub_progress()
{
    return reg_read(pcie::kPhysicalFunctionId, ctrl::reg::kScrubProgress);
}

util::Result<std::uint64_t>
PfDriver::scrub_errors()
{
    return reg_read(pcie::kPhysicalFunctionId, ctrl::reg::kScrubErrors);
}

util::Result<std::uint64_t>
PfDriver::scrub_wait(sim::Duration poll_interval, std::uint64_t max_steps)
{
    for (std::uint64_t polls = 0; polls < max_steps; ++polls) {
        NESC_ASSIGN_OR_RETURN(const bool running, scrub_running());
        if (!running)
            return polls;
        simulator_.advance(poll_interval);
    }
    return util::unavailable_error("scrub pass did not complete");
}

util::Status
PfDriver::set_obs_window(sim::Duration window_ns)
{
    return reg_write(pcie::kPhysicalFunctionId, ctrl::reg::kObsWindowNs,
                     static_cast<std::uint64_t>(window_ns));
}

util::Status
PfDriver::set_slo(pcie::FunctionId fn, std::uint64_t max_p99_ns,
                  std::uint64_t max_error_ppm)
{
    if (!vfs_.contains(fn))
        return util::not_found_error("no such VF");
    NESC_RETURN_IF_ERROR(
        reg_write(pcie::kPhysicalFunctionId, ctrl::reg::kMgmtVfId, fn));
    NESC_RETURN_IF_ERROR(reg_write(pcie::kPhysicalFunctionId,
                                   ctrl::reg::kSloMaxP99Ns, max_p99_ns));
    NESC_RETURN_IF_ERROR(reg_write(pcie::kPhysicalFunctionId,
                                   ctrl::reg::kSloMaxErrorPpm,
                                   max_error_ppm));
    NESC_RETURN_IF_ERROR(reg_write(
        pcie::kPhysicalFunctionId, ctrl::reg::kMgmtCommand,
        static_cast<std::uint64_t>(ctrl::MgmtCommand::kSetSlo)));
    NESC_ASSIGN_OR_RETURN(std::uint64_t status,
                          reg_read(pcie::kPhysicalFunctionId,
                                   ctrl::reg::kMgmtStatus));
    if (status != static_cast<std::uint64_t>(ctrl::MgmtStatus::kOk))
        return util::failed_precondition_error(
            "device rejected SLO update");
    return util::Status::ok();
}

util::Result<SloWindow>
PfDriver::slo_window(pcie::FunctionId fn, std::uint32_t stage)
{
    const std::uint64_t select =
        (static_cast<std::uint64_t>(stage) << 16) |
        (static_cast<std::uint64_t>(fn) & 0xffff);
    NESC_RETURN_IF_ERROR(reg_write(pcie::kPhysicalFunctionId,
                                   ctrl::reg::kSloSelect, select));
    SloWindow window;
    NESC_ASSIGN_OR_RETURN(window.p50,
                          reg_read(pcie::kPhysicalFunctionId,
                                   ctrl::reg::kSloP50));
    if (window.p50 == ~std::uint64_t{0})
        return util::not_found_error(
            "SLO selection rejected by device (accounting off?)");
    NESC_ASSIGN_OR_RETURN(window.p99,
                          reg_read(pcie::kPhysicalFunctionId,
                                   ctrl::reg::kSloP99));
    NESC_ASSIGN_OR_RETURN(window.p999,
                          reg_read(pcie::kPhysicalFunctionId,
                                   ctrl::reg::kSloP999));
    NESC_ASSIGN_OR_RETURN(window.ops,
                          reg_read(pcie::kPhysicalFunctionId,
                                   ctrl::reg::kSloWindowOps));
    NESC_ASSIGN_OR_RETURN(window.errors,
                          reg_read(pcie::kPhysicalFunctionId,
                                   ctrl::reg::kSloWindowErrors));
    NESC_ASSIGN_OR_RETURN(window.window_start,
                          reg_read(pcie::kPhysicalFunctionId,
                                   ctrl::reg::kSloWindowStart));
    return window;
}

util::Result<std::vector<SloBreachEntry>>
PfDriver::slo_breaches()
{
    NESC_ASSIGN_OR_RETURN(const std::uint64_t count,
                          reg_read(pcie::kPhysicalFunctionId,
                                   ctrl::reg::kSloBreachCount));
    std::vector<SloBreachEntry> entries;
    entries.reserve(count);
    for (std::uint64_t index = 0; index < count; ++index) {
        NESC_RETURN_IF_ERROR(reg_write(pcie::kPhysicalFunctionId,
                                       ctrl::reg::kSloBreachSelect,
                                       index));
        NESC_ASSIGN_OR_RETURN(const std::uint64_t info,
                              reg_read(pcie::kPhysicalFunctionId,
                                       ctrl::reg::kSloBreachInfo));
        if (info == ~std::uint64_t{0})
            return util::not_found_error(
                "breach selection rejected by device");
        SloBreachEntry entry;
        entry.fn = static_cast<std::uint16_t>(info & 0xffff);
        entry.metric = static_cast<std::uint8_t>((info >> 16) & 0xff);
        NESC_ASSIGN_OR_RETURN(entry.observed,
                              reg_read(pcie::kPhysicalFunctionId,
                                       ctrl::reg::kSloBreachObserved));
        NESC_ASSIGN_OR_RETURN(entry.threshold,
                              reg_read(pcie::kPhysicalFunctionId,
                                       ctrl::reg::kSloBreachThreshold));
        NESC_ASSIGN_OR_RETURN(entry.window_start,
                              reg_read(pcie::kPhysicalFunctionId,
                                       ctrl::reg::kSloBreachWindow));
        entries.push_back(entry);
    }
    return entries;
}

util::Status
PfDriver::clear_slo_breaches()
{
    NESC_RETURN_IF_ERROR(reg_write(
        pcie::kPhysicalFunctionId, ctrl::reg::kMgmtCommand,
        static_cast<std::uint64_t>(ctrl::MgmtCommand::kSloBreachClear)));
    NESC_ASSIGN_OR_RETURN(std::uint64_t status,
                          reg_read(pcie::kPhysicalFunctionId,
                                   ctrl::reg::kMgmtStatus));
    if (status != static_cast<std::uint64_t>(ctrl::MgmtStatus::kOk))
        return util::failed_precondition_error(
            "device rejected breach clear");
    return util::Status::ok();
}

util::Status
PfDriver::set_flight_recorder(bool enabled, std::uint64_t depth)
{
    if (depth != 0)
        NESC_RETURN_IF_ERROR(reg_write(pcie::kPhysicalFunctionId,
                                       ctrl::reg::kFlightDepth, depth));
    return reg_write(pcie::kPhysicalFunctionId, ctrl::reg::kFlightCtrl,
                     enabled ? 1 : 0);
}

util::Result<std::uint64_t>
PfDriver::postmortem_count()
{
    return reg_read(pcie::kPhysicalFunctionId,
                    ctrl::reg::kPostmortemCount);
}

util::Result<std::string>
PfDriver::dump_postmortem()
{
    static constexpr const char *kReasons[] = {
        "fault", "quarantine", "checksum_error", "replica_demotion"};
    static constexpr const char *kEventTypes[] = {"doorbell", "fetch",
                                                  "complete", "fault"};
    NESC_ASSIGN_OR_RETURN(const std::uint64_t count, postmortem_count());
    std::string out = "{\"postmortems\": [";
    char buf[192];
    for (std::uint64_t pm = 0; pm < count; ++pm) {
        NESC_RETURN_IF_ERROR(reg_write(pcie::kPhysicalFunctionId,
                                       ctrl::reg::kPostmortemSelect, pm));
        NESC_ASSIGN_OR_RETURN(const std::uint64_t info,
                              reg_read(pcie::kPhysicalFunctionId,
                                       ctrl::reg::kPostmortemInfo));
        if (info == ~std::uint64_t{0})
            return util::not_found_error(
                "postmortem selection rejected by device");
        NESC_ASSIGN_OR_RETURN(const std::uint64_t at,
                              reg_read(pcie::kPhysicalFunctionId,
                                       ctrl::reg::kPostmortemTime));
        const std::uint64_t fn = info & 0xffff;
        const std::uint64_t reason = (info >> 16) & 0xff;
        const std::uint64_t detail = (info >> 24) & 0xff;
        const std::uint64_t events = info >> 32;
        std::snprintf(buf, sizeof buf,
                      "%s{\"fn\": %llu, \"reason\": \"%s\", "
                      "\"at\": %llu, \"detail\": %llu, \"events\": [",
                      pm == 0 ? "" : ", ",
                      static_cast<unsigned long long>(fn),
                      reason < 4 ? kReasons[reason] : "unknown",
                      static_cast<unsigned long long>(at),
                      static_cast<unsigned long long>(detail));
        out += buf;
        for (std::uint64_t ev = 0; ev < events; ++ev) {
            NESC_RETURN_IF_ERROR(
                reg_write(pcie::kPhysicalFunctionId,
                          ctrl::reg::kPostmortemSelect, pm | (ev << 16)));
            NESC_ASSIGN_OR_RETURN(const std::uint64_t ev_at,
                                  reg_read(pcie::kPhysicalFunctionId,
                                           ctrl::reg::kPostmortemEventTime));
            NESC_ASSIGN_OR_RETURN(const std::uint64_t tag,
                                  reg_read(pcie::kPhysicalFunctionId,
                                           ctrl::reg::kPostmortemEventTag));
            NESC_ASSIGN_OR_RETURN(const std::uint64_t vlba,
                                  reg_read(pcie::kPhysicalFunctionId,
                                           ctrl::reg::kPostmortemEventVlba));
            NESC_ASSIGN_OR_RETURN(const std::uint64_t meta,
                                  reg_read(pcie::kPhysicalFunctionId,
                                           ctrl::reg::kPostmortemEventMeta));
            const std::uint64_t type = meta & 0xff;
            std::snprintf(buf, sizeof buf,
                          "%s{\"type\": \"%s\", \"at\": %llu, "
                          "\"tag\": %llu, \"vlba\": %llu, \"aux\": %llu}",
                          ev == 0 ? "" : ", ",
                          type < 4 ? kEventTypes[type] : "unknown",
                          static_cast<unsigned long long>(ev_at),
                          static_cast<unsigned long long>(tag),
                          static_cast<unsigned long long>(vlba),
                          static_cast<unsigned long long>(meta >> 8));
            out += buf;
        }
        out += "]}";
    }
    out += "]}";
    return out;
}

util::Status
PfDriver::clear_postmortems()
{
    NESC_RETURN_IF_ERROR(reg_write(
        pcie::kPhysicalFunctionId, ctrl::reg::kMgmtCommand,
        static_cast<std::uint64_t>(ctrl::MgmtCommand::kPostmortemClear)));
    NESC_ASSIGN_OR_RETURN(std::uint64_t status,
                          reg_read(pcie::kPhysicalFunctionId,
                                   ctrl::reg::kMgmtStatus));
    if (status != static_cast<std::uint64_t>(ctrl::MgmtStatus::kOk))
        return util::failed_precondition_error(
            "device rejected postmortem clear");
    return util::Status::ok();
}

util::Status
PfDriver::set_sampler_interval(sim::Duration interval_ns)
{
    return reg_write(pcie::kPhysicalFunctionId,
                     ctrl::reg::kSamplerIntervalNs,
                     static_cast<std::uint64_t>(interval_ns));
}

util::Result<std::size_t>
PfDriver::prune_vf_tree(pcie::FunctionId fn, std::uint64_t first_vblock,
                        std::uint64_t nblocks)
{
    auto it = trees_.find(fn);
    if (it == trees_.end())
        return util::not_found_error("no such VF");
    return it->second.prune_range(first_vblock, nblocks);
}

void
PfDriver::set_allocation_denied(pcie::FunctionId fn, bool denied)
{
    allocation_denied_[fn] = denied;
}

void
PfDriver::handle_fault_irq()
{
    simulator_.advance(config_.fault_service_cost);
    // Identify the faulting VF(s). Real hardware would provide a fault
    // status register; the scan over created VFs reads each MissSize.
    for (auto &[fn, info] : vfs_) {
        auto miss_size = reg_read(fn, ctrl::reg::kMissSize);
        if (!miss_size.is_ok() || miss_size.value() == 0)
            continue;
        util::Status serviced = service_fault(fn);
        if (!serviced.is_ok()) {
            NESC_LOG_WARN("fault service for VF %u failed: %s", fn,
                          serviced.to_string().c_str());
        }
    }
}

util::Status
PfDriver::service_fault(pcie::FunctionId fn)
{
    VfInfo &info = vfs_.at(fn);
    NESC_ASSIGN_OR_RETURN(std::uint64_t miss_addr,
                          reg_read(fn, ctrl::reg::kMissAddress));
    NESC_ASSIGN_OR_RETURN(std::uint64_t miss_size,
                          reg_read(fn, ctrl::reg::kMissSize));
    ++faults_serviced_;

    const std::uint64_t first_vblock = miss_addr / ctrl::kDeviceBlockSize;
    std::uint64_t nblocks =
        util::ceil_div(miss_size, ctrl::kDeviceBlockSize);

    NESC_ASSIGN_OR_RETURN(std::uint64_t fault_kind,
                          reg_read(fn, ctrl::reg::kFaultKind));
    if (static_cast<ctrl::FaultKind>(fault_kind) ==
        ctrl::FaultKind::kTreeCorrupt) {
        // The device hit garbage walking this VF's tree. No
        // allocation is missing; either hand the VF a clean tree and
        // rewalk, or reset the function and let its driver resubmit.
        ++tree_corrupt_serviced_;
        if (config_.media_error_policy == MediaErrorPolicy::kReset)
            return reg_write(fn, ctrl::reg::kFnReset, 1);
        NESC_RETURN_IF_ERROR(rebuild_tree(fn));
        return reg_write(fn, ctrl::reg::kRewalkTree, 1);
    }

    if (allocation_denied_[fn]) {
        // Quota exhausted: tell the device to fail the stalled writes
        // (Figure 5b's "cannot allocate" leg).
        // Modeled as a zero-valued RewalkTree write carrying failure;
        // the device exposes this via the mgmt fail path.
        NESC_RETURN_IF_ERROR(
            reg_write(pcie::kPhysicalFunctionId, ctrl::reg::kMgmtVfId, fn));
        NESC_RETURN_IF_ERROR(reg_write(
            pcie::kPhysicalFunctionId, ctrl::reg::kMgmtCommand,
            static_cast<std::uint64_t>(ctrl::MgmtCommand::kFailMiss)));
        return util::Status::ok();
    }

    // Whether this is a write miss (unallocated) or a pruned-subtree
    // fault, the same service works: ensure the range is allocated in
    // the filesystem, then regenerate the device tree from FIEMAP.
    if (fs_ == nullptr)
        return util::failed_precondition_error("no filesystem attached");
    auto already = fs_->fiemap(info.backing_file);
    bool was_allocated = false;
    if (already.is_ok()) {
        auto ext = already.value();
        was_allocated =
            fs::map_lookup(ext, first_vblock).has_value();
    }
    if (was_allocated) {
        ++prune_faults_serviced_;
    } else {
        ++write_misses_serviced_;
        if (config_.allocation_batch_blocks > nblocks)
            nblocks = config_.allocation_batch_blocks;
        NESC_RETURN_IF_ERROR(fs_->allocate_range(info.backing_file,
                                                first_vblock, nblocks,
                                                /*zero_fill=*/false));
    }
    NESC_RETURN_IF_ERROR(rebuild_tree(fn));
    NESC_RETURN_IF_ERROR(reg_write(fn, ctrl::reg::kRewalkTree, 1));
    return util::Status::ok();
}

util::Status
PfDriver::rebuild_tree(pcie::FunctionId fn)
{
    // Shared trees rebuild once, at the owner, and every sharer's
    // root register is repointed (preserving tree consistency across
    // the sharing group, paper §IV.B).
    const pcie::FunctionId owner = tree_owner_.at(fn);
    VfInfo &info = vfs_.at(owner);
    if (fs_ == nullptr)
        return util::failed_precondition_error("no filesystem attached");
    NESC_ASSIGN_OR_RETURN(auto extents, fs_->fiemap(info.backing_file));
    NESC_ASSIGN_OR_RETURN(
        auto image,
        extent::ExtentTreeImage::build(host_memory_, extents, config_.tree));
    // Repoint every sharer through the PF mgmt block: the per-function
    // ExtentTreeRoot register is PF-page-only, and the mgmt command
    // also flushes the member's stale BTLB entries.
    for (const auto &[member, member_owner] : tree_owner_) {
        if (member_owner != owner)
            continue;
        NESC_RETURN_IF_ERROR(reg_write(pcie::kPhysicalFunctionId,
                                       ctrl::reg::kMgmtVfId, member));
        NESC_RETURN_IF_ERROR(reg_write(pcie::kPhysicalFunctionId,
                                       ctrl::reg::kMgmtExtentRoot,
                                       image.root()));
        NESC_RETURN_IF_ERROR(reg_write(
            pcie::kPhysicalFunctionId, ctrl::reg::kMgmtCommand,
            static_cast<std::uint64_t>(ctrl::MgmtCommand::kSetExtentRoot)));
        NESC_ASSIGN_OR_RETURN(std::uint64_t status,
                              reg_read(pcie::kPhysicalFunctionId,
                                       ctrl::reg::kMgmtStatus));
        if (status != static_cast<std::uint64_t>(ctrl::MgmtStatus::kOk)) {
            return util::internal_error(
                "device rejected extent-root update");
        }
    }
    auto it = trees_.find(owner);
    if (it != trees_.end()) {
        NESC_RETURN_IF_ERROR(it->second.destroy());
        it->second = std::move(image);
    } else {
        trees_.emplace(owner, std::move(image));
    }
    return util::Status::ok();
}

} // namespace nesc::drv
