/**
 * @file
 * Host-side driver for one NeSC function (PF or VF).
 *
 * This is the "simple block device driver" of the paper's §VI: it
 * owns the function's command/completion rings in host memory, splits
 * block requests into page-sized commands, rings the doorbell, and
 * retires completions from the MSI handler. The same class serves as
 * the guest VF driver (direct device assignment) and as the
 * hypervisor's PF driver data path.
 *
 * An optional trampoline mode reproduces the prototype's pessimistic
 * data path: the emulated VFs were invisible to the IOMMU, so VMs had
 * to copy data to/from hypervisor-allocated bounce buffers around
 * every DMA (paper §VI). The copy is charged at CPU memcpy bandwidth.
 */
#ifndef NESC_DRIVERS_FUNCTION_DRIVER_H
#define NESC_DRIVERS_FUNCTION_DRIVER_H

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "blocklayer/block_io.h"
#include "nesc/command.h"
#include "pcie/host_memory.h"
#include "pcie/host_ring.h"
#include "pcie/interrupts.h"
#include "pcie/mmio.h"
#include "sim/simulator.h"
#include "util/flat_map.h"
#include "util/rng.h"
#include "util/status.h"

namespace nesc::drv {

/** Driver tuning and modelled CPU costs. */
struct FunctionDriverConfig {
    std::uint32_t ring_entries = 256;
    /**
     * SQ/CQ pairs to set up. Pair 0 rides the legacy ring-base and
     * doorbell registers; pairs 1..N-1 are created through the
     * reg::kQp* admin block and need a device quota >= this value
     * (PF-programmed via MgmtCommand::kSetQpQuota). Submissions
     * stripe across pairs round-robin per chunk.
     */
    std::uint32_t queue_pairs = 1;
    /** Blocks per command; drivers split requests at page size (4 KiB). */
    std::uint32_t max_chunk_blocks = 4;
    /** CPU cost to build and enqueue one command. */
    sim::Duration submit_cost = 500;
    /** CPU cost to retire one completion (IRQ handler amortized). */
    sim::Duration completion_cost = 500;
    /** Posted MMIO write cost (doorbell). */
    sim::Duration mmio_write_cost = 250;
    /** Non-posted MMIO read cost (round trip over PCIe). */
    sim::Duration mmio_read_cost = 800;
    /** Copy through hypervisor trampoline buffers (prototype mode). */
    bool trampoline = false;
    /** CPU memcpy bandwidth for trampoline copies. */
    std::uint64_t copy_bytes_per_sec = 6'000'000'000;
    /**
     * Resubmissions per request on retryable completion statuses
     * (media errors). 0 surfaces the first error to the caller.
     */
    std::uint32_t max_retries = 3;
    /** Backoff before the first retry; doubles per attempt. */
    sim::Duration retry_backoff = 10'000; // 10 us
    /**
     * Fractional jitter applied to each retry backoff: the delay is
     * scaled by a uniform draw from [1 - jitter, 1 + jitter] taken
     * from a per-function seeded stream. Without it, VFs that hit the
     * same backend fault retry in lockstep and their doorbells arrive
     * as a synchronized storm; with it, the retry wave decorrelates.
     * 0 (the default) preserves the exact legacy delays.
     */
    double retry_jitter = 0.0;
    /** Base seed for the jitter stream (XORed with the function id). */
    std::uint64_t jitter_seed = 0x6a69'7474'6572'0000ULL;
    /**
     * Watchdog on the driver side: a request outstanding longer than
     * this triggers a function-level reset and resubmission. 0 (the
     * default) disables timeout detection.
     */
    sim::Duration request_timeout = 0;
    /**
     * Function-level resets a single request may ride through before
     * the driver fails it with kAborted. 0 disables FLR recovery
     * (device aborts surface to the caller immediately).
     */
    std::uint32_t max_flr_recoveries = 2;
};

/** Driver instance bound to one function; see file comment. */
class FunctionDriver {
  public:
    using Done = std::function<void(ctrl::CompletionStatus)>;

    FunctionDriver(sim::Simulator &simulator, pcie::HostMemory &host_memory,
                   pcie::BarPageRouter &bar, pcie::InterruptController &irq,
                   pcie::FunctionId fn,
                   const FunctionDriverConfig &config = {});
    ~FunctionDriver();

    FunctionDriver(const FunctionDriver &) = delete;
    FunctionDriver &operator=(const FunctionDriver &) = delete;

    /**
     * Allocates the rings, programs the ring-base registers and
     * installs the completion interrupt handler.
     */
    util::Status init();

    /** Virtual device size in device blocks (register read). */
    util::Result<std::uint64_t> device_size_blocks();

    /**
     * Asynchronous submission: reads/writes @p nblocks device blocks
     * at @p vlba using @p buffer in host memory. @p done fires from
     * the completion interrupt handler. Requests larger than the
     * driver chunk size are split into multiple commands; @p done
     * fires once, after the last chunk completes.
     */
    util::Status submit(ctrl::Opcode op, std::uint64_t vlba,
                        std::uint32_t nblocks, pcie::HostAddr buffer,
                        Done done);

    /**
     * Synchronous helpers: allocate a DMA buffer, run the simulator
     * until the request retires, and copy data in/out. These model a
     * blocking I/O path end to end, including the trampoline copies
     * when enabled.
     */
    util::Status read_sync(std::uint64_t vlba, std::uint32_t nblocks,
                           std::span<std::byte> out);
    util::Status write_sync(std::uint64_t vlba, std::uint32_t nblocks,
                            std::span<const std::byte> in);

    pcie::FunctionId function() const { return fn_; }
    std::uint64_t submitted() const { return submitted_; }
    std::uint64_t completed() const { return completed_; }
    /** Chunk resubmissions taken after retryable completion errors. */
    std::uint64_t retries() const { return retries_; }
    /** Requests that hit the driver-side request_timeout. */
    std::uint64_t timeouts() const { return timeouts_; }
    /** Function-level resets this driver performed to recover. */
    std::uint64_t flr_recoveries() const { return flr_recoveries_; }

    /** Direct register access, charged at MMIO cost. */
    util::Result<std::uint64_t> reg_read(std::uint64_t offset);
    util::Status reg_write(std::uint64_t offset, std::uint64_t value);

  private:
    void handle_completion_irq(std::uint32_t qid);
    void ring_doorbell(std::uint32_t qid);
    util::Status push_command(std::uint32_t qid,
                              const ctrl::CommandRecord &record);
    /** Allocates host memory and creates the rings of pair @p qid. */
    util::Status setup_queue_rings(std::uint32_t qid);
    /** Admin-creates pair @p qid (>= 1) on the device (kQp* block). */
    util::Status admin_create_queue(std::uint32_t qid);
    /** (Re)issues all chunks of a request and arms its timeout. */
    util::Status issue_chunks(std::uint64_t request_id);
    /** Backoff for retry @p attempt (1-based), jittered per config. */
    sim::Duration retry_delay(std::uint32_t attempt);
    /** Scheduled backoff expiry; ignored when @p generation is stale. */
    void resubmit(std::uint64_t request_id, std::uint64_t generation);
    /** Scheduled timeout check; ignored when @p generation is stale. */
    void check_timeout(std::uint64_t request_id,
                       std::uint64_t generation);
    /** Fails @p request_id with @p status and fires its callback. */
    void fail_request(std::uint64_t request_id,
                      ctrl::CompletionStatus status);
    /**
     * Resets the function, reattaches the rings, and resubmits every
     * outstanding request (failing those over their FLR budget).
     */
    void flr_recover();

    sim::Simulator &simulator_;
    pcie::HostMemory &host_memory_;
    pcie::BarPageRouter &bar_;
    pcie::InterruptController &irq_;
    pcie::FunctionId fn_;
    FunctionDriverConfig config_;
    /** Per-function stream: two drivers never share a jitter sequence. */
    util::Rng jitter_rng_;

    /** Host-side state of one SQ/CQ pair. */
    struct QueueRings {
        pcie::HostAddr cmd_mem = pcie::kNullHostAddr;
        pcie::HostAddr comp_mem = pcie::kNullHostAddr;
        std::optional<pcie::HostRing> cmd;
        std::optional<pcie::HostRing> comp;
    };
    std::vector<QueueRings> queues_;
    /** Round-robin striping cursor for multi-queue submission. */
    std::uint32_t next_queue_ = 0;

    std::uint64_t next_tag_ = 1;
    /**
     * Multi-chunk request bookkeeping. The shape of the request (op,
     * vlba, nblocks, buffer) is kept so the driver can resubmit it
     * after a retryable error or a function-level reset; `generation`
     * invalidates backoff/timeout events scheduled for a superseded
     * submission of the same request.
     */
    struct PendingRequest {
        std::uint32_t chunks_remaining = 0;
        ctrl::CompletionStatus status = ctrl::CompletionStatus::kOk;
        Done done;
        ctrl::Opcode op = ctrl::Opcode::kRead;
        std::uint64_t vlba = 0;
        std::uint32_t nblocks = 0;
        pcie::HostAddr buffer = pcie::kNullHostAddr;
        std::uint32_t attempts = 0;       ///< retries taken so far
        std::uint32_t flr_recoveries = 0; ///< resets ridden through
        std::uint64_t generation = 0;
        sim::Time deadline = 0;
    };
    std::uint64_t next_request_ = 1;
    util::FlatMap<PendingRequest> requests_;
    util::FlatMap<std::uint64_t> tag_to_request_;

    std::uint64_t submitted_ = 0;
    std::uint64_t completed_ = 0;
    std::uint64_t retries_ = 0;
    std::uint64_t timeouts_ = 0;
    std::uint64_t flr_recoveries_ = 0;
};

/**
 * blk::BlockIo adapter over a FunctionDriver, so an OS stack or a
 * nestfs instance can mount directly on a NeSC function — this is the
 * guest's view of a directly assigned VF.
 */
class FunctionBlockIo : public blk::BlockIo {
  public:
    explicit FunctionBlockIo(FunctionDriver &driver,
                             std::uint64_t size_blocks)
        : driver_(driver), size_blocks_(size_blocks)
    {
    }

    std::uint32_t block_size() const override
    {
        return ctrl::kDeviceBlockSize;
    }
    std::uint64_t num_blocks() const override { return size_blocks_; }

    util::Status
    read_blocks(std::uint64_t blockno, std::uint32_t count,
                std::span<std::byte> out) override
    {
        return driver_.read_sync(blockno, count, out);
    }

    util::Status
    write_blocks(std::uint64_t blockno, std::uint32_t count,
                 std::span<const std::byte> in) override
    {
        return driver_.write_sync(blockno, count, in);
    }

    util::Status flush() override { return util::Status::ok(); }

  private:
    FunctionDriver &driver_;
    std::uint64_t size_blocks_;
};

} // namespace nesc::drv

#endif // NESC_DRIVERS_FUNCTION_DRIVER_H
