/**
 * @file
 * Host-side driver for one NeSC function (PF or VF).
 *
 * This is the "simple block device driver" of the paper's §VI: it
 * owns the function's command/completion rings in host memory, splits
 * block requests into page-sized commands, rings the doorbell, and
 * retires completions from the MSI handler. The same class serves as
 * the guest VF driver (direct device assignment) and as the
 * hypervisor's PF driver data path.
 *
 * An optional trampoline mode reproduces the prototype's pessimistic
 * data path: the emulated VFs were invisible to the IOMMU, so VMs had
 * to copy data to/from hypervisor-allocated bounce buffers around
 * every DMA (paper §VI). The copy is charged at CPU memcpy bandwidth.
 */
#ifndef NESC_DRIVERS_FUNCTION_DRIVER_H
#define NESC_DRIVERS_FUNCTION_DRIVER_H

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "blocklayer/block_io.h"
#include "nesc/command.h"
#include "pcie/host_memory.h"
#include "pcie/host_ring.h"
#include "pcie/interrupts.h"
#include "pcie/mmio.h"
#include "sim/simulator.h"
#include "util/status.h"

namespace nesc::drv {

/** Driver tuning and modelled CPU costs. */
struct FunctionDriverConfig {
    std::uint32_t ring_entries = 256;
    /** Blocks per command; drivers split requests at page size (4 KiB). */
    std::uint32_t max_chunk_blocks = 4;
    /** CPU cost to build and enqueue one command. */
    sim::Duration submit_cost = 500;
    /** CPU cost to retire one completion (IRQ handler amortized). */
    sim::Duration completion_cost = 500;
    /** Posted MMIO write cost (doorbell). */
    sim::Duration mmio_write_cost = 250;
    /** Non-posted MMIO read cost (round trip over PCIe). */
    sim::Duration mmio_read_cost = 800;
    /** Copy through hypervisor trampoline buffers (prototype mode). */
    bool trampoline = false;
    /** CPU memcpy bandwidth for trampoline copies. */
    std::uint64_t copy_bytes_per_sec = 6'000'000'000;
};

/** Driver instance bound to one function; see file comment. */
class FunctionDriver {
  public:
    using Done = std::function<void(ctrl::CompletionStatus)>;

    FunctionDriver(sim::Simulator &simulator, pcie::HostMemory &host_memory,
                   pcie::BarPageRouter &bar, pcie::InterruptController &irq,
                   pcie::FunctionId fn,
                   const FunctionDriverConfig &config = {});
    ~FunctionDriver();

    FunctionDriver(const FunctionDriver &) = delete;
    FunctionDriver &operator=(const FunctionDriver &) = delete;

    /**
     * Allocates the rings, programs the ring-base registers and
     * installs the completion interrupt handler.
     */
    util::Status init();

    /** Virtual device size in device blocks (register read). */
    util::Result<std::uint64_t> device_size_blocks();

    /**
     * Asynchronous submission: reads/writes @p nblocks device blocks
     * at @p vlba using @p buffer in host memory. @p done fires from
     * the completion interrupt handler. Requests larger than the
     * driver chunk size are split into multiple commands; @p done
     * fires once, after the last chunk completes.
     */
    util::Status submit(ctrl::Opcode op, std::uint64_t vlba,
                        std::uint32_t nblocks, pcie::HostAddr buffer,
                        Done done);

    /**
     * Synchronous helpers: allocate a DMA buffer, run the simulator
     * until the request retires, and copy data in/out. These model a
     * blocking I/O path end to end, including the trampoline copies
     * when enabled.
     */
    util::Status read_sync(std::uint64_t vlba, std::uint32_t nblocks,
                           std::span<std::byte> out);
    util::Status write_sync(std::uint64_t vlba, std::uint32_t nblocks,
                            std::span<const std::byte> in);

    pcie::FunctionId function() const { return fn_; }
    std::uint64_t submitted() const { return submitted_; }
    std::uint64_t completed() const { return completed_; }

    /** Direct register access, charged at MMIO cost. */
    util::Result<std::uint64_t> reg_read(std::uint64_t offset);
    util::Status reg_write(std::uint64_t offset, std::uint64_t value);

  private:
    void handle_completion_irq();
    void ring_doorbell();
    util::Status push_command(const ctrl::CommandRecord &record);

    sim::Simulator &simulator_;
    pcie::HostMemory &host_memory_;
    pcie::BarPageRouter &bar_;
    pcie::InterruptController &irq_;
    pcie::FunctionId fn_;
    FunctionDriverConfig config_;

    pcie::HostAddr cmd_ring_mem_ = pcie::kNullHostAddr;
    pcie::HostAddr comp_ring_mem_ = pcie::kNullHostAddr;
    std::optional<pcie::HostRing> cmd_ring_;
    std::optional<pcie::HostRing> comp_ring_;

    std::uint64_t next_tag_ = 1;
    /** Multi-chunk request bookkeeping: chunks left + user callback. */
    struct PendingRequest {
        std::uint32_t chunks_remaining;
        ctrl::CompletionStatus status;
        Done done;
    };
    std::uint64_t next_request_ = 1;
    std::unordered_map<std::uint64_t, PendingRequest> requests_;
    std::unordered_map<std::uint64_t, std::uint64_t> tag_to_request_;

    std::uint64_t submitted_ = 0;
    std::uint64_t completed_ = 0;
};

/**
 * blk::BlockIo adapter over a FunctionDriver, so an OS stack or a
 * nestfs instance can mount directly on a NeSC function — this is the
 * guest's view of a directly assigned VF.
 */
class FunctionBlockIo : public blk::BlockIo {
  public:
    explicit FunctionBlockIo(FunctionDriver &driver,
                             std::uint64_t size_blocks)
        : driver_(driver), size_blocks_(size_blocks)
    {
    }

    std::uint32_t block_size() const override
    {
        return ctrl::kDeviceBlockSize;
    }
    std::uint64_t num_blocks() const override { return size_blocks_; }

    util::Status
    read_blocks(std::uint64_t blockno, std::uint32_t count,
                std::span<std::byte> out) override
    {
        return driver_.read_sync(blockno, count, out);
    }

    util::Status
    write_blocks(std::uint64_t blockno, std::uint32_t count,
                 std::span<const std::byte> in) override
    {
        return driver_.write_sync(blockno, count, in);
    }

    util::Status flush() override { return util::Status::ok(); }

  private:
    FunctionDriver &driver_;
    std::uint64_t size_blocks_;
};

} // namespace nesc::drv

#endif // NESC_DRIVERS_FUNCTION_DRIVER_H
