/**
 * @file
 * Hypervisor-side PF management driver (paper §IV.C, §VI).
 *
 * The PF driver is "both a block device driver and the management
 * driver for creating and deleting VFs". It:
 *  - exports the raw physical device to the hypervisor through the PF
 *    data path (out-of-band channel, no translation);
 *  - creates a VF for a host file: queries the filesystem's extent
 *    mapping (FIEMAP), serializes it into the device's extent-tree
 *    ABI in host memory, and programs the VF through the PF mgmt
 *    registers;
 *  - services translation faults: on a write miss it asks the
 *    filesystem to allocate the missing range, rebuilds the tree, and
 *    writes RewalkTree; on a pruned-subtree fault it regenerates the
 *    mapping the same way;
 *  - can prune VF trees under memory pressure and flush the device
 *    BTLB when host-side block optimizations move data.
 */
#ifndef NESC_DRIVERS_PF_DRIVER_H
#define NESC_DRIVERS_PF_DRIVER_H

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "drivers/function_driver.h"
#include "extent/tree_image.h"
#include "fs/nestfs.h"
#include "nesc/controller.h"

namespace nesc::drv {

/**
 * How the hypervisor services a media/metadata corruption fault
 * (FaultKind::kTreeCorrupt): the device detected garbage while
 * walking a VF's extent tree (bad node magic/kind/bounds, or a
 * poisoned DMA read) and faulted the VF.
 */
enum class MediaErrorPolicy : std::uint8_t {
    /** Regenerate the tree from the filesystem and rewalk (default). */
    kRebuild = 0,
    /** Function-level-reset the VF; its driver resubmits. */
    kReset = 1,
};

/** PF driver tuning. */
struct PfDriverConfig {
    FunctionDriverConfig function;
    /** Extent-tree node fanout used when serializing VF mappings. */
    extent::TreeConfig tree;
    /** Hypervisor CPU cost to enter/exit the fault service routine. */
    sim::Duration fault_service_cost = 2'000;
    /** Allocate this many blocks per write-miss service (batching
     * amortizes faults on streaming writes; 0 means exactly the miss). */
    std::uint64_t allocation_batch_blocks = 32;
    /** Service policy for tree-corruption faults. */
    MediaErrorPolicy media_error_policy = MediaErrorPolicy::kRebuild;
};

/** Hypervisor view of one created VF. */
struct VfInfo {
    pcie::FunctionId fn = 0;
    fs::InodeId backing_file = fs::kInvalidInode;
    std::uint64_t size_blocks = 0;
};

/** One telemetry counter as read from the device directory over MMIO. */
struct TelemetryEntry {
    std::string name;
    std::uint64_t value = 0;
};

/**
 * One function's closed accounting window for one latency stage, read
 * through the PF-only observability registers (select latch + RO
 * mirrors). Latencies are nanoseconds.
 */
struct SloWindow {
    std::uint64_t p50 = 0;
    std::uint64_t p99 = 0;
    std::uint64_t p999 = 0;
    /** Ops / errored ops completed in the window (stage-independent). */
    std::uint64_t ops = 0;
    std::uint64_t errors = 0;
    /** Start timestamp of the window. */
    sim::Time window_start = 0;
};

/** One entry of the device's SLO breach directory. */
struct SloBreachEntry {
    std::uint64_t observed = 0;
    std::uint64_t threshold = 0;
    sim::Time window_start = 0;
    std::uint16_t fn = 0;
    /** Raw obs::SloMetric (0 latency p99, 1 error rate). */
    std::uint8_t metric = 0;
};

/**
 * Health snapshot of one replication backend, read through the PF-only
 * kReplBackend* register window (select latch + RO mirrors).
 */
struct ReplBackendStatus {
    /** Raw repl::BackendState (0 healthy, 1 down, 2 resyncing). */
    std::uint64_t state = 0;
    /** Blocks this backend still owes (dirty-extent log size). */
    std::uint64_t dirty_blocks = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t errors = 0;
    /** Blocks copied by background resync since attach. */
    std::uint64_t resync_copied = 0;
};

/** The PF management driver; see file comment. */
class PfDriver {
  public:
    PfDriver(sim::Simulator &simulator, pcie::HostMemory &host_memory,
             pcie::BarPageRouter &bar, pcie::InterruptController &irq,
             const PfDriverConfig &config = {});
    ~PfDriver();

    /**
     * Attaches the hypervisor filesystem holding the backing files.
     * The FS is typically mounted over this driver's own PF data
     * path, so it cannot exist at construction time; VF creation and
     * fault service require it. Must outlive the driver.
     */
    void attach_filesystem(fs::NestFs &hypervisor_fs) { fs_ = &hypervisor_fs; }

    PfDriver(const PfDriver &) = delete;
    PfDriver &operator=(const PfDriver &) = delete;

    /** Sets up the PF data path and installs the fault handler. */
    util::Status init();

    /**
     * Creates a VF exporting @p backing_file as a virtual disk of
     * @p size_blocks device blocks (may exceed the file's currently
     * allocated size — lazy allocation). Returns the VF function id.
     */
    util::Result<pcie::FunctionId> create_vf(fs::InodeId backing_file,
                                             std::uint64_t size_blocks);

    /**
     * Creates a second VF sharing @p owner_fn's extent tree — and
     * thereby its backing file (paper §IV.B: "the design also enables
     * multiple VFs to share an extent tree and thereby files"; NeSC
     * guarantees tree consistency, data synchronization is up to the
     * client VMs). The new VF exports @p size_blocks (typically the
     * owner's size).
     */
    util::Result<pcie::FunctionId>
    create_vf_shared(pcie::FunctionId owner_fn, std::uint64_t size_blocks);

    /**
     * Tears down a VF and frees its extent tree. A VF whose tree is
     * still shared by other VFs cannot be deleted until the sharers
     * are gone.
     */
    util::Status delete_vf(pcie::FunctionId fn);

    /**
     * Sets the VF's arbitration weight: the multiplexer serves that
     * many blocks per round-robin turn (QoS extension, §IV.D).
     */
    util::Status set_qos_weight(pcie::FunctionId fn, std::uint32_t weight);

    /**
     * Programs the VF's queue-pair quota (total pairs it may hold,
     * including pair 0; must be in [1, ctrl::kMaxQueuePairs]). The
     * guest driver then admin-creates pairs up to the quota.
     */
    util::Status set_qp_quota(pcie::FunctionId fn, std::uint32_t quota);

    /**
     * Programs a token-bucket rate limit on the VF's arbitration
     * grants: @p bytes_per_sec sustained (0 removes the limit) with
     * @p burst_bytes of banked burst capacity.
     */
    util::Status set_rate_limit(pcie::FunctionId fn,
                                std::uint64_t bytes_per_sec,
                                std::uint64_t burst_bytes);

    /** Selects the arbitration policy (legacy WRR vs banked DWRR). */
    util::Status set_arb_mode(ctrl::ArbMode mode);

    /** Programs the DWRR per-turn quantum (grants per weight unit). */
    util::Status set_arb_quantum(std::uint32_t quantum);

    /** Hypervisor-triggered BTLB flush (e.g. after dedup). */
    util::Status flush_btlb();

    /**
     * True when the controller has a replica set attached — probed by
     * reading kReplQuorum, which master-aborts (all-ones) otherwise.
     */
    bool repl_attached();

    /** Programs the write-ack quorum (clamped to >= 1 by the device). */
    util::Status set_repl_quorum(std::uint32_t quorum);

    /** Programs the per-backend read failover timeout. */
    util::Status set_repl_read_timeout(sim::Duration timeout_ns);

    /**
     * Reads one backend's health block: latches kReplBackendSelect,
     * then reads the RO state/dirty/timeout/error/resync mirrors.
     * NOT_FOUND on an out-of-range backend (all-ones master abort)
     * or when no replica set is attached.
     */
    util::Result<ReplBackendStatus>
    repl_backend_status(std::uint32_t backend);

    /** Total read-path failover events across all backends. */
    util::Result<std::uint64_t> repl_failovers();

    /**
     * Forces @p backend out of the read/write set (administrative
     * demotion, e.g. ahead of planned maintenance). Foreground writes
     * keep accumulating in its dirty log for a later resync.
     */
    util::Status repl_demote(std::uint32_t backend);

    /** Starts background resync of @p backend from a healthy peer. */
    util::Status repl_resync(std::uint32_t backend);

    /**
     * Drives the simulator until @p backend's resync converges (its
     * state register reads healthy again) or @p max_steps register
     * polls have elapsed. Each poll advances the simulator by
     * @p poll_interval. Returns the number of polls used.
     */
    util::Result<std::uint64_t>
    repl_wait_resync(std::uint32_t backend,
                     sim::Duration poll_interval = 100'000,
                     std::uint64_t max_steps = 100'000);

    /**
     * True when the controller has a checksum sidecar attached —
     * probed by reading kIntegrityCtrl, which master-aborts
     * (all-ones) otherwise.
     */
    bool integrity_attached();

    /** Turns read-path verification / write-path recording on or off. */
    util::Status set_integrity_enabled(bool enabled);

    /** Programs the bounded re-read count of the recovery ladder. */
    util::Status set_integrity_reread_limit(std::uint32_t limit);

    /** Checksum mismatches detected device-wide (reads + scrub). */
    util::Result<std::uint64_t> integrity_mismatches();

    /** Blocks repaired in place from a verified replica. */
    util::Result<std::uint64_t> integrity_repairs();

    /** Shapes the background scrub: blocks per batch, batch spacing. */
    util::Status set_scrub_rate(std::uint64_t batch_blocks,
                                sim::Duration interval_ns);

    /** Kicks off a full-media background scrub pass. */
    util::Status scrub_start();

    /** Stops an in-flight scrub pass. */
    util::Status scrub_abort();

    /** Scrub status registers: running flag, progress, error count. */
    util::Result<bool> scrub_running();
    util::Result<std::uint64_t> scrub_progress();
    util::Result<std::uint64_t> scrub_errors();

    /**
     * Drives the simulator until the running scrub pass completes or
     * @p max_steps register polls have elapsed, advancing the
     * simulator by @p poll_interval per poll. Returns polls used.
     */
    util::Result<std::uint64_t>
    scrub_wait(sim::Duration poll_interval = 100'000,
               std::uint64_t max_steps = 1'000'000);

    /**
     * Reads @p fn's full telemetry-counter directory through the
     * PF-only reg::kTelemetry* MMIO registers: counter count first,
     * then per index the packed name registers and the 64-bit value.
     * Self-describing — the driver carries no counter list of its own.
     * Fails with NOT_FOUND if the device rejects the selection (the
     * all-ones master-abort read), e.g. for an out-of-range function.
     */
    util::Result<std::vector<TelemetryEntry>>
    dump_telemetry(pcie::FunctionId fn);

    // --- Always-on telemetry plane (observability register block) ----

    /**
     * Sets the accounting window length: non-zero starts windowed
     * per-function latency accounting and SLO evaluation at each
     * rotation, zero stops it.
     */
    util::Status set_obs_window(sim::Duration window_ns);

    /**
     * Programs @p fn's SLO thresholds (MgmtCommand::kSetSlo): a p99
     * end-to-end latency ceiling in ns and an error-rate ceiling in
     * errored ops per million. Zeros unwatch the respective metric.
     */
    util::Status set_slo(pcie::FunctionId fn, std::uint64_t max_p99_ns,
                         std::uint64_t max_error_ppm);

    /**
     * Reads @p fn's closed window for @p stage (0 end-to-end, 1 queue
     * wait, 2 translate, 3 transfer). Fails with NOT_FOUND while
     * windowed accounting is off (the all-ones master-abort read).
     */
    util::Result<SloWindow> slo_window(pcie::FunctionId fn,
                                       std::uint32_t stage = 0);

    /** Reads the whole SLO breach directory (oldest first). */
    util::Result<std::vector<SloBreachEntry>> slo_breaches();

    /** Clears the breach directory (MgmtCommand::kSloBreachClear). */
    util::Status clear_slo_breaches();

    /**
     * Enables/disables the flight recorder. A non-zero @p depth first
     * programs the per-function ring depth; re-enable resets rings.
     */
    util::Status set_flight_recorder(bool enabled,
                                     std::uint64_t depth = 0);

    /** Postmortems currently retained in the device buffer. */
    util::Result<std::uint64_t> postmortem_count();

    /**
     * Dumps every retained postmortem as JSON by walking the PF-only
     * postmortem directory registers (select latch + RO mirrors):
     * `{"postmortems": [{"fn": .., "reason": "..", "at": ..,
     * "detail": .., "events": [{"type": "..", "at": .., "tag": ..,
     * "vlba": .., "aux": ..}, ...]}, ...]}`.
     */
    util::Result<std::string> dump_postmortem();

    /** Clears the postmortem buffer (MgmtCommand::kPostmortemClear). */
    util::Status clear_postmortems();

    /**
     * Sets the metrics time-series sampling interval: non-zero starts
     * the sampler (one immediate baseline sample), zero stops it.
     */
    util::Status set_sampler_interval(sim::Duration interval_ns);

    /**
     * Prunes the VF's resident tree for [first_vblock, +nblocks)
     * (memory pressure); the device faults on next access there.
     */
    util::Result<std::size_t> prune_vf_tree(pcie::FunctionId fn,
                                            std::uint64_t first_vblock,
                                            std::uint64_t nblocks);

    /** PF raw block data path (the paper's "Host" baseline device). */
    FunctionDriver &pf_data() { return *pf_data_; }

    const std::map<pcie::FunctionId, VfInfo> &vfs() const { return vfs_; }

    /** The resident extent-tree image of a VF (for inspection). */
    util::Result<const extent::ExtentTreeImage *>
    vf_tree(pcie::FunctionId fn) const
    {
        auto owner = tree_owner_.find(fn);
        if (owner == tree_owner_.end())
            return util::not_found_error("no such VF");
        auto it = trees_.find(owner->second);
        if (it == trees_.end())
            return util::not_found_error("no such VF");
        return const_cast<const extent::ExtentTreeImage *>(&it->second);
    }
    std::uint64_t faults_serviced() const { return faults_serviced_; }
    std::uint64_t write_misses_serviced() const
    {
        return write_misses_serviced_;
    }
    std::uint64_t prune_faults_serviced() const
    {
        return prune_faults_serviced_;
    }
    std::uint64_t tree_corrupt_serviced() const
    {
        return tree_corrupt_serviced_;
    }

    /**
     * Deny further allocations for @p fn: the next write-miss fault is
     * answered with a write failure instead of an allocation (quota
     * exhaustion path of Figure 5b).
     */
    void set_allocation_denied(pcie::FunctionId fn, bool denied);

  private:
    void handle_fault_irq();
    util::Status service_fault(pcie::FunctionId fn);
    util::Status rebuild_tree(pcie::FunctionId fn);
    util::Status reg_write(pcie::FunctionId fn, std::uint64_t offset,
                           std::uint64_t value);
    util::Result<std::uint64_t> reg_read(pcie::FunctionId fn,
                                         std::uint64_t offset);

    sim::Simulator &simulator_;
    pcie::HostMemory &host_memory_;
    pcie::BarPageRouter &bar_;
    pcie::InterruptController &irq_;
    fs::NestFs *fs_ = nullptr;
    PfDriverConfig config_;

    std::unique_ptr<FunctionDriver> pf_data_;
    std::map<pcie::FunctionId, VfInfo> vfs_;
    std::map<pcie::FunctionId, extent::ExtentTreeImage> trees_;
    /** fn -> fn owning the (possibly shared) tree; owners map to self. */
    std::map<pcie::FunctionId, pcie::FunctionId> tree_owner_;
    std::map<pcie::FunctionId, bool> allocation_denied_;
    pcie::FunctionId next_vf_ = 1;
    std::uint64_t faults_serviced_ = 0;
    std::uint64_t write_misses_serviced_ = 0;
    std::uint64_t prune_faults_serviced_ = 0;
    std::uint64_t tree_corrupt_serviced_ = 0;
};

} // namespace nesc::drv

#endif // NESC_DRIVERS_PF_DRIVER_H
