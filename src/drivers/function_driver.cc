#include "function_driver.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "util/log.h"
#include "util/units.h"

#undef NESC_LOG_COMPONENT
#define NESC_LOG_COMPONENT "fn_driver"

namespace nesc::drv {

using ctrl::CommandRecord;
using ctrl::CompletionRecord;
using ctrl::CompletionStatus;
using ctrl::Opcode;

FunctionDriver::FunctionDriver(sim::Simulator &simulator,
                               pcie::HostMemory &host_memory,
                               pcie::BarPageRouter &bar,
                               pcie::InterruptController &irq,
                               pcie::FunctionId fn,
                               const FunctionDriverConfig &config)
    : simulator_(simulator), host_memory_(host_memory), bar_(bar),
      irq_(irq), fn_(fn), config_(config),
      jitter_rng_(config.jitter_seed ^
                  (static_cast<std::uint64_t>(fn) * 0x9e3779b97f4a7c15ULL))
{
}

FunctionDriver::~FunctionDriver()
{
    for (std::uint32_t qid = 0; qid < queues_.size(); ++qid) {
        irq_.clear_handler(ctrl::queue_vector(fn_, qid));
        if (queues_[qid].cmd_mem != pcie::kNullHostAddr)
            (void)host_memory_.free(queues_[qid].cmd_mem);
        if (queues_[qid].comp_mem != pcie::kNullHostAddr)
            (void)host_memory_.free(queues_[qid].comp_mem);
    }
    if (queues_.empty())
        irq_.clear_handler(ctrl::completion_vector(fn_));
}

util::Status
FunctionDriver::setup_queue_rings(std::uint32_t qid)
{
    QueueRings &q = queues_[qid];
    const std::uint64_t cmd_bytes = pcie::HostRing::footprint(
        config_.ring_entries, sizeof(CommandRecord));
    const std::uint64_t comp_bytes = pcie::HostRing::footprint(
        config_.ring_entries, sizeof(CompletionRecord));
    NESC_ASSIGN_OR_RETURN(q.cmd_mem, host_memory_.alloc(cmd_bytes, 64));
    NESC_ASSIGN_OR_RETURN(q.comp_mem, host_memory_.alloc(comp_bytes, 64));
    NESC_ASSIGN_OR_RETURN(
        auto cmd_ring,
        pcie::HostRing::create(host_memory_, q.cmd_mem,
                               config_.ring_entries, sizeof(CommandRecord)));
    q.cmd = cmd_ring;
    NESC_ASSIGN_OR_RETURN(
        auto comp_ring,
        pcie::HostRing::create(host_memory_, q.comp_mem,
                               config_.ring_entries,
                               sizeof(CompletionRecord)));
    q.comp = comp_ring;
    return util::Status::ok();
}

util::Status
FunctionDriver::admin_create_queue(std::uint32_t qid)
{
    const QueueRings &q = queues_[qid];
    NESC_RETURN_IF_ERROR(reg_write(ctrl::reg::kQpSelect, qid));
    NESC_RETURN_IF_ERROR(reg_write(ctrl::reg::kQpSqBase, q.cmd_mem));
    NESC_RETURN_IF_ERROR(reg_write(ctrl::reg::kQpCqBase, q.comp_mem));
    NESC_RETURN_IF_ERROR(reg_write(
        ctrl::reg::kQpCommand,
        static_cast<std::uint64_t>(ctrl::QpCommand::kCreate)));
    NESC_ASSIGN_OR_RETURN(const std::uint64_t status,
                          reg_read(ctrl::reg::kQpStatus));
    if (status != static_cast<std::uint64_t>(ctrl::MgmtStatus::kOk)) {
        return util::failed_precondition_error(
            "device rejected queue-pair create (check the PF quota)");
    }
    return util::Status::ok();
}

util::Status
FunctionDriver::init()
{
    const std::uint32_t npairs = std::max<std::uint32_t>(
        1, std::min(config_.queue_pairs, ctrl::kMaxQueuePairs));
    queues_.resize(npairs);

    // Pair 0 rides the legacy registers so a single-queue driver is
    // indistinguishable from the pre-multi-queue one.
    NESC_RETURN_IF_ERROR(setup_queue_rings(0));
    NESC_RETURN_IF_ERROR(
        reg_write(ctrl::reg::kCmdRingBase, queues_[0].cmd_mem));
    NESC_RETURN_IF_ERROR(
        reg_write(ctrl::reg::kCompRingBase, queues_[0].comp_mem));
    irq_.set_handler(ctrl::completion_vector(fn_),
                     [this]() { handle_completion_irq(0); });

    // Additional pairs go through the admin block.
    for (std::uint32_t qid = 1; qid < npairs; ++qid) {
        NESC_RETURN_IF_ERROR(setup_queue_rings(qid));
        NESC_RETURN_IF_ERROR(admin_create_queue(qid));
        irq_.set_handler(ctrl::queue_vector(fn_, qid),
                         [this, qid]() { handle_completion_irq(qid); });
    }
    return util::Status::ok();
}

util::Result<std::uint64_t>
FunctionDriver::device_size_blocks()
{
    return reg_read(ctrl::reg::kDeviceSize);
}

util::Result<std::uint64_t>
FunctionDriver::reg_read(std::uint64_t offset)
{
    simulator_.advance(config_.mmio_read_cost);
    return bar_.read(bar_.function_base(fn_) + offset, 8);
}

util::Status
FunctionDriver::reg_write(std::uint64_t offset, std::uint64_t value)
{
    simulator_.advance(config_.mmio_write_cost);
    return bar_.write(bar_.function_base(fn_) + offset, value, 8);
}

util::Status
FunctionDriver::push_command(std::uint32_t qid, const CommandRecord &record)
{
    std::array<std::byte, sizeof(record)> buf;
    std::memcpy(buf.data(), &record, sizeof(record));
    return queues_[qid].cmd->push(buf);
}

void
FunctionDriver::ring_doorbell(std::uint32_t qid)
{
    if (qid == 0) {
        (void)reg_write(ctrl::reg::kDoorbell, 1); // legacy alias
        return;
    }
    (void)reg_write(ctrl::reg::kQpDoorbell0 + 8ull * qid, 1);
}

util::Status
FunctionDriver::submit(Opcode op, std::uint64_t vlba, std::uint32_t nblocks,
                       pcie::HostAddr buffer, Done done)
{
    if (queues_.empty() || !queues_[0].cmd)
        return util::failed_precondition_error("driver not initialized");
    if (nblocks == 0)
        return util::invalid_argument_error("zero-length request");

    const std::uint64_t request_id = next_request_++;
    PendingRequest req;
    req.done = std::move(done);
    req.op = op;
    req.vlba = vlba;
    req.nblocks = nblocks;
    req.buffer = buffer;
    requests_[request_id] = std::move(req);
    util::Status issued = issue_chunks(request_id);
    if (!issued.is_ok())
        requests_.erase(request_id);
    return issued;
}

util::Status
FunctionDriver::issue_chunks(std::uint64_t request_id)
{
    // Copy the request shape up front: the ring-full wait below steps
    // the simulator, which can re-enter the completion handler and
    // rehash/mutate requests_.
    const PendingRequest &entry = requests_.at(request_id);
    const Opcode op = entry.op;
    const std::uint64_t vlba = entry.vlba;
    const std::uint32_t nblocks = entry.nblocks;
    const pcie::HostAddr buffer = entry.buffer;
    const std::uint32_t chunks =
        static_cast<std::uint32_t>(util::ceil_div(nblocks,
                                                  config_.max_chunk_blocks));
    {
        PendingRequest &req = requests_.at(request_id);
        req.chunks_remaining = chunks;
        req.status = CompletionStatus::kOk;
    }

    // Chunks stripe round-robin across the configured queue pairs;
    // with a single pair this degenerates to the legacy path exactly.
    std::vector<bool> dirty(queues_.size(), false);
    std::uint32_t submitted_blocks = 0;
    while (submitted_blocks < nblocks) {
        const std::uint32_t chunk = std::min<std::uint32_t>(
            config_.max_chunk_blocks, nblocks - submitted_blocks);
        const std::uint32_t qid = next_queue_;
        next_queue_ = (next_queue_ + 1) %
                      static_cast<std::uint32_t>(queues_.size());
        simulator_.advance(config_.submit_cost);
        CommandRecord rec{};
        rec.vlba = vlba + submitted_blocks;
        rec.nblocks = chunk;
        rec.opcode = static_cast<std::uint8_t>(op);
        rec.host_buffer =
            buffer + static_cast<pcie::HostAddr>(submitted_blocks) *
                         ctrl::kDeviceBlockSize;
        rec.tag = next_tag_++;
        tag_to_request_[rec.tag] = request_id;
        util::Status pushed = push_command(qid, rec);
        if (!pushed.is_ok()) {
            // Ring full: kick the device and retry after it drains.
            ring_doorbell(qid);
            dirty[qid] = false;
            while (!pushed.is_ok() &&
                   pushed.code() == util::ErrorCode::kUnavailable) {
                if (!simulator_.step()) {
                    return util::internal_error(
                        "command ring wedged: device made no progress");
                }
                pushed = push_command(qid, rec);
            }
            NESC_RETURN_IF_ERROR(pushed);
        }
        dirty[qid] = true;
        submitted_blocks += chunk;
        ++submitted_;
    }
    for (std::uint32_t qid = 0; qid < queues_.size(); ++qid)
        if (dirty[qid])
            ring_doorbell(qid);

    auto it = requests_.find(request_id);
    if (it != requests_.end() && config_.request_timeout != 0) {
        PendingRequest &req = it->second;
        req.deadline = simulator_.now() + config_.request_timeout;
        const std::uint64_t gen = req.generation;
        simulator_.schedule_at(req.deadline, [this, request_id, gen]() {
            check_timeout(request_id, gen);
        });
    }
    return util::Status::ok();
}

void
FunctionDriver::handle_completion_irq(std::uint32_t qid)
{
    if (qid >= queues_.size() || !queues_[qid].comp)
        return;
    std::array<std::byte, sizeof(CompletionRecord)> buf;
    bool need_flr = false;
    for (;;) {
        auto popped = queues_[qid].comp->pop(buf);
        if (!popped.is_ok() || !popped.value())
            break;
        simulator_.advance(config_.completion_cost);
        CompletionRecord rec;
        std::memcpy(&rec, buf.data(), sizeof(rec));
        auto tag_it = tag_to_request_.find(rec.tag);
        if (tag_it == tag_to_request_.end()) {
            NESC_LOG_WARN("fn %u: completion for unknown tag %llu", fn_,
                          static_cast<unsigned long long>(rec.tag));
            continue;
        }
        const std::uint64_t request_id = tag_it->second;
        tag_to_request_.erase(tag_it);
        auto req_it = requests_.find(request_id);
        if (req_it == requests_.end())
            continue;
        if (rec.status != static_cast<std::uint32_t>(CompletionStatus::kOk))
            req_it->second.status =
                static_cast<CompletionStatus>(rec.status);
        if (--req_it->second.chunks_remaining != 0)
            continue;

        PendingRequest &req = req_it->second;
        const CompletionStatus status = req.status;
        if (status == CompletionStatus::kAborted &&
            config_.max_flr_recoveries != 0) {
            // The device tore the command down (watchdog). Recover
            // with a function-level reset — but only after the pop
            // loop, since the reset reattaches this very ring.
            need_flr = true;
            continue;
        }
        if (ctrl::completion_status_retryable(status) &&
            status != CompletionStatus::kAborted &&
            req.attempts < config_.max_retries) {
            ++req.attempts;
            ++retries_;
            const std::uint64_t gen = ++req.generation;
            simulator_.schedule_in(retry_delay(req.attempts),
                                   [this, request_id, gen]() {
                                       resubmit(request_id, gen);
                                   });
            continue;
        }
        Done done = std::move(req.done);
        requests_.erase(req_it);
        ++completed_;
        if (done)
            done(status);
    }
    if (need_flr)
        flr_recover();
}

sim::Duration
FunctionDriver::retry_delay(std::uint32_t attempt)
{
    const sim::Duration base = config_.retry_backoff << (attempt - 1);
    if (config_.retry_jitter <= 0.0)
        return base;
    // Uniform in [1 - j, 1 + j]; clamp so pathological j keeps the
    // delay positive.
    const double jitter = std::min(config_.retry_jitter, 0.99);
    const double scale =
        1.0 + jitter * (2.0 * jitter_rng_.next_double() - 1.0);
    const double scaled = static_cast<double>(base) * scale;
    return scaled < 1.0 ? 1 : static_cast<sim::Duration>(scaled);
}

void
FunctionDriver::resubmit(std::uint64_t request_id, std::uint64_t generation)
{
    auto it = requests_.find(request_id);
    if (it == requests_.end() || it->second.generation != generation)
        return; // superseded by a newer submission or already done
    util::Status issued = issue_chunks(request_id);
    if (!issued.is_ok())
        fail_request(request_id, CompletionStatus::kInternalError);
}

void
FunctionDriver::check_timeout(std::uint64_t request_id,
                              std::uint64_t generation)
{
    auto it = requests_.find(request_id);
    if (it == requests_.end() || it->second.generation != generation)
        return; // completed or resubmitted since the timer was armed
    if (simulator_.now() < it->second.deadline)
        return;
    ++timeouts_;
    // Always reset: even when the request is out of FLR budget the
    // function must be unwedged, or every later request hangs too.
    flr_recover();
}

void
FunctionDriver::fail_request(std::uint64_t request_id,
                             CompletionStatus status)
{
    auto it = requests_.find(request_id);
    if (it == requests_.end())
        return;
    Done done = std::move(it->second.done);
    requests_.erase(it);
    ++completed_;
    if (done)
        done(status);
}

void
FunctionDriver::flr_recover()
{
    ++flr_recoveries_;
    (void)reg_write(ctrl::reg::kFnReset, 1);
    // The reset dropped the device-side ring attachments, cleared the
    // ring-base registers, and destroyed every extra queue pair;
    // recreate the rings over the same host memory, reprogram pair 0
    // through the legacy registers, and admin-create the rest (the
    // PF-owned quota survives the reset).
    std::vector<std::uint64_t> ids;
    ids.reserve(requests_.size());
    for (const auto &[id, req] : requests_)
        ids.push_back(id);
    std::sort(ids.begin(), ids.end());
    bool rings_ok = true;
    for (std::uint32_t qid = 0; qid < queues_.size() && rings_ok; ++qid) {
        QueueRings &q = queues_[qid];
        auto cmd = pcie::HostRing::create(host_memory_, q.cmd_mem,
                                          config_.ring_entries,
                                          sizeof(CommandRecord));
        auto comp = pcie::HostRing::create(host_memory_, q.comp_mem,
                                           config_.ring_entries,
                                           sizeof(CompletionRecord));
        if (!cmd.is_ok() || !comp.is_ok()) {
            rings_ok = false;
            break;
        }
        q.cmd = std::move(cmd).value();
        q.comp = std::move(comp).value();
        if (qid == 0) {
            (void)reg_write(ctrl::reg::kCmdRingBase, q.cmd_mem);
            (void)reg_write(ctrl::reg::kCompRingBase, q.comp_mem);
        } else {
            rings_ok = admin_create_queue(qid).is_ok();
        }
    }
    if (!rings_ok) {
        for (std::uint64_t id : ids)
            fail_request(id, CompletionStatus::kInternalError);
        return;
    }
    // Every outstanding tag died with the reset.
    tag_to_request_.clear();
    // Resubmit all outstanding requests (the reset aborted them on
    // the device whether or not they had completed kAborted yet);
    // requests over their FLR budget fail to the caller instead.
    for (std::uint64_t id : ids) {
        auto it = requests_.find(id);
        if (it == requests_.end())
            continue;
        PendingRequest &req = it->second;
        ++req.generation;
        if (++req.flr_recoveries > config_.max_flr_recoveries) {
            fail_request(id, CompletionStatus::kAborted);
            continue;
        }
        util::Status issued = issue_chunks(id);
        if (!issued.is_ok())
            fail_request(id, CompletionStatus::kInternalError);
    }
}

namespace {
/**
 * Maps a final completion status onto the util::Status error classes
 * the sync helpers surface. The mapping must preserve retryability:
 * kUnavailable is the conventional "transient, retry may succeed"
 * class, so only statuses that completion_status_retryable() admits
 * may use it — a kOutOfRange or kMalformed completion folded into
 * kUnavailable would send callers into a retry loop against a
 * deterministic rejection.
 */
util::Status
completion_to_status(CompletionStatus status)
{
    const std::string detail =
        "device completion status " +
        std::to_string(static_cast<std::uint32_t>(status));
    switch (status) {
      case CompletionStatus::kOk:
        return util::Status::ok();
      case CompletionStatus::kOutOfRange:
        return util::out_of_range_error(detail);
      case CompletionStatus::kWriteFailed:
        return util::resource_exhausted_error(detail);
      case CompletionStatus::kInternalError:
        return util::internal_error(detail);
      case CompletionStatus::kMalformed:
        return util::invalid_argument_error(detail);
      case CompletionStatus::kDmaFault:
        return util::permission_denied_error(detail);
      case CompletionStatus::kReadMediaError:
      case CompletionStatus::kWriteMediaError:
      case CompletionStatus::kChecksumError:
      case CompletionStatus::kAborted:
        return util::unavailable_error(detail);
    }
    return util::internal_error(detail);
}
} // namespace

util::Status
FunctionDriver::read_sync(std::uint64_t vlba, std::uint32_t nblocks,
                          std::span<std::byte> out)
{
    const std::uint64_t bytes =
        static_cast<std::uint64_t>(nblocks) * ctrl::kDeviceBlockSize;
    if (out.size() != bytes)
        return util::invalid_argument_error("read buffer size mismatch");
    NESC_ASSIGN_OR_RETURN(pcie::HostAddr buffer,
                          host_memory_.alloc(bytes, 64));

    bool finished = false;
    CompletionStatus status = CompletionStatus::kOk;
    util::Status submitted = submit(Opcode::kRead, vlba, nblocks, buffer,
                                    [&](CompletionStatus s) {
                                        finished = true;
                                        status = s;
                                    });
    if (!submitted.is_ok()) {
        (void)host_memory_.free(buffer);
        return submitted;
    }
    while (!finished) {
        if (!simulator_.step()) {
            (void)host_memory_.free(buffer);
            return util::internal_error("device hung: no completion");
        }
    }
    if (status != CompletionStatus::kOk) {
        (void)host_memory_.free(buffer);
        return completion_to_status(status);
    }
    // Copy out of the DMA buffer; with trampoline buffers this is the
    // prototype's mandatory bounce copy, charged at memcpy bandwidth.
    util::Status read_back = host_memory_.read(buffer, out);
    if (config_.trampoline) {
        simulator_.advance(
            util::transfer_time_ns(bytes, config_.copy_bytes_per_sec));
    }
    (void)host_memory_.free(buffer);
    return read_back;
}

util::Status
FunctionDriver::write_sync(std::uint64_t vlba, std::uint32_t nblocks,
                           std::span<const std::byte> in)
{
    const std::uint64_t bytes =
        static_cast<std::uint64_t>(nblocks) * ctrl::kDeviceBlockSize;
    if (in.size() != bytes)
        return util::invalid_argument_error("write buffer size mismatch");
    NESC_ASSIGN_OR_RETURN(pcie::HostAddr buffer,
                          host_memory_.alloc(bytes, 64));
    NESC_RETURN_IF_ERROR(host_memory_.write(buffer, in));
    if (config_.trampoline) {
        simulator_.advance(
            util::transfer_time_ns(bytes, config_.copy_bytes_per_sec));
    }

    bool finished = false;
    CompletionStatus status = CompletionStatus::kOk;
    util::Status submitted = submit(Opcode::kWrite, vlba, nblocks, buffer,
                                    [&](CompletionStatus s) {
                                        finished = true;
                                        status = s;
                                    });
    if (!submitted.is_ok()) {
        (void)host_memory_.free(buffer);
        return submitted;
    }
    while (!finished) {
        if (!simulator_.step()) {
            (void)host_memory_.free(buffer);
            return util::internal_error("device hung: no completion");
        }
    }
    (void)host_memory_.free(buffer);
    if (status != CompletionStatus::kOk)
        return completion_to_status(status);
    return util::Status::ok();
}

} // namespace nesc::drv
