#include "function_driver.h"

#include <cstring>
#include <vector>

#include "util/log.h"
#include "util/units.h"

namespace nesc::drv {

using ctrl::CommandRecord;
using ctrl::CompletionRecord;
using ctrl::CompletionStatus;
using ctrl::Opcode;

FunctionDriver::FunctionDriver(sim::Simulator &simulator,
                               pcie::HostMemory &host_memory,
                               pcie::BarPageRouter &bar,
                               pcie::InterruptController &irq,
                               pcie::FunctionId fn,
                               const FunctionDriverConfig &config)
    : simulator_(simulator), host_memory_(host_memory), bar_(bar),
      irq_(irq), fn_(fn), config_(config)
{
}

FunctionDriver::~FunctionDriver()
{
    irq_.clear_handler(ctrl::completion_vector(fn_));
    if (cmd_ring_mem_ != pcie::kNullHostAddr)
        (void)host_memory_.free(cmd_ring_mem_);
    if (comp_ring_mem_ != pcie::kNullHostAddr)
        (void)host_memory_.free(comp_ring_mem_);
}

util::Status
FunctionDriver::init()
{
    const std::uint64_t cmd_bytes = pcie::HostRing::footprint(
        config_.ring_entries, sizeof(CommandRecord));
    const std::uint64_t comp_bytes = pcie::HostRing::footprint(
        config_.ring_entries, sizeof(CompletionRecord));
    NESC_ASSIGN_OR_RETURN(cmd_ring_mem_, host_memory_.alloc(cmd_bytes, 64));
    NESC_ASSIGN_OR_RETURN(comp_ring_mem_,
                          host_memory_.alloc(comp_bytes, 64));
    NESC_ASSIGN_OR_RETURN(
        auto cmd_ring,
        pcie::HostRing::create(host_memory_, cmd_ring_mem_,
                               config_.ring_entries, sizeof(CommandRecord)));
    cmd_ring_ = cmd_ring;
    NESC_ASSIGN_OR_RETURN(
        auto comp_ring,
        pcie::HostRing::create(host_memory_, comp_ring_mem_,
                               config_.ring_entries,
                               sizeof(CompletionRecord)));
    comp_ring_ = comp_ring;

    NESC_RETURN_IF_ERROR(reg_write(ctrl::reg::kCmdRingBase, cmd_ring_mem_));
    NESC_RETURN_IF_ERROR(
        reg_write(ctrl::reg::kCompRingBase, comp_ring_mem_));
    irq_.set_handler(ctrl::completion_vector(fn_),
                     [this]() { handle_completion_irq(); });
    return util::Status::ok();
}

util::Result<std::uint64_t>
FunctionDriver::device_size_blocks()
{
    return reg_read(ctrl::reg::kDeviceSize);
}

util::Result<std::uint64_t>
FunctionDriver::reg_read(std::uint64_t offset)
{
    simulator_.advance(config_.mmio_read_cost);
    return bar_.read(bar_.function_base(fn_) + offset, 8);
}

util::Status
FunctionDriver::reg_write(std::uint64_t offset, std::uint64_t value)
{
    simulator_.advance(config_.mmio_write_cost);
    return bar_.write(bar_.function_base(fn_) + offset, value, 8);
}

util::Status
FunctionDriver::push_command(const CommandRecord &record)
{
    std::vector<std::byte> buf(sizeof(record));
    std::memcpy(buf.data(), &record, sizeof(record));
    return cmd_ring_->push(buf);
}

void
FunctionDriver::ring_doorbell()
{
    (void)reg_write(ctrl::reg::kDoorbell, 1);
}

util::Status
FunctionDriver::submit(Opcode op, std::uint64_t vlba, std::uint32_t nblocks,
                       pcie::HostAddr buffer, Done done)
{
    if (!cmd_ring_)
        return util::failed_precondition_error("driver not initialized");
    if (nblocks == 0)
        return util::invalid_argument_error("zero-length request");

    const std::uint64_t request_id = next_request_++;
    const std::uint32_t chunks =
        static_cast<std::uint32_t>(util::ceil_div(nblocks,
                                                  config_.max_chunk_blocks));
    requests_[request_id] =
        PendingRequest{chunks, CompletionStatus::kOk, std::move(done)};

    std::uint32_t submitted_blocks = 0;
    while (submitted_blocks < nblocks) {
        const std::uint32_t chunk = std::min<std::uint32_t>(
            config_.max_chunk_blocks, nblocks - submitted_blocks);
        simulator_.advance(config_.submit_cost);
        CommandRecord rec{};
        rec.vlba = vlba + submitted_blocks;
        rec.nblocks = chunk;
        rec.opcode = static_cast<std::uint8_t>(op);
        rec.host_buffer =
            buffer + static_cast<pcie::HostAddr>(submitted_blocks) *
                         ctrl::kDeviceBlockSize;
        rec.tag = next_tag_++;
        tag_to_request_[rec.tag] = request_id;
        util::Status pushed = push_command(rec);
        if (!pushed.is_ok()) {
            // Ring full: kick the device and retry after it drains.
            ring_doorbell();
            while (!pushed.is_ok() &&
                   pushed.code() == util::ErrorCode::kUnavailable) {
                if (!simulator_.step()) {
                    return util::internal_error(
                        "command ring wedged: device made no progress");
                }
                pushed = push_command(rec);
            }
            NESC_RETURN_IF_ERROR(pushed);
        }
        submitted_blocks += chunk;
        ++submitted_;
    }
    ring_doorbell();
    return util::Status::ok();
}

void
FunctionDriver::handle_completion_irq()
{
    if (!comp_ring_)
        return;
    std::vector<std::byte> buf(sizeof(CompletionRecord));
    for (;;) {
        auto popped = comp_ring_->pop(buf);
        if (!popped.is_ok() || !popped.value())
            break;
        simulator_.advance(config_.completion_cost);
        CompletionRecord rec;
        std::memcpy(&rec, buf.data(), sizeof(rec));
        auto tag_it = tag_to_request_.find(rec.tag);
        if (tag_it == tag_to_request_.end()) {
            NESC_LOG_WARN("fn %u: completion for unknown tag %llu", fn_,
                          static_cast<unsigned long long>(rec.tag));
            continue;
        }
        const std::uint64_t request_id = tag_it->second;
        tag_to_request_.erase(tag_it);
        auto req_it = requests_.find(request_id);
        if (req_it == requests_.end())
            continue;
        if (rec.status != static_cast<std::uint32_t>(CompletionStatus::kOk))
            req_it->second.status =
                static_cast<CompletionStatus>(rec.status);
        if (--req_it->second.chunks_remaining == 0) {
            Done done = std::move(req_it->second.done);
            const CompletionStatus status = req_it->second.status;
            requests_.erase(req_it);
            ++completed_;
            if (done)
                done(status);
        }
    }
}

util::Status
FunctionDriver::read_sync(std::uint64_t vlba, std::uint32_t nblocks,
                          std::span<std::byte> out)
{
    const std::uint64_t bytes =
        static_cast<std::uint64_t>(nblocks) * ctrl::kDeviceBlockSize;
    if (out.size() != bytes)
        return util::invalid_argument_error("read buffer size mismatch");
    NESC_ASSIGN_OR_RETURN(pcie::HostAddr buffer,
                          host_memory_.alloc(bytes, 64));

    bool finished = false;
    CompletionStatus status = CompletionStatus::kOk;
    util::Status submitted = submit(Opcode::kRead, vlba, nblocks, buffer,
                                    [&](CompletionStatus s) {
                                        finished = true;
                                        status = s;
                                    });
    if (!submitted.is_ok()) {
        (void)host_memory_.free(buffer);
        return submitted;
    }
    while (!finished) {
        if (!simulator_.step()) {
            (void)host_memory_.free(buffer);
            return util::internal_error("device hung: no completion");
        }
    }
    if (status != CompletionStatus::kOk) {
        (void)host_memory_.free(buffer);
        return util::unavailable_error(
            "device completion status " +
            std::to_string(static_cast<std::uint32_t>(status)));
    }
    // Copy out of the DMA buffer; with trampoline buffers this is the
    // prototype's mandatory bounce copy, charged at memcpy bandwidth.
    util::Status read_back = host_memory_.read(buffer, out);
    if (config_.trampoline) {
        simulator_.advance(
            util::transfer_time_ns(bytes, config_.copy_bytes_per_sec));
    }
    (void)host_memory_.free(buffer);
    return read_back;
}

util::Status
FunctionDriver::write_sync(std::uint64_t vlba, std::uint32_t nblocks,
                           std::span<const std::byte> in)
{
    const std::uint64_t bytes =
        static_cast<std::uint64_t>(nblocks) * ctrl::kDeviceBlockSize;
    if (in.size() != bytes)
        return util::invalid_argument_error("write buffer size mismatch");
    NESC_ASSIGN_OR_RETURN(pcie::HostAddr buffer,
                          host_memory_.alloc(bytes, 64));
    NESC_RETURN_IF_ERROR(host_memory_.write(buffer, in));
    if (config_.trampoline) {
        simulator_.advance(
            util::transfer_time_ns(bytes, config_.copy_bytes_per_sec));
    }

    bool finished = false;
    CompletionStatus status = CompletionStatus::kOk;
    util::Status submitted = submit(Opcode::kWrite, vlba, nblocks, buffer,
                                    [&](CompletionStatus s) {
                                        finished = true;
                                        status = s;
                                    });
    if (!submitted.is_ok()) {
        (void)host_memory_.free(buffer);
        return submitted;
    }
    while (!finished) {
        if (!simulator_.step()) {
            (void)host_memory_.free(buffer);
            return util::internal_error("device hung: no completion");
        }
    }
    (void)host_memory_.free(buffer);
    if (status != CompletionStatus::kOk) {
        return util::unavailable_error(
            "device completion status " +
            std::to_string(static_cast<std::uint32_t>(status)));
    }
    return util::Status::ok();
}

} // namespace nesc::drv
