#include "types.h"

namespace nesc::extent {

std::string
Extent::to_string() const
{
    return "[v" + std::to_string(first_vblock) + "+" +
           std::to_string(nblocks) + " -> p" +
           std::to_string(first_pblock) + "]";
}

bool
is_valid_extent_list(const ExtentList &extents)
{
    for (std::size_t i = 0; i < extents.size(); ++i) {
        if (extents[i].nblocks == 0)
            return false;
        if (i > 0 && extents[i].first_vblock < extents[i - 1].end_vblock())
            return false;
    }
    return true;
}

std::uint64_t
total_mapped_blocks(const ExtentList &extents)
{
    std::uint64_t total = 0;
    for (const auto &e : extents)
        total += e.nblocks;
    return total;
}

} // namespace nesc::extent
