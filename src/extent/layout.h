/**
 * @file
 * On-memory (wire) layout of the NeSC extent tree (paper Figure 4).
 *
 * The hypervisor serializes each VF's mapping into host DRAM in this
 * format; the device's block-walk unit parses it with raw DMA reads, so
 * the layout is a fixed ABI: little-endian, trivially-copyable structs
 * with explicit sizes.
 *
 * A node is a header followed by `count` entries. Internal nodes hold
 * node pointers (first covered vblock, number of covered vblocks, host
 * address of the child node); leaves hold extent pointers (first
 * vblock, extent length, first physical block). A node pointer whose
 * child address is null marks a subtree the hypervisor pruned under
 * memory pressure — the device must interrupt the host to regenerate
 * it (paper §IV.B).
 */
#ifndef NESC_EXTENT_LAYOUT_H
#define NESC_EXTENT_LAYOUT_H

#include <cstdint>

#include "extent/types.h"
#include "pcie/host_memory.h"
#include "util/crc32c.h"

namespace nesc::extent {

/** Node kinds distinguished by the header (paper Fig. 4a). */
enum class NodeKind : std::uint16_t {
    kInternal = 0, ///< entries are NodePtrRecords
    kLeaf = 1,     ///< entries are ExtentPtrRecords
};

/** Header at the start of every tree node. */
struct NodeHeaderRecord {
    std::uint16_t magic;   ///< kNodeMagic; walker validates it
    std::uint16_t kind;    ///< NodeKind
    std::uint16_t count;   ///< live entries
    std::uint16_t depth;   ///< 0 at leaves; root has the largest depth
};
static_assert(sizeof(NodeHeaderRecord) == 8);

inline constexpr std::uint16_t kNodeMagic = 0x4e45; // "NE"
/**
 * Format v2: same header and entries, plus a CRC32C trailer (see
 * NodeTrailerRecord) directly after the live entries. The magic is the
 * version switch, so v1 and v2 nodes can coexist in one tree and v1
 * images are parsed byte-identically by v2-aware walkers.
 */
inline constexpr std::uint16_t kNodeMagicV2 = 0x4e32; // "N2"

/** Internal-node entry (paper Fig. 4b, "Node Pointer"). */
struct NodePtrRecord {
    std::uint64_t first_vblock; ///< first logical block covered
    std::uint64_t nblocks;      ///< logical blocks covered (incl. gaps)
    pcie::HostAddr child;       ///< next node; null => pruned subtree
};
static_assert(sizeof(NodePtrRecord) == 24);

/** Leaf entry (paper Fig. 4b, "Extent Pointer"). */
struct ExtentPtrRecord {
    std::uint64_t first_vblock; ///< first logical block of the extent
    std::uint64_t nblocks;      ///< extent length in blocks
    std::uint64_t first_pblock; ///< first physical block
};
static_assert(sizeof(ExtentPtrRecord) == 24);

/** Entries share a size, so node geometry is kind-independent. */
inline constexpr std::uint64_t kEntrySize = sizeof(NodePtrRecord);

/**
 * v2 node trailer: CRC32C over the header record followed by the
 * `count` live entries. It sits at entry_addr(node, count) — right
 * after the live entries, found from the header alone — so a flipped
 * count, kind, or child pointer fails the check before the walker acts
 * on it. v1 nodes have no trailer and keep their exact footprint.
 */
struct NodeTrailerRecord {
    std::uint32_t crc;
    std::uint32_t pad;
};
static_assert(sizeof(NodeTrailerRecord) == 8);

inline constexpr std::uint64_t kNodeTrailerSize = sizeof(NodeTrailerRecord);

/** Bytes occupied by a node with @p capacity entry slots. */
constexpr std::uint64_t
node_footprint(std::uint32_t capacity)
{
    return sizeof(NodeHeaderRecord) + kEntrySize * capacity;
}

/** Host-memory address of entry @p index within the node at @p node. */
constexpr pcie::HostAddr
entry_addr(pcie::HostAddr node, std::uint32_t index)
{
    return node + sizeof(NodeHeaderRecord) + kEntrySize * index;
}

/** CRC a v2 trailer must carry for @p header + @p entry_bytes. */
inline std::uint32_t
node_crc(const NodeHeaderRecord &header, const void *entries,
         std::uint64_t entry_bytes)
{
    const std::uint32_t seed =
        util::crc32c(&header, sizeof(NodeHeaderRecord));
    return util::crc32c(entries, entry_bytes, seed);
}

} // namespace nesc::extent

#endif // NESC_EXTENT_LAYOUT_H
