/**
 * @file
 * Host-side construction and lifecycle of serialized extent trees.
 *
 * The hypervisor's PF driver translates a file's extent list (from the
 * filesystem's FIEMAP-style query) into the device ABI of layout.h,
 * allocating nodes in host memory. It can also prune subtrees under
 * memory pressure — replacing a child pointer with null and releasing
 * the subtree — which the device later reports as a fault so the
 * mapping can be regenerated (paper §IV.B/C).
 */
#ifndef NESC_EXTENT_TREE_IMAGE_H
#define NESC_EXTENT_TREE_IMAGE_H

#include <cstdint>
#include <vector>

#include "extent/layout.h"
#include "extent/types.h"
#include "pcie/host_memory.h"
#include "util/status.h"

namespace nesc::extent {

/** Shape parameters for serialized trees. */
struct TreeConfig {
    /**
     * Max entries per node. ext4 packs ~340 entries in a 4 KiB block;
     * the default keeps trees shallow yet non-trivial for files of a
     * few hundred extents.
     */
    std::uint32_t fanout = 64;
    /**
     * Format v2: every node carries kNodeMagicV2 plus a CRC32C trailer
     * over its header and live entries, verified by walkers on fetch
     * (a flipped child pointer faults kTreeCorrupt instead of walking
     * off). Off by default — v1 images stay byte-identical.
     */
    bool checksummed = false;
};

/** An extent tree serialized into host memory, owned by the builder. */
class ExtentTreeImage {
  public:
    /**
     * Serializes @p extents (sorted, non-overlapping; gaps = holes)
     * into @p memory. An empty list yields a leaf root with no
     * entries — a fully lazy-allocated virtual disk.
     */
    static util::Result<ExtentTreeImage>
    build(pcie::HostMemory &memory, const ExtentList &extents,
          const TreeConfig &config = {});

    ExtentTreeImage(ExtentTreeImage &&other) noexcept;
    ExtentTreeImage &operator=(ExtentTreeImage &&other) noexcept;
    ExtentTreeImage(const ExtentTreeImage &) = delete;
    ExtentTreeImage &operator=(const ExtentTreeImage &) = delete;
    /** Releases all resident nodes. */
    ~ExtentTreeImage();

    /** Host address of the root node (never null for a live image). */
    pcie::HostAddr root() const { return root_; }

    /** Tree depth: 0 for a leaf-only tree. */
    std::uint32_t depth() const { return depth_; }

    /** Nodes currently resident (excludes pruned subtrees). */
    std::size_t num_nodes() const { return nodes_.size(); }

    /** Host-memory bytes held by resident nodes. */
    std::uint64_t footprint_bytes() const;

    /**
     * Bounding host-memory range [base, base + size) of the resident
     * nodes. A hypervisor confining a VF with DMA windows uses this to
     * grant the device's walks access to the VF's translation
     * structures — the tree is hypervisor-owned, so it never lies
     * inside the guest's own buffers. {kNullHostAddr, 0} when empty.
     */
    std::pair<pcie::HostAddr, std::uint64_t> bounds() const;

    /**
     * Prunes every subtree whose coverage intersects [@p first_vblock,
     * +@p nblocks): child pointers become null and subtree nodes are
     * freed. Returns the number of subtrees pruned. Pruning never
     * removes the root. A leaf-only tree has nothing to prune.
     */
    util::Result<std::size_t> prune_range(Vlba first_vblock,
                                          std::uint64_t nblocks);

    /** Total subtrees pruned over the image's lifetime. */
    std::size_t pruned_count() const { return pruned_count_; }

    /** Frees all nodes and leaves the image empty (root()==null). */
    util::Status destroy();

  private:
    ExtentTreeImage(pcie::HostMemory &memory, TreeConfig config)
        : memory_(&memory), config_(config)
    {
    }

    util::Result<pcie::HostAddr> alloc_node(NodeKind kind,
                                            std::uint16_t depth,
                                            std::uint16_t count);
    /** Bytes one resident node occupies (trailer included for v2). */
    std::uint64_t node_bytes() const;
    /** (Re)writes @p node's v2 trailer from its current contents. */
    util::Status seal_node(pcie::HostAddr node);
    util::Status free_subtree(pcie::HostAddr node);
    util::Result<std::size_t> prune_in_node(pcie::HostAddr node,
                                            Vlba first_vblock, Vlba end);

    pcie::HostMemory *memory_;
    TreeConfig config_;
    pcie::HostAddr root_ = pcie::kNullHostAddr;
    std::uint32_t depth_ = 0;
    std::vector<pcie::HostAddr> nodes_; ///< all resident node addresses
    std::size_t pruned_count_ = 0;
};

} // namespace nesc::extent

#endif // NESC_EXTENT_TREE_IMAGE_H
