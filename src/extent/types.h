/**
 * @file
 * Core extent-mapping value types.
 *
 * NeSC names block addresses from the client's and the host's point of
 * view (paper §IV.B): a vLBA is an offset (in device blocks) into the
 * virtual disk a VF exports — equivalently into the backing host file —
 * and a pLBA is a block of the physical storage device. The mapping
 * between them is a set of extents: runs of contiguous physical blocks.
 */
#ifndef NESC_EXTENT_TYPES_H
#define NESC_EXTENT_TYPES_H

#include <compare>
#include <cstdint>
#include <string>
#include <vector>

namespace nesc::extent {

/** Virtual logical block address: block offset in a virtual device. */
using Vlba = std::uint64_t;

/** Physical logical block address: block on the physical device. */
using Plba = std::uint64_t;

/** A contiguous vLBA range mapped to a contiguous pLBA range. */
struct Extent {
    Vlba first_vblock = 0;
    std::uint64_t nblocks = 0;
    Plba first_pblock = 0;

    auto operator<=>(const Extent &) const = default;

    /** One past the last covered vblock. */
    Vlba end_vblock() const { return first_vblock + nblocks; }

    /** True if @p vlba falls inside this extent. */
    bool
    contains(Vlba vlba) const
    {
        return vlba >= first_vblock && vlba < end_vblock();
    }

    /** Translates @p vlba, which must be inside this extent. */
    Plba translate(Vlba vlba) const
    {
        return first_pblock + (vlba - first_vblock);
    }

    std::string to_string() const;
};

/** A sorted, non-overlapping extent list (what a FIEMAP query returns). */
using ExtentList = std::vector<Extent>;

/**
 * Validates that @p extents are sorted by first_vblock and do not
 * overlap in vLBA space. Gaps are allowed — they are file holes.
 */
bool is_valid_extent_list(const ExtentList &extents);

/** Sums nblocks over the list. */
std::uint64_t total_mapped_blocks(const ExtentList &extents);

} // namespace nesc::extent

#endif // NESC_EXTENT_TYPES_H
