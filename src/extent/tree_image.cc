#include "tree_image.h"

#include <algorithm>
#include <string>
#include <utility>

namespace nesc::extent {

namespace {

/** Coverage summary of one already-built node, used while stacking levels. */
struct BuiltNode {
    Vlba first_vblock;
    std::uint64_t nblocks; ///< covered span, including interior gaps
    pcie::HostAddr addr;
};

} // namespace

util::Result<ExtentTreeImage>
ExtentTreeImage::build(pcie::HostMemory &memory, const ExtentList &extents,
                       const TreeConfig &config)
{
    if (config.fanout < 2)
        return util::invalid_argument_error("tree fanout must be >= 2");
    if (!is_valid_extent_list(extents))
        return util::invalid_argument_error(
            "extent list is unsorted or overlapping");

    ExtentTreeImage image(memory, config);

    if (extents.empty()) {
        NESC_ASSIGN_OR_RETURN(image.root_,
                              image.alloc_node(NodeKind::kLeaf, 0, 0));
        if (config.checksummed)
            NESC_RETURN_IF_ERROR(image.seal_node(image.root_));
        image.depth_ = 0;
        return image;
    }

    // Level 0: pack extents into leaves.
    std::vector<BuiltNode> level;
    for (std::size_t begin = 0; begin < extents.size();
         begin += config.fanout) {
        const std::size_t end =
            std::min(begin + config.fanout, extents.size());
        const auto count = static_cast<std::uint16_t>(end - begin);
        NESC_ASSIGN_OR_RETURN(pcie::HostAddr node,
                              image.alloc_node(NodeKind::kLeaf, 0, count));
        for (std::size_t i = begin; i < end; ++i) {
            const Extent &e = extents[i];
            const ExtentPtrRecord rec{e.first_vblock, e.nblocks,
                                      e.first_pblock};
            NESC_RETURN_IF_ERROR(memory.write_pod(
                entry_addr(node, static_cast<std::uint32_t>(i - begin)),
                rec));
        }
        if (config.checksummed)
            NESC_RETURN_IF_ERROR(image.seal_node(node));
        level.push_back(BuiltNode{
            extents[begin].first_vblock,
            extents[end - 1].end_vblock() - extents[begin].first_vblock,
            node});
    }

    // Stack internal levels until a single root remains.
    std::uint16_t depth = 0;
    while (level.size() > 1) {
        ++depth;
        std::vector<BuiltNode> next;
        for (std::size_t begin = 0; begin < level.size();
             begin += config.fanout) {
            const std::size_t end =
                std::min(begin + config.fanout, level.size());
            const auto count = static_cast<std::uint16_t>(end - begin);
            NESC_ASSIGN_OR_RETURN(
                pcie::HostAddr node,
                image.alloc_node(NodeKind::kInternal, depth, count));
            for (std::size_t i = begin; i < end; ++i) {
                const BuiltNode &child = level[i];
                const NodePtrRecord rec{child.first_vblock, child.nblocks,
                                        child.addr};
                NESC_RETURN_IF_ERROR(memory.write_pod(
                    entry_addr(node, static_cast<std::uint32_t>(i - begin)),
                    rec));
            }
            if (config.checksummed)
                NESC_RETURN_IF_ERROR(image.seal_node(node));
            const BuiltNode &first = level[begin];
            const BuiltNode &last = level[end - 1];
            next.push_back(BuiltNode{
                first.first_vblock,
                last.first_vblock + last.nblocks - first.first_vblock,
                node});
        }
        level = std::move(next);
    }

    image.root_ = level.front().addr;
    image.depth_ = depth;
    return image;
}

ExtentTreeImage::ExtentTreeImage(ExtentTreeImage &&other) noexcept
    : memory_(other.memory_), config_(other.config_), root_(other.root_),
      depth_(other.depth_), nodes_(std::move(other.nodes_)),
      pruned_count_(other.pruned_count_)
{
    other.root_ = pcie::kNullHostAddr;
    other.nodes_.clear();
}

ExtentTreeImage &
ExtentTreeImage::operator=(ExtentTreeImage &&other) noexcept
{
    if (this != &other) {
        // Best effort: release our nodes before adopting the other's.
        (void)destroy();
        memory_ = other.memory_;
        config_ = other.config_;
        root_ = other.root_;
        depth_ = other.depth_;
        nodes_ = std::move(other.nodes_);
        pruned_count_ = other.pruned_count_;
        other.root_ = pcie::kNullHostAddr;
        other.nodes_.clear();
    }
    return *this;
}

ExtentTreeImage::~ExtentTreeImage()
{
    (void)destroy();
}

std::uint64_t
ExtentTreeImage::node_bytes() const
{
    // v2 nodes reserve trailer space past the entry slots, so a full
    // node (count == fanout) still has room for its checksum.
    return node_footprint(config_.fanout) +
           (config_.checksummed ? kNodeTrailerSize : 0);
}

std::uint64_t
ExtentTreeImage::footprint_bytes() const
{
    return nodes_.size() * node_bytes();
}

std::pair<pcie::HostAddr, std::uint64_t>
ExtentTreeImage::bounds() const
{
    if (nodes_.empty())
        return {pcie::kNullHostAddr, 0};
    const auto [lo, hi] =
        std::minmax_element(nodes_.begin(), nodes_.end());
    return {*lo, *hi - *lo + node_bytes()};
}

util::Result<pcie::HostAddr>
ExtentTreeImage::alloc_node(NodeKind kind, std::uint16_t depth,
                            std::uint16_t count)
{
    NESC_ASSIGN_OR_RETURN(pcie::HostAddr addr,
                          memory_->alloc(node_bytes(), 8));
    const NodeHeaderRecord header{
        config_.checksummed ? kNodeMagicV2 : kNodeMagic,
        static_cast<std::uint16_t>(kind), count, depth};
    NESC_RETURN_IF_ERROR(memory_->write_pod(addr, header));
    nodes_.push_back(addr);
    return addr;
}

util::Status
ExtentTreeImage::seal_node(pcie::HostAddr node)
{
    NESC_ASSIGN_OR_RETURN(auto header,
                          memory_->read_pod<NodeHeaderRecord>(node));
    // Both entry kinds are 24-byte PODs, so the raw record bytes feed
    // the checksum without caring which kind the node holds.
    std::uint32_t crc = util::crc32c(&header, sizeof(header));
    for (std::uint32_t i = 0; i < header.count; ++i) {
        NESC_ASSIGN_OR_RETURN(
            auto rec, memory_->read_pod<NodePtrRecord>(entry_addr(node, i)));
        crc = util::crc32c(&rec, sizeof(rec), crc);
    }
    return memory_->write_pod(entry_addr(node, header.count),
                              NodeTrailerRecord{crc, 0});
}

util::Status
ExtentTreeImage::free_subtree(pcie::HostAddr node)
{
    NESC_ASSIGN_OR_RETURN(auto header,
                          memory_->read_pod<NodeHeaderRecord>(node));
    if (header.magic != kNodeMagic && header.magic != kNodeMagicV2)
        return util::data_loss_error("corrupt tree node at " +
                                     std::to_string(node));
    if (header.kind == static_cast<std::uint16_t>(NodeKind::kInternal)) {
        for (std::uint32_t i = 0; i < header.count; ++i) {
            NESC_ASSIGN_OR_RETURN(auto rec,
                                  memory_->read_pod<NodePtrRecord>(
                                      entry_addr(node, i)));
            if (rec.child != pcie::kNullHostAddr)
                NESC_RETURN_IF_ERROR(free_subtree(rec.child));
        }
    }
    NESC_RETURN_IF_ERROR(memory_->free(node));
    std::erase(nodes_, node);
    return util::Status::ok();
}

util::Result<std::size_t>
ExtentTreeImage::prune_in_node(pcie::HostAddr node, Vlba first_vblock,
                               Vlba end)
{
    NESC_ASSIGN_OR_RETURN(auto header,
                          memory_->read_pod<NodeHeaderRecord>(node));
    if (header.kind != static_cast<std::uint16_t>(NodeKind::kInternal))
        return std::size_t{0};
    std::size_t pruned = 0;
    for (std::uint32_t i = 0; i < header.count; ++i) {
        const pcie::HostAddr rec_addr = entry_addr(node, i);
        NESC_ASSIGN_OR_RETURN(auto rec,
                              memory_->read_pod<NodePtrRecord>(rec_addr));
        if (rec.child == pcie::kNullHostAddr)
            continue; // already pruned
        const Vlba child_end = rec.first_vblock + rec.nblocks;
        if (child_end <= first_vblock || rec.first_vblock >= end)
            continue; // disjoint
        if (rec.first_vblock >= first_vblock && child_end <= end) {
            // Fully covered: drop the whole subtree.
            NESC_RETURN_IF_ERROR(free_subtree(rec.child));
            rec.child = pcie::kNullHostAddr;
            NESC_RETURN_IF_ERROR(memory_->write_pod(rec_addr, rec));
            // The nulled pointer changed the node's bytes; re-seal so
            // a verifying walker doesn't mistake pruning for damage.
            if (config_.checksummed)
                NESC_RETURN_IF_ERROR(seal_node(node));
            ++pruned;
            ++pruned_count_;
        } else {
            // Partial overlap: descend.
            NESC_ASSIGN_OR_RETURN(
                std::size_t sub, prune_in_node(rec.child, first_vblock, end));
            pruned += sub;
        }
    }
    return pruned;
}

util::Result<std::size_t>
ExtentTreeImage::prune_range(Vlba first_vblock, std::uint64_t nblocks)
{
    if (root_ == pcie::kNullHostAddr)
        return util::failed_precondition_error("pruning a destroyed tree");
    if (nblocks == 0)
        return std::size_t{0};
    return prune_in_node(root_, first_vblock, first_vblock + nblocks);
}

util::Status
ExtentTreeImage::destroy()
{
    if (root_ == pcie::kNullHostAddr)
        return util::Status::ok();
    util::Status status = free_subtree(root_);
    root_ = pcie::kNullHostAddr;
    depth_ = 0;
    return status;
}

} // namespace nesc::extent
