/**
 * @file
 * Software reference walker for serialized extent trees.
 *
 * Implements exactly the lookup the device's block-walk unit performs
 * (paper §V.B), but with direct functional memory reads and no timing.
 * The hardware model in src/nesc is validated against this walker; the
 * PF driver also uses it when it needs to inspect a tree it built.
 */
#ifndef NESC_EXTENT_WALKER_H
#define NESC_EXTENT_WALKER_H

#include <cstdint>
#include <vector>

#include "extent/layout.h"
#include "extent/types.h"
#include "pcie/host_memory.h"
#include "util/status.h"

namespace nesc::extent {

/** What a vLBA lookup found. */
enum class LookupOutcome {
    kMapped, ///< translation succeeded
    kHole,   ///< no mapping: unallocated (lazy) region of the file
    kPruned, ///< mapping existed but its subtree was pruned from memory
};

/** Result of a single vLBA lookup. */
struct LookupResult {
    LookupOutcome outcome = LookupOutcome::kHole;
    /** The matched extent (valid only when outcome == kMapped). */
    Extent extent{};
    /** Nodes visited, root inclusive (the walk's DMA count). */
    std::uint32_t nodes_visited = 0;
    /**
     * Host addresses of the visited nodes, root first. This is the
     * exact node set a device walk DMA-reads for the same vLBA, so
     * tests can predict node-cache contents and DMA counts from it.
     */
    std::vector<pcie::HostAddr> path;
};

/**
 * Looks up @p vlba in the tree rooted at @p root. Fails with DATA_LOSS
 * on a malformed tree (bad magic, internal node at depth 0, ...).
 */
util::Result<LookupResult> lookup(const pcie::HostMemory &memory,
                                  pcie::HostAddr root, Vlba vlba);

/**
 * Enumerates every reachable extent in vLBA order (pruned subtrees are
 * skipped). Useful for tests and for diffing a tree against a FIEMAP.
 */
util::Result<ExtentList> enumerate(const pcie::HostMemory &memory,
                                   pcie::HostAddr root);

} // namespace nesc::extent

#endif // NESC_EXTENT_WALKER_H
