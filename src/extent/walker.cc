#include "walker.h"

#include <string>

namespace nesc::extent {

namespace {

/**
 * Fetches and validates a node header; v2 nodes (kNodeMagicV2) are
 * additionally verified against their CRC32C trailer before any entry
 * is acted on, so a flipped count or child pointer faults here instead
 * of steering the descent into garbage.
 */
util::Result<NodeHeaderRecord>
read_header(const pcie::HostMemory &memory, pcie::HostAddr node)
{
    NESC_ASSIGN_OR_RETURN(auto header,
                          memory.read_pod<NodeHeaderRecord>(node));
    if (header.magic != kNodeMagic && header.magic != kNodeMagicV2) {
        return util::data_loss_error("bad extent-tree node magic at " +
                                     std::to_string(node));
    }
    if (header.magic == kNodeMagicV2) {
        std::uint32_t crc = util::crc32c(&header, sizeof(header));
        for (std::uint32_t i = 0; i < header.count; ++i) {
            NESC_ASSIGN_OR_RETURN(
                auto rec,
                memory.read_pod<NodePtrRecord>(entry_addr(node, i)));
            crc = util::crc32c(&rec, sizeof(rec), crc);
        }
        NESC_ASSIGN_OR_RETURN(auto trailer,
                              memory.read_pod<NodeTrailerRecord>(
                                  entry_addr(node, header.count)));
        if (trailer.crc != crc)
            return util::data_loss_error(
                "extent-tree node failed its checksum at " +
                std::to_string(node));
    }
    return header;
}

} // namespace

util::Result<LookupResult>
lookup(const pcie::HostMemory &memory, pcie::HostAddr root, Vlba vlba)
{
    if (root == pcie::kNullHostAddr)
        return util::invalid_argument_error("lookup with null tree root");

    LookupResult result;
    pcie::HostAddr node = root;
    // Bounded descent: a legal tree has depth <= 64.
    for (int level = 0; level < 64; ++level) {
        NESC_ASSIGN_OR_RETURN(auto header, read_header(memory, node));
        ++result.nodes_visited;
        result.path.push_back(node);

        if (header.kind == static_cast<std::uint16_t>(NodeKind::kLeaf)) {
            for (std::uint32_t i = 0; i < header.count; ++i) {
                NESC_ASSIGN_OR_RETURN(auto rec,
                                      memory.read_pod<ExtentPtrRecord>(
                                          entry_addr(node, i)));
                const Extent extent{rec.first_vblock, rec.nblocks,
                                    rec.first_pblock};
                if (extent.contains(vlba)) {
                    result.outcome = LookupOutcome::kMapped;
                    result.extent = extent;
                    return result;
                }
                if (rec.first_vblock > vlba)
                    break; // entries are sorted; no later match possible
            }
            result.outcome = LookupOutcome::kHole;
            return result;
        }

        // Internal node: find the covering child.
        pcie::HostAddr next = pcie::kNullHostAddr;
        bool covered = false;
        for (std::uint32_t i = 0; i < header.count; ++i) {
            NESC_ASSIGN_OR_RETURN(auto rec, memory.read_pod<NodePtrRecord>(
                                                entry_addr(node, i)));
            if (vlba >= rec.first_vblock &&
                vlba < rec.first_vblock + rec.nblocks) {
                covered = true;
                next = rec.child;
                break;
            }
            if (rec.first_vblock > vlba)
                break;
        }
        if (!covered) {
            result.outcome = LookupOutcome::kHole;
            return result;
        }
        if (next == pcie::kNullHostAddr) {
            result.outcome = LookupOutcome::kPruned;
            return result;
        }
        node = next;
    }
    return util::data_loss_error("extent tree deeper than 64 levels");
}

namespace {

util::Status
enumerate_into(const pcie::HostMemory &memory, pcie::HostAddr node,
               ExtentList &out)
{
    NESC_ASSIGN_OR_RETURN(auto header, read_header(memory, node));
    if (header.kind == static_cast<std::uint16_t>(NodeKind::kLeaf)) {
        for (std::uint32_t i = 0; i < header.count; ++i) {
            NESC_ASSIGN_OR_RETURN(
                auto rec,
                memory.read_pod<ExtentPtrRecord>(entry_addr(node, i)));
            out.push_back(
                Extent{rec.first_vblock, rec.nblocks, rec.first_pblock});
        }
        return util::Status::ok();
    }
    for (std::uint32_t i = 0; i < header.count; ++i) {
        NESC_ASSIGN_OR_RETURN(
            auto rec, memory.read_pod<NodePtrRecord>(entry_addr(node, i)));
        if (rec.child != pcie::kNullHostAddr)
            NESC_RETURN_IF_ERROR(enumerate_into(memory, rec.child, out));
    }
    return util::Status::ok();
}

} // namespace

util::Result<ExtentList>
enumerate(const pcie::HostMemory &memory, pcie::HostAddr root)
{
    if (root == pcie::kNullHostAddr)
        return util::invalid_argument_error("enumerate with null tree root");
    ExtentList out;
    NESC_RETURN_IF_ERROR(enumerate_into(memory, root, out));
    return out;
}

} // namespace nesc::extent
