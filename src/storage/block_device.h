/**
 * @file
 * Abstract block storage media.
 *
 * A BlockDevice separates the *functional* path (bytes stored and
 * returned) from the *timing* path (when a transfer of a given size
 * completes on the media port). The NeSC data-transfer unit, the host
 * baseline stack, and the filesystem all sit on this interface, so the
 * same media model backs every virtualization technique being compared.
 */
#ifndef NESC_STORAGE_BLOCK_DEVICE_H
#define NESC_STORAGE_BLOCK_DEVICE_H

#include <cstddef>
#include <cstdint>
#include <span>

#include "sim/time.h"
#include "util/status.h"

namespace nesc::storage {

/** Static device shape. */
struct Geometry {
    std::uint64_t capacity_bytes = 0;
    /** Smallest addressable unit; NeSC operates at 1 KiB granularity. */
    std::uint32_t logical_block_size = 1024;

    std::uint64_t
    num_blocks() const
    {
        return capacity_bytes / logical_block_size;
    }
};

/** Block storage media: functional store plus a timing model. */
class BlockDevice {
  public:
    virtual ~BlockDevice() = default;

    virtual const Geometry &geometry() const = 0;

    /**
     * Functional read of @p out.size() bytes at byte @p offset.
     * Fails with OUT_OF_RANGE if the span exceeds the capacity.
     */
    virtual util::Status read(std::uint64_t offset,
                              std::span<std::byte> out) = 0;

    /** Functional write; same range rules as read(). */
    virtual util::Status write(std::uint64_t offset,
                               std::span<const std::byte> in) = 0;

    /**
     * Books a @p bytes read at byte @p offset on the media that
     * becomes eligible at @p start; returns its completion time. The
     * offset matters for media whose cost depends on the address
     * pattern (e.g. flash FTLs); DRAM-class media ignore it.
     */
    virtual sim::Time service_read(sim::Time start, std::uint64_t offset,
                                   std::uint64_t bytes) = 0;

    /** Timing for a write; see service_read(). */
    virtual sim::Time service_write(sim::Time start, std::uint64_t offset,
                                    std::uint64_t bytes) = 0;

    /** Total bytes moved through the functional interface. */
    virtual std::uint64_t bytes_read() const = 0;
    virtual std::uint64_t bytes_written() const = 0;
};

} // namespace nesc::storage

#endif // NESC_STORAGE_BLOCK_DEVICE_H
