#include "faulty_block_device.h"

namespace nesc::storage {

FaultyBlockDevice::FaultyBlockDevice(BlockDevice &inner,
                                     const FaultPlan &plan)
    : inner_(inner), plan_(plan), rng_(plan.seed),
      stall_rng_(plan.seed ^ 0x5741'4c4c'5354'414cULL), // "STALL" salt
      sticky_rng_(plan.seed ^ 0x5354'4943'4b59'4342ULL) // "STICKYCB" salt
{
}

bool
FaultyBlockDevice::overlaps_bad_range(std::uint64_t offset,
                                      std::uint64_t bytes) const
{
    const std::uint32_t bs = inner_.geometry().logical_block_size;
    const std::uint64_t first = offset / bs;
    const std::uint64_t last = bytes ? (offset + bytes - 1) / bs : first;
    for (const BadBlockRange &range : plan_.bad_blocks) {
        if (range.nblocks == 0)
            continue;
        if (first <= range.first_block + range.nblocks - 1 &&
            last >= range.first_block)
            return true;
    }
    return false;
}

InjectedFault
FaultyBlockDevice::draw(bool is_read, std::uint64_t offset,
                        std::uint64_t bytes)
{
    const std::uint64_t index = op_index_++;
    for (const ScheduledFault &sched : plan_.schedule) {
        // kStall entries live in the timing-op index space, and
        // kCorruptSticky is drawn orthogonally in apply_sticky();
        // neither is a "main" fault here.
        if (sched.op_index == index && sched.kind != InjectedFault::kNone &&
            sched.kind != InjectedFault::kStall &&
            sched.kind != InjectedFault::kCorruptSticky)
            return sched.kind;
    }
    if (overlaps_bad_range(offset, bytes)) {
        ++counters_["bad_block_hits"];
        return is_read ? InjectedFault::kReadError
                       : InjectedFault::kWriteError;
    }
    // One RNG draw per class keeps the stream deterministic regardless
    // of which probabilities are enabled: every op consumes the same
    // number of draws.
    const bool transient = rng_.next_bool(plan_.transient_prob);
    const bool hard = rng_.next_bool(is_read ? plan_.read_error_prob
                                             : plan_.write_error_prob);
    const bool corrupt = rng_.next_bool(plan_.corrupt_prob);
    if (transient)
        return InjectedFault::kTransient;
    if (hard)
        return is_read ? InjectedFault::kReadError
                       : InjectedFault::kWriteError;
    if (corrupt && is_read)
        return InjectedFault::kCorrupt;
    return InjectedFault::kNone;
}

std::uint64_t
FaultyBlockDevice::draw_sticky(std::uint64_t index, std::uint64_t bytes)
{
    bool hit = false;
    for (const ScheduledFault &sched : plan_.schedule) {
        if (sched.op_index == index &&
            sched.kind == InjectedFault::kCorruptSticky)
            hit = true;
    }
    // Exactly one probability draw per media op, scheduled or not, so
    // the sticky stream is stable under schedule edits (the stall
    // idiom) and independent of every other fault class's outcome.
    if (sticky_rng_.next_bool(plan_.corrupt_sticky_prob))
        hit = true;
    if (!hit || bytes == 0)
        return 0;
    return 1 + sticky_rng_.next_below(bytes * 8);
}

void
FaultyBlockDevice::damage_stored_bit(std::uint64_t offset, std::uint64_t bit)
{
    std::byte damaged;
    if (!inner_.read(offset + bit / 8, std::span(&damaged, 1)).is_ok())
        return;
    damaged ^= static_cast<std::byte>(1u << (bit % 8));
    if (!inner_.write(offset + bit / 8,
                      std::span<const std::byte>(&damaged, 1))
             .is_ok())
        return;
    ++counters_["injected_faults"];
    ++counters_["sticky_corruptions"];
}

util::Status
FaultyBlockDevice::read(std::uint64_t offset, std::span<std::byte> out)
{
    const std::uint64_t index = op_index_;
    const InjectedFault fault = draw(/*is_read=*/true, offset, out.size());
    // Bitrot lands before the media services the read, so the damaged
    // byte is what this very read returns.
    const std::uint64_t sticky = draw_sticky(index, out.size());
    if (sticky != 0)
        damage_stored_bit(offset, sticky - 1);
    switch (fault) {
      case InjectedFault::kReadError:
        ++counters_["injected_faults"];
        ++counters_["read_media_errors"];
        return util::data_loss_error("injected media read error");
      case InjectedFault::kTransient:
        ++counters_["injected_faults"];
        ++counters_["transient_faults"];
        return util::unavailable_error("injected transient read fault");
      case InjectedFault::kCorrupt: {
        NESC_RETURN_IF_ERROR(inner_.read(offset, out));
        if (!out.empty()) {
            ++counters_["injected_faults"];
            ++counters_["silent_corruptions"];
            const std::uint64_t bit = rng_.next_below(out.size() * 8);
            out[bit / 8] ^= static_cast<std::byte>(1u << (bit % 8));
        }
        return util::Status::ok();
      }
      case InjectedFault::kWriteError:
      case InjectedFault::kStall:
      case InjectedFault::kCorruptSticky:
      case InjectedFault::kNone:
        break;
    }
    return inner_.read(offset, out);
}

sim::Duration
FaultyBlockDevice::draw_stall()
{
    const std::uint64_t index = timing_op_index_++;
    bool stall = false;
    for (const ScheduledFault &sched : plan_.schedule) {
        if (sched.op_index == index && sched.kind == InjectedFault::kStall)
            stall = true;
    }
    // Exactly one draw per timing op, even when scheduled, so the
    // stall stream is stable under schedule edits.
    if (stall_rng_.next_bool(plan_.stall_prob))
        stall = true;
    if (!stall)
        return 0;
    ++counters_["injected_faults"];
    ++counters_["stall_faults"];
    return plan_.stall_ns;
}

util::Status
FaultyBlockDevice::write(std::uint64_t offset, std::span<const std::byte> in)
{
    const std::uint64_t index = op_index_;
    const InjectedFault fault = draw(/*is_read=*/false, offset, in.size());
    const std::uint64_t sticky = draw_sticky(index, in.size());
    switch (fault) {
      case InjectedFault::kWriteError:
        ++counters_["injected_faults"];
        ++counters_["write_media_errors"];
        return util::data_loss_error("injected media write error");
      case InjectedFault::kTransient:
        ++counters_["injected_faults"];
        ++counters_["transient_faults"];
        return util::unavailable_error("injected transient write fault");
      case InjectedFault::kReadError:
      case InjectedFault::kCorrupt:
      case InjectedFault::kStall:
      case InjectedFault::kCorruptSticky:
      case InjectedFault::kNone:
        break;
    }
    NESC_RETURN_IF_ERROR(inner_.write(offset, in));
    // Bitrot after the write lands damages the freshly stored copy —
    // exactly what the scrubber exists to find.
    if (sticky != 0)
        damage_stored_bit(offset, sticky - 1);
    return util::Status::ok();
}

} // namespace nesc::storage
