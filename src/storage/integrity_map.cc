#include "storage/integrity_map.h"

#include <algorithm>
#include <cstring>

#include "util/crc32c.h"
#include "util/units.h"

namespace nesc::storage {

namespace {

std::uint32_t
header_crc(IntegrityHeader header)
{
    header.header_crc = 0;
    return util::crc32c(&header, sizeof(header));
}

} // namespace

IntegrityMap::IntegrityMap(BlockDevice &device, std::uint64_t data_blocks)
    : device_(device), data_blocks_(data_blocks),
      block_size_(device.geometry().logical_block_size),
      table_(data_blocks, 0)
{
}

std::uint64_t
IntegrityMap::sidecar_blocks(std::uint64_t data_blocks,
                             std::uint32_t block_size)
{
    return 1 + util::ceil_div(data_blocks * sizeof(std::uint32_t),
                              static_cast<std::uint64_t>(block_size));
}

util::Result<std::unique_ptr<IntegrityMap>>
IntegrityMap::format(BlockDevice &device, std::uint64_t data_blocks)
{
    const std::uint32_t bs = device.geometry().logical_block_size;
    const std::uint64_t need =
        data_blocks + sidecar_blocks(data_blocks, bs);
    if (need > device.geometry().num_blocks())
        return util::invalid_argument_error(
            "media too small for integrity sidecar");

    auto map = std::unique_ptr<IntegrityMap>(
        new IntegrityMap(device, data_blocks));
    std::vector<std::byte> block(bs);
    for (std::uint64_t plba = 0; plba < data_blocks; ++plba) {
        NESC_RETURN_IF_ERROR(
            device.read(plba * bs, std::span<std::byte>(block)));
        map->table_[plba] = util::crc32c(block.data(), block.size());
    }
    NESC_RETURN_IF_ERROR(map->write_header());
    for (std::uint64_t plba = 0; plba < data_blocks;
         plba += map->entries_per_block())
        NESC_RETURN_IF_ERROR(map->write_table_block(plba));
    return map;
}

util::Result<std::unique_ptr<IntegrityMap>>
IntegrityMap::load(BlockDevice &device, std::uint64_t data_blocks)
{
    const std::uint32_t bs = device.geometry().logical_block_size;
    std::vector<std::byte> block(bs);
    NESC_RETURN_IF_ERROR(
        device.read(data_blocks * bs, std::span<std::byte>(block)));
    IntegrityHeader header;
    std::memcpy(&header, block.data(), sizeof(header));
    if (header.magic != kMagic || header.version != kVersion)
        return util::data_loss_error("bad integrity sidecar header");
    if (header.block_size != bs || header.data_blocks != data_blocks)
        return util::data_loss_error("integrity sidecar geometry mismatch");
    if (header.header_crc != header_crc(header))
        return util::data_loss_error("integrity sidecar header CRC");

    auto map = std::unique_ptr<IntegrityMap>(
        new IntegrityMap(device, data_blocks));
    const std::uint32_t per_block = map->entries_per_block();
    for (std::uint64_t first = 0; first < data_blocks;
         first += per_block) {
        const std::uint64_t table_block =
            data_blocks + 1 + first / per_block;
        NESC_RETURN_IF_ERROR(device.read(table_block * bs,
                                         std::span<std::byte>(block)));
        const std::uint64_t count =
            std::min<std::uint64_t>(per_block, data_blocks - first);
        std::memcpy(map->table_.data() + first, block.data(),
                    count * sizeof(std::uint32_t));
    }
    return map;
}

std::uint32_t
IntegrityMap::expected(std::uint64_t plba) const
{
    return covers(plba) ? table_[plba] : 0;
}

util::Status
IntegrityMap::record(std::uint64_t plba, std::span<const std::byte> data)
{
    if (!covers(plba))
        return util::Status::ok();
    if (data.size() != block_size_)
        return util::invalid_argument_error(
            "integrity record must be one block");
    table_[plba] = util::crc32c(data.data(), data.size());
    ++records_;
    return write_table_block(plba);
}

bool
IntegrityMap::verify(std::uint64_t plba, std::span<const std::byte> data)
{
    if (!covers(plba))
        return true;
    ++verifies_;
    if (util::crc32c(data.data(), data.size()) == table_[plba])
        return true;
    ++mismatches_;
    return false;
}

util::Status
IntegrityMap::write_table_block(std::uint64_t plba)
{
    const std::uint32_t per_block = entries_per_block();
    const std::uint64_t first = plba / per_block * per_block;
    const std::uint64_t table_block =
        data_blocks_ + 1 + first / per_block;
    std::vector<std::byte> block(block_size_);
    const std::uint64_t count =
        std::min<std::uint64_t>(per_block, data_blocks_ - first);
    std::memcpy(block.data(), table_.data() + first,
                count * sizeof(std::uint32_t));
    return device_.write(table_block * block_size_, block);
}

util::Status
IntegrityMap::write_header()
{
    IntegrityHeader header;
    header.magic = kMagic;
    header.version = kVersion;
    header.block_size = block_size_;
    header.data_blocks = data_blocks_;
    header.header_crc = header_crc(header);
    std::vector<std::byte> block(block_size_);
    std::memcpy(block.data(), &header, sizeof(header));
    return device_.write(data_blocks_ * block_size_, block);
}

} // namespace nesc::storage
