#include "flash_block_device.h"

#include <algorithm>
#include <cstring>
#include <string>

#include "util/units.h"

namespace nesc::storage {

FlashBlockDevice::FlashBlockDevice(const FlashConfig &config)
    : config_(config),
      geometry_{config.capacity_bytes, config.logical_block_size},
      data_(config.capacity_bytes)
{
    // Physical layout: logical pages striped over channels, plus
    // overprovisioned spare blocks per channel.
    const std::uint64_t logical_pages =
        util::ceil_div(config.capacity_bytes, config.page_bytes);
    mapping_.assign(logical_pages, kUnmapped);

    const std::uint64_t pages_per_channel =
        util::ceil_div(logical_pages, config.channels);
    const std::uint64_t blocks_needed = util::ceil_div(
        pages_per_channel, config.pages_per_block);
    const auto blocks_per_channel = static_cast<std::uint32_t>(
        static_cast<double>(blocks_needed) * (1.0 + config.overprovision) +
        config.gc_low_watermark_blocks + 2);

    channels_.resize(config.channels);
    for (Channel &channel : channels_) {
        channel.blocks.resize(blocks_per_channel);
        for (std::uint32_t b = blocks_per_channel; b > 1; --b)
            channel.free_blocks.push_back(b - 1);
        open_fresh_block(channel);
    }
}

void
FlashBlockDevice::open_fresh_block(Channel &channel)
{
    // Caller guarantees a free block exists (GC maintains that).
    channel.open_block = channel.free_blocks.back();
    channel.free_blocks.pop_back();
    EraseBlock &block = channel.blocks[channel.open_block];
    block.open = true;
    block.written_pages = 0;
    block.valid_pages = 0;
}

sim::Duration
FlashBlockDevice::collect_garbage(Channel &channel)
{
    // Greedy victim: the closed block with the fewest valid pages.
    std::uint32_t victim = kUnmapped;
    std::uint32_t best_valid = UINT32_MAX;
    for (std::uint32_t b = 0; b < channel.blocks.size(); ++b) {
        const EraseBlock &block = channel.blocks[b];
        if (block.open || block.written_pages < config_.pages_per_block)
            continue; // only full, closed blocks are victims
        if (block.valid_pages < best_valid) {
            best_valid = block.valid_pages;
            victim = b;
        }
    }
    if (victim == kUnmapped)
        return 0; // nothing reclaimable yet

    ++stats_.gc_runs;
    sim::Duration cost = 0;
    EraseBlock &block = channel.blocks[victim];
    // Relocate the valid pages (read + program each). The relocated
    // pages land in the open block; account for the appends.
    for (std::uint32_t moved = 0; moved < block.valid_pages; ++moved) {
        cost += config_.page_read_latency + config_.page_transfer +
                config_.page_program_latency;
        ++stats_.gc_relocations;
        ++stats_.pages_programmed;
        EraseBlock &open = channel.blocks[channel.open_block];
        if (++open.written_pages >= config_.pages_per_block) {
            open.open = false;
            open_fresh_block(channel);
        }
        channel.blocks[channel.open_block].valid_pages++;
    }
    block.valid_pages = 0;
    block.written_pages = 0;
    cost += config_.block_erase_latency;
    ++stats_.erases;
    channel.free_blocks.push_back(victim);
    return cost;
}

sim::Duration
FlashBlockDevice::program_page(Channel &channel, std::uint64_t lpn)
{
    sim::Duration cost = 0;
    // Invalidate the previous physical copy.
    if (mapping_[lpn] != kUnmapped) {
        EraseBlock &old_block = channel.blocks[mapping_[lpn]];
        if (old_block.valid_pages > 0)
            --old_block.valid_pages;
    }
    // Append into the open block.
    EraseBlock &open = channel.blocks[channel.open_block];
    ++open.written_pages;
    ++open.valid_pages;
    mapping_[lpn] = channel.open_block;
    cost += config_.page_transfer + config_.page_program_latency;
    ++stats_.pages_programmed;
    ++stats_.host_pages_written;

    if (open.written_pages >= config_.pages_per_block) {
        channel.blocks[channel.open_block].open = false;
        open_fresh_block(channel);
    }
    // Keep the free pool above the watermark.
    while (channel.free_blocks.size() < config_.gc_low_watermark_blocks) {
        const sim::Duration gc = collect_garbage(channel);
        if (gc == 0)
            break; // nothing reclaimable (device under-filled)
        cost += gc;
    }
    return cost;
}

util::Status
FlashBlockDevice::read(std::uint64_t offset, std::span<std::byte> out)
{
    if (offset > geometry_.capacity_bytes ||
        out.size() > geometry_.capacity_bytes - offset) {
        return util::out_of_range_error("flash read beyond capacity");
    }
    std::memcpy(out.data(), data_.data() + offset, out.size());
    bytes_read_ += out.size();
    return util::Status::ok();
}

util::Status
FlashBlockDevice::write(std::uint64_t offset, std::span<const std::byte> in)
{
    if (offset > geometry_.capacity_bytes ||
        in.size() > geometry_.capacity_bytes - offset) {
        return util::out_of_range_error("flash write beyond capacity");
    }
    std::memcpy(data_.data() + offset, in.data(), in.size());
    bytes_written_ += in.size();
    return util::Status::ok();
}

sim::Time
FlashBlockDevice::service_read(sim::Time start, std::uint64_t offset,
                               std::uint64_t bytes)
{
    // Pages stripe across channels: each channel serves its share in
    // parallel; the transfer completes when the slowest channel does.
    const std::uint64_t first_lpn = offset / config_.page_bytes;
    const std::uint64_t last_lpn =
        (offset + std::max<std::uint64_t>(bytes, 1) - 1) /
        config_.page_bytes;
    sim::Time done = start;
    for (std::uint64_t lpn = first_lpn; lpn <= last_lpn; ++lpn) {
        Channel &channel = channels_[channel_of(lpn)];
        const sim::Time begin = std::max(start, channel.busy_until);
        channel.busy_until = begin + config_.page_read_latency +
                             config_.page_transfer;
        done = std::max(done, channel.busy_until);
        ++stats_.pages_read;
    }
    return done;
}

sim::Time
FlashBlockDevice::service_write(sim::Time start, std::uint64_t offset,
                                std::uint64_t bytes)
{
    const std::uint64_t first_lpn = offset / config_.page_bytes;
    const std::uint64_t last_lpn =
        (offset + std::max<std::uint64_t>(bytes, 1) - 1) /
        config_.page_bytes;
    sim::Time done = start;
    for (std::uint64_t lpn = first_lpn;
         lpn <= last_lpn && lpn < mapping_.size(); ++lpn) {
        Channel &channel = channels_[channel_of(lpn)];
        const sim::Time begin = std::max(start, channel.busy_until);
        channel.busy_until = begin + program_page(channel, lpn);
        done = std::max(done, channel.busy_until);
    }
    return done;
}

std::uint32_t
FlashBlockDevice::min_free_blocks() const
{
    std::uint32_t least = UINT32_MAX;
    for (const Channel &channel : channels_) {
        least = std::min(
            least, static_cast<std::uint32_t>(channel.free_blocks.size()));
    }
    return least == UINT32_MAX ? 0 : least;
}

} // namespace nesc::storage
