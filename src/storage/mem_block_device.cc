#include "mem_block_device.h"

#include <cstring>
#include <string>

namespace nesc::storage {

MemBlockDevice::MemBlockDevice(const MemBlockDeviceConfig &config)
    : config_(config),
      geometry_{config.capacity_bytes, config.logical_block_size},
      data_(config.capacity_bytes)
{
}

util::Status
MemBlockDevice::check_range(std::uint64_t offset, std::uint64_t size,
                            const char *what) const
{
    if (offset > geometry_.capacity_bytes ||
        size > geometry_.capacity_bytes - offset) {
        return util::out_of_range_error(
            std::string(what) + ": [" + std::to_string(offset) + ", +" +
            std::to_string(size) + ") exceeds capacity " +
            std::to_string(geometry_.capacity_bytes));
    }
    return util::Status::ok();
}

util::Status
MemBlockDevice::read(std::uint64_t offset, std::span<std::byte> out)
{
    NESC_RETURN_IF_ERROR(check_range(offset, out.size(), "device read"));
    std::memcpy(out.data(), data_.data() + offset, out.size());
    bytes_read_ += out.size();
    return util::Status::ok();
}

util::Status
MemBlockDevice::write(std::uint64_t offset, std::span<const std::byte> in)
{
    NESC_RETURN_IF_ERROR(check_range(offset, in.size(), "device write"));
    std::memcpy(data_.data() + offset, in.data(), in.size());
    bytes_written_ += in.size();
    return util::Status::ok();
}

sim::Time
MemBlockDevice::service(sim::Time start, std::uint64_t bytes,
                        std::uint64_t bytes_per_sec)
{
    const sim::Time begin =
        start > port_busy_until_ ? start : port_busy_until_;
    port_busy_until_ = begin + util::transfer_time_ns(bytes, bytes_per_sec);
    return port_busy_until_ + config_.access_latency;
}

sim::Time
MemBlockDevice::service_read(sim::Time start, std::uint64_t offset,
                             std::uint64_t bytes)
{
    (void)offset; // DRAM-class media: address-independent cost
    return service(start, bytes, config_.read_bytes_per_sec);
}

sim::Time
MemBlockDevice::service_write(sim::Time start, std::uint64_t offset,
                              std::uint64_t bytes)
{
    (void)offset;
    return service(start, bytes, config_.write_bytes_per_sec);
}

void
MemBlockDevice::set_rates(std::uint64_t read_bps, std::uint64_t write_bps)
{
    config_.read_bytes_per_sec = read_bps;
    config_.write_bytes_per_sec = write_bps;
}

} // namespace nesc::storage
