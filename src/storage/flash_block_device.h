/**
 * @file
 * Flash (NAND SSD) block device model.
 *
 * The paper motivates NeSC with "next-generation, commercial PCIe SSDs
 * that deliver multi-GB/s bandwidth"; the prototype itself used DRAM.
 * This model lets every experiment run over SSD-like media instead: a
 * page-mapped FTL over multi-channel NAND with asymmetric
 * read/program/erase times, log-structured writes, and greedy garbage
 * collection — so effects like write amplification and GC
 * interference become visible through the NeSC stack.
 *
 * Functional contents live in a flat store (reads always return what
 * was written); the FTL machinery — page mapping, per-channel append
 * points, valid-page accounting, victim selection, erases — drives
 * the *timing* and the statistics, which is where flash differs from
 * DRAM. Channels are independent timing resources; logical pages
 * stripe across them.
 */
#ifndef NESC_STORAGE_FLASH_BLOCK_DEVICE_H
#define NESC_STORAGE_FLASH_BLOCK_DEVICE_H

#include <vector>

#include "storage/block_device.h"

namespace nesc::storage {

/** Flash geometry and timing. */
struct FlashConfig {
    std::uint64_t capacity_bytes = 256ULL << 20; ///< logical capacity
    std::uint32_t logical_block_size = 1024;
    std::uint32_t page_bytes = 4096;      ///< NAND page
    std::uint32_t pages_per_block = 64;   ///< NAND erase block
    std::uint32_t channels = 8;
    /** Physical overprovisioning fraction (extra NAND beyond logical). */
    double overprovision = 0.15;
    /** Start GC on a channel when its free blocks drop below this. */
    std::uint32_t gc_low_watermark_blocks = 2;
    sim::Duration page_read_latency = 40 * 1000;     // 40 us
    sim::Duration page_program_latency = 200 * 1000; // 200 us
    sim::Duration block_erase_latency = 2'000 * 1000; // 2 ms
    /** Per-page channel transfer (bus) time. */
    sim::Duration page_transfer = 10 * 1000; // 10 us
};

/** FTL statistics. */
struct FlashStats {
    std::uint64_t host_pages_written = 0;
    std::uint64_t pages_programmed = 0; ///< host + GC relocations
    std::uint64_t pages_read = 0;
    std::uint64_t gc_relocations = 0;
    std::uint64_t erases = 0;
    std::uint64_t gc_runs = 0;

    /** Programmed / host-written; 1.0 = no amplification. */
    double
    write_amplification() const
    {
        return host_pages_written
                   ? static_cast<double>(pages_programmed) /
                         static_cast<double>(host_pages_written)
                   : 1.0;
    }
};

/** The device; see file comment. */
class FlashBlockDevice : public BlockDevice {
  public:
    explicit FlashBlockDevice(const FlashConfig &config);

    const Geometry &geometry() const override { return geometry_; }

    util::Status read(std::uint64_t offset,
                      std::span<std::byte> out) override;
    util::Status write(std::uint64_t offset,
                       std::span<const std::byte> in) override;

    sim::Time service_read(sim::Time start, std::uint64_t offset,
                           std::uint64_t bytes) override;
    sim::Time service_write(sim::Time start, std::uint64_t offset,
                            std::uint64_t bytes) override;

    std::uint64_t bytes_read() const override { return bytes_read_; }
    std::uint64_t bytes_written() const override { return bytes_written_; }

    const FlashConfig &config() const { return config_; }
    const FlashStats &stats() const { return stats_; }
    /** Free erase blocks on the most-pressured channel. */
    std::uint32_t min_free_blocks() const;

  private:
    /** One NAND erase block's bookkeeping. */
    struct EraseBlock {
        std::uint32_t valid_pages = 0;
        std::uint32_t written_pages = 0; ///< append cursor
        bool open = false;               ///< current program target
    };
    /** Per-channel FTL state + timing horizon. */
    struct Channel {
        std::vector<EraseBlock> blocks;
        std::vector<std::uint32_t> free_blocks; ///< erased, ready
        std::uint32_t open_block = 0;
        sim::Time busy_until = 0;
    };

    /** Logical page -> channel (static striping). */
    std::uint32_t channel_of(std::uint64_t lpn) const
    {
        return static_cast<std::uint32_t>(lpn % config_.channels);
    }

    /** Books one page program on @p channel, running GC if needed. */
    sim::Duration program_page(Channel &channel, std::uint64_t lpn);
    /** Greedy GC: relocate the fullest-invalid block, erase it. */
    sim::Duration collect_garbage(Channel &channel);
    void open_fresh_block(Channel &channel);

    FlashConfig config_;
    Geometry geometry_;
    std::vector<std::byte> data_; ///< flat functional store
    std::vector<Channel> channels_;
    /** lpn -> (block index within its channel), or kUnmapped. */
    std::vector<std::uint32_t> mapping_;
    static constexpr std::uint32_t kUnmapped = UINT32_MAX;
    std::uint64_t bytes_read_ = 0;
    std::uint64_t bytes_written_ = 0;
    FlashStats stats_;
};

} // namespace nesc::storage

#endif // NESC_STORAGE_FLASH_BLOCK_DEVICE_H
