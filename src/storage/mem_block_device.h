/**
 * @file
 * DRAM-backed block device with a configurable bandwidth/latency port.
 *
 * Models both the 1 GB DDR3 store of the VC707 NeSC prototype and the
 * throttled host ramdisks the paper uses for its Figure 2 device-speed
 * sweep. A single media port (one busy horizon) serializes reads and
 * writes, with independent sustained rates per direction.
 */
#ifndef NESC_STORAGE_MEM_BLOCK_DEVICE_H
#define NESC_STORAGE_MEM_BLOCK_DEVICE_H

#include "storage/block_device.h"
#include "util/lazy_pages.h"

namespace nesc::storage {

/** Configuration for a MemBlockDevice. */
struct MemBlockDeviceConfig {
    std::uint64_t capacity_bytes = 1ULL << 30; // 1 GiB, like the VC707
    std::uint32_t logical_block_size = 1024;
    /** Sustained media read rate in bytes/sec; 0 = infinitely fast. */
    std::uint64_t read_bytes_per_sec = 800'000'000; // prototype: 800 MB/s
    /** Sustained media write rate in bytes/sec. */
    std::uint64_t write_bytes_per_sec = 1'000'000'000; // ~1 GB/s
    /** Fixed access latency charged to every media operation. */
    sim::Duration access_latency = 2 * sim::kUs;

    /** The paper's prototype media (defaults above). */
    static MemBlockDeviceConfig vc707_prototype() { return {}; }

    /**
     * A host ramdisk throttled to @p bytes_per_sec in both directions
     * (Figure 2's emulated high-speed devices).
     */
    static MemBlockDeviceConfig
    ramdisk(std::uint64_t bytes_per_sec,
            std::uint64_t capacity_bytes = 1ULL << 30)
    {
        MemBlockDeviceConfig cfg;
        cfg.capacity_bytes = capacity_bytes;
        cfg.read_bytes_per_sec = bytes_per_sec;
        cfg.write_bytes_per_sec = bytes_per_sec;
        cfg.access_latency = 300; // DRAM-class access
        return cfg;
    }
};

/** In-memory block device; see MemBlockDeviceConfig. */
class MemBlockDevice : public BlockDevice {
  public:
    explicit MemBlockDevice(const MemBlockDeviceConfig &config);

    const Geometry &geometry() const override { return geometry_; }

    util::Status read(std::uint64_t offset,
                      std::span<std::byte> out) override;
    util::Status write(std::uint64_t offset,
                       std::span<const std::byte> in) override;

    sim::Time service_read(sim::Time start, std::uint64_t offset,
                           std::uint64_t bytes) override;
    sim::Time service_write(sim::Time start, std::uint64_t offset,
                            std::uint64_t bytes) override;

    std::uint64_t bytes_read() const override { return bytes_read_; }
    std::uint64_t bytes_written() const override { return bytes_written_; }

    const MemBlockDeviceConfig &config() const { return config_; }

    /** Re-throttles the media port (used by bandwidth-sweep benches). */
    void set_rates(std::uint64_t read_bps, std::uint64_t write_bps);

  private:
    util::Status check_range(std::uint64_t offset, std::uint64_t size,
                             const char *what) const;
    sim::Time service(sim::Time start, std::uint64_t bytes,
                      std::uint64_t bytes_per_sec);

    MemBlockDeviceConfig config_;
    Geometry geometry_;
    util::LazyBytes data_;
    sim::Time port_busy_until_ = 0;
    std::uint64_t bytes_read_ = 0;
    std::uint64_t bytes_written_ = 0;
};

} // namespace nesc::storage

#endif // NESC_STORAGE_MEM_BLOCK_DEVICE_H
