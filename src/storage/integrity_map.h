/**
 * @file
 * Per-pLBA CRC32C sidecar — the device-resident checksum store behind
 * the end-to-end integrity path.
 *
 * The sidecar occupies a reserved region at the tail of the physical
 * media, sized at format time: one little-endian uint32 per data block
 * plus a one-block header (magic, version, geometry). The controller
 * records a block's CRC on every media write and verifies it on every
 * media read; a mismatch never reaches the guest — it either heals
 * through the recovery ladder (re-read, then replica repair) or
 * surfaces as a kChecksumError completion.
 *
 * The checksum table is kept in memory (the device would hold it in
 * controller SRAM) and written through to the sidecar region so a
 * remounted volume can load() it back; format() checksums whatever the
 * media already holds, so a volume with pre-existing data (e.g. a
 * freshly formatted nestfs) starts consistent.
 */
#ifndef NESC_STORAGE_INTEGRITY_MAP_H
#define NESC_STORAGE_INTEGRITY_MAP_H

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "storage/block_device.h"
#include "util/status.h"

namespace nesc::storage {

/** On-media sidecar header (block 0 of the reserved region). */
struct IntegrityHeader {
    std::uint64_t magic = 0;
    std::uint32_t version = 0;
    std::uint32_t block_size = 0;
    std::uint64_t data_blocks = 0;
    /** CRC32C of the header with this field zeroed. */
    std::uint32_t header_crc = 0;
    std::uint32_t pad = 0;
};

/** The per-pLBA checksum store; see file comment. */
class IntegrityMap {
  public:
    static constexpr std::uint64_t kMagic = 0x4e455343'43524332ULL;
    static constexpr std::uint32_t kVersion = 1;

    /**
     * Blocks the sidecar reserves at the media tail for @p data_blocks
     * data blocks of @p block_size bytes (header block included).
     */
    static std::uint64_t sidecar_blocks(std::uint64_t data_blocks,
                                        std::uint32_t block_size);

    /**
     * Formats the sidecar over @p device: blocks [0, data_blocks) are
     * data, [data_blocks, data_blocks + sidecar_blocks) become the
     * checksum region. The current contents of every data block are
     * checksummed, so pre-existing data verifies clean.
     */
    static util::Result<std::unique_ptr<IntegrityMap>>
    format(BlockDevice &device, std::uint64_t data_blocks);

    /**
     * Loads a previously formatted sidecar; DATA_LOSS on a bad header
     * (magic/version/geometry mismatch).
     */
    static util::Result<std::unique_ptr<IntegrityMap>>
    load(BlockDevice &device, std::uint64_t data_blocks);

    std::uint64_t data_blocks() const { return data_blocks_; }
    std::uint32_t block_size() const { return block_size_; }
    bool covers(std::uint64_t plba) const { return plba < data_blocks_; }

    /** The recorded CRC of @p plba (0 for uncovered blocks). */
    std::uint32_t expected(std::uint64_t plba) const;

    /**
     * Records the CRC of one data block's new contents and writes the
     * owning sidecar block through to the media. @p data must be
     * exactly one block.
     */
    util::Status record(std::uint64_t plba, std::span<const std::byte> data);

    /**
     * Verifies one block's contents against the recorded CRC. Uncovered
     * blocks verify clean (the sidecar region itself, or media tails
     * the map was not formatted over). Counts the mismatch.
     */
    bool verify(std::uint64_t plba, std::span<const std::byte> data);

    // --- Counters (device-internal telemetry) -----------------------

    std::uint64_t records() const { return records_; }
    std::uint64_t verifies() const { return verifies_; }
    std::uint64_t mismatches() const { return mismatches_; }

  private:
    IntegrityMap(BlockDevice &device, std::uint64_t data_blocks);

    /** CRCs per sidecar table block. */
    std::uint32_t entries_per_block() const
    {
        return block_size_ / sizeof(std::uint32_t);
    }

    /** Writes the sidecar table block holding @p plba's entry. */
    util::Status write_table_block(std::uint64_t plba);

    util::Status write_header();

    BlockDevice &device_;
    std::uint64_t data_blocks_;
    std::uint32_t block_size_;
    std::vector<std::uint32_t> table_;

    std::uint64_t records_ = 0;
    std::uint64_t verifies_ = 0;
    std::uint64_t mismatches_ = 0;
};

} // namespace nesc::storage

#endif // NESC_STORAGE_INTEGRITY_MAP_H
