/**
 * @file
 * Fault-injecting decorator over any BlockDevice.
 *
 * Real storage controllers are qualified against media failures, not
 * just the happy path; this decorator lets every test and bench run
 * the same pipeline under a deterministic error model. A seeded
 * FaultPlan drives four fault classes:
 *
 *   - hard media errors (DATA_LOSS) on reads and/or writes, drawn
 *     per-operation from independent probabilities;
 *   - transient errors (UNAVAILABLE) that a fresh retry of the same
 *     operation may survive;
 *   - latent bad-block ranges that fail every access overlapping them
 *     (the classic grown-defect list);
 *   - silent bit corruption: the read succeeds but one bit of the
 *     returned payload is flipped (detectable only end-to-end);
 *   - stalls: the operation succeeds but completes arbitrarily late
 *     (a sick disk, a dropped-and-retried fabric frame). Stalls are a
 *     timing fault: they stretch service_read/service_write without
 *     touching the functional result, which is what failover timeout
 *     logic has to be exercised against.
 *
 * Faults can also be scheduled by operation index, which gives tests
 * single-shot deterministic triggers without probability tuning. The
 * timing path (service_read/service_write) is otherwise forwarded
 * untouched: failed media operations still occupy the media port, as
 * they do on real hardware. Stall draws come from a separate RNG
 * stream and a separate (timing-)op index space, so enabling them
 * never perturbs the functional fault stream of an existing seed.
 */
#ifndef NESC_STORAGE_FAULTY_BLOCK_DEVICE_H
#define NESC_STORAGE_FAULTY_BLOCK_DEVICE_H

#include <vector>

#include "storage/block_device.h"
#include "util/rng.h"
#include "util/stats.h"

namespace nesc::storage {

/** Fault classes the decorator can inject. */
enum class InjectedFault : std::uint8_t {
    kNone = 0,
    kReadError,  ///< hard media error on a read (DATA_LOSS)
    kWriteError, ///< hard media error on a write (DATA_LOSS)
    kTransient,  ///< transient failure (UNAVAILABLE); retry may succeed
    kCorrupt,    ///< silent single-bit flip in returned read data
    kStall,      ///< completes correctly but arbitrarily late (timing)
    kCorruptSticky, ///< bit flip in the *stored* block (persistent bitrot)
};

/** A block range that always fails (grown media defect). */
struct BadBlockRange {
    std::uint64_t first_block = 0;
    std::uint64_t nblocks = 0;
};

/** A single-shot fault triggered at the Nth media operation. */
struct ScheduledFault {
    /**
     * Zero-based index in the combined read+write operation stream.
     * kStall entries index the *timing*-op stream (service_read/
     * service_write calls) instead; the two spaces are independent.
     */
    std::uint64_t op_index = 0;
    InjectedFault kind = InjectedFault::kNone;
};

/** Seeded description of what to inject and how often. */
struct FaultPlan {
    std::uint64_t seed = 1;
    /** Per-read probability of a hard media error. */
    double read_error_prob = 0.0;
    /** Per-write probability of a hard media error. */
    double write_error_prob = 0.0;
    /** Per-op probability of a transient UNAVAILABLE (both directions). */
    double transient_prob = 0.0;
    /** Per-read probability of a silent bit flip in the payload. */
    double corrupt_prob = 0.0;
    /**
     * Per-op probability of a *sticky* bit flip: the stored block is
     * damaged in place (bitrot), so the corruption persists for later
     * reads and the background scrubber to find. Drawn from its own
     * RNG stream, so enabling it never perturbs existing seeds.
     */
    double corrupt_sticky_prob = 0.0;
    /** Per-timing-op probability of a stall (drawn from its own RNG). */
    double stall_prob = 0.0;
    /** Extra completion delay a stalled operation suffers. */
    sim::Duration stall_ns = 10'000'000; // 10 ms
    /** Ranges (device blocks) that fail every overlapping access. */
    std::vector<BadBlockRange> bad_blocks;
    /** Deterministic single-shot triggers, by media-op index. */
    std::vector<ScheduledFault> schedule;
};

/** BlockDevice decorator injecting faults per a FaultPlan. */
class FaultyBlockDevice : public BlockDevice {
  public:
    /** @p inner must outlive the decorator. */
    FaultyBlockDevice(BlockDevice &inner, const FaultPlan &plan);

    const Geometry &geometry() const override { return inner_.geometry(); }

    util::Status read(std::uint64_t offset,
                      std::span<std::byte> out) override;
    util::Status write(std::uint64_t offset,
                       std::span<const std::byte> in) override;

    sim::Time
    service_read(sim::Time start, std::uint64_t offset,
                 std::uint64_t bytes) override
    {
        return inner_.service_read(start, offset, bytes) + draw_stall();
    }
    sim::Time
    service_write(sim::Time start, std::uint64_t offset,
                  std::uint64_t bytes) override
    {
        return inner_.service_write(start, offset, bytes) + draw_stall();
    }

    std::uint64_t bytes_read() const override { return inner_.bytes_read(); }
    std::uint64_t bytes_written() const override
    {
        return inner_.bytes_written();
    }

    const FaultPlan &plan() const { return plan_; }
    BlockDevice &inner() { return inner_; }

    /**
     * Injection accounting: `injected_faults` (total) plus one counter
     * per class (`read_media_errors`, `write_media_errors`,
     * `transient_faults`, `silent_corruptions`, `sticky_corruptions`,
     * `bad_block_hits`, `stall_faults`).
     */
    const util::CounterGroup &counters() const { return counters_; }

    /** Media operations observed so far (schedule index space). */
    std::uint64_t ops_seen() const { return op_index_; }
    /** Timing operations observed so far (kStall schedule space). */
    std::uint64_t timing_ops_seen() const { return timing_op_index_; }

  private:
    /** Picks the fault (if any) for the current op; advances the RNG. */
    InjectedFault draw(bool is_read, std::uint64_t offset,
                       std::uint64_t bytes);
    /** Stall delay (0 when none) for the current timing op. */
    sim::Duration draw_stall();
    /**
     * Sticky-corruption draw for functional op @p index over @p bytes:
     * 0 when no corruption strikes, otherwise 1 + the bit to flip.
     * Always consumes exactly one sticky-stream probability draw.
     */
    std::uint64_t draw_sticky(std::uint64_t index, std::uint64_t bytes);
    /** Flips stored bit @p bit of the range at @p offset in place. */
    void damage_stored_bit(std::uint64_t offset, std::uint64_t bit);
    bool overlaps_bad_range(std::uint64_t offset, std::uint64_t bytes) const;

    BlockDevice &inner_;
    FaultPlan plan_;
    util::Rng rng_;
    /** Independent stream so stalls never shift the functional draws. */
    util::Rng stall_rng_;
    /** Independent stream for sticky corruption (same isolation rule). */
    util::Rng sticky_rng_;
    util::CounterGroup counters_;
    std::uint64_t op_index_ = 0;
    std::uint64_t timing_op_index_ = 0;
};

} // namespace nesc::storage

#endif // NESC_STORAGE_FAULTY_BLOCK_DEVICE_H
