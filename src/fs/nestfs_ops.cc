/**
 * @file
 * nestfs namespace, data-path, attribute and NeSC-integration
 * operations (the storage/metadata plumbing lives in nestfs.cc).
 */
#include <algorithm>
#include <cstring>

#include "fs/extent_map.h"
#include "fs/nestfs.h"
#include "util/units.h"

namespace nesc::fs {

using extent::Extent;
using extent::ExtentList;
using extent::Plba;
using extent::Vlba;

namespace {

util::Result<std::vector<std::string>>
split_path_ops(std::string_view path)
{
    if (path.empty() || path.front() != '/')
        return util::invalid_argument_error("path must be absolute: " +
                                            std::string(path));
    std::vector<std::string> parts;
    std::size_t i = 1;
    while (i < path.size()) {
        std::size_t j = path.find('/', i);
        if (j == std::string_view::npos)
            j = path.size();
        if (j > i) {
            std::string_view comp = path.substr(i, j - i);
            if (comp == "." || comp == "..")
                return util::invalid_argument_error(
                    "'.'/'..' components are not supported");
            if (comp.size() > kMaxNameLen)
                return util::invalid_argument_error("name too long: " +
                                                    std::string(comp));
            parts.emplace_back(comp);
        }
        i = j + 1;
    }
    return parts;
}

} // namespace

// --------------------------------------------------------------------
// Permission checks
// --------------------------------------------------------------------

util::Status
NestFs::check_access(InodeId ino, Access access, const Credentials &creds)
{
    NESC_ASSIGN_OR_RETURN(CachedInode * inode, load_inode(ino));
    if (creds.is_superuser())
        return util::Status::ok();
    const std::uint16_t perm = inode->disk.perm;
    unsigned shift;
    if (creds.uid == inode->disk.uid)
        shift = 6;
    else if (creds.gid == inode->disk.gid)
        shift = 3;
    else
        shift = 0;
    const unsigned need = access == Access::kRead ? 4u : 2u;
    if (((perm >> shift) & need) != need) {
        return util::permission_denied_error(
            "inode " + std::to_string(ino) + ": uid " +
            std::to_string(creds.uid) + " lacks " +
            (access == Access::kRead ? "read" : "write") + " permission");
    }
    return util::Status::ok();
}

// --------------------------------------------------------------------
// Directories
// --------------------------------------------------------------------

util::Result<InodeId>
NestFs::dir_lookup(InodeId dir, std::string_view name)
{
    NESC_ASSIGN_OR_RETURN(CachedInode * inode, load_inode(dir));
    if (inode->disk.type != static_cast<std::uint16_t>(FileType::kDirectory))
        return util::invalid_argument_error("not a directory");
    NESC_RETURN_IF_ERROR(load_extents(*inode));

    const std::uint64_t nblocks = inode->disk.size_bytes / kFsBlockSize;
    std::vector<std::byte> block(kFsBlockSize);
    for (std::uint64_t vb = 0; vb < nblocks; ++vb) {
        auto pblock = map_lookup(inode->extents, vb);
        if (!pblock)
            return util::data_loss_error("directory with a hole");
        NESC_RETURN_IF_ERROR(meta_read(*pblock, block));
        for (std::uint32_t s = 0; s < kDirEntriesPerBlock; ++s) {
            DirEntryRecord rec;
            std::memcpy(&rec, block.data() + s * sizeof(rec), sizeof(rec));
            if (rec.ino == kInvalidInode)
                continue;
            if (std::string_view(rec.name, rec.name_len) == name)
                return rec.ino;
        }
    }
    return util::not_found_error("no entry '" + std::string(name) + "'");
}

util::Status
NestFs::dir_add(InodeId dir, std::string_view name, InodeId target,
                FileType type)
{
    NESC_ASSIGN_OR_RETURN(CachedInode * inode, load_inode(dir));
    NESC_RETURN_IF_ERROR(load_extents(*inode));

    DirEntryRecord rec{};
    rec.ino = target;
    rec.name_len = static_cast<std::uint8_t>(name.size());
    rec.file_type = static_cast<std::uint8_t>(type);
    std::memcpy(rec.name, name.data(), name.size());

    // Find a free slot in the existing blocks.
    const std::uint64_t nblocks = inode->disk.size_bytes / kFsBlockSize;
    std::vector<std::byte> block(kFsBlockSize);
    for (std::uint64_t vb = 0; vb < nblocks; ++vb) {
        auto pblock = map_lookup(inode->extents, vb);
        if (!pblock)
            return util::data_loss_error("directory with a hole");
        NESC_RETURN_IF_ERROR(meta_read(*pblock, block));
        for (std::uint32_t s = 0; s < kDirEntriesPerBlock; ++s) {
            DirEntryRecord existing;
            std::memcpy(&existing, block.data() + s * sizeof(existing),
                        sizeof(existing));
            if (existing.ino != kInvalidInode)
                continue;
            std::memcpy(block.data() + s * sizeof(rec), &rec, sizeof(rec));
            return meta_write(*pblock, block);
        }
    }

    // Grow the directory by one block.
    NESC_RETURN_IF_ERROR(ensure_allocated(*inode, nblocks,
                                          /*zero_fill=*/true));
    inode->disk.size_bytes += kFsBlockSize;
    inode->disk.mtime_ns = now_ns();
    NESC_RETURN_IF_ERROR(store_extents(dir, *inode));
    auto pblock = map_lookup(inode->extents, nblocks);
    if (!pblock)
        return util::internal_error("dir grow failed to map block");
    std::fill(block.begin(), block.end(), std::byte{0});
    std::memcpy(block.data(), &rec, sizeof(rec));
    return meta_write(*pblock, block);
}

util::Status
NestFs::dir_remove(InodeId dir, std::string_view name)
{
    NESC_ASSIGN_OR_RETURN(CachedInode * inode, load_inode(dir));
    NESC_RETURN_IF_ERROR(load_extents(*inode));
    const std::uint64_t nblocks = inode->disk.size_bytes / kFsBlockSize;
    std::vector<std::byte> block(kFsBlockSize);
    for (std::uint64_t vb = 0; vb < nblocks; ++vb) {
        auto pblock = map_lookup(inode->extents, vb);
        if (!pblock)
            return util::data_loss_error("directory with a hole");
        NESC_RETURN_IF_ERROR(meta_read(*pblock, block));
        for (std::uint32_t s = 0; s < kDirEntriesPerBlock; ++s) {
            DirEntryRecord rec;
            std::memcpy(&rec, block.data() + s * sizeof(rec), sizeof(rec));
            if (rec.ino == kInvalidInode ||
                std::string_view(rec.name, rec.name_len) != name)
                continue;
            rec = DirEntryRecord{};
            std::memcpy(block.data() + s * sizeof(rec), &rec, sizeof(rec));
            return meta_write(*pblock, block);
        }
    }
    return util::not_found_error("no entry '" + std::string(name) + "'");
}

util::Result<bool>
NestFs::dir_empty(InodeId dir)
{
    NESC_ASSIGN_OR_RETURN(CachedInode * inode, load_inode(dir));
    NESC_RETURN_IF_ERROR(load_extents(*inode));
    const std::uint64_t nblocks = inode->disk.size_bytes / kFsBlockSize;
    std::vector<std::byte> block(kFsBlockSize);
    for (std::uint64_t vb = 0; vb < nblocks; ++vb) {
        auto pblock = map_lookup(inode->extents, vb);
        if (!pblock)
            return util::data_loss_error("directory with a hole");
        NESC_RETURN_IF_ERROR(meta_read(*pblock, block));
        for (std::uint32_t s = 0; s < kDirEntriesPerBlock; ++s) {
            DirEntryRecord rec;
            std::memcpy(&rec, block.data() + s * sizeof(rec), sizeof(rec));
            if (rec.ino != kInvalidInode)
                return false;
        }
    }
    return true;
}

// --------------------------------------------------------------------
// Paths & namespace
// --------------------------------------------------------------------

util::Result<InodeId>
NestFs::resolve(std::string_view path)
{
    NESC_ASSIGN_OR_RETURN(auto parts, split_path_ops(path));
    InodeId current = kRootInode;
    for (const std::string &name : parts) {
        NESC_ASSIGN_OR_RETURN(current, dir_lookup(current, name));
    }
    return current;
}

util::Result<NestFs::ResolvedParent>
NestFs::resolve_parent(std::string_view path)
{
    NESC_ASSIGN_OR_RETURN(auto parts, split_path_ops(path));
    if (parts.empty())
        return util::invalid_argument_error("path names the root");
    InodeId current = kRootInode;
    for (std::size_t i = 0; i + 1 < parts.size(); ++i) {
        NESC_ASSIGN_OR_RETURN(current, dir_lookup(current, parts[i]));
    }
    return ResolvedParent{current, parts.back()};
}

util::Result<InodeId>
NestFs::create(std::string_view path, std::uint16_t perm,
               const Credentials &creds)
{
    NESC_ASSIGN_OR_RETURN(auto rp, resolve_parent(path));
    NESC_RETURN_IF_ERROR(check_access(rp.parent, Access::kWrite, creds));
    auto existing = dir_lookup(rp.parent, rp.leaf);
    if (existing.is_ok())
        return util::already_exists_error(std::string(path) + " exists");
    NESC_ASSIGN_OR_RETURN(InodeId ino,
                          alloc_inode(FileType::kRegular, perm, creds));
    NESC_RETURN_IF_ERROR(dir_add(rp.parent, rp.leaf, ino,
                                 FileType::kRegular));
    NESC_RETURN_IF_ERROR(commit_meta());
    ++counters_["files_created"];
    return ino;
}

util::Result<InodeId>
NestFs::mkdir(std::string_view path, std::uint16_t perm,
              const Credentials &creds)
{
    NESC_ASSIGN_OR_RETURN(auto rp, resolve_parent(path));
    NESC_RETURN_IF_ERROR(check_access(rp.parent, Access::kWrite, creds));
    auto existing = dir_lookup(rp.parent, rp.leaf);
    if (existing.is_ok())
        return util::already_exists_error(std::string(path) + " exists");
    NESC_ASSIGN_OR_RETURN(InodeId ino,
                          alloc_inode(FileType::kDirectory, perm, creds));
    NESC_RETURN_IF_ERROR(dir_add(rp.parent, rp.leaf, ino,
                                 FileType::kDirectory));
    NESC_RETURN_IF_ERROR(commit_meta());
    return ino;
}

util::Result<InodeId>
NestFs::mkdir_p(std::string_view path, std::uint16_t perm,
                const Credentials &creds)
{
    NESC_ASSIGN_OR_RETURN(auto parts, split_path_ops(path));
    InodeId current = kRootInode;
    std::string prefix;
    for (const std::string &name : parts) {
        prefix += '/';
        prefix += name;
        auto found = dir_lookup(current, name);
        if (found.is_ok()) {
            current = found.value();
            continue;
        }
        if (found.status().code() != util::ErrorCode::kNotFound)
            return found.status();
        NESC_ASSIGN_OR_RETURN(current, mkdir(prefix, perm, creds));
    }
    return current;
}

util::Status
NestFs::unlink(std::string_view path, const Credentials &creds)
{
    NESC_ASSIGN_OR_RETURN(auto rp, resolve_parent(path));
    NESC_RETURN_IF_ERROR(check_access(rp.parent, Access::kWrite, creds));
    NESC_ASSIGN_OR_RETURN(InodeId ino, dir_lookup(rp.parent, rp.leaf));
    NESC_ASSIGN_OR_RETURN(CachedInode * inode, load_inode(ino));
    if (inode->disk.type != static_cast<std::uint16_t>(FileType::kRegular))
        return util::invalid_argument_error("unlink of a directory");
    NESC_RETURN_IF_ERROR(dir_remove(rp.parent, rp.leaf));
    if (--inode->disk.nlink == 0) {
        NESC_RETURN_IF_ERROR(load_extents(*inode));
        for (const Extent &e : inode->extents)
            NESC_RETURN_IF_ERROR(free_block_range(e.first_pblock,
                                                  e.nblocks));
        inode->extents.clear();
        NESC_RETURN_IF_ERROR(store_extents(ino, *inode));
        NESC_RETURN_IF_ERROR(free_inode(ino));
    } else {
        NESC_RETURN_IF_ERROR(store_inode(ino));
    }
    NESC_RETURN_IF_ERROR(commit_meta());
    ++counters_["files_unlinked"];
    return util::Status::ok();
}

util::Status
NestFs::rename(std::string_view from, std::string_view to,
               const Credentials &creds)
{
    NESC_ASSIGN_OR_RETURN(auto src, resolve_parent(from));
    NESC_ASSIGN_OR_RETURN(auto dst, resolve_parent(to));
    NESC_RETURN_IF_ERROR(check_access(src.parent, Access::kWrite, creds));
    NESC_RETURN_IF_ERROR(check_access(dst.parent, Access::kWrite, creds));
    NESC_ASSIGN_OR_RETURN(InodeId ino, dir_lookup(src.parent, src.leaf));
    NESC_ASSIGN_OR_RETURN(CachedInode * inode, load_inode(ino));
    const auto type = static_cast<FileType>(inode->disk.type);

    if (type == FileType::kDirectory) {
        // Reject moving a directory under itself (would orphan the
        // subtree). Walk up from the destination parent.
        InodeId cursor = dst.parent;
        // Bounded walk: re-resolve the destination path's prefix chain
        // by path instead of parent pointers (nestfs stores none), so
        // simply compare resolved prefixes.
        if (to.size() > from.size() &&
            to.substr(0, from.size()) == from &&
            to[from.size()] == '/') {
            return util::invalid_argument_error(
                "cannot move a directory into itself");
        }
        (void)cursor;
    }

    auto existing = dir_lookup(dst.parent, dst.leaf);
    if (existing.is_ok()) {
        if (existing.value() == ino)
            return util::Status::ok(); // rename to itself
        NESC_ASSIGN_OR_RETURN(CachedInode * target,
                              load_inode(existing.value()));
        if (target->disk.type ==
            static_cast<std::uint16_t>(FileType::kDirectory)) {
            return util::failed_precondition_error(
                "rename target is a directory");
        }
        if (type == FileType::kDirectory) {
            return util::failed_precondition_error(
                "directory cannot replace a file");
        }
        // POSIX: silently replace the target file.
        NESC_RETURN_IF_ERROR(unlink(to, creds));
    }

    NESC_RETURN_IF_ERROR(dir_remove(src.parent, src.leaf));
    NESC_RETURN_IF_ERROR(dir_add(dst.parent, dst.leaf, ino, type));
    inode->disk.mtime_ns = now_ns();
    NESC_RETURN_IF_ERROR(store_inode(ino));
    NESC_RETURN_IF_ERROR(commit_meta());
    ++counters_["renames"];
    return util::Status::ok();
}

util::Status
NestFs::rmdir(std::string_view path, const Credentials &creds)
{
    NESC_ASSIGN_OR_RETURN(auto rp, resolve_parent(path));
    NESC_RETURN_IF_ERROR(check_access(rp.parent, Access::kWrite, creds));
    NESC_ASSIGN_OR_RETURN(InodeId ino, dir_lookup(rp.parent, rp.leaf));
    NESC_ASSIGN_OR_RETURN(CachedInode * inode, load_inode(ino));
    if (inode->disk.type != static_cast<std::uint16_t>(FileType::kDirectory))
        return util::invalid_argument_error("rmdir of a file");
    NESC_ASSIGN_OR_RETURN(bool empty, dir_empty(ino));
    if (!empty)
        return util::failed_precondition_error("directory not empty");
    NESC_RETURN_IF_ERROR(dir_remove(rp.parent, rp.leaf));
    NESC_RETURN_IF_ERROR(load_extents(*inode));
    for (const Extent &e : inode->extents)
        NESC_RETURN_IF_ERROR(free_block_range(e.first_pblock, e.nblocks));
    inode->extents.clear();
    NESC_RETURN_IF_ERROR(store_extents(ino, *inode));
    NESC_RETURN_IF_ERROR(free_inode(ino));
    return commit_meta();
}

util::Result<std::vector<DirEntry>>
NestFs::readdir(std::string_view path)
{
    NESC_ASSIGN_OR_RETURN(InodeId dir, resolve(path));
    NESC_ASSIGN_OR_RETURN(CachedInode * inode, load_inode(dir));
    if (inode->disk.type != static_cast<std::uint16_t>(FileType::kDirectory))
        return util::invalid_argument_error("not a directory");
    NESC_RETURN_IF_ERROR(load_extents(*inode));
    std::vector<DirEntry> out;
    const std::uint64_t nblocks = inode->disk.size_bytes / kFsBlockSize;
    std::vector<std::byte> block(kFsBlockSize);
    for (std::uint64_t vb = 0; vb < nblocks; ++vb) {
        auto pblock = map_lookup(inode->extents, vb);
        if (!pblock)
            return util::data_loss_error("directory with a hole");
        NESC_RETURN_IF_ERROR(meta_read(*pblock, block));
        for (std::uint32_t s = 0; s < kDirEntriesPerBlock; ++s) {
            DirEntryRecord rec;
            std::memcpy(&rec, block.data() + s * sizeof(rec), sizeof(rec));
            if (rec.ino == kInvalidInode)
                continue;
            out.push_back(DirEntry{rec.ino,
                                   static_cast<FileType>(rec.file_type),
                                   std::string(rec.name, rec.name_len)});
        }
    }
    return out;
}

// --------------------------------------------------------------------
// Data path
// --------------------------------------------------------------------

util::Status
NestFs::ensure_allocated(CachedInode &inode, std::uint64_t vblock,
                         bool zero_fill)
{
    if (map_lookup(inode.extents, vblock).has_value())
        return util::Status::ok();
    // Goal: physically after the previous file block for contiguity.
    Plba goal = 0;
    if (auto prev = map_lookup(inode.extents, vblock ? vblock - 1 : 0))
        goal = *prev + 1;
    NESC_ASSIGN_OR_RETURN(Plba pblock, alloc_block(goal));
    map_insert_block(inode.extents, vblock, pblock);
    if (zero_fill) {
        std::vector<std::byte> zero(kFsBlockSize);
        NESC_RETURN_IF_ERROR(io_.write_blocks(pblock, 1, zero));
    }
    return util::Status::ok();
}

util::Result<std::uint64_t>
NestFs::read(InodeId ino, std::uint64_t offset, std::span<std::byte> out,
             const Credentials &creds)
{
    NESC_RETURN_IF_ERROR(check_access(ino, Access::kRead, creds));
    NESC_ASSIGN_OR_RETURN(CachedInode * inode, load_inode(ino));
    NESC_RETURN_IF_ERROR(load_extents(*inode));
    if (offset >= inode->disk.size_bytes)
        return std::uint64_t{0};
    const std::uint64_t to_read =
        std::min<std::uint64_t>(out.size(), inode->disk.size_bytes - offset);

    const bool journal_data = journal_mode() == JournalMode::kData;
    std::uint64_t done = 0;
    std::vector<std::byte> scratch(kFsBlockSize);
    while (done < to_read) {
        const std::uint64_t pos = offset + done;
        const Vlba vblock = pos / kFsBlockSize;
        const std::uint64_t in_block = pos % kFsBlockSize;
        auto ext = map_lookup_extent(inode->extents, vblock);
        if (!ext) {
            // Hole: zero-fill to the end of the unmapped stretch (or
            // just this block; per-block is simple and correct).
            const std::uint64_t n = std::min<std::uint64_t>(
                kFsBlockSize - in_block, to_read - done);
            std::memset(out.data() + done, 0, n);
            done += n;
            continue;
        }
        // Contiguous mapped run starting at vblock, limited by extent.
        const std::uint64_t run_blocks = ext->end_vblock() - vblock;
        const Plba pblock = ext->translate(vblock);
        if (in_block == 0 && to_read - done >= kFsBlockSize &&
            !journal_data) {
            const std::uint64_t whole =
                std::min<std::uint64_t>(run_blocks,
                                        (to_read - done) / kFsBlockSize);
            NESC_RETURN_IF_ERROR(io_.read_blocks(
                pblock, static_cast<std::uint32_t>(whole),
                out.subspan(done, whole * kFsBlockSize)));
            done += whole * kFsBlockSize;
            continue;
        }
        // Partial block (or data-journal readthrough): one block RMW.
        if (journal_data)
            NESC_RETURN_IF_ERROR(meta_read(pblock, scratch));
        else
            NESC_RETURN_IF_ERROR(io_.read_blocks(pblock, 1, scratch));
        const std::uint64_t n = std::min<std::uint64_t>(
            kFsBlockSize - in_block, to_read - done);
        std::memcpy(out.data() + done, scratch.data() + in_block, n);
        done += n;
    }
    counters_["bytes_read"] += to_read;
    return to_read;
}

util::Status
NestFs::write(InodeId ino, std::uint64_t offset,
              std::span<const std::byte> in, const Credentials &creds)
{
    NESC_RETURN_IF_ERROR(check_access(ino, Access::kWrite, creds));
    NESC_ASSIGN_OR_RETURN(CachedInode * inode, load_inode(ino));
    if (inode->disk.type == static_cast<std::uint16_t>(FileType::kDirectory))
        return util::invalid_argument_error("write to a directory");
    NESC_RETURN_IF_ERROR(load_extents(*inode));

    const bool journal_data = journal_mode() == JournalMode::kData;
    std::uint64_t done = 0;
    std::vector<std::byte> scratch(kFsBlockSize);
    while (done < in.size()) {
        const std::uint64_t pos = offset + done;
        const Vlba vblock = pos / kFsBlockSize;
        const std::uint64_t in_block = pos % kFsBlockSize;
        const bool was_mapped =
            map_lookup(inode->extents, vblock).has_value();
        NESC_RETURN_IF_ERROR(
            ensure_allocated(*inode, vblock, /*zero_fill=*/false));
        auto ext = map_lookup_extent(inode->extents, vblock);
        const Plba pblock = ext->translate(vblock);

        if (in_block == 0 && in.size() - done >= kFsBlockSize) {
            // Full-block path; batch the contiguous mapped run as long
            // as the following blocks are also full overwrites. The
            // run must be re-checked block by block because allocation
            // happens lazily; only already-contiguous spans batch.
            std::uint64_t whole = std::min<std::uint64_t>(
                ext->end_vblock() - vblock, (in.size() - done) / kFsBlockSize);
            if (journal_data) {
                for (std::uint64_t b = 0; b < whole; ++b) {
                    NESC_RETURN_IF_ERROR(meta_write(
                        pblock + b,
                        in.subspan(done + b * kFsBlockSize, kFsBlockSize)));
                }
            } else {
                NESC_RETURN_IF_ERROR(io_.write_blocks(
                    pblock, static_cast<std::uint32_t>(whole),
                    in.subspan(done, whole * kFsBlockSize)));
            }
            done += whole * kFsBlockSize;
        } else {
            // Partial block: read-modify-write (zero base if fresh).
            const bool need_read =
                was_mapped &&
                (pos < inode->disk.size_bytes || in_block != 0);
            if (need_read) {
                if (journal_data)
                    NESC_RETURN_IF_ERROR(meta_read(pblock, scratch));
                else
                    NESC_RETURN_IF_ERROR(io_.read_blocks(pblock, 1,
                                                         scratch));
            } else {
                std::fill(scratch.begin(), scratch.end(), std::byte{0});
            }
            const std::uint64_t n = std::min<std::uint64_t>(
                kFsBlockSize - in_block, in.size() - done);
            std::memcpy(scratch.data() + in_block, in.data() + done, n);
            if (journal_data)
                NESC_RETURN_IF_ERROR(meta_write(pblock, scratch));
            else
                NESC_RETURN_IF_ERROR(io_.write_blocks(pblock, 1, scratch));
            done += n;
        }
    }

    inode->disk.size_bytes =
        std::max<std::uint64_t>(inode->disk.size_bytes, offset + in.size());
    inode->disk.mtime_ns = now_ns();
    NESC_RETURN_IF_ERROR(store_extents(ino, *inode));
    NESC_RETURN_IF_ERROR(commit_meta());
    counters_["bytes_written"] += in.size();
    return util::Status::ok();
}

util::Status
NestFs::truncate(InodeId ino, std::uint64_t new_size,
                 const Credentials &creds)
{
    NESC_RETURN_IF_ERROR(check_access(ino, Access::kWrite, creds));
    NESC_ASSIGN_OR_RETURN(CachedInode * inode, load_inode(ino));
    NESC_RETURN_IF_ERROR(load_extents(*inode));
    if (new_size < inode->disk.size_bytes) {
        // Free whole blocks past the new end.
        const Vlba keep_blocks = util::ceil_div(new_size, kFsBlockSize);
        std::vector<std::pair<Plba, std::uint64_t>> freed;
        map_remove_from(inode->extents, keep_blocks, freed);
        for (const auto &[first, count] : freed)
            NESC_RETURN_IF_ERROR(free_block_range(first, count));
        // Zero the tail of a straddled last block so a later grow
        // reads zeros (POSIX).
        const std::uint64_t tail = new_size % kFsBlockSize;
        if (tail != 0) {
            if (auto pblock =
                    map_lookup(inode->extents, new_size / kFsBlockSize)) {
                std::vector<std::byte> scratch(kFsBlockSize);
                NESC_RETURN_IF_ERROR(io_.read_blocks(*pblock, 1, scratch));
                std::memset(scratch.data() + tail, 0, kFsBlockSize - tail);
                NESC_RETURN_IF_ERROR(io_.write_blocks(*pblock, 1, scratch));
            }
        }
    }
    inode->disk.size_bytes = new_size;
    inode->disk.mtime_ns = now_ns();
    NESC_RETURN_IF_ERROR(store_extents(ino, *inode));
    return commit_meta();
}

util::Status
NestFs::fsync(InodeId ino)
{
    (void)ino; // nestfs keeps one running transaction for all files
    NESC_RETURN_IF_ERROR(commit_meta());
    return io_.flush();
}

util::Status
NestFs::sync()
{
    NESC_RETURN_IF_ERROR(commit_meta());
    return io_.flush();
}

// --------------------------------------------------------------------
// Attributes
// --------------------------------------------------------------------

util::Result<Stat>
NestFs::stat(InodeId ino)
{
    NESC_ASSIGN_OR_RETURN(CachedInode * inode, load_inode(ino));
    Stat st;
    st.ino = ino;
    st.type = static_cast<FileType>(inode->disk.type);
    st.perm = inode->disk.perm;
    st.uid = inode->disk.uid;
    st.gid = inode->disk.gid;
    st.nlink = inode->disk.nlink;
    st.size_bytes = inode->disk.size_bytes;
    st.extent_count = inode->disk.extent_count;
    st.mtime_ns = inode->disk.mtime_ns;
    return st;
}

util::Result<Stat>
NestFs::stat_path(std::string_view path)
{
    NESC_ASSIGN_OR_RETURN(InodeId ino, resolve(path));
    return stat(ino);
}

util::Status
NestFs::chmod(InodeId ino, std::uint16_t perm, const Credentials &creds)
{
    NESC_ASSIGN_OR_RETURN(CachedInode * inode, load_inode(ino));
    if (!creds.is_superuser() && creds.uid != inode->disk.uid)
        return util::permission_denied_error("chmod: not the owner");
    inode->disk.perm = perm & 0777;
    NESC_RETURN_IF_ERROR(store_inode(ino));
    return commit_meta();
}

util::Status
NestFs::chown(InodeId ino, std::uint16_t uid, std::uint16_t gid,
              const Credentials &creds)
{
    NESC_ASSIGN_OR_RETURN(CachedInode * inode, load_inode(ino));
    if (!creds.is_superuser())
        return util::permission_denied_error("chown requires superuser");
    inode->disk.uid = uid;
    inode->disk.gid = gid;
    NESC_RETURN_IF_ERROR(store_inode(ino));
    return commit_meta();
}

// --------------------------------------------------------------------
// NeSC integration
// --------------------------------------------------------------------

util::Result<ExtentList>
NestFs::fiemap(InodeId ino)
{
    NESC_ASSIGN_OR_RETURN(CachedInode * inode, load_inode(ino));
    NESC_RETURN_IF_ERROR(load_extents(*inode));
    ++counters_["fiemap_queries"];
    return inode->extents;
}

util::Status
NestFs::allocate_range(InodeId ino, std::uint64_t first_vblock,
                       std::uint64_t nblocks, bool zero_fill)
{
    NESC_ASSIGN_OR_RETURN(CachedInode * inode, load_inode(ino));
    NESC_RETURN_IF_ERROR(load_extents(*inode));
    for (std::uint64_t vb = first_vblock; vb < first_vblock + nblocks; ++vb)
        NESC_RETURN_IF_ERROR(ensure_allocated(*inode, vb, zero_fill));
    inode->disk.size_bytes =
        std::max<std::uint64_t>(inode->disk.size_bytes,
                                (first_vblock + nblocks) * kFsBlockSize);
    inode->disk.mtime_ns = now_ns();
    NESC_RETURN_IF_ERROR(store_extents(ino, *inode));
    NESC_RETURN_IF_ERROR(commit_meta());
    ++counters_["allocate_range_calls"];
    return util::Status::ok();
}

} // namespace nesc::fs
