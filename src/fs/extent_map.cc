#include "extent_map.h"

#include <algorithm>
#include <cassert>

namespace nesc::fs {

using extent::Extent;
using extent::ExtentList;
using extent::Plba;
using extent::Vlba;

namespace {

/**
 * Index of the first extent with end_vblock() > vblock. Extents are
 * sorted and non-overlapping, so end_vblock() is monotone and the
 * predicate below is partitioned.
 */
std::size_t
upper_index(const ExtentList &extents, Vlba vblock)
{
    auto it = std::partition_point(
        extents.begin(), extents.end(),
        [vblock](const Extent &e) { return e.end_vblock() <= vblock; });
    return static_cast<std::size_t>(it - extents.begin());
}

} // namespace

std::optional<Extent>
map_lookup_extent(const ExtentList &extents, Vlba vblock)
{
    const std::size_t i = upper_index(extents, vblock);
    if (i < extents.size() && extents[i].contains(vblock))
        return extents[i];
    return std::nullopt;
}

std::optional<Plba>
map_lookup(const ExtentList &extents, Vlba vblock)
{
    auto e = map_lookup_extent(extents, vblock);
    if (!e)
        return std::nullopt;
    return e->translate(vblock);
}

void
map_insert_extent(ExtentList &extents, const Extent &e)
{
    assert(e.nblocks > 0);
    // Position of the first extent starting at or after e.
    auto it = std::lower_bound(extents.begin(), extents.end(), e,
                               [](const Extent &a, const Extent &b) {
                                   return a.first_vblock < b.first_vblock;
                               });
    std::size_t i = static_cast<std::size_t>(it - extents.begin());

    // Try merging with the predecessor: logically and physically
    // contiguous runs become one extent.
    if (i > 0) {
        Extent &prev = extents[i - 1];
        if (prev.end_vblock() == e.first_vblock &&
            prev.first_pblock + prev.nblocks == e.first_pblock) {
            prev.nblocks += e.nblocks;
            // The grown predecessor may now touch the successor.
            if (i < extents.size()) {
                const Extent &next = extents[i];
                if (prev.end_vblock() == next.first_vblock &&
                    prev.first_pblock + prev.nblocks == next.first_pblock) {
                    prev.nblocks += next.nblocks;
                    extents.erase(extents.begin() +
                                  static_cast<std::ptrdiff_t>(i));
                }
            }
            return;
        }
    }
    // Try merging with the successor.
    if (i < extents.size()) {
        Extent &next = extents[i];
        if (e.end_vblock() == next.first_vblock &&
            e.first_pblock + e.nblocks == next.first_pblock) {
            next.first_vblock = e.first_vblock;
            next.first_pblock = e.first_pblock;
            next.nblocks += e.nblocks;
            return;
        }
    }
    extents.insert(extents.begin() + static_cast<std::ptrdiff_t>(i), e);
}

void
map_insert_block(ExtentList &extents, Vlba vblock, Plba pblock)
{
    assert(!map_lookup(extents, vblock).has_value());
    map_insert_extent(extents, Extent{vblock, 1, pblock});
}

void
map_remove_from(ExtentList &extents, Vlba from_vblock,
                std::vector<std::pair<Plba, std::uint64_t>> &freed)
{
    std::size_t i = upper_index(extents, from_vblock);
    if (i < extents.size() && extents[i].first_vblock < from_vblock) {
        // Straddling extent: keep the head, free the tail.
        Extent &e = extents[i];
        const std::uint64_t keep = from_vblock - e.first_vblock;
        freed.emplace_back(e.first_pblock + keep, e.nblocks - keep);
        e.nblocks = keep;
        ++i;
    }
    for (std::size_t j = i; j < extents.size(); ++j)
        freed.emplace_back(extents[j].first_pblock, extents[j].nblocks);
    extents.erase(extents.begin() + static_cast<std::ptrdiff_t>(i),
                  extents.end());
}

Vlba
map_end(const ExtentList &extents)
{
    return extents.empty() ? 0 : extents.back().end_vblock();
}

} // namespace nesc::fs
