#include "nestfs.h"

#include <algorithm>
#include <bit>
#include <cstring>

#include "fs/extent_map.h"
#include "util/units.h"

namespace nesc::fs {

using extent::Extent;
using extent::ExtentList;
using extent::Plba;
using extent::Vlba;

// --------------------------------------------------------------------
// Lifecycle
// --------------------------------------------------------------------

util::Result<std::unique_ptr<NestFs>>
NestFs::format(blk::BlockIo &io, const NestFsConfig &config)
{
    if (io.block_size() != kFsBlockSize)
        return util::invalid_argument_error("nestfs requires 1 KiB blocks");
    if (config.inode_count == 0)
        return util::invalid_argument_error("inode_count must be > 0");

    const std::uint64_t total_blocks = io.num_blocks();
    SuperBlock sb{};
    sb.magic = kSuperMagic;
    sb.version = config.meta_checksums ? kSuperVersionChecksummed
                                       : kSuperVersionBase;
    sb.block_size = kFsBlockSize;
    sb.inode_count = config.inode_count;
    sb.total_blocks = total_blocks;
    sb.bitmap_start = 1;
    sb.bitmap_blocks = util::ceil_div(total_blocks, 8ULL * kFsBlockSize);
    sb.itable_start = sb.bitmap_start + sb.bitmap_blocks;
    sb.itable_blocks = util::ceil_div(config.inode_count, kInodesPerBlock);
    sb.journal_start = sb.itable_start + sb.itable_blocks;
    sb.journal_blocks =
        config.journal_mode == JournalMode::kNone ? 0 : config.journal_blocks;
    sb.data_start = sb.journal_start + sb.journal_blocks;
    sb.journal_mode = static_cast<std::uint32_t>(config.journal_mode);
    sb.clean_shutdown = 1;
    sb.next_txn_id = 1;
    if (sb.data_start + 8 > total_blocks)
        return util::invalid_argument_error(
            "volume too small for requested nestfs layout");

    // Zero all metadata regions (bitmap, inode table, journal head).
    std::vector<std::byte> zero(kFsBlockSize);
    for (std::uint64_t b = sb.bitmap_start; b < sb.data_start; ++b)
        NESC_RETURN_IF_ERROR(io.write_blocks(b, 1, zero));

    // Superblock.
    if (config.meta_checksums)
        sb.csum = superblock_crc(sb);
    std::vector<std::byte> sb_block(kFsBlockSize);
    std::memcpy(sb_block.data(), &sb, sizeof(sb));
    NESC_RETURN_IF_ERROR(io.write_blocks(0, 1, sb_block));

    auto fs = std::unique_ptr<NestFs>(new NestFs(io));
    fs->super_ = sb;
    fs->journal_ = std::make_unique<Journal>(
        io, sb.journal_start, std::max<std::uint64_t>(sb.journal_blocks, 1),
        sb.next_txn_id);

    // In-memory bitmap: metadata region pre-allocated.
    fs->bitmap_.assign(sb.bitmap_blocks * kFsBlockSize, 0);
    for (std::uint64_t b = 0; b < sb.data_start; ++b)
        fs->bitmap_set(b, true);
    fs->free_block_count_ = total_blocks - sb.data_start;
    for (std::uint64_t b = 0; b < sb.bitmap_blocks; ++b)
        fs->stage_bitmap_block(b * 8 * kFsBlockSize);

    // Free inodes (root is 1 and allocated below).
    for (InodeId ino = config.inode_count; ino >= 2; --ino)
        fs->free_inodes_.push_back(ino);

    // Root directory.
    CachedInode root{};
    root.disk.type = static_cast<std::uint16_t>(FileType::kDirectory);
    root.disk.perm = 0755;
    root.disk.nlink = 2;
    root.extents_loaded = true;
    fs->inode_cache_[kRootInode] = root;
    NESC_RETURN_IF_ERROR(fs->store_inode(kRootInode));
    NESC_RETURN_IF_ERROR(fs->commit_meta());
    return fs;
}

util::Result<std::unique_ptr<NestFs>>
NestFs::mount(blk::BlockIo &io)
{
    if (io.block_size() != kFsBlockSize)
        return util::invalid_argument_error("nestfs requires 1 KiB blocks");
    std::vector<std::byte> block(kFsBlockSize);
    NESC_RETURN_IF_ERROR(io.read_blocks(0, 1, block));
    SuperBlock sb;
    std::memcpy(&sb, block.data(), sizeof(sb));
    if (sb.magic != kSuperMagic)
        return util::data_loss_error("bad nestfs superblock magic");
    if (sb.version >= kSuperVersionChecksummed &&
        sb.csum != superblock_crc(sb))
        return util::data_loss_error("nestfs superblock failed its checksum");
    if (sb.total_blocks > io.num_blocks())
        return util::data_loss_error("superblock larger than volume");

    auto fs = std::unique_ptr<NestFs>(new NestFs(io));
    fs->super_ = sb;
    fs->journal_ = std::make_unique<Journal>(
        io, sb.journal_start, std::max<std::uint64_t>(sb.journal_blocks, 1),
        sb.next_txn_id);

    if (sb.journal_mode != static_cast<std::uint32_t>(JournalMode::kNone)) {
        NESC_ASSIGN_OR_RETURN(std::uint64_t replayed, fs->journal_->replay());
        fs->counters_["journal_replayed_txns"] += replayed;
        fs->super_.next_txn_id = fs->journal_->next_txn_id();
    }

    // Load the block bitmap.
    fs->bitmap_.resize(sb.bitmap_blocks * kFsBlockSize);
    for (std::uint64_t b = 0; b < sb.bitmap_blocks; ++b) {
        NESC_RETURN_IF_ERROR(io.read_blocks(
            sb.bitmap_start + b, 1,
            std::span<std::byte>(
                reinterpret_cast<std::byte *>(fs->bitmap_.data()) +
                    b * kFsBlockSize,
                kFsBlockSize)));
    }
    fs->free_block_count_ = 0;
    for (std::uint64_t b = sb.data_start; b < sb.total_blocks; ++b)
        if (!fs->bitmap_get(b))
            ++fs->free_block_count_;

    // Scan the inode table for free slots.
    for (std::uint64_t b = 0; b < sb.itable_blocks; ++b) {
        NESC_RETURN_IF_ERROR(
            io.read_blocks(sb.itable_start + b, 1, block));
        for (std::uint32_t s = 0; s < kInodesPerBlock; ++s) {
            const InodeId ino =
                static_cast<InodeId>(b * kInodesPerBlock + s + 1);
            if (ino > sb.inode_count)
                break;
            DiskInode inode;
            std::memcpy(&inode, block.data() + s * kInodeSize,
                        sizeof(inode));
            if (inode.type == static_cast<std::uint16_t>(FileType::kNone))
                fs->free_inodes_.push_back(ino);
        }
    }
    std::sort(fs->free_inodes_.begin(), fs->free_inodes_.end(),
              std::greater<>());
    return fs;
}

util::Status
NestFs::unmount()
{
    NESC_RETURN_IF_ERROR(sync());
    super_.clean_shutdown = 1;
    super_.next_txn_id = journal_->next_txn_id();
    if (meta_checksums())
        super_.csum = superblock_crc(super_);
    std::vector<std::byte> block(kFsBlockSize);
    std::memcpy(block.data(), &super_, sizeof(super_));
    NESC_RETURN_IF_ERROR(io_.write_blocks(0, 1, block));
    return io_.flush();
}

// --------------------------------------------------------------------
// Metadata block plumbing
// --------------------------------------------------------------------

util::Status
NestFs::meta_read(std::uint64_t blockno, std::span<std::byte> out)
{
    if (journal_mode() == JournalMode::kNone)
        return io_.read_blocks(blockno, 1, out);
    return journal_->read_through(blockno, out);
}

util::Status
NestFs::meta_write(std::uint64_t blockno, std::span<const std::byte> in)
{
    if (journal_mode() == JournalMode::kNone)
        return io_.write_blocks(blockno, 1, in);
    journal_->stage(blockno, in);
    return util::Status::ok();
}

util::Status
NestFs::commit_meta()
{
    if (journal_mode() == JournalMode::kNone)
        return util::Status::ok();
    NESC_RETURN_IF_ERROR(journal_->commit());
    super_.next_txn_id = journal_->next_txn_id();
    ++counters_["journal_commits"];
    return util::Status::ok();
}

// --------------------------------------------------------------------
// Inode management
// --------------------------------------------------------------------

std::uint64_t
NestFs::inode_block(InodeId ino) const
{
    return super_.itable_start + (ino - 1) / kInodesPerBlock;
}

std::uint32_t
NestFs::inode_slot(InodeId ino) const
{
    return (ino - 1) % kInodesPerBlock;
}

std::uint64_t
NestFs::now_ns() const
{
    return ++mtime_clock_;
}

util::Result<NestFs::CachedInode *>
NestFs::load_inode(InodeId ino)
{
    if (ino == kInvalidInode || ino > super_.inode_count)
        return util::invalid_argument_error("bad inode id " +
                                            std::to_string(ino));
    auto it = inode_cache_.find(ino);
    if (it != inode_cache_.end())
        return &it->second;

    std::vector<std::byte> block(kFsBlockSize);
    NESC_RETURN_IF_ERROR(meta_read(inode_block(ino), block));
    CachedInode cached{};
    std::memcpy(&cached.disk, block.data() + inode_slot(ino) * kInodeSize,
                sizeof(DiskInode));
    if (cached.disk.type == static_cast<std::uint16_t>(FileType::kNone))
        return util::not_found_error("inode " + std::to_string(ino) +
                                     " is free");
    if (meta_checksums() && cached.disk.csum != inode_crc(cached.disk))
        return util::data_loss_error("inode " + std::to_string(ino) +
                                     " failed its checksum");
    auto [pos, inserted] = inode_cache_.emplace(ino, std::move(cached));
    (void)inserted;
    return &pos->second;
}

util::Status
NestFs::store_inode(InodeId ino)
{
    auto it = inode_cache_.find(ino);
    if (it == inode_cache_.end())
        return util::internal_error("store_inode without cached inode");
    if (meta_checksums())
        it->second.disk.csum = inode_crc(it->second.disk);
    std::vector<std::byte> block(kFsBlockSize);
    NESC_RETURN_IF_ERROR(meta_read(inode_block(ino), block));
    std::memcpy(block.data() + inode_slot(ino) * kInodeSize, &it->second.disk,
                sizeof(DiskInode));
    return meta_write(inode_block(ino), block);
}

util::Status
NestFs::load_extents(CachedInode &inode)
{
    if (inode.extents_loaded)
        return util::Status::ok();
    inode.extents.clear();
    const std::uint32_t inline_count = std::min<std::uint32_t>(
        inode.disk.extent_count, kInlineExtents);
    for (std::uint32_t i = 0; i < inline_count; ++i) {
        const DiskExtent &d = inode.disk.extents[i];
        inode.extents.push_back(
            Extent{d.first_vblock, d.nblocks, d.first_pblock});
    }
    std::uint64_t chain = inode.disk.overflow_block;
    std::vector<std::byte> block(kFsBlockSize);
    while (chain != 0) {
        NESC_RETURN_IF_ERROR(meta_read(chain, block));
        ExtentChainHeader header;
        std::memcpy(&header, block.data(), sizeof(header));
        if (header.count > kExtentsPerChainBlock)
            return util::data_loss_error("corrupt extent chain block");
        for (std::uint32_t i = 0; i < header.count; ++i) {
            DiskExtent d;
            std::memcpy(&d,
                        block.data() + sizeof(header) + i * sizeof(DiskExtent),
                        sizeof(d));
            inode.extents.push_back(
                Extent{d.first_vblock, d.nblocks, d.first_pblock});
        }
        chain = header.next_block;
    }
    inode.extents_loaded = true;
    return util::Status::ok();
}

util::Status
NestFs::store_extents(InodeId ino, CachedInode &inode)
{
    // Release the existing overflow chain; it is rebuilt from scratch.
    std::uint64_t chain = inode.disk.overflow_block;
    std::vector<std::byte> block(kFsBlockSize);
    while (chain != 0) {
        NESC_RETURN_IF_ERROR(meta_read(chain, block));
        ExtentChainHeader header;
        std::memcpy(&header, block.data(), sizeof(header));
        NESC_RETURN_IF_ERROR(free_block_range(chain, 1));
        chain = header.next_block;
    }
    inode.disk.overflow_block = 0;

    const std::size_t total = inode.extents.size();
    inode.disk.extent_count = static_cast<std::uint32_t>(total);
    const std::size_t inline_count =
        std::min<std::size_t>(total, kInlineExtents);
    for (std::size_t i = 0; i < inline_count; ++i) {
        inode.disk.extents[i] = DiskExtent{inode.extents[i].first_vblock,
                                           inode.extents[i].nblocks,
                                           inode.extents[i].first_pblock};
    }
    for (std::size_t i = inline_count; i < kInlineExtents; ++i)
        inode.disk.extents[i] = DiskExtent{};

    // Spill the remainder into a freshly allocated chain. Building the
    // list back-to-front wires up next pointers in one pass.
    std::size_t remaining = total - inline_count;
    std::uint64_t next_block = 0;
    while (remaining > 0) {
        const std::size_t in_this =
            (remaining - 1) % kExtentsPerChainBlock + 1;
        const std::size_t first = inline_count + remaining - in_this;
        NESC_ASSIGN_OR_RETURN(Plba chain_block, alloc_block(0));
        std::vector<std::byte> out(kFsBlockSize);
        ExtentChainHeader header{next_block,
                                 static_cast<std::uint32_t>(in_this), 0};
        std::memcpy(out.data(), &header, sizeof(header));
        for (std::size_t i = 0; i < in_this; ++i) {
            const Extent &e = inode.extents[first + i];
            DiskExtent d{e.first_vblock, e.nblocks, e.first_pblock};
            std::memcpy(out.data() + sizeof(header) + i * sizeof(DiskExtent),
                        &d, sizeof(d));
        }
        NESC_RETURN_IF_ERROR(meta_write(chain_block, out));
        next_block = chain_block;
        remaining -= in_this;
    }
    inode.disk.overflow_block = next_block;
    return store_inode(ino);
}

util::Result<InodeId>
NestFs::alloc_inode(FileType type, std::uint16_t perm,
                    const Credentials &creds)
{
    if (free_inodes_.empty())
        return util::resource_exhausted_error("out of inodes");
    const InodeId ino = free_inodes_.back();
    free_inodes_.pop_back();
    CachedInode cached{};
    cached.disk.type = static_cast<std::uint16_t>(type);
    cached.disk.perm = perm;
    cached.disk.uid = creds.uid;
    cached.disk.gid = creds.gid;
    cached.disk.nlink = type == FileType::kDirectory ? 2 : 1;
    cached.disk.mtime_ns = now_ns();
    cached.extents_loaded = true;
    inode_cache_[ino] = cached;
    NESC_RETURN_IF_ERROR(store_inode(ino));
    return ino;
}

util::Status
NestFs::free_inode(InodeId ino)
{
    auto it = inode_cache_.find(ino);
    if (it == inode_cache_.end())
        return util::internal_error("free_inode without cached inode");
    it->second.disk = DiskInode{};
    NESC_RETURN_IF_ERROR(store_inode(ino));
    inode_cache_.erase(it);
    free_inodes_.push_back(ino);
    return util::Status::ok();
}

// --------------------------------------------------------------------
// Block allocation
// --------------------------------------------------------------------

bool
NestFs::bitmap_get(std::uint64_t block) const
{
    return (bitmap_[block / 8] >> (block % 8)) & 1;
}

void
NestFs::bitmap_set(std::uint64_t block, bool value)
{
    if (value)
        bitmap_[block / 8] |= static_cast<std::uint8_t>(1u << (block % 8));
    else
        bitmap_[block / 8] &=
            static_cast<std::uint8_t>(~(1u << (block % 8)));
}

std::uint64_t
NestFs::scan_free_bitmap(std::uint64_t from, std::uint64_t limit) const
{
    std::uint64_t b = from;
    // Head: finish the partial byte bit by bit.
    while (b < limit && (b % 8) != 0) {
        if (!bitmap_get(b))
            return b;
        ++b;
    }
    // Body: skip fully-allocated 64-bit words (all-ones compares the
    // same on any endianness), then land on the first non-full byte.
    while (b + 64 <= limit) {
        std::uint64_t word;
        std::memcpy(&word, bitmap_.data() + b / 8, sizeof(word));
        if (word != ~std::uint64_t{0})
            break;
        b += 64;
    }
    while (b + 8 <= limit) {
        const std::uint8_t byte = bitmap_[b / 8];
        if (byte != 0xFF)
            return b + std::countr_one(byte);
        b += 8;
    }
    // Tail: partial final byte.
    while (b < limit) {
        if (!bitmap_get(b))
            return b;
        ++b;
    }
    return limit;
}

void
NestFs::stage_bitmap_block(std::uint64_t block)
{
    const std::uint64_t index = block / (8ULL * kFsBlockSize);
    const std::byte *src =
        reinterpret_cast<const std::byte *>(bitmap_.data()) +
        index * kFsBlockSize;
    // Staging through meta_write keeps the on-disk bitmap transactional;
    // with journaling off it writes through immediately.
    (void)meta_write(super_.bitmap_start + index,
                     std::span<const std::byte>(src, kFsBlockSize));
}

util::Result<Plba>
NestFs::alloc_block(Plba goal)
{
    NESC_ASSIGN_OR_RETURN(auto run, alloc_run(goal, 1));
    return run.first;
}

util::Result<std::pair<Plba, std::uint64_t>>
NestFs::alloc_run(Plba goal, std::uint64_t want)
{
    if (free_block_count_ == 0)
        return util::resource_exhausted_error("volume out of blocks");
    if (want == 0)
        return util::invalid_argument_error("alloc_run of zero blocks");
    Plba start = std::max<Plba>(goal, super_.data_start);
    if (start >= super_.total_blocks)
        start = super_.data_start;

    // First-fit from the goal, wrapping once around the data area:
    // scan [start, end) then [data_start, start). The scan skips
    // fully-allocated regions a 64-bit bitmap word at a time — on a
    // fragmented volume the bit-by-bit probe made every allocation
    // O(allocated blocks), which dominated whole-volume setup.
    Plba b = scan_free_bitmap(start, super_.total_blocks);
    if (b == super_.total_blocks)
        b = scan_free_bitmap(super_.data_start, start);
    if (b == start && bitmap_get(b))
        return util::resource_exhausted_error("volume out of blocks");
    // Extend the run as far as free and wanted.
    std::uint64_t len = 1;
    while (len < want && b + len < super_.total_blocks &&
           !bitmap_get(b + len))
        ++len;
    for (std::uint64_t i = 0; i < len; ++i) {
        bitmap_set(b + i, true);
        stage_bitmap_block(b + i);
    }
    free_block_count_ -= len;
    counters_["blocks_allocated"] += len;
    return std::pair<Plba, std::uint64_t>(b, len);
}

util::Status
NestFs::free_block_range(Plba first, std::uint64_t count)
{
    for (std::uint64_t i = 0; i < count; ++i) {
        const Plba b = first + i;
        if (b < super_.data_start || b >= super_.total_blocks)
            return util::internal_error("freeing metadata/area block " +
                                        std::to_string(b));
        if (!bitmap_get(b))
            return util::internal_error("double free of block " +
                                        std::to_string(b));
        bitmap_set(b, false);
        stage_bitmap_block(b);
        ++free_block_count_;
    }
    counters_["blocks_freed"] += count;
    return util::Status::ok();
}

} // namespace nesc::fs
