/**
 * @file
 * Pure in-memory manipulation of a file's extent mapping.
 *
 * nestfs keeps each cached inode's mapping as a sorted extent::ExtentList
 * (vblock = offset in the file, in fs blocks; pblock = volume block).
 * These helpers implement lookup, insertion with physical/logical
 * coalescing, and range removal — the same operations ext4 performs on
 * its extent trees, expressed on the flat list representation.
 */
#ifndef NESC_FS_EXTENT_MAP_H
#define NESC_FS_EXTENT_MAP_H

#include <cstdint>
#include <optional>

#include "extent/types.h"

namespace nesc::fs {

/** Physical block holding file block @p vblock, if mapped. */
std::optional<extent::Plba> map_lookup(const extent::ExtentList &extents,
                                       extent::Vlba vblock);

/**
 * The extent containing @p vblock, if mapped (gives the caller the
 * remaining contiguous run length as well).
 */
std::optional<extent::Extent>
map_lookup_extent(const extent::ExtentList &extents, extent::Vlba vblock);

/**
 * Inserts the single-block mapping vblock -> pblock, coalescing with a
 * neighbouring extent when both the logical and physical addresses are
 * contiguous. The block must not already be mapped.
 */
void map_insert_block(extent::ExtentList &extents, extent::Vlba vblock,
                      extent::Plba pblock);

/**
 * Inserts a whole extent (caller guarantees no overlap), coalescing
 * with neighbours where possible.
 */
void map_insert_extent(extent::ExtentList &extents, const extent::Extent &e);

/**
 * Removes all mappings with vblock >= @p from_vblock (truncate),
 * splitting a straddling extent. Appends the freed physical ranges to
 * @p freed as (first_pblock, nblocks) pairs.
 */
void map_remove_from(extent::ExtentList &extents, extent::Vlba from_vblock,
                     std::vector<std::pair<extent::Plba, std::uint64_t>>
                         &freed);

/** Highest mapped vblock + 1; 0 for an empty mapping. */
extent::Vlba map_end(const extent::ExtentList &extents);

} // namespace nesc::fs

#endif // NESC_FS_EXTENT_MAP_H
