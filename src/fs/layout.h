/**
 * @file
 * On-disk layout of nestfs.
 *
 * nestfs is the hypervisor-side (and guest-side) filesystem of this
 * reproduction: an extent-based UNIX-style filesystem in the spirit of
 * ext4, providing exactly the services NeSC consumes — extent-granular
 * file mapping (FIEMAP), lazy allocation with holes, permissions, and
 * metadata journaling. The disk is divided into: superblock | block
 * bitmap | inode table | journal | data.
 *
 * All structures are little-endian, trivially copyable, and sized to
 * divide the 1 KiB filesystem block.
 */
#ifndef NESC_FS_LAYOUT_H
#define NESC_FS_LAYOUT_H

#include <cstdint>

#include "util/crc32c.h"

namespace nesc::fs {

/** Filesystem block size; matches the NeSC device granularity. */
inline constexpr std::uint32_t kFsBlockSize = 1024;

inline constexpr std::uint32_t kSuperMagic = 0x4e465331;   // "NFS1"

/**
 * Format versions. Version 2 volumes carry CRC32C self-checksums on
 * the superblock and every allocated inode, verified at mount/load and
 * by fsck. Version 1 volumes have zero in those (formerly slack)
 * fields and are never checksum-verified, so old images mount
 * unchanged.
 */
inline constexpr std::uint32_t kSuperVersionBase = 1;
inline constexpr std::uint32_t kSuperVersionChecksummed = 2;
inline constexpr std::uint32_t kJournalDescMagic = 0x4a4453; // "JDS"
inline constexpr std::uint32_t kJournalCommitMagic = 0x4a434d; // "JCM"

/** Inode numbers; 0 is invalid, 1 is the root directory. */
using InodeId = std::uint32_t;
inline constexpr InodeId kInvalidInode = 0;
inline constexpr InodeId kRootInode = 1;

/** Journal operating modes (paper §IV.D, nested journaling). */
enum class JournalMode : std::uint32_t {
    kNone = 0,     ///< no journal: metadata written in place only
    kMetadata = 1, ///< journal metadata blocks (ext4 data=ordered-ish)
    kData = 2,     ///< journal data too (ext4 data=journal)
};

/** Block 0 of the volume. */
struct SuperBlock {
    std::uint32_t magic;
    std::uint32_t version;
    std::uint32_t block_size;
    std::uint32_t inode_count;
    std::uint64_t total_blocks;
    std::uint64_t bitmap_start;
    std::uint64_t bitmap_blocks;
    std::uint64_t itable_start;
    std::uint64_t itable_blocks;
    std::uint64_t journal_start;
    std::uint64_t journal_blocks;
    std::uint64_t data_start;
    std::uint32_t journal_mode; ///< JournalMode
    std::uint32_t clean_shutdown;
    std::uint64_t next_txn_id;
    std::uint32_t csum; ///< CRC32C of this struct with csum zeroed (v2+)
    std::uint32_t csum_pad;
};

/** One extent mapping file blocks to volume blocks. */
struct DiskExtent {
    std::uint64_t first_vblock; ///< file offset, in fs blocks
    std::uint64_t nblocks;
    std::uint64_t first_pblock; ///< volume block number
};
static_assert(sizeof(DiskExtent) == 24);

/** Extents stored directly in the inode before spilling to chain blocks. */
inline constexpr std::uint32_t kInlineExtents = 8;

/** File types kept in the inode mode field's high bits. */
enum class FileType : std::uint16_t {
    kNone = 0,
    kRegular = 1,
    kDirectory = 2,
};

/** On-disk inode; kInodeSize bytes each, packed into the inode table. */
struct DiskInode {
    std::uint16_t type;  ///< FileType; kNone means free
    std::uint16_t perm;  ///< 0o777-style permission bits
    std::uint16_t uid;
    std::uint16_t gid;
    std::uint32_t nlink;
    std::uint32_t extent_count;    ///< total extents (inline + chained)
    std::uint64_t size_bytes;
    std::uint64_t overflow_block;  ///< first extent-chain block, 0 if none
    std::uint64_t mtime_ns;        ///< simulated time of last change
    DiskExtent extents[kInlineExtents];
    std::uint32_t csum; ///< CRC32C of this struct with csum zeroed (v2+)
    std::uint32_t csum_pad;
};
static_assert(sizeof(DiskInode) <= 256);

/**
 * Self-checksum over a metadata record: the record's bytes with its
 * csum field zeroed. Both SuperBlock and DiskInode are padding-free,
 * so hashing the raw struct bytes is deterministic.
 */
inline std::uint32_t
superblock_crc(SuperBlock sb)
{
    sb.csum = 0;
    return util::crc32c(&sb, sizeof(sb));
}

inline std::uint32_t
inode_crc(DiskInode inode)
{
    inode.csum = 0;
    return util::crc32c(&inode, sizeof(inode));
}

inline constexpr std::uint32_t kInodeSize = 256;
inline constexpr std::uint32_t kInodesPerBlock = kFsBlockSize / kInodeSize;

/** Header of an extent-chain (overflow) block. */
struct ExtentChainHeader {
    std::uint64_t next_block; ///< next chain block, 0 at the tail
    std::uint32_t count;
    std::uint32_t pad;
};
static_assert(sizeof(ExtentChainHeader) == 16);

/** Extents per chain block. */
inline constexpr std::uint32_t kExtentsPerChainBlock =
    (kFsBlockSize - sizeof(ExtentChainHeader)) / sizeof(DiskExtent); // 42

/** Directory entry; directories are regular files of these records. */
struct DirEntryRecord {
    InodeId ino;          ///< kInvalidInode marks an empty slot
    std::uint8_t name_len;
    std::uint8_t file_type; ///< FileType of the target
    std::uint8_t pad[2];
    char name[56];
};
static_assert(sizeof(DirEntryRecord) == 64);

inline constexpr std::uint32_t kMaxNameLen = 55;
inline constexpr std::uint32_t kDirEntriesPerBlock =
    kFsBlockSize / sizeof(DirEntryRecord);

/** Journal transaction descriptor block header. */
struct JournalDescHeader {
    std::uint32_t magic; ///< kJournalDescMagic
    std::uint32_t count; ///< journaled blocks in this transaction
    std::uint64_t txn_id;
    // Followed by `count` uint64 target block numbers.
};

/** Journal commit block. */
struct JournalCommitRecord {
    std::uint32_t magic; ///< kJournalCommitMagic
    std::uint32_t pad;
    std::uint64_t txn_id;
    std::uint64_t checksum; ///< sum of payload bytes (torn-write guard)
};

/** Max journaled blocks in one transaction (fits one descriptor block). */
inline constexpr std::uint32_t kMaxTxnBlocks =
    (kFsBlockSize - sizeof(JournalDescHeader)) / sizeof(std::uint64_t);

} // namespace nesc::fs

#endif // NESC_FS_LAYOUT_H
