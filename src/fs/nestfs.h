/**
 * @file
 * nestfs: the extent-based filesystem used by the hypervisor (and by
 * guests, nested inside their virtual disks).
 *
 * Feature set, chosen to match exactly what the NeSC design consumes
 * from a host filesystem (paper §II, §IV):
 *  - hierarchical namespace with UNIX-style permissions,
 *  - extent-based allocation with lazy allocation (sparse files /
 *    holes read as zeros, POSIX semantics),
 *  - a FIEMAP-style query returning a file's extent list, which the PF
 *    driver converts into the device's extent-tree ABI,
 *  - explicit range allocation (fallocate) for servicing NeSC
 *    write-miss interrupts,
 *  - write-ahead metadata journaling (optionally data journaling, to
 *    reproduce the nested-journaling discussion).
 *
 * All volume access goes through a blk::BlockIo, so the same
 * filesystem runs over a raw device, a full OS stack with caches, or a
 * virtualized disk — whatever the experiment calls for.
 */
#ifndef NESC_FS_NESTFS_H
#define NESC_FS_NESTFS_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "blocklayer/block_io.h"
#include "extent/types.h"
#include "fs/journal.h"
#include "fs/layout.h"
#include "util/stats.h"
#include "util/status.h"

namespace nesc::fs {

/** Caller identity for permission checks; uid 0 is the superuser. */
struct Credentials {
    std::uint16_t uid = 0;
    std::uint16_t gid = 0;

    bool is_superuser() const { return uid == 0; }
};

/** Requested access kind for permission checks. */
enum class Access { kRead, kWrite };

/** stat() result. */
struct Stat {
    InodeId ino = kInvalidInode;
    FileType type = FileType::kNone;
    std::uint16_t perm = 0;
    std::uint16_t uid = 0;
    std::uint16_t gid = 0;
    std::uint32_t nlink = 0;
    std::uint64_t size_bytes = 0;
    std::uint32_t extent_count = 0;
    std::uint64_t mtime_ns = 0;
};

/** readdir() entry. */
struct DirEntry {
    InodeId ino;
    FileType type;
    std::string name;
};

/** format() parameters. */
struct NestFsConfig {
    std::uint32_t inode_count = 1024;
    JournalMode journal_mode = JournalMode::kMetadata;
    std::uint64_t journal_blocks = 128;
    /**
     * Format a version-2 volume whose superblock and inodes carry
     * CRC32C self-checksums, verified at mount/load and by fsck. Off
     * by default: version-1 volumes are byte-identical to before.
     */
    bool meta_checksums = false;
};

/** The filesystem; construct via format() or mount(). */
class NestFs {
  public:
    /** Writes a fresh filesystem onto @p io and mounts it. */
    static util::Result<std::unique_ptr<NestFs>>
    format(blk::BlockIo &io, const NestFsConfig &config = {});

    /**
     * Mounts an existing filesystem: replays the journal, then loads
     * the allocation state.
     */
    static util::Result<std::unique_ptr<NestFs>> mount(blk::BlockIo &io);

    /** Commits pending metadata and marks a clean shutdown. */
    util::Status unmount();

    // --- Namespace operations (paths are absolute, e.g. "/a/b") -----

    /** Creates a regular file; parent directories must exist. */
    util::Result<InodeId> create(std::string_view path, std::uint16_t perm,
                                 const Credentials &creds = {});

    /** Creates a directory. */
    util::Result<InodeId> mkdir(std::string_view path, std::uint16_t perm,
                                const Credentials &creds = {});

    /** Creates a directory and any missing ancestors (mkdir -p). */
    util::Result<InodeId> mkdir_p(std::string_view path, std::uint16_t perm,
                                  const Credentials &creds = {});

    /** Resolves a path to an inode. */
    util::Result<InodeId> resolve(std::string_view path);

    /** Removes a regular file (frees its blocks when nlink hits 0). */
    util::Status unlink(std::string_view path, const Credentials &creds = {});

    /**
     * Atomically moves @p from to @p to (files or directories). An
     * existing regular file at @p to is replaced, POSIX-style; an
     * existing directory target is rejected. Renaming a directory
     * into its own subtree is rejected.
     */
    util::Status rename(std::string_view from, std::string_view to,
                        const Credentials &creds = {});

    /** Removes an empty directory. */
    util::Status rmdir(std::string_view path, const Credentials &creds = {});

    /** Lists a directory. */
    util::Result<std::vector<DirEntry>> readdir(std::string_view path);

    // --- File data ----------------------------------------------------

    /**
     * Reads up to @p out.size() bytes at @p offset. Returns the byte
     * count actually read (short at EOF); holes read as zeros.
     */
    util::Result<std::uint64_t> read(InodeId ino, std::uint64_t offset,
                                     std::span<std::byte> out,
                                     const Credentials &creds = {});

    /**
     * Writes @p in at @p offset, allocating blocks lazily and growing
     * the file as needed. Writing beyond EOF leaves a hole.
     */
    util::Status write(InodeId ino, std::uint64_t offset,
                       std::span<const std::byte> in,
                       const Credentials &creds = {});

    /** Shrinks or (sparsely) grows the file to @p new_size bytes. */
    util::Status truncate(InodeId ino, std::uint64_t new_size,
                          const Credentials &creds = {});

    /** Commits the journal for this file's metadata (and all other
     * staged metadata; nestfs keeps a single running transaction). */
    util::Status fsync(InodeId ino);

    /** Commits all staged metadata. */
    util::Status sync();

    // --- Attributes ----------------------------------------------------

    util::Result<Stat> stat(InodeId ino);
    util::Result<Stat> stat_path(std::string_view path);
    util::Status chmod(InodeId ino, std::uint16_t perm,
                       const Credentials &creds = {});
    util::Status chown(InodeId ino, std::uint16_t uid, std::uint16_t gid,
                       const Credentials &creds = {});

    /** Permission check as performed on open(2). */
    util::Status check_access(InodeId ino, Access access,
                              const Credentials &creds);

    // --- NeSC integration ----------------------------------------------

    /**
     * FIEMAP: the file's extent list (fs-block granular). This is what
     * the hypervisor converts into a VF's hardware extent tree.
     */
    util::Result<extent::ExtentList> fiemap(InodeId ino);

    /**
     * fallocate-style explicit allocation of [first_vblock,
     * +nblocks), used when servicing a NeSC write-miss interrupt.
     * With @p zero_fill false the blocks are mapped but not zeroed,
     * modelling ext4 unwritten extents (the device overwrites them
     * immediately).
     */
    util::Status allocate_range(InodeId ino, std::uint64_t first_vblock,
                                std::uint64_t nblocks,
                                bool zero_fill = false);

    // --- Consistency checking --------------------------------------------

    /** fsck() findings. */
    struct FsckReport {
        bool clean = true;
        std::uint64_t files = 0;
        std::uint64_t directories = 0;
        std::uint64_t referenced_blocks = 0;
        std::uint64_t leaked_blocks = 0;   ///< allocated but unreferenced
        std::uint64_t orphan_inodes = 0;   ///< live but unreachable
        std::uint64_t checksum_errors = 0; ///< v2 metadata CRC mismatches
        std::vector<std::string> errors;   ///< capped at 32 messages
    };

    /**
     * Full-volume consistency check (e2fsck-style): walks the
     * namespace from the root, validates every inode's extent map
     * (sorted, in-bounds, allocated, no double references), accounts
     * every allocated block, and detects orphans and leaks. Used by
     * the crash-recovery property tests.
     */
    util::Result<FsckReport> fsck();

    // --- Introspection --------------------------------------------------

    std::uint64_t free_blocks() const { return free_block_count_; }
    std::uint64_t free_inodes() const { return free_inodes_.size(); }
    const SuperBlock &superblock() const { return super_; }
    /** True on version-2 volumes: metadata carries self-checksums. */
    bool meta_checksums() const
    {
        return super_.version >= kSuperVersionChecksummed;
    }
    JournalMode journal_mode() const
    {
        return static_cast<JournalMode>(super_.journal_mode);
    }
    /** Switches the journaling mode at runtime (nested-FS tuning). */
    void set_journal_mode(JournalMode mode)
    {
        super_.journal_mode = static_cast<std::uint32_t>(mode);
    }
    util::CounterGroup &counters() { return counters_; }
    Journal &journal() { return *journal_; }

  private:
    explicit NestFs(blk::BlockIo &io) : io_(io) {}

    // Metadata block access routed through the journal staging area.
    util::Status meta_read(std::uint64_t blockno, std::span<std::byte> out);
    util::Status meta_write(std::uint64_t blockno,
                            std::span<const std::byte> in);
    util::Status commit_meta();

    // Inode helpers. Cached inodes carry their full extent list.
    struct CachedInode {
        DiskInode disk;
        extent::ExtentList extents;
        bool extents_loaded = false;
    };
    util::Result<CachedInode *> load_inode(InodeId ino);
    util::Status store_inode(InodeId ino);
    util::Status load_extents(CachedInode &inode);
    util::Status store_extents(InodeId ino, CachedInode &inode);
    util::Result<InodeId> alloc_inode(FileType type, std::uint16_t perm,
                                      const Credentials &creds);
    util::Status free_inode(InodeId ino);

    // Block allocation (in-memory bitmap; staged to disk on commit).
    util::Result<extent::Plba> alloc_block(extent::Plba goal);
    util::Result<std::pair<extent::Plba, std::uint64_t>>
    alloc_run(extent::Plba goal, std::uint64_t want);
    util::Status free_block_range(extent::Plba first, std::uint64_t count);
    bool bitmap_get(std::uint64_t block) const;
    void bitmap_set(std::uint64_t block, bool value);
    /** First free block in [from, limit), or @p limit if none. */
    std::uint64_t scan_free_bitmap(std::uint64_t from,
                                   std::uint64_t limit) const;
    void stage_bitmap_block(std::uint64_t block);

    // Directory helpers.
    util::Result<InodeId> dir_lookup(InodeId dir, std::string_view name);
    util::Status dir_add(InodeId dir, std::string_view name, InodeId target,
                         FileType type);
    util::Status dir_remove(InodeId dir, std::string_view name);
    util::Result<bool> dir_empty(InodeId dir);

    // Path helpers.
    struct ResolvedParent {
        InodeId parent;
        std::string leaf;
    };
    util::Result<ResolvedParent> resolve_parent(std::string_view path);

    // Data-path helper shared by write() and allocate_range().
    util::Status ensure_allocated(CachedInode &inode, std::uint64_t vblock,
                                  bool zero_fill);

    std::uint64_t inode_block(InodeId ino) const;
    std::uint32_t inode_slot(InodeId ino) const;
    std::uint64_t now_ns() const;

    blk::BlockIo &io_;
    SuperBlock super_{};
    std::vector<std::uint8_t> bitmap_; ///< in-memory block bitmap
    std::uint64_t free_block_count_ = 0;
    std::vector<InodeId> free_inodes_; ///< stack of free inode numbers
    std::map<InodeId, CachedInode> inode_cache_;
    std::unique_ptr<Journal> journal_;
    util::CounterGroup counters_;
    /** Monotonic pseudo-clock for mtime stamps. */
    mutable std::uint64_t mtime_clock_ = 0;
};

} // namespace nesc::fs

#endif // NESC_FS_NESTFS_H
