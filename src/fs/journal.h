/**
 * @file
 * Write-ahead metadata journal.
 *
 * nestfs wraps every metadata mutation in a transaction: the dirty
 * blocks are first written to the journal ring (descriptor block,
 * payload blocks, commit block), then checkpointed in place. Mount-time
 * replay re-applies any committed-but-possibly-torn transactions, so a
 * crash between commit and checkpoint loses nothing and a crash before
 * commit rolls back cleanly.
 *
 * The journal is also the lever for the paper's nested-journaling
 * discussion (§IV.D): a guest running data-journaling inside a virtual
 * disk that the hypervisor also journals pays twice; NeSC's design
 * lets the hypervisor keep metadata-only journaling for the backing
 * file while the guest handles its own data integrity.
 */
#ifndef NESC_FS_JOURNAL_H
#define NESC_FS_JOURNAL_H

#include <cstdint>
#include <map>
#include <vector>

#include "blocklayer/block_io.h"
#include "fs/layout.h"
#include "util/status.h"

namespace nesc::fs {

/** WAL over a fixed block region; see file comment. */
class Journal {
  public:
    /**
     * @param io volume access (shared with the filesystem).
     * @param start first journal block; @p nblocks region length.
     * @param next_txn_id first transaction id to assign.
     */
    Journal(blk::BlockIo &io, std::uint64_t start, std::uint64_t nblocks,
            std::uint64_t next_txn_id);

    /** Stages @p data as the new content of volume block @p blockno. */
    void stage(std::uint64_t blockno, std::span<const std::byte> data);

    /** True if a block is currently staged (uncommitted). */
    bool is_staged(std::uint64_t blockno) const;

    /**
     * Reads through the staging area: staged content wins over disk.
     * @p out must be one block.
     */
    util::Status read_through(std::uint64_t blockno,
                              std::span<std::byte> out);

    /**
     * Commits the staged transaction: journal writes, commit record,
     * then in-place checkpoint. No-op when nothing is staged. Large
     * transactions split into multiple journal transactions.
     */
    util::Status commit();

    /** Discards staged, uncommitted updates. */
    void abort() { staged_.clear(); }

    /**
     * Mount-time recovery: replays every complete transaction found in
     * the ring. Returns the number of transactions replayed.
     */
    util::Result<std::uint64_t> replay();

    std::uint64_t next_txn_id() const { return next_txn_id_; }
    std::uint64_t commits() const { return commits_; }
    std::uint64_t blocks_journaled() const { return blocks_journaled_; }

  private:
    util::Status commit_chunk(
        const std::vector<std::pair<std::uint64_t,
                                    std::vector<std::byte>>> &chunk);
    /** Journal-relative write cursor wrap. */
    std::uint64_t ring_block(std::uint64_t index) const
    {
        return start_ + index % nblocks_;
    }

    blk::BlockIo &io_;
    std::uint64_t start_;
    std::uint64_t nblocks_;
    std::uint64_t cursor_ = 0; ///< ring write position (journal-relative)
    std::uint64_t next_txn_id_;
    std::map<std::uint64_t, std::vector<std::byte>> staged_;
    std::uint64_t commits_ = 0;
    std::uint64_t blocks_journaled_ = 0;
};

} // namespace nesc::fs

#endif // NESC_FS_JOURNAL_H
