/**
 * @file
 * nestfs consistency checker (NestFs::fsck).
 *
 * Pass 1 walks the directory tree from the root, validating dirents
 * and each reachable inode's extent map and claiming its blocks.
 * Pass 2 scans the inode table for live-but-unreachable inodes, and
 * pass 3 reconciles the claimed-block set against the allocation
 * bitmap (leak detection). Crash-recovery tests run this after
 * remounting a volume that lost power mid-transaction.
 */
#include <cstring>
#include <set>

#include "fs/extent_map.h"
#include "fs/nestfs.h"
#include "util/units.h"

namespace nesc::fs {

namespace {

constexpr std::size_t kMaxErrorMessages = 32;

void
record_error(NestFs::FsckReport &report, std::string message)
{
    report.clean = false;
    if (report.errors.size() < kMaxErrorMessages)
        report.errors.push_back(std::move(message));
}

} // namespace

util::Result<NestFs::FsckReport>
NestFs::fsck()
{
    FsckReport report;
    // Blocks claimed by some inode (data, directory data, or extent
    // chain); used to detect double references and leaks.
    std::set<std::uint64_t> claimed;
    std::set<InodeId> reachable;

    auto claim = [&](std::uint64_t block, InodeId ino) {
        if (block < super_.data_start || block >= super_.total_blocks) {
            record_error(report, "inode " + std::to_string(ino) +
                                     " references out-of-area block " +
                                     std::to_string(block));
            return;
        }
        if (!bitmap_get(block)) {
            record_error(report, "inode " + std::to_string(ino) +
                                     " references free block " +
                                     std::to_string(block));
        }
        if (!claimed.insert(block).second) {
            record_error(report, "block " + std::to_string(block) +
                                     " referenced more than once");
        }
    };

    // Validate one inode's mapping and claim its blocks (including
    // the on-disk extent-chain blocks).
    auto check_inode = [&](InodeId ino) -> util::Status {
        NESC_ASSIGN_OR_RETURN(CachedInode * inode, load_inode(ino));
        NESC_RETURN_IF_ERROR(load_extents(*inode));
        if (!extent::is_valid_extent_list(inode->extents)) {
            record_error(report, "inode " + std::to_string(ino) +
                                     " has an invalid extent map");
            return util::Status::ok();
        }
        for (const extent::Extent &e : inode->extents) {
            for (std::uint64_t i = 0; i < e.nblocks; ++i)
                claim(e.first_pblock + i, ino);
            report.referenced_blocks += e.nblocks;
        }
        // Chain blocks.
        std::uint64_t chain = inode->disk.overflow_block;
        std::vector<std::byte> block(kFsBlockSize);
        int hops = 0;
        while (chain != 0 && hops++ < 1'000'000) {
            claim(chain, ino);
            ++report.referenced_blocks;
            NESC_RETURN_IF_ERROR(meta_read(chain, block));
            ExtentChainHeader header;
            std::memcpy(&header, block.data(), sizeof(header));
            chain = header.next_block;
        }
        // Size vs. mapping sanity: mapped blocks never extend past the
        // rounded-up file size.
        const std::uint64_t size_blocks =
            util::ceil_div(inode->disk.size_bytes, kFsBlockSize);
        if (map_end(inode->extents) > size_blocks) {
            record_error(report, "inode " + std::to_string(ino) +
                                     " maps blocks past its size");
        }
        return util::Status::ok();
    };

    // Pass 1: namespace walk (iterative DFS; detects dirent errors).
    std::vector<InodeId> stack = {kRootInode};
    while (!stack.empty()) {
        const InodeId dir = stack.back();
        stack.pop_back();
        if (!reachable.insert(dir).second) {
            record_error(report, "directory cycle through inode " +
                                     std::to_string(dir));
            continue;
        }
        ++report.directories;
        NESC_RETURN_IF_ERROR(check_inode(dir));

        NESC_ASSIGN_OR_RETURN(CachedInode * inode, load_inode(dir));
        NESC_RETURN_IF_ERROR(load_extents(*inode));
        const std::uint64_t nblocks =
            inode->disk.size_bytes / kFsBlockSize;
        std::vector<std::byte> block(kFsBlockSize);
        for (std::uint64_t vb = 0; vb < nblocks; ++vb) {
            auto pblock = map_lookup(inode->extents, vb);
            if (!pblock) {
                record_error(report, "directory " + std::to_string(dir) +
                                         " has a hole");
                continue;
            }
            NESC_RETURN_IF_ERROR(meta_read(*pblock, block));
            for (std::uint32_t s = 0; s < kDirEntriesPerBlock; ++s) {
                DirEntryRecord rec;
                std::memcpy(&rec, block.data() + s * sizeof(rec),
                            sizeof(rec));
                if (rec.ino == kInvalidInode)
                    continue;
                if (rec.ino > super_.inode_count ||
                    rec.name_len > kMaxNameLen) {
                    record_error(report,
                                 "corrupt dirent in directory " +
                                     std::to_string(dir));
                    continue;
                }
                auto target = load_inode(rec.ino);
                if (!target.is_ok()) {
                    record_error(report,
                                 "dirent to free inode " +
                                     std::to_string(rec.ino));
                    continue;
                }
                const auto type =
                    static_cast<FileType>((*target)->disk.type);
                if (static_cast<FileType>(rec.file_type) != type) {
                    record_error(report, "dirent type mismatch for inode " +
                                             std::to_string(rec.ino));
                }
                if (type == FileType::kDirectory) {
                    stack.push_back(rec.ino);
                } else {
                    if (!reachable.insert(rec.ino).second) {
                        // nestfs has no hard links: a file reached
                        // twice means crossed directory entries.
                        record_error(report,
                                     "file inode " +
                                         std::to_string(rec.ino) +
                                         " referenced twice");
                        continue;
                    }
                    ++report.files;
                    NESC_RETURN_IF_ERROR(check_inode(rec.ino));
                }
            }
        }
    }

    // Pass 2: orphan scan over the inode table.
    for (InodeId ino = 1; ino <= super_.inode_count; ++ino) {
        auto inode = load_inode(ino);
        if (!inode.is_ok())
            continue; // free slot
        if (!reachable.contains(ino)) {
            ++report.orphan_inodes;
            record_error(report,
                         "orphan inode " + std::to_string(ino));
        }
    }

    // Pass 3: leak scan over the data-area bitmap.
    for (std::uint64_t b = super_.data_start; b < super_.total_blocks;
         ++b) {
        if (bitmap_get(b) && !claimed.contains(b)) {
            ++report.leaked_blocks;
            if (report.leaked_blocks == 1) {
                record_error(report, "leaked block " + std::to_string(b) +
                                         " (first of possibly many)");
            }
        }
    }
    if (report.leaked_blocks > 0)
        report.clean = false;
    return report;
}

} // namespace nesc::fs
