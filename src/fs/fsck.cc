/**
 * @file
 * nestfs consistency checker (NestFs::fsck).
 *
 * Pass 1 walks the directory tree from the root, validating dirents
 * and each reachable inode's extent map and claiming its blocks.
 * Pass 2 scans the inode table for live-but-unreachable inodes, and
 * pass 3 reconciles the claimed-block set against the allocation
 * bitmap (leak detection). Crash-recovery tests run this after
 * remounting a volume that lost power mid-transaction.
 */
#include <cstring>
#include <set>

#include "fs/extent_map.h"
#include "fs/nestfs.h"
#include "util/units.h"

namespace nesc::fs {

namespace {

constexpr std::size_t kMaxErrorMessages = 32;

void
record_error(NestFs::FsckReport &report, std::string message)
{
    report.clean = false;
    if (report.errors.size() < kMaxErrorMessages)
        report.errors.push_back(std::move(message));
}

} // namespace

util::Result<NestFs::FsckReport>
NestFs::fsck()
{
    FsckReport report;
    // Blocks claimed by some inode (data, directory data, or extent
    // chain); used to detect double references and leaks.
    std::set<std::uint64_t> claimed;
    std::set<InodeId> reachable;

    auto claim = [&](std::uint64_t block, InodeId ino) {
        if (block < super_.data_start || block >= super_.total_blocks) {
            record_error(report, "inode " + std::to_string(ino) +
                                     " references out-of-area block " +
                                     std::to_string(block));
            return;
        }
        if (!bitmap_get(block)) {
            record_error(report, "inode " + std::to_string(ino) +
                                     " references free block " +
                                     std::to_string(block));
        }
        if (!claimed.insert(block).second) {
            record_error(report, "block " + std::to_string(block) +
                                     " referenced more than once");
        }
    };

    // Validate one inode's mapping and claim its blocks (including
    // the on-disk extent-chain blocks). A load failure (e.g. a v2
    // checksum mismatch) is a finding, not a reason to abort the scan.
    auto check_inode = [&](InodeId ino) -> util::Status {
        auto loaded = load_inode(ino);
        if (!loaded.is_ok()) {
            record_error(report, "unreadable inode " + std::to_string(ino) +
                                     ": " + loaded.status().message());
            return util::Status::ok();
        }
        CachedInode *inode = *loaded;
        NESC_RETURN_IF_ERROR(load_extents(*inode));
        if (!extent::is_valid_extent_list(inode->extents)) {
            record_error(report, "inode " + std::to_string(ino) +
                                     " has an invalid extent map");
            return util::Status::ok();
        }
        for (const extent::Extent &e : inode->extents) {
            for (std::uint64_t i = 0; i < e.nblocks; ++i)
                claim(e.first_pblock + i, ino);
            report.referenced_blocks += e.nblocks;
        }
        // Chain blocks.
        std::uint64_t chain = inode->disk.overflow_block;
        std::vector<std::byte> block(kFsBlockSize);
        int hops = 0;
        while (chain != 0 && hops++ < 1'000'000) {
            claim(chain, ino);
            ++report.referenced_blocks;
            NESC_RETURN_IF_ERROR(meta_read(chain, block));
            ExtentChainHeader header;
            std::memcpy(&header, block.data(), sizeof(header));
            chain = header.next_block;
        }
        // Size vs. mapping sanity: mapped blocks never extend past the
        // rounded-up file size.
        const std::uint64_t size_blocks =
            util::ceil_div(inode->disk.size_bytes, kFsBlockSize);
        if (map_end(inode->extents) > size_blocks) {
            record_error(report, "inode " + std::to_string(ino) +
                                     " maps blocks past its size");
        }
        return util::Status::ok();
    };

    // Pass 0 (version-2 volumes): metadata self-checksums. The
    // superblock is re-read raw from the media — the in-memory copy
    // was already verified at mount and would mask later damage — and
    // every allocated inode slot is verified straight out of the
    // table, bypassing the inode cache for the same reason.
    if (meta_checksums()) {
        std::vector<std::byte> raw(kFsBlockSize);
        NESC_RETURN_IF_ERROR(io_.read_blocks(0, 1, raw));
        SuperBlock on_disk;
        std::memcpy(&on_disk, raw.data(), sizeof(on_disk));
        if (on_disk.csum != superblock_crc(on_disk)) {
            ++report.checksum_errors;
            record_error(report, "superblock failed its checksum");
        }
        for (std::uint64_t b = 0; b < super_.itable_blocks; ++b) {
            NESC_RETURN_IF_ERROR(
                meta_read(super_.itable_start + b, raw));
            for (std::uint32_t s = 0; s < kInodesPerBlock; ++s) {
                const InodeId ino =
                    static_cast<InodeId>(b * kInodesPerBlock + s + 1);
                if (ino > super_.inode_count)
                    break;
                DiskInode inode;
                std::memcpy(&inode, raw.data() + s * kInodeSize,
                            sizeof(inode));
                if (inode.type ==
                    static_cast<std::uint16_t>(FileType::kNone))
                    continue;
                if (inode.csum != inode_crc(inode)) {
                    ++report.checksum_errors;
                    record_error(report,
                                 "inode " + std::to_string(ino) +
                                     " failed its checksum");
                }
            }
        }
    }

    // Pass 1: namespace walk (iterative DFS; detects dirent errors).
    std::vector<InodeId> stack = {kRootInode};
    while (!stack.empty()) {
        const InodeId dir = stack.back();
        stack.pop_back();
        if (!reachable.insert(dir).second) {
            record_error(report, "directory cycle through inode " +
                                     std::to_string(dir));
            continue;
        }
        ++report.directories;
        NESC_RETURN_IF_ERROR(check_inode(dir));

        auto dir_loaded = load_inode(dir);
        if (!dir_loaded.is_ok())
            continue; // already recorded by check_inode above
        CachedInode *inode = *dir_loaded;
        NESC_RETURN_IF_ERROR(load_extents(*inode));
        const std::uint64_t nblocks =
            inode->disk.size_bytes / kFsBlockSize;
        std::vector<std::byte> block(kFsBlockSize);
        for (std::uint64_t vb = 0; vb < nblocks; ++vb) {
            auto pblock = map_lookup(inode->extents, vb);
            if (!pblock) {
                record_error(report, "directory " + std::to_string(dir) +
                                         " has a hole");
                continue;
            }
            NESC_RETURN_IF_ERROR(meta_read(*pblock, block));
            for (std::uint32_t s = 0; s < kDirEntriesPerBlock; ++s) {
                DirEntryRecord rec;
                std::memcpy(&rec, block.data() + s * sizeof(rec),
                            sizeof(rec));
                if (rec.ino == kInvalidInode)
                    continue;
                if (rec.ino > super_.inode_count ||
                    rec.name_len > kMaxNameLen) {
                    record_error(report,
                                 "corrupt dirent in directory " +
                                     std::to_string(dir));
                    continue;
                }
                auto target = load_inode(rec.ino);
                if (!target.is_ok()) {
                    record_error(report,
                                 "dirent to free inode " +
                                     std::to_string(rec.ino));
                    continue;
                }
                const auto type =
                    static_cast<FileType>((*target)->disk.type);
                if (static_cast<FileType>(rec.file_type) != type) {
                    record_error(report, "dirent type mismatch for inode " +
                                             std::to_string(rec.ino));
                }
                if (type == FileType::kDirectory) {
                    stack.push_back(rec.ino);
                } else {
                    if (!reachable.insert(rec.ino).second) {
                        // nestfs has no hard links: a file reached
                        // twice means crossed directory entries.
                        record_error(report,
                                     "file inode " +
                                         std::to_string(rec.ino) +
                                         " referenced twice");
                        continue;
                    }
                    ++report.files;
                    NESC_RETURN_IF_ERROR(check_inode(rec.ino));
                }
            }
        }
    }

    // Pass 2: orphan scan over the inode table.
    for (InodeId ino = 1; ino <= super_.inode_count; ++ino) {
        auto inode = load_inode(ino);
        if (!inode.is_ok())
            continue; // free slot
        if (!reachable.contains(ino)) {
            ++report.orphan_inodes;
            record_error(report,
                         "orphan inode " + std::to_string(ino));
        }
    }

    // Pass 3: leak scan over the data-area bitmap.
    for (std::uint64_t b = super_.data_start; b < super_.total_blocks;
         ++b) {
        if (bitmap_get(b) && !claimed.contains(b)) {
            ++report.leaked_blocks;
            if (report.leaked_blocks == 1) {
                record_error(report, "leaked block " + std::to_string(b) +
                                         " (first of possibly many)");
            }
        }
    }
    if (report.leaked_blocks > 0)
        report.clean = false;
    return report;
}

} // namespace nesc::fs
