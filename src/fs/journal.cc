#include "journal.h"

#include <algorithm>
#include <cstring>

#include "util/units.h"

namespace nesc::fs {

namespace {

std::uint64_t
payload_checksum(std::span<const std::byte> data)
{
    std::uint64_t sum = 0;
    for (std::byte b : data)
        sum = sum * 131 + static_cast<std::uint64_t>(b);
    return sum;
}

} // namespace

Journal::Journal(blk::BlockIo &io, std::uint64_t start, std::uint64_t nblocks,
                 std::uint64_t next_txn_id)
    : io_(io), start_(start), nblocks_(nblocks), next_txn_id_(next_txn_id)
{
}

void
Journal::stage(std::uint64_t blockno, std::span<const std::byte> data)
{
    staged_[blockno] = std::vector<std::byte>(data.begin(), data.end());
}

bool
Journal::is_staged(std::uint64_t blockno) const
{
    return staged_.contains(blockno);
}

util::Status
Journal::read_through(std::uint64_t blockno, std::span<std::byte> out)
{
    auto it = staged_.find(blockno);
    if (it != staged_.end()) {
        std::copy(it->second.begin(), it->second.end(), out.begin());
        return util::Status::ok();
    }
    return io_.read_blocks(blockno, 1, out);
}

util::Status
Journal::commit_chunk(
    const std::vector<std::pair<std::uint64_t, std::vector<std::byte>>>
        &chunk)
{
    const std::uint64_t txn_id = next_txn_id_++;

    // Transactions never wrap across the ring boundary: if this one
    // does not fit in the remaining tail, restart from the ring head.
    // Replay relies on this (it scans from the head and stops at the
    // first non-ascending transaction id).
    const std::uint64_t txn_size = chunk.size() + 2;
    if (cursor_ % nblocks_ + txn_size > nblocks_)
        cursor_ = util::round_up(cursor_, nblocks_);

    // 1. Descriptor block: header + target block numbers.
    std::vector<std::byte> desc(kFsBlockSize);
    JournalDescHeader header{kJournalDescMagic,
                             static_cast<std::uint32_t>(chunk.size()),
                             txn_id};
    std::memcpy(desc.data(), &header, sizeof(header));
    for (std::size_t i = 0; i < chunk.size(); ++i) {
        const std::uint64_t target = chunk[i].first;
        std::memcpy(desc.data() + sizeof(header) + i * sizeof(std::uint64_t),
                    &target, sizeof(target));
    }
    NESC_RETURN_IF_ERROR(io_.write_blocks(ring_block(cursor_++), 1, desc));

    // 2. Payload blocks, accumulating the checksum.
    std::uint64_t checksum = 0;
    for (const auto &[target, data] : chunk) {
        (void)target;
        checksum += payload_checksum(data);
        NESC_RETURN_IF_ERROR(
            io_.write_blocks(ring_block(cursor_++), 1, data));
    }

    // 3. Commit record. A torn transaction lacks a matching commit and
    // is ignored at replay.
    std::vector<std::byte> commit_blk(kFsBlockSize);
    JournalCommitRecord commit{kJournalCommitMagic, 0, txn_id, checksum};
    std::memcpy(commit_blk.data(), &commit, sizeof(commit));
    NESC_RETURN_IF_ERROR(
        io_.write_blocks(ring_block(cursor_++), 1, commit_blk));

    // 4. Checkpoint: write the real locations.
    for (const auto &[target, data] : chunk)
        NESC_RETURN_IF_ERROR(io_.write_blocks(target, 1, data));

    ++commits_;
    blocks_journaled_ += chunk.size();
    return util::Status::ok();
}

util::Status
Journal::commit()
{
    if (staged_.empty())
        return util::Status::ok();
    // A transaction (desc + payload + commit) must fit in the ring and
    // in one descriptor block; split oversized commits.
    const std::uint64_t max_per_txn =
        std::min<std::uint64_t>(kMaxTxnBlocks,
                                nblocks_ > 2 ? nblocks_ - 2 : 1);

    std::vector<std::pair<std::uint64_t, std::vector<std::byte>>> chunk;
    for (auto &[blockno, data] : staged_) {
        chunk.emplace_back(blockno, std::move(data));
        if (chunk.size() == max_per_txn) {
            NESC_RETURN_IF_ERROR(commit_chunk(chunk));
            chunk.clear();
        }
    }
    if (!chunk.empty())
        NESC_RETURN_IF_ERROR(commit_chunk(chunk));
    staged_.clear();
    return util::Status::ok();
}

util::Result<std::uint64_t>
Journal::replay()
{
    // Scan the ring from the start, replaying complete transactions in
    // ascending txn order until the chain breaks. Checkpointing makes
    // replay idempotent.
    std::uint64_t replayed = 0;
    std::uint64_t pos = 0;
    std::uint64_t prev_txn_id = 0;
    std::vector<std::byte> block(kFsBlockSize);

    while (pos + 2 < nblocks_) {
        NESC_RETURN_IF_ERROR(io_.read_blocks(ring_block(pos), 1, block));
        JournalDescHeader header;
        std::memcpy(&header, block.data(), sizeof(header));
        if (header.magic != kJournalDescMagic || header.count == 0 ||
            header.count > kMaxTxnBlocks)
            break;
        // Stale transactions left over from a previous ring pass have
        // lower ids than the fresh ones at the head; stop there.
        if (replayed > 0 && header.txn_id <= prev_txn_id)
            break;
        if (pos + 1 + header.count + 1 > nblocks_)
            break; // would wrap past the scan window
        std::vector<std::uint64_t> targets(header.count);
        std::memcpy(targets.data(), block.data() + sizeof(header),
                    header.count * sizeof(std::uint64_t));

        std::vector<std::vector<std::byte>> payload(header.count);
        std::uint64_t checksum = 0;
        for (std::uint32_t i = 0; i < header.count; ++i) {
            payload[i].resize(kFsBlockSize);
            NESC_RETURN_IF_ERROR(
                io_.read_blocks(ring_block(pos + 1 + i), 1, payload[i]));
            checksum += payload_checksum(payload[i]);
        }
        NESC_RETURN_IF_ERROR(io_.read_blocks(
            ring_block(pos + 1 + header.count), 1, block));
        JournalCommitRecord commit;
        std::memcpy(&commit, block.data(), sizeof(commit));
        if (commit.magic != kJournalCommitMagic ||
            commit.txn_id != header.txn_id || commit.checksum != checksum)
            break; // torn transaction: stop replay here

        for (std::uint32_t i = 0; i < header.count; ++i)
            NESC_RETURN_IF_ERROR(io_.write_blocks(targets[i], 1,
                                                  payload[i]));
        ++replayed;
        prev_txn_id = header.txn_id;
        next_txn_id_ = std::max(next_txn_id_, header.txn_id + 1);
        pos += 2 + header.count;
    }
    cursor_ = pos;
    return replayed;
}

} // namespace nesc::fs
