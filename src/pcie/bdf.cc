#include "bdf.h"

#include <cstdio>

namespace nesc::pcie {

std::string
Bdf::to_string() const
{
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%02x:%02x.%u", bus, device,
                  static_cast<unsigned>(function));
    return buf;
}

} // namespace nesc::pcie
