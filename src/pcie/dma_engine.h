/**
 * @file
 * Device-side DMA engine.
 *
 * NeSC multiplexes all traffic between the device and host memory
 * through a single DMA engine (paper §V). The engine models the PCIe
 * link as a serialized bandwidth/latency resource; transfers complete
 * asynchronously via simulator events, which is what lets the block-walk
 * unit overlap two tree walks to hide DMA latency.
 */
#ifndef NESC_PCIE_DMA_ENGINE_H
#define NESC_PCIE_DMA_ENGINE_H

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "obs/trace.h"
#include "pcie/bdf.h"
#include "pcie/dma_window.h"
#include "pcie/host_memory.h"
#include "sim/bandwidth_server.h"
#include "sim/callback.h"
#include "sim/simulator.h"
#include "util/status.h"

namespace nesc::pcie {

/** Link parameters for the DMA engine. */
struct DmaConfig {
    /** Sustained link rate. PCIe gen2 x8 payload rate ~ 3.2 GB/s. */
    std::uint64_t bytes_per_sec = 3'200'000'000;
    /** Per-transaction link latency (posting + completion). */
    sim::Duration latency = 900; // ~0.9 us round trip
};

/** Asynchronous DMA engine shared by all NeSC functions. */
class DmaEngine {
  public:
    /**
     * Completion handlers are small-buffer move-only callables, not
     * `std::function`: the engine carries one per transfer through the
     * link-completion event, and the controller's captures (a BlockOp
     * plus pointers) overflow the library small-object buffer, which
     * would cost a malloc/free pair per block transfer on the hot
     * path. The inline budget is sized so those captures — and the
     * wrapper itself nested inside the scheduled sim::Callback — stay
     * on the stack.
     */
    using ReadDone =
        sim::BasicCallback<104, util::Status, std::vector<std::byte>>;
    using WriteDone = sim::BasicCallback<104, util::Status>;
    /**
     * Fault-injection hook invoked on every completed DMA read, after
     * the functional copy but before delivery. The hook may rewrite
     * the payload (bus corruption) or replace the status with an error
     * (poisoned TLP). Used by the fault-injection harness to poison
     * extent-tree node reads in flight.
     */
    using ReadFaultHook = std::function<void(
        HostAddr addr, std::vector<std::byte> &data, util::Status &status)>;
    /**
     * Invoked synchronously whenever an attributed transfer (or an
     * explicit check_window() call) violates the function's DMA
     * windows, before the transfer is failed. The controller hooks
     * this to count the violation and quarantine the function.
     */
    using ViolationHook =
        std::function<void(FunctionId fn, HostAddr addr,
                           std::uint64_t size)>;

    DmaEngine(sim::Simulator &simulator, HostMemory &host_memory,
              const DmaConfig &config = {});

    /**
     * Reads @p size bytes from host memory at @p addr; @p done fires
     * when the transfer completes on the link. The unattributed form
     * is for trusted (hypervisor/PF) transfers and skips the window
     * check.
     */
    void read(HostAddr addr, std::uint64_t size, ReadDone done);

    /**
     * Reads on behalf of @p fn: the access must fall inside @p fn's
     * DMA windows (when enforced), else the transfer is refused —
     * @p done fires with PERMISSION_DENIED after the link latency and
     * host memory is never touched.
     */
    void read(FunctionId fn, HostAddr addr, std::uint64_t size,
              ReadDone done);

    /** Writes @p data to host memory at @p addr. */
    void write(HostAddr addr, std::vector<std::byte> data, WriteDone done);

    /** Window-checked write on behalf of @p fn. */
    void write(FunctionId fn, HostAddr addr, std::vector<std::byte> data,
               WriteDone done);

    /** Writes @p size zero bytes to host memory at @p addr (hole reads). */
    void write_zero(HostAddr addr, std::uint64_t size, WriteDone done);

    /** Window-checked zero-fill on behalf of @p fn. */
    void write_zero(FunctionId fn, HostAddr addr, std::uint64_t size,
                    WriteDone done);

    /**
     * Timing-only booking of the link for @p bytes starting at now;
     * returns the completion time. Used for transfers whose payload is
     * handled functionally elsewhere (e.g. descriptor prefetch).
     */
    sim::Time book(std::uint64_t bytes)
    {
        return link_.acquire(simulator_.now(), bytes);
    }

    std::uint64_t total_bytes() const { return link_.total_bytes(); }
    std::uint64_t total_transfers() const { return link_.total_transfers(); }
    const DmaConfig &config() const { return config_; }

    /** Installs (or clears, with nullptr) the read fault hook. */
    void set_read_fault_hook(ReadFaultHook hook)
    {
        read_fault_hook_ = std::move(hook);
    }

    /**
     * Attaches the permission table consulted by the attributed
     * transfer forms; nullptr (the default) disables checking. The
     * table must outlive the engine.
     */
    void set_window_table(const DmaWindowTable *table)
    {
        window_table_ = table;
    }

    /** Installs (or clears) the window-violation hook. */
    void set_violation_hook(ViolationHook hook)
    {
        violation_hook_ = std::move(hook);
    }

    /**
     * Checks [addr, addr + size) against @p fn's windows without
     * transferring, counting violations and firing the hook exactly
     * like an attributed transfer would. Used for accesses whose data
     * movement is modelled elsewhere (ring reads are functional, with
     * timing booked per record).
     */
    util::Status check_window(FunctionId fn, HostAddr addr,
                              std::uint64_t size);

    /** Attributed transfers refused by the window table. */
    std::uint64_t window_violations() const { return window_violations_; }

    /**
     * Installs (or clears, with nullptr) a lifecycle tracer: every
     * transfer records a kDmaRead/kDmaWrite span (unattributed
     * transfers land on the PF track). The tracer must outlive the
     * engine or be cleared first.
     */
    void set_tracer(obs::Tracer *tracer) { tracer_ = tracer; }

    /** The PCIe-link resource (for observer hooks and tests). */
    sim::BandwidthServer &link() { return link_; }

    /**
     * Returns a payload buffer of exactly @p size bytes, recycled from
     * a completed transfer when one of that size is available. The
     * engine recycles every write payload automatically after it lands
     * in host memory; read consumers that drop their payload on the
     * floor can hand it back via recycle_buffer() instead. Transfer
     * sizes repeat heavily (block payloads, tree nodes, completion
     * records), so steady state runs entirely on recycled buffers
     * instead of a malloc/free pair per transfer.
     */
    std::vector<std::byte> acquire_buffer(std::uint64_t size);

    /** Returns @p buf to the pool for a future acquire_buffer(). */
    void recycle_buffer(std::vector<std::byte> &&buf);

  private:
    /** OK, or the violation status after counting + hook. */
    util::Status precheck(FunctionId fn, HostAddr addr,
                          std::uint64_t size);
    // Post-precheck transfer bodies, attributed to @p fn for tracing.
    void read_impl(FunctionId fn, HostAddr addr, std::uint64_t size,
                   ReadDone done);
    void write_impl(FunctionId fn, HostAddr addr,
                    std::vector<std::byte> data, WriteDone done);
    void write_zero_impl(FunctionId fn, HostAddr addr, std::uint64_t size,
                         WriteDone done);

    sim::Simulator &simulator_;
    HostMemory &host_memory_;
    DmaConfig config_;
    sim::BandwidthServer link_;
    ReadFaultHook read_fault_hook_;
    const DmaWindowTable *window_table_ = nullptr;
    ViolationHook violation_hook_;
    std::uint64_t window_violations_ = 0;
    obs::Tracer *tracer_ = nullptr;

    /**
     * Recycled payload buffers, bucketed by exact size. Buffers carry
     * their transfer size as vector::size(), so only an exact-size
     * spare can be reused without a value-initializing resize; the
     * handful of distinct transfer sizes in flight keeps the bucket
     * list short.
     */
    struct BufferBucket {
        std::uint64_t size;
        std::vector<std::vector<std::byte>> spare;
    };
    /**
     * Per-bucket spare cap: sized above the worst-case in-flight
     * population (max functions x queue depth x blocks per command) so
     * a full pipeline draining at once does not overflow the pool and
     * fall back to the allocator.
     */
    static constexpr std::size_t kMaxSpareBuffers = 1024;
    std::vector<BufferBucket> buffer_pool_;
};

} // namespace nesc::pcie

#endif // NESC_PCIE_DMA_ENGINE_H
