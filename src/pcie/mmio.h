/**
 * @file
 * Memory-mapped I/O routing.
 *
 * A device exposes base address registers (BARs); the interconnect maps
 * each BAR into the system address space and routes loads/stores to the
 * owning device. NeSC's prototype emulated SR-IOV by slicing one BAR
 * into 4 KB pages — page 0 is the PF, page i is VF i — and the same
 * slicing is modelled here by BarPageRouter.
 */
#ifndef NESC_PCIE_MMIO_H
#define NESC_PCIE_MMIO_H

#include <cstdint>
#include <map>
#include <string>

#include "pcie/bdf.h"
#include "util/status.h"

namespace nesc::pcie {

/** Target of MMIO accesses routed by function. */
class FunctionMmioDevice {
  public:
    virtual ~FunctionMmioDevice() = default;

    /** 4/8-byte load at @p offset within function @p fn's register page. */
    virtual util::Result<std::uint64_t>
    mmio_read(FunctionId fn, std::uint64_t offset, unsigned size) = 0;

    /** 4/8-byte store; doorbell and control registers live here. */
    virtual util::Status mmio_write(FunctionId fn, std::uint64_t offset,
                                    std::uint64_t value, unsigned size) = 0;
};

/**
 * Routes BAR-relative addresses to (function, register offset) pairs by
 * slicing the BAR into fixed-size pages, exactly like the prototype's
 * SR-IOV emulation. With true SR-IOV each VF would own its own BAR; the
 * mapping is identical from the device's point of view.
 */
class BarPageRouter {
  public:
    /**
     * @param device register-file owner.
     * @param page_size bytes per function page (prototype: 4 KiB).
     * @param num_functions PF + number of supported VFs.
     */
    BarPageRouter(FunctionMmioDevice &device, std::uint64_t page_size,
                  FunctionId num_functions)
        : device_(device), page_size_(page_size),
          num_functions_(num_functions)
    {
    }

    /** Total BAR size implied by the page layout. */
    std::uint64_t bar_size() const { return page_size_ * num_functions_; }

    /** Routed load at BAR-relative @p addr. */
    util::Result<std::uint64_t> read(std::uint64_t addr, unsigned size);

    /** Routed store at BAR-relative @p addr. */
    util::Status write(std::uint64_t addr, std::uint64_t value,
                       unsigned size);

    /** BAR-relative base of function @p fn's page. */
    std::uint64_t
    function_base(FunctionId fn) const
    {
        return static_cast<std::uint64_t>(fn) * page_size_;
    }

  private:
    util::Result<std::pair<FunctionId, std::uint64_t>>
    decode(std::uint64_t addr) const;

    FunctionMmioDevice &device_;
    std::uint64_t page_size_;
    FunctionId num_functions_;
};

} // namespace nesc::pcie

#endif // NESC_PCIE_MMIO_H
