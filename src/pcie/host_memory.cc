#include "host_memory.h"

#include <string>

#include "util/units.h"

namespace nesc::pcie {

HostMemory::HostMemory(std::uint64_t size) : data_(size)
{
    // Reserve address 0 so a null HostAddr can act as a sentinel
    // (mirrors how kernels never hand out physical page zero to DMA).
    if (size > 8)
        free_list_[8] = size - 8;
}

util::Status
HostMemory::check_range(HostAddr addr, std::uint64_t size) const
{
    if (addr > data_.size() || size > data_.size() - addr) {
        return util::out_of_range_error(
            "host memory access [" + std::to_string(addr) + ", +" +
            std::to_string(size) + ") exceeds " +
            std::to_string(data_.size()));
    }
    return util::Status::ok();
}

util::Status
HostMemory::read(HostAddr addr, std::span<std::byte> out) const
{
    NESC_RETURN_IF_ERROR(check_range(addr, out.size()));
    // Zero-length spans may carry a null data() — UB to pass to memcpy.
    if (!out.empty())
        std::memcpy(out.data(), data_.data() + addr, out.size());
    return util::Status::ok();
}

util::Status
HostMemory::write(HostAddr addr, std::span<const std::byte> in)
{
    NESC_RETURN_IF_ERROR(check_range(addr, in.size()));
    if (!in.empty())
        std::memcpy(data_.data() + addr, in.data(), in.size());
    return util::Status::ok();
}

util::Status
HostMemory::fill_zero(HostAddr addr, std::uint64_t size)
{
    NESC_RETURN_IF_ERROR(check_range(addr, size));
    std::memset(data_.data() + addr, 0, size);
    return util::Status::ok();
}

util::Result<HostAddr>
HostMemory::alloc(std::uint64_t size, std::uint64_t align)
{
    if (size == 0 || !util::is_pow2(align))
        return util::invalid_argument_error("alloc(size=0) or bad align");
    for (auto it = free_list_.begin(); it != free_list_.end(); ++it) {
        const HostAddr start = it->first;
        const std::uint64_t len = it->second;
        const HostAddr aligned = util::round_up(start, align);
        const std::uint64_t pad = aligned - start;
        if (len < pad || len - pad < size)
            continue;
        // Split the free block: [start, aligned) stays free as padding,
        // [aligned, aligned+size) is allocated, remainder stays free.
        const std::uint64_t remainder = len - pad - size;
        free_list_.erase(it);
        if (pad > 0)
            free_list_[start] = pad;
        if (remainder > 0)
            free_list_[aligned + size] = remainder;
        live_allocs_[aligned] = size;
        allocated_bytes_ += size;
        return aligned;
    }
    return util::resource_exhausted_error(
        "host memory allocator: no region of " + std::to_string(size) +
        " bytes available");
}

util::Status
HostMemory::free(HostAddr addr)
{
    auto it = live_allocs_.find(addr);
    if (it == live_allocs_.end()) {
        return util::invalid_argument_error(
            "free of unallocated host address " + std::to_string(addr));
    }
    std::uint64_t size = it->second;
    allocated_bytes_ -= size;
    live_allocs_.erase(it);

    // Insert into the free list, coalescing with neighbours.
    auto next = free_list_.lower_bound(addr);
    if (next != free_list_.end() && addr + size == next->first) {
        size += next->second;
        next = free_list_.erase(next);
    }
    if (next != free_list_.begin()) {
        auto prev = std::prev(next);
        if (prev->first + prev->second == addr) {
            prev->second += size;
            return util::Status::ok();
        }
    }
    free_list_[addr] = size;
    return util::Status::ok();
}

} // namespace nesc::pcie
