/**
 * @file
 * Host-memory-resident ring buffer.
 *
 * The de facto standard device/driver communication structure (paper
 * §V): the driver produces fixed-size records into a ring in host DRAM
 * and rings a doorbell; the device consumes them (and symmetrically for
 * completion rings). Indices are free-running 32-bit counters stored in
 * the ring header, so both endpoints see a consistent state through
 * plain memory reads — the timing of device-side accesses is charged
 * separately via the DMA engine.
 */
#ifndef NESC_PCIE_HOST_RING_H
#define NESC_PCIE_HOST_RING_H

#include <cstdint>
#include <span>

#include "pcie/host_memory.h"
#include "util/status.h"

namespace nesc::pcie {

/** Fixed-record SPSC ring living in HostMemory. */
class HostRing {
  public:
    /** On-memory header preceding the record array. */
    struct Header {
        std::uint32_t magic;
        std::uint32_t capacity;    ///< number of record slots
        std::uint32_t record_size; ///< bytes per record
        std::uint32_t head;        ///< consumer counter (free-running)
        std::uint32_t tail;        ///< producer counter (free-running)
        std::uint32_t pad;
    };

    static constexpr std::uint32_t kMagic = 0x4e526e67; // "NRng"

    /**
     * Structural validity of a header image: magic, non-empty shape,
     * and free-running counter consistency (the used count tail - head
     * is computed in wrapping 32-bit arithmetic, so any corruption
     * that regresses tail below head shows up as used > capacity).
     * The ring lives in memory the producer can scribble over, so
     * every accessor revalidates instead of trusting its attach-time
     * snapshot.
     */
    static util::Status validate_header(const Header &header);

    /** Bytes of host memory needed for a ring of the given shape. */
    static std::uint64_t
    footprint(std::uint32_t capacity, std::uint32_t record_size)
    {
        return sizeof(Header) +
               static_cast<std::uint64_t>(capacity) * record_size;
    }

    /**
     * Formats a new ring at @p base (memory must already be owned by
     * the caller) and returns an accessor for it.
     */
    static util::Result<HostRing> create(HostMemory &memory, HostAddr base,
                                         std::uint32_t capacity,
                                         std::uint32_t record_size);

    /** Attaches to a ring previously formatted at @p base. */
    static util::Result<HostRing> attach(HostMemory &memory, HostAddr base);

    /**
     * Producer: appends one record. Fails with UNAVAILABLE when the
     * ring is full (the driver must back off and retry).
     */
    util::Status push(std::span<const std::byte> record);

    /**
     * Consumer: pops the oldest record into @p out (whose size must be
     * exactly record_size). Returns false when the ring is empty, and
     * DATA_LOSS when the header no longer validates or its shape
     * changed since attach.
     */
    util::Result<bool> pop(std::span<std::byte> out);

    /**
     * Records currently queued. A corrupted header (counters
     * inconsistent, magic or shape clobbered) surfaces as DATA_LOSS
     * rather than a bogus huge count.
     */
    util::Result<std::uint32_t> size() const;

    /**
     * Reads and validates the current header, additionally rejecting
     * any shape (capacity/record_size) change since this accessor was
     * created — a producer must not resize a live ring under its
     * consumer.
     */
    util::Result<Header> load_header() const;

    std::uint32_t capacity() const { return capacity_; }
    std::uint32_t record_size() const { return record_size_; }
    HostAddr base() const { return base_; }

  private:
    HostRing(HostMemory &memory, HostAddr base, std::uint32_t capacity,
             std::uint32_t record_size)
        : memory_(&memory), base_(base), capacity_(capacity),
          record_size_(record_size)
    {
    }

    HostAddr
    slot_addr(std::uint32_t counter) const
    {
        return base_ + sizeof(Header) +
               static_cast<std::uint64_t>(counter % capacity_) *
                   record_size_;
    }

    HostMemory *memory_;
    HostAddr base_;
    std::uint32_t capacity_;
    std::uint32_t record_size_;
};

} // namespace nesc::pcie

#endif // NESC_PCIE_HOST_RING_H
