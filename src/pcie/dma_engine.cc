#include "dma_engine.h"

#include <utility>

namespace nesc::pcie {

DmaEngine::DmaEngine(sim::Simulator &simulator, HostMemory &host_memory,
                     const DmaConfig &config)
    : simulator_(simulator), host_memory_(host_memory), config_(config),
      link_(config.bytes_per_sec, config.latency)
{
}

void
DmaEngine::read(HostAddr addr, std::uint64_t size, ReadDone done)
{
    const sim::Time completion = link_.acquire(simulator_.now(), size);
    simulator_.schedule_at(
        completion, [this, addr, size, done = std::move(done)]() {
            std::vector<std::byte> data(size);
            util::Status status = host_memory_.read(addr, data);
            if (!status.is_ok())
                data.clear();
            else if (read_fault_hook_)
                read_fault_hook_(addr, data, status);
            done(std::move(status), std::move(data));
        });
}

void
DmaEngine::write(HostAddr addr, std::vector<std::byte> data, WriteDone done)
{
    const sim::Time completion = link_.acquire(simulator_.now(), data.size());
    simulator_.schedule_at(
        completion,
        [this, addr, data = std::move(data), done = std::move(done)]() {
            done(host_memory_.write(addr, data));
        });
}

void
DmaEngine::write_zero(HostAddr addr, std::uint64_t size, WriteDone done)
{
    const sim::Time completion = link_.acquire(simulator_.now(), size);
    simulator_.schedule_at(completion,
                           [this, addr, size, done = std::move(done)]() {
                               done(host_memory_.fill_zero(addr, size));
                           });
}

} // namespace nesc::pcie
