#include "dma_engine.h"

#include <utility>

namespace nesc::pcie {

DmaEngine::DmaEngine(sim::Simulator &simulator, HostMemory &host_memory,
                     const DmaConfig &config)
    : simulator_(simulator), host_memory_(host_memory), config_(config),
      link_(config.bytes_per_sec, config.latency)
{
}

util::Status
DmaEngine::check_window(FunctionId fn, HostAddr addr, std::uint64_t size)
{
    return precheck(fn, addr, size);
}

std::vector<std::byte>
DmaEngine::acquire_buffer(std::uint64_t size)
{
    for (BufferBucket &bucket : buffer_pool_) {
        if (bucket.size == size && !bucket.spare.empty()) {
            std::vector<std::byte> buf = std::move(bucket.spare.back());
            bucket.spare.pop_back();
            return buf;
        }
    }
    return std::vector<std::byte>(size);
}

void
DmaEngine::recycle_buffer(std::vector<std::byte> &&buf)
{
    if (buf.empty())
        return;
    for (BufferBucket &bucket : buffer_pool_) {
        if (bucket.size == buf.size()) {
            if (bucket.spare.size() < kMaxSpareBuffers)
                bucket.spare.push_back(std::move(buf));
            return;
        }
    }
    buffer_pool_.push_back({buf.size(), {}});
    buffer_pool_.back().spare.push_back(std::move(buf));
}

util::Status
DmaEngine::precheck(FunctionId fn, HostAddr addr, std::uint64_t size)
{
    if (window_table_ == nullptr)
        return util::Status::ok();
    util::Status checked = window_table_->check(fn, addr, size);
    if (!checked.is_ok()) {
        ++window_violations_;
        if (violation_hook_)
            violation_hook_(fn, addr, size);
    }
    return checked;
}

void
DmaEngine::read(FunctionId fn, HostAddr addr, std::uint64_t size,
                ReadDone done)
{
    util::Status checked = precheck(fn, addr, size);
    if (!checked.is_ok()) {
        // Refused before any data moves: the completion carries the
        // link latency (the TLP round trip happened) but no payload
        // time and no host-memory access.
        simulator_.schedule_in(
            config_.latency,
            [checked = std::move(checked), done = std::move(done)]() {
                done(checked, {});
            });
        return;
    }
    read_impl(fn, addr, size, std::move(done));
}

void
DmaEngine::write(FunctionId fn, HostAddr addr, std::vector<std::byte> data,
                 WriteDone done)
{
    util::Status checked = precheck(fn, addr, data.size());
    if (!checked.is_ok()) {
        simulator_.schedule_in(
            config_.latency,
            [checked = std::move(checked), done = std::move(done)]() {
                done(checked);
            });
        return;
    }
    write_impl(fn, addr, std::move(data), std::move(done));
}

void
DmaEngine::write_zero(FunctionId fn, HostAddr addr, std::uint64_t size,
                      WriteDone done)
{
    util::Status checked = precheck(fn, addr, size);
    if (!checked.is_ok()) {
        simulator_.schedule_in(
            config_.latency,
            [checked = std::move(checked), done = std::move(done)]() {
                done(checked);
            });
        return;
    }
    write_zero_impl(fn, addr, size, std::move(done));
}

void
DmaEngine::read(HostAddr addr, std::uint64_t size, ReadDone done)
{
    read_impl(kPhysicalFunctionId, addr, size, std::move(done));
}

void
DmaEngine::write(HostAddr addr, std::vector<std::byte> data, WriteDone done)
{
    write_impl(kPhysicalFunctionId, addr, std::move(data), std::move(done));
}

void
DmaEngine::write_zero(HostAddr addr, std::uint64_t size, WriteDone done)
{
    write_zero_impl(kPhysicalFunctionId, addr, size, std::move(done));
}

void
DmaEngine::read_impl(FunctionId fn, HostAddr addr, std::uint64_t size,
                     ReadDone done)
{
    const sim::Time start = simulator_.now();
    const sim::Time completion = link_.acquire(start, size);
    if (tracer_ != nullptr && tracer_->enabled())
        tracer_->span(obs::Stage::kDmaRead, fn, start, completion, addr,
                      size);
    simulator_.schedule_at(
        completion, [this, addr, size, done = std::move(done)]() {
            std::vector<std::byte> data = acquire_buffer(size);
            util::Status status = host_memory_.read(addr, data);
            if (!status.is_ok())
                data.clear();
            else if (read_fault_hook_)
                read_fault_hook_(addr, data, status);
            done(std::move(status), std::move(data));
        });
}

void
DmaEngine::write_impl(FunctionId fn, HostAddr addr,
                      std::vector<std::byte> data, WriteDone done)
{
    const sim::Time start = simulator_.now();
    const sim::Time completion = link_.acquire(start, data.size());
    if (tracer_ != nullptr && tracer_->enabled())
        tracer_->span(obs::Stage::kDmaWrite, fn, start, completion, addr,
                      data.size());
    simulator_.schedule_at(
        completion,
        [this, addr, data = std::move(data),
         done = std::move(done)]() mutable {
            done(host_memory_.write(addr, data));
            recycle_buffer(std::move(data));
        });
}

void
DmaEngine::write_zero_impl(FunctionId fn, HostAddr addr,
                           std::uint64_t size, WriteDone done)
{
    const sim::Time start = simulator_.now();
    const sim::Time completion = link_.acquire(start, size);
    if (tracer_ != nullptr && tracer_->enabled())
        tracer_->span(obs::Stage::kDmaWrite, fn, start, completion, addr,
                      size);
    simulator_.schedule_at(completion,
                           [this, addr, size, done = std::move(done)]() {
                               done(host_memory_.fill_zero(addr, size));
                           });
}

} // namespace nesc::pcie
