/**
 * @file
 * PCIe bus:device:function addressing.
 *
 * Per the SR-IOV specification the NeSC PF and its VFs share bus and
 * device IDs and differ only in the function number; the function ID is
 * originated by the device's PCIe interface and is unforgeable by a VM,
 * which is what makes it a safe isolation tag for request multiplexing.
 */
#ifndef NESC_PCIE_BDF_H
#define NESC_PCIE_BDF_H

#include <compare>
#include <cstdint>
#include <string>

namespace nesc::pcie {

/** A function identifier within one device; the PF is always 0. */
using FunctionId = std::uint16_t;

/** Function ID of the physical function per the SR-IOV spec. */
inline constexpr FunctionId kPhysicalFunctionId = 0;

/** bus:device:function PCIe address triplet. */
struct Bdf {
    std::uint8_t bus = 0;
    std::uint8_t device = 0;
    FunctionId function = 0;

    auto operator<=>(const Bdf &) const = default;

    /** Conventional "bb:dd.f" rendering. */
    std::string to_string() const;
};

} // namespace nesc::pcie

#endif // NESC_PCIE_BDF_H
