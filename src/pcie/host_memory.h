/**
 * @file
 * Byte-accurate host DRAM model.
 *
 * Both sides of the PCIe interconnect address this memory: drivers
 * (CPU side) build extent trees, command rings and data buffers in it,
 * and the NeSC device reads/writes it through its DMA engine. A simple
 * first-fit allocator lets drivers carve out regions the way a kernel
 * allocator would.
 */
#ifndef NESC_PCIE_HOST_MEMORY_H
#define NESC_PCIE_HOST_MEMORY_H

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <map>
#include <span>

#include "util/lazy_pages.h"
#include "util/status.h"

namespace nesc::pcie {

/** An address in simulated host physical memory. */
using HostAddr = std::uint64_t;

/** Sentinel null host address (the allocator never returns 0). */
inline constexpr HostAddr kNullHostAddr = 0;

/** Flat simulated host DRAM with a first-fit region allocator. */
class HostMemory {
  public:
    /**
     * Creates @p size bytes of zeroed memory. Backing pages are
     * demand-zero (util::LazyBytes), so untouched spans of a large
     * modelled DRAM cost neither time nor resident memory.
     */
    explicit HostMemory(std::uint64_t size);

    std::uint64_t size() const { return data_.size(); }

    /** Copies @p out.size() bytes from @p addr. */
    util::Status read(HostAddr addr, std::span<std::byte> out) const;

    /** Copies @p in into memory at @p addr. */
    util::Status write(HostAddr addr, std::span<const std::byte> in);

    /** Reads a trivially-copyable value at @p addr. */
    template <typename T>
    util::Result<T>
    read_pod(HostAddr addr) const
    {
        static_assert(std::is_trivially_copyable_v<T>);
        T value{};
        auto status = read(
            addr, std::span<std::byte>(reinterpret_cast<std::byte *>(&value),
                                       sizeof(T)));
        if (!status.is_ok())
            return status;
        return value;
    }

    /** Writes a trivially-copyable value at @p addr. */
    template <typename T>
    util::Status
    write_pod(HostAddr addr, const T &value)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        return write(addr, std::span<const std::byte>(
                               reinterpret_cast<const std::byte *>(&value),
                               sizeof(T)));
    }

    /** Zero-fills @p size bytes at @p addr. */
    util::Status fill_zero(HostAddr addr, std::uint64_t size);

    /**
     * Allocates @p size bytes aligned to @p align (power of two).
     * Returns RESOURCE_EXHAUSTED when no region fits.
     */
    util::Result<HostAddr> alloc(std::uint64_t size, std::uint64_t align = 8);

    /** Releases a region previously returned by alloc(). */
    util::Status free(HostAddr addr);

    /** Bytes currently handed out by the allocator. */
    std::uint64_t allocated_bytes() const { return allocated_bytes_; }

  private:
    util::Status check_range(HostAddr addr, std::uint64_t size) const;

    util::LazyBytes data_;
    // Free list keyed by start address -> length; allocations tracked
    // for validation of free().
    std::map<HostAddr, std::uint64_t> free_list_;
    std::map<HostAddr, std::uint64_t> live_allocs_;
    std::uint64_t allocated_bytes_ = 0;
};

} // namespace nesc::pcie

#endif // NESC_PCIE_HOST_MEMORY_H
