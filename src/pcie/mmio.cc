#include "mmio.h"

namespace nesc::pcie {

util::Result<std::pair<FunctionId, std::uint64_t>>
BarPageRouter::decode(std::uint64_t addr) const
{
    const std::uint64_t page = addr / page_size_;
    if (page >= num_functions_) {
        return util::out_of_range_error(
            "MMIO address " + std::to_string(addr) +
            " beyond BAR of " + std::to_string(bar_size()) + " bytes");
    }
    return std::pair<FunctionId, std::uint64_t>(
        static_cast<FunctionId>(page), addr % page_size_);
}

util::Result<std::uint64_t>
BarPageRouter::read(std::uint64_t addr, unsigned size)
{
    NESC_ASSIGN_OR_RETURN(auto target, decode(addr));
    return device_.mmio_read(target.first, target.second, size);
}

util::Status
BarPageRouter::write(std::uint64_t addr, std::uint64_t value, unsigned size)
{
    NESC_ASSIGN_OR_RETURN(auto target, decode(addr));
    return device_.mmio_write(target.first, target.second, value, size);
}

} // namespace nesc::pcie
