#include "host_ring.h"

#include <string>
#include <vector>

#include "util/units.h"

namespace nesc::pcie {

util::Result<HostRing>
HostRing::create(HostMemory &memory, HostAddr base, std::uint32_t capacity,
                 std::uint32_t record_size)
{
    if (capacity == 0 || record_size == 0)
        return util::invalid_argument_error("empty ring shape");
    Header header{kMagic, capacity, record_size, 0, 0, 0};
    NESC_RETURN_IF_ERROR(memory.write_pod(base, header));
    NESC_RETURN_IF_ERROR(memory.fill_zero(
        base + sizeof(Header),
        static_cast<std::uint64_t>(capacity) * record_size));
    return HostRing(memory, base, capacity, record_size);
}

util::Result<HostRing>
HostRing::attach(HostMemory &memory, HostAddr base)
{
    NESC_ASSIGN_OR_RETURN(auto header, memory.read_pod<Header>(base));
    if (header.magic != kMagic) {
        return util::data_loss_error("no ring at host address " +
                                     std::to_string(base));
    }
    NESC_RETURN_IF_ERROR(validate_header(header));
    return HostRing(memory, base, header.capacity, header.record_size);
}

util::Status
HostRing::validate_header(const Header &header)
{
    if (header.magic != kMagic)
        return util::data_loss_error("ring magic clobbered");
    if (header.capacity == 0 || header.record_size == 0)
        return util::data_loss_error("ring shape emptied");
    // Free-running counters: the used count is the wrapping 32-bit
    // difference, so a regressed or torn tail/head pair shows up as
    // more records queued than slots exist.
    if (header.tail - header.head > header.capacity)
        return util::data_loss_error("ring counters inconsistent");
    return util::Status::ok();
}

util::Result<HostRing::Header>
HostRing::load_header() const
{
    NESC_ASSIGN_OR_RETURN(auto header, memory_->read_pod<Header>(base_));
    NESC_RETURN_IF_ERROR(validate_header(header));
    if (header.capacity != capacity_ || header.record_size != record_size_)
        return util::data_loss_error("ring shape changed after attach");
    return header;
}

util::Status
HostRing::push(std::span<const std::byte> record)
{
    if (record.size() != record_size_)
        return util::invalid_argument_error("record size mismatch");
    NESC_ASSIGN_OR_RETURN(auto header, load_header());
    if (header.tail - header.head >= capacity_)
        return util::unavailable_error("ring full");
    NESC_RETURN_IF_ERROR(memory_->write(slot_addr(header.tail), record));
    header.tail++;
    return memory_->write_pod(base_, header);
}

util::Result<bool>
HostRing::pop(std::span<std::byte> out)
{
    if (out.size() != record_size_)
        return util::invalid_argument_error("record size mismatch");
    NESC_ASSIGN_OR_RETURN(auto header, load_header());
    if (header.tail == header.head)
        return false;
    NESC_RETURN_IF_ERROR(memory_->read(slot_addr(header.head), out));
    header.head++;
    NESC_RETURN_IF_ERROR(memory_->write_pod(base_, header));
    return true;
}

util::Result<std::uint32_t>
HostRing::size() const
{
    NESC_ASSIGN_OR_RETURN(auto header, load_header());
    return header.tail - header.head;
}

} // namespace nesc::pcie
