/**
 * @file
 * Message-signaled interrupt (MSI) delivery.
 *
 * NeSC raises interrupts toward two consumers: the hypervisor (write
 * misses, pruned-subtree faults, VF management events through the PF)
 * and guest VMs (request completions on their VF). Vectors are
 * allocated per function; delivery is asynchronous with a small
 * calibrated latency, like a real MSI write + LAPIC dispatch.
 */
#ifndef NESC_PCIE_INTERRUPTS_H
#define NESC_PCIE_INTERRUPTS_H

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "sim/simulator.h"
#include "util/status.h"

namespace nesc::pcie {

/** MSI vector number. */
using IrqVector = std::uint32_t;

/** Asynchronous interrupt controller. */
class InterruptController {
  public:
    using Handler = std::function<void()>;

    /**
     * @param delivery_latency time from device raise to handler entry
     *        (MSI write + interrupt dispatch).
     */
    explicit InterruptController(sim::Simulator &simulator,
                                 sim::Duration delivery_latency = 500)
        : simulator_(simulator), delivery_latency_(delivery_latency)
    {
    }

    /** Installs (or replaces) the handler for @p vector. */
    void
    set_handler(IrqVector vector, Handler handler)
    {
        handlers_[vector] = std::move(handler);
    }

    /** Removes the handler for @p vector. */
    void clear_handler(IrqVector vector) { handlers_.erase(vector); }

    /**
     * Raises @p vector; the handler (if any) runs delivery_latency
     * later. Raising an unhandled vector counts as spurious.
     */
    void
    raise(IrqVector vector)
    {
        ++raised_;
        simulator_.schedule_in(delivery_latency_, [this, vector]() {
            auto it = handlers_.find(vector);
            if (it == handlers_.end()) {
                ++spurious_;
                return;
            }
            ++delivered_;
            it->second();
        });
    }

    std::uint64_t raised() const { return raised_; }
    std::uint64_t delivered() const { return delivered_; }
    std::uint64_t spurious() const { return spurious_; }
    sim::Duration delivery_latency() const { return delivery_latency_; }

  private:
    sim::Simulator &simulator_;
    sim::Duration delivery_latency_;
    std::unordered_map<IrqVector, Handler> handlers_;
    std::uint64_t raised_ = 0;
    std::uint64_t delivered_ = 0;
    std::uint64_t spurious_ = 0;
};

} // namespace nesc::pcie

#endif // NESC_PCIE_INTERRUPTS_H
