/**
 * @file
 * Per-function DMA windows: an IOMMU-like permission table.
 *
 * NeSC's isolation claim is that a VF "cannot compromise data not
 * explicitly mapped into its virtual device" (paper §IV), yet every
 * field a guest driver writes into host memory — ring bases, buffer
 * pointers — is an arbitrary host address the device would otherwise
 * dereference on the guest's behalf. The window table closes that
 * confused-deputy hole: the hypervisor programs, per function, the
 * host-memory ranges the device may touch for that function (its
 * rings, its DMA buffers, its extent-tree image), and the DMA engine
 * refuses everything else before a byte moves.
 *
 * Enforcement is opt-in per function: a function with no table entry
 * (the PF, or a VF on a pre-windows hypervisor) is unrestricted,
 * which keeps the table backwards-compatible with flows that predate
 * it. Once the PF adds a window for a VF, that VF is confined to its
 * windows until they are cleared.
 */
#ifndef NESC_PCIE_DMA_WINDOW_H
#define NESC_PCIE_DMA_WINDOW_H

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "pcie/bdf.h"
#include "pcie/host_memory.h"
#include "util/status.h"

namespace nesc::pcie {

/** Per-function table of permitted host-memory ranges. */
class DmaWindowTable {
  public:
    /** One permitted range [base, base + size). */
    struct Window {
        HostAddr base = kNullHostAddr;
        std::uint64_t size = 0;
    };

    /**
     * Grants @p fn access to [base, base + size) and enables
     * enforcement for it. Zero-size or overflowing windows are
     * rejected.
     */
    util::Status
    add(FunctionId fn, HostAddr base, std::uint64_t size)
    {
        if (size == 0)
            return util::invalid_argument_error("empty DMA window");
        if (base + size < base)
            return util::invalid_argument_error("DMA window wraps");
        windows_[fn].push_back(Window{base, size});
        return util::Status::ok();
    }

    /** Drops every window of @p fn, disabling enforcement for it. */
    void clear(FunctionId fn) { windows_.erase(fn); }

    /** True when @p fn's DMA is confined to programmed windows. */
    bool
    enforced(FunctionId fn) const
    {
        return windows_.find(fn) != windows_.end();
    }

    /** Number of windows programmed for @p fn. */
    std::size_t
    window_count(FunctionId fn) const
    {
        auto it = windows_.find(fn);
        return it == windows_.end() ? 0 : it->second.size();
    }

    /**
     * Checks a device-initiated access of [addr, addr + size) on
     * behalf of @p fn. Unenforced functions always pass; enforced
     * ones must land entirely inside a single window.
     */
    util::Status
    check(FunctionId fn, HostAddr addr, std::uint64_t size) const
    {
        auto it = windows_.find(fn);
        if (it == windows_.end())
            return util::Status::ok();
        if (addr + size < addr)
            return violation(fn, addr, size);
        for (const Window &w : it->second) {
            if (addr >= w.base && addr + size <= w.base + w.size)
                return util::Status::ok();
        }
        return violation(fn, addr, size);
    }

  private:
    static util::Status
    violation(FunctionId fn, HostAddr addr, std::uint64_t size)
    {
        return util::permission_denied_error(
            "DMA window violation: fn " + std::to_string(fn) + " at " +
            std::to_string(addr) + "+" + std::to_string(size));
    }

    std::unordered_map<FunctionId, std::vector<Window>> windows_;
};

} // namespace nesc::pcie

#endif // NESC_PCIE_DMA_WINDOW_H
