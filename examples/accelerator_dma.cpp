/**
 * @file
 * Accelerator-to-storage DMA (paper §I and §IV.D): NeSC VF instances
 * are real PCIe endpoints, so a GPU/FPGA on the interconnect can be
 * granted a VF and stream file data with device-to-device DMA — no
 * CPU or OS on the data path.
 *
 * This example models an accelerator that checksums a dataset file:
 *  1. the hypervisor exports the dataset as a VF (read-only intent);
 *  2. the "accelerator" drives the VF's command rings itself, keeping
 *     several DMA reads in flight, and folds each block into a
 *     checksum as it arrives;
 *  3. the result is compared against a host-side computation of the
 *     same checksum, and the example reports how much data moved and
 *     how long the accelerator pipeline took in simulated time.
 */
#include <cstdio>

#include "drivers/function_driver.h"
#include "virt/testbed.h"
#include "workloads/dd.h"

using namespace nesc;

namespace {

/** FNV-1a over a block, order-independent fold by block index. */
std::uint64_t
block_checksum(const std::vector<std::byte> &data)
{
    std::uint64_t h = 1469598103934665603ULL;
    for (std::byte b : data) {
        h ^= static_cast<std::uint64_t>(b);
        h *= 1099511628211ULL;
    }
    return h;
}

} // namespace

int
main()
{
    auto bed_or = virt::Testbed::create();
    if (!bed_or.is_ok()) {
        std::fprintf(stderr, "testbed: %s\n",
                     bed_or.status().to_string().c_str());
        return 1;
    }
    auto &bed = **bed_or;

    // 1. The hypervisor prepares a dataset file and fills it.
    const std::uint64_t dataset_blocks = 16 * 1024; // 16 MiB
    auto ino =
        bed.create_backing_file("/datasets/train.bin", dataset_blocks,
                                /*preallocate=*/true);
    if (!ino.is_ok()) {
        std::fprintf(stderr, "dataset: %s\n",
                     ino.status().to_string().c_str());
        return 1;
    }
    std::vector<std::byte> content(dataset_blocks * 1024);
    wl::fill_pattern(77, 0, content);
    if (!bed.hv_fs().write(*ino, 0, content).is_ok()) {
        std::fprintf(stderr, "dataset fill failed\n");
        return 1;
    }
    // Crucial coherence step (paper §IV.D): the hypervisor wrote the
    // dataset through its own buffer cache; before granting a device
    // direct access it must flush, or the accelerator will DMA stale
    // blocks from the media.
    if (!bed.hv_fs().sync().is_ok()) {
        std::fprintf(stderr, "dataset sync failed\n");
        return 1;
    }

    // 2. Export it as a VF for the accelerator.
    auto fn = bed.pf().create_vf(*ino, dataset_blocks);
    if (!fn.is_ok()) {
        std::fprintf(stderr, "create_vf: %s\n",
                     fn.status().to_string().c_str());
        return 1;
    }
    std::printf("dataset exported as VF %u (%llu MiB)\n", *fn,
                static_cast<unsigned long long>(dataset_blocks >> 10));

    // 3. The accelerator: drives the VF rings directly, 8 requests of
    //    32 blocks in flight, checksumming blocks as DMA completes.
    drv::FunctionDriverConfig acc_config;
    acc_config.max_chunk_blocks = 32; // accelerators use large bursts
    drv::FunctionDriver accel(bed.sim(), bed.host_memory(), bed.bar(),
                              bed.irq(), *fn, acc_config);
    if (!accel.init().is_ok()) {
        std::fprintf(stderr, "accelerator driver init failed\n");
        return 1;
    }

    constexpr std::uint32_t kInflight = 8;
    constexpr std::uint32_t kBurstBlocks = 32;
    auto buffer =
        bed.host_memory().alloc(kInflight * kBurstBlocks * 1024, 64);
    if (!buffer.is_ok()) {
        std::fprintf(stderr, "buffer alloc failed\n");
        return 1;
    }

    std::uint64_t checksum = 0;
    std::uint64_t next_block = 0;
    std::uint64_t done_blocks = 0;
    const sim::Time start = bed.sim().now();

    std::function<void(std::uint32_t)> issue = [&](std::uint32_t slot) {
        if (next_block >= dataset_blocks)
            return;
        const std::uint64_t first = next_block;
        next_block += kBurstBlocks;
        const pcie::HostAddr slot_buf =
            *buffer + static_cast<pcie::HostAddr>(slot) * kBurstBlocks *
                          1024;
        (void)accel.submit(
            ctrl::Opcode::kRead, first, kBurstBlocks, slot_buf,
            [&, slot, first, slot_buf](ctrl::CompletionStatus status) {
                if (status != ctrl::CompletionStatus::kOk) {
                    std::fprintf(stderr, "accelerator read failed\n");
                    std::exit(1);
                }
                std::vector<std::byte> burst(kBurstBlocks * 1024);
                (void)bed.host_memory().read(slot_buf, burst);
                checksum ^= block_checksum(burst) * (first + 1);
                done_blocks += kBurstBlocks;
                issue(slot);
            });
    };
    for (std::uint32_t slot = 0; slot < kInflight; ++slot)
        issue(slot);
    while (done_blocks < dataset_blocks) {
        if (!bed.sim().step()) {
            std::fprintf(stderr, "pipeline stalled\n");
            return 1;
        }
    }
    const sim::Duration elapsed = bed.sim().now() - start;

    // 4. Host-side verification of the checksum.
    std::uint64_t expected = 0;
    for (std::uint64_t first = 0; first < dataset_blocks;
         first += kBurstBlocks) {
        std::vector<std::byte> burst(
            content.begin() + static_cast<long>(first * 1024),
            content.begin() +
                static_cast<long>((first + kBurstBlocks) * 1024));
        expected ^= block_checksum(burst) * (first + 1);
    }

    std::printf("accelerator streamed %llu MiB in %.2f ms simulated "
                "(%.0f MB/s) with %u bursts in flight\n",
                static_cast<unsigned long long>(dataset_blocks >> 10),
                util::ns_to_ms(elapsed),
                util::bandwidth_mb_per_sec(dataset_blocks * 1024, elapsed),
                kInflight);
    std::printf("checksum %016llx — %s\n",
                static_cast<unsigned long long>(checksum),
                checksum == expected ? "verified against host"
                                     : "MISMATCH");
    return checksum == expected ? 0 : 1;
}
