/**
 * @file
 * Nested filesystems (paper §IV.D): a guest runs its own journaling
 * filesystem inside a virtual disk that is itself a file on the
 * hypervisor's journaling filesystem.
 *
 * Shows the nested-journaling inefficiency and NeSC's answer to it:
 * with NeSC the hypervisor's filesystem is not on the data path at
 * all, so the guest's data and journal writes are never re-journaled
 * by the host; the hypervisor only tracks its own metadata. The
 * example contrasts a virtio-file guest (whose every write crosses the
 * hypervisor FS) with a NeSC guest, running the same metadata-heavy
 * Postmark workload, and reports how much work the hypervisor
 * filesystem had to do in each case.
 */
#include <cstdio>

#include "virt/testbed.h"
#include "workloads/postmark.h"

using namespace nesc;

namespace {

struct RunOutcome {
    double txn_per_sec;
    std::uint64_t hv_journal_commits;
    std::uint64_t hv_bytes_written;
};

RunOutcome
run_guest(virt::Testbed &bed, virt::GuestVm &vm)
{
    const std::uint64_t commits_before =
        bed.hv_fs().counters().get("journal_commits");
    const std::uint64_t bytes_before =
        bed.hv_fs().counters().get("bytes_written");

    if (!vm.format_fs().is_ok()) {
        std::fprintf(stderr, "guest fs format failed\n");
        std::exit(1);
    }
    wl::PostmarkConfig config;
    config.initial_files = 30;
    config.transactions = 120;
    auto result = wl::run_postmark(bed.sim(), vm, config);
    if (!result.is_ok()) {
        std::fprintf(stderr, "postmark: %s\n",
                     result.status().to_string().c_str());
        std::exit(1);
    }
    return RunOutcome{
        result->transactions_per_sec,
        bed.hv_fs().counters().get("journal_commits") - commits_before,
        bed.hv_fs().counters().get("bytes_written") - bytes_before,
    };
}

} // namespace

int
main()
{
    virt::TestbedConfig config;
    config.device.capacity_bytes = 256ULL << 20;
    auto bed_or = virt::Testbed::create(config);
    if (!bed_or.is_ok()) {
        std::fprintf(stderr, "testbed: %s\n",
                     bed_or.status().to_string().c_str());
        return 1;
    }
    auto &bed = **bed_or;

    std::printf("hypervisor filesystem journal mode: metadata-only "
                "(the paper's recommended nested-FS tuning)\n\n");

    // Guest A: NeSC — direct VF assignment; the hypervisor FS only
    // sees allocation metadata, never guest data or guest journal.
    auto nesc_vm =
        bed.create_nesc_guest("/images/nested-nesc.img", 48 * 1024, true);
    if (!nesc_vm.is_ok()) {
        std::fprintf(stderr, "nesc guest: %s\n",
                     nesc_vm.status().to_string().c_str());
        return 1;
    }
    std::printf("running Postmark in the NeSC guest's nested fs...\n");
    const RunOutcome nesc = run_guest(bed, **nesc_vm);

    // Guest B: virtio backed by an image file — every guest write
    // (data AND guest-journal) funnels through the hypervisor FS.
    auto virtio_vm = bed.create_virtio_guest_file(
        "/images/nested-virtio.img", 48 * 1024, true);
    if (!virtio_vm.is_ok()) {
        std::fprintf(stderr, "virtio guest: %s\n",
                     virtio_vm.status().to_string().c_str());
        return 1;
    }
    std::printf("running Postmark in the virtio guest's nested fs...\n\n");
    const RunOutcome virtio = run_guest(bed, **virtio_vm);

    std::printf("%-34s %14s %14s\n", "", "NeSC guest", "virtio guest");
    std::printf("%-34s %14.0f %14.0f\n", "Postmark txn/s (simulated)",
                nesc.txn_per_sec, virtio.txn_per_sec);
    std::printf("%-34s %14llu %14llu\n",
                "hypervisor journal commits",
                static_cast<unsigned long long>(nesc.hv_journal_commits),
                static_cast<unsigned long long>(virtio.hv_journal_commits));
    std::printf("%-34s %14llu %14llu\n",
                "bytes through hypervisor FS",
                static_cast<unsigned long long>(nesc.hv_bytes_written),
                static_cast<unsigned long long>(virtio.hv_bytes_written));
    std::printf("\nNeSC keeps the hypervisor filesystem off the guest's "
                "data path: its journal work stays flat while the "
                "virtio guest re-journals through the host.\n");
    return 0;
}
