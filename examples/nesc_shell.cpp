/**
 * @file
 * nesc_shell: an interactive console for the NeSC platform.
 *
 *   ./examples/nesc_shell          # REPL on stdin
 *   ./examples/nesc_shell --demo   # scripted tour (used by CI)
 *
 * Lets a user poke the whole system by hand: create backing files,
 * attach VMs over VFs, issue I/O, inspect controller counters and
 * per-VF stats, tune QoS weights, prune trees, and fsck the
 * hypervisor filesystem. Type `help` for the command list.
 */
#include <cstdio>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "virt/testbed.h"
#include "workloads/dd.h"

using namespace nesc;

namespace {

class Shell {
  public:
    explicit Shell(virt::Testbed &bed) : bed_(bed) {}

    /** Executes one command line; returns false on `quit`. */
    bool
    execute(const std::string &line)
    {
        std::istringstream in(line);
        std::string cmd;
        if (!(in >> cmd) || cmd[0] == '#')
            return true;
        if (cmd == "quit" || cmd == "exit")
            return false;
        if (cmd == "help")
            help();
        else if (cmd == "status")
            status();
        else if (cmd == "attach")
            attach(in);
        else if (cmd == "detach")
            detach(in);
        else if (cmd == "vms")
            vms();
        else if (cmd == "write")
            io(in, true);
        else if (cmd == "read")
            io(in, false);
        else if (cmd == "dd")
            dd(in);
        else if (cmd == "qos")
            qos(in);
        else if (cmd == "prune")
            prune(in);
        else if (cmd == "stats")
            stats(in);
        else if (cmd == "fsck")
            fsck();
        else if (cmd == "ls")
            ls(in);
        else
            std::printf("unknown command '%s' (try `help`)\n",
                        cmd.c_str());
        return true;
    }

  private:
    void
    help()
    {
        std::printf(
            "commands:\n"
            "  status                         platform overview\n"
            "  attach <path> <MiB> [lazy]     create image + VF + VM\n"
            "  detach <vm>                    delete the VM's VF\n"
            "  vms                            list attached VMs\n"
            "  write <vm> <block> <count>     write pattern blocks\n"
            "  read <vm> <block> <count>      read + verify blocks\n"
            "  dd <vm|host> <bs_kib> <MiB> <r|w>   bandwidth run\n"
            "  qos <vm> <weight>              arbitration weight\n"
            "  prune <vm>                     prune the VF's tree\n"
            "  stats <vm>                     per-VF device stats\n"
            "  ls <path>                      hypervisor directory\n"
            "  fsck                           check the hypervisor fs\n"
            "  quit\n");
    }

    void
    status()
    {
        std::printf("t=%.3f ms | device %llu MiB | hv fs free %llu "
                    "blocks | %zu VMs attached\n",
                    util::ns_to_ms(bed_.sim().now()),
                    static_cast<unsigned long long>(
                        bed_.device().geometry().capacity_bytes >> 20),
                    static_cast<unsigned long long>(
                        bed_.hv_fs().free_blocks()),
                    vms_.size());
        std::printf("controller: %s\n",
                    bed_.controller().counters().to_string().c_str());
        std::printf("btlb: %.1f%% hit rate (%llu/%llu)\n",
                    100.0 * bed_.controller().btlb().hit_rate(),
                    static_cast<unsigned long long>(
                        bed_.controller().btlb().hits()),
                    static_cast<unsigned long long>(
                        bed_.controller().btlb().hits() +
                        bed_.controller().btlb().misses()));
    }

    void
    attach(std::istringstream &in)
    {
        std::string path, mode;
        std::uint64_t mib = 0;
        if (!(in >> path >> mib)) {
            std::printf("usage: attach <path> <MiB> [lazy]\n");
            return;
        }
        in >> mode;
        auto vm = bed_.create_nesc_guest(path, mib * 1024,
                                         /*preallocate=*/mode != "lazy");
        if (!vm.is_ok()) {
            std::printf("attach failed: %s\n",
                        vm.status().to_string().c_str());
            return;
        }
        const int id = next_vm_++;
        std::printf("vm%d attached: VF %u, %llu MiB (%s)\n", id,
                    *bed_.guest_vf(**vm),
                    static_cast<unsigned long long>(mib),
                    mode == "lazy" ? "lazy" : "preallocated");
        vms_[id] = std::move(vm).value();
    }

    void
    detach(std::istringstream &in)
    {
        virt::GuestVm *vm = parse_vm(in);
        if (!vm)
            return;
        auto fn = bed_.guest_vf(*vm);
        if (fn.is_ok())
            (void)bed_.pf().delete_vf(*fn);
        for (auto it = vms_.begin(); it != vms_.end(); ++it) {
            if (it->second.get() == vm) {
                vms_.erase(it);
                break;
            }
        }
        std::printf("detached\n");
    }

    void
    vms()
    {
        for (const auto &[id, vm] : vms_) {
            auto fn = bed_.guest_vf(*vm);
            std::printf("vm%d: VF %u, %llu blocks\n", id,
                        fn.is_ok() ? *fn : 0,
                        static_cast<unsigned long long>(
                            vm->device().num_blocks()));
        }
        if (vms_.empty())
            std::printf("(none)\n");
    }

    void
    io(std::istringstream &in, bool write)
    {
        virt::GuestVm *vm = parse_vm(in);
        std::uint64_t block = 0;
        std::uint32_t count = 0;
        if (!vm || !(in >> block >> count)) {
            std::printf("usage: %s <vm> <block> <count>\n",
                        write ? "write" : "read");
            return;
        }
        std::vector<std::byte> buf(count * 1024ULL);
        const sim::Time t0 = bed_.sim().now();
        util::Status status = util::Status::ok();
        if (write) {
            wl::fill_pattern(kShellSeed, block * 1024, buf);
            status = vm->raw_disk().write_blocks(block, count, buf);
        } else {
            status = vm->raw_disk().read_blocks(block, count, buf);
        }
        if (!status.is_ok()) {
            std::printf("I/O failed: %s\n", status.to_string().c_str());
            return;
        }
        const double us = util::ns_to_us(bed_.sim().now() - t0);
        if (write) {
            std::printf("wrote %u blocks at %llu in %.1f us\n", count,
                        static_cast<unsigned long long>(block), us);
        } else {
            const std::int64_t bad =
                wl::check_pattern(kShellSeed, block * 1024, buf);
            std::printf("read %u blocks at %llu in %.1f us (%s)\n", count,
                        static_cast<unsigned long long>(block), us,
                        bad < 0 ? "pattern verified"
                                : "pattern mismatch/uninitialized");
        }
    }

    void
    dd(std::istringstream &in)
    {
        std::string target, dir;
        std::uint64_t bs_kib = 0, mib = 0;
        if (!(in >> target >> bs_kib >> mib >> dir)) {
            std::printf("usage: dd <vm|host> <bs_kib> <MiB> <r|w>\n");
            return;
        }
        wl::DdConfig config;
        config.request_bytes = bs_kib * 1024;
        config.total_bytes = mib << 20;
        config.write = dir == "w";
        util::Result<wl::DdResult> result =
            util::internal_error("no target");
        if (target == "host") {
            result = wl::run_dd_raw(bed_.sim(), bed_.host_raw_io(),
                                    config);
        } else {
            std::istringstream vm_in(target);
            virt::GuestVm *vm = parse_vm(vm_in);
            if (!vm)
                return;
            result = wl::run_dd_raw(bed_.sim(), vm->raw_disk(), config);
        }
        if (!result.is_ok()) {
            std::printf("dd failed: %s\n",
                        result.status().to_string().c_str());
            return;
        }
        std::printf("%llu MiB %s in %.2f ms: %.1f MB/s, mean %.1f us\n",
                    static_cast<unsigned long long>(mib),
                    config.write ? "written" : "read",
                    util::ns_to_ms(result->elapsed),
                    result->bandwidth_mb_s, result->mean_latency_us);
    }

    void
    qos(std::istringstream &in)
    {
        virt::GuestVm *vm = parse_vm(in);
        std::uint32_t weight = 0;
        if (!vm || !(in >> weight)) {
            std::printf("usage: qos <vm> <weight>\n");
            return;
        }
        auto fn = bed_.guest_vf(*vm);
        util::Status status =
            fn.is_ok() ? bed_.pf().set_qos_weight(*fn, weight)
                       : fn.status();
        std::printf("%s\n", status.is_ok() ? "ok"
                                           : status.to_string().c_str());
    }

    void
    prune(std::istringstream &in)
    {
        virt::GuestVm *vm = parse_vm(in);
        if (!vm)
            return;
        auto fn = bed_.guest_vf(*vm);
        if (!fn.is_ok())
            return;
        auto pruned = bed_.pf().prune_vf_tree(
            *fn, 0, vm->device().num_blocks());
        (void)bed_.pf().flush_btlb();
        std::printf("pruned %zu subtrees\n",
                    pruned.is_ok() ? *pruned : 0);
    }

    void
    stats(std::istringstream &in)
    {
        virt::GuestVm *vm = parse_vm(in);
        if (!vm)
            return;
        auto fn = bed_.guest_vf(*vm);
        if (!fn.is_ok())
            return;
        const auto &s = bed_.controller().stats(*fn);
        std::printf("VF %u: cmds=%llu read=%llu written=%llu holes=%llu "
                    "faults=%llu completions=%llu\n",
                    *fn, static_cast<unsigned long long>(s.commands),
                    static_cast<unsigned long long>(s.blocks_read),
                    static_cast<unsigned long long>(s.blocks_written),
                    static_cast<unsigned long long>(s.holes_zero_filled),
                    static_cast<unsigned long long>(s.faults),
                    static_cast<unsigned long long>(s.completions));
    }

    void
    ls(std::istringstream &in)
    {
        std::string path;
        if (!(in >> path))
            path = "/";
        auto entries = bed_.hv_fs().readdir(path);
        if (!entries.is_ok()) {
            std::printf("ls: %s\n",
                        entries.status().to_string().c_str());
            return;
        }
        for (const auto &entry : *entries) {
            auto st = bed_.hv_fs().stat(entry.ino);
            std::printf("%-30s %10llu bytes %s\n", entry.name.c_str(),
                        st.is_ok() ? static_cast<unsigned long long>(
                                         st->size_bytes)
                                   : 0ULL,
                        entry.type == fs::FileType::kDirectory ? "(dir)"
                                                               : "");
        }
    }

    void
    fsck()
    {
        auto report = bed_.hv_fs().fsck();
        if (!report.is_ok()) {
            std::printf("fsck failed: %s\n",
                        report.status().to_string().c_str());
            return;
        }
        std::printf("fsck: %s — %llu files, %llu dirs, %llu blocks "
                    "referenced, %llu leaked, %llu orphans\n",
                    report->clean ? "clean" : "ERRORS",
                    static_cast<unsigned long long>(report->files),
                    static_cast<unsigned long long>(report->directories),
                    static_cast<unsigned long long>(
                        report->referenced_blocks),
                    static_cast<unsigned long long>(
                        report->leaked_blocks),
                    static_cast<unsigned long long>(
                        report->orphan_inodes));
        for (const auto &message : report->errors)
            std::printf("  ! %s\n", message.c_str());
    }

    virt::GuestVm *
    parse_vm(std::istringstream &in)
    {
        std::string token;
        if (!(in >> token) || token.size() < 3 ||
            token.substr(0, 2) != "vm") {
            std::printf("expected a vm id like vm0\n");
            return nullptr;
        }
        const int id = std::atoi(token.c_str() + 2);
        auto it = vms_.find(id);
        if (it == vms_.end()) {
            std::printf("no such vm '%s'\n", token.c_str());
            return nullptr;
        }
        return it->second.get();
    }

    static constexpr std::uint64_t kShellSeed = 0x5e11;

    virt::Testbed &bed_;
    std::map<int, std::unique_ptr<virt::GuestVm>> vms_;
    int next_vm_ = 0;
};

const char *kDemoScript[] = {
    "status",
    "attach /demo/a.img 16",
    "attach /demo/b.img 16 lazy",
    "vms",
    "write vm0 12000 8",
    "read vm0 12000 8",
    "write vm1 0 4",
    "read vm1 0 4",
    "dd vm0 32 8 w",
    "dd host 32 8 w",
    "qos vm0 4",
    "stats vm0",
    "stats vm1",
    "prune vm0",
    "read vm0 12000 8",
    "ls /demo",
    "fsck",
    "status",
};

} // namespace

int
main(int argc, char **argv)
{
    auto bed_or = virt::Testbed::create();
    if (!bed_or.is_ok()) {
        std::fprintf(stderr, "testbed: %s\n",
                     bed_or.status().to_string().c_str());
        return 1;
    }
    Shell shell(**bed_or);

    if (argc > 1 && std::string(argv[1]) == "--demo") {
        for (const char *line : kDemoScript) {
            std::printf("nesc> %s\n", line);
            shell.execute(line);
        }
        return 0;
    }

    std::printf("NeSC interactive shell — type `help`\n");
    std::string line;
    while (true) {
        std::printf("nesc> ");
        std::fflush(stdout);
        if (!std::getline(std::cin, line))
            break;
        if (!shell.execute(line))
            break;
    }
    return 0;
}
