/**
 * @file
 * Multi-tenant hosting: one physical NeSC device shared by three
 * tenant VMs, each directly assigned a VF that exports its own image
 * file — the consolidation scenario that motivates the paper (§I).
 *
 * Demonstrates:
 *  - per-tenant isolation: a VF physically cannot address blocks
 *    outside its extent tree, so tenants never see each other's data;
 *  - lazy allocation: tenant images are thin-provisioned and grow on
 *    demand through the write-miss fault path;
 *  - concurrent service: round-robin multiplexing across the VFs.
 */
#include <cstdio>

#include "virt/testbed.h"
#include "workloads/dd.h"

using namespace nesc;

namespace {

struct Tenant {
    std::unique_ptr<virt::GuestVm> vm;
    pcie::FunctionId fn;
    std::uint64_t seed;
};

} // namespace

int
main()
{
    virt::TestbedConfig config;
    config.device.capacity_bytes = 256ULL << 20;
    auto bed_or = virt::Testbed::create(config);
    if (!bed_or.is_ok()) {
        std::fprintf(stderr, "testbed: %s\n",
                     bed_or.status().to_string().c_str());
        return 1;
    }
    auto &bed = **bed_or;

    // Thin-provisioned tenants: each is promised 96 MiB but nothing is
    // allocated until written (3 x 96 MiB > 256 MiB device: classic
    // overcommit, safe because allocation is lazy).
    std::vector<Tenant> tenants;
    for (int i = 0; i < 3; ++i) {
        const std::string image =
            "/tenants/t" + std::to_string(i) + ".img";
        auto vm = bed.create_nesc_guest(image, 96 * 1024,
                                        /*preallocate=*/false);
        if (!vm.is_ok()) {
            std::fprintf(stderr, "tenant %d: %s\n", i,
                         vm.status().to_string().c_str());
            return 1;
        }
        Tenant t;
        t.fn = *bed.guest_vf(**vm);
        t.vm = std::move(vm).value();
        t.seed = 1000 + i;
        tenants.push_back(std::move(t));
        std::printf("tenant %d attached: VF %u, image %s (thin)\n", i,
                    tenants.back().fn, image.c_str());
    }

    // Each tenant writes its own data; the device allocates on demand.
    for (auto &t : tenants) {
        std::vector<std::byte> data(64 * 1024);
        wl::fill_pattern(t.seed, 0, data);
        if (!t.vm->raw_disk().write_blocks(0, 64, data).is_ok()) {
            std::fprintf(stderr, "tenant write failed\n");
            return 1;
        }
    }
    std::printf("\nafter first writes: %llu write-miss faults serviced, "
                "hypervisor FS has %llu free blocks\n",
                static_cast<unsigned long long>(
                    bed.pf().write_misses_serviced()),
                static_cast<unsigned long long>(bed.hv_fs().free_blocks()));

    // Isolation: every tenant reads back exactly its own pattern, even
    // though all three share physical blocks interleaved on the device.
    for (auto &t : tenants) {
        std::vector<std::byte> back(64 * 1024);
        if (!t.vm->raw_disk().read_blocks(0, 64, back).is_ok() ||
            wl::check_pattern(t.seed, 0, back) != -1) {
            std::fprintf(stderr, "ISOLATION VIOLATION for VF %u\n", t.fn);
            return 1;
        }
    }
    std::printf("isolation verified: each tenant sees only its own "
                "data\n");

    // A tenant cannot reach beyond its virtual disk either.
    std::vector<std::byte> probe(1024);
    auto beyond =
        tenants[0].vm->raw_disk().read_blocks(96 * 1024 - 0, 1, probe);
    std::printf("read past the virtual disk end: %s (expected failure)\n",
                beyond.is_ok() ? "ALLOWED!" : "rejected");

    // Show per-VF service accounting from the controller.
    std::printf("\nper-tenant device stats:\n");
    for (auto &t : tenants) {
        const auto &stats = bed.controller().stats(t.fn);
        std::printf("  VF %u: %llu cmds, %llu blocks written, "
                    "%llu blocks read, %llu faults\n",
                    t.fn,
                    static_cast<unsigned long long>(stats.commands),
                    static_cast<unsigned long long>(stats.blocks_written),
                    static_cast<unsigned long long>(stats.blocks_read),
                    static_cast<unsigned long long>(stats.faults));
    }

    // Tear one tenant down; its image remains in the hypervisor FS.
    if (!bed.pf().delete_vf(tenants[1].fn).is_ok()) {
        std::fprintf(stderr, "delete_vf failed\n");
        return 1;
    }
    std::printf("\ntenant 1 detached; backing image retained: size %llu "
                "bytes\n",
                static_cast<unsigned long long>(
                    bed.hv_fs().stat_path("/tenants/t1.img")->size_bytes));
    return 0;
}
