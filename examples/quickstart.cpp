/**
 * @file
 * Quickstart: bring up the NeSC platform, export a hypervisor file as
 * a virtual PCIe disk, attach a VM to it, and do direct I/O.
 *
 *   ./examples/quickstart
 *
 * Walks through the paper's core flow (Fig. 3): the hypervisor
 * manages its filesystem through the PF, creates a VF whose extent
 * tree maps a backing file, and the guest accesses the VF directly —
 * no hypervisor software on the data path.
 */
#include <cstdio>

#include "virt/testbed.h"
#include "workloads/dd.h"

using namespace nesc;

int
main()
{
    // 1. Build the platform: device, controller, hypervisor FS.
    auto bed_or = virt::Testbed::create();
    if (!bed_or.is_ok()) {
        std::fprintf(stderr, "testbed: %s\n",
                     bed_or.status().to_string().c_str());
        return 1;
    }
    auto &bed = **bed_or;
    std::printf("platform up: %llu MiB device, hypervisor nestfs with "
                "%llu free blocks\n",
                static_cast<unsigned long long>(
                    bed.device().geometry().capacity_bytes >> 20),
                static_cast<unsigned long long>(bed.hv_fs().free_blocks()));

    // 2. Export a 64 MiB backing file as a virtual disk and attach a VM.
    auto vm_or = bed.create_nesc_guest("/images/quickstart.img",
                                       64 * 1024, /*preallocate=*/true);
    if (!vm_or.is_ok()) {
        std::fprintf(stderr, "guest: %s\n",
                     vm_or.status().to_string().c_str());
        return 1;
    }
    auto &vm = **vm_or;
    std::printf("VM attached to VF %u (virtual disk: %llu blocks)\n",
                *bed.guest_vf(vm),
                static_cast<unsigned long long>(vm.device().num_blocks()));

    // 3. Direct I/O: the write goes guest driver -> VF -> extent-tree
    //    translation -> physical blocks. No hypervisor involvement.
    std::vector<std::byte> out(16 * 1024), in(16 * 1024);
    wl::fill_pattern(2024, 0, out);
    if (!vm.raw_disk().write_blocks(128, 16, out).is_ok() ||
        !vm.raw_disk().read_blocks(128, 16, in).is_ok() || in != out) {
        std::fprintf(stderr, "I/O round trip failed\n");
        return 1;
    }
    std::printf("16 KiB round trip OK at simulated t=%.1f us\n",
                util::ns_to_us(bed.sim().now()));

    // 4. Quick bandwidth check vs. the Host baseline.
    wl::DdConfig dd;
    dd.request_bytes = 32 * 1024;
    dd.total_bytes = 8 << 20;
    dd.write = true;
    auto nesc_bw = wl::run_dd_raw(bed.sim(), vm.raw_disk(), dd);
    auto host_bw = wl::run_dd_raw(bed.sim(), bed.host_raw_io(), dd);
    if (nesc_bw.is_ok() && host_bw.is_ok()) {
        std::printf("32 KiB sequential write: NeSC guest %.0f MB/s, "
                    "host baseline %.0f MB/s (ratio %.2f)\n",
                    nesc_bw->bandwidth_mb_s, host_bw->bandwidth_mb_s,
                    nesc_bw->bandwidth_mb_s / host_bw->bandwidth_mb_s);
    }

    // 5. Device-side statistics.
    auto &ctrl = bed.controller();
    std::printf("controller: %s\n",
                ctrl.counters().to_string().c_str());
    std::printf("BTLB: %llu hits / %llu misses (%.1f%% hit rate)\n",
                static_cast<unsigned long long>(ctrl.btlb().hits()),
                static_cast<unsigned long long>(ctrl.btlb().misses()),
                100.0 * ctrl.btlb().hit_rate());
    return 0;
}
