#!/usr/bin/env bash
# Tier-2 check: build the whole tree with ASan+UBSan and run the full
# test suite under the sanitizers. Slower than tier-1 (`ctest` on a
# plain build), so it is a separate opt-in pass.
#
# Usage: scripts/tier2_sanitize.sh [build-dir]
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build-asan}"

cmake -B "$build" -S "$repo" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DNESC_SANITIZE=ON
cmake --build "$build" -j "$(nproc)"

# halt_on_error: a sanitizer report is a test failure, not a warning.
export ASAN_OPTIONS="halt_on_error=1:detect_leaks=1"
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"
ctest --test-dir "$build" --output-on-failure -j "$(nproc)"
