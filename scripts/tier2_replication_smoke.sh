#!/usr/bin/env bash
# Tier-2 check: replication subsystem smoke. Builds with ASan+UBSan,
# runs the replication-focused test binaries (replica-set semantics,
# journaled blockstore kill-at-every-write sweeps, fault-injection
# stalls, retry jitter), then runs the abl_replication bench and
# asserts its machine-readable acceptance metrics: the victim VF's
# goodput dents at most 20% while a dead backend is detected, recovers
# fully after demotion, resync converges bit-identically, and the
# whole failover timeline is deterministic.
#
# Usage: scripts/tier2_replication_smoke.sh [build-dir]
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="$(realpath -m "${1:-$repo/build-repl}")"

cmake -B "$build" -S "$repo" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DNESC_SANITIZE=ON
cmake --build "$build" -j "$(nproc)" --target \
  test_replication test_journal test_crash test_fault_injection \
  test_drivers abl_replication

# halt_on_error: a sanitizer report is a test failure, not a warning.
export ASAN_OPTIONS="halt_on_error=1:detect_leaks=1"
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"
ctest --test-dir "$build" --output-on-failure -j "$(nproc)" -R \
  'test_replication|test_journal|test_crash|test_fault_injection|test_drivers'

run="$build/repl-smoke"
mkdir -p "$run"
echo "--- running abl_replication ---"
(cd "$run" && "$build/bench/abl_replication" > abl_replication.out)
cat "$run/abl_replication.out"

python3 - "$run/BENCH_PR7.json" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    metrics = {m["metric"]: m["value"] for m in json.load(f)["metrics"]}

# Acceptance gates for the failover experiment. All metrics come from
# the discrete-event simulator, so they are exact, not wall-clock.
CHECKS = [
    ("failover_dent_ratio", lambda v: v >= 0.80,
     "goodput during failover must stay within 20% of healthy"),
    ("failover_recovery_ratio", lambda v: v >= 0.95,
     "goodput must recover after the dead backend is demoted"),
    ("failover_latency_ms", lambda v: 0.0 < v < 50.0,
     "organic demotion must happen, and quickly"),
    ("resync_bit_identical", lambda v: v == 1.0,
     "revived backend must be bit-identical after resync"),
    ("deterministic", lambda v: v == 1.0,
     "failover timeline must be identical across re-runs"),
]

failed = False
for name, ok, why in CHECKS:
    value = metrics[name]
    status = "ok" if ok(value) else "FAIL"
    print(f"{status:>4}  {name} = {value:.4f}  ({why})")
    failed = failed or status == "FAIL"
if failed:
    print("replication smoke FAILED")
    sys.exit(1)
print("\nreplication smoke OK")
EOF
