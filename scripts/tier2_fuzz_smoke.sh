#!/usr/bin/env bash
# Tier-2 check: adversarial fuzz smoke. Builds with ASan+UBSan and runs
# the adversarial-guest suite — descriptor/ring validation, DMA-window,
# quarantine tests, and the seeded misbehavior fuzzer — under the
# sanitizers. The fuzzer's containment invariants (victim untouched,
# canary byte-identical, no assertion fired) are checked by the tests
# themselves; the sanitizers add "and no memory error anywhere in the
# device model while hostile input is flowing".
#
# NESC_FUZZ_EVENTS bounds the per-seed event count so the sanitized run
# fits a smoke-test time budget; unset it (or raise it) for a deeper
# soak.
#
# Usage: scripts/tier2_fuzz_smoke.sh [build-dir]
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build-asan}"

cmake -B "$build" -S "$repo" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DNESC_SANITIZE=ON
cmake --build "$build" -j "$(nproc)" --target test_adversarial

# halt_on_error: a sanitizer report is a test failure, not a warning.
export ASAN_OPTIONS="halt_on_error=1:detect_leaks=1"
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"
export NESC_FUZZ_EVENTS="${NESC_FUZZ_EVENTS:-2500}"

"$build/tests/test_adversarial"
