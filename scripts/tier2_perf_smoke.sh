#!/usr/bin/env bash
# Tier-2 check: translation-path performance smoke. Builds Release,
# runs the A-series ablation benches, and diffs the machine-readable
# metrics of abl_walk_coalesce (BENCH_PR3.json — simulated and fully
# deterministic) against the checked-in baseline. Fails on any metric
# regressing by more than 20%, honouring each metric's direction.
#
# Usage: scripts/tier2_perf_smoke.sh [build-dir]
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="$(realpath -m "${1:-$repo/build-perf}")"
baseline="$repo/scripts/perf_baseline_pr3.json"

cmake -B "$build" -S "$repo" -DCMAKE_BUILD_TYPE=Release
cmake --build "$build" -j "$(nproc)" --target \
  abl_btlb abl_walk_overlap abl_walk_coalesce abl_tree_depth \
  abl_queue_depth abl_batch_shard abl_vf_scale abl_latency_breakdown \
  abl_slo_observe

# The benches must run to completion; abl_walk_coalesce also writes
# the metrics file compared below. abl_vf_scale carries its own
# deterministic in-binary gates (DWRR shares, p99, hit rates) and
# exits non-zero when one fails.
run="$build/perf-smoke"
mkdir -p "$run"
# abl_latency_breakdown writes BENCH_A5.json (stage latency stack) and
# abl_slo_observe writes BENCH_A16_SLO.json (telemetry-plane cost and
# isolation); both land in the perf-smoke dir so the BENCH_*.json
# artifact upload carries them alongside the translation-path metrics.
for bench in abl_btlb abl_walk_overlap abl_tree_depth abl_queue_depth \
             abl_walk_coalesce abl_batch_shard abl_vf_scale \
             abl_latency_breakdown abl_slo_observe; do
  echo "--- running $bench ---"
  (cd "$run" && "$build/bench/$bench" > "$bench.out")
done

# PR6 (batched/sharded event loop): host-side simulator throughput on
# the 8-VF QD16 workload must not collapse back toward the seed's
# single-heap rate. Wall-clock, so the floors sit ~2x below what a
# loaded reference machine measures to absorb CI jitter. The
# bench_events_per_sec floor additionally sits ~3x above the seed
# tree's measured whole-bench rate (~0.2e6), so reverting the
# event-lane / arena / allocator work trips it even on a fast box.
python3 - "$run/BENCH_PR6.json" <<'EOF'
import json
import sys

FLOORS = {
    "events_per_sec": 1.0e6,       # steady phase; reference 2.6-5.1e6
    "walk_events_per_sec": 1.0e6,  # walk-heavy phase; reference 2.4-5.9e6
    "bench_events_per_sec": 0.6e6, # whole bench; reference ~1.5e6
}

with open(sys.argv[1]) as f:
    metrics = {m["metric"]: m["value"] for m in json.load(f)["metrics"]}

failed = False
for name, floor in FLOORS.items():
    rate = metrics[name]
    print(f"abl_batch_shard: {name} = {rate:,.0f} (floor {floor:,.0f})")
    if rate < floor:
        failed = True
if failed:
    print("perf smoke FAILED: simulator event rate below floor")
    sys.exit(1)
EOF

# PR8 (queue pairs + hierarchical DWRR): the 256-VF scale bench must
# not regress the simulator on the PR6 reference workload (8 VFs,
# QD16) and must sustain a floor at 256 VFs. The reference phase is
# the same workload BENCH_PR6.json measures in the same process run,
# so the two rates are directly comparable; 0.70 absorbs run-to-run
# wall-clock jitter. Deterministic fairness/tail-latency gates live in
# the binary itself.
python3 - "$run/BENCH_PR8.json" "$run/BENCH_PR6.json" <<'EOF'
import json
import sys

FLOORS = {
    "ref_events_per_sec": 1.0e6,    # 8-VF QD16; reference 2.4-3.0e6
    "scale_events_per_sec": 0.4e6,  # 256 VFs; reference 1.5-2.5e6
}
PR6_RETENTION = 0.70  # ref phase vs BENCH_PR6 events_per_sec

with open(sys.argv[1]) as f:
    pr8 = {m["metric"]: m["value"] for m in json.load(f)["metrics"]}
with open(sys.argv[2]) as f:
    pr6 = {m["metric"]: m["value"] for m in json.load(f)["metrics"]}

failed = False
for name, floor in FLOORS.items():
    rate = pr8[name]
    print(f"abl_vf_scale: {name} = {rate:,.0f} (floor {floor:,.0f})")
    if rate < floor:
        failed = True
need = pr6["events_per_sec"] * PR6_RETENTION
got = pr8["ref_events_per_sec"]
print(f"abl_vf_scale: ref vs BENCH_PR6 = {got:,.0f} "
      f"(need >= {need:,.0f})")
if got < need:
    failed = True
if failed:
    print("perf smoke FAILED: vf-scale event rate below floor")
    sys.exit(1)
EOF

# Reduced-scale sanitized pass: the 256-VF fast path must also be
# clean under ASan+UBSan. 40 VFs keeps the arena/bitmap/doorbell
# machinery fully exercised at a sanitizer-friendly runtime.
asan_build="$build-asan"
cmake -B "$asan_build" -S "$repo" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DNESC_SANITIZE=ON
cmake --build "$asan_build" -j "$(nproc)" --target abl_vf_scale
asan_run="$asan_build/perf-smoke"
mkdir -p "$asan_run"
echo "--- running abl_vf_scale --vfs 40 (ASan+UBSan) ---"
(cd "$asan_run" &&
   ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" \
   UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
   "$asan_build/bench/abl_vf_scale" --vfs 40 > abl_vf_scale.out)

python3 - "$baseline" "$run/BENCH_PR3.json" <<'EOF'
import json
import sys

TOLERANCE = 0.20      # relative regression allowed
ABS_FLOOR = 0.05      # ignore regressions on near-zero metrics

with open(sys.argv[1]) as f:
    baseline = {m["metric"]: m for m in json.load(f)["metrics"]}
with open(sys.argv[2]) as f:
    fresh = {m["metric"]: m for m in json.load(f)["metrics"]}

failures = []
for name, base in baseline.items():
    if name not in fresh:
        failures.append(f"{name}: missing from fresh run")
        continue
    old, new = base["value"], fresh[name]["value"]
    if base["higher_is_better"]:
        regressed = new < old * (1 - TOLERANCE)
    else:
        regressed = new > old * (1 + TOLERANCE)
    if regressed and abs(new - old) < ABS_FLOOR:
        regressed = False  # noise floor on tiny absolute values
    marker = "FAIL" if regressed else "ok"
    print(f"{marker:>4}  {name}: baseline {old:.4f} -> {new:.4f}")
    if regressed:
        failures.append(f"{name}: {old:.4f} -> {new:.4f}")

if failures:
    print("\nperf smoke FAILED (>20% regression):")
    for failure in failures:
        print("  " + failure)
    sys.exit(1)
print("\nperf smoke OK")
EOF
