#!/usr/bin/env bash
# Tier-2 check: observability smoke. Builds Release, exercises the
# lifecycle tracer end to end, and proves three properties:
#
#  1. Export validity — fig09-style and latency-breakdown runs with
#     --trace produce Chrome trace-event JSON that parses (`python3 -m
#     json.tool`), is sorted by timestamp, and carries per-function
#     track metadata (Perfetto-loadable).
#  2. Accounting fidelity — the per-stage span durations in the
#     exported JSON reproduce abl_latency_breakdown's printed stage
#     stack (arb wait / translate / transfer means) within 1%. The
#     binary additionally self-checks its trace totals against the
#     stage histograms and exits non-zero on divergence.
#  3. Cost — abl_trace_overhead enforces that tracing compiled in but
#     disabled stays within 1% events/sec and never perturbs the
#     simulated timeline.
#
# Usage: scripts/tier2_trace_smoke.sh [build-dir]
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="$(realpath -m "${1:-$repo/build-trace}")"

cmake -B "$build" -S "$repo" -DCMAKE_BUILD_TYPE=Release
cmake --build "$build" -j "$(nproc)" --target \
  fig09_raw_latency abl_latency_breakdown abl_trace_overhead

run="$build/trace-smoke"
mkdir -p "$run"

echo "--- fig09 with tracing ---"
(cd "$run" && "$build/bench/fig09_raw_latency" --trace fig09_trace.json \
  > fig09.out)

echo "--- latency breakdown with tracing (self-checks vs histograms) ---"
(cd "$run" && "$build/bench/abl_latency_breakdown" --trace abl_trace.json \
  > abl_latency.out)

echo "--- tracer overhead ---"
(cd "$run" && "$build/bench/abl_trace_overhead" > overhead.out)
grep "disabled-tracing overhead within 1%" "$run/overhead.out"

# Both exports must be well-formed JSON before any deeper inspection.
python3 -m json.tool "$run/fig09_trace.json" > /dev/null
python3 -m json.tool "$run/abl_trace.json" > /dev/null

python3 - "$run/fig09_trace.json" "$run/abl_trace.json" \
  "$run/abl_latency.out" <<'EOF'
import json
import re
import sys

def load(path):
    with open(path) as f:
        doc = json.load(f)
    assert doc["displayTimeUnit"] == "ns", path
    events = doc["traceEvents"]
    spans = [e for e in events if e["ph"] == "X"]
    meta = [e for e in events if e["ph"] == "M"]
    assert spans, f"{path}: no span events"
    ts = [e["ts"] for e in spans]
    assert ts == sorted(ts), f"{path}: events not sorted by timestamp"
    named_pids = {e["pid"] for e in meta if e["name"] == "process_name"}
    assert {e["pid"] for e in spans} <= named_pids, \
        f"{path}: span on a track without process_name metadata"
    # Map (pid, tid) -> stage name from thread metadata.
    threads = {(e["pid"], e["tid"]): e["args"]["name"]
               for e in meta if e["name"] == "thread_name"}
    return spans, threads

for path in (sys.argv[1], sys.argv[2]):
    spans, _ = load(path)
    print(f"ok    {path}: {len(spans)} spans, sorted, tracks named")

# Re-derive the 4-VF stage stack from the exported spans alone and
# compare with the table abl_latency_breakdown printed (1% tolerance;
# the table is rounded to 0.01 us, negligible at these magnitudes).
spans, threads = load(sys.argv[2])
sums, counts = {}, {}
for e in spans:
    stage = threads[(e["pid"], e["tid"])]
    sums[stage] = sums.get(stage, 0.0) + e["dur"]
    counts[stage] = counts.get(stage, 0) + 1

row = None
for line in open(sys.argv[3]):
    if line.startswith("4-VF contention"):
        # Decimal columns only: arb/translate/transfer/total means in
        # us (the trailing integer block count is deliberately not
        # matched, and neither is the "4" of the scenario name).
        row = [float(v) for v in re.findall(r"\d+\.\d+", line)]
assert row, "4-VF contention row not found in bench output"
arb_us, translate_us, transfer_us = row[0], row[1], row[2]

failures = []
for stage, reported in (("queue_wait", arb_us), ("translate", translate_us),
                        ("transfer", transfer_us)):
    derived = sums[stage] / counts[stage]  # ts/dur are in us already
    ok = abs(derived - reported) <= 0.01 * max(reported, 0.01)
    print(f"{'ok' if ok else 'FAIL':>4}  {stage}: trace-derived "
          f"{derived:.2f} us vs reported {reported:.2f} us")
    if not ok:
        failures.append(stage)

if failures:
    print("\ntrace smoke FAILED: stage accounting diverged >1%")
    sys.exit(1)
print("\ntrace smoke OK")
EOF
