#!/usr/bin/env bash
# Tier-2 check: observability smoke. Builds Release, exercises the
# lifecycle tracer end to end, and proves three properties:
#
#  1. Export validity — fig09-style and latency-breakdown runs with
#     --trace produce Chrome trace-event JSON that parses (`python3 -m
#     json.tool`), is sorted by timestamp, and carries per-function
#     track metadata (Perfetto-loadable).
#  2. Accounting fidelity — the per-stage span durations in the
#     exported JSON reproduce abl_latency_breakdown's printed stage
#     stack (arb wait / translate / transfer means) within 1%. The
#     binary additionally self-checks its trace totals against the
#     stage histograms and exits non-zero on divergence.
#  3. Cost — abl_trace_overhead enforces that tracing compiled in but
#     disabled stays within 1% events/sec and never perturbs the
#     simulated timeline.
#  4. Telemetry plane — abl_slo_observe runs its own gates (modeled
#     plane cost, SLO breach isolation, postmortem capture) and its
#     exports must be machine-readable: the metrics JSON and
#     postmortem JSON parse, and the Prometheus exposition is
#     well-formed (every sample belongs to a declared family, each
#     family declared exactly once).
#
# Usage: scripts/tier2_trace_smoke.sh [build-dir]
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="$(realpath -m "${1:-$repo/build-trace}")"

cmake -B "$build" -S "$repo" -DCMAKE_BUILD_TYPE=Release
cmake --build "$build" -j "$(nproc)" --target \
  fig09_raw_latency abl_latency_breakdown abl_trace_overhead \
  abl_slo_observe

run="$build/trace-smoke"
mkdir -p "$run"

echo "--- fig09 with tracing ---"
(cd "$run" && "$build/bench/fig09_raw_latency" --trace fig09_trace.json \
  > fig09.out)

echo "--- latency breakdown with tracing (self-checks vs histograms) ---"
(cd "$run" && "$build/bench/abl_latency_breakdown" --trace abl_trace.json \
  > abl_latency.out)

echo "--- tracer overhead ---"
(cd "$run" && "$build/bench/abl_trace_overhead" > overhead.out)
grep "disabled-tracing overhead within 1%" "$run/overhead.out"

echo "--- telemetry plane (SLO windows, flight recorder, exports) ---"
(cd "$run" && "$build/bench/abl_slo_observe" > slo_observe.out)
grep "always-on telemetry within 2%" "$run/slo_observe.out"

# Both exports must be well-formed JSON before any deeper inspection.
python3 -m json.tool "$run/fig09_trace.json" > /dev/null
python3 -m json.tool "$run/abl_trace.json" > /dev/null

# Telemetry-plane exports: metrics snapshot, postmortem dump, bench
# metrics, and the A5 latency-stack export must all parse.
python3 -m json.tool "$run/BENCH_A16_SLO_metrics.json" > /dev/null
python3 -m json.tool "$run/BENCH_A16_SLO_postmortem.json" > /dev/null
python3 -m json.tool "$run/BENCH_A16_SLO.json" > /dev/null
python3 -m json.tool "$run/BENCH_A5.json" > /dev/null

# The Prometheus exposition must be structurally valid: HELP/TYPE
# comments, metric lines with optional {labels} and a float value,
# every sample under a family declared by exactly one TYPE line.
python3 - "$run/BENCH_A16_SLO_metrics.prom" <<'EOF'
import re
import sys

types, samples = {}, 0
line_re = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})? ([0-9.eE+-]+|NaN)$")
for lineno, line in enumerate(open(sys.argv[1]), 1):
    line = line.rstrip("\n")
    if not line:
        continue
    if line.startswith("# TYPE "):
        parts = line.split()
        assert len(parts) == 4, f"line {lineno}: malformed TYPE"
        name, kind = parts[2], parts[3]
        assert kind in ("counter", "gauge", "summary"), \
            f"line {lineno}: unknown type {kind}"
        assert name not in types, \
            f"line {lineno}: duplicate TYPE for {name}"
        types[name] = kind
        continue
    if line.startswith("#"):
        continue
    m = line_re.match(line)
    assert m, f"line {lineno}: malformed sample: {line!r}"
    name = m.group(1)
    base = re.sub(r"_(sum|count)$", "", name)
    assert name in types or base in types, \
        f"line {lineno}: sample {name} has no TYPE declaration"
    float(m.group(3))
    samples += 1
assert types and samples, "empty exposition"
print(f"ok    Prometheus exposition: {len(types)} families, "
      f"{samples} samples, no duplicate TYPE lines")
EOF

python3 - "$run/fig09_trace.json" "$run/abl_trace.json" \
  "$run/abl_latency.out" <<'EOF'
import json
import re
import sys

def load(path):
    with open(path) as f:
        doc = json.load(f)
    assert doc["displayTimeUnit"] == "ns", path
    events = doc["traceEvents"]
    spans = [e for e in events if e["ph"] == "X"]
    meta = [e for e in events if e["ph"] == "M"]
    assert spans, f"{path}: no span events"
    ts = [e["ts"] for e in spans]
    assert ts == sorted(ts), f"{path}: events not sorted by timestamp"
    named_pids = {e["pid"] for e in meta if e["name"] == "process_name"}
    assert {e["pid"] for e in spans} <= named_pids, \
        f"{path}: span on a track without process_name metadata"
    # Map (pid, tid) -> stage name from thread metadata.
    threads = {(e["pid"], e["tid"]): e["args"]["name"]
               for e in meta if e["name"] == "thread_name"}
    return spans, threads

for path in (sys.argv[1], sys.argv[2]):
    spans, _ = load(path)
    print(f"ok    {path}: {len(spans)} spans, sorted, tracks named")

# Re-derive the 4-VF stage stack from the exported spans alone and
# compare with the table abl_latency_breakdown printed (1% tolerance;
# the table is rounded to 0.01 us, negligible at these magnitudes).
spans, threads = load(sys.argv[2])
sums, counts = {}, {}
for e in spans:
    stage = threads[(e["pid"], e["tid"])]
    sums[stage] = sums.get(stage, 0.0) + e["dur"]
    counts[stage] = counts.get(stage, 0) + 1

row = None
for line in open(sys.argv[3]):
    if line.startswith("4-VF contention"):
        # Decimal columns only: arb/translate/transfer/total means in
        # us (the trailing integer block count is deliberately not
        # matched, and neither is the "4" of the scenario name).
        row = [float(v) for v in re.findall(r"\d+\.\d+", line)]
assert row, "4-VF contention row not found in bench output"
arb_us, translate_us, transfer_us = row[0], row[1], row[2]

failures = []
for stage, reported in (("queue_wait", arb_us), ("translate", translate_us),
                        ("transfer", transfer_us)):
    derived = sums[stage] / counts[stage]  # ts/dur are in us already
    ok = abs(derived - reported) <= 0.01 * max(reported, 0.01)
    print(f"{'ok' if ok else 'FAIL':>4}  {stage}: trace-derived "
          f"{derived:.2f} us vs reported {reported:.2f} us")
    if not ok:
        failures.append(stage)

if failures:
    print("\ntrace smoke FAILED: stage accounting diverged >1%")
    sys.exit(1)
print("\ntrace smoke OK")
EOF
