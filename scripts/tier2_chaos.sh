#!/usr/bin/env bash
# Scheduled chaos run: the end-to-end integrity gates and the
# adversarial fuzzer under ASan+UBSan, with a date-derived rot
# placement so each night corrupts different blocks/bytes than the
# last. The integrity gates themselves are placement-invariant (100%
# detection, zero corrupt payloads delivered, scrub repairs to
# bit-identity, <= 5% checksum tax), so a red run means a real hole,
# not a flaky seed — and the seed is printed so any failure replays
# exactly with NESC_CHAOS_SEED=<seed>.
#
# Usage: scripts/tier2_chaos.sh [build-dir]
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build-chaos}"

# Rotate daily by default; pin NESC_CHAOS_SEED to reproduce a run.
export NESC_CHAOS_SEED="${NESC_CHAOS_SEED:-$(date -u +%Y%m%d)}"
echo "chaos seed: $NESC_CHAOS_SEED"

cmake -B "$build" -S "$repo" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DNESC_SANITIZE=ON
cmake --build "$build" -j "$(nproc)" \
  --target abl_integrity test_integrity test_fault_injection \
           test_adversarial

# halt_on_error: a sanitizer report is a failure, not a warning.
export ASAN_OPTIONS="halt_on_error=1:detect_leaks=1"
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"
export NESC_FUZZ_EVENTS="${NESC_FUZZ_EVENTS:-2500}"

"$build/tests/test_integrity"
"$build/tests/test_fault_injection"
"$build/tests/test_adversarial"

# Gated in-binary: any detection/repair/overhead gate failure exits 1.
run="$build/chaos"
mkdir -p "$run"
(cd "$run" && "$build/bench/abl_integrity")

echo "chaos run passed (seed $NESC_CHAOS_SEED)"
