/**
 * @file
 * Ablation A7: QoS weights in the VF multiplexer (paper §IV.D).
 *
 * Two identical closed-loop clients share the device; the first VF's
 * arbitration weight is swept. Expected shape: service share tracks
 * the configured weight (weight 1 = the paper's plain round robin).
 */
#include "bench/common.h"
#include "util/rng.h"

using namespace nesc;

int
main()
{
    bench::print_header(
        "Ablation A7", "QoS arbitration weight sweep",
        "extension study (paper §IV.D): a VF's service share follows "
        "its configured weight under contention");

    util::Table table({"vf1_weight", "vf1_4k_reads", "vf2_4k_reads",
                       "share_ratio"});
    std::vector<bench::BenchMetric> metrics;
    static const char *kRatioNames[] = {
        "share_ratio_weight_1", "share_ratio_weight_2",
        "share_ratio_weight_4", "share_ratio_weight_8"};
    int sweep_index = 0;
    for (std::uint32_t weight : {1u, 2u, 4u, 8u}) {
        auto bed = bench::must(virt::Testbed::create(
                                   bench::default_config()),
                               "testbed");
        auto vm1 =
            bench::must(bed->create_nesc_guest("/q1.img", 8192, true),
                        "guest 1");
        auto vm2 =
            bench::must(bed->create_nesc_guest("/q2.img", 8192, true),
                        "guest 2");
        const auto fn1 = bench::must(bed->guest_vf(*vm1), "fn1");
        const auto fn2 = bench::must(bed->guest_vf(*vm2), "fn2");
        bench::must_ok(bed->pf().set_qos_weight(fn1, weight), "qos");

        struct Client {
            std::unique_ptr<drv::FunctionDriver> driver;
            pcie::HostAddr buffer;
            std::uint64_t completed = 0;
            util::Rng rng{17};
        };
        Client clients[2];
        const pcie::FunctionId fns[2] = {fn1, fn2};
        for (int i = 0; i < 2; ++i) {
            clients[i].driver = std::make_unique<drv::FunctionDriver>(
                bed->sim(), bed->host_memory(), bed->bar(), bed->irq(),
                fns[i], bed->config().vf_driver);
            bench::must_ok(clients[i].driver->init(), "driver");
            clients[i].buffer = bench::must(
                bed->host_memory().alloc(4096ULL * 16, 64), "buffer");
        }
        const sim::Time deadline = bed->sim().now() + 20 * sim::kMs;
        std::function<void(int, std::uint32_t)> submit =
            [&](int i, std::uint32_t slot) {
                if (bed->sim().now() >= deadline)
                    return;
                (void)clients[i].driver->submit(
                    ctrl::Opcode::kRead,
                    clients[i].rng.next_below(8188), 4,
                    clients[i].buffer + slot * 4096,
                    [&, i, slot](ctrl::CompletionStatus) {
                        ++clients[i].completed;
                        submit(i, slot);
                    });
            };
        for (int i = 0; i < 2; ++i)
            for (std::uint32_t slot = 0; slot < 16; ++slot)
                submit(i, slot);
        bed->sim().run_until(deadline);
        bed->sim().run_until_idle();

        const double ratio = static_cast<double>(clients[0].completed) /
                             static_cast<double>(clients[1].completed);
        table.row()
            .add(weight)
            .add(clients[0].completed)
            .add(clients[1].completed)
            .add(ratio);
        metrics.push_back({kRatioNames[sweep_index++], ratio, true});
    }
    bench::print_table(table);
    bench::emit_bench_json(
        "BENCH_A7_QOS.json", 8,
        "QoS arbitration weight sweep (service-share ratio per weight)",
        metrics);
    return 0;
}
