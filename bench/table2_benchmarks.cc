/**
 * @file
 * Table II: the benchmark suite. Lists each benchmark with its role
 * and runs a small smoke configuration of each on a NeSC guest to
 * show it is functional.
 */
#include "bench/common.h"
#include "workloads/dd.h"
#include "workloads/fileio.h"
#include "workloads/oltp.h"
#include "workloads/postmark.h"

using namespace nesc;

int
main()
{
    bench::print_header("Table II", "benchmarks",
                        "descriptive table (no measured shape)");

    util::Table listing({"benchmark", "class", "description"});
    listing.row().add("GNU dd").add("microbenchmark").add(
        "read/write files using different operational parameters");
    listing.row().add("Sysbench I/O").add("macrobenchmark").add(
        "a sequence of random file operations");
    listing.row().add("Postmark").add("macrobenchmark").add(
        "mail server simulation");
    listing.row().add("MySQL (MiniDb)").add("macrobenchmark").add(
        "relational database serving the SysBench OLTP workload");
    bench::print_table(listing);

    // Smoke-run each benchmark on a NeSC guest with a filesystem.
    auto bed = bench::must(virt::Testbed::create(bench::default_config()),
                           "testbed");
    auto vm = bench::must(
        bed->create_nesc_guest("/images/table2.img", 49152, true), "guest");
    bench::must_ok(vm->format_fs(), "guest fs");

    util::Table smoke({"benchmark", "metric", "value"});
    {
        wl::DdConfig dd;
        dd.request_bytes = 4096;
        dd.total_bytes = 1 << 20;
        dd.write = true;
        auto result = bench::must(
            wl::run_dd_raw(bed->sim(), vm->raw_disk(), dd), "dd");
        smoke.row().add("dd 4K seq write").add("MB/s").add(
            result.bandwidth_mb_s, 1);
    }
    {
        wl::FileioConfig config;
        config.operations = 300;
        auto result = bench::must(wl::run_fileio(bed->sim(), *vm, config),
                                  "fileio");
        smoke.row().add("Sysbench I/O rndrw").add("ops/s").add(
            result.ops_per_sec, 0);
    }
    {
        wl::PostmarkConfig config;
        config.initial_files = 30;
        config.transactions = 100;
        auto result =
            bench::must(wl::run_postmark(bed->sim(), *vm, config),
                        "postmark");
        smoke.row().add("Postmark").add("txn/s").add(
            result.transactions_per_sec, 0);
    }
    {
        wl::OltpConfig config;
        config.transactions = 40;
        config.db.rows = 1024;
        config.db.directory = "/oltp-t2";
        auto result =
            bench::must(wl::run_oltp(bed->sim(), *vm, config), "oltp");
        smoke.row().add("MySQL OLTP (MiniDb)").add("txn/s").add(
            result.transactions_per_sec, 0);
    }
    bench::print_table(smoke);
    return 0;
}
