/**
 * @file
 * Ablation A18: host-side simulator throughput on the batched/sharded
 * event loop (8 directly-assigned VFs, QD16 random 4 KiB reads).
 *
 * Unlike the figure benches, the quantity under test here is not a
 * simulated latency or bandwidth but the simulator itself: events
 * executed per wall-clock second while eight guests keep sixteen
 * requests each in flight. Two phases cover the two hot paths the
 * event-lane/batching/arena rework targets:
 *
 *  - steady: plain volumes, scaled translation config — the BTLB
 *    absorbs translation, so the measured path is doorbell fetch,
 *    completion batching, and per-function lane scheduling.
 *  - walk-heavy: fragmented volumes (64-block extents, fanout-16
 *    tree) under the paper-baseline translation unit — most blocks
 *    miss, so the measured path adds walk-state arenas, node-read
 *    DMA buffer recycling, and walk-miss queue churn.
 *
 * The simulated results must not move at all — the golden-figure
 * ctest pins those — so the only interesting numbers are the
 * host-side rates, which the perf smoke script floors.
 */
#include <chrono>
#include <functional>

#include "bench/common.h"
#include "drivers/function_driver.h"
#include "util/rng.h"

using namespace nesc;

namespace {

/**
 * Seed-tree baselines, measured by building this same bench source
 * against the pre-PR6 simulator (single global event heap,
 * per-completion events, heap-allocated command/walk state, eager
 * volume zeroing, bit-at-a-time block allocator) and interleaving
 * seed/new runs on the reference machine. Only the speedup metrics
 * use these; absolute rates are box-dependent, so the ratios are
 * meaningful only under comparable load. The per-phase run rates
 * improve ~1.2-1.5x; the whole-bench rate improves ~8x because the
 * seed spends most of its wall provisioning the fragmented volumes.
 * The absolute floors live in tier2_perf_smoke.sh.
 */
constexpr double kSeedSteadyEventsPerSec = 2.0e6;
constexpr double kSeedWalkEventsPerSec = 2.1e6;
constexpr double kSeedBenchEventsPerSec = 0.2e6;

constexpr std::uint32_t kVfs = 8;
constexpr std::uint32_t kQueueDepth = 16;
constexpr std::uint64_t kGuestBlocks = 8192; // 8 MiB virtual disk each
constexpr sim::Duration kSteadyRunNs = 200 * sim::kMs;
constexpr std::uint64_t kWalkGuestBlocks = 16384;
constexpr sim::Duration kWalkRunNs = 100 * sim::kMs;

/** Fragments @p path into 64-block extents (decoy interleaving). */
void
make_fragmented_file(virt::Testbed &bed, const std::string &path,
                     std::uint64_t blocks)
{
    constexpr std::uint64_t kRunBlocks = 64;
    auto &fs = bed.hv_fs();
    auto ino = bench::must(fs.create(path, 0644), "create");
    auto decoy = bench::must(fs.create(path + ".decoy", 0644), "decoy");
    for (std::uint64_t vb = 0; vb < blocks; vb += kRunBlocks) {
        const std::uint64_t n = std::min(kRunBlocks, blocks - vb);
        bench::must_ok(fs.allocate_range(ino, vb, n), "alloc");
        bench::must_ok(fs.allocate_range(decoy, vb, n), "alloc decoy");
    }
}

struct PhaseResult {
    std::uint64_t completed = 0;
    std::uint64_t events = 0;
    double wall_s = 0.0;
    double events_per_sec = 0.0;
};

/**
 * Runs 8 VFs at QD16 of random single-request reads against
 * already-created guests until @p run_ns of simulated time passes,
 * measuring host-side events per wall second.
 */
PhaseResult
run_phase(virt::Testbed &bed,
          std::vector<std::unique_ptr<drv::FunctionDriver>> &drivers,
          const std::vector<pcie::HostAddr> &buffers,
          std::uint64_t guest_blocks, std::uint32_t blocks_per_io,
          sim::Duration run_ns, std::uint64_t rng_seed)
{
    util::Rng rng(rng_seed);
    PhaseResult result;
    const sim::Time deadline = bed.sim().now() + run_ns;
    std::function<void(std::uint32_t, std::uint32_t)> submit =
        [&](std::uint32_t vf, std::uint32_t slot) {
            if (bed.sim().now() >= deadline)
                return;
            bench::must_ok(
                drivers[vf]->submit(
                    ctrl::Opcode::kRead,
                    rng.next_below(guest_blocks - blocks_per_io),
                    blocks_per_io,
                    buffers[vf] + slot * (1024ULL * blocks_per_io),
                    [&, vf, slot](ctrl::CompletionStatus) {
                        ++result.completed;
                        submit(vf, slot);
                    }),
                "submit");
        };

    const auto wall_start = std::chrono::steady_clock::now();
    const std::uint64_t events_start = bed.sim().events_executed();
    for (std::uint32_t vf = 0; vf < kVfs; ++vf)
        for (std::uint32_t slot = 0; slot < kQueueDepth; ++slot)
            submit(vf, slot);
    bed.sim().run_until(deadline);
    bed.sim().run_until_idle();
    result.events = bed.sim().events_executed() - events_start;
    result.wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();
    result.events_per_sec =
        result.wall_s > 0
            ? static_cast<double>(result.events) / result.wall_s
            : 0.0;
    return result;
}

/** Plain volumes, scaled translation: batching/lane hot path. */
PhaseResult
run_steady()
{
    auto bed = bench::must(virt::Testbed::create(bench::default_config()),
                           "testbed");
    std::vector<std::unique_ptr<drv::FunctionDriver>> drivers;
    std::vector<std::unique_ptr<virt::GuestVm>> vms;
    std::vector<pcie::HostAddr> buffers;
    for (std::uint32_t i = 0; i < kVfs; ++i) {
        std::string img = "/a18_" + std::to_string(i) + ".img";
        auto vm = bench::must(
            bed->create_nesc_guest(img.c_str(), kGuestBlocks, true),
            "guest");
        auto fn = bench::must(bed->guest_vf(*vm), "fn");
        auto driver = std::make_unique<drv::FunctionDriver>(
            bed->sim(), bed->host_memory(), bed->bar(), bed->irq(), fn,
            bed->config().vf_driver);
        bench::must_ok(driver->init(), "driver");
        drivers.push_back(std::move(driver));
        buffers.push_back(bench::must(
            bed->host_memory().alloc(4096ULL * kQueueDepth, 64),
            "buffer"));
        vms.push_back(std::move(vm));
    }
    return run_phase(*bed, drivers, buffers, kGuestBlocks, 4,
                     kSteadyRunNs, 1847);
}

/** Fragmented volumes, paper-baseline translation: walk hot path. */
PhaseResult
run_walk_heavy()
{
    virt::TestbedConfig config = bench::default_config();
    config.pf.tree.fanout = 16; // deep extent tree, multi-DMA walks
    // 8 x (volume + decoy) fragmented 16 Ki-block files need more
    // media than the 128 MiB bench default.
    config.device.capacity_bytes = 512ULL << 20;
    auto bed = bench::must(virt::Testbed::create(config), "testbed");
    std::vector<std::unique_ptr<drv::FunctionDriver>> drivers;
    std::vector<std::unique_ptr<virt::GuestVm>> vms;
    std::vector<pcie::HostAddr> buffers;
    for (std::uint32_t i = 0; i < kVfs; ++i) {
        std::string img = "/a18w_" + std::to_string(i) + ".img";
        make_fragmented_file(*bed, img, kWalkGuestBlocks);
        auto vm = bench::must(
            bed->create_nesc_guest(img.c_str(), kWalkGuestBlocks),
            "guest");
        auto fn = bench::must(bed->guest_vf(*vm), "fn");
        auto driver = std::make_unique<drv::FunctionDriver>(
            bed->sim(), bed->host_memory(), bed->bar(), bed->irq(), fn,
            bed->config().vf_driver);
        bench::must_ok(driver->init(), "driver");
        drivers.push_back(std::move(driver));
        buffers.push_back(bench::must(
            bed->host_memory().alloc(1024ULL * kQueueDepth, 64),
            "buffer"));
        vms.push_back(std::move(vm));
    }
    return run_phase(*bed, drivers, buffers, kWalkGuestBlocks, 1,
                     kWalkRunNs, 2063);
}

} // namespace

int
main()
{
    bench::print_header(
        "Ablation A18",
        "simulator events/sec, 8 VFs at QD16 (batch + shard hot path)",
        "host-side metric: the event-lane/batching/arena rework must "
        "raise simulator throughput with simulated results unchanged");

    const auto bench_start = std::chrono::steady_clock::now();
    const PhaseResult steady = run_steady();
    const PhaseResult walk = run_walk_heavy();
    // Whole-bench rate: run phases plus testbed/volume construction.
    // Volume prep executes no events but is real wall time the seed
    // tree spent in the allocator and in eagerly-zeroed disk images.
    const double bench_wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      bench_start)
            .count();
    const double bench_events_per_sec =
        bench_wall_s > 0
            ? static_cast<double>(steady.events + walk.events) /
                  bench_wall_s
            : 0.0;

    util::Table table({"phase", "vfs", "queue_depth", "completed_ios",
                       "sim_events", "wall_s", "kevents_s"});
    table.row()
        .add("steady")
        .add(kVfs)
        .add(kQueueDepth)
        .add(steady.completed)
        .add(steady.events)
        .add(steady.wall_s, 3)
        .add(steady.events_per_sec / 1000.0, 0);
    table.row()
        .add("walk-heavy")
        .add(kVfs)
        .add(kQueueDepth)
        .add(walk.completed)
        .add(walk.events)
        .add(walk.wall_s, 3)
        .add(walk.events_per_sec / 1000.0, 0);
    bench::print_table(table);
    bench::print_event_rate();

    bench::emit_bench_json(
        "BENCH_PR6.json", 6,
        "simulator hot path: batched fetch/completions, per-function "
        "event lanes, command/walk arenas (8 VFs, QD16)",
        {
            {"events_per_sec", steady.events_per_sec, true},
            {"speedup_vs_seed",
             steady.events_per_sec / kSeedSteadyEventsPerSec, true},
            {"completed_ios", static_cast<double>(steady.completed),
             true},
            {"walk_events_per_sec", walk.events_per_sec, true},
            {"walk_speedup_vs_seed",
             walk.events_per_sec / kSeedWalkEventsPerSec, true},
            {"walk_completed_ios", static_cast<double>(walk.completed),
             true},
            {"bench_events_per_sec", bench_events_per_sec, true},
            {"bench_speedup_vs_seed",
             bench_events_per_sec / kSeedBenchEventsPerSec, true},
        });
    return 0;
}
