/**
 * @file
 * Ablation A5: prototype trampoline-buffer penalty.
 *
 * The VC707 prototype's emulated VFs were invisible to the IOMMU, so
 * guests had to bounce all data through hypervisor-allocated
 * trampoline buffers (paper §VI) — a pessimism the paper notes a true
 * SR-IOV gen3 device would not pay. This bench measures the NeSC
 * guest's dd bandwidth with and without the bounce copies.
 */
#include "bench/common.h"
#include "workloads/dd.h"

using namespace nesc;

int
main()
{
    bench::print_header(
        "Ablation A5", "trampoline bounce buffers (prototype) vs. "
        "direct DMA (true SR-IOV)",
        "design-note study: the prototype's measured numbers are a "
        "lower bound; removing the bounce copy recovers bandwidth at "
        "large blocks");

    util::Table table({"block_size", "trampoline_MB_s", "direct_MB_s",
                       "direct/trampoline"});
    for (std::uint64_t bs : {4096u, 32768u, 262144u}) {
        double bw[2] = {0, 0};
        for (int mode = 0; mode < 2; ++mode) {
            virt::TestbedConfig config = bench::default_config();
            config.vf_driver.trampoline = mode == 0;
            // Bounce copies on the paper's Xeon: a few GB/s memcpy.
            config.vf_driver.copy_bytes_per_sec = 3'000'000'000;
            auto bed =
                bench::must(virt::Testbed::create(config), "testbed");
            auto vm = bench::must(
                bed->create_nesc_guest("/tramp.img", 65536, true),
                "guest");
            wl::DdConfig dd;
            dd.request_bytes = bs;
            dd.total_bytes = 16ULL << 20;
            dd.write = true;
            auto result = bench::must(
                wl::run_dd_raw(bed->sim(), vm->raw_disk(), dd), "dd");
            bw[mode] = result.bandwidth_mb_s;
        }
        table.row()
            .add(bs)
            .add(bw[0], 1)
            .add(bw[1], 1)
            .add(bw[1] / bw[0]);
    }
    bench::print_table(table);
    return 0;
}
